// Package repro is a from-scratch Go reproduction of "Differential
// FCM: Increasing Value Prediction Accuracy by Improving Table Usage
// Efficiency" (Goeman, Vandierendonck, De Bosschere, HPCA 2001).
//
// The library implements the paper's differential finite context
// method value predictor together with every substrate its evaluation
// depends on: the classical predictors it is compared against
// (last-value, stride, two-delta, FCM, hybrids), the Sazeides FS R-k
// history hashes, an MR32 RISC ISA with assembler and functional
// simulator standing in for SimpleScalar/MIPS, a SPECint95-like
// benchmark suite, the aliasing-classification instrumentation of the
// paper's section 4.2, and a harness regenerating every table and
// figure of the evaluation.
//
// Start with README.md, DESIGN.md (system inventory and
// per-experiment index) and EXPERIMENTS.md (paper-vs-measured
// results). The benchmarks in bench_test.go regenerate each artifact:
//
//	go test -bench=BenchmarkFig10a -benchmem
//
// and the CLI runs them with configurable budgets:
//
//	go run ./cmd/dfcmsim all -budget 5000000
package repro
