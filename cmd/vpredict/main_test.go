package main

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/trace"
)

func TestLoadTraceFromBenchmark(t *testing.T) {
	tr, err := loadTrace("", "li", 50_000)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr) == 0 {
		t.Error("empty trace from benchmark")
	}
}

func TestLoadTraceFromFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "t.vtr")
	want := trace.Trace{{PC: 0x40, Value: 1}, {PC: 0x44, Value: 2}}
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := trace.Write(f, want); err != nil {
		t.Fatal(err)
	}
	f.Close()

	got, err := loadTrace(path, "", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Errorf("got %v", got)
	}
}

func TestLoadTraceArgErrors(t *testing.T) {
	if _, err := loadTrace("", "", 0); err == nil {
		t.Error("no source should error")
	}
	if _, err := loadTrace("x.vtr", "li", 0); err == nil {
		t.Error("both sources should error")
	}
	if _, err := loadTrace("/nonexistent.vtr", "", 0); err == nil {
		t.Error("missing file should error")
	}
	if _, err := loadTrace("", "bogus", 0); err == nil {
		t.Error("unknown benchmark should error")
	}
}
