// Command vpredict runs one value predictor configuration over a
// trace (from a VTR1 file or generated from a benchmark) and reports
// its accuracy and size.
//
// Usage:
//
//	vpredict -bench li -predictor dfcm -l1 16 -l2 12
//	vpredict -trace li.vtr -predictor stride -l1 14
//	vpredict -bench ijpeg -predictor dfcm -l1 16 -l2 12 -width 8 -delay 64
//	vpredict -bench li -predictor tage -l1 13 -l2 10 -tables 4 -tag 8 -hmin 4 -hmax 64
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/progs"
	"repro/internal/trace"
)

func main() {
	traceFile := flag.String("trace", "", "VTR1 trace file to replay")
	bench := flag.String("bench", "", "benchmark to trace on the fly")
	budget := flag.Uint64("budget", 1_000_000, "instruction budget when tracing a benchmark")
	kind := flag.String("predictor", "dfcm", "lvp | stride | 2delta | fcm | dfcm | hybrid | tage")
	l1 := flag.Uint("l1", 16, "log2 of the level-1 (or only) table entries")
	l2 := flag.Uint("l2", 12, "log2 of the level-2 table entries (fcm/dfcm/hybrid); log2 entries per tagged table (tage)")
	width := flag.Uint("width", 32, "stored stride width in bits (dfcm/tage)")
	delay := flag.Int("delay", 0, "update delay in predictions")
	tables := flag.Uint("tables", 0, "tagged-table count (tage); 0 = default 4")
	tag := flag.Uint("tag", 0, "partial-tag width in bits (tage); 0 = default 8")
	hmin := flag.Uint("hmin", 0, "shortest history length in events (tage); 0 = default 4")
	hmax := flag.Uint("hmax", 0, "longest history length in events (tage); 0 = default 64")
	flag.Parse()

	tr, err := loadTrace(*traceFile, *bench, *budget)
	if err != nil {
		fmt.Fprintln(os.Stderr, "vpredict:", err)
		os.Exit(1)
	}

	// The spec is the same mapping cmd/vpserve uses, so an offline run
	// with these flags reproduces a served session's hit counts.
	spec := core.Spec{
		Kind: *kind, L1: *l1, L2: *l2, Width: *width, Delay: *delay,
		Tables: *tables, Tag: *tag, HistMin: *hmin, HistMax: *hmax,
	}
	p, err := spec.New()
	if err != nil {
		fmt.Fprintln(os.Stderr, "vpredict:", err)
		os.Exit(2)
	}

	res := core.Run(p, trace.NewReader(tr))
	fmt.Printf("predictor:   %s\n", p.Name())
	fmt.Printf("size:        %d bits (%.1f Kbit)\n", p.SizeBits(), float64(p.SizeBits())/1024)
	fmt.Printf("predictions: %d\n", res.Predictions)
	fmt.Printf("correct:     %d\n", res.Correct)
	fmt.Printf("accuracy:    %.4f\n", res.Accuracy())
}

func loadTrace(file, bench string, budget uint64) (trace.Trace, error) {
	switch {
	case file != "" && bench != "":
		return nil, fmt.Errorf("give either -trace or -bench, not both")
	case file != "":
		f, err := os.Open(file)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return trace.ReadAuto(f)
	case bench != "":
		return progs.TraceFor(bench, budget)
	default:
		return nil, fmt.Errorf("one of -trace or -bench is required")
	}
}
