// Command tracegen runs a benchmark on the MR32 simulator and writes
// its value trace to a VTR1 file (see internal/trace).
//
// Usage:
//
//	tracegen -bench li -budget 1000000 -o li.vtr
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/progs"
	"repro/internal/trace"
)

func main() {
	bench := flag.String("bench", "", "benchmark name (see -list)")
	budget := flag.Uint64("budget", 1_000_000, "instruction budget (0 = run to completion)")
	out := flag.String("o", "", "output trace file")
	compress := flag.Bool("z", false, "write the compressed VTRZ container")
	list := flag.Bool("list", false, "list available benchmarks")
	flag.Parse()

	if *list {
		for _, n := range progs.Names() {
			b, _ := progs.Get(n)
			fmt.Printf("%-10s %-24s %s\n", n, b.Model, b.Description)
		}
		return
	}
	if *bench == "" || *out == "" {
		fmt.Fprintln(os.Stderr, "tracegen: -bench and -o are required")
		os.Exit(2)
	}
	tr, err := progs.TraceFor(*bench, *budget)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
	f, err := os.Create(*out)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
	defer f.Close()
	write := trace.Write
	if *compress {
		write = trace.WriteCompressed
	}
	if err := write(f, tr); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %d events to %s\n", len(tr), *out)
}
