package main

import (
	"encoding/json"
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: repro
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkFig9 	       1	   9367785 ns/op	 3377848 B/op	     341 allocs/op
BenchmarkFig6-8 	       1	   4075381 ns/op	 1153936 B/op	     187 allocs/op
BenchmarkPredictFCM 	       1	      1523 ns/op
BenchmarkSimulator 	       1	   2856997 ns/op	     59342 events/run	 2520800 B/op	      34 allocs/op
PASS
ok  	repro	3.019s
`

func TestParseBench(t *testing.T) {
	got, err := parseBench(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 4 {
		t.Fatalf("parsed %d benchmarks, want 4: %v", len(got), got)
	}
	fig9 := got["BenchmarkFig9"]
	if fig9.NsPerOp != 9367785 {
		t.Errorf("Fig9 ns/op = %v, want 9367785", fig9.NsPerOp)
	}
	if fig9.AllocsPerOp == nil || *fig9.AllocsPerOp != 341 {
		t.Errorf("Fig9 allocs/op = %v, want 341", fig9.AllocsPerOp)
	}
	if _, ok := got["BenchmarkFig6"]; !ok {
		t.Errorf("GOMAXPROCS suffix not stripped: %v", got)
	}
	if p := got["BenchmarkPredictFCM"]; p.AllocsPerOp != nil {
		t.Errorf("no -benchmem columns should mean no allocs/op, got %v", *p.AllocsPerOp)
	}
	if s := got["BenchmarkSimulator"]; s.NsPerOp != 2856997 {
		t.Errorf("custom-metric line misparsed: %+v", s)
	}
}

func TestRunEmitsSpeedup(t *testing.T) {
	var sb strings.Builder
	err := run(strings.NewReader(sampleOutput), &sb, "go test -bench .",
		speedupFlags{"BenchmarkFig9": 18735570})
	if err != nil {
		t.Fatal(err)
	}
	var snap snapshot
	if err := json.Unmarshal([]byte(sb.String()), &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Command != "go test -bench ." {
		t.Errorf("command = %q", snap.Command)
	}
	e, ok := snap.Speedup["BenchmarkFig9"]
	if !ok {
		t.Fatalf("no speedup entry: %s", sb.String())
	}
	if e.Speedup < 1.99 || e.Speedup > 2.01 {
		t.Errorf("speedup = %v, want ~2.0", e.Speedup)
	}
}

func TestRunErrors(t *testing.T) {
	var sb strings.Builder
	if err := run(strings.NewReader("PASS\n"), &sb, "", nil); err == nil {
		t.Error("empty input: want error")
	}
	if err := run(strings.NewReader(sampleOutput), &sb, "",
		speedupFlags{"BenchmarkNope": 1}); err == nil {
		t.Error("unknown speedup benchmark: want error")
	}
}

func TestSpeedupFlagParsing(t *testing.T) {
	s := make(speedupFlags)
	if err := s.Set("BenchmarkFig9=18681932"); err != nil {
		t.Fatal(err)
	}
	if s["BenchmarkFig9"] != 18681932 {
		t.Errorf("parsed %v", s)
	}
	if err := s.Set("no-equals"); err == nil {
		t.Error("missing =: want error")
	}
	if err := s.Set("BenchmarkX=abc"); err == nil {
		t.Error("bad number: want error")
	}
}
