package main

import (
	"encoding/json"
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: repro
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkFig9 	       1	   9367785 ns/op	 3377848 B/op	     341 allocs/op
BenchmarkFig6-8 	       1	   4075381 ns/op	 1153936 B/op	     187 allocs/op
BenchmarkPredictFCM 	       1	      1523 ns/op
BenchmarkEngineReplay 	       5	   1104612 ns/op	       0 B/op	       0 allocs/op
BenchmarkRepeated 	     100	      2000 ns/op	      16 B/op	       2 allocs/op
BenchmarkRepeated 	     100	      1500 ns/op	       0 B/op	       0 allocs/op
BenchmarkRepeated 	     100	      1800 ns/op	       8 B/op	       1 allocs/op
BenchmarkSimulator 	       1	   2856997 ns/op	     59342 events/run	 2520800 B/op	      34 allocs/op
PASS
ok  	repro	3.019s
`

func TestParseBench(t *testing.T) {
	got, err := parseBench(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 6 {
		t.Fatalf("parsed %d benchmarks, want 6: %v", len(got), got)
	}
	rep := got["BenchmarkRepeated"]
	if rep.NsPerOp != 1500 {
		t.Errorf("repeated counts should merge to min ns/op, got %v", rep.NsPerOp)
	}
	if rep.AllocsPerOp == nil || *rep.AllocsPerOp != 2 {
		t.Errorf("repeated counts should merge to max allocs/op, got %v", rep.AllocsPerOp)
	}
	fig9 := got["BenchmarkFig9"]
	if fig9.NsPerOp != 9367785 {
		t.Errorf("Fig9 ns/op = %v, want 9367785", fig9.NsPerOp)
	}
	if fig9.AllocsPerOp == nil || *fig9.AllocsPerOp != 341 {
		t.Errorf("Fig9 allocs/op = %v, want 341", fig9.AllocsPerOp)
	}
	if _, ok := got["BenchmarkFig6"]; !ok {
		t.Errorf("GOMAXPROCS suffix not stripped: %v", got)
	}
	if p := got["BenchmarkPredictFCM"]; p.AllocsPerOp != nil {
		t.Errorf("no -benchmem columns should mean no allocs/op, got %v", *p.AllocsPerOp)
	}
	if s := got["BenchmarkSimulator"]; s.NsPerOp != 2856997 {
		t.Errorf("custom-metric line misparsed: %+v", s)
	}
}

func TestRunEmitsSpeedup(t *testing.T) {
	var sb strings.Builder
	err := run(strings.NewReader(sampleOutput), &sb, "go test -bench .",
		speedupFlags{"BenchmarkFig9": 18735570}, nil)
	if err != nil {
		t.Fatal(err)
	}
	var snap snapshot
	if err := json.Unmarshal([]byte(sb.String()), &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Command != "go test -bench ." {
		t.Errorf("command = %q", snap.Command)
	}
	e, ok := snap.Speedup["BenchmarkFig9"]
	if !ok {
		t.Fatalf("no speedup entry: %s", sb.String())
	}
	if e.Speedup < 1.99 || e.Speedup > 2.01 {
		t.Errorf("speedup = %v, want ~2.0", e.Speedup)
	}
}

func TestRunErrors(t *testing.T) {
	var sb strings.Builder
	if err := run(strings.NewReader("PASS\n"), &sb, "", nil, nil); err == nil {
		t.Error("empty input: want error")
	}
	if err := run(strings.NewReader(sampleOutput), &sb, "",
		speedupFlags{"BenchmarkNope": 1}, nil); err == nil {
		t.Error("unknown speedup benchmark: want error")
	}
}

// TestZeroGate: -zero passes only for a present benchmark measured at
// exactly 0 allocs/op; absence, missing -benchmem columns, and any
// nonzero count all fail the run.
func TestZeroGate(t *testing.T) {
	cases := []struct {
		name string
		zero string
		ok   bool
	}{
		{"zero allocs passes", "BenchmarkEngineReplay", true},
		{"nonzero allocs fails", "BenchmarkFig9", false},
		{"missing benchmark fails", "BenchmarkNope", false},
		{"no benchmem columns fails", "BenchmarkPredictFCM", false},
	}
	for _, tc := range cases {
		var sb strings.Builder
		err := run(strings.NewReader(sampleOutput), &sb, "", nil, zeroFlags{tc.zero})
		if tc.ok && err != nil {
			t.Errorf("%s: unexpected error %v", tc.name, err)
		}
		if !tc.ok && err == nil {
			t.Errorf("%s: want error", tc.name)
		}
	}
}

func TestSpeedupFlagParsing(t *testing.T) {
	s := make(speedupFlags)
	if err := s.Set("BenchmarkFig9=18681932"); err != nil {
		t.Fatal(err)
	}
	if s["BenchmarkFig9"] != 18681932 {
		t.Errorf("parsed %v", s)
	}
	if err := s.Set("no-equals"); err == nil {
		t.Error("missing =: want error")
	}
	if err := s.Set("BenchmarkX=abc"); err == nil {
		t.Error("bad number: want error")
	}
}
