// Command benchjson converts `go test -bench` output on stdin into a
// stable JSON snapshot: benchmark name → ns/op (and allocs/op when
// the run used -benchmem). `make bench` uses it to regenerate
// BENCH_engine.json, the checked-in record of the sweep engine's
// wall-clock numbers.
//
// Usage:
//
//	go test -run '^$' -bench . -benchtime 1x -benchmem . | benchjson \
//	    -o BENCH_engine.json \
//	    -cmd 'go test -bench . -benchtime 1x -benchmem .' \
//	    -speedup BenchmarkFig9=18681932
//
// Each -speedup NAME=BASELINE_NS (repeatable) records the named
// benchmark's baseline ns/op alongside the measured run and the
// resulting speedup factor, so a perf claim lives next to the numbers
// backing it.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// result is one benchmark's measurements.
type result struct {
	NsPerOp     float64  `json:"ns_per_op"`
	AllocsPerOp *float64 `json:"allocs_per_op,omitempty"`
}

// speedupEntry records a measured benchmark against a stated baseline.
type speedupEntry struct {
	BaselineNsPerOp float64 `json:"baseline_ns_per_op"`
	NsPerOp         float64 `json:"ns_per_op"`
	Speedup         float64 `json:"speedup"`
}

// snapshot is the emitted document.
type snapshot struct {
	Command    string                  `json:"command,omitempty"`
	Speedup    map[string]speedupEntry `json:"speedup,omitempty"`
	Benchmarks map[string]result       `json:"benchmarks"`
}

// speedupFlags collects repeated -speedup NAME=BASELINE_NS flags.
type speedupFlags map[string]float64

func (s speedupFlags) String() string { return fmt.Sprint(map[string]float64(s)) }

func (s speedupFlags) Set(v string) error {
	name, ns, ok := strings.Cut(v, "=")
	if !ok {
		return fmt.Errorf("want NAME=BASELINE_NS, got %q", v)
	}
	f, err := strconv.ParseFloat(ns, 64)
	if err != nil {
		return fmt.Errorf("baseline ns/op for %s: %v", name, err)
	}
	s[name] = f
	return nil
}

// gomaxprocsSuffix is the -N the testing package appends to benchmark
// names when GOMAXPROCS > 1; stripped so snapshots compare across
// machines.
var gomaxprocsSuffix = regexp.MustCompile(`-\d+$`)

// parseBench extracts per-benchmark measurements from `go test -bench`
// output. Non-benchmark lines (goos/pkg headers, PASS, ok) are
// ignored.
func parseBench(r io.Reader) (map[string]result, error) {
	out := make(map[string]result)
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := gomaxprocsSuffix.ReplaceAllString(fields[0], "")
		var res result
		seen := false
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("%s: bad measurement %q: %v", name, fields[i], err)
			}
			switch fields[i+1] {
			case "ns/op":
				res.NsPerOp = v
				seen = true
			case "allocs/op":
				a := v
				res.AllocsPerOp = &a
			}
		}
		if seen {
			out[name] = res
		}
	}
	return out, sc.Err()
}

func run(in io.Reader, out io.Writer, cmd string, baselines speedupFlags) error {
	benches, err := parseBench(in)
	if err != nil {
		return err
	}
	if len(benches) == 0 {
		return fmt.Errorf("no benchmark lines on stdin")
	}
	snap := snapshot{Command: cmd, Benchmarks: benches}
	for name, base := range baselines {
		b, ok := benches[name]
		if !ok {
			return fmt.Errorf("-speedup %s: benchmark not in input", name)
		}
		if snap.Speedup == nil {
			snap.Speedup = make(map[string]speedupEntry)
		}
		snap.Speedup[name] = speedupEntry{
			BaselineNsPerOp: base,
			NsPerOp:         b.NsPerOp,
			Speedup:         base / b.NsPerOp,
		}
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(snap)
}

func main() {
	outPath := flag.String("o", "", "write JSON here instead of stdout")
	cmd := flag.String("cmd", "", "record the command that produced the input")
	baselines := make(speedupFlags)
	flag.Var(baselines, "speedup", "NAME=BASELINE_NS: record a speedup over a baseline (repeatable)")
	flag.Parse()

	var out io.Writer = os.Stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		defer f.Close()
		out = f
	}
	if err := run(os.Stdin, out, *cmd, baselines); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}
