// Command benchjson converts `go test -bench` output on stdin into a
// stable JSON snapshot: benchmark name → ns/op (and allocs/op when
// the run used -benchmem). `make bench` uses it to regenerate
// BENCH_engine.json, the checked-in record of the sweep engine's
// wall-clock numbers.
//
// Usage:
//
//	go test -run '^$' -bench . -benchtime 1x -benchmem . | benchjson \
//	    -o BENCH_engine.json \
//	    -cmd 'go test -bench . -benchtime 1x -benchmem .' \
//	    -speedup BenchmarkFig9=18681932 \
//	    -zero BenchmarkEngineReplay
//
// Each -speedup NAME=BASELINE_NS (repeatable) records the named
// benchmark's baseline ns/op alongside the measured run and the
// resulting speedup factor, so a perf claim lives next to the numbers
// backing it.
//
// Each -zero NAME (repeatable) asserts the named benchmark is present
// in the input and reported exactly 0 allocs/op; any violation is a
// non-zero exit, making `make bench` a CI gate against allocation
// regressions on the zero-alloc steady-state paths.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// result is one benchmark's measurements.
type result struct {
	NsPerOp     float64  `json:"ns_per_op"`
	AllocsPerOp *float64 `json:"allocs_per_op,omitempty"`
}

// speedupEntry records a measured benchmark against a stated baseline.
type speedupEntry struct {
	BaselineNsPerOp float64 `json:"baseline_ns_per_op"`
	NsPerOp         float64 `json:"ns_per_op"`
	Speedup         float64 `json:"speedup"`
}

// snapshot is the emitted document.
type snapshot struct {
	Command    string                  `json:"command,omitempty"`
	Speedup    map[string]speedupEntry `json:"speedup,omitempty"`
	Benchmarks map[string]result       `json:"benchmarks"`
}

// speedupFlags collects repeated -speedup NAME=BASELINE_NS flags.
type speedupFlags map[string]float64

func (s speedupFlags) String() string { return fmt.Sprint(map[string]float64(s)) }

func (s speedupFlags) Set(v string) error {
	name, ns, ok := strings.Cut(v, "=")
	if !ok {
		return fmt.Errorf("want NAME=BASELINE_NS, got %q", v)
	}
	f, err := strconv.ParseFloat(ns, 64)
	if err != nil {
		return fmt.Errorf("baseline ns/op for %s: %v", name, err)
	}
	s[name] = f
	return nil
}

// zeroFlags collects repeated -zero NAME flags.
type zeroFlags []string

func (z *zeroFlags) String() string { return strings.Join(*z, ",") }

func (z *zeroFlags) Set(v string) error {
	*z = append(*z, v)
	return nil
}

// gomaxprocsSuffix is the -N the testing package appends to benchmark
// names when GOMAXPROCS > 1; stripped so snapshots compare across
// machines.
var gomaxprocsSuffix = regexp.MustCompile(`-\d+$`)

// parseBench extracts per-benchmark measurements from `go test -bench`
// output. Non-benchmark lines (goos/pkg headers, PASS, ok) are
// ignored. A benchmark appearing more than once (-count=N) merges to
// the minimum ns/op — the standard noise-robust statistic on a shared
// machine — and the maximum allocs/op, so the -zero gate fails if any
// run allocated.
func parseBench(r io.Reader) (map[string]result, error) {
	out := make(map[string]result)
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := gomaxprocsSuffix.ReplaceAllString(fields[0], "")
		var res result
		seen := false
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("%s: bad measurement %q: %v", name, fields[i], err)
			}
			switch fields[i+1] {
			case "ns/op":
				res.NsPerOp = v
				seen = true
			case "allocs/op":
				a := v
				res.AllocsPerOp = &a
			}
		}
		if !seen {
			continue
		}
		if prev, ok := out[name]; ok {
			if prev.NsPerOp < res.NsPerOp {
				res.NsPerOp = prev.NsPerOp
			}
			if prev.AllocsPerOp != nil && (res.AllocsPerOp == nil || *prev.AllocsPerOp > *res.AllocsPerOp) {
				res.AllocsPerOp = prev.AllocsPerOp
			}
		}
		out[name] = res
	}
	return out, sc.Err()
}

func run(in io.Reader, out io.Writer, cmd string, baselines speedupFlags, zeros zeroFlags) error {
	benches, err := parseBench(in)
	if err != nil {
		return err
	}
	if len(benches) == 0 {
		return fmt.Errorf("no benchmark lines on stdin")
	}
	for _, name := range zeros {
		b, ok := benches[name]
		if !ok {
			return fmt.Errorf("-zero %s: benchmark not in input", name)
		}
		if b.AllocsPerOp == nil {
			return fmt.Errorf("-zero %s: no allocs/op in input (run with -benchmem)", name)
		}
		if *b.AllocsPerOp != 0 {
			return fmt.Errorf("-zero %s: %g allocs/op, want 0 — allocation regression on a zero-alloc steady-state path", name, *b.AllocsPerOp)
		}
	}
	snap := snapshot{Command: cmd, Benchmarks: benches}
	for name, base := range baselines {
		b, ok := benches[name]
		if !ok {
			return fmt.Errorf("-speedup %s: benchmark not in input", name)
		}
		if snap.Speedup == nil {
			snap.Speedup = make(map[string]speedupEntry)
		}
		snap.Speedup[name] = speedupEntry{
			BaselineNsPerOp: base,
			NsPerOp:         b.NsPerOp,
			Speedup:         base / b.NsPerOp,
		}
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(snap)
}

func main() {
	outPath := flag.String("o", "", "write JSON here instead of stdout")
	cmd := flag.String("cmd", "", "record the command that produced the input")
	baselines := make(speedupFlags)
	flag.Var(baselines, "speedup", "NAME=BASELINE_NS: record a speedup over a baseline (repeatable)")
	var zeros zeroFlags
	flag.Var(&zeros, "zero", "NAME: fail unless the benchmark is present with exactly 0 allocs/op (repeatable)")
	flag.Parse()

	var out io.Writer = os.Stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		defer f.Close()
		out = f
	}
	if err := run(os.Stdin, out, *cmd, baselines, zeros); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}
