// Command dfcmsim reproduces the tables and figures of the DFCM paper
// (Goeman, Vandierendonck, De Bosschere, HPCA 2001) over this
// repository's benchmark suite.
//
// Usage:
//
//	dfcmsim list
//	dfcmsim run [-budget N] [-bench a,b,...] [-csv] <id> [<id>...]
//	dfcmsim all [-budget N] [-bench a,b,...]
//
// Experiment ids match DESIGN.md's per-experiment index (fig3,
// fig10a, table1, ...). The budget is the per-benchmark instruction
// count; the paper's equivalent is 200M, the default here is 1M.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/experiments"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	switch os.Args[1] {
	case "list":
		list()
	case "run":
		if err := run(os.Args[2:], false); err != nil {
			fatal(err)
		}
	case "all":
		if err := run(append(os.Args[2:], allIDs()...), false); err != nil {
			fatal(err)
		}
	case "verify":
		if err := verify(os.Args[2:]); err != nil {
			fatal(err)
		}
	default:
		usage()
		os.Exit(2)
	}
}

// verify runs every experiment and fails if any qualitative check
// (the notes the experiments compute against the paper's claims)
// reports a deviation. This is the repository's one-command
// reproduction check.
func verify(args []string) error {
	fs := flag.NewFlagSet("verify", flag.ExitOnError)
	budget := fs.Uint64("budget", 0, "instructions per benchmark (0 = default 1M)")
	bench := fs.String("bench", "", "comma-separated benchmark subset (default: all eight)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg := experiments.Config{Budget: *budget}
	if *bench != "" {
		cfg.Benchmarks = strings.Split(*bench, ",")
	}
	var failures []string
	for _, e := range experiments.All() {
		fmt.Fprintf(os.Stderr, "verifying %s (%s)...\n", e.ID, e.Artifact)
		res, err := e.Run(cfg)
		if err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		for _, n := range res.Notes {
			if strings.Contains(n, "WARNING") {
				failures = append(failures, e.ID+": "+n)
			}
		}
	}
	if len(failures) > 0 {
		for _, f := range failures {
			fmt.Fprintln(os.Stderr, "DEVIATION", f)
		}
		return fmt.Errorf("%d qualitative check(s) deviated from the paper", len(failures))
	}
	fmt.Printf("all %d experiments reproduce the paper's qualitative claims\n",
		len(experiments.All()))
	return nil
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  dfcmsim list
  dfcmsim run [-budget N] [-bench a,b] [-csv] [-out dir] <id> [<id>...]
  dfcmsim all [-budget N] [-bench a,b]
  dfcmsim verify [-budget N]`)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dfcmsim:", err)
	os.Exit(1)
}

func list() {
	fmt.Printf("%-15s %-22s %s\n", "ID", "ARTIFACT", "TITLE")
	for _, e := range experiments.All() {
		fmt.Printf("%-15s %-22s %s\n", e.ID, e.Artifact, e.Title)
	}
}

func allIDs() []string {
	var ids []string
	for _, e := range experiments.All() {
		ids = append(ids, e.ID)
	}
	return ids
}

func run(args []string, _ bool) error {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	budget := fs.Uint64("budget", 0, "instructions per benchmark (0 = default 1M)")
	bench := fs.String("bench", "", "comma-separated benchmark subset (default: all eight)")
	csv := fs.Bool("csv", false, "emit tables as CSV")
	outDir := fs.String("out", "", "also write <id>.txt and <id>.<n>.csv files into this directory")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			return err
		}
	}
	ids := fs.Args()
	if len(ids) == 0 {
		return fmt.Errorf("no experiment ids given (try 'dfcmsim list')")
	}
	cfg := experiments.Config{Budget: *budget}
	if *bench != "" {
		cfg.Benchmarks = strings.Split(*bench, ",")
	}
	for _, id := range ids {
		e, err := experiments.Get(id)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "running %s (%s)...\n", e.ID, e.Artifact)
		res, err := e.Run(cfg)
		if err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
		if *outDir != "" {
			if err := writeArtifacts(*outDir, res); err != nil {
				return err
			}
		}
		if *csv {
			for _, t := range res.Tables {
				fmt.Println("#", res.ID, t.Title)
				fmt.Print(t.CSV())
			}
			continue
		}
		fmt.Println(res.String())
	}
	return nil
}

// writeArtifacts stores the rendered result and per-table CSVs under
// dir for scripted artifact regeneration.
func writeArtifacts(dir string, res *experiments.Result) error {
	if err := os.WriteFile(filepath.Join(dir, res.ID+".txt"), []byte(res.String()), 0o644); err != nil {
		return err
	}
	for i, t := range res.Tables {
		name := fmt.Sprintf("%s.%d.csv", res.ID, i)
		if err := os.WriteFile(filepath.Join(dir, name), []byte(t.CSV()), 0o644); err != nil {
			return err
		}
	}
	return nil
}
