// Command dfcmsim reproduces the tables and figures of the DFCM paper
// (Goeman, Vandierendonck, De Bosschere, HPCA 2001) over this
// repository's benchmark suite.
//
// Usage:
//
//	dfcmsim list
//	dfcmsim run [-budget N] [-bench a,b,...] [-csv] [-j N] <id> [<id>...]
//	dfcmsim all [-budget N] [-bench a,b,...] [-j N]
//
// Experiment ids match DESIGN.md's per-experiment index (fig3,
// fig10a, table1, ...). The budget is the per-benchmark instruction
// count; the paper's equivalent is 200M, the default here is 1M.
// -j N runs up to N independent experiments concurrently; output is
// buffered per experiment and printed in request order, so stdout and
// -out artifacts are byte-identical to a sequential run.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/experiments"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	switch os.Args[1] {
	case "list":
		list()
	case "run":
		if err := run(os.Args[2:], false); err != nil {
			fatal(err)
		}
	case "all":
		if err := run(append(os.Args[2:], allIDs()...), false); err != nil {
			fatal(err)
		}
	case "verify":
		if err := verify(os.Args[2:]); err != nil {
			fatal(err)
		}
	default:
		usage()
		os.Exit(2)
	}
}

// verify runs every experiment and fails if any qualitative check
// (the notes the experiments compute against the paper's claims)
// reports a deviation. This is the repository's one-command
// reproduction check.
func verify(args []string) error {
	fs := flag.NewFlagSet("verify", flag.ExitOnError)
	budget := fs.Uint64("budget", 0, "instructions per benchmark (0 = default 1M)")
	bench := fs.String("bench", "", "comma-separated benchmark subset (default: all eight)")
	jobs := fs.Int("j", 1, "number of experiments to run concurrently")
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg := experiments.Config{Budget: *budget}
	if *bench != "" {
		cfg.Benchmarks = strings.Split(*bench, ",")
	}
	all := experiments.All()
	type outcome struct {
		res *experiments.Result
		err error
	}
	outs := make([]outcome, len(all))
	var failures []string
	err := inOrder(len(all), *jobs, func(i int) {
		e := all[i]
		fmt.Fprintf(os.Stderr, "verifying %s (%s)...\n", e.ID, e.Artifact)
		res, err := e.Run(cfg)
		outs[i] = outcome{res: res, err: err}
	}, func(i int) error {
		if outs[i].err != nil {
			return fmt.Errorf("%s: %w", all[i].ID, outs[i].err)
		}
		for _, n := range outs[i].res.Notes {
			if strings.Contains(n, "WARNING") {
				failures = append(failures, all[i].ID+": "+n)
			}
		}
		return nil
	})
	if err != nil {
		return err
	}
	if len(failures) > 0 {
		for _, f := range failures {
			fmt.Fprintln(os.Stderr, "DEVIATION", f)
		}
		return fmt.Errorf("%d qualitative check(s) deviated from the paper", len(failures))
	}
	fmt.Printf("all %d experiments reproduce the paper's qualitative claims\n",
		len(experiments.All()))
	return nil
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  dfcmsim list
  dfcmsim run [-budget N] [-bench a,b] [-csv] [-out dir] [-j N] <id> [<id>...]
  dfcmsim all [-budget N] [-bench a,b] [-j N]
  dfcmsim verify [-budget N] [-j N]`)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dfcmsim:", err)
	os.Exit(1)
}

func list() {
	fmt.Printf("%-15s %-22s %s\n", "ID", "ARTIFACT", "TITLE")
	for _, e := range experiments.All() {
		fmt.Printf("%-15s %-22s %s\n", e.ID, e.Artifact, e.Title)
	}
}

func allIDs() []string {
	var ids []string
	for _, e := range experiments.All() {
		ids = append(ids, e.ID)
	}
	return ids
}

func run(args []string, _ bool) error {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	budget := fs.Uint64("budget", 0, "instructions per benchmark (0 = default 1M)")
	bench := fs.String("bench", "", "comma-separated benchmark subset (default: all eight)")
	csv := fs.Bool("csv", false, "emit tables as CSV")
	outDir := fs.String("out", "", "also write <id>.txt and <id>.<n>.csv files into this directory")
	jobs := fs.Int("j", 1, "number of experiments to run concurrently")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			return err
		}
	}
	ids := fs.Args()
	if len(ids) == 0 {
		return fmt.Errorf("no experiment ids given (try 'dfcmsim list')")
	}
	cfg := experiments.Config{Budget: *budget}
	if *bench != "" {
		cfg.Benchmarks = strings.Split(*bench, ",")
	}
	type outcome struct {
		res *experiments.Result
		err error
	}
	outs := make([]outcome, len(ids))
	return inOrder(len(ids), *jobs, func(i int) {
		// Ids resolve lazily, as in the sequential loop: everything
		// before an unknown id still runs and prints.
		e, err := experiments.Get(ids[i])
		if err != nil {
			outs[i] = outcome{err: err}
			return
		}
		fmt.Fprintf(os.Stderr, "running %s (%s)...\n", e.ID, e.Artifact)
		res, err := e.Run(cfg)
		if err != nil {
			err = fmt.Errorf("%s: %w", ids[i], err)
		}
		outs[i] = outcome{res: res, err: err}
	}, func(i int) error {
		o := outs[i]
		if o.err != nil {
			return o.err
		}
		if *outDir != "" {
			if err := writeArtifacts(*outDir, o.res); err != nil {
				return err
			}
		}
		if *csv {
			for _, t := range o.res.Tables {
				fmt.Println("#", o.res.ID, t.Title)
				fmt.Print(t.CSV())
			}
			return nil
		}
		fmt.Println(o.res.String())
		return nil
	})
}

// inOrder runs work(i) for i in [0,n) with up to j concurrent workers
// and calls drain(i) strictly in index order as results complete, so
// everything written to stdout (and the -out directory) is
// byte-identical to the sequential j=1 run. Experiments share the
// process-wide trace cache, so concurrent runs coalesce trace
// generation instead of duplicating it. A drain error stops
// consumption; the process is about to exit, so in-flight workers are
// simply abandoned.
func inOrder(n, j int, work func(int), drain func(int) error) error {
	if j < 1 {
		j = 1
	}
	done := make([]chan struct{}, n)
	for i := range done {
		done[i] = make(chan struct{})
	}
	queue := make(chan int)
	go func() {
		for i := 0; i < n; i++ {
			queue <- i
		}
		close(queue)
	}()
	for w := 0; w < j; w++ {
		go func() {
			for i := range queue {
				work(i)
				close(done[i])
			}
		}()
	}
	for i := 0; i < n; i++ {
		<-done[i]
		if err := drain(i); err != nil {
			return err
		}
	}
	return nil
}

// writeArtifacts stores the rendered result and per-table CSVs under
// dir for scripted artifact regeneration.
func writeArtifacts(dir string, res *experiments.Result) error {
	if err := os.WriteFile(filepath.Join(dir, res.ID+".txt"), []byte(res.String()), 0o644); err != nil {
		return err
	}
	for i, t := range res.Tables {
		name := fmt.Sprintf("%s.%d.csv", res.ID, i)
		if err := os.WriteFile(filepath.Join(dir, name), []byte(t.CSV()), 0o644); err != nil {
			return err
		}
	}
	return nil
}
