package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestWriteArtifacts(t *testing.T) {
	dir := t.TempDir()
	if err := run([]string{"-budget", "1000", "-out", dir, "fig4"}, false); err != nil {
		t.Fatal(err)
	}
	txt, err := os.ReadFile(filepath.Join(dir, "fig4.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(txt), "fig4") {
		t.Error("artifact text missing experiment id")
	}
	csv, err := os.ReadFile(filepath.Join(dir, "fig4.0.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(csv), ",") {
		t.Error("csv artifact looks wrong")
	}
}

func TestParallelRunByteIdentical(t *testing.T) {
	ids := []string{"fig4", "fig10a", "fig17", "table1"}
	seq, par := t.TempDir(), t.TempDir()
	if err := run(append([]string{"-budget", "1000", "-out", seq}, ids...), false); err != nil {
		t.Fatal(err)
	}
	if err := run(append([]string{"-budget", "1000", "-j", "4", "-out", par}, ids...), false); err != nil {
		t.Fatal(err)
	}
	names, err := os.ReadDir(seq)
	if err != nil {
		t.Fatal(err)
	}
	if len(names) == 0 {
		t.Fatal("no artifacts written")
	}
	for _, f := range names {
		a, err := os.ReadFile(filepath.Join(seq, f.Name()))
		if err != nil {
			t.Fatal(err)
		}
		b, err := os.ReadFile(filepath.Join(par, f.Name()))
		if err != nil {
			t.Fatalf("artifact %s missing from -j 4 run: %v", f.Name(), err)
		}
		if string(a) != string(b) {
			t.Errorf("%s differs between -j 1 and -j 4 runs", f.Name())
		}
	}
}

func TestVerifySmallBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every experiment")
	}
	// A reduced-budget, reduced-suite verify must still pass every
	// qualitative check (the claims are scale-independent).
	if err := verify([]string{"-budget", "150000", "-bench", "li,ijpeg,m88ksim,go"}); err != nil {
		t.Fatal(err)
	}
}
