package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestWriteArtifacts(t *testing.T) {
	dir := t.TempDir()
	if err := run([]string{"-budget", "1000", "-out", dir, "fig4"}, false); err != nil {
		t.Fatal(err)
	}
	txt, err := os.ReadFile(filepath.Join(dir, "fig4.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(txt), "fig4") {
		t.Error("artifact text missing experiment id")
	}
	csv, err := os.ReadFile(filepath.Join(dir, "fig4.0.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(csv), ",") {
		t.Error("csv artifact looks wrong")
	}
}

func TestVerifySmallBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every experiment")
	}
	// A reduced-budget, reduced-suite verify must still pass every
	// qualitative check (the claims are scale-independent).
	if err := verify([]string{"-budget", "150000", "-bench", "li,ijpeg,m88ksim,go"}); err != nil {
		t.Fatal(err)
	}
}
