package main

import (
	"testing"

	"repro/internal/experiments"
)

func TestAllIDsMatchRegistry(t *testing.T) {
	ids := allIDs()
	if len(ids) != len(experiments.All()) {
		t.Fatalf("allIDs has %d entries, registry %d", len(ids), len(experiments.All()))
	}
	for _, id := range ids {
		if _, err := experiments.Get(id); err != nil {
			t.Errorf("id %q not resolvable: %v", id, err)
		}
	}
}

func TestRunRejectsNoIDs(t *testing.T) {
	if err := run([]string{"-budget", "1000"}, false); err == nil {
		t.Error("run with no ids should error")
	}
}

func TestRunRejectsUnknownID(t *testing.T) {
	if err := run([]string{"frobnicate"}, false); err == nil {
		t.Error("unknown id should error")
	}
}

func TestRunExecutesExperiment(t *testing.T) {
	// fig4 is pure (no benchmark traces), so this is fast.
	if err := run([]string{"-budget", "1000", "fig4"}, false); err != nil {
		t.Errorf("run fig4: %v", err)
	}
}

func TestRunCSV(t *testing.T) {
	if err := run([]string{"-budget", "1000", "-csv", "fig8"}, false); err != nil {
		t.Errorf("run -csv fig8: %v", err)
	}
}

func TestRunBenchSubset(t *testing.T) {
	if err := run([]string{"-budget", "20000", "-bench", "li", "table1"}, false); err != nil {
		t.Errorf("run table1 subset: %v", err)
	}
}
