package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/asm"
	"repro/internal/vm"
)

// runExample assembles and executes one of the shipped MR32 example
// programs and returns its stdout.
func runExample(t *testing.T, name string, budget uint64) string {
	t.Helper()
	src, err := os.ReadFile(filepath.Join("..", "..", "examples", "mr32", name))
	if err != nil {
		t.Fatal(err)
	}
	p, err := asm.Assemble(string(src))
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	c := vm.New(p, nil)
	if err := c.Run(budget); err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	return string(c.Stdout)
}

func TestFibExample(t *testing.T) {
	out := runExample(t, "fib.s", 0)
	if !strings.Contains(out, "fib(20) = 6765") {
		t.Errorf("fib output: %q", out)
	}
}

func TestSieveExample(t *testing.T) {
	out := runExample(t, "sieve.s", 0)
	if !strings.Contains(out, "primes below 10000: 1229") {
		t.Errorf("sieve output: %q", out)
	}
}

func TestHanoiExample(t *testing.T) {
	out := runExample(t, "hanoi.s", 0)
	if !strings.Contains(out, "moves: 65535") {
		t.Errorf("hanoi output: %q", out)
	}
}
