// Command mr32run assembles and executes an MR32 assembly program on
// the functional simulator, printing its output and, optionally,
// execution statistics or its value trace.
//
// Usage:
//
//	mr32run prog.s
//	mr32run -budget 100000 -stats prog.s
//	mr32run -dump-trace out.vtr prog.s
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/asm"
	"repro/internal/isa"
	"repro/internal/trace"
	"repro/internal/vm"
)

func main() {
	budget := flag.Uint64("budget", 0, "instruction budget (0 = unlimited)")
	stats := flag.Bool("stats", false, "print execution statistics")
	dump := flag.String("dump-trace", "", "write the value trace to this VTR1 file")
	disasm := flag.Bool("disasm", false, "print the assembled text segment and exit")
	profile := flag.Int("profile", 0, "after the run, print the N hottest instructions")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: mr32run [-budget N] [-stats] [-dump-trace f] prog.s")
		os.Exit(2)
	}

	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	// Accept both assembly source and pre-assembled MRX1 objects
	// (produced by cmd/mr32asm).
	var p *asm.Program
	if bytes.HasPrefix(src, []byte("MRX1")) {
		p, err = asm.ReadProgram(bytes.NewReader(src))
	} else {
		p, err = asm.Assemble(string(src))
	}
	if err != nil {
		fatal(err)
	}

	if *disasm {
		for i, w := range p.Text {
			pc := uint32(isa.TextBase + 4*i)
			fmt.Printf("%08x:  %08x  %s\n", pc, w, isa.Disassemble(pc, w))
		}
		return
	}

	var tr trace.Trace
	var emit vm.Emit
	if *dump != "" {
		emit = func(pc, v uint32) { tr = append(tr, trace.Event{PC: pc, Value: v}) }
	}
	c := vm.New(p, emit)
	if *profile > 0 {
		c.EnableProfile(len(p.Text))
	}
	err = c.Run(*budget)
	if _, werr := os.Stdout.Write(c.Stdout); werr != nil {
		fatal(werr)
	}
	if err != nil && err != vm.ErrBudget {
		fatal(err)
	}
	if *stats {
		fmt.Fprintf(os.Stderr, "executed:  %d instructions\n", c.Executed)
		fmt.Fprintf(os.Stderr, "predicted: %d register-producing instructions\n", c.Emitted)
		if err == vm.ErrBudget {
			fmt.Fprintln(os.Stderr, "stopped:   instruction budget expired")
		} else {
			fmt.Fprintln(os.Stderr, "stopped:   clean exit")
		}
	}
	if *profile > 0 {
		printProfile(p, c, *profile)
	}
	if *dump != "" {
		f, err := os.Create(*dump)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := trace.Write(f, tr); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "trace:     %d events -> %s\n", len(tr), *dump)
	}
}

// printProfile lists the n most executed instructions with their
// disassembly and share of all executed instructions.
func printProfile(p *asm.Program, c *vm.CPU, n int) {
	type hot struct {
		idx   int
		count uint64
	}
	var hots []hot
	for i, cnt := range c.Profile() {
		if cnt > 0 {
			hots = append(hots, hot{idx: i, count: cnt})
		}
	}
	sort.Slice(hots, func(i, j int) bool { return hots[i].count > hots[j].count })
	if n > len(hots) {
		n = len(hots)
	}
	fmt.Fprintf(os.Stderr, "hottest %d of %d executed instructions:\n", n, len(hots))
	for _, h := range hots[:n] {
		pc := uint32(isa.TextBase + 4*h.idx)
		fmt.Fprintf(os.Stderr, "  %08x %12d (%5.1f%%)  %s\n",
			pc, h.count, 100*float64(h.count)/float64(c.Executed),
			isa.Disassemble(pc, p.Text[h.idx]))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mr32run:", err)
	os.Exit(1)
}
