package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/trace"
)

// writeTestTrace generates a small deterministic trace and writes it
// as a VTR1 file: one constant PC, one striding PC.
func writeTestTrace(t *testing.T) (string, trace.Trace) {
	t.Helper()
	var tr trace.Trace
	for i := 0; i < 50; i++ {
		tr = append(tr,
			trace.Event{PC: 0x1000, Value: 7},
			trace.Event{PC: 0x1004, Value: uint32(i) * 4},
		)
	}
	path := filepath.Join(t.TempDir(), "t.vtr")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := trace.Write(f, tr); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path, tr
}

func TestRunOnTraceFile(t *testing.T) {
	path, _ := writeTestTrace(t)
	var out, errOut bytes.Buffer
	if code := run([]string{"-top", "2", path}, &out, &errOut); code != 0 {
		t.Fatalf("exit code %d, stderr: %s", code, errOut.String())
	}
	got := out.String()
	for _, want := range []string{
		"events:        100",
		"distinct PCs:  2",
		"0x1000",
		"0x1004",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
	// Half the events are the constant instruction; its repeats count
	// as constant-predictable.
	if !strings.Contains(got, "constant frac: 0.49") {
		t.Errorf("unexpected constant frac in:\n%s", got)
	}
}

func TestRunOnBenchmark(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-bench", "li", "-budget", "20000", "-top", "3"}, &out, &errOut); code != 0 {
		t.Fatalf("exit code %d, stderr: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "events:") {
		t.Errorf("no summary in output:\n%s", out.String())
	}
}

func TestRunErrors(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run(nil, &out, &errOut); code != 2 {
		t.Errorf("no args: exit code %d, want 2", code)
	}
	if !strings.Contains(errOut.String(), "usage:") {
		t.Errorf("no usage message: %s", errOut.String())
	}
	errOut.Reset()
	if code := run([]string{"/nonexistent.vtr"}, &out, &errOut); code != 1 {
		t.Errorf("missing file: exit code %d, want 1", code)
	}
	if code := run([]string{"-bench", "bogus"}, &out, &errOut); code != 1 {
		t.Errorf("unknown benchmark: exit code %d, want 1", code)
	}
	// A non-trace file fails cleanly.
	junk := filepath.Join(t.TempDir(), "junk")
	if err := os.WriteFile(junk, []byte("not a trace"), 0o644); err != nil {
		t.Fatal(err)
	}
	if code := run([]string{junk}, &out, &errOut); code != 1 {
		t.Errorf("junk file: exit code %d, want 1", code)
	}
}
