// Command traceinfo summarizes a value trace: event counts, static
// instruction footprint, last-value/stride predictability and the
// hottest instructions.
//
// Usage:
//
//	traceinfo li.vtr
//	traceinfo -bench li -budget 1000000 -top 10
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/progs"
	"repro/internal/trace"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable body of main: parse args, load the trace, print
// the summary, return the exit code.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("traceinfo", flag.ContinueOnError)
	fs.SetOutput(stderr)
	bench := fs.String("bench", "", "benchmark to trace instead of reading a file")
	budget := fs.Uint64("budget", 1_000_000, "instruction budget when tracing a benchmark")
	top := fs.Int("top", 10, "number of hottest PCs to list")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	tr, err := loadTrace(fs, *bench, *budget)
	if err != nil {
		if err == errUsage {
			fmt.Fprintln(stderr, "usage: traceinfo [-top N] <file.vtr> | traceinfo -bench <name>")
			return 2
		}
		fmt.Fprintln(stderr, "traceinfo:", err)
		return 1
	}
	writeSummary(stdout, tr, *top)
	return 0
}

var errUsage = fmt.Errorf("traceinfo: bad arguments")

// loadTrace resolves the trace from the -bench flag or the single
// positional file argument.
func loadTrace(fs *flag.FlagSet, bench string, budget uint64) (trace.Trace, error) {
	switch {
	case bench != "":
		return progs.TraceFor(bench, budget)
	case fs.NArg() == 1:
		f, err := os.Open(fs.Arg(0))
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return trace.ReadAuto(f)
	default:
		return nil, errUsage
	}
}

// writeSummary prints the trace statistics block.
func writeSummary(w io.Writer, tr trace.Trace, top int) {
	st := trace.Summarize(tr, top)
	fmt.Fprintf(w, "events:        %d\n", st.Events)
	fmt.Fprintf(w, "distinct PCs:  %d\n", st.DistinctPCs)
	fmt.Fprintf(w, "constant frac: %.4f (last-value predictable)\n", st.ConstantFrac)
	fmt.Fprintf(w, "stride frac:   %.4f (stride predictable)\n", st.StrideFrac)
	if len(st.TopPCs) > 0 {
		fmt.Fprintf(w, "\n%-12s %10s %10s\n", "pc", "events", "values")
		for _, p := range st.TopPCs {
			fmt.Fprintf(w, "%#-12x %10d %10d\n", p.PC, p.Count, p.Values)
		}
	}
}
