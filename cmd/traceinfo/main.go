// Command traceinfo summarizes a value trace: event counts, static
// instruction footprint, last-value/stride predictability and the
// hottest instructions.
//
// Usage:
//
//	traceinfo li.vtr
//	traceinfo -bench li -budget 1000000 -top 10
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/progs"
	"repro/internal/trace"
)

func main() {
	bench := flag.String("bench", "", "benchmark to trace instead of reading a file")
	budget := flag.Uint64("budget", 1_000_000, "instruction budget when tracing a benchmark")
	top := flag.Int("top", 10, "number of hottest PCs to list")
	flag.Parse()

	var tr trace.Trace
	var err error
	switch {
	case *bench != "":
		tr, err = progs.TraceFor(*bench, *budget)
	case flag.NArg() == 1:
		var f *os.File
		f, err = os.Open(flag.Arg(0))
		if err == nil {
			defer f.Close()
			tr, err = trace.ReadAuto(f)
		}
	default:
		fmt.Fprintln(os.Stderr, "usage: traceinfo [-top N] <file.vtr> | traceinfo -bench <name>")
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "traceinfo:", err)
		os.Exit(1)
	}

	st := trace.Summarize(tr, *top)
	fmt.Printf("events:        %d\n", st.Events)
	fmt.Printf("distinct PCs:  %d\n", st.DistinctPCs)
	fmt.Printf("constant frac: %.4f (last-value predictable)\n", st.ConstantFrac)
	fmt.Printf("stride frac:   %.4f (stride predictable)\n", st.StrideFrac)
	if len(st.TopPCs) > 0 {
		fmt.Printf("\n%-12s %10s %10s\n", "pc", "events", "values")
		for _, p := range st.TopPCs {
			fmt.Printf("%#-12x %10d %10d\n", p.PC, p.Count, p.Values)
		}
	}
}
