package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/snapshot"
	"repro/internal/trace"
)

// writeSnap trains a predictor of the given spec for n events and
// writes its snapshot, returning the path.
func writeSnap(t *testing.T, dir, name string, spec core.Spec, n int, meta snapshot.Meta) string {
	t.Helper()
	p, err := spec.New()
	if err != nil {
		t.Fatal(err)
	}
	events := make(trace.Trace, 0, n)
	for i := 0; len(events) < n; i++ {
		events = append(events,
			trace.Event{PC: 0x500, Value: 11},
			trace.Event{PC: 0x504, Value: uint32(i) * 4},
		)
	}
	core.Run(p, trace.NewReader(events[:n]))
	snap, err := snapshot.Capture(spec, p, meta)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := snapshot.WriteFile(path, snap); err != nil {
		t.Fatal(err)
	}
	return path
}

func runCmd(args ...string) (code int, stdout, stderr string) {
	var out, errw bytes.Buffer
	code = run(args, &out, &errw)
	return code, out.String(), errw.String()
}

func TestUsageErrors(t *testing.T) {
	for _, args := range [][]string{
		{},
		{"frobnicate"},
		{"inspect"},
		{"validate"},
		{"diff", "only-one.vps"},
	} {
		if code, _, _ := runCmd(args...); code != 2 {
			t.Errorf("args %v: exit %d, want 2", args, code)
		}
	}
}

func TestInspect(t *testing.T) {
	dir := t.TempDir()
	spec := core.Spec{Kind: "dfcm", L1: 6, L2: 8}
	path := writeSnap(t, dir, "s.vps", spec, 500, snapshot.Meta{Session: 9, Predictions: 500, Hits: 250, Updates: 500})

	code, out, _ := runCmd("inspect", path)
	if code != 0 {
		t.Fatalf("exit %d\n%s", code, out)
	}
	for _, want := range []string{
		"version:     1",
		"spec:        dfcm l1=6 l2=8",
		"session:     9",
		"hits:        250 (50.00%)",
		"tables:",
		"l1", "l2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("inspect output missing %q:\n%s", want, out)
		}
	}

	if code, _, _ := runCmd("inspect", filepath.Join(dir, "missing.vps")); code != 1 {
		t.Errorf("missing file: exit %d, want 1", code)
	}
}

func TestValidate(t *testing.T) {
	dir := t.TempDir()
	good := writeSnap(t, dir, "good.vps", core.Spec{Kind: "fcm", L1: 5, L2: 7}, 300, snapshot.Meta{Session: 1})

	// Corrupt a copy: flip one state byte so the checksum fails.
	raw, err := os.ReadFile(good)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-16] ^= 0xFF
	bad := filepath.Join(dir, "bad.vps")
	if err := os.WriteFile(bad, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	code, out, _ := runCmd("validate", good, bad)
	if code != 1 {
		t.Fatalf("exit %d, want 1\n%s", code, out)
	}
	if !strings.Contains(out, "good.vps: ok") {
		t.Errorf("good file not reported ok:\n%s", out)
	}
	if !strings.Contains(out, "bad.vps: INVALID") {
		t.Errorf("corrupt file not reported invalid:\n%s", out)
	}

	if code, _, _ := runCmd("validate", good); code != 0 {
		t.Errorf("all-good validate: exit %d, want 0", code)
	}
}

func TestDiff(t *testing.T) {
	dir := t.TempDir()
	spec := core.Spec{Kind: "dfcm", L1: 5, L2: 7}
	meta := snapshot.Meta{Session: 2, Predictions: 400, Hits: 100, Updates: 400}
	a := writeSnap(t, dir, "a.vps", spec, 400, meta)
	same := writeSnap(t, dir, "same.vps", spec, 400, meta)
	longer := writeSnap(t, dir, "longer.vps", spec, 800, meta)
	otherSpec := writeSnap(t, dir, "other.vps", core.Spec{Kind: "lvp", L1: 5}, 400, meta)

	if code, out, _ := runCmd("diff", a, same); code != 0 || !strings.Contains(out, "equivalent") {
		t.Errorf("identical snapshots: exit %d\n%s", code, out)
	}
	code, out, _ := runCmd("diff", a, longer)
	if code != 1 || !strings.Contains(out, "state:") {
		t.Errorf("different state: exit %d, want 1\n%s", code, out)
	}
	// Against an untrained snapshot, the occupancy delta localizes the
	// difference per table.
	empty := writeSnap(t, dir, "empty.vps", spec, 0, meta)
	if code, out, _ := runCmd("diff", a, empty); code != 1 || !strings.Contains(out, "table") {
		t.Errorf("trained-vs-empty diff lacks table detail: exit %d\n%s", code, out)
	}
	if code, out, _ := runCmd("diff", a, otherSpec); code != 1 || !strings.Contains(out, "spec:") {
		t.Errorf("spec mismatch: exit %d\n%s", code, out)
	}
	if code, _, _ := runCmd("diff", a, filepath.Join(dir, "missing.vps")); code != 2 {
		t.Errorf("unreadable input: exit %d, want 2", code)
	}

	// Width 0 and width 32 are the same dfcm — canonical compare.
	w0 := writeSnap(t, dir, "w0.vps", core.Spec{Kind: "dfcm", L1: 5, L2: 7}, 400, meta)
	w32 := writeSnap(t, dir, "w32.vps", core.Spec{Kind: "dfcm", L1: 5, L2: 7, Width: 32}, 400, meta)
	if code, out, _ := runCmd("diff", w0, w32); code != 0 {
		t.Errorf("canonical specs treated as different: exit %d\n%s", code, out)
	}
}

// TestInspectTAGE: a tage snapshot renders its geometry in the spec
// line and its per-table occupancy (base, tagged tables with history
// lengths, history ring) through StateTabler.
func TestInspectTAGE(t *testing.T) {
	dir := t.TempDir()
	spec := core.Spec{Kind: "tage", L1: 6, L2: 5, Tables: 3, Tag: 8, HistMin: 4, HistMax: 32}
	path := writeSnap(t, dir, "tage.vps", spec, 600, snapshot.Meta{Session: 3, Predictions: 600, Hits: 200, Updates: 600})
	code, out, _ := runCmd("inspect", path)
	if code != 0 {
		t.Fatalf("exit %d\n%s", code, out)
	}
	for _, want := range []string{
		"spec:        tage l1=6 l2=5 width=0 delay=0 tables=3 tag=8 hmin=4 hmax=32",
		"base", "t1(h4)", "t2(h", "t3(h32)", "hist",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("tage inspect output missing %q:\n%s", want, out)
		}
	}
}

// TestDiffTAGE: two same-geometry tage snapshots that diverge in state
// get the tagged rendering — per-table diverging-entry counts, the
// provider histograms, and any differing u-counter histograms.
func TestDiffTAGE(t *testing.T) {
	dir := t.TempDir()
	spec := core.Spec{Kind: "tage", L1: 6, L2: 5, Tables: 3, Tag: 8, HistMin: 4, HistMax: 32}
	meta := snapshot.Meta{Session: 5, Predictions: 400, Hits: 100, Updates: 400}
	// An alternating-stride stream keeps the base component wrong and
	// the tagged tables allocating (the plain writeSnap workload is
	// base-predictable and never dirties them); two different stride
	// patterns fill the tagged tables with different entries.
	writeAlt := func(name string, strides []uint32) string {
		p, err := spec.New()
		if err != nil {
			t.Fatal(err)
		}
		v := uint32(0)
		events := make(trace.Trace, 600)
		for i := range events {
			v += strides[i%len(strides)]
			events[i] = trace.Event{PC: 0x500, Value: v}
		}
		core.Run(p, trace.NewReader(events))
		snap, err := snapshot.Capture(spec, p, meta)
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(dir, name)
		if err := snapshot.WriteFile(path, snap); err != nil {
			t.Fatal(err)
		}
		return path
	}
	short := writeAlt("short.vps", []uint32{3, 17, 5})
	long := writeAlt("long.vps", []uint32{9, 2, 25, 7})

	code, out, _ := runCmd("diff", short, long)
	if code != 1 {
		t.Fatalf("exit %d, want 1\n%s", code, out)
	}
	for _, want := range []string{"diverging entries", "provider histogram"} {
		if !strings.Contains(out, want) {
			t.Errorf("tage diff output missing %q:\n%s", want, out)
		}
	}

	// Same state → no tagged rendering, just equivalence.
	same := writeAlt("same.vps", []uint32{3, 17, 5})
	if code, out, _ := runCmd("diff", short, same); code != 0 {
		t.Errorf("identical tage snapshots: exit %d\n%s", code, out)
	}
}
