// Command vpstate inspects the predictor snapshot files written by
// vpserve's checkpointing (the internal/snapshot "VPSS" format).
//
// Usage:
//
//	vpstate inspect file.vps...      header, spec, counters, per-table occupancy
//	vpstate validate file.vps...     full integrity check, one line per file
//	vpstate diff a.vps b.vps         compare two snapshots
//
// inspect decodes each file (checksum included — a corrupt file never
// prints partial state) and reports the format version, predictor
// spec, session counters, and each predictor table's entry and live
// counts, reconstructed by restoring the state into a fresh predictor.
//
// validate exits 0 when every file decodes, restores, and re-exports
// byte-identical state; 1 otherwise.
//
// diff exits 0 when the two snapshots are equivalent (same canonical
// spec, counters and state bytes), 1 when they differ, 2 on error —
// the same contract as diff(1). For same-geometry tage snapshots the
// state diff additionally renders per-tagged-table diverging-entry
// counts, the provider-table-index histograms, and side-by-side
// usefulness-counter histograms.
package main

import (
	"bytes"
	"fmt"
	"io"
	"os"

	"repro/internal/core"
	"repro/internal/snapshot"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable entry point: it parses the subcommand and
// returns the process exit code.
func run(args []string, stdout, stderr io.Writer) int {
	if len(args) < 1 {
		usage(stderr)
		return 2
	}
	switch args[0] {
	case "inspect":
		return runInspect(args[1:], stdout, stderr)
	case "validate":
		return runValidate(args[1:], stdout, stderr)
	case "diff":
		return runDiff(args[1:], stdout, stderr)
	default:
		fmt.Fprintf(stderr, "vpstate: unknown command %q\n", args[0])
		usage(stderr)
		return 2
	}
}

func usage(w io.Writer) {
	fmt.Fprintln(w, "usage: vpstate inspect file.vps...")
	fmt.Fprintln(w, "       vpstate validate file.vps...")
	fmt.Fprintln(w, "       vpstate diff a.vps b.vps")
}

// specString renders a spec in the shared flag vocabulary.
func specString(s core.Spec) string {
	out := fmt.Sprintf("%s l1=%d l2=%d width=%d delay=%d", s.Kind, s.L1, s.L2, s.Width, s.Delay)
	if s.Kind == "tage" {
		c := s.Canonical()
		out += fmt.Sprintf(" tables=%d tag=%d hmin=%d hmax=%d", c.Tables, c.Tag, c.HistMin, c.HistMax)
	}
	return out
}

func runInspect(files []string, stdout, stderr io.Writer) int {
	if len(files) == 0 {
		fmt.Fprintln(stderr, "vpstate inspect: no files")
		return 2
	}
	code := 0
	for _, path := range files {
		snap, err := snapshot.ReadFile(path)
		if err != nil {
			fmt.Fprintf(stderr, "vpstate: %v\n", err)
			code = 1
			continue
		}
		fmt.Fprintf(stdout, "file:        %s\n", path)
		fmt.Fprintf(stdout, "version:     %d\n", snap.Version)
		fmt.Fprintf(stdout, "spec:        %s\n", specString(snap.Spec))
		fmt.Fprintf(stdout, "session:     %d\n", snap.Meta.Session)
		if snap.Meta.Predictions > 0 {
			fmt.Fprintf(stdout, "predictions: %d\n", snap.Meta.Predictions)
			fmt.Fprintf(stdout, "hits:        %d (%.2f%%)\n", snap.Meta.Hits,
				100*float64(snap.Meta.Hits)/float64(snap.Meta.Predictions))
		} else {
			fmt.Fprintf(stdout, "predictions: 0\n")
			fmt.Fprintf(stdout, "hits:        %d\n", snap.Meta.Hits)
		}
		fmt.Fprintf(stdout, "updates:     %d\n", snap.Meta.Updates)
		fmt.Fprintf(stdout, "state:       %d bytes\n", len(snap.State))
		p, err := snap.Restore()
		if err != nil {
			fmt.Fprintf(stderr, "vpstate: %s: state does not restore: %v\n", path, err)
			code = 1
			continue
		}
		if st, ok := p.(core.StateTabler); ok {
			fmt.Fprintf(stdout, "tables:\n")
			for _, ti := range st.StateTables() {
				fmt.Fprintf(stdout, "  %-24s %8d entries %8d live\n", ti.Name, ti.Entries, ti.Live)
			}
		}
	}
	return code
}

func runValidate(files []string, stdout, stderr io.Writer) int {
	if len(files) == 0 {
		fmt.Fprintln(stderr, "vpstate validate: no files")
		return 2
	}
	code := 0
	for _, path := range files {
		if err := validateFile(path); err != nil {
			fmt.Fprintf(stdout, "%s: INVALID: %v\n", path, err)
			code = 1
			continue
		}
		fmt.Fprintf(stdout, "%s: ok\n", path)
	}
	return code
}

// validateFile runs the full integrity chain: container decode
// (header, section structure, checksum), spec reconstruction, state
// restore, and a re-export check — restored state must serialize back
// to the same bytes, or the snapshot would drift across
// checkpoint/restore cycles.
func validateFile(path string) error {
	snap, err := snapshot.ReadFile(path)
	if err != nil {
		return err
	}
	p, err := snap.Restore()
	if err != nil {
		return err
	}
	again := p.(core.Snapshotter).AppendState(nil)
	if !bytes.Equal(again, snap.State) {
		return fmt.Errorf("restored state re-exports %d bytes that differ from the file's %d", len(again), len(snap.State))
	}
	return nil
}

func runDiff(files []string, stdout, stderr io.Writer) int {
	if len(files) != 2 {
		fmt.Fprintln(stderr, "vpstate diff: need exactly two files")
		return 2
	}
	a, err := snapshot.ReadFile(files[0])
	if err != nil {
		fmt.Fprintf(stderr, "vpstate: %v\n", err)
		return 2
	}
	b, err := snapshot.ReadFile(files[1])
	if err != nil {
		fmt.Fprintf(stderr, "vpstate: %v\n", err)
		return 2
	}
	differ := false
	if a.Spec.Canonical() != b.Spec.Canonical() {
		fmt.Fprintf(stdout, "spec: %s | %s\n", specString(a.Spec), specString(b.Spec))
		differ = true
	}
	if a.Meta != b.Meta {
		fmt.Fprintf(stdout, "meta: session %d predictions %d hits %d updates %d | session %d predictions %d hits %d updates %d\n",
			a.Meta.Session, a.Meta.Predictions, a.Meta.Hits, a.Meta.Updates,
			b.Meta.Session, b.Meta.Predictions, b.Meta.Hits, b.Meta.Updates)
		differ = true
	}
	if !bytes.Equal(a.State, b.State) {
		fmt.Fprintf(stdout, "state: %d bytes | %d bytes (content differs)\n", len(a.State), len(b.State))
		// Per-table occupancy localizes where two same-spec snapshots
		// diverge without dumping raw state.
		at, aok := tableInfo(a)
		bt, bok := tableInfo(b)
		if aok && bok && len(at) == len(bt) {
			for i := range at {
				if at[i] != bt[i] {
					fmt.Fprintf(stdout, "  table %-24s %d/%d live | %d/%d live\n",
						at[i].Name, at[i].Live, at[i].Entries, bt[i].Live, bt[i].Entries)
				}
			}
		}
		diffTAGE(stdout, a, b)
		differ = true
	}
	if differ {
		return 1
	}
	fmt.Fprintf(stdout, "snapshots are equivalent\n")
	return 0
}

// tableInfo restores a snapshot and reports its table occupancy;
// ok is false when the state does not restore.
func tableInfo(s *snapshot.Snapshot) ([]core.TableInfo, bool) {
	p, err := s.Restore()
	if err != nil {
		return nil, false
	}
	st, ok := p.(core.StateTabler)
	if !ok {
		return nil, false
	}
	return st.StateTables(), true
}

// restoreTAGE restores a snapshot and unwraps it to the concrete TAGE
// predictor (a delayed tage restores to a wrapper, which falls back to
// the generic rendering above).
func restoreTAGE(s *snapshot.Snapshot) *core.TAGE {
	p, err := s.Restore()
	if err != nil {
		return nil
	}
	t, _ := p.(*core.TAGE)
	return t
}

// diffTAGE renders the tagged-geometry view of a state divergence:
// per-table diverging-entry counts, the two provider-table-index
// histograms (which table answers for each base slot), and each
// table's usefulness-counter histogram side by side. Quiet for
// non-tage or geometry-mismatched snapshots.
func diffTAGE(stdout io.Writer, a, b *snapshot.Snapshot) {
	ta, tb := restoreTAGE(a), restoreTAGE(b)
	if ta == nil || tb == nil {
		return
	}
	div, ok := ta.DivergingEntries(tb)
	if !ok {
		return
	}
	hists := ta.HistoryLengths()
	for t, n := range div {
		if n > 0 {
			fmt.Fprintf(stdout, "  tagged t%d(h%d): %d diverging entries\n", t+1, hists[t], n)
		}
	}
	fmt.Fprintf(stdout, "  provider histogram (t1..t%d, base): %v | %v\n",
		ta.NumTables(), ta.ProviderHistogram(), tb.ProviderHistogram())
	for t := 0; t < ta.NumTables(); t++ {
		ua, ub := ta.UHistogram(t), tb.UHistogram(t)
		if ua != ub {
			fmt.Fprintf(stdout, "  u-counters t%d (u0..u3): %v | %v\n", t+1, ua, ub)
		}
	}
}
