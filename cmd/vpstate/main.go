// Command vpstate inspects the predictor snapshot files written by
// vpserve's checkpointing (the internal/snapshot "VPSS" format).
//
// Usage:
//
//	vpstate inspect file.vps...      header, spec, counters, per-table occupancy
//	vpstate validate file.vps...     full integrity check, one line per file
//	vpstate diff a.vps b.vps         compare two snapshots
//
// inspect decodes each file (checksum included — a corrupt file never
// prints partial state) and reports the format version, predictor
// spec, session counters, and each predictor table's entry and live
// counts, reconstructed by restoring the state into a fresh predictor.
//
// validate exits 0 when every file decodes, restores, and re-exports
// byte-identical state; 1 otherwise.
//
// diff exits 0 when the two snapshots are equivalent (same canonical
// spec, counters and state bytes), 1 when they differ, 2 on error —
// the same contract as diff(1).
package main

import (
	"bytes"
	"fmt"
	"io"
	"os"

	"repro/internal/core"
	"repro/internal/snapshot"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable entry point: it parses the subcommand and
// returns the process exit code.
func run(args []string, stdout, stderr io.Writer) int {
	if len(args) < 1 {
		usage(stderr)
		return 2
	}
	switch args[0] {
	case "inspect":
		return runInspect(args[1:], stdout, stderr)
	case "validate":
		return runValidate(args[1:], stdout, stderr)
	case "diff":
		return runDiff(args[1:], stdout, stderr)
	default:
		fmt.Fprintf(stderr, "vpstate: unknown command %q\n", args[0])
		usage(stderr)
		return 2
	}
}

func usage(w io.Writer) {
	fmt.Fprintln(w, "usage: vpstate inspect file.vps...")
	fmt.Fprintln(w, "       vpstate validate file.vps...")
	fmt.Fprintln(w, "       vpstate diff a.vps b.vps")
}

// specString renders a spec in the shared flag vocabulary.
func specString(s core.Spec) string {
	return fmt.Sprintf("%s l1=%d l2=%d width=%d delay=%d", s.Kind, s.L1, s.L2, s.Width, s.Delay)
}

func runInspect(files []string, stdout, stderr io.Writer) int {
	if len(files) == 0 {
		fmt.Fprintln(stderr, "vpstate inspect: no files")
		return 2
	}
	code := 0
	for _, path := range files {
		snap, err := snapshot.ReadFile(path)
		if err != nil {
			fmt.Fprintf(stderr, "vpstate: %v\n", err)
			code = 1
			continue
		}
		fmt.Fprintf(stdout, "file:        %s\n", path)
		fmt.Fprintf(stdout, "version:     %d\n", snap.Version)
		fmt.Fprintf(stdout, "spec:        %s\n", specString(snap.Spec))
		fmt.Fprintf(stdout, "session:     %d\n", snap.Meta.Session)
		if snap.Meta.Predictions > 0 {
			fmt.Fprintf(stdout, "predictions: %d\n", snap.Meta.Predictions)
			fmt.Fprintf(stdout, "hits:        %d (%.2f%%)\n", snap.Meta.Hits,
				100*float64(snap.Meta.Hits)/float64(snap.Meta.Predictions))
		} else {
			fmt.Fprintf(stdout, "predictions: 0\n")
			fmt.Fprintf(stdout, "hits:        %d\n", snap.Meta.Hits)
		}
		fmt.Fprintf(stdout, "updates:     %d\n", snap.Meta.Updates)
		fmt.Fprintf(stdout, "state:       %d bytes\n", len(snap.State))
		p, err := snap.Restore()
		if err != nil {
			fmt.Fprintf(stderr, "vpstate: %s: state does not restore: %v\n", path, err)
			code = 1
			continue
		}
		if st, ok := p.(core.StateTabler); ok {
			fmt.Fprintf(stdout, "tables:\n")
			for _, ti := range st.StateTables() {
				fmt.Fprintf(stdout, "  %-24s %8d entries %8d live\n", ti.Name, ti.Entries, ti.Live)
			}
		}
	}
	return code
}

func runValidate(files []string, stdout, stderr io.Writer) int {
	if len(files) == 0 {
		fmt.Fprintln(stderr, "vpstate validate: no files")
		return 2
	}
	code := 0
	for _, path := range files {
		if err := validateFile(path); err != nil {
			fmt.Fprintf(stdout, "%s: INVALID: %v\n", path, err)
			code = 1
			continue
		}
		fmt.Fprintf(stdout, "%s: ok\n", path)
	}
	return code
}

// validateFile runs the full integrity chain: container decode
// (header, section structure, checksum), spec reconstruction, state
// restore, and a re-export check — restored state must serialize back
// to the same bytes, or the snapshot would drift across
// checkpoint/restore cycles.
func validateFile(path string) error {
	snap, err := snapshot.ReadFile(path)
	if err != nil {
		return err
	}
	p, err := snap.Restore()
	if err != nil {
		return err
	}
	again := p.(core.Snapshotter).AppendState(nil)
	if !bytes.Equal(again, snap.State) {
		return fmt.Errorf("restored state re-exports %d bytes that differ from the file's %d", len(again), len(snap.State))
	}
	return nil
}

func runDiff(files []string, stdout, stderr io.Writer) int {
	if len(files) != 2 {
		fmt.Fprintln(stderr, "vpstate diff: need exactly two files")
		return 2
	}
	a, err := snapshot.ReadFile(files[0])
	if err != nil {
		fmt.Fprintf(stderr, "vpstate: %v\n", err)
		return 2
	}
	b, err := snapshot.ReadFile(files[1])
	if err != nil {
		fmt.Fprintf(stderr, "vpstate: %v\n", err)
		return 2
	}
	differ := false
	if a.Spec.Canonical() != b.Spec.Canonical() {
		fmt.Fprintf(stdout, "spec: %s | %s\n", specString(a.Spec), specString(b.Spec))
		differ = true
	}
	if a.Meta != b.Meta {
		fmt.Fprintf(stdout, "meta: session %d predictions %d hits %d updates %d | session %d predictions %d hits %d updates %d\n",
			a.Meta.Session, a.Meta.Predictions, a.Meta.Hits, a.Meta.Updates,
			b.Meta.Session, b.Meta.Predictions, b.Meta.Hits, b.Meta.Updates)
		differ = true
	}
	if !bytes.Equal(a.State, b.State) {
		fmt.Fprintf(stdout, "state: %d bytes | %d bytes (content differs)\n", len(a.State), len(b.State))
		// Per-table occupancy localizes where two same-spec snapshots
		// diverge without dumping raw state.
		at, aok := tableInfo(a)
		bt, bok := tableInfo(b)
		if aok && bok && len(at) == len(bt) {
			for i := range at {
				if at[i] != bt[i] {
					fmt.Fprintf(stdout, "  table %-24s %d/%d live | %d/%d live\n",
						at[i].Name, at[i].Live, at[i].Entries, bt[i].Live, bt[i].Entries)
				}
			}
		}
		differ = true
	}
	if differ {
		return 1
	}
	fmt.Fprintf(stdout, "snapshots are equivalent\n")
	return 0
}

// tableInfo restores a snapshot and reports its table occupancy;
// ok is false when the state does not restore.
func tableInfo(s *snapshot.Snapshot) ([]core.TableInfo, bool) {
	p, err := s.Restore()
	if err != nil {
		return nil, false
	}
	st, ok := p.(core.StateTabler)
	if !ok {
		return nil, false
	}
	return st.StateTables(), true
}
