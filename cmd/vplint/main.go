// Command vplint runs the repo's project-specific static-analysis
// suite (internal/analysis) over the module and exits non-zero when
// any invariant is violated. It is the `make lint` gate.
//
// Usage:
//
//	vplint [-C dir] [-rules id,id,...] [-list] [packages]
//
// Packages are directory patterns relative to the working directory
// ("./...", "./internal/core", "internal/serve/..."); with none given
// the whole module is analyzed. Rules are selected by ID (see -list).
// Findings print as file:line:col: rule: message, one per line, and
// the exit status is 1 when any are reported, 2 on usage errors, 3
// when the tree cannot be loaded or type-checked.
//
// Suppress a finding by annotating its line (or the line above) with
//
//	//lint:ignore <rule>[,<rule>...] <reason>
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("vplint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	dir := fs.String("C", ".", "analyze the module containing this directory")
	rules := fs.String("rules", "", "comma-separated rule IDs to run (default: all)")
	list := fs.Bool("list", false, "list available rules and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		for _, a := range analysis.All() {
			fmt.Fprintf(stdout, "%-18s %s\n", a.ID, a.Doc)
		}
		return 0
	}

	analyzers, err := analysis.ByID(*rules)
	if err != nil {
		fmt.Fprintln(stderr, "vplint:", err)
		return 2
	}

	start, err := filepath.Abs(*dir)
	if err != nil {
		fmt.Fprintln(stderr, "vplint:", err)
		return 2
	}
	root, err := findModuleRoot(start)
	if err != nil {
		fmt.Fprintln(stderr, "vplint:", err)
		return 2
	}

	pkgs, err := analysis.LoadModule(root)
	if err != nil {
		fmt.Fprintln(stderr, "vplint:", err)
		return 3
	}
	pkgs = filterPackages(pkgs, fs.Args(), start)

	diags := analysis.Run(pkgs, analyzers)
	for _, d := range diags {
		fmt.Fprintln(stdout, d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "vplint: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}

// findModuleRoot walks up from dir to the directory containing
// go.mod.
func findModuleRoot(dir string) (string, error) {
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found in or above %s", dir)
		}
		dir = parent
	}
}

// filterPackages narrows the loaded module to the requested directory
// patterns, resolved relative to base. An empty pattern list, "...",
// or "./..." selects everything.
func filterPackages(pkgs []*analysis.Package, patterns []string, base string) []*analysis.Package {
	if len(patterns) == 0 {
		return pkgs
	}
	var out []*analysis.Package
	for _, pkg := range pkgs {
		for _, pat := range patterns {
			if matchPattern(pkg.Dir, pat, base) {
				out = append(out, pkg)
				break
			}
		}
	}
	return out
}

func matchPattern(pkgDir, pat, base string) bool {
	recursive := false
	if pat == "..." {
		pat, recursive = ".", true
	} else if rest, ok := strings.CutSuffix(pat, "/..."); ok {
		pat, recursive = rest, true
		if pat == "" {
			pat = "."
		}
	}
	target := pat
	if !filepath.IsAbs(target) {
		target = filepath.Join(base, pat)
	}
	target = filepath.Clean(target)
	if pkgDir == target {
		return true
	}
	return recursive && strings.HasPrefix(pkgDir, target+string(filepath.Separator))
}
