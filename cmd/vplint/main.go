// Command vplint runs the repo's project-specific static-analysis
// suite (internal/analysis) over the module and exits non-zero when
// any invariant is violated. It is the `make lint` gate.
//
// Usage:
//
//	vplint [-C dir] [-rules id,id,...] [-list] [-json] [-deadline d] [packages]
//
// Packages are directory patterns relative to the working directory
// ("./...", "./internal/core", "internal/serve/..."); with none given
// the whole module is analyzed. Rules are selected by ID (see -list).
// Findings print as file:line:col: rule: message, one per line — or,
// with -json, as a JSON array of {file, line, col, rule, message}
// objects (file is module-root-relative) for machine consumers such as
// the CI annotation step. The wall time of the load+analysis pass is
// always reported on stderr; -deadline turns a slow run into a
// failure, keeping the single-process multi-rule design honest as the
// tree grows. Exit status: 1 when findings are reported, 2 on usage
// errors, 3 when the tree cannot be loaded or type-checked, 4 when the
// run is clean but exceeded the deadline.
//
// Suppress a finding by annotating its line (or the line above) with
//
//	//lint:ignore <rule>[,<rule>...] <reason>
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("vplint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	dir := fs.String("C", ".", "analyze the module containing this directory")
	rules := fs.String("rules", "", "comma-separated rule IDs to run (default: all)")
	list := fs.Bool("list", false, "list available rules and exit")
	jsonOut := fs.Bool("json", false, "emit findings as a JSON array (file paths module-root-relative)")
	deadline := fs.Duration("deadline", 0, "exit 4 if load+analysis wall time exceeds this (0 disables)")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		for _, a := range analysis.All() {
			fmt.Fprintf(stdout, "%-18s %s\n", a.ID, a.Doc)
		}
		return 0
	}

	analyzers, err := analysis.ByID(*rules)
	if err != nil {
		fmt.Fprintln(stderr, "vplint:", err)
		return 2
	}

	start, err := filepath.Abs(*dir)
	if err != nil {
		fmt.Fprintln(stderr, "vplint:", err)
		return 2
	}
	root, err := findModuleRoot(start)
	if err != nil {
		fmt.Fprintln(stderr, "vplint:", err)
		return 2
	}

	began := time.Now()
	pkgs, err := analysis.LoadModule(root)
	if err != nil {
		fmt.Fprintln(stderr, "vplint:", err)
		return 3
	}
	pkgs = filterPackages(pkgs, fs.Args(), start)

	diags := analysis.Run(pkgs, analyzers)
	elapsed := time.Since(began)
	fmt.Fprintf(stderr, "vplint: %d rule(s) over %d package(s) in %s\n",
		len(analyzers), len(pkgs), elapsed.Round(time.Millisecond))

	if *jsonOut {
		if err := writeJSON(stdout, root, diags); err != nil {
			fmt.Fprintln(stderr, "vplint:", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(stdout, d)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "vplint: %d finding(s)\n", len(diags))
		return 1
	}
	if *deadline > 0 && elapsed > *deadline {
		fmt.Fprintf(stderr, "vplint: clean, but %s exceeded the %s deadline\n", elapsed.Round(time.Millisecond), *deadline)
		return 4
	}
	return 0
}

// jsonFinding is the machine-readable diagnostic shape; file is
// relative to the module root so CI annotations attach to the right
// blob regardless of checkout directory.
type jsonFinding struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Rule    string `json:"rule"`
	Message string `json:"message"`
}

func writeJSON(w io.Writer, root string, diags []analysis.Diagnostic) error {
	out := make([]jsonFinding, 0, len(diags))
	for _, d := range diags {
		file := d.Pos.Filename
		if rel, err := filepath.Rel(root, file); err == nil && !strings.HasPrefix(rel, "..") {
			file = filepath.ToSlash(rel)
		}
		out = append(out, jsonFinding{
			File:    file,
			Line:    d.Pos.Line,
			Col:     d.Pos.Column,
			Rule:    d.Rule,
			Message: d.Message,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "\t")
	return enc.Encode(out)
}

// findModuleRoot walks up from dir to the directory containing
// go.mod.
func findModuleRoot(dir string) (string, error) {
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found in or above %s", dir)
		}
		dir = parent
	}
}

// filterPackages narrows the loaded module to the requested directory
// patterns, resolved relative to base. An empty pattern list, "...",
// or "./..." selects everything.
func filterPackages(pkgs []*analysis.Package, patterns []string, base string) []*analysis.Package {
	if len(patterns) == 0 {
		return pkgs
	}
	var out []*analysis.Package
	for _, pkg := range pkgs {
		for _, pat := range patterns {
			if matchPattern(pkg.Dir, pat, base) {
				out = append(out, pkg)
				break
			}
		}
	}
	return out
}

func matchPattern(pkgDir, pat, base string) bool {
	recursive := false
	if pat == "..." {
		pat, recursive = ".", true
	} else if rest, ok := strings.CutSuffix(pat, "/..."); ok {
		pat, recursive = rest, true
		if pat == "" {
			pat = "."
		}
	}
	target := pat
	if !filepath.IsAbs(target) {
		target = filepath.Join(base, pat)
	}
	target = filepath.Clean(target)
	if pkgDir == target {
		return true
	}
	return recursive && strings.HasPrefix(pkgDir, target+string(filepath.Separator))
}
