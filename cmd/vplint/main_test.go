package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeModule materializes a throwaway Go module for the linter to
// chew on. files maps module-relative paths to contents.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	files["go.mod"] = "module fixturemod\n\ngo 1.22\n"
	for rel, src := range files {
		path := filepath.Join(dir, rel)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

const dirtyMain = `package main

import "os"

func main() {
	f, err := os.Create("x")
	if err != nil {
		return
	}
	f.Close()
}
`

func TestFindingsExitNonZero(t *testing.T) {
	dir := writeModule(t, map[string]string{"cmd/tool/main.go": dirtyMain})
	var out, errOut bytes.Buffer
	code := run([]string{"-C", dir}, &out, &errOut)
	if code != 1 {
		t.Fatalf("exit %d, want 1; stderr: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "error-discipline") || !strings.Contains(out.String(), "main.go:10") {
		t.Errorf("finding not reported as file:line rule: %q", out.String())
	}
}

func TestCleanTreeExitsZero(t *testing.T) {
	dir := writeModule(t, map[string]string{"cmd/tool/main.go": `package main

func main() {}
`})
	var out, errOut bytes.Buffer
	if code := run([]string{"-C", dir}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d, want 0; out: %s stderr: %s", code, out.String(), errOut.String())
	}
	if out.Len() != 0 {
		t.Errorf("clean tree printed findings: %q", out.String())
	}
}

func TestSuppressedFindingExitsZero(t *testing.T) {
	src := strings.Replace(dirtyMain, "\tf.Close()",
		"\t//lint:ignore error-discipline test: close error is unobservable here\n\tf.Close()", 1)
	dir := writeModule(t, map[string]string{"cmd/tool/main.go": src})
	var out, errOut bytes.Buffer
	if code := run([]string{"-C", dir}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d, want 0; out: %s", code, out.String())
	}
}

func TestRuleSelection(t *testing.T) {
	dir := writeModule(t, map[string]string{"cmd/tool/main.go": dirtyMain})
	var out, errOut bytes.Buffer
	// Only the determinism rule runs, so the unchecked Close passes.
	if code := run([]string{"-C", dir, "-rules", "determinism"}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d, want 0; out: %s", code, out.String())
	}
	if code := run([]string{"-C", dir, "-rules", "bogus"}, &out, &errOut); code != 2 {
		t.Fatalf("unknown rule: exit %d, want 2", code)
	}
}

func TestPackagePatternFilter(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"cmd/tool/main.go":  dirtyMain,
		"internal/ok/ok.go": "package ok\n",
	})
	var out, errOut bytes.Buffer
	// Restricting to internal/... skips the cmd finding.
	if code := run([]string{"-C", dir, filepath.Join(dir, "internal") + "/..."}, &out, &errOut); code != 0 {
		t.Fatalf("filtered run: exit %d, want 0; out: %s", code, out.String())
	}
	out.Reset()
	if code := run([]string{"-C", dir, filepath.Join(dir, "cmd") + "/..."}, &out, &errOut); code != 1 {
		t.Fatalf("cmd-only run: exit %d, want 1", code)
	}
}

func TestListRules(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-list"}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d, want 0", code)
	}
	for _, id := range []string{"predict-purity", "determinism", "hot-path-alloc", "proto-bounds", "error-discipline"} {
		if !strings.Contains(out.String(), id) {
			t.Errorf("-list output missing %s", id)
		}
	}
}

func TestJSONOutput(t *testing.T) {
	dir := writeModule(t, map[string]string{"cmd/tool/main.go": dirtyMain})
	var out, errOut bytes.Buffer
	if code := run([]string{"-C", dir, "-json"}, &out, &errOut); code != 1 {
		t.Fatalf("exit %d, want 1; stderr: %s", code, errOut.String())
	}
	var findings []jsonFinding
	if err := json.Unmarshal(out.Bytes(), &findings); err != nil {
		t.Fatalf("output is not a JSON array: %v\n%s", err, out.String())
	}
	if len(findings) == 0 {
		t.Fatal("JSON output carries no findings")
	}
	f := findings[0]
	if f.File != "cmd/tool/main.go" || f.Line != 10 || f.Rule != "error-discipline" || f.Message == "" {
		t.Errorf("finding fields wrong: %+v", f)
	}

	// A clean tree must still emit a (now empty) array, so consumers
	// can parse unconditionally.
	dir = writeModule(t, map[string]string{"cmd/tool/main.go": "package main\n\nfunc main() {}\n"})
	out.Reset()
	if code := run([]string{"-C", dir, "-json"}, &out, &errOut); code != 0 {
		t.Fatalf("clean tree: exit %d", code)
	}
	if err := json.Unmarshal(out.Bytes(), &findings); err != nil || len(findings) != 0 {
		t.Errorf("clean tree JSON = %q (err %v), want []", out.String(), err)
	}
}

func TestDeadline(t *testing.T) {
	dir := writeModule(t, map[string]string{"cmd/tool/main.go": "package main\n\nfunc main() {}\n"})
	var out, errOut bytes.Buffer
	// No run over a real module completes within a nanosecond, so a
	// clean tree must exit 4 and say so.
	if code := run([]string{"-C", dir, "-deadline", "1ns"}, &out, &errOut); code != 4 {
		t.Fatalf("exit %d, want 4; stderr: %s", code, errOut.String())
	}
	if !strings.Contains(errOut.String(), "deadline") {
		t.Errorf("stderr does not mention the deadline: %q", errOut.String())
	}
	// A generous deadline passes, and the timing line is always there.
	errOut.Reset()
	if code := run([]string{"-C", dir, "-deadline", "10m"}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d, want 0", code)
	}
	if !strings.Contains(errOut.String(), "package(s) in") {
		t.Errorf("stderr missing the wall-time line: %q", errOut.String())
	}
	// Findings outrank a blown deadline: the finding exit code wins.
	dir = writeModule(t, map[string]string{"cmd/tool/main.go": dirtyMain})
	if code := run([]string{"-C", dir, "-deadline", "1ns"}, &out, &errOut); code != 1 {
		t.Fatalf("findings + blown deadline: exit %d, want 1", code)
	}
}

func TestBrokenTreeExitsThree(t *testing.T) {
	dir := writeModule(t, map[string]string{"cmd/tool/main.go": "package main\n\nfunc main() { undefined() }\n"})
	var out, errOut bytes.Buffer
	if code := run([]string{"-C", dir}, &out, &errOut); code != 3 {
		t.Fatalf("exit %d, want 3; stderr: %s", code, errOut.String())
	}
}
