// Command vprouter is the scale-out serving tier: a VP1 proxy that
// spreads sessions across a fleet of vpserve backends on a
// consistent-hash ring. Clients speak the same wire protocol to the
// router as to a single vpserve — cmd/vploadgen and serve.Client work
// unchanged — while the router health-checks the backends, aggregates
// Stats cluster-wide, and migrates live sessions between backends
// with zero prediction loss (quiesce → SnapshotSession →
// RestoreSession → re-route).
//
// Usage:
//
//	vprouter -addr :9200 -backends localhost:9177,localhost:9178
//	vprouter -addr :9200 -admin :9201 -backends localhost:9177 -health-interval 5s
//
// The -admin HTTP listener exposes the control surface:
//
//	GET  /stats                     routing and per-backend stats
//	POST /migrate?session=N&to=A    move one live session
//	POST /backends/add?addr=A       grow the ring (auto-migrates moved sessions)
//	POST /backends/remove?addr=A    drain and drop a backend
//
// All backends must run the same predictor spec; migration fails
// closed (the session stays where its state is) if they do not.
// SIGINT/SIGTERM stop the router; backend state is untouched — the
// backends own the sessions, the router only routes.
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/serve"
)

type options struct {
	addr      string
	adminAddr string
	backends  string
	cfg       cluster.Config
}

// parseFlags binds the option set to fs and returns the destination
// struct; separated from main so tests can drive it.
func parseFlags(fs *flag.FlagSet) *options {
	o := &options{}
	fs.StringVar(&o.addr, "addr", ":9200", "TCP listen address for the predictor protocol")
	fs.StringVar(&o.adminAddr, "admin", "", "optional HTTP listen address for the admin control surface (empty disables)")
	fs.StringVar(&o.backends, "backends", "", "comma-separated vpserve backend addresses (required)")
	fs.IntVar(&o.cfg.VNodes, "vnodes", cluster.DefaultVNodes, "virtual nodes per backend on the hash ring")
	fs.DurationVar(&o.cfg.HealthInterval, "health-interval", 5*time.Second, "backend health probe period (0 disables)")
	fs.IntVar(&o.cfg.HealthFails, "health-fails", 3, "consecutive probe failures that mark a backend down")
	fs.DurationVar(&o.cfg.Dialer.Timeout, "dial-timeout", 10*time.Second, "backend dial and round-trip timeout")
	fs.IntVar(&o.cfg.Dialer.Retries, "dial-retries", 2, "extra connect attempts on transient backend dial errors")
	fs.DurationVar(&o.cfg.Dialer.Backoff, "dial-backoff", 50*time.Millisecond, "initial backoff between connect attempts (doubles per retry)")
	fs.IntVar(&o.cfg.MaxFrame, "max-frame", serve.DefaultMaxFrame, "maximum inbound request frame payload in bytes")
	fs.DurationVar(&o.cfg.ReadTimeout, "read-timeout", 60*time.Second, "per-connection idle read deadline")
	fs.DurationVar(&o.cfg.WriteTimeout, "write-timeout", 10*time.Second, "per-response write deadline")
	return o
}

// newRouter validates the options and builds the router.
func newRouter(o *options) (*cluster.Router, error) {
	for _, part := range strings.Split(o.backends, ",") {
		if part = strings.TrimSpace(part); part != "" {
			o.cfg.Backends = append(o.cfg.Backends, part)
		}
	}
	if len(o.cfg.Backends) == 0 {
		return nil, fmt.Errorf("-backends requires at least one address")
	}
	return cluster.NewRouter(o.cfg)
}

func main() {
	o := parseFlags(flag.CommandLine)
	flag.Parse()

	r, err := newRouter(o)
	if err != nil {
		fmt.Fprintln(os.Stderr, "vprouter:", err)
		os.Exit(2)
	}
	ln, err := net.Listen("tcp", o.addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "vprouter:", err)
		os.Exit(1)
	}
	log.Printf("vprouter: routing %v on %s", r.Backends(), ln.Addr())

	// The admin listener is tied to shutdown below: its goroutine
	// closes adminDone, and the signal path closes the http.Server and
	// joins on it, so no goroutine outlives Close (goroutine-lifecycle).
	adminDone := make(chan struct{})
	var adminSrv *http.Server
	if o.adminAddr != "" {
		adminSrv = &http.Server{Addr: o.adminAddr, Handler: r.AdminHandler()}
		go func() {
			defer close(adminDone)
			if err := adminSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				log.Printf("vprouter: admin listener: %v", err)
			}
		}()
		log.Printf("vprouter: admin on http://%s/stats", o.adminAddr)
	} else {
		close(adminDone)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	done := make(chan error, 1)
	go func() { done <- r.Serve(ln) }()

	select {
	case s := <-sig:
		log.Printf("vprouter: %v: shutting down", s)
		if adminSrv != nil {
			_ = adminSrv.Close()
		}
		<-adminDone
		r.Close()
		st := r.Stats()
		log.Printf("vprouter: routed %d sessions, %d migrations, %d forward errors",
			st.Sessions, st.Migrations, st.ForwardErrors)
	case err := <-done:
		fmt.Fprintln(os.Stderr, "vprouter:", err)
		os.Exit(1)
	}
}
