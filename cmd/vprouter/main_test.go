package main

import (
	"flag"
	"net"
	"testing"

	"repro/internal/core"
	"repro/internal/serve"
)

// startBackend boots an in-process vpserve on a loopback port.
func startBackend(t *testing.T, spec core.Spec) string {
	t.Helper()
	engine, err := serve.NewEngine(serve.Config{Spec: spec, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	srv := serve.NewServer(engine, serve.ServerConfig{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	t.Cleanup(func() { srv.Close() })
	return ln.Addr().String()
}

func TestNewRouterRejectsNoBackends(t *testing.T) {
	for _, backends := range []string{"", " , ,"} {
		fs := flag.NewFlagSet("vprouter", flag.ContinueOnError)
		o := parseFlags(fs)
		if err := fs.Parse([]string{"-backends", backends}); err != nil {
			t.Fatal(err)
		}
		if _, err := newRouter(o); err == nil {
			t.Errorf("backends=%q: newRouter succeeded", backends)
		}
	}
}

// TestRouterBootAndServe builds the router from flags exactly as main
// does, serves it, and proves a stock serve.Client round-trips
// through it to real backends — including the cluster-wide Stats
// aggregation a single vpserve could not answer.
func TestRouterBootAndServe(t *testing.T) {
	spec := core.Spec{Kind: "dfcm", L1: 10, L2: 10}
	b1 := startBackend(t, spec)
	b2 := startBackend(t, spec)

	fs := flag.NewFlagSet("vprouter", flag.ContinueOnError)
	o := parseFlags(fs)
	if err := fs.Parse([]string{"-backends", b1 + ", " + b2, "-health-interval", "0"}); err != nil {
		t.Fatal(err)
	}
	r, err := newRouter(o)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if got := r.Backends(); len(got) != 2 {
		t.Fatalf("router membership %v, want both backends", got)
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = r.Serve(ln) }()

	c, err := serve.Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for id := uint64(1); id <= 4; id++ {
		values, st, err := c.PredictBatch(id, []uint32{0x10, 0x14, 0x18})
		if err != nil || st != serve.StatusOK {
			t.Fatalf("PredictBatch session %d through router: %v %v", id, st, err)
		}
		if len(values) != 3 {
			t.Fatalf("session %d: %d predictions, want 3", id, len(values))
		}
	}
	st, err := c.Stats()
	if err != nil {
		t.Fatalf("Stats through router: %v", err)
	}
	if st.Sessions != 4 || st.Predictions != 12 {
		t.Errorf("aggregated stats %d sessions / %d predictions, want 4 / 12", st.Sessions, st.Predictions)
	}
}
