// Command vpserve serves the internal/core value predictors over the
// VP1 wire protocol: per-session predictor state, a sharded engine,
// and an optional HTTP stats endpoint. The predictor configuration
// uses the same flags as cmd/vpredict, so an offline replay with
// identical flags reproduces a session's hit counts exactly.
//
// Usage:
//
//	vpserve -addr :9177 -predictor dfcm -l1 16 -l2 12
//	vpserve -addr :9177 -http :9178 -shards 8 -predictor hybrid -l1 14 -l2 12
//
// SIGINT/SIGTERM drain the server gracefully: the listener closes
// immediately, connected clients are served until they disconnect or
// the drain timeout expires.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/serve"
)

type options struct {
	addr     string
	httpAddr string
	spec     core.Spec
	engine   serve.Config
	server   serve.ServerConfig
	drain    time.Duration
}

// parseFlags binds the option set to fs and returns the destination
// struct; separated from main so tests can drive it.
func parseFlags(fs *flag.FlagSet) *options {
	o := &options{}
	fs.StringVar(&o.addr, "addr", ":9177", "TCP listen address for the predictor protocol")
	fs.StringVar(&o.httpAddr, "http", "", "optional HTTP listen address for JSON stats (empty disables)")
	fs.StringVar(&o.spec.Kind, "predictor", "dfcm", "lvp | stride | 2delta | fcm | dfcm | hybrid")
	fs.UintVar(&o.spec.L1, "l1", 16, "log2 of the level-1 (or only) table entries")
	fs.UintVar(&o.spec.L2, "l2", 12, "log2 of the level-2 table entries (fcm/dfcm/hybrid)")
	fs.UintVar(&o.spec.Width, "width", 32, "stored stride width in bits (dfcm)")
	fs.IntVar(&o.spec.Delay, "delay", 0, "update delay in predictions")
	fs.IntVar(&o.engine.Shards, "shards", 0, "shard goroutines (0 = GOMAXPROCS)")
	fs.IntVar(&o.engine.MailboxDepth, "mailbox", 128, "bounded queue depth per shard")
	fs.IntVar(&o.engine.MaxSessions, "max-sessions", 4096, "live session cap across shards")
	fs.DurationVar(&o.server.ReadTimeout, "read-timeout", 60*time.Second, "per-connection idle read deadline")
	fs.DurationVar(&o.server.WriteTimeout, "write-timeout", 10*time.Second, "per-response write deadline")
	fs.IntVar(&o.server.MaxFrame, "max-frame", serve.DefaultMaxFrame, "maximum request frame payload in bytes")
	fs.DurationVar(&o.drain, "drain", 10*time.Second, "graceful drain timeout on SIGINT/SIGTERM")
	return o
}

// newServer validates the options and builds the engine and server.
func newServer(o *options) (*serve.Server, error) {
	// Probe the spec once so a bad flag combination fails at startup,
	// not on the first session.
	if _, err := o.spec.New(); err != nil {
		return nil, fmt.Errorf("predictor spec: %w", err)
	}
	cfg := o.engine
	cfg.NewPredictor = func() core.Predictor {
		p, err := o.spec.New()
		if err != nil {
			panic("vpserve: spec validated at startup cannot fail: " + err.Error())
		}
		return p
	}
	engine, err := serve.NewEngine(cfg)
	if err != nil {
		return nil, err
	}
	return serve.NewServer(engine, o.server), nil
}

func main() {
	o := parseFlags(flag.CommandLine)
	flag.Parse()

	srv, err := newServer(o)
	if err != nil {
		fmt.Fprintln(os.Stderr, "vpserve:", err)
		os.Exit(2)
	}
	ln, err := net.Listen("tcp", o.addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "vpserve:", err)
		os.Exit(1)
	}
	log.Printf("vpserve: serving %s on %s", srv.Engine().Snapshot().Predictor, ln.Addr())

	if o.httpAddr != "" {
		mux := http.NewServeMux()
		mux.Handle("/stats", serve.StatsHandler(srv.Engine()))
		go func() {
			if err := http.ListenAndServe(o.httpAddr, mux); err != nil {
				log.Printf("vpserve: http stats listener: %v", err)
			}
		}()
		log.Printf("vpserve: stats on http://%s/stats", o.httpAddr)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()

	select {
	case s := <-sig:
		log.Printf("vpserve: %v: draining (timeout %v)", s, o.drain)
		ctx, cancel := context.WithTimeout(context.Background(), o.drain)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			log.Printf("vpserve: drain incomplete: %v", err)
		}
		st := srv.Engine().Snapshot()
		log.Printf("vpserve: served %d predictions (%.4f hit rate), %d sessions",
			st.Predictions, st.HitRate, st.Sessions)
	case err := <-done:
		fmt.Fprintln(os.Stderr, "vpserve:", err)
		os.Exit(1)
	}
}
