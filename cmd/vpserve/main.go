// Command vpserve serves the internal/core value predictors over the
// VP1 wire protocol: per-session predictor state, a sharded engine,
// and an optional HTTP stats endpoint. The predictor configuration
// uses the same flags as cmd/vpredict, so an offline replay with
// identical flags reproduces a session's hit counts exactly.
//
// Usage:
//
//	vpserve -addr :9177 -predictor dfcm -l1 16 -l2 12
//	vpserve -addr :9177 -http :9178 -shards 8 -predictor hybrid -l1 14 -l2 12
//	vpserve -addr :9177 -predictor dfcm -checkpoint-dir /var/lib/vpserve -checkpoint-interval 30s
//	vpserve -addr :9177 -predictor tage -l1 13 -l2 10 -tables 4 -tag 8 -hmin 4 -hmax 64
//
// SIGINT/SIGTERM drain the server gracefully: the listener closes
// immediately, connected clients are served until they disconnect or
// the drain timeout expires.
//
// With -checkpoint-dir, every session's predictor state is snapshot to
// one file in the directory (internal/snapshot format, inspectable
// with cmd/vpstate) on the background -checkpoint-interval and again
// on graceful drain; the next boot with the same flags warm-starts
// those sessions — tables, confidence counters and lifetime stats —
// so a restart costs no cold-start accuracy. Snapshots whose
// predictor spec does not match the current flags are skipped, not
// loaded wrong.
//
// With -autotune, an online tuner (internal/autotune) shadows a
// sampled fraction of each session's training traffic through the
// -autotune-candidates specs and hot-swaps a session's predictor when
// a candidate beats its incumbent by the hysteresis margin:
//
//	vpserve -addr :9177 -predictor dfcm -l1 10 -l2 10 \
//	    -autotune -autotune-candidates "dfcm:14:12,dfcm:12:10:16,stride:14"
//
// Tuner counters and per-session shadow scores are served as JSON on
// the HTTP listener's /autotune endpoint. Autotuned servers adopt
// snapshot specs on warm start, so a swapped session survives a
// restart under its swapped configuration.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/autotune"
	"repro/internal/core"
	"repro/internal/serve"
)

type options struct {
	addr     string
	httpAddr string
	spec     core.Spec
	engine   serve.Config
	server   serve.ServerConfig
	drain    time.Duration

	autotune     bool
	atCandidates string
	atObjective  string
	atSample     float64
	atSeed       uint64
	atWindow     int
	atMargin     float64
}

// parseFlags binds the option set to fs and returns the destination
// struct; separated from main so tests can drive it.
func parseFlags(fs *flag.FlagSet) *options {
	o := &options{}
	fs.StringVar(&o.addr, "addr", ":9177", "TCP listen address for the predictor protocol")
	fs.StringVar(&o.httpAddr, "http", "", "optional HTTP listen address for JSON stats (empty disables)")
	fs.StringVar(&o.spec.Kind, "predictor", "dfcm", "lvp | stride | 2delta | fcm | dfcm | hybrid | tage")
	fs.UintVar(&o.spec.L1, "l1", 16, "log2 of the level-1 (or only) table entries")
	fs.UintVar(&o.spec.L2, "l2", 12, "log2 of the level-2 table entries (fcm/dfcm/hybrid); log2 entries per tagged table (tage)")
	fs.UintVar(&o.spec.Width, "width", 32, "stored stride width in bits (dfcm/tage)")
	fs.IntVar(&o.spec.Delay, "delay", 0, "update delay in predictions")
	fs.UintVar(&o.spec.Tables, "tables", 0, "tagged-table count (tage); 0 = default 4")
	fs.UintVar(&o.spec.Tag, "tag", 0, "partial-tag width in bits (tage); 0 = default 8")
	fs.UintVar(&o.spec.HistMin, "hmin", 0, "shortest history length in events (tage); 0 = default 4")
	fs.UintVar(&o.spec.HistMax, "hmax", 0, "longest history length in events (tage); 0 = default 64")
	fs.IntVar(&o.engine.Shards, "shards", 0, "shard goroutines (0 = GOMAXPROCS)")
	fs.IntVar(&o.engine.MailboxDepth, "mailbox", 128, "bounded queue depth per shard")
	fs.IntVar(&o.engine.MaxSessions, "max-sessions", 4096, "live session cap across shards")
	fs.StringVar(&o.engine.CheckpointDir, "checkpoint-dir", "", "directory for per-session predictor snapshots; enables warm start (empty disables)")
	fs.DurationVar(&o.engine.CheckpointInterval, "checkpoint-interval", 30*time.Second, "background checkpoint period (0 = checkpoint on drain only)")
	fs.DurationVar(&o.server.ReadTimeout, "read-timeout", 60*time.Second, "per-connection idle read deadline")
	fs.DurationVar(&o.server.WriteTimeout, "write-timeout", 10*time.Second, "per-response write deadline")
	fs.IntVar(&o.server.MaxFrame, "max-frame", serve.DefaultMaxFrame, "maximum request frame payload in bytes")
	fs.DurationVar(&o.drain, "drain", 10*time.Second, "graceful drain timeout on SIGINT/SIGTERM")
	fs.BoolVar(&o.autotune, "autotune", false, "enable the online autotuner (shadow-evaluates -autotune-candidates and hot-swaps winners)")
	fs.StringVar(&o.atCandidates, "autotune-candidates", "", "comma-separated candidate specs, kind:l1[:l2[:width[:delay[:tables[:tag[:hmin[:hmax]]]]]]] (required with -autotune)")
	fs.StringVar(&o.atObjective, "autotune-objective", "accuracy", "promotion objective: accuracy | efficiency (accuracy per Kbit)")
	fs.Float64Var(&o.atSample, "autotune-sample", 1, "fraction of training batches mirrored to the tuner, in (0,1]")
	fs.Uint64Var(&o.atSeed, "autotune-seed", 0, "sampling hash seed (fixed seed = reproducible mirrored subsequence)")
	fs.IntVar(&o.atWindow, "autotune-window", 0, "shadow scoring window in judged events (0 = default)")
	fs.Float64Var(&o.atMargin, "autotune-margin", 0, "relative score margin a candidate must clear to be promoted (0 = default)")
	return o
}

// newServer validates the options and builds the engine, server and
// (with -autotune) the tuner, warm-starting from the checkpoint
// directory when one is configured. The returned tuner is nil when
// autotuning is off; callers owning the drain path must Close it
// before shutting the server down.
func newServer(o *options) (*serve.Server, *autotune.Tuner, error) {
	// Probe the spec once so a bad flag combination fails at startup,
	// not on the first session.
	if _, err := o.spec.New(); err != nil {
		return nil, nil, fmt.Errorf("predictor spec: %w", err)
	}
	var candidates []core.Spec
	if o.autotune {
		var err error
		if candidates, err = autotune.ParseSpecs(o.atCandidates); err != nil {
			return nil, nil, err
		}
	}
	cfg := o.engine
	cfg.Spec = o.spec // the engine derives NewPredictor from it
	// An autotuned server's sessions drift from the boot spec by
	// hot-swap; adopting snapshot specs on warm start keeps a swapped
	// session's configuration across a restart.
	cfg.AdoptSnapshotSpecs = o.autotune
	engine, err := serve.NewEngine(cfg)
	if err != nil {
		return nil, nil, err
	}
	if cfg.CheckpointDir != "" {
		restored, skipped, err := engine.LoadCheckpoints()
		if err != nil {
			engine.Close()
			return nil, nil, fmt.Errorf("warm start from %s: %w", cfg.CheckpointDir, err)
		}
		if restored+skipped > 0 {
			log.Printf("vpserve: warm start: %d sessions restored, %d files skipped", restored, skipped)
		}
	}
	var tuner *autotune.Tuner
	if o.autotune {
		tuner, err = autotune.New(autotune.Config{
			Engine:     engine,
			Boot:       o.spec,
			Candidates: candidates,
			Objective:  o.atObjective,
			SampleRate: o.atSample,
			Seed:       o.atSeed,
			Window:     o.atWindow,
			Margin:     o.atMargin,
		})
		if err != nil {
			engine.Close()
			return nil, nil, err
		}
	}
	return serve.NewServer(engine, o.server), tuner, nil
}

// newStatsMux builds the HTTP admin mux: engine stats on /stats and,
// when the tuner runs, its counters and shadow scores on /autotune.
func newStatsMux(srv *serve.Server, tuner *autotune.Tuner) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/stats", serve.StatsHandler(srv.Engine()))
	mux.HandleFunc("/autotune", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if tuner == nil {
			fmt.Fprintln(w, `{"enabled":false}`)
			return
		}
		b, err := json.Marshal(tuner.Status())
		if err != nil {
			http.Error(w, "status marshal failed", http.StatusInternalServerError)
			return
		}
		_, _ = w.Write(b) // client gone mid-reply is not a server error
	})
	return mux
}

func main() {
	o := parseFlags(flag.CommandLine)
	flag.Parse()

	srv, tuner, err := newServer(o)
	if err != nil {
		fmt.Fprintln(os.Stderr, "vpserve:", err)
		os.Exit(2)
	}
	ln, err := net.Listen("tcp", o.addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "vpserve:", err)
		os.Exit(1)
	}
	log.Printf("vpserve: serving %s on %s", srv.Engine().Snapshot().Predictor, ln.Addr())
	if tuner != nil {
		log.Printf("vpserve: autotune on: candidates %q, objective %s", o.atCandidates, o.atObjective)
	}

	// The stats listener is tied to the drain path below: its goroutine
	// closes statsDone, and shutdown closes the http.Server and joins
	// on it, so no goroutine outlives the drain (goroutine-lifecycle).
	statsDone := make(chan struct{})
	var statsSrv *http.Server
	if o.httpAddr != "" {
		statsSrv = &http.Server{Addr: o.httpAddr, Handler: newStatsMux(srv, tuner)}
		go func() {
			defer close(statsDone)
			if err := statsSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				log.Printf("vpserve: http stats listener: %v", err)
			}
		}()
		log.Printf("vpserve: stats on http://%s/stats", o.httpAddr)
	} else {
		close(statsDone)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()

	select {
	case s := <-sig:
		log.Printf("vpserve: %v: draining (timeout %v)", s, o.drain)
		if tuner != nil {
			// Detach the tap and join the tuner loop before the engine
			// drains, so no swap races the final checkpoint.
			tuner.Close()
		}
		ctx, cancel := context.WithTimeout(context.Background(), o.drain)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			log.Printf("vpserve: drain incomplete: %v", err)
		}
		if statsSrv != nil {
			_ = statsSrv.Close()
		}
		<-statsDone
		st := srv.Engine().Snapshot()
		log.Printf("vpserve: served %d predictions (%.4f hit rate), %d sessions",
			st.Predictions, st.HitRate, st.Sessions)
	case err := <-done:
		fmt.Fprintln(os.Stderr, "vpserve:", err)
		os.Exit(1)
	}
}
