package main

import (
	"context"
	"flag"
	"net"
	"testing"
	"time"

	"repro/internal/serve"
	"repro/internal/trace"
)

func optionsFromArgs(t *testing.T, args ...string) *options {
	t.Helper()
	fs := flag.NewFlagSet("vpserve", flag.ContinueOnError)
	o := parseFlags(fs)
	if err := fs.Parse(args); err != nil {
		t.Fatal(err)
	}
	return o
}

func TestNewServerRejectsBadSpec(t *testing.T) {
	for _, args := range [][]string{
		{"-predictor", "oracle"},
		{"-predictor", "dfcm", "-l1", "60"},
		{"-predictor", "dfcm", "-width", "99"},
	} {
		if _, err := newServer(optionsFromArgs(t, args...)); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}

func TestServerBootAndServe(t *testing.T) {
	o := optionsFromArgs(t, "-predictor", "dfcm", "-l1", "10", "-l2", "10", "-shards", "2")
	srv, err := newServer(o)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	defer srv.Close()

	c, err := serve.Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	hits, st, err := c.RunBatch(1, trace.Trace{{PC: 0x40, Value: 0}, {PC: 0x40, Value: 0}})
	if err != nil || st != serve.StatusOK {
		t.Fatalf("RunBatch: %v %v", st, err)
	}
	if hits != 2 { // zero-initialized DFCM predicts 0 for the zero history
		t.Errorf("hits = %d, want 2", hits)
	}
	stats, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Predictor != "dfcm-2^10/2^10" || stats.Shards != 2 {
		t.Errorf("stats: %+v", stats)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	c.Close()
	if err := srv.Shutdown(ctx); err != nil {
		t.Errorf("shutdown: %v", err)
	}
}
