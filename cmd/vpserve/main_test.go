package main

import (
	"context"
	"encoding/json"
	"flag"
	"net"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/autotune"
	"repro/internal/core"
	"repro/internal/leakcheck"
	"repro/internal/serve"
	"repro/internal/trace"
)

func optionsFromArgs(t *testing.T, args ...string) *options {
	t.Helper()
	fs := flag.NewFlagSet("vpserve", flag.ContinueOnError)
	o := parseFlags(fs)
	if err := fs.Parse(args); err != nil {
		t.Fatal(err)
	}
	return o
}

func TestNewServerRejectsBadSpec(t *testing.T) {
	for _, args := range [][]string{
		{"-predictor", "oracle"},
		{"-predictor", "dfcm", "-l1", "60"},
		{"-predictor", "dfcm", "-width", "99"},
	} {
		if _, _, err := newServer(optionsFromArgs(t, args...)); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}

func TestServerBootAndServe(t *testing.T) {
	o := optionsFromArgs(t, "-predictor", "dfcm", "-l1", "10", "-l2", "10", "-shards", "2")
	srv, tuner, err := newServer(o)
	if err != nil {
		t.Fatal(err)
	}
	if tuner != nil {
		t.Fatal("tuner built without -autotune")
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	defer srv.Close()

	c, err := serve.Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	hits, st, err := c.RunBatch(1, trace.Trace{{PC: 0x40, Value: 0}, {PC: 0x40, Value: 0}})
	if err != nil || st != serve.StatusOK {
		t.Fatalf("RunBatch: %v %v", st, err)
	}
	if hits != 2 { // zero-initialized DFCM predicts 0 for the zero history
		t.Errorf("hits = %d, want 2", hits)
	}
	stats, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Predictor != "dfcm-2^10/2^10" || stats.Shards != 2 {
		t.Errorf("stats: %+v", stats)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	c.Close()
	if err := srv.Shutdown(ctx); err != nil {
		t.Errorf("shutdown: %v", err)
	}
}

// bootServer builds a server from flags and serves it on a loopback
// listener; the returned shutdown func drains it gracefully (closing
// the tuner first and taking the drain checkpoint when either is
// configured). The returned server and tuner let tests reach the
// engine and tuner status directly.
func bootServer(t *testing.T, args ...string) (addr string, srv *serve.Server, tuner *autotune.Tuner, shutdown func()) {
	t.Helper()
	srv, tuner, err := newServer(optionsFromArgs(t, args...))
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		_ = srv.Serve(ln)
		close(done)
	}()
	return ln.Addr().String(), srv, tuner, func() {
		if tuner != nil {
			tuner.Close()
		}
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
		<-done
	}
}

// restartEvents is a deterministic mixed trace: constant, stride and a
// pseudo-random low-entropy stream.
func restartEvents(n int) trace.Trace {
	tr := make(trace.Trace, 0, n)
	rnd := uint32(88172645)
	for i := 0; len(tr) < n; i++ {
		tr = append(tr,
			trace.Event{PC: 0x400, Value: 3},
			trace.Event{PC: 0x404, Value: uint32(i) * 24},
		)
		rnd ^= rnd << 13
		rnd ^= rnd >> 17
		rnd ^= rnd << 5
		tr = append(tr, trace.Event{PC: 0x408, Value: rnd & 0x3f})
	}
	return tr[:n]
}

// TestCheckpointRestart is the end-to-end durability smoke: boot with
// -checkpoint-dir, warm a session over the wire, drain (which
// checkpoints), boot a second server over the same directory, and the
// warm-started session must carry its stats forward and score the rest
// of the trace exactly like an uninterrupted offline run — no
// cold-start accuracy loss across the restart.
func TestCheckpointRestart(t *testing.T) {
	dir := t.TempDir()
	args := []string{"-predictor", "dfcm", "-l1", "8", "-l2", "10", "-shards", "2",
		"-checkpoint-dir", dir, "-checkpoint-interval", "0"}
	events := restartEvents(4000)
	const cut = 2600
	const sessionID = 42

	addr, _, _, shutdown := bootServer(t, args...)
	c, err := serve.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	warmHits, st, err := c.RunBatch(sessionID, events[:cut])
	if err != nil || st != serve.StatusOK {
		t.Fatalf("warm RunBatch: %v %v", st, err)
	}
	c.Close()
	shutdown() // drain checkpoint

	addr, _, _, shutdown = bootServer(t, args...)
	defer shutdown()
	c, err = serve.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Stats continuity: the rebooted server already reports the
	// pre-restart session and its lifetime counters.
	stats, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Sessions != 1 || stats.Restored != 1 {
		t.Fatalf("rebooted server reports %d sessions (%d restored)", stats.Sessions, stats.Restored)
	}
	if stats.Predictions != cut || stats.Hits != uint64(warmHits) {
		t.Fatalf("stats discontinuity: %d predictions / %d hits, drained with %d / %d",
			stats.Predictions, stats.Hits, cut, warmHits)
	}

	// Accuracy equivalence: replay the tail and compare against one
	// uninterrupted offline run of the same spec.
	gotHits, st, err := c.RunBatch(sessionID, events[cut:])
	if err != nil || st != serve.StatusOK {
		t.Fatalf("post-restart RunBatch: %v %v", st, err)
	}
	spec := core.Spec{Kind: "dfcm", L1: 8, L2: 10}
	p, err := spec.New()
	if err != nil {
		t.Fatal(err)
	}
	wantWarm := uint32(0)
	for _, ev := range events[:cut] {
		if p.Predict(ev.PC) == ev.Value {
			wantWarm++
		}
		p.Update(ev.PC, ev.Value)
	}
	wantTail := uint32(0)
	for _, ev := range events[cut:] {
		if p.Predict(ev.PC) == ev.Value {
			wantTail++
		}
		p.Update(ev.PC, ev.Value)
	}
	if warmHits != wantWarm {
		t.Errorf("warm phase: served %d hits, offline %d", warmHits, wantWarm)
	}
	if gotHits != wantTail {
		t.Errorf("post-restart tail: served %d hits, offline run scores %d — restart lost accuracy", gotHits, wantTail)
	}
}

// TestAutotuneSwapSmoke is the end-to-end autotuning smoke (CI runs it
// under -race): boot with -autotune and a candidate set whose best
// member beats the boot spec on the driven workload, stream traffic
// over the wire, and require at least one hot-swap, a live /autotune
// admin endpoint, and a clean drain with no leaked goroutines.
func TestAutotuneSwapSmoke(t *testing.T) {
	leakcheck.Check(t)
	// Boot a last-value predictor against a strided workload it can
	// never predict; the DFCM candidate wins decisively. The tage
	// candidate (full colon geometry: width:delay:tables:tag:hmin:hmax)
	// rides along to prove the tagged kind is shadow-scorable.
	addr, srv, tuner, shutdown := bootServer(t,
		"-predictor", "lvp", "-l1", "4", "-shards", "2",
		"-autotune", "-autotune-candidates", "dfcm:8:8,stride:8,tage:8:6:32:0:4:8:4:32",
		"-autotune-window", "128")
	defer shutdown()
	if tuner == nil {
		t.Fatal("-autotune built no tuner")
	}

	c, err := serve.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	events := make(trace.Trace, 12000)
	v := uint32(5)
	for i := range events {
		events[i] = trace.Event{PC: 0x700, Value: v}
		v += 9
	}
	const sessionID = 17
	for start := 0; start < len(events); start += 200 {
		if _, st, err := c.RunBatch(sessionID, events[start:start+200]); err != nil || st != serve.StatusOK {
			t.Fatalf("RunBatch at %d: %v %v", start, st, err)
		}
	}
	tuner.Sync()

	ts := tuner.Status()
	if ts.Swaps < 1 {
		t.Fatalf("no swap after %d mirrored events (status %+v)", ts.MirroredEvents, ts)
	}
	// The tage candidate must be score-eligible: present in the
	// session's shadow set with judged lookups and a nonzero size (so
	// both objectives can rank it), even if it did not win this race.
	tageScored := false
	for _, ss := range ts.PerSession {
		for _, sh := range ss.Shadows {
			if sh.Spec.Kind == "tage" && sh.WindowLookups > 0 && sh.SizeBits > 0 {
				tageScored = true
			}
		}
	}
	if !tageScored {
		t.Fatalf("tage candidate never became score-eligible: %+v", ts.PerSession)
	}
	// The engine agrees, through the wire stats op.
	stats, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Swaps != ts.Swaps {
		t.Errorf("engine reports %d swaps, tuner %d", stats.Swaps, ts.Swaps)
	}
	var swapped *serve.SessionStat
	for i := range stats.SessionStats {
		if stats.SessionStats[i].Session == sessionID {
			swapped = &stats.SessionStats[i]
		}
	}
	if swapped == nil || swapped.Swaps < 1 || swapped.Spec == nil {
		t.Fatalf("session stats show no swap: %+v", stats.SessionStats)
	}

	// The admin endpoint serves the tuner status as JSON.
	rec := httptest.NewRecorder()
	newStatsMux(srv, tuner).ServeHTTP(rec, httptest.NewRequest("GET", "/autotune", nil))
	if rec.Code != 200 {
		t.Fatalf("/autotune: HTTP %d", rec.Code)
	}
	var hs autotune.Status
	if err := json.Unmarshal(rec.Body.Bytes(), &hs); err != nil {
		t.Fatalf("/autotune body: %v", err)
	}
	if hs.Swaps != ts.Swaps || hs.Sessions < 1 {
		t.Errorf("/autotune reports %+v, tuner says %+v", hs, ts)
	}
}

// TestAutotuneFlagValidation: -autotune without parseable candidates
// must fail at boot, not at the first session.
func TestAutotuneFlagValidation(t *testing.T) {
	for _, args := range [][]string{
		{"-autotune"},
		{"-autotune", "-autotune-candidates", "dfcm:99:10"},
		{"-autotune", "-autotune-candidates", "dfcm:8:8", "-autotune-objective", "speed"},
	} {
		if _, tn, err := newServer(optionsFromArgs(t, args...)); err == nil {
			tn.Close()
			t.Errorf("args %v accepted", args)
		}
	}
}
