// Command vploadgen replays a value trace against a running vpserve
// over M concurrent connections — one session per connection — and
// reports throughput and p50/p95/p99 batch latency.
//
// The event stream comes from a VTR1 trace file or from a synthetic
// internal/workload loop body. In the default "run" mode the server
// performs the offline predict-compare-update loop per event, so a
// single-connection replay reports exactly the hit count of
// cmd/vpredict over the same trace and predictor flags. "split" mode
// instead streams interleaved PredictBatch/UpdateBatch frames and
// scores client-side, exercising the pipelined path.
//
// -addr may point at a single vpserve or at a cmd/vprouter fronting a
// fleet — the wire protocol is identical, so the load generator does
// not care. When it is a router, passing the router's admin address
// via -admin additionally reports how the run's requests were
// distributed across backends (from the router's /stats endpoint,
// sampled before and after the run).
//
// Usage:
//
//	vploadgen -addr localhost:9177 -trace li.vtr -conns 8 -batch 256
//	vploadgen -addr localhost:9177 -workload const=2,stride=6,cycle=4,rand=2 -events 200000
//	vploadgen -addr localhost:9200 -admin localhost:9201 -conns 16
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/serve"
	"repro/internal/trace"
	"repro/internal/workload"
)

type loadConfig struct {
	addr        string
	adminAddr   string
	traceFile   string
	workload    string
	events      int
	conns       int
	batch       int
	mode        string
	sessionBase uint64
}

func parseFlags(fs *flag.FlagSet) *loadConfig {
	c := &loadConfig{}
	fs.StringVar(&c.addr, "addr", "localhost:9177", "vpserve or vprouter address")
	fs.StringVar(&c.adminAddr, "admin", "", "vprouter admin address for per-backend load attribution (empty disables)")
	fs.StringVar(&c.traceFile, "trace", "", "VTR1 trace file to replay")
	fs.StringVar(&c.workload, "workload", "const=2,stride=6,cycle=4,rand=2",
		"synthetic loop body (used when -trace is empty)")
	fs.IntVar(&c.events, "events", 100_000, "events to replay per connection")
	fs.IntVar(&c.conns, "conns", 1, "concurrent connections (one session each)")
	fs.IntVar(&c.batch, "batch", 64, "events per request frame")
	fs.StringVar(&c.mode, "mode", "run",
		"run = server-side predict+update per event; split = interleaved PredictBatch/UpdateBatch frames")
	fs.Uint64Var(&c.sessionBase, "session", 1, "session ID of the first connection")
	return c
}

// parseWorkload decodes "const=2,stride=6,cycle=4,rand=2" into loop
// body counts; omitted classes default to zero.
func parseWorkload(s string) (nConst, nStride, nCycle, nRand int, err error) {
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		key, val, ok := strings.Cut(part, "=")
		if !ok {
			return 0, 0, 0, 0, fmt.Errorf("workload term %q is not key=count", part)
		}
		n, err := strconv.Atoi(val)
		if err != nil || n < 0 {
			return 0, 0, 0, 0, fmt.Errorf("workload term %q has a bad count", part)
		}
		switch key {
		case "const":
			nConst = n
		case "stride":
			nStride = n
		case "cycle":
			nCycle = n
		case "rand":
			nRand = n
		default:
			return 0, 0, 0, 0, fmt.Errorf("unknown workload class %q", key)
		}
	}
	if nConst+nStride+nCycle+nRand == 0 {
		return 0, 0, 0, 0, fmt.Errorf("workload %q has no instructions", s)
	}
	return nConst, nStride, nCycle, nRand, nil
}

// loadEvents materializes the event stream every connection replays.
func loadEvents(c *loadConfig) (trace.Trace, error) {
	if c.events <= 0 {
		return nil, fmt.Errorf("-events must be positive")
	}
	if c.traceFile != "" {
		f, err := os.Open(c.traceFile)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		tr, err := trace.ReadAuto(f)
		if err != nil {
			return nil, err
		}
		if len(tr) == 0 {
			return nil, fmt.Errorf("%s: empty trace", c.traceFile)
		}
		if len(tr) > c.events {
			tr = tr[:c.events]
		}
		return tr, nil
	}
	nc, ns, ny, nr, err := parseWorkload(c.workload)
	if err != nil {
		return nil, err
	}
	body := workload.LoopBody(0x1000, nc, ns, ny, nr)
	rounds := (c.events + len(body) - 1) / len(body)
	return trace.Collect(workload.Interleave(body, rounds), c.events), nil
}

// report aggregates one load run.
type report struct {
	Conns      int
	Events     uint64 // replayed across all connections
	Hits       uint64
	Busy       uint64 // batches shed by backpressure (retried)
	Elapsed    time.Duration
	Throughput float64 // events/sec
	P50        time.Duration
	P95        time.Duration
	P99        time.Duration
}

func (r report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "conns:       %d\n", r.Conns)
	fmt.Fprintf(&b, "events:      %d\n", r.Events)
	hitRate := 0.0
	if r.Events > 0 {
		hitRate = float64(r.Hits) / float64(r.Events)
	}
	fmt.Fprintf(&b, "hits:        %d (%.4f hit rate)\n", r.Hits, hitRate)
	fmt.Fprintf(&b, "busy:        %d shed batches\n", r.Busy)
	fmt.Fprintf(&b, "elapsed:     %v\n", r.Elapsed.Round(time.Millisecond))
	fmt.Fprintf(&b, "throughput:  %.0f events/sec\n", r.Throughput)
	fmt.Fprintf(&b, "latency:     p50=%v p95=%v p99=%v (per batch)\n",
		r.P50.Round(time.Microsecond), r.P95.Round(time.Microsecond), r.P99.Round(time.Microsecond))
	return b.String()
}

// percentile returns the p-th percentile (0..100) of sorted
// durations, by the nearest-rank method.
func percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(p/100*float64(len(sorted))+0.5) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank]
}

// connResult is one connection's tally.
type connResult struct {
	hits      uint64
	busy      uint64
	latencies []time.Duration
	err       error
}

// replayConn replays events on one connection/session, one batch per
// request (run mode) or per predict+update frame pair (split mode).
// StatusBusy batches are retried: backpressure sheds work, the load
// generator re-offers it.
func replayConn(c *loadConfig, session uint64, events trace.Trace) connResult {
	client, err := serve.Dial(c.addr)
	if err != nil {
		return connResult{err: err}
	}
	defer client.Close()
	res := connResult{latencies: make([]time.Duration, 0, (len(events)+c.batch-1)/c.batch)}
	pcs := make([]uint32, 0, c.batch)
	for start := 0; start < len(events); start += c.batch {
		end := start + c.batch
		if end > len(events) {
			end = len(events)
		}
		batch := events[start:end]
		consecutiveBusy := 0
		for {
			t0 := time.Now()
			var st serve.Status
			var hits uint64
			switch c.mode {
			case "run":
				var h uint32
				h, st, err = client.RunBatch(session, batch)
				hits = uint64(h)
			case "split":
				pcs = pcs[:0]
				for _, ev := range batch {
					pcs = append(pcs, ev.PC)
				}
				var values []uint32
				values, st, err = client.PredictBatch(session, pcs)
				if err == nil && st == serve.StatusOK {
					for i, ev := range batch {
						if values[i] == ev.Value {
							hits++
						}
					}
					st, err = client.UpdateBatch(session, batch)
				}
			default:
				return connResult{err: fmt.Errorf("unknown mode %q", c.mode)}
			}
			if err != nil {
				res.err = err
				return res
			}
			res.latencies = append(res.latencies, time.Since(t0))
			if st == serve.StatusBusy {
				res.busy++
				if consecutiveBusy++; consecutiveBusy > 10_000 {
					res.err = fmt.Errorf("session %d: server busy for %d consecutive attempts", session, consecutiveBusy)
					return res
				}
				time.Sleep(100 * time.Microsecond) // back off, then re-offer
				continue
			}
			if st != serve.StatusOK {
				res.err = fmt.Errorf("session %d: server answered %v", session, st)
				return res
			}
			res.hits += hits
			break
		}
	}
	return res
}

// runLoad replays the configured event stream over c.conns concurrent
// connections and aggregates the results.
func runLoad(c *loadConfig) (report, error) {
	if c.conns <= 0 || c.batch <= 0 {
		return report{}, fmt.Errorf("-conns and -batch must be positive")
	}
	events, err := loadEvents(c)
	if err != nil {
		return report{}, err
	}

	results := make([]connResult, c.conns)
	var wg sync.WaitGroup
	t0 := time.Now()
	for i := 0; i < c.conns; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = replayConn(c, c.sessionBase+uint64(i), events)
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(t0)

	rep := report{Conns: c.conns, Elapsed: elapsed}
	var all []time.Duration
	for _, res := range results {
		if res.err != nil {
			return report{}, res.err
		}
		rep.Events += uint64(len(events))
		rep.Hits += res.hits
		rep.Busy += res.busy
		all = append(all, res.latencies...)
	}
	if elapsed > 0 {
		rep.Throughput = float64(rep.Events) / elapsed.Seconds()
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	rep.P50 = percentile(all, 50)
	rep.P95 = percentile(all, 95)
	rep.P99 = percentile(all, 99)
	return rep, nil
}

// fetchRouterStats reads a vprouter admin /stats snapshot.
func fetchRouterStats(addr string) (cluster.RouterStats, error) {
	if !strings.Contains(addr, "://") {
		addr = "http://" + addr
	}
	resp, err := http.Get(addr + "/stats")
	if err != nil {
		return cluster.RouterStats{}, err
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusOK {
		return cluster.RouterStats{}, fmt.Errorf("router admin answered %s", resp.Status)
	}
	var st cluster.RouterStats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return cluster.RouterStats{}, err
	}
	return st, nil
}

// formatBackendLoad renders the per-backend request counts this run
// added, by differencing the router's before/after stats snapshots.
func formatBackendLoad(before, after cluster.RouterStats) string {
	prior := make(map[string]uint64, len(before.Backends))
	for _, b := range before.Backends {
		prior[b.Addr] = b.Requests
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "backends:    %d (%d sessions routed, %d migrations)\n",
		len(after.Backends), after.Sessions, after.Migrations)
	for _, b := range after.Backends {
		state := "up"
		if !b.Healthy {
			state = "DOWN"
		}
		fmt.Fprintf(&sb, "  %-24s %-4s %8d requests  %d sessions\n",
			b.Addr, state, b.Requests-prior[b.Addr], b.Sessions)
	}
	return sb.String()
}

func main() {
	cfg := parseFlags(flag.CommandLine)
	flag.Parse()
	var before cluster.RouterStats
	if cfg.adminAddr != "" {
		st, err := fetchRouterStats(cfg.adminAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "vploadgen: router admin:", err)
			os.Exit(1)
		}
		before = st
	}
	rep, err := runLoad(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "vploadgen:", err)
		os.Exit(1)
	}
	fmt.Print(rep)
	if cfg.adminAddr != "" {
		after, err := fetchRouterStats(cfg.adminAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "vploadgen: router admin:", err)
			os.Exit(1)
		}
		fmt.Print(formatBackendLoad(before, after))
	}
}
