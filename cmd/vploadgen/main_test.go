package main

import (
	"flag"
	"net"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/serve"
	"repro/internal/trace"
	"repro/internal/workload"
)

// startServer boots an in-process vpserve equivalent on a loopback
// port for the given predictor spec.
func startServer(t *testing.T, spec core.Spec) string {
	t.Helper()
	engine, err := serve.NewEngine(serve.Config{Shards: 2, Spec: spec})
	if err != nil {
		t.Fatal(err)
	}
	srv := serve.NewServer(engine, serve.ServerConfig{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	t.Cleanup(func() { srv.Close() })
	return ln.Addr().String()
}

// writeTempTrace serializes tr to a temp VTR1 file.
func writeTempTrace(t *testing.T, tr trace.Trace) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "load.vtr")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := trace.Write(f, tr); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func sampleTrace(n int) trace.Trace {
	body := workload.LoopBody(0x1000, 2, 6, 4, 2)
	return trace.Collect(workload.Interleave(body, (n+13)/14), n)
}

// TestEndToEndEquivalence is the acceptance-criteria test: replaying
// a trace file through vploadgen → vpserve (single session) reports
// the same hit count as the offline run (cmd/vpredict's core.Run)
// with the same predictor spec.
func TestEndToEndEquivalence(t *testing.T) {
	spec := core.Spec{Kind: "dfcm", L1: 10, L2: 10}
	events := sampleTrace(8000)
	path := writeTempTrace(t, events)

	offline, err := spec.New()
	if err != nil {
		t.Fatal(err)
	}
	want := core.Run(offline, trace.NewReader(events))

	addr := startServer(t, spec)
	rep, err := runLoad(&loadConfig{
		addr: addr, traceFile: path, events: len(events),
		conns: 1, batch: 64, mode: "run", sessionBase: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Events != want.Predictions {
		t.Errorf("served %d events, offline %d", rep.Events, want.Predictions)
	}
	if rep.Hits != want.Correct {
		t.Errorf("served replay: %d hits, offline %d", rep.Hits, want.Correct)
	}
	if rep.Throughput <= 0 {
		t.Errorf("throughput %v", rep.Throughput)
	}
	if rep.P50 <= 0 || rep.P50 > rep.P95 || rep.P95 > rep.P99 {
		t.Errorf("latency percentiles out of order: p50=%v p95=%v p99=%v",
			rep.P50, rep.P95, rep.P99)
	}
}

// TestSplitModeMultiConn drives the interleaved predict/update path
// over several concurrent connections; with batch size 1 every
// session must match the offline run.
func TestSplitModeMultiConn(t *testing.T) {
	spec := core.Spec{Kind: "stride", L1: 10}
	events := sampleTrace(1000)
	path := writeTempTrace(t, events)

	offline, err := spec.New()
	if err != nil {
		t.Fatal(err)
	}
	want := core.Run(offline, trace.NewReader(events)).Correct

	addr := startServer(t, spec)
	const conns = 3
	rep, err := runLoad(&loadConfig{
		addr: addr, traceFile: path, events: len(events),
		conns: conns, batch: 1, mode: "split", sessionBase: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Hits != conns*want {
		t.Errorf("split replay over %d conns: %d hits, want %d", conns, rep.Hits, conns*want)
	}
}

func TestRunLoadSyntheticWorkload(t *testing.T) {
	addr := startServer(t, core.Spec{Kind: "lvp", L1: 10})
	rep, err := runLoad(&loadConfig{
		addr: addr, workload: "const=3,rand=1", events: 2000,
		conns: 2, batch: 100, mode: "run", sessionBase: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Events != 4000 {
		t.Errorf("events = %d, want 4000", rep.Events)
	}
	if rep.Hits == 0 {
		t.Error("constant-heavy workload scored zero hits")
	}
}

func TestParseWorkload(t *testing.T) {
	nc, ns, ny, nr, err := parseWorkload("const=2,stride=6,cycle=4,rand=2")
	if err != nil || nc != 2 || ns != 6 || ny != 4 || nr != 2 {
		t.Errorf("got %d/%d/%d/%d, err %v", nc, ns, ny, nr, err)
	}
	if _, _, _, _, err := parseWorkload("const=2,bogus=1"); err == nil {
		t.Error("unknown class accepted")
	}
	if _, _, _, _, err := parseWorkload("const"); err == nil {
		t.Error("missing count accepted")
	}
	if _, _, _, _, err := parseWorkload("const=x"); err == nil {
		t.Error("non-numeric count accepted")
	}
	if _, _, _, _, err := parseWorkload("const=0"); err == nil {
		t.Error("empty loop body accepted")
	}
}

func TestPercentile(t *testing.T) {
	ds := []time.Duration{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if got := percentile(ds, 50); got != 5 {
		t.Errorf("p50 = %d, want 5", got)
	}
	if got := percentile(ds, 99); got != 10 {
		t.Errorf("p99 = %d, want 10", got)
	}
	if got := percentile(nil, 50); got != 0 {
		t.Errorf("empty p50 = %d, want 0", got)
	}
	if got := percentile([]time.Duration{7}, 99); got != 7 {
		t.Errorf("singleton p99 = %d, want 7", got)
	}
}

func TestRunLoadArgErrors(t *testing.T) {
	if _, err := runLoad(&loadConfig{conns: 0, batch: 1, events: 10}); err == nil {
		t.Error("conns=0 accepted")
	}
	if _, err := runLoad(&loadConfig{conns: 1, batch: 1, events: 0}); err == nil {
		t.Error("events=0 accepted")
	}
	if _, err := runLoad(&loadConfig{conns: 1, batch: 1, events: 10, traceFile: "/nonexistent.vtr"}); err == nil {
		t.Error("missing trace file accepted")
	}
}

func TestFlagDefaultsParse(t *testing.T) {
	fs := flag.NewFlagSet("vploadgen", flag.ContinueOnError)
	c := parseFlags(fs)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if c.mode != "run" || c.conns != 1 || c.batch != 64 {
		t.Errorf("defaults: %+v", c)
	}
}

// startRouter fronts the given backends with an in-process
// cmd/vprouter equivalent and returns the router, its VP1 address,
// and its admin HTTP URL.
func startRouter(t *testing.T, backends ...string) (*cluster.Router, string, string) {
	t.Helper()
	r, err := cluster.NewRouter(cluster.Config{Backends: backends})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = r.Serve(ln) }()
	admin := httptest.NewServer(r.AdminHandler())
	t.Cleanup(func() {
		admin.Close()
		r.Close()
	})
	return r, ln.Addr().String(), admin.URL
}

// TestClusterSmokeMigration is the cluster integration smoke: two
// backends behind a router, vploadgen traffic over several sessions,
// and a forced live migration mid-traffic. Zero loss means the total
// hit count still matches conns × the offline run exactly, and the
// admin stats attribute the load per backend.
func TestClusterSmokeMigration(t *testing.T) {
	spec := core.Spec{Kind: "dfcm", L1: 10, L2: 10}
	b1 := startServer(t, spec)
	b2 := startServer(t, spec)
	r, raddr, adminURL := startRouter(t, b1, b2)

	events := sampleTrace(20000)
	path := writeTempTrace(t, events)
	offline, err := spec.New()
	if err != nil {
		t.Fatal(err)
	}
	want := core.Run(offline, trace.NewReader(events)).Correct

	before, err := fetchRouterStats(adminURL)
	if err != nil {
		t.Fatalf("router admin before run: %v", err)
	}

	const conns = 4
	migrated := make(chan error, 1)
	go func() {
		// Bounce session 1 to both backends while its replay runs: one
		// of the two moves is a real snapshot → restore migration.
		time.Sleep(30 * time.Millisecond)
		if err := r.MigrateSession(1, b2); err != nil {
			migrated <- err
			return
		}
		migrated <- r.MigrateSession(1, b1)
	}()
	rep, err := runLoad(&loadConfig{
		addr: raddr, traceFile: path, events: len(events),
		conns: conns, batch: 64, mode: "run", sessionBase: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := <-migrated; err != nil {
		t.Fatalf("mid-traffic migration: %v", err)
	}
	if rep.Hits != conns*want {
		t.Errorf("migrated replay over %d conns: %d hits, offline %d each (want %d total)",
			conns, rep.Hits, want, conns*want)
	}
	if got := r.Stats().Migrations; got != 2 {
		t.Errorf("router reports %d migrations, want 2", got)
	}

	after, err := fetchRouterStats(adminURL)
	if err != nil {
		t.Fatalf("router admin after run: %v", err)
	}
	if after.Sessions != conns {
		t.Errorf("router routed %d sessions, want %d", after.Sessions, conns)
	}
	var delta uint64
	for i, b := range after.Backends {
		delta += b.Requests - before.Backends[i].Requests
	}
	if wantReqs := rep.Events / 64; delta < wantReqs {
		t.Errorf("backends absorbed %d requests, want ≥ %d", delta, wantReqs)
	}
	out := formatBackendLoad(before, after)
	for _, addr := range []string{b1, b2} {
		if !strings.Contains(out, addr) {
			t.Errorf("per-backend load report is missing %s:\n%s", addr, out)
		}
	}
}
