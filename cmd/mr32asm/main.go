// Command mr32asm assembles an MR32 source file into an MRX1 object
// file that cmd/mr32run can execute directly.
//
// Usage:
//
//	mr32asm -o prog.mrx prog.s
//	mr32asm -list prog.s          # assemble and print a listing
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/asm"
	"repro/internal/isa"
)

func main() {
	out := flag.String("o", "", "output object file")
	list := flag.Bool("list", false, "print an assembly listing to stdout")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: mr32asm [-o out.mrx] [-list] prog.s")
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	p, err := asm.Assemble(string(src))
	if err != nil {
		fatal(err)
	}
	if *list {
		printListing(p)
	}
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := asm.WriteProgram(f, p); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "%s: %d text words, %d data bytes, %d symbols\n",
			*out, len(p.Text), len(p.Data), len(p.Symbols))
	}
	if !*list && *out == "" {
		fmt.Fprintln(os.Stderr, "mr32asm: assembled OK (use -o or -list for output)")
	}
}

// printListing renders the text segment with symbol annotations.
func printListing(p *asm.Program) {
	byAddr := make(map[uint32][]string)
	for name, addr := range p.Symbols {
		byAddr[addr] = append(byAddr[addr], name)
	}
	for _, names := range byAddr {
		sort.Strings(names)
	}
	for i, w := range p.Text {
		pc := uint32(isa.TextBase + 4*i)
		for _, name := range byAddr[pc] {
			fmt.Printf("%s:\n", name)
		}
		fmt.Printf("  %08x:  %08x  %s\n", pc, w, isa.Disassemble(pc, w))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mr32asm:", err)
	os.Exit(1)
}
