package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/metrics"
)

func runSec44(cfg Config) (*Result, error) {
	res := &Result{ID: "sec44", Title: "accuracy with reduced stride width in the DFCM level-2 table (2^16 level-1)"}
	t := &metrics.Table{Headers: []string{
		"log2(l2 entries)", "w=32", "w=16", "w=8", "drop16", "drop8", "size32(Kbit)", "size8(Kbit)"}}
	var maxDrop16, maxDrop8 float64
	widths := []uint{32, 16, 8}
	s := newSweep(cfg)
	jobs := make([][3]*engine.Job, len(l2Sweep))
	for i, l2 := range l2Sweep {
		l2 := l2
		for j, w := range widths {
			w := w
			jobs[i][j] = s.Add(func() core.Predictor { return core.NewDFCMWidth(16, l2, w) })
		}
	}
	if err := s.Run(); err != nil {
		return nil, err
	}
	for i, l2 := range l2Sweep {
		var acc [3]float64
		for j := range widths {
			acc[j] = jobs[i][j].Weighted()
		}
		d16, d8 := acc[0]-acc[1], acc[0]-acc[2]
		if d16 > maxDrop16 {
			maxDrop16 = d16
		}
		if d8 > maxDrop8 {
			maxDrop8 = d8
		}
		t.AddRow(fmt.Sprint(l2),
			metrics.F(acc[0]), metrics.F(acc[1]), metrics.F(acc[2]),
			metrics.F(d16), metrics.F(d8),
			metrics.Kbit(core.NewDFCMWidth(16, l2, 32).SizeBits()),
			metrics.Kbit(core.NewDFCMWidth(16, l2, 8).SizeBits()))
	}
	res.Tables = append(res.Tables, t)
	res.addNote("max accuracy drop: 16-bit strides %.3f, 8-bit strides %.3f (paper: .01-.03 and .05-.08)",
		maxDrop16, maxDrop8)
	res.addNote("paper's conclusion holds structurally: for small L2 the level-1 table dominates size, for large L2 shrinking entries beats shrinking width")
	return res, nil
}

func init() {
	register(Experiment{
		ID:       "sec44",
		Title:    "size of stored difference values",
		Artifact: "Section 4.4",
		Run:      runSec44,
	})
}
