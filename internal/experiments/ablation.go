package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/hash"
	"repro/internal/metrics"
)

// runAblationHash sweeps the FS R-k hash family for both FCM and DFCM
// at the 2^16/2^12 working point. The paper fixes FS R-5 (optimal for
// FCM per Sazeides) and explicitly notes it "did not try to optimize
// the order and the hashing function for DFCM" — this ablation
// supplies that missing sweep.
func runAblationHash(cfg Config) (*Result, error) {
	res := &Result{ID: "ablation-hash", Title: "FS R-k hash sweep for FCM and DFCM (2^16/2^12)"}
	t := &metrics.Table{Headers: []string{"k (shift)", "order", "FCM", "DFCM"}}
	const l2 = 12
	bestK, bestAcc := 0, 0.0
	ks := []uint{1, 2, 3, 4, 5, 6, 8, 12}
	s := newSweep(cfg)
	type pair struct{ f, d *engine.Job }
	pairs := make([]pair, len(ks))
	for i, k := range ks {
		k := k
		pairs[i] = pair{
			f: s.Add(func() core.Predictor {
				return core.NewFCMHash(16, l2, hash.NewFSR(l2, k))
			}),
			d: s.Add(func() core.Predictor {
				return core.NewDFCMHash(16, l2, 32, hash.NewFSR(l2, k))
			}),
		}
	}
	if err := s.Run(); err != nil {
		return nil, err
	}
	for i, k := range ks {
		f, d := pairs[i].f.Weighted(), pairs[i].d.Weighted()
		if d > bestAcc {
			bestAcc, bestK = d, int(k)
		}
		t.AddRow(fmt.Sprint(k), fmt.Sprint(hash.NewFSR(l2, k).Order()),
			metrics.F(f), metrics.F(d))
	}
	res.Tables = append(res.Tables, t)
	res.addNote("best DFCM hash in this sweep: FS R-%d (accuracy %.3f); the paper's FS R-5 is used everywhere else for comparability",
		bestK, bestAcc)
	return res, nil
}

// runAblationOrder contrasts hash order via the index width / shift
// relation at several level-2 sizes, holding the predictor at
// 2^16 level-1 entries.
func runAblationOrder(cfg Config) (*Result, error) {
	res := &Result{ID: "ablation-order", Title: "effective history order vs accuracy (DFCM, 2^16 level-1)"}
	t := &metrics.Table{Headers: []string{"log2(l2)", "order(k=5)", "DFCM k=5", "order(k=3)", "DFCM k=3"}}
	l2s := []uint{10, 12, 14, 16}
	s := newSweep(cfg)
	type pair struct{ d5, d3 *engine.Job }
	pairs := make([]pair, len(l2s))
	for i, l2 := range l2s {
		l2 := l2
		pairs[i] = pair{
			d5: s.Add(func() core.Predictor { return core.NewDFCM(16, l2) }),
			d3: s.Add(func() core.Predictor {
				return core.NewDFCMHash(16, l2, 32, hash.NewFSR(l2, 3))
			}),
		}
	}
	if err := s.Run(); err != nil {
		return nil, err
	}
	for i, l2 := range l2s {
		d5, d3 := pairs[i].d5.Weighted(), pairs[i].d3.Weighted()
		t.AddRow(fmt.Sprint(l2),
			fmt.Sprint(hash.NewFSR(l2, 5).Order()), metrics.F(d5),
			fmt.Sprint(hash.NewFSR(l2, 3).Order()), metrics.F(d3))
	}
	res.Tables = append(res.Tables, t)
	return res, nil
}

// runAblationMeta contrasts the perfect meta-predictor against a
// realizable saturating-counter meta-predictor (the paper argues the
// perfect one is unimplementable; this quantifies the gap).
func runAblationMeta(cfg Config) (*Result, error) {
	res := &Result{ID: "ablation-meta", Title: "perfect vs saturating-counter meta-predictor (stride 2^16 + FCM 2^16/l2)"}
	t := &metrics.Table{Headers: []string{"log2(l2)", "DFCM", "perfect hybrid", "counter hybrid"}}
	l2s := []uint{10, 12, 14}
	s := newSweep(cfg)
	type trio struct{ d, ph, mh *engine.Job }
	trios := make([]trio, len(l2s))
	for i, l2 := range l2s {
		l2 := l2
		trios[i] = trio{
			d: s.Add(func() core.Predictor { return core.NewDFCM(16, l2) }),
			ph: s.Add(func() core.Predictor {
				return core.NewPerfectHybrid(core.NewStride(16), core.NewFCM(16, l2))
			}),
			mh: s.Add(func() core.Predictor {
				return core.NewMetaHybrid(core.NewStride(16), core.NewFCM(16, l2), 16)
			}),
		}
	}
	if err := s.Run(); err != nil {
		return nil, err
	}
	for i, l2 := range l2s {
		t.AddRow(fmt.Sprint(l2), metrics.F(trios[i].d.Weighted()),
			metrics.F(trios[i].ph.Weighted()), metrics.F(trios[i].mh.Weighted()))
	}
	res.Tables = append(res.Tables, t)
	res.addNote("a realizable counter meta-predictor sits below the perfect hybrid; DFCM needs no meta-predictor at all")
	return res, nil
}

func init() {
	register(Experiment{
		ID:       "ablation-hash",
		Title:    "hash function ablation (FS R-k sweep)",
		Artifact: "section 4 (hash choice), extension",
		Run:      runAblationHash,
	})
	register(Experiment{
		ID:       "ablation-order",
		Title:    "history order ablation",
		Artifact: "section 4 (order choice), extension",
		Run:      runAblationOrder,
	})
	register(Experiment{
		ID:       "ablation-meta",
		Title:    "meta-predictor realizability ablation",
		Artifact: "section 4.3, extension",
		Run:      runAblationMeta,
	})
}
