package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/trace"
)

// runExtConfidence evaluates the confidence estimator the paper's
// section 4.2 sketches as future work — tagging the level-2 table
// with bits of a second, orthogonal hash function to track
// hash-aliasing — against classical per-instruction saturating
// counters, both on a DFCM 2^16/2^12.
//
// A good estimator maximizes accuracy among confident predictions at
// high coverage. The paper's hypothesis is that hash tags work well
// because hash aliasing dominates the remaining mispredictions
// (Figure 14: 59%).
func runExtConfidence(cfg Config) (*Result, error) {
	res := &Result{ID: "ext-confidence",
		Title: "confidence estimation for the DFCM: counters vs level-2 hash tags (section 4.2 proposal)"}

	type scheme struct {
		name string
		mk   func() core.ConfidentPredictor
	}
	schemes := []scheme{
		{"counter 4b t=4", func() core.ConfidentPredictor {
			return core.NewCounterConfidence(core.NewDFCM(16, 12), 16, 15, 4)
		}},
		{"counter 4b t=8", func() core.ConfidentPredictor {
			return core.NewCounterConfidence(core.NewDFCM(16, 12), 16, 15, 8)
		}},
		{"counter 4b t=15", func() core.ConfidentPredictor {
			return core.NewCounterConfidence(core.NewDFCM(16, 12), 16, 15, 15)
		}},
		{"hash tag 4b (R-3)", func() core.ConfidentPredictor {
			return core.NewHashTag(core.NewDFCM(16, 12), 4, 3)
		}},
		{"hash tag 8b (R-3)", func() core.ConfidentPredictor {
			return core.NewHashTag(core.NewDFCM(16, 12), 8, 3)
		}},
		{"hash tag 8b (R-7)", func() core.ConfidentPredictor {
			return core.NewHashTag(core.NewDFCM(16, 12), 8, 7)
		}},
		{"tag 8b & ctr t=4", func() core.ConfidentPredictor {
			p := core.NewDFCM(16, 12)
			return core.NewCombined(p,
				core.NewHashTag(p, 8, 3),
				core.NewCounterConfidence(p, 16, 15, 4))
		}},
	}

	t := &metrics.Table{Headers: []string{
		"scheme", "coverage", "confident acc", "raw acc", "extra Kbit"}}
	type row struct {
		cov, acc float64
	}
	var tagBest, ctrBest row
	// RunConfident needs the estimator's full per-event protocol, so
	// each scheme rides the shared trace pass as a per-benchmark scan.
	s := newSweep(cfg)
	perBench := make([][]core.ConfidenceResult, len(schemes))
	for si, sc := range schemes {
		si, sc := si, sc
		perBench[si] = make([]core.ConfidenceResult, len(cfg.benchmarks()))
		s.AddScan(func(i int, bench string, tr trace.Trace) error {
			perBench[si][i] = core.RunConfident(sc.mk(), trace.NewReader(tr))
			return nil
		})
	}
	if err := s.Run(); err != nil {
		return nil, err
	}
	for si, sc := range schemes {
		var agg core.ConfidenceResult
		for _, r := range perBench[si] {
			agg.All.Add(r.All)
			agg.Confident.Add(r.Confident)
		}
		p := sc.mk()
		extra := p.SizeBits() - core.NewDFCM(16, 12).SizeBits()
		t.AddRow(sc.name, metrics.F(agg.Coverage()),
			metrics.F(agg.Confident.Accuracy()), metrics.F(agg.All.Accuracy()),
			metrics.Kbit(extra))
		r := row{cov: agg.Coverage(), acc: agg.Confident.Accuracy()}
		if sc.name == "hash tag 8b (R-3)" {
			tagBest = r
		}
		if sc.name == "counter 4b t=8" {
			ctrBest = r
		}
	}
	res.Tables = append(res.Tables, t)
	res.addNote("hash tag 8b: coverage %.3f at confident accuracy %.3f vs counter t=8: coverage %.3f at %.3f",
		tagBest.cov, tagBest.acc, ctrBest.cov, ctrBest.acc)
	res.addNote(fmt.Sprintf("the tag estimator targets exactly the hash-aliasing failures that dominate DFCM mispredictions (Figure 14)"))
	return res, nil
}

func init() {
	register(Experiment{
		ID:       "ext-confidence",
		Title:    "confidence estimation (hash tags vs counters)",
		Artifact: "section 4.2 proposal, extension",
		Run:      runExtConfidence,
	})
}
