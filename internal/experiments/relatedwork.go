package experiments

import (
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/metrics"
	"repro/internal/trace"
)

// runExtRelatedWork quantifies the paper's section 5 arguments: the
// alternative efficiency schemes from related work — last-n value
// prediction (Burtscher & Zorn [2]) and dynamic classification
// (Rychlik et al. [12]) — against the DFCM at comparable storage.
func runExtRelatedWork(cfg Config) (*Result, error) {
	res := &Result{ID: "ext-relatedwork",
		Title: "DFCM vs related-work alternatives (last-n, dynamic classification, counter hybrid)"}

	type contender struct {
		name string
		mk   func() core.Predictor
	}
	contenders := []contender{
		{"lvp", func() core.Predictor { return core.NewLastValue(14) }},
		{"last-4", func() core.Predictor { return core.NewLastN(12, 4) }},
		{"stride", func() core.Predictor { return core.NewStride(13) }},
		{"classify(lvp|stride|fcm)", func() core.Predictor {
			return core.NewClassified(14, 16, 8,
				core.NewLastValue(12), core.NewStride(12), core.NewFCM(12, 11))
		}},
		{"meta(stride|fcm)", func() core.Predictor {
			return core.NewMetaHybrid(core.NewStride(12), core.NewFCM(12, 11), 12)
		}},
		{"fcm", func() core.Predictor { return core.NewFCM(12, 12) }},
		{"dfcm", func() core.Predictor { return core.NewDFCM(12, 12) }},
	}

	t := &metrics.Table{Headers: []string{"predictor", "size(Kbit)", "accuracy"}}
	s := newSweep(cfg)
	jobs := make([]*engine.Job, len(contenders))
	for i, c := range contenders {
		jobs[i] = s.Add(c.mk)
	}
	// The classification scheme's unpredictable fraction (Rychlik
	// reports >50%, Lee 24%) needs the predictor's end-of-run state, so
	// it rides along as a per-benchmark scan of the same trace pass.
	unFracs := make([]float64, len(cfg.benchmarks()))
	s.AddScan(func(i int, bench string, tr trace.Trace) error {
		cl := core.NewClassified(14, 16, 8,
			core.NewLastValue(12), core.NewStride(12), core.NewFCM(12, 11))
		core.Run(cl, trace.NewReader(tr))
		unFracs[i] = cl.Unpredictable()
		return nil
	})
	if err := s.Run(); err != nil {
		return nil, err
	}
	accs := map[string]float64{}
	for i, c := range contenders {
		acc := jobs[i].Weighted()
		accs[c.name] = acc
		t.AddRow(c.name, metrics.Kbit(c.mk().SizeBits()), metrics.F(acc))
	}
	res.Tables = append(res.Tables, t)

	var unTotal, unCount float64
	for _, f := range unFracs {
		unTotal += f
		unCount++
	}
	res.addNote("dynamic classification marks %.0f%% of classified instructions unpredictable (Rychlik reports >50%%, Lee 24%%)",
		100*unTotal/unCount)
	if accs["dfcm"] >= accs["classify(lvp|stride|fcm)"] {
		res.addNote("DFCM (%.3f) beats dynamic classification (%.3f) at comparable size — the paper's fixed-partitioning critique",
			accs["dfcm"], accs["classify(lvp|stride|fcm)"])
	} else {
		res.addNote("WARNING: classification (%.3f) beat DFCM (%.3f)",
			accs["classify(lvp|stride|fcm)"], accs["dfcm"])
	}
	if accs["last-4"] > accs["lvp"] {
		res.addNote("last-4 improves on LVP (%.3f vs %.3f) but cannot reach context prediction",
			accs["last-4"], accs["lvp"])
	}
	return res, nil
}

func init() {
	register(Experiment{
		ID:       "ext-relatedwork",
		Title:    "related-work alternatives at matched storage",
		Artifact: "section 5, extension",
		Run:      runExtRelatedWork,
	})
}
