package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/metrics"
)

// dfcmL1Sweep is Figure 11(a)'s level-1 axis.
var dfcmL1Sweep = []uint{10, 12, 14, 16}

// fig11aPoints computes the DFCM (size, accuracy) points per level-1
// size, batching the whole grid into one engine sweep. Shared with
// fig11b.
func fig11aPoints(cfg Config) (map[uint][]metrics.Point, error) {
	s := newSweep(cfg)
	type pending struct {
		l1  uint
		p   core.Predictor
		job *engine.Job
	}
	var jobs []pending
	for _, l1 := range dfcmL1Sweep {
		for _, l2 := range l2Sweep {
			l1, l2 := l1, l2
			jobs = append(jobs, pending{l1, core.NewDFCM(l1, l2),
				s.Add(func() core.Predictor { return core.NewDFCM(l1, l2) })})
		}
	}
	if err := s.Run(); err != nil {
		return nil, err
	}
	out := make(map[uint][]metrics.Point)
	for _, e := range jobs {
		out[e.l1] = append(out[e.l1], metrics.Point{
			Name: e.p.Name(), SizeBits: e.p.SizeBits(), Accuracy: e.job.Weighted(),
		})
	}
	return out, nil
}

func runFig11a(cfg Config) (*Result, error) {
	pts, err := fig11aPoints(cfg)
	if err != nil {
		return nil, err
	}
	res := &Result{ID: "fig11a", Title: "DFCM accuracy vs total size, one curve per level-1 size"}
	chart := &metrics.Plot{
		Title:  "Figure 11(a): DFCM accuracy vs total size",
		XLabel: "size (Kbit)", YLabel: "prediction accuracy", LogX: true,
	}
	for _, l1 := range dfcmL1Sweep {
		t := &metrics.Table{Title: fmt.Sprintf("L1 = 2^%d", l1),
			Headers: []string{"config", "size(Kbit)", "accuracy"}}
		for _, p := range pts[l1] {
			t.AddRow(p.Name, metrics.Kbit(p.SizeBits), metrics.F(p.Accuracy))
		}
		res.Tables = append(res.Tables, t)
		chart.AddPoints(fmt.Sprintf("L1=2^%d", l1), pts[l1])
	}
	res.Charts = append(res.Charts, chart)
	// Knee check: by 2^14 level-2 entries the curve should be close
	// to its maximum (the paper: "the influence of the level-2 table
	// size diminishes earlier, and the knee is sharper").
	for _, l1 := range []uint{16} {
		series := pts[l1]
		atKnee := series[3].Accuracy // l2 = 2^14
		max := series[len(series)-1].Accuracy
		res.addNote("L1=2^16: accuracy at L2=2^14 is %.3f of the 2^20 maximum %.3f (%.0f%%)",
			atKnee, max, 100*atKnee/max)
	}
	return res, nil
}

func runFig11b(cfg Config) (*Result, error) {
	res := &Result{ID: "fig11b", Title: "Pareto fronts: FCM vs DFCM, accuracy vs total size"}
	_, _, fcmPts, err := fig3Points(cfg)
	if err != nil {
		return nil, err
	}
	dpts, err := fig11aPoints(cfg)
	if err != nil {
		return nil, err
	}
	var dfcmPts []metrics.Point
	for _, l1 := range dfcmL1Sweep {
		dfcmPts = append(dfcmPts, dpts[l1]...)
	}
	ffront := metrics.Pareto(fcmPts)
	dfront := metrics.Pareto(dfcmPts)

	front := func(title string, pts []metrics.Point) *metrics.Table {
		t := &metrics.Table{Title: title, Headers: []string{"config", "size(Kbit)", "accuracy"}}
		for _, p := range pts {
			t.AddRow(p.Name, metrics.Kbit(p.SizeBits), metrics.F(p.Accuracy))
		}
		return t
	}
	res.Tables = append(res.Tables, front("FCM Pareto front", ffront), front("DFCM Pareto front", dfront))
	chart := &metrics.Plot{
		Title:  "Figure 11(b): Pareto fronts, accuracy vs total size",
		XLabel: "size (Kbit)", YLabel: "prediction accuracy", LogX: true,
	}
	chart.AddPoints("fcm", ffront)
	chart.AddPoints("dfcm", dfront)
	res.Charts = append(res.Charts, chart)

	// Compare the fronts at matched sizes: for each DFCM front point,
	// the best FCM at the same or smaller size.
	cmp := &metrics.Table{Title: "front comparison (DFCM vs best FCM of <= size)",
		Headers: []string{"size(Kbit)", "DFCM", "FCM", "delta"}}
	wins := 0
	for _, dp := range dfront {
		bestF := 0.0
		for _, fp := range ffront {
			if fp.SizeBits <= dp.SizeBits && fp.Accuracy > bestF {
				bestF = fp.Accuracy
			}
		}
		if bestF == 0 {
			continue
		}
		if dp.Accuracy > bestF {
			wins++
		}
		cmp.AddRow(metrics.Kbit(dp.SizeBits), metrics.F(dp.Accuracy), metrics.F(bestF),
			fmt.Sprintf("%+.3f", dp.Accuracy-bestF))
	}
	res.Tables = append(res.Tables, cmp)
	res.addNote("DFCM front beats the same-size FCM front at %d of %d comparable sizes (paper: DFCM gains .06-.09 except at small sizes)",
		wins, len(cmp.Rows))
	return res, nil
}

func init() {
	register(Experiment{
		ID:       "fig11a",
		Title:    "DFCM size/accuracy trade-off per level-1 size",
		Artifact: "Figure 11(a)",
		Run:      runFig11a,
	})
	register(Experiment{
		ID:       "fig11b",
		Title:    "Pareto fronts of FCM and DFCM",
		Artifact: "Figure 11(b)",
		Run:      runFig11b,
	})
}
