package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/metrics"
)

// delaySweep is Figure 17's x axis.
var delaySweep = []int{0, 16, 32, 64, 128, 256, 512}

func runFig17(cfg Config) (*Result, error) {
	res := &Result{ID: "fig17", Title: "prediction accuracy under delayed update (2^16 level-1, 2^12 level-2)"}
	t := &metrics.Table{Headers: []string{"delay (instructions)", "FCM", "DFCM"}}
	var xs, fYs, dYs []float64
	var f0, fN, d0, dN float64
	s := newSweep(cfg)
	type pair struct{ f, d *engine.Job }
	pairs := make([]pair, len(delaySweep))
	for i, delay := range delaySweep {
		delay := delay
		pairs[i] = pair{
			f: s.Add(func() core.Predictor {
				return core.NewDelayed(core.NewFCM(16, 12), delay)
			}),
			d: s.Add(func() core.Predictor {
				return core.NewDelayed(core.NewDFCM(16, 12), delay)
			}),
		}
	}
	if err := s.Run(); err != nil {
		return nil, err
	}
	for i, delay := range delaySweep {
		f, d := pairs[i].f.Weighted(), pairs[i].d.Weighted()
		if delay == 0 {
			f0, d0 = f, d
		}
		fN, dN = f, d
		xs = append(xs, float64(delay))
		fYs = append(fYs, f)
		dYs = append(dYs, d)
		t.AddRow(fmt.Sprint(delay), metrics.F(f), metrics.F(d))
	}
	res.Tables = append(res.Tables, t)
	chart := &metrics.Plot{
		Title:  "Figure 17: accuracy under delayed update",
		XLabel: "delay (instructions)", YLabel: "prediction accuracy",
	}
	chart.AddSeries("FCM", xs, fYs)
	chart.AddSeries("DFCM", xs, dYs)
	res.Charts = append(res.Charts, chart)
	res.addNote("FCM loses %.3f and DFCM loses %.3f going from delay 0 to %d (paper: both suffer significantly, DFCM slightly more, same overall behaviour)",
		f0-fN, d0-dN, delaySweep[len(delaySweep)-1])
	if dN > fN {
		res.addNote("DFCM stays ahead of FCM even at the largest delay")
	}
	return res, nil
}

func init() {
	register(Experiment{
		ID:       "fig17",
		Title:    "delayed update",
		Artifact: "Figure 17",
		Run:      runFig17,
	})
}
