package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/metrics"
)

func runFig10a(cfg Config) (*Result, error) {
	res := &Result{ID: "fig10a", Title: "FCM vs DFCM accuracy vs level-2 size (2^16 level-1 entries)"}
	t := &metrics.Table{Headers: []string{"log2(l2 entries)", "FCM", "DFCM", "DFCM/FCM"}}
	s := newSweep(cfg)
	type pair struct{ f, d *engine.Job }
	pairs := make([]pair, len(l2Sweep))
	for i, l2 := range l2Sweep {
		l2 := l2
		pairs[i] = pair{
			f: s.Add(func() core.Predictor { return core.NewFCM(16, l2) }),
			d: s.Add(func() core.Predictor { return core.NewDFCM(16, l2) }),
		}
	}
	if err := s.Run(); err != nil {
		return nil, err
	}
	var xs, fcmYs, dfcmYs []float64
	var maxGain, smallGap, largeGap float64
	for i, l2 := range l2Sweep {
		f, d := pairs[i].f.Weighted(), pairs[i].d.Weighted()
		gain := 0.0
		if f > 0 {
			gain = d / f
		}
		if gain > maxGain {
			maxGain = gain
		}
		if l2 == l2Sweep[0] {
			smallGap = d - f
		}
		if l2 == l2Sweep[len(l2Sweep)-1] {
			largeGap = d - f
		}
		xs = append(xs, float64(l2))
		fcmYs = append(fcmYs, f)
		dfcmYs = append(dfcmYs, d)
		t.AddRow(fmt.Sprint(l2), metrics.F(f), metrics.F(d), metrics.F(gain))
	}
	res.Tables = append(res.Tables, t)
	chart := &metrics.Plot{
		Title:  "Figure 10(a): FCM vs DFCM, 2^16 level-1 entries",
		XLabel: "log2(level-2 entries)", YLabel: "prediction accuracy",
	}
	chart.AddSeries("FCM", xs, fcmYs)
	chart.AddSeries("DFCM", xs, dfcmYs)
	res.Charts = append(res.Charts, chart)
	res.addNote("max relative improvement %.0f%% (paper: up to 33%%)", (maxGain-1)*100)
	res.addNote("absolute gap at smallest L2: %.3f; at largest L2: %.3f (paper: gap shrinks as L2 grows)",
		smallGap, largeGap)
	return res, nil
}

func runFig10b(cfg Config) (*Result, error) {
	res := &Result{ID: "fig10b", Title: "per-benchmark accuracy, FCM vs DFCM (2^16 level-1, 2^12 level-2)"}
	t := &metrics.Table{Headers: []string{"benchmark", "FCM", "DFCM", "rel.gain"}}
	s := newSweep(cfg)
	fj := s.Add(func() core.Predictor { return core.NewFCM(16, 12) })
	dj := s.Add(func() core.Predictor { return core.NewDFCM(16, 12) })
	if err := s.Run(); err != nil {
		return nil, err
	}
	fper, dper := fj.PerBench(), dj.PerBench()
	allImproved := true
	for i := range fper {
		f, d := fper[i].Result.Accuracy(), dper[i].Result.Accuracy()
		gain := 0.0
		if f > 0 {
			gain = (d/f - 1) * 100
		}
		if d < f {
			allImproved = false
		}
		t.AddRow(fper[i].Benchmark, metrics.F(f), metrics.F(d), fmt.Sprintf("%+.0f%%", gain))
	}
	fw, dw := metrics.WeightedMean(fper), metrics.WeightedMean(dper)
	t.AddRow("weighted avg", metrics.F(fw), metrics.F(dw), fmt.Sprintf("%+.0f%%", (dw/fw-1)*100))
	res.Tables = append(res.Tables, t)
	if allImproved {
		res.addNote("DFCM improves every benchmark (paper: gains of 8%% to 46%% across SPECint95)")
	} else {
		res.addNote("WARNING: some benchmark regressed under DFCM")
	}
	return res, nil
}

func init() {
	register(Experiment{
		ID:       "fig10a",
		Title:    "FCM vs DFCM across level-2 sizes",
		Artifact: "Figure 10(a)",
		Run:      runFig10a,
	})
	register(Experiment{
		ID:       "fig10b",
		Title:    "FCM vs DFCM per benchmark",
		Artifact: "Figure 10(b)",
		Run:      runFig10b,
	})
}
