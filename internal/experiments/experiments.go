// Package experiments defines one runnable experiment per table and
// figure of the paper's evaluation, plus the ablations DESIGN.md calls
// out. Each experiment regenerates the corresponding artifact as
// plain-text tables: the same rows/series the paper plots, computed
// over this repository's benchmark suite (see DESIGN.md for the
// workload substitution).
package experiments

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/metrics"
	"repro/internal/progs"
	"repro/internal/trace"
)

// Config controls an experiment run.
type Config struct {
	// Budget is the per-benchmark instruction budget (the paper
	// simulates the first 200M instructions; the default here is 1M,
	// which already saturates the qualitative results for the smaller
	// synthetic benchmarks).
	Budget uint64
	// Benchmarks selects the SPECint stand-ins to use; nil means all
	// eight.
	Benchmarks []string
}

// DefaultBudget is the per-benchmark instruction budget used when
// Config.Budget is zero.
const DefaultBudget = 1_000_000

func (c Config) budget() uint64 {
	if c.Budget == 0 {
		return DefaultBudget
	}
	return c.Budget
}

func (c Config) benchmarks() []string {
	if len(c.Benchmarks) == 0 {
		return progs.SPECNames()
	}
	return c.Benchmarks
}

// Result is the output of one experiment.
type Result struct {
	ID     string
	Title  string
	Tables []*metrics.Table
	// Charts render the same data the way the paper's figures plot
	// it (ASCII, optional log axes).
	Charts []*metrics.Plot
	// Notes record the qualitative checks the paper's text makes
	// about the artifact (e.g. "DFCM >= FCM at every size").
	Notes []string
}

func (r *Result) String() string {
	s := fmt.Sprintf("== %s: %s ==\n", r.ID, r.Title)
	for _, t := range r.Tables {
		s += "\n" + t.String()
	}
	for _, c := range r.Charts {
		s += "\n" + c.String()
	}
	for _, n := range r.Notes {
		s += "\nnote: " + n
	}
	if len(r.Notes) > 0 {
		s += "\n"
	}
	return s
}

func (r *Result) addNote(format string, args ...interface{}) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

// Experiment is one reproducible artifact.
type Experiment struct {
	ID       string
	Title    string
	Artifact string // which paper table/figure this regenerates
	Run      func(Config) (*Result, error)
}

var (
	regMu    sync.Mutex
	registry []Experiment
)

func register(e Experiment) {
	regMu.Lock()
	defer regMu.Unlock()
	for _, x := range registry {
		if x.ID == e.ID {
			panic("experiments: duplicate id " + e.ID)
		}
	}
	registry = append(registry, e)
}

// All lists every experiment, sorted by ID.
func All() []Experiment {
	regMu.Lock()
	defer regMu.Unlock()
	out := append([]Experiment(nil), registry...)
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Get returns the experiment with the given ID.
func Get(id string) (Experiment, error) {
	for _, e := range All() {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("experiments: unknown experiment %q", id)
}

// traceCache memoizes benchmark traces by (name, budget) with
// per-key singleflight, so that sweeps over dozens of predictor
// configurations regenerate each trace once and concurrent first
// fills for distinct benchmarks generate in parallel.
var traceCache = engine.NewTraceCache(progs.TraceFor)

// traceFor returns the (cached) trace of one benchmark.
func traceFor(name string, budget uint64) (trace.Trace, error) {
	return traceCache.Get(name, budget)
}

// ResetCache drops all cached traces (used by benchmarks that vary
// the budget).
func ResetCache() {
	traceCache.Reset()
}

// engineOpts configures every sweep the experiments run. The zero
// value is the production engine (chunked single-pass replay on a
// bounded pool); the equivalence tests flip Reference on to re-run
// every experiment through the sequential per-event path and compare
// artifacts byte for byte.
var engineOpts engine.Options

// newSweep returns an engine sweep over cfg's benchmark set and
// budget, backed by the shared trace cache. Experiments register all
// their predictor configurations (and scans) first, call Run once,
// and then read results — so every configuration is fed from a single
// replay of each benchmark's trace.
func newSweep(cfg Config) *engine.Sweep {
	return engine.NewSweep(engineOpts, traceCache, cfg.benchmarks(), cfg.budget())
}

// sweep runs one predictor configuration over every configured
// benchmark and returns the per-benchmark results in benchmark order.
// Single-configuration convenience over newSweep; multi-configuration
// experiments batch their configs into one engine sweep instead.
func sweep(cfg Config, mk func() core.Predictor) ([]metrics.BenchResult, error) {
	s := newSweep(cfg)
	j := s.Add(mk)
	if err := s.Run(); err != nil {
		return nil, err
	}
	return j.PerBench(), nil
}

// weighted runs a sweep and returns only the weighted-mean accuracy.
func weighted(cfg Config, mk func() core.Predictor) (float64, error) {
	per, err := sweep(cfg, mk)
	if err != nil {
		return 0, err
	}
	return metrics.WeightedMean(per), nil
}

// l2Sweep is the standard level-2 size axis of the paper's figures.
var l2Sweep = []uint{8, 10, 12, 14, 16, 18, 20}

// lvpStrideSweep is the table-size axis for the single-level
// predictors in Figure 3.
var lvpStrideSweep = []uint{6, 8, 10, 12, 14, 16}
