package experiments

// The engine port's correctness contract: every experiment renders
// byte-identical output whether it runs through the chunked,
// worker-pooled engine, the streaming-input path (Options.FeedSize
// feeds each replay in bounded chunks through engine.Stream), or the
// pre-engine sequential reference path (engine.Options.Reference).
// All experiment accumulation is integer arithmetic into
// index-addressed slots read back in submission order, so neither
// scheduling nor feed granularity can perturb output; this test pins
// that invariant for the whole registry.

import (
	"testing"

	"repro/internal/engine"
)

func TestEngineEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("full-registry equivalence run")
	}
	cfg := Config{Budget: 50_000, Benchmarks: []string{"li", "m88ksim", "go"}}

	run := func(name string, opts engine.Options) map[string]string {
		saved := engineOpts
		engineOpts = opts
		defer func() { engineOpts = saved }()
		ResetCache()
		out := make(map[string]string)
		for _, e := range All() {
			res, err := e.Run(cfg)
			if err != nil {
				t.Fatalf("%s (%s): %v", e.ID, name, err)
			}
			out[e.ID] = res.String()
		}
		return out
	}

	want := run("reference", engine.Options{Reference: true})
	for _, alt := range []struct {
		name string
		opts engine.Options
	}{
		{"engine", engine.Options{}},
		// A feed size that never divides the budget evenly, so the
		// streaming path exercises ragged final chunks everywhere.
		{"streaming", engine.Options{FeedSize: 4093}},
	} {
		got := run(alt.name, alt.opts)
		for _, e := range All() {
			if got[e.ID] != want[e.ID] {
				t.Errorf("%s: %s output differs from sequential reference path\n--- reference ---\n%s\n--- %s ---\n%s",
					e.ID, alt.name, want[e.ID], alt.name, got[e.ID])
			}
		}
	}
}
