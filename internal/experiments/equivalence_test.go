package experiments

// The engine port's correctness contract: every experiment renders
// byte-identical output whether it runs through the chunked,
// worker-pooled engine or the pre-engine sequential reference path
// (engine.Options.Reference). All experiment accumulation is integer
// arithmetic into index-addressed slots read back in submission
// order, so scheduling cannot perturb output; this test pins that
// invariant for the whole registry.

import (
	"testing"
)

func TestEngineEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("full-registry equivalence run")
	}
	cfg := Config{Budget: 50_000, Benchmarks: []string{"li", "m88ksim", "go"}}

	run := func(reference bool) map[string]string {
		saved := engineOpts
		engineOpts = saved
		engineOpts.Reference = reference
		defer func() { engineOpts = saved }()
		ResetCache()
		out := make(map[string]string)
		for _, e := range All() {
			res, err := e.Run(cfg)
			if err != nil {
				t.Fatalf("%s (reference=%v): %v", e.ID, reference, err)
			}
			out[e.ID] = res.String()
		}
		return out
	}

	want := run(true)
	got := run(false)
	for _, e := range All() {
		if got[e.ID] != want[e.ID] {
			t.Errorf("%s: engine output differs from sequential reference path\n--- reference ---\n%s\n--- engine ---\n%s",
				e.ID, want[e.ID], got[e.ID])
		}
	}
}
