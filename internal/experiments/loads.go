package experiments

import (
	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/metrics"
	"repro/internal/progs"
	"repro/internal/trace"
)

// loadPCs returns the set of text addresses holding load instructions
// in a benchmark, classified statically from the encoded words.
func loadPCs(bench string) (map[uint32]bool, error) {
	p, err := progs.Program(bench)
	if err != nil {
		return nil, err
	}
	set := make(map[uint32]bool)
	for i, w := range p.Text {
		if isa.DecodeDeps(w).Load {
			set[uint32(isa.TextBase+4*i)] = true
		}
	}
	return set, nil
}

// runExtLoads evaluates selective value prediction — predicting only
// load instructions, the related-work efficiency approach of
// Lipasti's LVP and Burtscher & Zorn ([2], [11] in the paper) — and
// contrasts it with predicting every register-producing instruction.
// The paper calls this approach "complementary to ours"; this
// experiment shows what each side of that trade gives up: loads are a
// minority of predictable instructions, and their predictability is
// not systematically higher on these workloads.
func runExtLoads(cfg Config) (*Result, error) {
	res := &Result{ID: "ext-loads",
		Title: "selective prediction: loads only vs all register-producing instructions (DFCM 2^16/2^12)"}
	t := &metrics.Table{Headers: []string{
		"benchmark", "load frac", "acc (loads)", "acc (non-loads)", "acc (all)"}}
	var totLoads, totAll core.Result
	type cell struct{ loadRes, otherRes core.Result }
	cells := make([]cell, len(cfg.benchmarks()))
	s := newSweep(cfg)
	s.AddScan(func(i int, bench string, tr trace.Trace) error {
		loads, err := loadPCs(bench)
		if err != nil {
			return err
		}
		// One predictor sees the whole stream (tables shared, as in
		// hardware); outcomes are attributed per class.
		p := core.NewDFCM(16, 12)
		var loadRes, otherRes core.Result
		for _, e := range tr {
			correct := p.Predict(e.PC) == e.Value
			r := &otherRes
			if loads[e.PC] {
				r = &loadRes
			}
			r.Predictions++
			if correct {
				r.Correct++
			}
			p.Update(e.PC, e.Value)
		}
		cells[i] = cell{loadRes: loadRes, otherRes: otherRes}
		return nil
	})
	if err := s.Run(); err != nil {
		return nil, err
	}
	for i, bench := range cfg.benchmarks() {
		loadRes, otherRes := cells[i].loadRes, cells[i].otherRes
		var all core.Result
		all.Add(loadRes)
		all.Add(otherRes)
		totLoads.Add(loadRes)
		totAll.Add(all)
		t.AddRow(bench,
			metrics.F(float64(loadRes.Predictions)/float64(all.Predictions)),
			metrics.F(loadRes.Accuracy()), metrics.F(otherRes.Accuracy()),
			metrics.F(all.Accuracy()))
	}
	res.Tables = append(res.Tables, t)
	loadShare := float64(totLoads.Predictions) / float64(totAll.Predictions)
	res.addNote("loads are %.0f%% of predictable instructions; restricting prediction to them forfeits the other %.0f%% (the paper: selective prediction is complementary — it does not fix the FCM's stride inefficiency)",
		100*loadShare, 100*(1-loadShare))
	return res, nil
}

func init() {
	register(Experiment{
		ID:       "ext-loads",
		Title:    "loads-only selective prediction",
		Artifact: "section 5 (selective prediction), extension",
		Run:      runExtLoads,
	})
}
