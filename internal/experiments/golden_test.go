package experiments

import (
	"testing"

	"repro/internal/core"
	"repro/internal/trace"
)

// TestGoldenEndToEnd locks the entire pipeline — assembler, simulator,
// benchmark programs, trace emission, hashing, predictors — to exact
// recorded outcomes. Every computation in the stack is deterministic
// integer arithmetic with no map-iteration or wall-clock dependence,
// so these values are stable across platforms and Go versions; any
// change to them means behaviour changed somewhere and must be
// reviewed (and, if intended, re-recorded with the generator in this
// file's history: run each benchmark for 200k instructions and count
// correct predictions).
func TestGoldenEndToEnd(t *testing.T) {
	golden := []struct {
		bench             string
		events            int
		stride, fcm, dfcm uint64
	}{
		{"cc1", 141971, 84658, 69081, 96372},
		{"compress", 152909, 74622, 26264, 92796},
		{"go", 148853, 111652, 89264, 122659},
		{"ijpeg", 182927, 95108, 89519, 128936},
		{"li", 117950, 81199, 77173, 105921},
		{"m88ksim", 163424, 76654, 132954, 147354},
		{"perl", 158981, 54746, 69789, 83704},
		{"vortex", 156270, 94422, 60910, 115646},
	}
	for _, g := range golden {
		tr, err := traceFor(g.bench, 200_000)
		if err != nil {
			t.Fatal(err)
		}
		if len(tr) != g.events {
			t.Errorf("%s: %d events, golden %d", g.bench, len(tr), g.events)
			continue
		}
		if got := core.Run(core.NewStride(14), trace.NewReader(tr)).Correct; got != g.stride {
			t.Errorf("%s: stride correct = %d, golden %d", g.bench, got, g.stride)
		}
		if got := core.Run(core.NewFCM(16, 12), trace.NewReader(tr)).Correct; got != g.fcm {
			t.Errorf("%s: fcm correct = %d, golden %d", g.bench, got, g.fcm)
		}
		if got := core.Run(core.NewDFCM(16, 12), trace.NewReader(tr)).Correct; got != g.dfcm {
			t.Errorf("%s: dfcm correct = %d, golden %d", g.bench, got, g.dfcm)
		}
	}
}
