package experiments

import (
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/trace"
)

// runExtPredictability measures, per benchmark, the idealized
// predictability ceilings (Sazeides & Smith's models with unbounded
// collision-free tables) and how much of the differential-context
// ceiling the finite DFCM realizes. It makes the paper's efficiency
// claim quantitative from the other direction: the gap between a real
// FCM/DFCM and its oracle is exactly the cost of finite tables and
// hashing, which the DFCM shrinks.
func runExtPredictability(cfg Config) (*Result, error) {
	res := &Result{ID: "ext-predictability",
		Title: "idealized predictability ceilings vs realized accuracy (order 3)"}
	t := &metrics.Table{Headers: []string{
		"benchmark", "constant", "stride", "context", "dcontext",
		"FCM 2^16/2^12", "DFCM 2^16/2^12", "DFCM/ceiling"}}

	var worstRealized = 1.0
	var exceeded []string
	type cell struct {
		p         metrics.Predictability
		fcm, dfcm float64
	}
	cells := make([]cell, len(cfg.benchmarks()))
	s := newSweep(cfg)
	s.AddScan(func(i int, bench string, tr trace.Trace) error {
		cells[i] = cell{
			p:    metrics.MeasurePredictability(trace.NewReader(tr), 3),
			fcm:  core.Run(core.NewFCM(16, 12), trace.NewReader(tr)).Accuracy(),
			dfcm: core.Run(core.NewDFCM(16, 12), trace.NewReader(tr)).Accuracy(),
		}
		return nil
	})
	if err := s.Run(); err != nil {
		return nil, err
	}
	for i, bench := range cfg.benchmarks() {
		p, fcm, dfcm := cells[i].p, cells[i].fcm, cells[i].dfcm
		ceiling := p.Ceiling()
		realized := 0.0
		if ceiling > 0 {
			realized = dfcm / ceiling
		}
		if realized < worstRealized {
			worstRealized = realized
		}
		if realized > 1 {
			exceeded = append(exceeded, bench)
		}
		t.AddRow(bench,
			metrics.F(p.Constant), metrics.F(p.Stride),
			metrics.F(p.Context), metrics.F(p.DContext),
			metrics.F(fcm), metrics.F(dfcm), metrics.F(realized))
	}
	res.Tables = append(res.Tables, t)
	res.addNote("the DFCM realizes at least %.0f%% of each benchmark's best oracle ceiling with 2^12 level-2 entries",
		100*worstRealized)
	res.addNote("dcontext >= context on stride-rich benchmarks is the information-theoretic form of the paper's argument: differencing exposes predictability that value contexts hide from finite tables")
	if len(exceeded) > 0 {
		res.addNote("%v exceed their per-PC ceiling: the real DFCM sees order-3 strides *plus* the last value (more context than the oracle) and benefits from constructive cross-instruction sharing of level-2 entries (the l2_pc effect of Figure 12), which per-PC oracles cannot model",
			exceeded)
	}
	return res, nil
}

func init() {
	register(Experiment{
		ID:       "ext-predictability",
		Title:    "oracle predictability ceilings per benchmark",
		Artifact: "Sazeides & Smith models, extension",
		Run:      runExtPredictability,
	})
}
