package experiments

import (
	"fmt"

	"repro/internal/alias"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/trace"
)

// aliasRun classifies one benchmark's trace with the 2^12 x 2^12
// configuration of the paper's section 4.2.
func aliasRun(cfg Config, bench string, differential bool) (*alias.Analyzer, error) {
	tr, err := traceFor(bench, cfg.budget())
	if err != nil {
		return nil, err
	}
	an := alias.New(12, 12, differential)
	an.Run(trace.NewReader(tr))
	return an, nil
}

// aliasRuns classifies every benchmark's trace, one sweep task per
// benchmark, and returns the per-benchmark category counts in
// cfg.benchmarks() order.
func aliasRuns(cfg Config, differential bool) ([][alias.NumKinds]core.Result, error) {
	benches := cfg.benchmarks()
	counts := make([][alias.NumKinds]core.Result, len(benches))
	s := newSweep(cfg)
	for i, bench := range benches {
		i, bench := i, bench
		s.AddTask(func() error {
			an, err := aliasRun(cfg, bench, differential)
			if err != nil {
				return err
			}
			counts[i] = an.Counts()
			return nil
		})
	}
	if err := s.Run(); err != nil {
		return nil, err
	}
	return counts, nil
}

// aliasTotals sums per-category results over all benchmarks.
func aliasTotals(cfg Config, differential bool) ([alias.NumKinds]core.Result, error) {
	var totals [alias.NumKinds]core.Result
	counts, err := aliasRuns(cfg, differential)
	if err != nil {
		return totals, err
	}
	for _, c := range counts {
		for k := range totals {
			totals[k].Add(c[k])
		}
	}
	return totals, nil
}

func runFig12(cfg Config) (*Result, error) {
	res := &Result{ID: "fig12", Title: "prediction accuracy per aliasing type (FCM, 2^12/2^12)"}
	totals, err := aliasTotals(cfg, false)
	if err != nil {
		return nil, err
	}
	t := &metrics.Table{Headers: []string{"aliasing type", "fraction of predictions", "accuracy"}}
	var all core.Result
	for _, c := range totals {
		all.Add(c)
	}
	for _, k := range alias.Kinds() {
		c := totals[k]
		t.AddRow(k.String(),
			metrics.F(float64(c.Predictions)/float64(all.Predictions)),
			metrics.F(c.Accuracy()))
	}
	res.Tables = append(res.Tables, t)

	badMax := maxAcc(totals[alias.L1], totals[alias.Hash])
	goodMin := minAcc(totals[alias.None], totals[alias.L2PC])
	if badMax < goodMin {
		res.addNote("l1/hash accuracies (<= %.3f) are well below none/l2_pc (>= %.3f), as in the paper",
			badMax, goodMin)
	} else {
		res.addNote("WARNING: aliasing-type accuracy ordering deviates from the paper (l1/hash max %.3f vs none/l2_pc min %.3f)",
			badMax, goodMin)
	}
	res.addNote("l2_priv accuracy %.3f (paper: above 50%%, hurt only by longer learning time)",
		totals[alias.L2Priv].Accuracy())
	return res, nil
}

func maxAcc(rs ...core.Result) float64 {
	m := 0.0
	for _, r := range rs {
		if a := r.Accuracy(); a > m {
			m = a
		}
	}
	return m
}

func minAcc(rs ...core.Result) float64 {
	m := 1.0
	for _, r := range rs {
		if a := r.Accuracy(); a < m {
			m = a
		}
	}
	return m
}

// aliasMixTable renders per-benchmark category fractions. If wrongOnly
// is set, fractions are mispredictions per category over all
// predictions (Figure 14); otherwise all predictions (Figure 13).
func aliasMixTable(cfg Config, differential, wrongOnly bool) (*metrics.Table, [alias.NumKinds]core.Result, error) {
	var totals [alias.NumKinds]core.Result
	label := "FCM"
	if differential {
		label = "DFCM"
	}
	t := &metrics.Table{Title: label,
		Headers: []string{"benchmark", "l1", "hash", "l2_priv", "l2_pc", "none", "total"}}
	row := func(name string, counts [alias.NumKinds]core.Result) {
		var all core.Result
		for _, c := range counts {
			all.Add(c)
		}
		cells := []string{name}
		var totalFrac float64
		for _, k := range alias.Kinds() {
			c := counts[k]
			num := c.Predictions
			if wrongOnly {
				num = c.Predictions - c.Correct
			}
			f := float64(num) / float64(all.Predictions)
			totalFrac += f
			cells = append(cells, metrics.F(f))
		}
		cells = append(cells, metrics.F(totalFrac))
		t.AddRow(cells...)
	}
	counts, err := aliasRuns(cfg, differential)
	if err != nil {
		return nil, totals, err
	}
	for i, bench := range cfg.benchmarks() {
		c := counts[i]
		row(bench, c)
		for k := range totals {
			totals[k].Add(c[k])
		}
	}
	row("avg", totals)
	return t, totals, nil
}

func runFig13(cfg Config) (*Result, error) {
	res := &Result{ID: "fig13", Title: "aliasing type mix over all predictions (2^12/2^12)"}
	ft, ftot, err := aliasMixTable(cfg, false, false)
	if err != nil {
		return nil, err
	}
	dt, dtot, err := aliasMixTable(cfg, true, false)
	if err != nil {
		return nil, err
	}
	res.Tables = append(res.Tables, ft, dt)

	var fAll, dAll core.Result
	for k := range ftot {
		fAll.Add(ftot[k])
		dAll.Add(dtot[k])
	}
	fracOf := func(c core.Result, all core.Result) float64 {
		return float64(c.Predictions) / float64(all.Predictions)
	}
	res.addNote("l2_pc fraction: FCM %.3f -> DFCM %.3f (paper: arises almost twice as often under DFCM)",
		fracOf(ftot[alias.L2PC], fAll), fracOf(dtot[alias.L2PC], dAll))
	res.addNote("hash fraction: FCM %.3f -> DFCM %.3f (paper: decreases)",
		fracOf(ftot[alias.Hash], fAll), fracOf(dtot[alias.Hash], dAll))
	res.addNote("none fraction: FCM %.3f -> DFCM %.3f (paper: DFCM has even fewer no-aliasing cases)",
		fracOf(ftot[alias.None], fAll), fracOf(dtot[alias.None], dAll))
	return res, nil
}

func runFig14(cfg Config) (*Result, error) {
	res := &Result{ID: "fig14", Title: "aliasing type mix among mispredictions (2^12/2^12)"}
	ft, ftot, err := aliasMixTable(cfg, false, true)
	if err != nil {
		return nil, err
	}
	dt, dtot, err := aliasMixTable(cfg, true, true)
	if err != nil {
		return nil, err
	}
	res.Tables = append(res.Tables, ft, dt)

	var fAll, dAll core.Result
	var fWrong, dWrong, fHashWrong, dHashWrong uint64
	for k := range ftot {
		fAll.Add(ftot[k])
		dAll.Add(dtot[k])
		fWrong += ftot[k].Predictions - ftot[k].Correct
		dWrong += dtot[k].Predictions - dtot[k].Correct
	}
	fHashWrong = ftot[alias.Hash].Predictions - ftot[alias.Hash].Correct
	dHashWrong = dtot[alias.Hash].Predictions - dtot[alias.Hash].Correct
	res.addNote("misprediction rate: FCM %.3f -> DFCM %.3f",
		float64(fWrong)/float64(fAll.Predictions), float64(dWrong)/float64(dAll.Predictions))
	res.addNote("hash-aliased mispredictions (of all predictions): FCM %.3f -> DFCM %.3f (paper: 34%% -> 25%%)",
		float64(fHashWrong)/float64(fAll.Predictions), float64(dHashWrong)/float64(dAll.Predictions))
	if dWrong > 0 {
		res.addNote(fmt.Sprintf("hash aliasing causes %.0f%%%% of remaining DFCM mispredictions (paper: 59%%%%)",
			100*float64(dHashWrong)/float64(dWrong)))
	}
	return res, nil
}

func init() {
	register(Experiment{
		ID:       "fig12",
		Title:    "accuracy per aliasing category",
		Artifact: "Figure 12",
		Run:      runFig12,
	})
	register(Experiment{
		ID:       "fig13",
		Title:    "aliasing mix over all predictions, FCM vs DFCM",
		Artifact: "Figure 13",
		Run:      runFig13,
	})
	register(Experiment{
		ID:       "fig14",
		Title:    "aliasing mix among mispredictions, FCM vs DFCM",
		Artifact: "Figure 14",
		Run:      runFig14,
	})
}
