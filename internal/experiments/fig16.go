package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/metrics"
)

func runFig16(cfg Config) (*Result, error) {
	res := &Result{ID: "fig16", Title: "DFCM vs perfect-meta hybrids (all level-1 tables 2^16, stride table 2^16)"}
	t := &metrics.Table{Headers: []string{
		"log2(l2 entries)", "FCM", "DFCM", "STRIDE+FCM", "STRIDE+DFCM"}}
	dfcmBeatsHybrid := true
	var maxTopGap float64
	var xs []float64
	ys := make([][]float64, 4)
	s := newSweep(cfg)
	type row struct{ f, d, sf, sd *engine.Job }
	rows := make([]row, len(l2Sweep))
	for i, l2 := range l2Sweep {
		l2 := l2
		rows[i] = row{
			f: s.Add(func() core.Predictor { return core.NewFCM(16, l2) }),
			d: s.Add(func() core.Predictor { return core.NewDFCM(16, l2) }),
			sf: s.Add(func() core.Predictor {
				return core.NewPerfectHybrid(core.NewStride(16), core.NewFCM(16, l2))
			}),
			sd: s.Add(func() core.Predictor {
				return core.NewPerfectHybrid(core.NewStride(16), core.NewDFCM(16, l2))
			}),
		}
	}
	if err := s.Run(); err != nil {
		return nil, err
	}
	for i, l2 := range l2Sweep {
		f, d := rows[i].f.Weighted(), rows[i].d.Weighted()
		sf, sd := rows[i].sf.Weighted(), rows[i].sd.Weighted()
		if d < sf {
			dfcmBeatsHybrid = false
		}
		if gap := sd - d; gap > maxTopGap {
			maxTopGap = gap
		}
		xs = append(xs, float64(l2))
		for i, v := range []float64{f, d, sf, sd} {
			ys[i] = append(ys[i], v)
		}
		t.AddRow(fmt.Sprint(l2), metrics.F(f), metrics.F(d), metrics.F(sf), metrics.F(sd))
	}
	res.Tables = append(res.Tables, t)
	chart := &metrics.Plot{
		Title:  "Figure 16: hybrid predictors (perfect meta-predictor)",
		XLabel: "log2(level-2 entries)", YLabel: "prediction accuracy",
	}
	for i, name := range []string{"FCM", "DFCM", "STRIDE+FCM", "STRIDE+DFCM"} {
		chart.AddSeries(name, xs, ys[i])
	}
	res.Charts = append(res.Charts, chart)
	if dfcmBeatsHybrid {
		res.addNote("single DFCM >= perfect STRIDE+FCM hybrid at every level-2 size (the paper's headline for this figure)")
	} else {
		res.addNote("DFCM vs perfect STRIDE+FCM: close but not uniformly above (paper finds a small, uniform win)")
	}
	res.addNote("perfect STRIDE+DFCM adds at most %.3f over plain DFCM (paper: .02-.04 — DFCM already catches nearly all strides)",
		maxTopGap)
	return res, nil
}

func init() {
	register(Experiment{
		ID:       "fig16",
		Title:    "hybrid predictors with a perfect meta-predictor",
		Artifact: "Figure 16",
		Run:      runFig16,
	})
}
