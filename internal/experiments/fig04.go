package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/trace"
)

// figPattern is the worked example of Figures 4 and 8: the stride
// pattern 0 1 2 3 4 5 6, continuously repeated.
var figPattern = []uint32{0, 1, 2, 3, 4, 5, 6}

// contextUsage replays the repeated pattern through a two-level
// predictor and counts accesses per distinct level-2 index during the
// steady state.
func contextUsage(p core.Predictor, reps int) map[uint64]uint64 {
	idx := p.(core.L2Indexer)
	counts := make(map[uint64]uint64)
	warm := 3 * len(figPattern)
	n := 0
	for r := 0; r < reps; r++ {
		for _, v := range figPattern {
			if n >= warm {
				counts[idx.L2Index(0x40)]++
			}
			p.Update(0x40, v)
			n++
		}
	}
	return counts
}

func usageTable(title string, counts map[uint64]uint64) *metrics.Table {
	t := &metrics.Table{Title: title, Headers: []string{"distinct L2 entries", "accesses/iteration (max)", "accesses/iteration (min)"}}
	var max, min uint64
	min = ^uint64(0)
	for _, c := range counts {
		if c > max {
			max = c
		}
		if c < min {
			min = c
		}
	}
	if len(counts) == 0 {
		min = 0
	}
	t.AddRow(fmt.Sprint(len(counts)), fmt.Sprint(max), fmt.Sprint(min))
	return t
}

func runFig4(cfg Config) (*Result, error) {
	res := &Result{ID: "fig4", Title: "stride pattern stored in the FCM level-2 table (worked example)"}
	const reps = 103 // 100 measured iterations + warmup
	counts := contextUsage(core.NewFCM(4, 12), reps)
	res.Tables = append(res.Tables, usageTable("FCM, pattern 0 1 2 3 4 5 6 repeated", counts))
	res.addNote("the FCM allocates one level-2 entry per distinct value in the pattern (%d entries for a length-%d pattern)",
		len(counts), len(figPattern))

	// Accuracy on the same pattern: FCM predicts it only after the
	// pattern repeats.
	tr := make(trace.Trace, 0, reps*len(figPattern))
	for r := 0; r < reps; r++ {
		for _, v := range figPattern {
			tr = append(tr, trace.Event{PC: 0x40, Value: v})
		}
	}
	acc := core.Run(core.NewFCM(4, 12), trace.NewReader(tr)).Accuracy()
	res.addNote("FCM accuracy on the repeated pattern: %.3f (learns it, but only after repetition)", acc)
	return res, nil
}

func runFig8(cfg Config) (*Result, error) {
	res := &Result{ID: "fig8", Title: "stride pattern stored in the DFCM level-2 table (worked example)"}
	const reps = 103
	counts := contextUsage(core.NewDFCM(4, 12), reps)
	res.Tables = append(res.Tables, usageTable("DFCM, pattern 0 1 2 3 4 5 6 repeated", counts))

	// The paper's Figure 8: the constant-stride context is accessed
	// every iteration except around the counter reset; the reset
	// contexts occupy a handful of entries accessed once per
	// iteration.
	var hot int
	for _, c := range counts {
		if c > reps/2 {
			hot++
		}
	}
	res.addNote("%d level-2 entries in total; %d hot entry(ies) take the in-pattern accesses, the rest only absorb the counter reset",
		len(counts), hot)

	fcmCounts := contextUsage(core.NewFCM(4, 12), reps)
	if len(counts) >= len(fcmCounts) {
		res.addNote("WARNING: DFCM did not use fewer entries than FCM (%d vs %d)", len(counts), len(fcmCounts))
	} else {
		res.addNote("DFCM uses %d entries where FCM uses %d", len(counts), len(fcmCounts))
	}
	return res, nil
}

func init() {
	register(Experiment{
		ID:       "fig4",
		Title:    "worked example: FCM scatters a stride pattern",
		Artifact: "Figure 4",
		Run:      runFig4,
	})
	register(Experiment{
		ID:       "fig8",
		Title:    "worked example: DFCM collapses a stride pattern",
		Artifact: "Figure 8",
		Run:      runFig8,
	})
}
