package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/metrics"
)

// fcmL1Sweep is Figure 3's level-1 size axis.
var fcmL1Sweep = []uint{0, 4, 6, 8, 10, 12, 14, 16}

// fig3Points computes the (size, accuracy) points for every predictor
// family of Figure 3. Shared with fig11b's Pareto construction. All
// configurations go into one engine sweep, so the whole grid is fed
// from a single replay of each benchmark's trace.
func fig3Points(cfg Config) (lvp, stride, fcm []metrics.Point, err error) {
	s := newSweep(cfg)
	point := func(p core.Predictor, j *engine.Job) metrics.Point {
		return metrics.Point{Name: p.Name(), SizeBits: p.SizeBits(), Accuracy: j.Weighted()}
	}
	type pending struct {
		p   core.Predictor // probe instance for Name/SizeBits, never run
		job *engine.Job
	}
	var lvpJobs, strideJobs, fcmJobs []pending
	for _, bits := range lvpStrideSweep {
		b := bits
		lvpJobs = append(lvpJobs, pending{core.NewLastValue(b),
			s.Add(func() core.Predictor { return core.NewLastValue(b) })})
		strideJobs = append(strideJobs, pending{core.NewStride(b),
			s.Add(func() core.Predictor { return core.NewStride(b) })})
	}
	for _, l1 := range fcmL1Sweep {
		for _, l2 := range l2Sweep {
			l1, l2 := l1, l2
			fcmJobs = append(fcmJobs, pending{core.NewFCM(l1, l2),
				s.Add(func() core.Predictor { return core.NewFCM(l1, l2) })})
		}
	}
	if err := s.Run(); err != nil {
		return nil, nil, nil, err
	}
	for _, e := range lvpJobs {
		lvp = append(lvp, point(e.p, e.job))
	}
	for _, e := range strideJobs {
		stride = append(stride, point(e.p, e.job))
	}
	for _, e := range fcmJobs {
		fcm = append(fcm, point(e.p, e.job))
	}
	return lvp, stride, fcm, nil
}

func runFig3(cfg Config) (*Result, error) {
	lvp, stride, fcm, err := fig3Points(cfg)
	if err != nil {
		return nil, err
	}
	res := &Result{ID: "fig3", Title: "LVP, stride and FCM: accuracy vs. size"}

	curve := func(title string, pts []metrics.Point) *metrics.Table {
		t := &metrics.Table{Title: title,
			Headers: []string{"config", "size(Kbit)", "accuracy"}}
		for _, p := range pts {
			t.AddRow(p.Name, metrics.Kbit(p.SizeBits), metrics.F(p.Accuracy))
		}
		return t
	}
	res.Tables = append(res.Tables,
		curve("last value predictor", lvp),
		curve("stride predictor", stride),
		curve("FCM (per level-1 size, level-2 2^8..2^20)", fcm),
	)

	chart := &metrics.Plot{
		Title:  "Figure 3: accuracy vs predictor size",
		XLabel: "size (Kbit)", YLabel: "prediction accuracy", LogX: true,
	}
	chart.AddPoints("lvp", lvp)
	chart.AddPoints("stride", stride)
	// One representative FCM curve per level-1 size would crowd the
	// plot; show the envelope the paper's eye traces: the best FCM at
	// each size (its Pareto front).
	chart.AddPoints("fcm (best of sweep)", metrics.Pareto(fcm))
	res.Charts = append(res.Charts, chart)

	// Paper's qualitative claims for this figure.
	bestSingle := 0.0
	for _, p := range append(append([]metrics.Point{}, lvp...), stride...) {
		if p.Accuracy > bestSingle {
			bestSingle = p.Accuracy
		}
	}
	bestFCM := 0.0
	for _, p := range fcm {
		if p.Accuracy > bestFCM {
			bestFCM = p.Accuracy
		}
	}
	res.addNote("best FCM accuracy %.3f vs best LVP/stride %.3f (paper: FCM is the most accurate but needs huge tables)",
		bestFCM, bestSingle)
	// Growing L2 at the largest L1 should keep helping.
	var largeL1 []metrics.Point
	for _, p := range fcm {
		if p.Name == fmt.Sprintf("fcm-2^16/2^%d", 18) || p.Name == fmt.Sprintf("fcm-2^16/2^%d", 20) {
			largeL1 = append(largeL1, p)
		}
	}
	if len(largeL1) == 2 {
		res.addNote("FCM 2^16 L1: going from 2^18 to 2^20 L2 entries moves accuracy %.3f -> %.3f",
			largeL1[0].Accuracy, largeL1[1].Accuracy)
	}
	return res, nil
}

func init() {
	register(Experiment{
		ID:       "fig3",
		Title:    "accuracy vs. storage for LVP, stride and FCM",
		Artifact: "Figure 3",
		Run:      runFig3,
	})
}
