package experiments

import (
	"strconv"
	"strings"
	"testing"

	"repro/internal/core"
)

// testCfg keeps test runtime modest while staying statistically
// meaningful.
var testCfg = Config{Budget: 200_000}

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"ablation-hash", "ablation-index", "ablation-meta", "ablation-order",
		"ext-confidence", "ext-ilp", "ext-loads", "ext-predictability", "ext-relatedwork", "ext-tage",
		"fig10a", "fig10b", "fig11a", "fig11b", "fig12", "fig13",
		"fig14", "fig16", "fig17", "fig3", "fig4", "fig6", "fig8",
		"fig9", "sec44", "table1",
	}
	got := All()
	if len(got) != len(want) {
		t.Fatalf("registry has %d experiments, want %d", len(got), len(want))
	}
	for i, e := range got {
		if e.ID != want[i] {
			t.Errorf("experiment %d = %q, want %q", i, e.ID, want[i])
		}
		if e.Title == "" || e.Artifact == "" || e.Run == nil {
			t.Errorf("%s: incomplete definition", e.ID)
		}
	}
	if _, err := Get("fig3"); err != nil {
		t.Error(err)
	}
	if _, err := Get("nope"); err == nil {
		t.Error("unknown id did not error")
	}
}

func TestConfigDefaults(t *testing.T) {
	var c Config
	if c.budget() != DefaultBudget {
		t.Errorf("default budget = %d", c.budget())
	}
	if len(c.benchmarks()) != 8 {
		t.Errorf("default benchmarks = %v", c.benchmarks())
	}
	c = Config{Budget: 42, Benchmarks: []string{"li"}}
	if c.budget() != 42 || len(c.benchmarks()) != 1 {
		t.Error("explicit config ignored")
	}
}

// accFromTable extracts a float cell.
func cellFloat(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("cell %q not a float: %v", s, err)
	}
	return v
}

func TestFig10aDFCMBeatsFCMEverywhere(t *testing.T) {
	res, err := runFig10a(testCfg)
	if err != nil {
		t.Fatal(err)
	}
	tbl := res.Tables[0]
	if len(tbl.Rows) != len(l2Sweep) {
		t.Fatalf("got %d rows", len(tbl.Rows))
	}
	var gapSmall, gapLarge float64
	for i, row := range tbl.Rows {
		f, d := cellFloat(t, row[1]), cellFloat(t, row[2])
		if d < f {
			t.Errorf("l2=2^%s: DFCM %.3f < FCM %.3f", row[0], d, f)
		}
		if i == 0 {
			gapSmall = d - f
		}
		if i == len(tbl.Rows)-1 {
			gapLarge = d - f
		}
	}
	if gapSmall <= gapLarge {
		t.Errorf("gap should shrink with L2 size: small %.3f, large %.3f", gapSmall, gapLarge)
	}
}

func TestFig10bEveryBenchmarkImproves(t *testing.T) {
	res, err := runFig10b(testCfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range res.Tables[0].Rows {
		f, d := cellFloat(t, row[1]), cellFloat(t, row[2])
		if d < f-0.005 {
			t.Errorf("%s: DFCM %.3f below FCM %.3f", row[0], d, f)
		}
	}
}

func TestFig3FCMBestAtScale(t *testing.T) {
	res, err := runFig3(Config{Budget: 150_000, Benchmarks: []string{"li", "m88ksim", "perl"}})
	if err != nil {
		t.Fatal(err)
	}
	best := func(tbl int) float64 {
		b := 0.0
		for _, row := range res.Tables[tbl].Rows {
			if v := cellFloat(t, row[2]); v > b {
				b = v
			}
		}
		return b
	}
	lvp, stride, fcm := best(0), best(1), best(2)
	if fcm <= lvp || fcm <= stride {
		t.Errorf("FCM best %.3f should beat LVP %.3f and stride %.3f at large sizes", fcm, lvp, stride)
	}
}

func TestFig4And8WorkedExamples(t *testing.T) {
	r4, err := runFig4(testCfg)
	if err != nil {
		t.Fatal(err)
	}
	r8, err := runFig8(testCfg)
	if err != nil {
		t.Fatal(err)
	}
	// FCM should use >= 7 entries, DFCM fewer.
	fcmEntries := cellFloat(t, r4.Tables[0].Rows[0][0])
	dfcmEntries := cellFloat(t, r8.Tables[0].Rows[0][0])
	if fcmEntries < 7 {
		t.Errorf("FCM worked example uses %v entries, want >= 7", fcmEntries)
	}
	if dfcmEntries >= fcmEntries {
		t.Errorf("DFCM (%v entries) should use fewer than FCM (%v)", dfcmEntries, fcmEntries)
	}
}

func TestFig9DFCMConcentratesStrides(t *testing.T) {
	cfg := Config{Budget: 200_000}
	for _, bench := range []string{"norm", "li"} {
		fg, err := strideHistFor(cfg, bench, false)
		if err != nil {
			t.Fatal(err)
		}
		dg, err := strideHistFor(cfg, bench, true)
		if err != nil {
			t.Fatal(err)
		}
		if f, d := fg.EntriesOver(100), dg.EntriesOver(100); d >= f {
			t.Errorf("%s: DFCM spreads strides over %d entries (>100 accesses), FCM %d — want fewer",
				bench, d, f)
		}
	}
}

func TestFig12AliasAccuracyOrdering(t *testing.T) {
	res, err := runFig12(Config{Budget: 200_000, Benchmarks: []string{"li", "m88ksim", "go", "cc1"}})
	if err != nil {
		t.Fatal(err)
	}
	acc := map[string]float64{}
	frac := map[string]float64{}
	for _, row := range res.Tables[0].Rows {
		frac[row[0]] = cellFloat(t, row[1])
		acc[row[0]] = cellFloat(t, row[2])
	}
	if acc["hash"] > acc["none"] {
		t.Errorf("hash accuracy %.3f above none %.3f", acc["hash"], acc["none"])
	}
	if acc["l2_pc"] < 0.5 && frac["l2_pc"] > 0.02 {
		t.Errorf("l2_pc accuracy %.3f; paper finds it benign", acc["l2_pc"])
	}
	total := 0.0
	for _, f := range frac {
		total += f
	}
	if total < 0.99 || total > 1.01 {
		t.Errorf("fractions sum to %.3f", total)
	}
}

func TestFig13L2PCGrowsUnderDFCM(t *testing.T) {
	res, err := runFig13(Config{Budget: 200_000, Benchmarks: []string{"li", "norm", "ijpeg"}})
	if err != nil {
		t.Fatal(err)
	}
	// avg row is last; l2_pc is column 4.
	fcmAvg := res.Tables[0].Rows[len(res.Tables[0].Rows)-1]
	dfcmAvg := res.Tables[1].Rows[len(res.Tables[1].Rows)-1]
	if f, d := cellFloat(t, fcmAvg[4]), cellFloat(t, dfcmAvg[4]); d <= f {
		t.Errorf("l2_pc fraction should grow under DFCM: %.3f -> %.3f", f, d)
	}
}

func TestFig14FewerMispredictionsUnderDFCM(t *testing.T) {
	res, err := runFig14(Config{Budget: 200_000, Benchmarks: []string{"li", "ijpeg", "go"}})
	if err != nil {
		t.Fatal(err)
	}
	// Total misprediction fraction is the last column of the avg row.
	fcmAvg := res.Tables[0].Rows[len(res.Tables[0].Rows)-1]
	dfcmAvg := res.Tables[1].Rows[len(res.Tables[1].Rows)-1]
	f := cellFloat(t, fcmAvg[len(fcmAvg)-1])
	d := cellFloat(t, dfcmAvg[len(dfcmAvg)-1])
	if d >= f {
		t.Errorf("misprediction rate should drop under DFCM: %.3f -> %.3f", f, d)
	}
}

func TestFig16DFCMCompetitiveWithPerfectHybrid(t *testing.T) {
	res, err := runFig16(Config{Budget: 200_000, Benchmarks: []string{"li", "ijpeg", "m88ksim", "norm"}})
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range res.Tables[0].Rows {
		d := cellFloat(t, row[2])
		sf := cellFloat(t, row[3])
		sd := cellFloat(t, row[4])
		if d < sf-0.03 {
			t.Errorf("l2=2^%s: DFCM %.3f far below perfect STRIDE+FCM %.3f", row[0], d, sf)
		}
		if sd < d {
			t.Errorf("l2=2^%s: STRIDE+DFCM %.3f below DFCM %.3f (impossible for a perfect hybrid)",
				row[0], sd, d)
		}
		if sd > d+0.1 {
			t.Errorf("l2=2^%s: STRIDE+DFCM adds %.3f; paper finds at most ~.04", row[0], sd-d)
		}
	}
}

func TestFig17DelayDegrades(t *testing.T) {
	res, err := runFig17(Config{Budget: 200_000, Benchmarks: []string{"li", "go", "cc1"}})
	if err != nil {
		t.Fatal(err)
	}
	rows := res.Tables[0].Rows
	first := cellFloat(t, rows[0][2])
	last := cellFloat(t, rows[len(rows)-1][2])
	if last >= first {
		t.Errorf("DFCM accuracy should degrade with delay: %.3f -> %.3f", first, last)
	}
	// Weak monotonicity with tolerance.
	prevF, prevD := 2.0, 2.0
	for _, row := range rows {
		f, d := cellFloat(t, row[1]), cellFloat(t, row[2])
		if f > prevF+0.02 || d > prevD+0.02 {
			t.Errorf("non-monotone degradation at delay %s", row[0])
		}
		prevF, prevD = f, d
	}
}

func TestSec44WidthTradeoff(t *testing.T) {
	res, err := runSec44(Config{Budget: 200_000, Benchmarks: []string{"li", "norm", "vortex"}})
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range res.Tables[0].Rows {
		w32 := cellFloat(t, row[1])
		w16 := cellFloat(t, row[2])
		w8 := cellFloat(t, row[3])
		if w16 > w32+0.005 || w8 > w16+0.005 {
			t.Errorf("l2=2^%s: accuracy should not grow as width shrinks (%.3f/%.3f/%.3f)",
				row[0], w32, w16, w8)
		}
	}
}

func TestTable1ReportsCounts(t *testing.T) {
	res, err := runTable1(Config{Budget: 100_000, Benchmarks: []string{"li", "compress"}})
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range res.Tables[0].Rows {
		instr := cellFloat(t, row[3])
		preds := cellFloat(t, row[4])
		if instr < 100_000 || preds <= 0 || preds >= instr {
			t.Errorf("%s: instructions %v, predictions %v implausible", row[0], instr, preds)
		}
	}
}

func TestAblationsRun(t *testing.T) {
	cfg := Config{Budget: 120_000, Benchmarks: []string{"li", "m88ksim"}}
	for _, id := range []string{"ablation-hash", "ablation-order", "ablation-meta"} {
		e, err := Get(id)
		if err != nil {
			t.Fatal(err)
		}
		res, err := e.Run(cfg)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(res.Tables) == 0 || len(res.Tables[0].Rows) == 0 {
			t.Errorf("%s produced no data", id)
		}
	}
}

func TestResultRendering(t *testing.T) {
	res, err := runFig4(testCfg)
	if err != nil {
		t.Fatal(err)
	}
	s := res.String()
	if !strings.Contains(s, "fig4") || !strings.Contains(s, "note:") {
		t.Errorf("render:\n%s", s)
	}
}

func TestTraceCacheCoherent(t *testing.T) {
	a, err := traceFor("li", 50_000)
	if err != nil {
		t.Fatal(err)
	}
	b, err := traceFor("li", 50_000)
	if err != nil {
		t.Fatal(err)
	}
	if &a[0] != &b[0] {
		t.Error("cache returned different backing arrays for identical key")
	}
	ResetCache()
	c, err := traceFor("li", 50_000)
	if err != nil {
		t.Fatal(err)
	}
	if len(c) != len(a) {
		t.Error("regenerated trace differs in length")
	}
}

func TestWeightedHelper(t *testing.T) {
	// Run norm to completion: its stride-heavy normalization loops
	// come after the (noisy) PRNG fill phase.
	acc, err := weighted(Config{Budget: 2_000_000, Benchmarks: []string{"norm"}},
		func() core.Predictor { return core.NewStride(12) })
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.4 {
		t.Errorf("stride accuracy on norm = %.3f, expected high (stride-heavy program)", acc)
	}
}
