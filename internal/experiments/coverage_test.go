package experiments

import (
	"strings"
	"testing"
)

// Small-budget end-to-end runs of the experiments the targeted tests
// above do not already execute, asserting their structural outputs.

func TestFig6And9Run(t *testing.T) {
	cfg := Config{Budget: 120_000}
	r6, err := runFig6(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(r6.Tables) != 2 { // norm and li
		t.Fatalf("fig6 has %d tables", len(r6.Tables))
	}
	for _, tbl := range r6.Tables {
		if len(tbl.Rows) == 0 || len(tbl.Headers) != 2 {
			t.Errorf("fig6 table malformed: %+v", tbl.Headers)
		}
	}
	r9, err := runFig9(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, tbl := range r9.Tables {
		if len(tbl.Headers) != 3 { // rank, FCM, DFCM
			t.Errorf("fig9 table headers: %v", tbl.Headers)
		}
	}
	// The key observation must be reported as a note, not a warning.
	joined := strings.Join(r9.Notes, "\n")
	if strings.Contains(joined, "WARNING") {
		t.Errorf("fig9 reported a deviation:\n%s", joined)
	}
}

func TestFig11aRun(t *testing.T) {
	cfg := Config{Budget: 100_000, Benchmarks: []string{"li", "m88ksim"}}
	res, err := runFig11a(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tables) != len(dfcmL1Sweep) {
		t.Fatalf("fig11a has %d tables, want %d", len(res.Tables), len(dfcmL1Sweep))
	}
	for _, tbl := range res.Tables {
		if len(tbl.Rows) != len(l2Sweep) {
			t.Errorf("curve %q has %d points", tbl.Title, len(tbl.Rows))
		}
	}
}

func TestFig11bRun(t *testing.T) {
	cfg := Config{Budget: 80_000, Benchmarks: []string{"li", "go"}}
	res, err := runFig11b(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tables) != 3 { // two fronts + comparison
		t.Fatalf("fig11b has %d tables", len(res.Tables))
	}
	// Fronts are monotone in both size and accuracy.
	for _, tbl := range res.Tables[:2] {
		prevAcc := -1.0
		for _, row := range tbl.Rows {
			acc := cellFloat(t, row[2])
			if acc <= prevAcc {
				t.Errorf("%s: front not strictly improving at %v", tbl.Title, row)
			}
			prevAcc = acc
		}
	}
}

func TestExtConfidenceRun(t *testing.T) {
	cfg := Config{Budget: 100_000, Benchmarks: []string{"li", "ijpeg"}}
	res, err := runExtConfidence(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tbl := res.Tables[0]
	if len(tbl.Rows) != 7 {
		t.Fatalf("%d schemes", len(tbl.Rows))
	}
	for _, row := range tbl.Rows {
		cov := cellFloat(t, row[1])
		acc := cellFloat(t, row[2])
		raw := cellFloat(t, row[3])
		if cov <= 0 || cov > 1 {
			t.Errorf("%s: coverage %v", row[0], cov)
		}
		// Gating must not reduce accuracy below the raw stream.
		if acc < raw-0.01 {
			t.Errorf("%s: confident accuracy %v below raw %v", row[0], acc, raw)
		}
	}
}

func TestExtRelatedWorkRun(t *testing.T) {
	cfg := Config{Budget: 100_000, Benchmarks: []string{"li", "m88ksim"}}
	res, err := runExtRelatedWork(cfg)
	if err != nil {
		t.Fatal(err)
	}
	accs := map[string]float64{}
	for _, row := range res.Tables[0].Rows {
		accs[row[0]] = cellFloat(t, row[2])
	}
	if accs["dfcm"] <= accs["lvp"] {
		t.Errorf("dfcm %.3f should beat lvp %.3f", accs["dfcm"], accs["lvp"])
	}
	if accs["last-4"] < accs["lvp"]-0.02 {
		t.Errorf("last-4 %.3f should be at least LVP %.3f", accs["last-4"], accs["lvp"])
	}
}

func TestExtPredictabilityRun(t *testing.T) {
	cfg := Config{Budget: 100_000, Benchmarks: []string{"li", "norm"}}
	res, err := runExtPredictability(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range res.Tables[0].Rows {
		dctx := cellFloat(t, row[4])
		dfcm := cellFloat(t, row[6])
		if dctx <= 0 {
			t.Errorf("%s: dcontext ceiling %v", row[0], dctx)
		}
		if dfcm <= 0 {
			t.Errorf("%s: dfcm accuracy %v", row[0], dfcm)
		}
	}
}

func TestExtTAGERun(t *testing.T) {
	cfg := Config{Budget: 120_000, Benchmarks: []string{"li", "m88ksim"}}
	res, err := runExtTAGE(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// One per-benchmark table per tier plus the summary.
	if len(res.Tables) != len(tageTiers)+1 {
		t.Fatalf("ext-tage has %d tables, want %d", len(res.Tables), len(tageTiers)+1)
	}
	for i := range tageTiers {
		if got := len(res.Tables[i].Rows); got != len(cfg.Benchmarks) {
			t.Errorf("tier %d has %d benchmark rows, want %d", i, got, len(cfg.Benchmarks))
		}
	}
	sum := res.Tables[len(tageTiers)]
	if len(sum.Rows) != 2*len(tageTiers) {
		t.Fatalf("summary has %d rows, want %d", len(sum.Rows), 2*len(tageTiers))
	}
	// Matched budgets: each tier's two sizes must agree within 5%.
	for i := 0; i < len(sum.Rows); i += 2 {
		d := cellFloat(t, sum.Rows[i][2])
		g := cellFloat(t, sum.Rows[i+1][2])
		if d <= 0 || g <= 0 || g/d > 1.05 || d/g > 1.05 {
			t.Errorf("tier %s: sizes %v vs %v Kbit not matched", sum.Rows[i][0], d, g)
		}
		if cellFloat(t, sum.Rows[i][4]) <= 0 || cellFloat(t, sum.Rows[i+1][4]) <= 0 {
			t.Errorf("tier %s: non-positive acc/Kbit", sum.Rows[i][0])
		}
	}
}
