package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/metrics"
)

// tageTiers pairs a DFCM and a VTAGE configuration at three matched
// storage budgets. Each pair sits within ~3% of the same total bit
// count, so any accuracy gap is table-usage efficiency, not size: the
// question is whether spending part of the DFCM's hash-table budget on
// tagged tables at geometric history lengths buys more accuracy per
// Kbit than spending it all on one shared level-2 table.
var tageTiers = []struct {
	label      string
	dfcm, tage core.Spec
}{
	{"small", core.Spec{Kind: "dfcm", L1: 10, L2: 10},
		core.Spec{Kind: "tage", L1: 9, L2: 8, Tables: 4, Tag: 8, HistMin: 4, HistMax: 64}},
	{"mid", core.Spec{Kind: "dfcm", L1: 12, L2: 12},
		core.Spec{Kind: "tage", L1: 11, L2: 10, Tables: 4, Tag: 8, HistMin: 4, HistMax: 64}},
	{"large", core.Spec{Kind: "dfcm", L1: 14, L2: 14},
		core.Spec{Kind: "tage", L1: 13, L2: 12, Tables: 4, Tag: 8, HistMin: 4, HistMax: 64}},
}

// runExtTAGE compares the VTAGE predictor against the paper's DFCM at
// matched storage, per benchmark and per budget tier. One table per
// tier breaks the comparison down by benchmark; the summary table and
// chart report weighted accuracy and accuracy per Kbit.
func runExtTAGE(cfg Config) (*Result, error) {
	res := &Result{ID: "ext-tage",
		Title: "VTAGE vs DFCM accuracy per Kbit at matched storage budgets"}

	mk := func(spec core.Spec) (func() core.Predictor, error) {
		if _, err := spec.New(); err != nil {
			return nil, err
		}
		return func() core.Predictor {
			p, err := spec.New()
			if err != nil {
				panic(err) // validated above; specs are constants
			}
			return p
		}, nil
	}

	s := newSweep(cfg)
	type pair struct {
		dfcm, tage *engine.Job
	}
	jobs := make([]pair, len(tageTiers))
	for i, tier := range tageTiers {
		mkD, err := mk(tier.dfcm)
		if err != nil {
			return nil, err
		}
		mkT, err := mk(tier.tage)
		if err != nil {
			return nil, err
		}
		jobs[i] = pair{dfcm: s.Add(mkD), tage: s.Add(mkT)}
	}
	if err := s.Run(); err != nil {
		return nil, err
	}

	sum := &metrics.Table{Title: "matched-budget summary",
		Headers: []string{"tier", "predictor", "size(Kbit)", "accuracy", "acc/Kbit"}}
	chart := &metrics.Plot{
		Title:  "ext-tage: accuracy vs total size at matched budgets",
		XLabel: "size (Kbit)", YLabel: "prediction accuracy", LogX: true,
	}
	var dPts, tPts []metrics.Point
	tageWins := 0
	for i, tier := range tageTiers {
		dp, _ := tier.dfcm.New()
		tp, _ := tier.tage.New()
		t := &metrics.Table{
			Title:   fmt.Sprintf("%s tier: %s (%s Kbit) vs %s (%s Kbit)", tier.label, dp.Name(), metrics.Kbit(dp.SizeBits()), tp.Name(), metrics.Kbit(tp.SizeBits())),
			Headers: []string{"benchmark", "dfcm", "tage", "delta"},
		}
		dPer, tPer := jobs[i].dfcm.PerBench(), jobs[i].tage.PerBench()
		for b := range dPer {
			da, ta := dPer[b].Result.Accuracy(), tPer[b].Result.Accuracy()
			t.AddRow(dPer[b].Benchmark, metrics.F(da), metrics.F(ta),
				fmt.Sprintf("%+.3f", ta-da))
		}
		res.Tables = append(res.Tables, t)

		dAcc, tAcc := jobs[i].dfcm.Weighted(), jobs[i].tage.Weighted()
		dKbit := float64(dp.SizeBits()) / 1024
		tKbit := float64(tp.SizeBits()) / 1024
		sum.AddRow(tier.label, dp.Name(), metrics.Kbit(dp.SizeBits()), metrics.F(dAcc),
			fmt.Sprintf("%.5f", dAcc/dKbit))
		sum.AddRow(tier.label, tp.Name(), metrics.Kbit(tp.SizeBits()), metrics.F(tAcc),
			fmt.Sprintf("%.5f", tAcc/tKbit))
		dPts = append(dPts, metrics.Point{Name: dp.Name(), SizeBits: dp.SizeBits(), Accuracy: dAcc})
		tPts = append(tPts, metrics.Point{Name: tp.Name(), SizeBits: tp.SizeBits(), Accuracy: tAcc})
		if tAcc/tKbit > dAcc/dKbit {
			tageWins++
		}
	}
	res.Tables = append(res.Tables, sum)
	chart.AddPoints("dfcm", dPts)
	chart.AddPoints("tage", tPts)
	res.Charts = append(res.Charts, chart)
	res.addNote("VTAGE delivers more accuracy per Kbit than the matched DFCM at %d of %d budget tiers",
		tageWins, len(tageTiers))
	return res, nil
}

func init() {
	register(Experiment{
		ID:       "ext-tage",
		Title:    "VTAGE vs DFCM at matched storage",
		Artifact: "extension, VTAGE comparison",
		Run:      runExtTAGE,
	})
}
