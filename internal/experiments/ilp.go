package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/ilp"
	"repro/internal/metrics"
	"repro/internal/progs"
)

// runExtILP quantifies the paper's motivating claim (section 1): value
// prediction pushes the ILP upper bound imposed by true register
// dependences. For each benchmark it measures the idealized dataflow
// ILP with no prediction, with a stride predictor, with the DFCM, and
// with a perfect oracle (Lipasti's limit).
func runExtILP(cfg Config) (*Result, error) {
	res := &Result{ID: "ext-ilp",
		Title: "dataflow-limit ILP with value prediction (unit latency, perfect control, register deps only)"}
	t := &metrics.Table{Headers: []string{
		"benchmark", "dataflow ILP", "+stride", "+DFCM", "+oracle",
		"DFCM speedup", "oracle speedup"}}

	var worstSpeedup = 1e9
	benches := cfg.benchmarks()
	type cell struct{ base, stride, dfcm, orc ilp.Result }
	cells := make([]cell, len(benches))
	s := newSweep(cfg)
	for i, bench := range benches {
		i, bench := i, bench
		s.AddTask(func() error {
			p, err := progs.Program(bench)
			if err != nil {
				return err
			}
			budget := cfg.budget()
			const width = 64 // generous fetch bandwidth, the model's only resource limit
			var c cell
			if c.base, err = ilp.MeasureWidth(p, budget, nil, width); err != nil {
				return err
			}
			if c.stride, err = ilp.MeasureWidth(p, budget, core.NewStride(16), width); err != nil {
				return err
			}
			if c.dfcm, err = ilp.MeasureWidth(p, budget, core.NewDFCM(16, 12), width); err != nil {
				return err
			}
			if c.orc, err = ilp.MeasureWidth(p, budget, ilp.Oracle, width); err != nil {
				return err
			}
			cells[i] = c
			return nil
		})
	}
	if err := s.Run(); err != nil {
		return nil, err
	}
	for i, bench := range benches {
		base, stride, dfcm, orc := cells[i].base, cells[i].stride, cells[i].dfcm, cells[i].orc
		speedup := dfcm.ILP() / base.ILP()
		if speedup < worstSpeedup {
			worstSpeedup = speedup
		}
		t.AddRow(bench,
			fmt.Sprintf("%.2f", base.ILP()),
			fmt.Sprintf("%.2f", stride.ILP()),
			fmt.Sprintf("%.2f", dfcm.ILP()),
			fmt.Sprintf("%.2f", orc.ILP()),
			fmt.Sprintf("%.2fx", speedup),
			fmt.Sprintf("%.2fx", orc.ILP()/base.ILP()))
	}
	res.Tables = append(res.Tables, t)
	res.addNote("minimum DFCM ILP speedup over the plain dataflow limit: %.2fx — the paper's introductory premise, quantified (benchmarks whose critical chain is inherently unpredictable, e.g. a PRNG recurrence, gain little; loop- and interpreter-bound ones gain a lot)",
		worstSpeedup)
	res.addNote("64-wide fetch is the model's only resource limit; the oracle column is the value-prediction dataflow limit of Lipasti & Shen")
	return res, nil
}

func init() {
	register(Experiment{
		ID:       "ext-ilp",
		Title:    "value prediction vs the dataflow ILP limit",
		Artifact: "section 1 motivation, extension",
		Run:      runExtILP,
	})
}
