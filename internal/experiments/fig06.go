package experiments

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/trace"
)

// fig69Benches are the two benchmarks the paper plots in Figures 6
// and 9.
var fig69Benches = []string{"norm", "li"}

// fig69Budget is the per-benchmark budget of the Figure 6/9
// instrumentation: norm runs to completion, as in the paper.
func fig69Budget(cfg Config, bench string) uint64 {
	if bench == "norm" {
		return 0
	}
	return cfg.budget()
}

// strideHistFor runs the Figure 6/9 instrumentation over one
// benchmark: a 2^16-entry level-1, 4096-entry level-2 predictor with
// a 64K-entry stride-predictor oracle, counting stride-pattern
// accesses per level-2 entry. This is the per-predictor reference
// path; the engine-backed experiments use strideHistsFor, which
// builds both histograms from a single pass.
func strideHistFor(cfg Config, bench string, differential bool) (metrics.Histogram, error) {
	tr, err := traceFor(bench, fig69Budget(cfg, bench))
	if err != nil {
		return nil, err
	}
	var p core.Predictor
	if differential {
		p = core.NewDFCM(16, 12)
	} else {
		p = core.NewFCM(16, 12)
	}
	h := metrics.NewStrideHist(4096, 16)
	return h.Run(p, trace.NewReader(tr)), nil
}

// strideOracleHits returns a benchmark's trace plus the 2^16-entry
// stride-oracle hit mask over it. The mask is a pure function of the
// trace, so it is memoized next to the trace itself
// (TraceCache.Derived) and shared by Figures 6 and 9 across runs.
func strideOracleHits(cfg Config, bench string) (trace.Trace, []bool, error) {
	budget := fig69Budget(cfg, bench)
	tr, err := traceFor(bench, budget)
	if err != nil {
		return nil, nil, err
	}
	v, err := traceCache.Derived(bench, budget, "stride-hits-2^16",
		func(tr trace.Trace) (any, error) {
			return metrics.StrideHits(16, tr), nil
		})
	if err != nil {
		return nil, nil, err
	}
	return tr, v.([]bool), nil
}

// strideHistsFor computes the FCM and the DFCM histogram of one
// benchmark from a single trace pass with a shared oracle mask;
// bit-identical to two strideHistFor runs.
func strideHistsFor(cfg Config, bench string) (fcm, dfcm metrics.Histogram, err error) {
	tr, hits, err := strideOracleHits(cfg, bench)
	if err != nil {
		return nil, nil, err
	}
	hs := metrics.StrideHistsFromHits(hits, tr, core.NewFCM(16, 12), core.NewDFCM(16, 12))
	return hs[0], hs[1], nil
}

func histTable(title string, hists map[string]metrics.Histogram, order []string) *metrics.Table {
	t := &metrics.Table{Title: title,
		Headers: append([]string{"l2-entry rank"}, order...)}
	// Logarithmic ranks, matching the paper's log-scale reading.
	ranks := []int{0, 1, 3, 7, 15, 31, 63, 127, 255, 511, 1023, 2047, 4095}
	for _, r := range ranks {
		row := []string{fmt.Sprint(r)}
		for _, name := range order {
			g := hists[name]
			if r < len(g) {
				row = append(row, fmt.Sprint(g[r]))
			} else {
				row = append(row, "-")
			}
		}
		t.AddRow(row...)
	}
	return t
}

// histRanks and histLog downsample a sorted histogram for plotting
// (every 32nd rank) with a log-transformed count, matching the
// paper's log-scale y axis.
func histRanks(g metrics.Histogram) []float64 {
	var out []float64
	for i := 0; i < len(g); i += 32 {
		out = append(out, float64(i))
	}
	return out
}

func histLog(g metrics.Histogram) []float64 {
	var out []float64
	for i := 0; i < len(g); i += 32 {
		out = append(out, math.Log10(1+float64(g[i])))
	}
	return out
}

func summarizeHist(res *Result, label string, g metrics.Histogram) {
	res.addNote("%s: %d entries accessed >100 times, %d entries >1000 times, %d entries nonzero, %d stride accesses total",
		label, g.EntriesOver(100), g.EntriesOver(1000), g.EntriesOver(0), g.Total())
}

func runFig6(cfg Config) (*Result, error) {
	res := &Result{ID: "fig6", Title: "stride accesses per (sorted) FCM level-2 entry: norm and li"}
	hists := make([]metrics.Histogram, len(fig69Benches))
	s := newSweep(cfg)
	for i, bench := range fig69Benches {
		i, bench := i, bench
		s.AddTask(func() error {
			if engineOpts.Reference {
				g, err := strideHistFor(cfg, bench, false)
				hists[i] = g
				return err
			}
			tr, hits, err := strideOracleHits(cfg, bench)
			if err != nil {
				return err
			}
			hists[i] = metrics.StrideHistsFromHits(hits, tr, core.NewFCM(16, 12))[0]
			return nil
		})
	}
	if err := s.Run(); err != nil {
		return nil, err
	}
	for i, bench := range fig69Benches {
		g := hists[i]
		res.Tables = append(res.Tables,
			histTable(fmt.Sprintf("FCM, %s (sorted descending)", bench),
				map[string]metrics.Histogram{"FCM": g}, []string{"FCM"}))
		summarizeHist(res, bench+" FCM", g)
	}
	return res, nil
}

func runFig9(cfg Config) (*Result, error) {
	res := &Result{ID: "fig9", Title: "stride accesses per (sorted) level-2 entry: FCM vs DFCM"}
	type histPair struct{ f, d metrics.Histogram }
	hists := make([]histPair, len(fig69Benches))
	s := newSweep(cfg)
	for i, bench := range fig69Benches {
		i, bench := i, bench
		s.AddTask(func() error {
			if engineOpts.Reference {
				fg, err := strideHistFor(cfg, bench, false)
				if err != nil {
					return err
				}
				dg, err := strideHistFor(cfg, bench, true)
				if err != nil {
					return err
				}
				hists[i] = histPair{f: fg, d: dg}
				return nil
			}
			fg, dg, err := strideHistsFor(cfg, bench)
			if err != nil {
				return err
			}
			hists[i] = histPair{f: fg, d: dg}
			return nil
		})
	}
	if err := s.Run(); err != nil {
		return nil, err
	}
	for i, bench := range fig69Benches {
		fg, dg := hists[i].f, hists[i].d
		res.Tables = append(res.Tables,
			histTable(fmt.Sprintf("%s (sorted descending)", bench),
				map[string]metrics.Histogram{"FCM": fg, "DFCM": dg}, []string{"FCM", "DFCM"}))
		chart := &metrics.Plot{
			Title:  fmt.Sprintf("Figure 9 (%s): stride accesses per sorted level-2 entry", bench),
			XLabel: "l2-entry rank", YLabel: "log10(1 + accesses)",
		}
		chart.AddSeries("FCM", histRanks(fg), histLog(fg))
		chart.AddSeries("DFCM", histRanks(dg), histLog(dg))
		res.Charts = append(res.Charts, chart)
		summarizeHist(res, bench+" FCM", fg)
		summarizeHist(res, bench+" DFCM", dg)
		f100, d100 := fg.EntriesOver(100), dg.EntriesOver(100)
		if d100 < f100 {
			res.addNote("%s: DFCM concentrates stride traffic on %d entries (>100 accesses) vs FCM's %d — the paper's key observation",
				bench, d100, f100)
		} else {
			res.addNote("WARNING %s: DFCM did not reduce stride-entry spread (%d vs %d)", bench, d100, f100)
		}
	}
	return res, nil
}

func init() {
	register(Experiment{
		ID:       "fig6",
		Title:    "how stride patterns crowd the FCM level-2 table",
		Artifact: "Figure 6",
		Run:      runFig6,
	})
	register(Experiment{
		ID:       "fig9",
		Title:    "stride occupancy of the level-2 table, FCM vs DFCM",
		Artifact: "Figure 9",
		Run:      runFig9,
	})
}
