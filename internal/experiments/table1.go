package experiments

import (
	"fmt"

	"repro/internal/metrics"
	"repro/internal/progs"
	"repro/internal/vm"
)

func runTable1(cfg Config) (*Result, error) {
	res := &Result{ID: "table1", Title: "benchmark suite (the paper's Table 1, for this repository's stand-ins)"}
	t := &metrics.Table{Headers: []string{"benchmark", "models", "workload", "instructions", "predictions"}}
	benches := cfg.benchmarks()
	rows := make([][]string, len(benches))
	s := newSweep(cfg)
	for i, name := range benches {
		i, name := i, name
		s.AddTask(func() error {
			b, err := progs.Get(name)
			if err != nil {
				return err
			}
			p, err := progs.Program(name)
			if err != nil {
				return err
			}
			budget := cfg.budget()
			if b.SelfTerminating {
				budget = 0
			}
			c := vm.New(p, func(pc, v uint32) {})
			if err := c.Run(budget); err != nil && err != vm.ErrBudget {
				return fmt.Errorf("running %s: %w", name, err)
			}
			rows[i] = []string{name, b.Model, b.Description,
				fmt.Sprint(c.Executed), fmt.Sprint(c.Emitted)}
			return nil
		})
	}
	if err := s.Run(); err != nil {
		return nil, err
	}
	for _, row := range rows {
		t.AddRow(row...)
	}
	res.Tables = append(res.Tables, t)
	res.addNote("the paper traces 200M instructions per benchmark (122M-157M predictions); this run uses a %d-instruction budget — scale with -budget", cfg.budget())
	return res, nil
}

func init() {
	register(Experiment{
		ID:       "table1",
		Title:    "benchmark descriptions and prediction counts",
		Artifact: "Table 1",
		Run:      runTable1,
	})
}
