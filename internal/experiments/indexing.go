package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/trace"
)

// runAblationIndex quantifies a detail every table-based predictor
// gets right silently: PC-indexed tables must drop the instruction
// alignment bits (MR32/MIPS instructions are 4-byte aligned, so the
// two low PC bits are always zero). Indexing with the raw PC leaves
// three quarters of every table dead. The raw-PC variant is simulated
// by shifting trace PCs left by two — the predictors' index function
// then effectively consumes the unshifted PC.
func runAblationIndex(cfg Config) (*Result, error) {
	res := &Result{ID: "ablation-index",
		Title: "PC indexing: dropping alignment bits vs raw PC (three quarters of the table dead)"}
	t := &metrics.Table{Headers: []string{"predictor", "aligned index", "raw-PC index", "loss"}}

	shiftPCs := func(tr trace.Trace) trace.Trace {
		out := make(trace.Trace, len(tr))
		for i, e := range tr {
			out[i] = trace.Event{PC: e.PC << 2, Value: e.Value}
		}
		return out
	}

	// Tables sized near the benchmarks' static instruction footprint
	// (~100-300 instructions), where losing three quarters of the
	// entries visibly increases aliasing. The paper-scale SPEC
	// binaries would show the same effect at much larger tables.
	kinds := []struct {
		name string
		mk   func() core.Predictor
	}{
		{"lvp-2^6", func() core.Predictor { return core.NewLastValue(6) }},
		{"stride-2^6", func() core.Predictor { return core.NewStride(6) }},
		{"dfcm-2^6/2^12", func() core.Predictor { return core.NewDFCM(6, 12) }},
	}
	// Each kind runs twice per benchmark (aligned and shifted PCs); the
	// shifted replay is a derived trace, so both ride as scans of the
	// shared pass.
	type cell struct{ aligned, raw core.Result }
	cells := make([][]cell, len(kinds))
	s := newSweep(cfg)
	for ki, k := range kinds {
		ki, k := ki, k
		cells[ki] = make([]cell, len(cfg.benchmarks()))
		s.AddScan(func(i int, bench string, tr trace.Trace) error {
			cells[ki][i] = cell{
				aligned: core.Run(k.mk(), trace.NewReader(tr)),
				raw:     core.Run(k.mk(), trace.NewReader(shiftPCs(tr))),
			}
			return nil
		})
	}
	if err := s.Run(); err != nil {
		return nil, err
	}
	for ki, k := range kinds {
		var aligned, raw core.Result
		for _, c := range cells[ki] {
			aligned.Add(c.aligned)
			raw.Add(c.raw)
		}
		t.AddRow(k.name, metrics.F(aligned.Accuracy()), metrics.F(raw.Accuracy()),
			fmt.Sprintf("%+.3f", raw.Accuracy()-aligned.Accuracy()))
	}
	res.Tables = append(res.Tables, t)
	res.addNote("raw-PC indexing folds the whole program into a quarter of the level-1 table, so distinct instructions alias four times as often")
	return res, nil
}

func init() {
	register(Experiment{
		ID:       "ablation-index",
		Title:    "PC alignment bits in table indexing",
		Artifact: "implementation detail, extension",
		Run:      runAblationIndex,
	})
}
