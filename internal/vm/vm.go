// Package vm implements a functional (sim-safe-style) simulator for
// the MR32 ISA. It executes assembled programs and emits a value trace
// with exactly the paper's filter: every instruction that writes an
// integer general-purpose register produces one trace event, including
// loads; branches and jumps (including jal/jalr, whose $ra write is a
// jump side effect) are excluded; multiply/divide produce two result
// halves but are traced once (the LO half, read first in practice).
// Writes to $zero are discarded and not traced.
package vm

import (
	"errors"
	"fmt"

	"repro/internal/asm"
	"repro/internal/isa"
	"repro/internal/trace"
)

// Emit receives one trace event per predicted instruction.
type Emit func(pc, value uint32)

// CPU is an MR32 functional simulator instance.
type CPU struct {
	Regs [isa.NumRegs]uint32
	HI   uint32
	LO   uint32
	PC   uint32
	Mem  *Memory

	// Executed counts all executed instructions; Emitted counts those
	// that produced a trace event.
	Executed uint64
	Emitted  uint64

	// Stdout accumulates syscall output (print/putchar).
	Stdout []byte

	halted bool
	brk    uint32 // heap break for sbrk
	emit   Emit
	prof   []uint64 // per-text-word execution counts, when enabled
}

// Common run errors.
var (
	ErrBudget   = errors.New("vm: instruction budget exhausted")
	ErrBadOp    = errors.New("vm: illegal instruction")
	ErrNoEntry  = errors.New("vm: pc outside text segment")
	ErrDivZero  = errors.New("vm: integer division by zero")
	ErrMisalign = errors.New("vm: misaligned memory access")
)

// New creates a CPU loaded with p: text at isa.TextBase, data at
// isa.DataBase, $sp at isa.StackBase, $gp at the data base, PC at the
// program entry. emit may be nil to discard trace events.
func New(p *asm.Program, emit Emit) *CPU {
	c := &CPU{Mem: NewMemory(), PC: p.Entry, emit: emit}
	for i, w := range p.Text {
		c.Mem.StoreWord(isa.TextBase+uint32(4*i), w)
	}
	c.Mem.WriteBytes(isa.DataBase, p.Data)
	c.Regs[isa.RegSP] = isa.StackBase
	c.Regs[isa.RegGP] = isa.DataBase
	c.brk = isa.DataBase + uint32(len(p.Data)+7)&^uint32(7)
	return c
}

// Halted reports whether the program has exited.
func (c *CPU) Halted() bool { return c.halted }

// ReadDataflowReg reads a register in the extended numbering used by
// dependence analyses (internal/isa.DecodeDeps): 0..31 are the
// general registers, isa.RegHI and isa.RegLO the multiply/divide unit.
func (c *CPU) ReadDataflowReg(r int) uint32 {
	switch r {
	case isa.RegHI:
		return c.HI
	case isa.RegLO:
		return c.LO
	default:
		return c.Regs[r]
	}
}

// setReg writes a general register, discarding writes to $zero, and
// emits the trace event for value-producing instructions.
func (c *CPU) setReg(r int, v uint32, tracePC uint32) {
	if r == 0 {
		return
	}
	c.Regs[r] = v
	if c.emit != nil {
		c.emit(tracePC, v)
	}
	c.Emitted++
}

// setRegSilent writes a register without tracing (jump linkage,
// syscall results).
func (c *CPU) setRegSilent(r int, v uint32) {
	if r != 0 {
		c.Regs[r] = v
	}
}

// Run executes until the program halts or budget instructions have
// executed. A budget of 0 means unlimited. It returns ErrBudget if the
// budget expired first, nil on a clean exit, or an execution error.
func (c *CPU) Run(budget uint64) error {
	for !c.halted {
		if budget > 0 && c.Executed >= budget {
			return ErrBudget
		}
		if err := c.Step(); err != nil {
			return err
		}
	}
	return nil
}

// EnableProfile allocates per-instruction execution counters covering
// textWords words from isa.TextBase. Instructions executed outside
// that range are not counted.
func (c *CPU) EnableProfile(textWords int) {
	c.prof = make([]uint64, textWords)
}

// Profile returns the per-text-word execution counts (nil unless
// EnableProfile was called). Index i counts the instruction at
// isa.TextBase + 4*i.
func (c *CPU) Profile() []uint64 { return c.prof }

// Step executes one instruction.
func (c *CPU) Step() error {
	pc := c.PC
	word := c.Mem.LoadWord(pc)
	in := isa.Decode(word)
	c.Executed++
	if c.prof != nil {
		if i := (pc - isa.TextBase) / 4; i < uint32(len(c.prof)) {
			c.prof[i]++
		}
	}
	next := pc + 4

	switch in.Op {
	case isa.OpSpecial:
		if err := c.special(pc, in, &next); err != nil {
			return err
		}

	case isa.OpRegImm:
		rs := c.Regs[in.Rs]
		taken := false
		switch in.Rt {
		case isa.RtBLTZ:
			taken = int32(rs) < 0
		case isa.RtBGEZ:
			taken = int32(rs) >= 0
		default:
			return fmt.Errorf("%w: regimm rt=%d at %#x", ErrBadOp, in.Rt, pc)
		}
		if taken {
			next = pc + 4 + in.SImm()<<2
		}

	case isa.OpJ:
		next = pc&0xf0000000 | in.Target<<2
	case isa.OpJAL:
		c.setRegSilent(isa.RegRA, pc+4)
		next = pc&0xf0000000 | in.Target<<2

	case isa.OpBEQ:
		if c.Regs[in.Rs] == c.Regs[in.Rt] {
			next = pc + 4 + in.SImm()<<2
		}
	case isa.OpBNE:
		if c.Regs[in.Rs] != c.Regs[in.Rt] {
			next = pc + 4 + in.SImm()<<2
		}
	case isa.OpBLEZ:
		if int32(c.Regs[in.Rs]) <= 0 {
			next = pc + 4 + in.SImm()<<2
		}
	case isa.OpBGTZ:
		if int32(c.Regs[in.Rs]) > 0 {
			next = pc + 4 + in.SImm()<<2
		}

	case isa.OpADDI, isa.OpADDIU:
		c.setReg(in.Rt, c.Regs[in.Rs]+in.SImm(), pc)
	case isa.OpSLTI:
		c.setReg(in.Rt, b2u(int32(c.Regs[in.Rs]) < int32(in.SImm())), pc)
	case isa.OpSLTIU:
		c.setReg(in.Rt, b2u(c.Regs[in.Rs] < in.SImm()), pc)
	case isa.OpANDI:
		c.setReg(in.Rt, c.Regs[in.Rs]&in.Imm, pc)
	case isa.OpORI:
		c.setReg(in.Rt, c.Regs[in.Rs]|in.Imm, pc)
	case isa.OpXORI:
		c.setReg(in.Rt, c.Regs[in.Rs]^in.Imm, pc)
	case isa.OpLUI:
		c.setReg(in.Rt, in.Imm<<16, pc)

	case isa.OpLW:
		addr := c.Regs[in.Rs] + in.SImm()
		if addr&3 != 0 {
			return fmt.Errorf("%w: lw %#x at %#x", ErrMisalign, addr, pc)
		}
		c.setReg(in.Rt, c.Mem.LoadWord(addr), pc)
	case isa.OpLH:
		addr := c.Regs[in.Rs] + in.SImm()
		c.setReg(in.Rt, uint32(int32(int16(c.Mem.LoadHalf(addr)))), pc)
	case isa.OpLHU:
		addr := c.Regs[in.Rs] + in.SImm()
		c.setReg(in.Rt, uint32(c.Mem.LoadHalf(addr)), pc)
	case isa.OpLB:
		addr := c.Regs[in.Rs] + in.SImm()
		c.setReg(in.Rt, uint32(int32(int8(c.Mem.LoadByte(addr)))), pc)
	case isa.OpLBU:
		addr := c.Regs[in.Rs] + in.SImm()
		c.setReg(in.Rt, uint32(c.Mem.LoadByte(addr)), pc)

	case isa.OpSW:
		addr := c.Regs[in.Rs] + in.SImm()
		if addr&3 != 0 {
			return fmt.Errorf("%w: sw %#x at %#x", ErrMisalign, addr, pc)
		}
		c.Mem.StoreWord(addr, c.Regs[in.Rt])
	case isa.OpSH:
		c.Mem.StoreHalf(c.Regs[in.Rs]+in.SImm(), uint16(c.Regs[in.Rt]))
	case isa.OpSB:
		c.Mem.StoreByte(c.Regs[in.Rs]+in.SImm(), byte(c.Regs[in.Rt]))

	default:
		return fmt.Errorf("%w: op=%#x at %#x", ErrBadOp, in.Op, pc)
	}

	c.PC = next
	return nil
}

// special executes OpSpecial (R-format) instructions.
func (c *CPU) special(pc uint32, in isa.Inst, next *uint32) error {
	rs, rt := c.Regs[in.Rs], c.Regs[in.Rt]
	switch in.Funct {
	case isa.FnSLL:
		c.setReg(in.Rd, rt<<in.Shamt, pc)
	case isa.FnSRL:
		c.setReg(in.Rd, rt>>in.Shamt, pc)
	case isa.FnSRA:
		c.setReg(in.Rd, uint32(int32(rt)>>in.Shamt), pc)
	case isa.FnSLLV:
		c.setReg(in.Rd, rt<<(rs&31), pc)
	case isa.FnSRLV:
		c.setReg(in.Rd, rt>>(rs&31), pc)
	case isa.FnSRAV:
		c.setReg(in.Rd, uint32(int32(rt)>>(rs&31)), pc)

	case isa.FnJR:
		*next = rs
	case isa.FnJALR:
		c.setRegSilent(in.Rd, pc+4)
		*next = rs

	case isa.FnSYSCALL:
		return c.syscall()

	case isa.FnMFHI:
		c.setReg(in.Rd, c.HI, pc)
	case isa.FnMFLO:
		c.setReg(in.Rd, c.LO, pc)
	case isa.FnMTHI:
		c.HI = rs
	case isa.FnMTLO:
		c.LO = rs

	case isa.FnMULT:
		// The paper: "For instructions which produce two result
		// registers (e.g. multiply and divide) only one is predicted."
		// We trace the LO half.
		prod := int64(int32(rs)) * int64(int32(rt))
		c.HI = uint32(uint64(prod) >> 32)
		c.LO = uint32(uint64(prod))
		c.traceHiLo(pc)
	case isa.FnMULTU:
		prod := uint64(rs) * uint64(rt)
		c.HI = uint32(prod >> 32)
		c.LO = uint32(prod)
		c.traceHiLo(pc)
	case isa.FnDIV:
		if rt == 0 {
			return fmt.Errorf("%w at %#x", ErrDivZero, pc)
		}
		c.LO = uint32(int32(rs) / int32(rt))
		c.HI = uint32(int32(rs) % int32(rt))
		c.traceHiLo(pc)
	case isa.FnDIVU:
		if rt == 0 {
			return fmt.Errorf("%w at %#x", ErrDivZero, pc)
		}
		c.LO = rs / rt
		c.HI = rs % rt
		c.traceHiLo(pc)

	case isa.FnADD:
		c.setReg(in.Rd, rs+rt, pc)
	case isa.FnADDU:
		c.setReg(in.Rd, rs+rt, pc)
	case isa.FnSUB:
		c.setReg(in.Rd, rs-rt, pc)
	case isa.FnSUBU:
		c.setReg(in.Rd, rs-rt, pc)
	case isa.FnAND:
		c.setReg(in.Rd, rs&rt, pc)
	case isa.FnOR:
		c.setReg(in.Rd, rs|rt, pc)
	case isa.FnXOR:
		c.setReg(in.Rd, rs^rt, pc)
	case isa.FnNOR:
		c.setReg(in.Rd, ^(rs | rt), pc)
	case isa.FnSLT:
		c.setReg(in.Rd, b2u(int32(rs) < int32(rt)), pc)
	case isa.FnSLTU:
		c.setReg(in.Rd, b2u(rs < rt), pc)

	default:
		return fmt.Errorf("%w: funct=%#x at %#x", ErrBadOp, in.Funct, pc)
	}
	return nil
}

// traceHiLo emits the single event for a two-result instruction.
func (c *CPU) traceHiLo(pc uint32) {
	if c.emit != nil {
		c.emit(pc, c.LO)
	}
	c.Emitted++
}

func (c *CPU) syscall() error {
	switch c.Regs[isa.RegV0] {
	case isa.SysPrintInt:
		c.Stdout = append(c.Stdout, []byte(fmt.Sprintf("%d", int32(c.Regs[isa.RegA0])))...)
	case isa.SysPrintStr:
		c.Stdout = append(c.Stdout, []byte(c.Mem.LoadString(c.Regs[isa.RegA0], 1<<16))...)
	case isa.SysSbrk:
		old := c.brk
		c.brk = (c.brk + c.Regs[isa.RegA0] + 7) &^ 7
		c.setRegSilent(isa.RegV0, old)
	case isa.SysExit:
		c.halted = true
	case isa.SysPutChar:
		c.Stdout = append(c.Stdout, byte(c.Regs[isa.RegA0]))
	default:
		return fmt.Errorf("vm: unknown syscall %d", c.Regs[isa.RegV0])
	}
	return nil
}

func b2u(b bool) uint32 {
	if b {
		return 1
	}
	return 0
}

// Trace assembles src, runs it to completion (or budget instructions)
// and returns the collected value trace. It is the package's
// convenience entry point for tests and experiments.
func Trace(p *asm.Program, budget uint64) (trace.Trace, error) {
	var tr trace.Trace
	c := New(p, func(pc, v uint32) {
		tr = append(tr, trace.Event{PC: pc, Value: v})
	})
	err := c.Run(budget)
	if err == ErrBudget {
		err = nil // a truncated trace is still a valid trace
	}
	return tr, err
}
