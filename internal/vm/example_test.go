package vm_test

import (
	"fmt"
	"log"

	"repro/internal/asm"
	"repro/internal/vm"
)

// Assemble a program, execute it, and collect its value trace — the
// full substrate in a dozen lines.
func Example() {
	prog, err := asm.Assemble(`
	main:
		li $t0, 0
		li $t1, 0
	loop:
		addiu $t0, $t0, 1     # induction variable: stride pattern
		addu  $t1, $t1, $t0   # running sum
		li $t2, 5
		bne $t0, $t2, loop
		move $a0, $t1
		li $v0, 1             # print_int
		syscall
		li $v0, 10            # exit
		syscall
	`)
	if err != nil {
		log.Fatal(err)
	}
	tr, err := vm.Trace(prog, 0)
	if err != nil {
		log.Fatal(err)
	}
	c := vm.New(prog, nil)
	if err := c.Run(0); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("program output: %s\n", c.Stdout)
	fmt.Printf("executed %d instructions, traced %d values\n", c.Executed, len(tr))
	// Output:
	// program output: 15
	// executed 27 instructions, traced 20 values
}
