package vm

// pageBits selects 4 KiB pages for the sparse memory map.
const pageBits = 12

const pageSize = 1 << pageBits

// Memory is a sparse byte-addressable little-endian memory, allocated
// in pages on first touch. The zero value is an empty memory.
type Memory struct {
	pages map[uint32]*[pageSize]byte
}

// NewMemory returns an empty memory.
func NewMemory() *Memory {
	return &Memory{pages: make(map[uint32]*[pageSize]byte)}
}

func (m *Memory) page(addr uint32) *[pageSize]byte {
	pn := addr >> pageBits
	p := m.pages[pn]
	if p == nil {
		p = new([pageSize]byte)
		m.pages[pn] = p
	}
	return p
}

// LoadByte reads one byte.
func (m *Memory) LoadByte(addr uint32) byte {
	if p := m.pages[addr>>pageBits]; p != nil {
		return p[addr&(pageSize-1)]
	}
	return 0
}

// StoreByte writes one byte.
func (m *Memory) StoreByte(addr uint32, v byte) {
	m.page(addr)[addr&(pageSize-1)] = v
}

// LoadWord reads a little-endian 32-bit word. addr should be 4-byte
// aligned; the fast path assumes the word does not cross a page.
func (m *Memory) LoadWord(addr uint32) uint32 {
	off := addr & (pageSize - 1)
	if off <= pageSize-4 {
		if p := m.pages[addr>>pageBits]; p != nil {
			return uint32(p[off]) | uint32(p[off+1])<<8 |
				uint32(p[off+2])<<16 | uint32(p[off+3])<<24
		}
		return 0
	}
	return uint32(m.LoadByte(addr)) | uint32(m.LoadByte(addr+1))<<8 |
		uint32(m.LoadByte(addr+2))<<16 | uint32(m.LoadByte(addr+3))<<24
}

// StoreWord writes a little-endian 32-bit word.
func (m *Memory) StoreWord(addr uint32, v uint32) {
	off := addr & (pageSize - 1)
	if off <= pageSize-4 {
		p := m.page(addr)
		p[off] = byte(v)
		p[off+1] = byte(v >> 8)
		p[off+2] = byte(v >> 16)
		p[off+3] = byte(v >> 24)
		return
	}
	m.StoreByte(addr, byte(v))
	m.StoreByte(addr+1, byte(v>>8))
	m.StoreByte(addr+2, byte(v>>16))
	m.StoreByte(addr+3, byte(v>>24))
}

// LoadHalf reads a little-endian 16-bit halfword.
func (m *Memory) LoadHalf(addr uint32) uint16 {
	return uint16(m.LoadByte(addr)) | uint16(m.LoadByte(addr+1))<<8
}

// StoreHalf writes a little-endian 16-bit halfword.
func (m *Memory) StoreHalf(addr uint32, v uint16) {
	m.StoreByte(addr, byte(v))
	m.StoreByte(addr+1, byte(v>>8))
}

// WriteBytes copies b into memory starting at addr.
func (m *Memory) WriteBytes(addr uint32, b []byte) {
	for i, c := range b {
		m.StoreByte(addr+uint32(i), c)
	}
}

// LoadString reads the NUL-terminated string at addr, up to max bytes.
func (m *Memory) LoadString(addr uint32, max int) string {
	var b []byte
	for i := 0; i < max; i++ {
		c := m.LoadByte(addr + uint32(i))
		if c == 0 {
			break
		}
		b = append(b, c)
	}
	return string(b)
}
