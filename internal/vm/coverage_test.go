package vm

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/asm"
	"repro/internal/isa"
)

func TestJalrAndHalted(t *testing.T) {
	p, err := asm.Assemble(`
	main:
		la   $t0, target
		jalr $t0
		li   $v0, 10
		syscall
	target:
		li   $s0, 99
		jr   $ra
	`)
	if err != nil {
		t.Fatal(err)
	}
	c := New(p, nil)
	if c.Halted() {
		t.Error("halted before running")
	}
	if err := c.Run(0); err != nil {
		t.Fatal(err)
	}
	if !c.Halted() {
		t.Error("not halted after exit")
	}
	if c.Regs[isa.RegS0] != 99 {
		t.Error("jalr did not reach target")
	}
}

func TestMthiMtlo(t *testing.T) {
	c := run(t, `
	main:
		li   $t0, 77
		mthi $t0
		li   $t1, 33
		mtlo $t1
		mfhi $s0
		mflo $s1
	`+exit, 0)
	if c.Regs[isa.RegS0] != 77 || c.Regs[isa.RegS1] != 33 {
		t.Errorf("hi/lo round trip: %d %d", c.Regs[isa.RegS0], c.Regs[isa.RegS1])
	}
}

func TestRegImmBranches(t *testing.T) {
	c := run(t, `
	main:
		li   $t0, -5
		li   $s0, 0
		bltz $t0, neg
		li   $s0, 1        # skipped
	neg:
		bgez $t0, pos      # not taken
		li   $s1, 2
	pos:
		li   $t1, 3
		bgez $t1, fin      # taken
		li   $s1, 9        # skipped
	fin:
	`+exit, 0)
	if c.Regs[isa.RegS0] != 0 {
		t.Error("bltz not taken on negative")
	}
	if c.Regs[isa.RegS1] != 2 {
		t.Errorf("$s1 = %d, want 2", c.Regs[isa.RegS1])
	}
}

func TestBlezBgtzBoundaries(t *testing.T) {
	c := run(t, `
	main:
		li   $t0, 0
		li   $s0, 0
		blez $t0, a        # taken (zero)
		li   $s0, 1
	a:
		bgtz $t0, b        # not taken (zero)
		li   $s1, 5
	b:
	`+exit, 0)
	if c.Regs[isa.RegS0] != 0 || c.Regs[isa.RegS1] != 5 {
		t.Errorf("s0=%d s1=%d", c.Regs[isa.RegS0], c.Regs[isa.RegS1])
	}
}

func TestAddiSlti(t *testing.T) {
	c := run(t, `
	main:
		addi  $t0, $zero, -9
		slti  $t1, $t0, 0     # 1
		sltiu $t2, $t0, 0     # 0 (huge unsigned)
		xori  $t3, $t1, 1     # 0
	`+exit, 0)
	if int32(c.Regs[isa.RegT0]) != -9 || c.Regs[isa.RegT1] != 1 ||
		c.Regs[isa.RegT2] != 0 || c.Regs[isa.RegT3] != 0 {
		t.Errorf("regs: %d %d %d %d", int32(c.Regs[isa.RegT0]),
			c.Regs[isa.RegT1], c.Regs[isa.RegT2], c.Regs[isa.RegT3])
	}
}

func TestBadRegImmFaults(t *testing.T) {
	p, err := asm.Assemble("main: nop\n")
	if err != nil {
		t.Fatal(err)
	}
	p.Text[0] = isa.EncodeI(isa.OpRegImm, 9 /* invalid rt */, 0, 0)
	c := New(p, nil)
	if err := c.Run(0); !errors.Is(err, ErrBadOp) {
		t.Errorf("err = %v", err)
	}
}

func TestBadSpecialFaults(t *testing.T) {
	p, err := asm.Assemble("main: nop\n")
	if err != nil {
		t.Fatal(err)
	}
	p.Text[0] = isa.EncodeR(0x3f /* invalid funct */, 1, 2, 3, 0)
	c := New(p, nil)
	if err := c.Run(0); !errors.Is(err, ErrBadOp) {
		t.Errorf("err = %v", err)
	}
}

func TestUnknownSyscallFaults(t *testing.T) {
	p, err := asm.Assemble("main:\nli $v0, 999\nsyscall\n")
	if err != nil {
		t.Fatal(err)
	}
	c := New(p, nil)
	err = c.Run(0)
	if err == nil || !strings.Contains(err.Error(), "unknown syscall") {
		t.Errorf("err = %v", err)
	}
}

func TestDivuAndMisalignedStore(t *testing.T) {
	c := run(t, `
	main:
		li   $t0, 0xffffffff
		li   $t1, 16
		divu $t0, $t1
		mflo $s0            # 0x0fffffff
		mfhi $s1            # 15
	`+exit, 0)
	if c.Regs[isa.RegS0] != 0x0fffffff || c.Regs[isa.RegS1] != 15 {
		t.Errorf("divu: %#x rem %d", c.Regs[isa.RegS0], c.Regs[isa.RegS1])
	}
	p, err := asm.Assemble("main:\nli $t0, 2\nsw $t1, 0($t0)\n" + exit)
	if err != nil {
		t.Fatal(err)
	}
	cpu := New(p, nil)
	if err := cpu.Run(0); !errors.Is(err, ErrMisalign) {
		t.Errorf("sw misalign err = %v", err)
	}
}

func TestDivuByZeroFaults(t *testing.T) {
	p, err := asm.Assemble("main:\nli $t0, 3\ndivu $t0, $zero\n" + exit)
	if err != nil {
		t.Fatal(err)
	}
	c := New(p, nil)
	if err := c.Run(0); !errors.Is(err, ErrDivZero) {
		t.Errorf("err = %v", err)
	}
}

func TestLoadStringBounded(t *testing.T) {
	m := NewMemory()
	m.WriteBytes(0x1000, []byte("hello"))
	if got := m.LoadString(0x1000, 100); got != "hello" {
		t.Errorf("LoadString = %q", got)
	}
	if got := m.LoadString(0x1000, 3); got != "hel" {
		t.Errorf("bounded LoadString = %q", got)
	}
	if got := m.LoadString(0x999000, 10); got != "" {
		t.Errorf("untouched memory string = %q", got)
	}
}

func TestCrossPageStoreWord(t *testing.T) {
	m := NewMemory()
	addr := uint32(2*pageSize - 2)
	m.StoreWord(addr, 0xaabbccdd)
	if got := m.LoadWord(addr); got != 0xaabbccdd {
		t.Errorf("cross-page store/load = %#x", got)
	}
	// The bytes really straddle the boundary.
	if m.LoadByte(addr+1) != 0xcc || m.LoadByte(addr+2) != 0xbb {
		t.Error("byte layout across pages wrong")
	}
}

func TestProfileCountsExecutions(t *testing.T) {
	p, err := asm.Assemble(`
	main:
		li $t0, 0
	loop:
		addiu $t0, $t0, 1
		li $t1, 10
		bne $t0, $t1, loop
	` + exit)
	if err != nil {
		t.Fatal(err)
	}
	c := New(p, nil)
	c.EnableProfile(len(p.Text))
	if err := c.Run(0); err != nil {
		t.Fatal(err)
	}
	prof := c.Profile()
	// The loop body (indices 1..3) executes 10 times, the prologue once.
	if prof[0] != 1 {
		t.Errorf("prologue count = %d, want 1", prof[0])
	}
	for i := 1; i <= 3; i++ {
		if prof[i] != 10 {
			t.Errorf("loop word %d count = %d, want 10", i, prof[i])
		}
	}
	var total uint64
	for _, n := range prof {
		total += n
	}
	if total != c.Executed {
		t.Errorf("profile total %d != executed %d", total, c.Executed)
	}
}

func TestProfileDisabledByDefault(t *testing.T) {
	c := run(t, "main: nop"+exit, 0)
	if c.Profile() != nil {
		t.Error("profile allocated without EnableProfile")
	}
}
