package vm

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/asm"
	"repro/internal/isa"
	"repro/internal/trace"
)

func run(t *testing.T, src string, budget uint64) *CPU {
	t.Helper()
	p, err := asm.Assemble(src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	c := New(p, nil)
	if err := c.Run(budget); err != nil {
		t.Fatalf("run: %v", err)
	}
	return c
}

const exit = "\nli $v0, 10\nsyscall\n"

func TestMemoryByteWordRoundTrip(t *testing.T) {
	m := NewMemory()
	m.StoreWord(0x1000, 0xdeadbeef)
	if m.LoadWord(0x1000) != 0xdeadbeef {
		t.Error("word round trip failed")
	}
	// Little-endian layout.
	if m.LoadByte(0x1000) != 0xef || m.LoadByte(0x1003) != 0xde {
		t.Error("not little-endian")
	}
	m.StoreHalf(0x2000, 0x1234)
	if m.LoadHalf(0x2000) != 0x1234 {
		t.Error("half round trip failed")
	}
	// Untouched memory reads zero.
	if m.LoadWord(0x999000) != 0 {
		t.Error("untouched memory not zero")
	}
}

func TestMemoryCrossPage(t *testing.T) {
	m := NewMemory()
	addr := uint32(pageSize - 2)
	m.StoreWord(addr, 0x11223344)
	if got := m.LoadWord(addr); got != 0x11223344 {
		t.Errorf("cross-page word = %#x", got)
	}
}

func TestMemoryQuickWordRoundTrip(t *testing.T) {
	m := NewMemory()
	prop := func(addr, v uint32) bool {
		addr &^= 3
		m.StoreWord(addr, v)
		return m.LoadWord(addr) == v
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestArithmetic(t *testing.T) {
	c := run(t, `
	main:
		li   $t0, 7
		li   $t1, -3
		addu $t2, $t0, $t1   # 4
		subu $t3, $t0, $t1   # 10
		and  $t4, $t0, $t1   # 7 & -3 = 5
		or   $t5, $t0, $t1   # -1
		xor  $t6, $t0, $t1   # -6
		nor  $t7, $zero, $zero # -1
		slt  $s0, $t1, $t0   # 1
		sltu $s1, $t1, $t0   # 0 (0xfffffffd > 7)
	`+exit, 0)
	want := map[int]uint32{
		isa.RegT2: 4, isa.RegT3: 10, isa.RegT4: 5,
		isa.RegT5: 0xffffffff, isa.RegT6: 0xfffffffa, isa.RegT7: 0xffffffff,
		isa.RegS0: 1, isa.RegS1: 0,
	}
	for r, v := range want {
		if c.Regs[r] != v {
			t.Errorf("$%s = %#x, want %#x", isa.RegNames[r], c.Regs[r], v)
		}
	}
}

func TestShifts(t *testing.T) {
	c := run(t, `
	main:
		li   $t0, -8
		sll  $t1, $t0, 2     # -32
		srl  $t2, $t0, 28    # 0xf
		sra  $t3, $t0, 2     # -2
		li   $t4, 3
		sllv $t5, $t0, $t4   # -64
		srav $t6, $t0, $t4   # -1
	`+exit, 0)
	neg := func(v int32) uint32 { return uint32(v) }
	want := map[int]uint32{
		isa.RegT1: neg(-32), isa.RegT2: 0xf,
		isa.RegT3: neg(-2), isa.RegT5: neg(-64),
		isa.RegT6: 0xffffffff,
	}
	for r, v := range want {
		if c.Regs[r] != v {
			t.Errorf("$%s = %#x, want %#x", isa.RegNames[r], c.Regs[r], v)
		}
	}
}

func TestMultDiv(t *testing.T) {
	c := run(t, `
	main:
		li    $t0, -6
		li    $t1, 4
		mult  $t0, $t1
		mflo  $t2            # -24
		mfhi  $t3            # -1 (sign bits)
		li    $t0, 100000
		li    $t1, 100000
		multu $t0, $t1
		mfhi  $t4            # high half of 10^10
		div   $t5, $t0, $t1  # 1
		li    $t1, 7
		rem   $t6, $t0, $t1  # 100000 % 7 = 5
	`+exit, 0)
	if int32(c.Regs[isa.RegT2]) != -24 {
		t.Errorf("mult lo = %d", int32(c.Regs[isa.RegT2]))
	}
	if c.Regs[isa.RegT3] != 0xffffffff {
		t.Errorf("mult hi = %#x", c.Regs[isa.RegT3])
	}
	if want := uint32((uint64(100000) * 100000) >> 32); c.Regs[isa.RegT4] != want {
		t.Errorf("multu hi = %#x, want %#x", c.Regs[isa.RegT4], want)
	}
	if c.Regs[isa.RegT5] != 1 {
		t.Errorf("div = %d", c.Regs[isa.RegT5])
	}
	if c.Regs[isa.RegT6] != 100000%7 {
		t.Errorf("rem = %d", c.Regs[isa.RegT6])
	}
}

func TestLoadsStores(t *testing.T) {
	c := run(t, `
	.data
	w:  .word 0x80000001
	b:  .byte 0xff
	h:  .half 0x8001
	.text
	main:
		lw  $t0, w
		lb  $t1, b        # -1
		lbu $t2, b        # 255
		lh  $t3, h        # sign-extended
		lhu $t4, h        # 0x8001
		li  $t5, 0x12345678
		sw  $t5, 0($sp)
		lw  $t6, 0($sp)
		sb  $t5, 4($sp)
		lbu $t7, 4($sp)   # 0x78
		sh  $t5, 8($sp)
		lhu $s0, 8($sp)   # 0x5678
	`+exit, 0)
	want := map[int]uint32{
		isa.RegT0: 0x80000001,
		isa.RegT1: 0xffffffff,
		isa.RegT2: 0xff,
		isa.RegT3: 0xffff8001,
		isa.RegT4: 0x8001,
		isa.RegT6: 0x12345678,
		isa.RegT7: 0x78,
		isa.RegS0: 0x5678,
	}
	for r, v := range want {
		if c.Regs[r] != v {
			t.Errorf("$%s = %#x, want %#x", isa.RegNames[r], c.Regs[r], v)
		}
	}
}

func TestLoopAndBranches(t *testing.T) {
	// Sum 1..10 with a loop.
	c := run(t, `
	main:
		li $t0, 0    # i
		li $t1, 0    # sum
	loop:
		addiu $t0, $t0, 1
		addu  $t1, $t1, $t0
		blt   $t0, $t2, loop  # $t2 == 0? no...
		li    $t3, 10
		bne   $t0, $t3, cont
		b     done
	cont:
		b loop2
	loop2:
		addiu $t0, $t0, 1
		addu  $t1, $t1, $t0
		bne   $t0, $t3, loop2
	done:
	`+exit, 0)
	if c.Regs[isa.RegT1] != 55 {
		t.Errorf("sum = %d, want 55", c.Regs[isa.RegT1])
	}
}

func TestFunctionCall(t *testing.T) {
	c := run(t, `
	main:
		li  $a0, 6
		jal fact
		move $s0, $v0
	`+exit+`
	# iterative factorial
	fact:
		li   $v0, 1
	floop:
		blez $a0, fret
		mul  $v0, $v0, $a0
		addiu $a0, $a0, -1
		b    floop
	fret:
		jr   $ra
	`, 0)
	if c.Regs[isa.RegS0] != 720 {
		t.Errorf("fact(6) = %d, want 720", c.Regs[isa.RegS0])
	}
}

func TestRecursion(t *testing.T) {
	// Recursive fibonacci exercises the stack.
	c := run(t, `
	main:
		li  $a0, 10
		jal fib
		move $s0, $v0
	`+exit+`
	fib:
		li   $t0, 2
		slt  $t0, $a0, $t0
		beqz $t0, frec
		move $v0, $a0
		jr   $ra
	frec:
		addiu $sp, $sp, -12
		sw   $ra, 0($sp)
		sw   $a0, 4($sp)
		addiu $a0, $a0, -1
		jal  fib
		sw   $v0, 8($sp)
		lw   $a0, 4($sp)
		addiu $a0, $a0, -2
		jal  fib
		lw   $t1, 8($sp)
		addu $v0, $v0, $t1
		lw   $ra, 0($sp)
		addiu $sp, $sp, 12
		jr   $ra
	`, 0)
	if c.Regs[isa.RegS0] != 55 {
		t.Errorf("fib(10) = %d, want 55", c.Regs[isa.RegS0])
	}
}

func TestSyscallOutput(t *testing.T) {
	c := run(t, `
	.data
	msg: .asciiz "n="
	.text
	main:
		la $a0, msg
		li $v0, 4
		syscall
		li $a0, -42
		li $v0, 1
		syscall
		li $a0, '\n'
		li $v0, 11
		syscall
	`+exit, 0)
	if got := string(c.Stdout); got != "n=-42\n" {
		t.Errorf("stdout = %q", got)
	}
}

func TestSbrk(t *testing.T) {
	c := run(t, `
	.data
	x: .word 1
	.text
	main:
		li $a0, 64
		li $v0, 9
		syscall
		move $s0, $v0   # first break
		li $a0, 64
		li $v0, 9
		syscall
		move $s1, $v0   # second break
		sw $s0, 0($s0)  # heap is writable
		lw $s2, 0($s0)
	`+exit, 0)
	if c.Regs[isa.RegS0] == 0 || c.Regs[isa.RegS1] != c.Regs[isa.RegS0]+64 {
		t.Errorf("sbrk breaks: %#x then %#x", c.Regs[isa.RegS0], c.Regs[isa.RegS1])
	}
	if c.Regs[isa.RegS2] != c.Regs[isa.RegS0] {
		t.Error("heap write/read failed")
	}
}

func TestTraceFilter(t *testing.T) {
	// The paper's filter: register-producing instructions are traced
	// (incl. loads); branches, jumps, stores and $zero writes are not.
	p, err := asm.Assemble(`
	main:
		addiu $t0, $zero, 1   # traced
		sw    $t0, 0($sp)     # not traced
		lw    $t1, 0($sp)     # traced
		beq   $t0, $t1, skip  # not traced
		nop
	skip:
		jal   f               # not traced (jump writes $ra silently)
		addu  $zero, $t0, $t1 # not traced ($zero write)
		mult  $t0, $t1        # traced once (LO)
		mflo  $t2             # traced
	` + exit + `
	f:	jr $ra                # not traced
	`)
	if err != nil {
		t.Fatal(err)
	}
	var events []trace.Event
	c := New(p, func(pc, v uint32) { events = append(events, trace.Event{PC: pc, Value: v}) })
	if err := c.Run(0); err != nil {
		t.Fatal(err)
	}
	// traced: addiu(1), lw(1), mult(1), mflo(1), plus the two li of
	// the exit sequence (li $v0,10 → addiu, traced) — li $v0 appears
	// once. Count: addiu, lw, mult, mflo, li = 5.
	if len(events) != 5 {
		for _, e := range events {
			t.Logf("event pc=%#x v=%d", e.PC, e.Value)
		}
		t.Fatalf("got %d events, want 5", len(events))
	}
	if events[0].Value != 1 || events[1].Value != 1 {
		t.Error("wrong traced values")
	}
	if c.Emitted != uint64(len(events)) {
		t.Errorf("Emitted = %d, events = %d", c.Emitted, len(events))
	}
}

func TestZeroRegisterImmutable(t *testing.T) {
	c := run(t, "main:\naddiu $zero, $zero, 99\nmove $t0, $zero"+exit, 0)
	if c.Regs[isa.RegZero] != 0 || c.Regs[isa.RegT0] != 0 {
		t.Error("$zero was written")
	}
}

func TestBudgetExpires(t *testing.T) {
	p, err := asm.Assemble("main: b main\n")
	if err != nil {
		t.Fatal(err)
	}
	c := New(p, nil)
	if err := c.Run(100); !errors.Is(err, ErrBudget) {
		t.Errorf("err = %v, want ErrBudget", err)
	}
	if c.Executed != 100 {
		t.Errorf("executed %d, want 100", c.Executed)
	}
}

func TestDivZeroFaults(t *testing.T) {
	p, err := asm.Assemble("main:\nli $t0, 3\ndiv2 $t0, $zero\n" + exit)
	if err != nil {
		t.Fatal(err)
	}
	c := New(p, nil)
	if err := c.Run(0); !errors.Is(err, ErrDivZero) {
		t.Errorf("err = %v, want ErrDivZero", err)
	}
}

func TestMisalignedFaults(t *testing.T) {
	p, err := asm.Assemble("main:\nli $t0, 2\nlw $t1, 0($t0)\n" + exit)
	if err != nil {
		t.Fatal(err)
	}
	c := New(p, nil)
	if err := c.Run(0); !errors.Is(err, ErrMisalign) {
		t.Errorf("err = %v, want ErrMisalign", err)
	}
}

func TestIllegalInstructionFaults(t *testing.T) {
	p, err := asm.Assemble("main: nop\n")
	if err != nil {
		t.Fatal(err)
	}
	p.Text[0] = 0xffffffff // opcode 0x3f
	c := New(p, nil)
	if err := c.Run(0); !errors.Is(err, ErrBadOp) {
		t.Errorf("err = %v, want ErrBadOp", err)
	}
}

func TestTraceHelper(t *testing.T) {
	p, err := asm.Assemble(`
	main:
		li $t0, 0
	loop:
		addiu $t0, $t0, 3
		li $t1, 30
		bne $t0, $t1, loop
	` + exit)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := Trace(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	// The addiu produces the stride sequence 3, 6, ..., 30.
	var strideVals []uint32
	for _, e := range tr {
		if e.PC == isa.TextBase+4 {
			strideVals = append(strideVals, e.Value)
		}
	}
	if len(strideVals) != 10 || strideVals[0] != 3 || strideVals[9] != 30 {
		t.Errorf("stride values: %v", strideVals)
	}
	// Budget truncation is not an error.
	if _, err := Trace(p, 5); err != nil {
		t.Errorf("budget-truncated trace errored: %v", err)
	}
}

func TestDeterminism(t *testing.T) {
	src := `
	main:
		li $s0, 12345
		li $t0, 0
	loop:
		# xorshift-ish scrambling
		sll $t1, $s0, 13
		xor $s0, $s0, $t1
		srl $t1, $s0, 17
		xor $s0, $s0, $t1
		sll $t1, $s0, 5
		xor $s0, $s0, $t1
		addiu $t0, $t0, 1
		li $t2, 50
		bne $t0, $t2, loop
	` + exit
	p, err := asm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	t1, err := Trace(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	t2, err := Trace(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(t1) != len(t2) {
		t.Fatal("lengths differ across runs")
	}
	for i := range t1 {
		if t1[i] != t2[i] {
			t.Fatalf("event %d differs", i)
		}
	}
	if len(t1) == 0 || !strings.Contains("", "") {
		_ = t1
	}
}
