package cluster

import (
	"time"

	"repro/internal/serve"
)

// healthLoop sweeps every backend each HealthInterval until Close.
func (r *Router) healthLoop() {
	defer r.healthWG.Done()
	t := time.NewTicker(r.cfg.HealthInterval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			r.CheckHealth()
		case <-r.quit:
			return
		}
	}
}

// CheckHealth probes every pooled backend once with a Stats round
// trip — the cheapest op that proves the whole path (dial, frame
// codec, engine) — and applies the failure threshold: HealthFails
// consecutive failed probes mark a backend down, a single success
// marks it back up. Down backends are skipped by ring lookups, so
// their sessions fall through to the next node clockwise (cold: a
// dead backend's unsnapshot state is gone — zero-loss migration needs
// a live source; see DESIGN.md §11 failure modes). The sweep runs on
// the health goroutine; tests call it directly to force a verdict.
func (r *Router) CheckHealth() {
	for _, b := range r.pool.Backends() {
		b.probes.Add(1)
		// The probe reuses pooled connections and the configured
		// dialer; on a dead backend each sweep pays the dialer's
		// retry budget, which bounds how fast HealthFails accrues.
		err := r.pool.Do(b.Addr(), func(c *serve.Client) error {
			_, err := c.Stats()
			return err
		})
		if err != nil {
			if int(b.fails.Add(1)) >= r.cfg.HealthFails {
				b.healthy.Store(false)
			}
			continue
		}
		b.fails.Store(0)
		b.healthy.Store(true)
	}
}
