package cluster

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/serve"
)

// Config parameterizes a Router.
type Config struct {
	// Backends is the initial vpserve membership. At least one address
	// is required; all backends must run the same predictor spec (the
	// RestoreSession spec check enforces this at migration time).
	Backends []string
	// VNodes is the virtual-node count per backend on the hash ring.
	// 0 selects DefaultVNodes. Must be identical across routers for
	// them to agree on placement.
	VNodes int
	// Dialer establishes backend connections; its Timeout also bounds
	// each forwarded round trip, and its Retries/Backoff absorb
	// transient connect errors to restarting backends.
	Dialer serve.Dialer
	// HealthInterval is the period between health sweeps. 0 disables
	// active checking (backends stay healthy until removed).
	HealthInterval time.Duration
	// HealthFails is the consecutive probe failures that mark a
	// backend down. 0 selects 3. A single successful probe marks it
	// back up.
	HealthFails int
	// MaxFrame bounds inbound request payloads, as in
	// serve.ServerConfig. RestoreSession requests are always allowed
	// up to serve.MaxSnapshotFrame. 0 selects serve.DefaultMaxFrame.
	MaxFrame int
	// ReadTimeout bounds the wait for the next inbound frame; an idle
	// client past it is closed. 0 selects 60s.
	ReadTimeout time.Duration
	// WriteTimeout bounds writing one response frame. 0 selects 10s.
	WriteTimeout time.Duration
}

func (c Config) withDefaults() Config {
	if c.VNodes <= 0 {
		c.VNodes = DefaultVNodes
	}
	if c.HealthFails <= 0 {
		c.HealthFails = 3
	}
	if c.MaxFrame <= 0 {
		c.MaxFrame = serve.DefaultMaxFrame
	}
	if c.ReadTimeout <= 0 {
		c.ReadTimeout = 60 * time.Second
	}
	if c.WriteTimeout <= 0 {
		c.WriteTimeout = 10 * time.Second
	}
	return c
}

// sessionLocks hands out one RWMutex per session ID. Forwarding takes
// the read side; migration takes the write side, which is the
// quiesce: it waits out the session's in-flight request and holds new
// ones until the state has moved.
type sessionLocks struct {
	mu sync.Mutex
	m  map[uint64]*sync.RWMutex // vplint:guardedby mu
}

func (l *sessionLocks) get(id uint64) *sync.RWMutex {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.m == nil {
		l.m = make(map[uint64]*sync.RWMutex)
	}
	lk, ok := l.m[id]
	if !ok {
		lk = &sync.RWMutex{}
		l.m[id] = lk
	}
	return lk
}

// Router is the scale-out serving tier: a VP1 proxy that maps
// sessions to backends on a consistent-hash ring, checks backend
// health, and migrates live sessions between backends without losing
// a prediction. All exported methods are safe for concurrent use.
type Router struct {
	cfg   Config
	pool  *Pool
	locks sessionLocks

	mu     sync.RWMutex
	ring   *Ring             // vplint:guardedby mu — current membership (copy-on-write)
	routes map[uint64]string // vplint:guardedby mu — session → backend that last served it
	pins   map[uint64]string // vplint:guardedby mu — session → backend overriding the ring

	migrations    atomic.Uint64
	forwardErrors atomic.Uint64

	lifeMu   sync.Mutex
	ln       net.Listener          // vplint:guardedby lifeMu
	conns    map[net.Conn]struct{} // vplint:guardedby lifeMu
	connWG   sync.WaitGroup
	closed   bool // vplint:guardedby lifeMu
	healthWG sync.WaitGroup
	quit     chan struct{}
}

// NewRouter builds a router over the configured backends and starts
// its health checker. Callers must Close it.
func NewRouter(cfg Config) (*Router, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Backends) == 0 {
		return nil, fmt.Errorf("cluster: at least one backend is required")
	}
	r := &Router{
		cfg:    cfg,
		pool:   NewPool(cfg.Dialer),
		ring:   NewRing(cfg.VNodes),
		routes: make(map[uint64]string),
		pins:   make(map[uint64]string),
		conns:  make(map[net.Conn]struct{}),
		quit:   make(chan struct{}),
	}
	for _, addr := range cfg.Backends {
		if addr == "" {
			return nil, fmt.Errorf("cluster: empty backend address")
		}
		r.pool.Add(addr)
		r.ring.Add(addr)
	}
	if cfg.HealthInterval > 0 {
		r.healthWG.Add(1)
		go r.healthLoop()
	}
	return r, nil
}

// Serve accepts VP1 connections on ln until Close. It always returns
// a non-nil error; after a clean shutdown the error is net.ErrClosed.
func (r *Router) Serve(ln net.Listener) error {
	r.lifeMu.Lock()
	if r.closed {
		r.lifeMu.Unlock()
		_ = ln.Close()
		return net.ErrClosed
	}
	r.ln = ln
	r.lifeMu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return err
		}
		r.lifeMu.Lock()
		if r.closed {
			r.lifeMu.Unlock()
			_ = conn.Close()
			continue
		}
		r.conns[conn] = struct{}{}
		r.connWG.Add(1)
		r.lifeMu.Unlock()
		go r.serveConn(conn)
	}
}

// serveConn runs one inbound connection's frame loop, mirroring the
// vpserve server: malformed payloads and oversized-but-drained frames
// get a status response; only an unsynchronizable stream drops the
// connection.
func (r *Router) serveConn(conn net.Conn) {
	defer r.connWG.Done()
	defer func() {
		_ = conn.Close()
		r.lifeMu.Lock()
		delete(r.conns, conn)
		r.lifeMu.Unlock()
	}()
	br := bufio.NewReader(conn)
	bw := bufio.NewWriter(conn)
	// Per-connection scratch: the request payload and the forwarded
	// response reuse these across frames, so a steady-state proxied
	// frame allocates nothing. Both are owned by this goroutine; each
	// is valid until the next frame (the response is written and
	// flushed before the next read).
	var frameBuf, respBuf []byte
	for {
		if err := conn.SetReadDeadline(time.Now().Add(r.cfg.ReadTimeout)); err != nil {
			return
		}
		op, payload, oversized, err := serve.ReadRequestFrameBuf(br, r.cfg.MaxFrame, frameBuf)
		if err != nil {
			return
		}
		if payload != nil {
			frameBuf = payload
		}
		var resp []byte
		if oversized {
			resp = append(respBuf[:0], byte(serve.StatusBadRequest))
		} else {
			resp = r.dispatch(op, payload, respBuf[:0])
		}
		respBuf = resp
		if err := conn.SetWriteDeadline(time.Now().Add(r.cfg.WriteTimeout)); err != nil {
			return
		}
		if err := serve.WriteResponseFrame(bw, op, resp); err != nil {
			return
		}
		if err := bw.Flush(); err != nil {
			return
		}
	}
}

// dispatch routes one request frame, building the response in buf's
// storage (the returned slice is rooted there; serveConn keeps it as
// the next frame's scratch). Stats aggregates across backends;
// everything else forwards to the session's owner.
func (r *Router) dispatch(op byte, payload, buf []byte) []byte {
	if op == serve.OpStats {
		return append(buf, r.aggregateStats()...)
	}
	session, ok := serve.RequestSession(op, payload)
	if !ok {
		return append(buf, byte(serve.StatusBadRequest))
	}
	lk := r.locks.get(session)
	lk.RLock()
	defer lk.RUnlock()
	addr, ok := r.routeFor(session)
	if !ok {
		// No live backend: shed like engine backpressure so clients
		// retry rather than tear down.
		return append(buf, byte(serve.StatusBusy))
	}
	resp, err := r.forward(addr, op, payload, buf)
	if err != nil {
		r.forwardErrors.Add(1)
		return append(buf, byte(serve.StatusBusy))
	}
	r.noteRoute(session, addr)
	return resp
}

// routeFor resolves the backend serving a session: an explicit pin
// wins; otherwise the first healthy backend clockwise on the ring.
func (r *Router) routeFor(session uint64) (string, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if addr, ok := r.pins[session]; ok {
		return addr, true
	}
	return r.ring.LookupSkip(session, func(addr string) bool {
		b, ok := r.pool.Get(addr)
		return !ok || !b.Healthy()
	})
}

// noteRoute records where a session was last served, so membership
// changes know which sessions have live state and where.
func (r *Router) noteRoute(session uint64, addr string) {
	r.mu.RLock()
	cur, ok := r.routes[session]
	r.mu.RUnlock()
	if ok && cur == addr {
		return
	}
	r.mu.Lock()
	r.routes[session] = addr
	r.mu.Unlock()
}

// forward round-trips one frame to addr over a pooled connection,
// reading the response into buf's storage — the buffer must be
// caller-owned because Pool.Do returns the client to the pool before
// the caller is done with the response; a client-owned scratch would
// be overwritten by the connection's next borrower. A transport error
// is retried once on a fresh connection: the common cause is a pooled
// socket staled by a backend restart, which fails on the first write.
// (The retry is at-least-once: an error after the backend processed
// the request but before its response arrived would re-apply the
// batch. VP1 carries no request IDs to do better; the window requires
// the backend to die mid-response.)
func (r *Router) forward(addr string, op byte, payload, buf []byte) ([]byte, error) {
	var resp []byte
	do := func() error {
		return r.pool.Do(addr, func(c *serve.Client) error {
			p, err := c.RoundTripAppend(op, payload, buf)
			if err != nil {
				return err
			}
			resp = p
			return nil
		})
	}
	err := do()
	if err != nil {
		err = do()
	}
	if err != nil {
		return nil, err
	}
	if b, ok := r.pool.Get(addr); ok {
		b.requests.Add(1)
	}
	return resp, nil
}

// aggregateStats answers the Stats op with the sum over reachable
// backends, so a client pointed at the router instead of a single
// vpserve sees cluster-wide totals in the same shape.
func (r *Router) aggregateStats() []byte {
	var sum serve.Stats
	contacted := 0
	for _, b := range r.pool.Backends() {
		if !b.Healthy() {
			continue
		}
		var st serve.Stats
		err := r.pool.Do(b.Addr(), func(c *serve.Client) error {
			s, err := c.Stats()
			if err != nil {
				return err
			}
			st = s
			return nil
		})
		if err != nil {
			continue
		}
		if contacted == 0 {
			sum.Predictor = st.Predictor
		}
		contacted++
		sum.Shards += st.Shards
		sum.Sessions += st.Sessions
		sum.Predictions += st.Predictions
		sum.Hits += st.Hits
		sum.Updates += st.Updates
		sum.Resets += st.Resets
		sum.Dropped += st.Dropped
		sum.QueueDepth += st.QueueDepth
		sum.Checkpoints += st.Checkpoints
		sum.CheckpointErrors += st.CheckpointErrors
		sum.Restored += st.Restored
	}
	if contacted == 0 {
		return serve.StatusResponse(serve.StatusBusy)
	}
	if sum.Predictions > 0 {
		sum.HitRate = float64(sum.Hits) / float64(sum.Predictions)
	}
	body, err := json.Marshal(sum)
	if err != nil {
		return serve.StatusResponse(serve.StatusBusy)
	}
	return serve.StatsResponse(body)
}

// location reports where a session's state currently lives: its pin,
// its recorded route, or — for sessions this router has never seen —
// the ring owner.
func (r *Router) location(session uint64) (string, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if addr, ok := r.pins[session]; ok {
		return addr, true
	}
	if addr, ok := r.routes[session]; ok {
		return addr, true
	}
	return r.ring.Lookup(session)
}

// MigrateSession moves one live session to backend `to` with zero
// prediction loss: quiesce (the session's in-flight request drains
// and new ones block), SnapshotSession on the current backend,
// RestoreSession on the destination, then re-route atomically. A
// session with no server-side state yet just re-routes. If `to` is
// not the session's ring owner, the session stays pinned there until
// a later membership change moves it.
func (r *Router) MigrateSession(session uint64, to string) error {
	if _, ok := r.pool.Get(to); !ok {
		return fmt.Errorf("cluster: migrate session %d: no backend %s", session, to)
	}
	lk := r.locks.get(session)
	lk.Lock()
	defer lk.Unlock()

	from, ok := r.location(session)
	if !ok {
		return fmt.Errorf("cluster: migrate session %d: no backends", session)
	}
	if from != to {
		var blob []byte
		var snapSt serve.Status
		err := r.pool.Do(from, func(c *serve.Client) error {
			b, st, err := c.SnapshotSession(session)
			if err != nil {
				return err
			}
			blob, snapSt = b, st
			return nil
		})
		if err != nil {
			return fmt.Errorf("cluster: snapshot session %d on %s: %w", session, from, err)
		}
		switch snapSt {
		case serve.StatusOK:
			var restSt serve.Status
			err := r.pool.Do(to, func(c *serve.Client) error {
				st, err := c.RestoreSession(session, blob)
				if err != nil {
					return err
				}
				restSt = st
				return nil
			})
			if err != nil {
				return fmt.Errorf("cluster: restore session %d on %s: %w", session, to, err)
			}
			if restSt != serve.StatusOK {
				return fmt.Errorf("cluster: restore session %d on %s answered %v", session, to, restSt)
			}
		case serve.StatusBadRequest:
			// The session has no state on `from` (never served there):
			// nothing to move, just re-route.
		default:
			return fmt.Errorf("cluster: snapshot session %d on %s answered %v", session, from, snapSt)
		}
	}

	r.mu.Lock()
	r.routes[session] = to
	if owner, ok := r.ring.Lookup(session); ok && owner == to {
		delete(r.pins, session)
	} else {
		r.pins[session] = to
	}
	r.mu.Unlock()
	r.migrations.Add(1)
	return nil
}

// sessionMove pairs a session with its migration target.
type sessionMove struct {
	session uint64
	to      string
}

// migrateAll drives a batch of planned moves, returning the first
// error; a failed move leaves its session pinned to (and served by)
// its old backend, so no state is lost — re-driving the same move
// later is safe.
func (r *Router) migrateAll(moves []sessionMove) error {
	sort.Slice(moves, func(i, j int) bool { return moves[i].session < moves[j].session })
	var firstErr error
	for _, m := range moves {
		if err := r.MigrateSession(m.session, m.to); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// AddBackend grows the membership: the backend joins the ring, every
// live session whose owner changed is pinned to its current backend,
// and then each is migrated to the new owner. Traffic keeps flowing
// throughout — pinned sessions stay where their state is until their
// migration completes.
func (r *Router) AddBackend(addr string) error {
	if addr == "" {
		return fmt.Errorf("cluster: empty backend address")
	}
	r.mu.Lock()
	if r.ring.Has(addr) {
		r.mu.Unlock()
		return fmt.Errorf("cluster: backend %s already present", addr)
	}
	r.pool.Add(addr)
	nr := r.ring.Clone()
	nr.Add(addr)
	var moves []sessionMove
	for s, loc := range r.routes {
		if _, pinned := r.pins[s]; pinned {
			continue // explicit pins hold through membership changes
		}
		if newOwner, ok := nr.Lookup(s); ok && newOwner != loc {
			r.pins[s] = loc
			moves = append(moves, sessionMove{session: s, to: newOwner})
		}
	}
	r.ring = nr
	r.mu.Unlock()
	return r.migrateAll(moves)
}

// RemoveBackend drains a backend gracefully: it leaves the ring (so
// no new sessions land on it), every session living there is migrated
// to its new ring owner, and only then is the backend dropped from
// the pool. Removing the last backend is refused. On a partial
// failure the backend stays pooled and the unmigrated sessions stay
// pinned to it — state is never abandoned.
func (r *Router) RemoveBackend(addr string) error {
	r.mu.Lock()
	if !r.ring.Has(addr) {
		r.mu.Unlock()
		return fmt.Errorf("cluster: no backend %s", addr)
	}
	if r.ring.Len() == 1 {
		r.mu.Unlock()
		return fmt.Errorf("cluster: refusing to remove the last backend %s", addr)
	}
	nr := r.ring.Clone()
	nr.Remove(addr)
	var moves []sessionMove
	for s, loc := range r.routes {
		if pin, pinned := r.pins[s]; (pinned && pin == addr) || (!pinned && loc == addr) {
			r.pins[s] = addr
			if newOwner, ok := nr.Lookup(s); ok {
				moves = append(moves, sessionMove{session: s, to: newOwner})
			}
		}
	}
	for s, pin := range r.pins {
		if pin != addr {
			continue
		}
		if _, routed := r.routes[s]; routed {
			continue // already planned above
		}
		if newOwner, ok := nr.Lookup(s); ok {
			moves = append(moves, sessionMove{session: s, to: newOwner})
		}
	}
	r.ring = nr
	r.mu.Unlock()
	if err := r.migrateAll(moves); err != nil {
		return err
	}
	r.pool.Remove(addr)
	return nil
}

// Backends returns the current ring membership, sorted.
func (r *Router) Backends() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.ring.Members()
}

// Close stops the router: listener, inbound connections, health
// checker and pooled backend connections. Idempotent.
func (r *Router) Close() {
	r.lifeMu.Lock()
	if r.closed {
		r.lifeMu.Unlock()
		return
	}
	r.closed = true
	ln := r.ln
	for conn := range r.conns {
		_ = conn.Close()
	}
	r.lifeMu.Unlock()
	if ln != nil {
		_ = ln.Close()
	}
	close(r.quit)
	r.healthWG.Wait()
	r.connWG.Wait()
	r.pool.CloseAll()
}
