package cluster

import (
	"encoding/json"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/leakcheck"
	"repro/internal/serve"
	"repro/internal/trace"
	"repro/internal/workload"
)

// clusterSpec matches the serve engine tests: the paper's DFCM at
// small table sizes, cheap enough to run many backends in-process.
var clusterSpec = core.Spec{Kind: "dfcm", L1: 10, L2: 10}

func clusterEvents(basePC uint32, n int) trace.Trace {
	body := workload.LoopBody(basePC, 2, 6, 4, 2)
	return trace.Collect(workload.Interleave(body, (n+13)/14), n)
}

func offlineHits(tb testing.TB, events trace.Trace) uint64 {
	tb.Helper()
	p, err := clusterSpec.New()
	if err != nil {
		tb.Fatal(err)
	}
	return core.Run(p, trace.NewReader(events)).Correct
}

// startBackend runs one vpserve (engine + server) on a loopback
// listener and returns its address. Cleanup closes everything.
func startBackend(tb testing.TB) string {
	tb.Helper()
	e, err := serve.NewEngine(serve.Config{Spec: clusterSpec, Shards: 2})
	if err != nil {
		tb.Fatal(err)
	}
	srv := serve.NewServer(e, serve.ServerConfig{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		tb.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		srv.Serve(ln)
		close(done)
	}()
	tb.Cleanup(func() {
		srv.Close()
		<-done
	})
	return ln.Addr().String()
}

// startRouter serves cfg's router on a loopback listener and returns
// it with its address. Cleanup closes it.
func startRouter(tb testing.TB, cfg Config) (*Router, string) {
	tb.Helper()
	r, err := NewRouter(cfg)
	if err != nil {
		tb.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		tb.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		_ = r.Serve(ln)
		close(done)
	}()
	tb.Cleanup(func() {
		r.Close()
		<-done
	})
	return r, ln.Addr().String()
}

func dialRouter(tb testing.TB, addr string) *serve.Client {
	tb.Helper()
	c, err := serve.Dial(addr)
	if err != nil {
		tb.Fatal(err)
	}
	tb.Cleanup(func() { _ = c.Close() })
	return c
}

// predictThrough replays events in predict/update batches through a
// VP1 client (pointed at a router or a backend) and returns every
// prediction, in order.
func predictThrough(tb testing.TB, c *serve.Client, session uint64, events trace.Trace, batch int) []uint32 {
	tb.Helper()
	var out []uint32
	pcs := make([]uint32, 0, batch)
	for start := 0; start < len(events); start += batch {
		end := min(start+batch, len(events))
		chunk := events[start:end]
		pcs = pcs[:0]
		for _, ev := range chunk {
			pcs = append(pcs, ev.PC)
		}
		values, st, err := c.PredictBatch(session, pcs)
		if err != nil || st != serve.StatusOK {
			tb.Fatalf("PredictBatch: %v %v", st, err)
		}
		out = append(out, values...)
		if st, err := c.UpdateBatch(session, chunk); err != nil || st != serve.StatusOK {
			tb.Fatalf("UpdateBatch: %v %v", st, err)
		}
	}
	return out
}

// TestRouterMigrationZeroLoss is the acceptance criterion: drive a
// session through the router, force a live migration to the other
// backend mid-trace, and require the full prediction sequence to be
// bit-identical to an unmigrated run against a single backend with
// identical batching.
func TestRouterMigrationZeroLoss(t *testing.T) {
	// The cleanup closes backends and router; nothing they spawned —
	// health checker, connection handlers, pool dials — may survive.
	leakcheck.Check(t)
	const session, batch = 7, 16
	events := clusterEvents(0x4000, 4000)
	half := len(events) / 2

	// Unmigrated reference: one backend, no router.
	refAddr := startBackend(t)
	want := predictThrough(t, dialRouter(t, refAddr), session, events, batch)

	b1, b2 := startBackend(t), startBackend(t)
	r, raddr := startRouter(t, Config{Backends: []string{b1, b2}})
	c := dialRouter(t, raddr)

	got := predictThrough(t, c, session, events[:half], batch)

	from, ok := r.location(session)
	if !ok {
		t.Fatal("session has no location after traffic")
	}
	to := b1
	if from == b1 {
		to = b2
	}
	if err := r.MigrateSession(session, to); err != nil {
		t.Fatalf("MigrateSession: %v", err)
	}
	if now, _ := r.location(session); now != to {
		t.Fatalf("after migration session lives on %s, want %s", now, to)
	}

	got = append(got, predictThrough(t, c, session, events[half:], batch)...)
	if len(got) != len(want) {
		t.Fatalf("prediction count %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("prediction %d diverged after migration: got %#x want %#x", i, got[i], want[i])
		}
	}

	st := r.Stats()
	if st.Migrations != 1 {
		t.Errorf("router reports %d migrations, want 1", st.Migrations)
	}
	// Migrating back home again is also loss-free and unpins.
	if err := r.MigrateSession(session, from); err != nil {
		t.Fatalf("migrate back: %v", err)
	}
	if err := r.MigrateSession(session, from); err != nil {
		t.Fatalf("no-op migrate to current home: %v", err)
	}
}

// TestRouterMigrateErrors: bad targets and sessions without state.
func TestRouterMigrateErrors(t *testing.T) {
	b1, b2 := startBackend(t), startBackend(t)
	r, _ := startRouter(t, Config{Backends: []string{b1, b2}})
	if err := r.MigrateSession(1, "127.0.0.1:1"); err == nil {
		t.Error("migrating to an unknown backend succeeded")
	}
	// A session the cluster has never served: nothing to move, the
	// migration just records the route.
	if err := r.MigrateSession(999, b2); err != nil {
		t.Errorf("migrating a stateless session: %v", err)
	}
	if loc, _ := r.location(999); loc != b2 {
		t.Errorf("stateless session located on %s, want %s", loc, b2)
	}
}

// TestRouterMembershipChange grows 1 → 2 backends under live
// sessions, then drains one: every session's total hits must match
// the offline ground truth throughout, proving the automatic
// migrations lost nothing.
func TestRouterMembershipChange(t *testing.T) {
	leakcheck.Check(t)
	const batch = 64
	b1, b2 := startBackend(t), startBackend(t)
	r, raddr := startRouter(t, Config{Backends: []string{b1}})
	c := dialRouter(t, raddr)

	type sess struct {
		id     uint64
		events trace.Trace
		hits   uint64
	}
	var sessions []*sess
	for i := 0; i < 8; i++ {
		s := &sess{id: uint64(100 + i), events: clusterEvents(uint32(0x1000*(i+1)), 2800)}
		sessions = append(sessions, s)
	}
	run := func(from, to int) {
		for _, s := range sessions {
			for start := from; start < to; start += batch {
				end := min(start+batch, to)
				h, st, err := c.RunBatch(s.id, s.events[start:end])
				if err != nil || st != serve.StatusOK {
					t.Fatalf("RunBatch session %d: %v %v", s.id, st, err)
				}
				s.hits += uint64(h)
			}
		}
	}
	n := len(sessions[0].events)
	run(0, n/3)
	if err := r.AddBackend(b2); err != nil {
		t.Fatalf("AddBackend: %v", err)
	}
	if got := r.Backends(); len(got) != 2 {
		t.Fatalf("membership %v after add, want 2 backends", got)
	}
	if err := r.AddBackend(b2); err == nil {
		t.Error("adding a present backend succeeded")
	}
	run(n/3, 2*n/3)
	if err := r.RemoveBackend(b2); err != nil {
		t.Fatalf("RemoveBackend: %v", err)
	}
	run(2*n/3, n)

	for _, s := range sessions {
		if want := offlineHits(t, s.events); s.hits != want {
			t.Errorf("session %d: %d hits through membership changes, offline %d", s.id, s.hits, want)
		}
	}
	if err := r.RemoveBackend(b1); err == nil {
		t.Error("removing the last backend succeeded")
	}
	if err := r.RemoveBackend("127.0.0.1:1"); err == nil {
		t.Error("removing an unknown backend succeeded")
	}
}

// TestRouterHealthRouteAround: a dead backend is marked down after
// HealthFails probes and new traffic routes around it.
func TestRouterHealthRouteAround(t *testing.T) {
	leakcheck.Check(t)
	b1 := startBackend(t)

	e, err := serve.NewEngine(serve.Config{Spec: clusterSpec, Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	srv := serve.NewServer(e, serve.ServerConfig{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { srv.Serve(ln) }()
	b2 := ln.Addr().String()

	r, raddr := startRouter(t, Config{
		Backends:    []string{b1, b2},
		HealthFails: 2,
		Dialer:      serve.Dialer{Timeout: 2 * time.Second},
	})
	c := dialRouter(t, raddr)

	r.CheckHealth()
	for _, b := range r.pool.Backends() {
		if !b.Healthy() {
			t.Fatalf("backend %s unhealthy while alive", b.Addr())
		}
	}

	srv.Close() // kill b2

	// Two sweeps cross the threshold; b1 must stay up.
	r.CheckHealth()
	r.CheckHealth()
	down, ok := r.pool.Get(b2)
	if !ok || down.Healthy() {
		t.Fatal("dead backend still marked healthy after threshold")
	}
	if up, _ := r.pool.Get(b1); !up.Healthy() {
		t.Fatal("live backend marked down")
	}

	// Every session now lands on b1, including ones the ring owns b2.
	events := clusterEvents(0x9000, 300)
	for id := uint64(1); id <= 6; id++ {
		if _, st, err := c.RunBatch(id, events); err != nil || st != serve.StatusOK {
			t.Fatalf("RunBatch session %d with one backend down: %v %v", id, st, err)
		}
	}
	if up, _ := r.pool.Get(b1); up.Requests() == 0 {
		t.Error("surviving backend served no requests")
	}
}

// TestRouterStatsAggregation: a Stats round trip against the router
// sums over backends, and the admin handler exposes routing state.
func TestRouterStatsAggregation(t *testing.T) {
	b1, b2 := startBackend(t), startBackend(t)
	r, raddr := startRouter(t, Config{Backends: []string{b1, b2}})
	c := dialRouter(t, raddr)

	const perSession = 500
	events := clusterEvents(0x2000, perSession)
	for id := uint64(1); id <= 10; id++ {
		if _, st, err := c.RunBatch(id, events); err != nil || st != serve.StatusOK {
			t.Fatalf("RunBatch: %v %v", st, err)
		}
	}
	st, err := c.Stats()
	if err != nil {
		t.Fatalf("Stats through router: %v", err)
	}
	if st.Predictions != 10*perSession {
		t.Errorf("aggregated predictions %d, want %d", st.Predictions, 10*perSession)
	}
	if st.Sessions != 10 {
		t.Errorf("aggregated sessions %d, want 10", st.Sessions)
	}

	rs := r.Stats()
	if rs.Sessions != 10 {
		t.Errorf("router tracks %d sessions, want 10", rs.Sessions)
	}
	var reqs, routed uint64
	for _, b := range rs.Backends {
		reqs += b.Requests
		routed += uint64(b.Sessions)
	}
	if reqs == 0 {
		t.Error("no per-backend requests recorded")
	}
	if routed != 10 {
		t.Errorf("per-backend session counts sum to %d, want 10", routed)
	}
}

// TestRouterAdminHandler drives the HTTP control surface end to end.
func TestRouterAdminHandler(t *testing.T) {
	b1, b2 := startBackend(t), startBackend(t)
	r, raddr := startRouter(t, Config{Backends: []string{b1}})
	c := dialRouter(t, raddr)

	events := clusterEvents(0x3000, 400)
	if _, st, err := c.RunBatch(5, events); err != nil || st != serve.StatusOK {
		t.Fatalf("RunBatch: %v %v", st, err)
	}

	admin := httptest.NewServer(r.AdminHandler())
	defer admin.Close()

	get := func(path string) (*http.Response, string) {
		resp, err := http.Get(admin.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		var sb strings.Builder
		buf := make([]byte, 4096)
		for {
			n, err := resp.Body.Read(buf)
			sb.Write(buf[:n])
			if err != nil {
				break
			}
		}
		_ = resp.Body.Close()
		return resp, sb.String()
	}
	post := func(path string) *http.Response {
		resp, err := http.Post(admin.URL+path, "", nil)
		if err != nil {
			t.Fatal(err)
		}
		_ = resp.Body.Close()
		return resp
	}

	resp, body := get("/stats")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /stats: %d", resp.StatusCode)
	}
	var rs RouterStats
	if err := json.Unmarshal([]byte(body), &rs); err != nil {
		t.Fatalf("decoding /stats: %v\n%s", err, body)
	}
	if rs.Sessions != 1 || len(rs.Backends) != 1 {
		t.Errorf("stats report %d sessions on %d backends, want 1 on 1", rs.Sessions, len(rs.Backends))
	}

	if resp := post("/backends/add?addr=" + b2); resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /backends/add: %d", resp.StatusCode)
	}
	if resp := post("/migrate?session=5&to=" + b2); resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /migrate: %d", resp.StatusCode)
	}
	if loc, _ := r.location(5); loc != b2 {
		t.Errorf("session 5 on %s after admin migrate, want %s", loc, b2)
	}
	if resp := post("/backends/remove?addr=" + b2); resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /backends/remove: %d", resp.StatusCode)
	}

	// Error shapes.
	if resp := post("/migrate?session=nope&to=x"); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad session parameter: %d", resp.StatusCode)
	}
	if resp := post("/migrate?session=1"); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("missing to parameter: %d", resp.StatusCode)
	}
	if resp := post("/backends/add"); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("missing addr parameter: %d", resp.StatusCode)
	}
	if resp := post("/backends/remove?addr=127.0.0.1:1"); resp.StatusCode != http.StatusBadGateway {
		t.Errorf("removing unknown backend: %d", resp.StatusCode)
	}
	if resp, _ := get("/migrate?session=1&to=x"); resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET on /migrate: %d", resp.StatusCode)
	}
}

// TestRouterOversizedFrame: a frame past the router's MaxFrame gets a
// clean StatusBadRequest and the connection stays usable, mirroring
// the vpserve contract.
func TestRouterOversizedFrame(t *testing.T) {
	b1 := startBackend(t)
	_, raddr := startRouter(t, Config{Backends: []string{b1}, MaxFrame: 64})
	c := dialRouter(t, raddr)

	big := make(trace.Trace, 200)
	for i := range big {
		big[i] = trace.Event{PC: uint32(i), Value: uint32(i)}
	}
	st, err := c.UpdateBatch(1, big)
	if err != nil {
		t.Fatalf("oversized frame killed the connection: %v", err)
	}
	if st != serve.StatusBadRequest {
		t.Fatalf("oversized frame answered %v, want bad-request", st)
	}
	// Same connection still serves well-formed traffic.
	if _, st, err := c.RunBatch(1, big[:2]); err != nil || st != serve.StatusOK {
		t.Fatalf("connection unusable after oversized frame: %v %v", st, err)
	}
	// A frame the router cannot attribute to a session is refused.
	if _, err := c.RoundTrip(0x7f, nil); err == nil {
		t.Log("unknown op answered (status path)") // response is status-only; no error is fine
	}
}

// benchmarkCluster measures router throughput with n backends: 16
// concurrent sessions replaying a mixed workload in RunBatch batches
// large enough that backend predict/update compute, not round-trip
// latency, is the bottleneck. Comparing Backends1/2/4 ns/op in
// BENCH_engine.json records the scale-out curve.
func benchmarkCluster(b *testing.B, nBackends int) {
	addrs := make([]string, nBackends)
	for i := range addrs {
		addrs[i] = startBackend(b)
	}
	_, raddr := startRouter(b, Config{Backends: addrs})

	const sessions, perSession, batch = 16, 16384, 2048
	events := make([]trace.Trace, sessions)
	clients := make([]*serve.Client, sessions)
	for i := range events {
		events[i] = clusterEvents(uint32(0x1000*(i+1)), perSession)
		clients[i] = dialRouter(b, raddr)
	}
	b.SetBytes(int64(sessions * perSession))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var wg sync.WaitGroup
		for s := 0; s < sessions; s++ {
			wg.Add(1)
			go func(s int) {
				defer wg.Done()
				c, evs := clients[s], events[s]
				for start := 0; start < len(evs); start += batch {
					end := min(start+batch, len(evs))
					if _, st, err := c.RunBatch(uint64(s+1), evs[start:end]); err != nil || st != serve.StatusOK {
						b.Errorf("RunBatch: %v %v", st, err)
						return
					}
				}
			}(s)
		}
		wg.Wait()
	}
}

func BenchmarkClusterBackends1(b *testing.B) { benchmarkCluster(b, 1) }
func BenchmarkClusterBackends2(b *testing.B) { benchmarkCluster(b, 2) }
func BenchmarkClusterBackends4(b *testing.B) { benchmarkCluster(b, 4) }

// TestRouterPooledClientBufferIsolation: the router reads forwarded
// responses into per-connection caller-owned buffers
// (serve.Client.RoundTripAppend) precisely because pooled backend
// clients are returned to the pool while the response is still in
// flight to the inbound connection. Several concurrent inbound
// connections hammer sessions that all route to one backend — so the
// pool constantly recycles clients between them — and each checks
// every prediction against its own local replica. A response written
// into a buffer another borrower then reuses corrupts the values;
// -race catches the unsynchronized write.
func TestRouterPooledClientBufferIsolation(t *testing.T) {
	leakcheck.Check(t)
	backend := startBackend(t)
	_, raddr := startRouter(t, Config{Backends: []string{backend}})

	const conns = 8
	var wg sync.WaitGroup
	for k := 0; k < conns; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			c, err := serve.Dial(raddr)
			if err != nil {
				t.Errorf("conn %d: %v", k, err)
				return
			}
			defer c.Close()
			session := uint64(k + 1)
			events := clusterEvents(uint32(0x1000*(k+1)), 3000)
			p, err := clusterSpec.New()
			if err != nil {
				t.Errorf("conn %d: %v", k, err)
				return
			}
			batch := 128 << (k % 3)
			var pcs, got []uint32
			for start := 0; start < len(events); start += batch {
				end := min(start+batch, len(events))
				chunk := events[start:end]
				pcs = pcs[:0]
				for _, ev := range chunk {
					pcs = append(pcs, ev.PC)
				}
				values, st, err := c.PredictBatchAppend(session, pcs, got)
				if err != nil || st != serve.StatusOK {
					t.Errorf("conn %d PredictBatch: %v %v", k, st, err)
					return
				}
				got = values
				for i, ev := range chunk {
					if want := p.Predict(ev.PC); got[i] != want {
						t.Errorf("conn %d batch at %d: prediction %d is %#x, replica says %#x",
							k, start, i, got[i], want)
						return
					}
				}
				if st, err := c.UpdateBatch(session, chunk); err != nil || st != serve.StatusOK {
					t.Errorf("conn %d UpdateBatch: %v %v", k, st, err)
					return
				}
				for _, ev := range chunk {
					p.Update(ev.PC, ev.Value)
				}
			}
		}(k)
	}
	wg.Wait()
}
