package cluster

import (
	"fmt"
	"testing"
)

func ringWith(vnodes int, addrs ...string) *Ring {
	r := NewRing(vnodes)
	for _, a := range addrs {
		r.Add(a)
	}
	return r
}

func assignments(r *Ring, sessions int) map[uint64]string {
	m := make(map[uint64]string, sessions)
	for s := uint64(1); s <= uint64(sessions); s++ {
		addr, ok := r.Lookup(s)
		if !ok {
			panic("lookup on a populated ring failed")
		}
		m[s] = addr
	}
	return m
}

// TestRingDeterministic: placement depends only on membership and the
// vnode count — not insertion order, not process state. Two rings
// built independently (as two router processes, or one across a
// restart, would) agree on every session.
func TestRingDeterministic(t *testing.T) {
	a := ringWith(128, "b1:9177", "b2:9177", "b3:9177")
	b := ringWith(128, "b3:9177", "b1:9177", "b2:9177") // different order
	for s := uint64(1); s <= 1000; s++ {
		av, _ := a.Lookup(s)
		bv, _ := b.Lookup(s)
		if av != bv {
			t.Fatalf("session %d: ring A says %s, ring B says %s", s, av, bv)
		}
	}
	// A clone agrees too.
	c := a.Clone()
	for s := uint64(1); s <= 100; s++ {
		av, _ := a.Lookup(s)
		cv, _ := c.Lookup(s)
		if av != cv {
			t.Fatalf("session %d: clone diverged", s)
		}
	}
}

// TestRingKeyMovementOnAdd: growing N → N+1 backends must move about
// 1/(N+1) of the keys, and every moved key must land on the new
// backend — the property that makes membership changes cheap.
func TestRingKeyMovementOnAdd(t *testing.T) {
	const sessions = 1000
	base := ringWith(128, "b1:1", "b2:1", "b3:1", "b4:1")
	before := assignments(base, sessions)
	grown := base.Clone()
	grown.Add("b5:1")
	after := assignments(grown, sessions)

	moved := 0
	for s, was := range before {
		if now := after[s]; now != was {
			moved++
			if now != "b5:1" {
				t.Fatalf("session %d moved %s → %s, not to the new backend", s, was, now)
			}
		}
	}
	// Expected movement is sessions/5 = 200; allow generous sampling
	// slack but fail on rehash-everything behaviour.
	if moved > sessions/5+sessions/10 {
		t.Errorf("adding 1 of 5 backends moved %d/%d keys, want ≤ ~%d", moved, sessions, sessions/5)
	}
	if moved == 0 {
		t.Error("adding a backend moved no keys — it is not taking load")
	}
}

// TestRingRemoveInvertsAdd: dropping the backend restores the exact
// prior assignment, so a rolling add+remove is a no-op for every
// untouched session.
func TestRingRemoveInvertsAdd(t *testing.T) {
	base := ringWith(64, "b1:1", "b2:1", "b3:1")
	before := assignments(base, 500)
	changed := base.Clone()
	changed.Add("b4:1")
	changed.Remove("b4:1")
	after := assignments(changed, 500)
	for s, was := range before {
		if after[s] != was {
			t.Fatalf("session %d: %s → %s after add+remove round trip", s, was, after[s])
		}
	}
}

// TestRingUniformLoad: 1k sessions across 4 backends land within a
// reasonable band around the fair share. The assignment is
// deterministic, so the bounds cannot flake. More vnodes tighten the
// band: 256 keeps every backend within 2× of fair.
func TestRingUniformLoad(t *testing.T) {
	const sessions, backends = 1000, 4
	r := NewRing(256)
	for i := 1; i <= backends; i++ {
		r.Add(fmt.Sprintf("b%d:9177", i))
	}
	counts := make(map[string]int)
	for s, addr := range assignments(r, sessions) {
		_ = s
		counts[addr]++
	}
	fair := sessions / backends
	for addr, n := range counts {
		if n < fair/2 || n > fair*2 {
			t.Errorf("backend %s holds %d of %d sessions (fair share %d)", addr, n, sessions, fair)
		}
	}
	if len(counts) != backends {
		t.Errorf("only %d of %d backends hold sessions", len(counts), backends)
	}
}

func TestRingLookupSkipAndEmpty(t *testing.T) {
	if _, ok := NewRing(8).Lookup(1); ok {
		t.Error("lookup on an empty ring succeeded")
	}
	r := ringWith(32, "b1:1", "b2:1")
	owner, _ := r.Lookup(42)
	alt, ok := r.LookupSkip(42, func(addr string) bool { return addr == owner })
	if !ok || alt == owner {
		t.Errorf("skipping the owner returned %q ok=%v", alt, ok)
	}
	if _, ok := r.LookupSkip(42, func(string) bool { return true }); ok {
		t.Error("skipping every member still returned a backend")
	}
	// Idempotent mutations.
	r.Add("b1:1")
	r.Remove("absent")
	if r.Len() != 2 {
		t.Errorf("membership %d after idempotent ops, want 2", r.Len())
	}
}
