// Package cluster is the scale-out serving tier over internal/serve:
// a consistent-hash ring mapping session IDs to vpserve backends, a
// backend pool with per-backend connection reuse and health checks,
// and a VP1 TCP proxy (the router) that forwards request frames to
// the owning backend and migrates live sessions between backends with
// zero prediction loss — quiesce, SnapshotSession on the source,
// RestoreSession on the destination, re-route.
//
// The composition is deliberate: every moving part is an existing,
// tested component (the VP1 protocol and client, the VPSS snapshot
// container, the sharded engine); this package only arranges them
// into a cluster. See DESIGN.md §11.
package cluster

import (
	"hash/fnv"
	"sort"
	"strconv"
)

// Ring is a consistent-hash ring with virtual nodes. Placement is
// deterministic: it depends only on the member addresses and the
// vnode count, never on insertion order, process identity or time —
// two routers (or one router across restarts) configured with the
// same members agree on every session's owner.
//
// Ring is not safe for concurrent mutation; the router mutates a
// Clone and swaps it under its own lock.
type Ring struct {
	vnodes  int
	points  []ringPoint // sorted by hash
	members map[string]bool
}

type ringPoint struct {
	hash uint64
	addr string
}

// DefaultVNodes is the virtual-node count per backend when the
// configuration does not choose one. 128 vnodes keep the expected
// per-backend load within a few percent of uniform for small N.
const DefaultVNodes = 128

// NewRing returns an empty ring; vnodes <= 0 selects DefaultVNodes.
func NewRing(vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	return &Ring{vnodes: vnodes, members: make(map[string]bool)}
}

// pointHash places one virtual node: FNV-1a over "addr#i". FNV is
// stable across processes and platforms (unlike Go's seeded map
// hash), which is what makes ring placement deterministic.
func pointHash(addr string, i int) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(addr))
	_, _ = h.Write([]byte{'#'})
	_, _ = h.Write([]byte(strconv.Itoa(i)))
	return h.Sum64()
}

// sessionPoint places a session key on the ring with a splitmix64
// finalizer, the same mixer the serve engine shards with: adjacent
// session IDs (the common client choice) spread evenly.
func sessionPoint(session uint64) uint64 {
	x := session + 0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Add inserts a backend's virtual nodes. Adding a present member is a
// no-op.
func (r *Ring) Add(addr string) {
	if r.members[addr] {
		return
	}
	r.members[addr] = true
	for i := 0; i < r.vnodes; i++ {
		r.points = append(r.points, ringPoint{hash: pointHash(addr, i), addr: addr})
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Hash ties (vanishingly rare) break by address so placement
		// stays order-independent.
		return r.points[i].addr < r.points[j].addr
	})
}

// Remove deletes a backend's virtual nodes. Removing an absent member
// is a no-op.
func (r *Ring) Remove(addr string) {
	if !r.members[addr] {
		return
	}
	delete(r.members, addr)
	kept := r.points[:0]
	for _, p := range r.points {
		if p.addr != addr {
			kept = append(kept, p)
		}
	}
	r.points = kept
}

// Has reports membership.
func (r *Ring) Has(addr string) bool { return r.members[addr] }

// Members returns the backend addresses, sorted.
func (r *Ring) Members() []string {
	out := make([]string, 0, len(r.members))
	for addr := range r.members {
		out = append(out, addr)
	}
	sort.Strings(out)
	return out
}

// Len is the member count.
func (r *Ring) Len() int { return len(r.members) }

// Clone returns an independent copy — the router's copy-on-write
// membership updates mutate a clone and swap it in.
func (r *Ring) Clone() *Ring {
	c := &Ring{
		vnodes:  r.vnodes,
		points:  append([]ringPoint(nil), r.points...),
		members: make(map[string]bool, len(r.members)),
	}
	for addr := range r.members {
		c.members[addr] = true
	}
	return c
}

// Lookup returns the backend owning the session: the first virtual
// node clockwise from the session's point. ok is false on an empty
// ring.
func (r *Ring) Lookup(session uint64) (addr string, ok bool) {
	return r.LookupSkip(session, nil)
}

// LookupSkip is Lookup over the members for which skip returns false
// — the router passes the down-backend predicate, so an unhealthy
// owner's sessions fall through to the next live node clockwise. ok
// is false when every member is skipped.
func (r *Ring) LookupSkip(session uint64, skip func(addr string) bool) (string, bool) {
	if len(r.points) == 0 {
		return "", false
	}
	h := sessionPoint(session)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	for off := 0; off < len(r.points); off++ {
		p := r.points[(start+off)%len(r.points)]
		if skip == nil || !skip(p.addr) {
			return p.addr, true
		}
	}
	return "", false
}
