package cluster

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
)

// BackendStatus is one backend's slice of the router stats.
type BackendStatus struct {
	Addr     string `json:"addr"`
	Healthy  bool   `json:"healthy"`
	Requests uint64 `json:"requests"` // client frames forwarded here
	Probes   uint64 `json:"probes"`   // health probes sent
	Sessions int    `json:"sessions"` // sessions currently routed here
}

// RouterStats is the router's own view of the cluster — routing and
// membership state the backend Stats op cannot see. vploadgen reads
// it from the admin listener to attribute load per backend.
type RouterStats struct {
	Backends      []BackendStatus `json:"backends"`
	Sessions      int             `json:"sessions"`       // sessions with a recorded route
	Pinned        int             `json:"pinned"`         // sessions routed off-ring (mid- or post-migration)
	Migrations    uint64          `json:"migrations"`     // completed session migrations
	ForwardErrors uint64          `json:"forward_errors"` // frames answered busy on transport failure
}

// Stats collects the router-level stats snapshot.
func (r *Router) Stats() RouterStats {
	r.mu.RLock()
	perBackend := make(map[string]int, 4)
	for s, loc := range r.routes {
		if pin, ok := r.pins[s]; ok {
			loc = pin
		}
		perBackend[loc]++
	}
	sessions := len(r.routes)
	pinned := len(r.pins)
	r.mu.RUnlock()

	st := RouterStats{
		Sessions:      sessions,
		Pinned:        pinned,
		Migrations:    r.migrations.Load(),
		ForwardErrors: r.forwardErrors.Load(),
	}
	for _, b := range r.pool.Backends() {
		st.Backends = append(st.Backends, BackendStatus{
			Addr:     b.Addr(),
			Healthy:  b.Healthy(),
			Requests: b.Requests(),
			Probes:   b.probes.Load(),
			Sessions: perBackend[b.Addr()],
		})
	}
	return st
}

// AdminHandler serves the router's control surface over HTTP:
//
//	GET  /stats                     router stats as JSON
//	POST /migrate?session=N&to=A    migrate one session to backend A
//	POST /backends/add?addr=A       grow membership (migrates moved sessions)
//	POST /backends/remove?addr=A    drain and drop a backend
//
// Mutations answer 200 with "ok" on success and 4xx/5xx with the
// error text otherwise. The listener this mounts on should not be
// public: it can move sessions and reshape the cluster.
func (r *Router) AdminHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/stats", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(r.Stats()); err != nil {
			// The connection died mid-write; nothing to answer.
			return
		}
	})
	mux.HandleFunc("/migrate", func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodPost {
			http.Error(w, "POST required", http.StatusMethodNotAllowed)
			return
		}
		session, err := strconv.ParseUint(req.URL.Query().Get("session"), 10, 64)
		if err != nil {
			http.Error(w, "bad or missing session parameter", http.StatusBadRequest)
			return
		}
		to := req.URL.Query().Get("to")
		if to == "" {
			http.Error(w, "missing to parameter", http.StatusBadRequest)
			return
		}
		if err := r.MigrateSession(session, to); err != nil {
			http.Error(w, err.Error(), http.StatusBadGateway)
			return
		}
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/backends/add", func(w http.ResponseWriter, req *http.Request) {
		adminMembership(w, req, r.AddBackend)
	})
	mux.HandleFunc("/backends/remove", func(w http.ResponseWriter, req *http.Request) {
		adminMembership(w, req, r.RemoveBackend)
	})
	return mux
}

// adminMembership factors the add/remove endpoints' shared shape.
func adminMembership(w http.ResponseWriter, req *http.Request, apply func(string) error) {
	if req.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	addr := req.URL.Query().Get("addr")
	if addr == "" {
		http.Error(w, "missing addr parameter", http.StatusBadRequest)
		return
	}
	if err := apply(addr); err != nil {
		http.Error(w, err.Error(), http.StatusBadGateway)
		return
	}
	fmt.Fprintln(w, "ok")
}
