package cluster

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/serve"
)

// Backend is one vpserve process the router can forward to: its
// address, a free list of idle VP1 connections, health state owned by
// the health checker, and the per-backend request counter the admin
// stats report.
type Backend struct {
	addr string

	healthy  atomic.Bool
	fails    atomic.Int32  // consecutive failed health probes
	requests atomic.Uint64 // client frames forwarded here
	probes   atomic.Uint64 // health probes sent

	mu     sync.Mutex
	idle   []*serve.Client // vplint:guardedby mu
	closed bool            // vplint:guardedby mu
}

// Addr returns the backend's dial address.
func (b *Backend) Addr() string { return b.addr }

// Healthy reports the health checker's current verdict.
func (b *Backend) Healthy() bool { return b.healthy.Load() }

// Requests returns the number of client frames forwarded here.
func (b *Backend) Requests() uint64 { return b.requests.Load() }

// get pops an idle connection or dials a fresh one.
func (b *Backend) get(d serve.Dialer) (*serve.Client, error) {
	b.mu.Lock()
	if n := len(b.idle); n > 0 {
		c := b.idle[n-1]
		b.idle = b.idle[:n-1]
		b.mu.Unlock()
		return c, nil
	}
	closed := b.closed
	b.mu.Unlock()
	if closed {
		return nil, fmt.Errorf("cluster: backend %s removed", b.addr)
	}
	return d.Dial(b.addr)
}

// put returns a connection to the free list (or closes it if the
// backend was removed meanwhile).
func (b *Backend) put(c *serve.Client) {
	b.mu.Lock()
	if b.closed || len(b.idle) >= maxIdlePerBackend {
		b.mu.Unlock()
		_ = c.Close()
		return
	}
	b.idle = append(b.idle, c)
	b.mu.Unlock()
}

// closeIdle drops every pooled connection and refuses new ones.
func (b *Backend) closeIdle() {
	b.mu.Lock()
	idle := b.idle
	b.idle = nil
	b.closed = true
	b.mu.Unlock()
	for _, c := range idle {
		_ = c.Close()
	}
}

// maxIdlePerBackend bounds each backend's free list; connections past
// it are closed rather than pooled. Matches a typical router's
// concurrent inbound connection count without hoarding sockets.
const maxIdlePerBackend = 32

// Pool is the router's set of live backends with connection reuse:
// every forward borrows a pooled connection and returns it on
// success; any transport error discards the connection instead, so a
// broken socket is never reused.
type Pool struct {
	dialer serve.Dialer

	mu       sync.RWMutex
	backends map[string]*Backend // vplint:guardedby mu
}

// NewPool returns an empty pool dialing through d.
func NewPool(d serve.Dialer) *Pool {
	return &Pool{dialer: d, backends: make(map[string]*Backend)}
}

// Add registers a backend (idempotently) and returns it. New backends
// start healthy: the checker demotes them on evidence, not suspicion.
func (p *Pool) Add(addr string) *Backend {
	p.mu.Lock()
	defer p.mu.Unlock()
	if b, ok := p.backends[addr]; ok {
		return b
	}
	b := &Backend{addr: addr}
	b.healthy.Store(true)
	p.backends[addr] = b
	return b
}

// Remove deregisters a backend and closes its pooled connections.
func (p *Pool) Remove(addr string) {
	p.mu.Lock()
	b, ok := p.backends[addr]
	delete(p.backends, addr)
	p.mu.Unlock()
	if ok {
		b.closeIdle()
	}
}

// Get returns the backend registered at addr.
func (p *Pool) Get(addr string) (*Backend, bool) {
	p.mu.RLock()
	defer p.mu.RUnlock()
	b, ok := p.backends[addr]
	return b, ok
}

// Backends returns the registered backends sorted by address.
func (p *Pool) Backends() []*Backend {
	p.mu.RLock()
	out := make([]*Backend, 0, len(p.backends))
	for _, b := range p.backends {
		out = append(out, b)
	}
	p.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].addr < out[j].addr })
	return out
}

// Do borrows a connection to addr, runs fn, and returns the
// connection to the free list iff fn succeeded. fn must return nil
// exactly when the connection is still good (protocol-level non-OK
// statuses are fine; transport errors are not).
func (p *Pool) Do(addr string, fn func(*serve.Client) error) error {
	b, ok := p.Get(addr)
	if !ok {
		return fmt.Errorf("cluster: no backend %s", addr)
	}
	c, err := b.get(p.dialer)
	if err != nil {
		return err
	}
	if err := fn(c); err != nil {
		_ = c.Close()
		return err
	}
	b.put(c)
	return nil
}

// CloseAll drops every backend's pooled connections (router
// shutdown).
func (p *Pool) CloseAll() {
	p.mu.Lock()
	backends := make([]*Backend, 0, len(p.backends))
	for _, b := range p.backends {
		backends = append(backends, b)
	}
	p.mu.Unlock()
	for _, b := range backends {
		b.closeIdle()
	}
}
