package core

// Branch-free helpers for the per-event hot paths. Saturating
// confidence updates are the one data-dependent branch left in the
// table predictors' inner loops; on value traces the hit/miss pattern
// is near-random per event, so the branch predictor pays for it twice
// (once per flush). The mask arithmetic below replaces the compares
// with straight-line code. Bit-identity with the branchy originals is
// pinned by property tests over the full counter range
// (branchless_test.go).

// hit01 reports a == b as an integer: 1 on equality, 0 otherwise.
// (a^b)−1 in 64 bits underflows to all-ones exactly when a == b,
// putting the answer in the top bit.
func hit01(a, b uint32) int32 {
	return int32((uint64(a^b) - 1) >> 63)
}

// satConf returns the post-outcome value of a saturating confidence
// counter without branching. hit must be 0 or 1 (hit01). On a hit the
// counter moves to min(c+inc, max); on a miss to max(c−dec, 0).
// Counters are small non-negative values, so all intermediates fit
// int32 and the sign-bit smears (x>>31) act as full-width selects.
func satConf(c, hit, inc, dec, max int32) int32 {
	up := c + inc
	t := up - max
	up = max + (t & (t >> 31)) // min(c+inc, max)
	dn := c - dec
	dn &^= dn >> 31 // max(c−dec, 0)
	sel := -hit     // all-ones on hit, 0 on miss
	return (up & sel) | (dn &^ sel)
}
