package core

import "testing"

// Property tests pinning the branchless hot-path primitives to the
// branchy implementations they replaced, across the full input range
// each primitive sees in production. The branchy references here are
// the code as it stood before the mask/arithmetic rewrite.

// satConfBranchy is the original if-based saturating counter update.
func satConfBranchy(c, hit, inc, dec, max int32) int32 {
	if hit != 0 {
		c += inc
		if c > max {
			c = max
		}
		return c
	}
	c -= dec
	if c < 0 {
		c = 0
	}
	return c
}

// TestSatConfMatchesBranchy: every counter value in range, both hit
// outcomes, for every (inc, dec, max) shape used by a predictor —
// stride's (1, 2, 7), the confidence estimator's (1, max, max)
// full-reset scheme — plus wider shapes to cover the arithmetic
// generally. dec = max is the interesting edge: a miss must floor at
// 0 from any counter value without wrapping.
func TestSatConfMatchesBranchy(t *testing.T) {
	maxes := []int32{1, 3, 7, 15, 63, 255}
	for _, max := range maxes {
		for _, inc := range []int32{1, 2, 3, max} {
			for _, dec := range []int32{1, 2, max} {
				for c := int32(0); c <= max; c++ {
					for _, hit := range []int32{0, 1} {
						got := satConf(c, hit, inc, dec, max)
						want := satConfBranchy(c, hit, inc, dec, max)
						if got != want {
							t.Fatalf("satConf(%d, hit=%d, +%d, -%d, max=%d) = %d, branchy %d",
								c, hit, inc, dec, max, got, want)
						}
					}
				}
			}
		}
	}
}

// TestHit01: 1 iff the values are equal, over boundary and mixed
// values (including the a^b patterns whose subtraction carries are
// the mechanism under test).
func TestHit01(t *testing.T) {
	vals := []uint32{0, 1, 2, 0x7fffffff, 0x80000000, 0xfffffffe, 0xffffffff, 0xdeadbeef, 0x00010000}
	for _, a := range vals {
		for _, b := range vals {
			want := int32(0)
			if a == b {
				want = 1
			}
			if got := hit01(a, b); got != want {
				t.Fatalf("hit01(%#x, %#x) = %d, want %d", a, b, got, want)
			}
		}
	}
}

// truncateBranchy / extendBranchy are the original width-branching
// stride truncation and sign extension.
func truncateBranchy(stride uint32, bits uint) uint32 {
	if bits >= 32 {
		return stride
	}
	return stride & ((1 << bits) - 1)
}

func extendBranchy(stored uint32, bits uint) uint32 {
	if bits >= 32 {
		return stored
	}
	if stored&(1<<(bits-1)) != 0 {
		return stored | ^uint32((1<<bits)-1)
	}
	return stored
}

// TestTruncateExtendMatchBranchy: the mask/shift pair agrees with the
// branchy reference for every stride width 1..32 over boundary
// patterns, and round-trips: extend(truncate(s)) must reproduce any
// stride representable in the width.
func TestTruncateExtendMatchBranchy(t *testing.T) {
	probes := []uint32{
		0, 1, 2, 3, 0x7f, 0x80, 0xff, 0x100,
		0x7fff, 0x8000, 0xffff, 0x10000,
		0x7fffffff, 0x80000000, 0xfffffffe, 0xffffffff,
	}
	for bits := uint(1); bits <= 32; bits++ {
		p := NewDFCMWidth(4, 8, bits)
		for _, s := range probes {
			if got, want := p.truncate(s), truncateBranchy(s, bits); got != want {
				t.Fatalf("w%d: truncate(%#x) = %#x, branchy %#x", bits, s, got, want)
			}
			stored := p.truncate(s)
			if got, want := p.extend(stored), extendBranchy(stored, bits); got != want {
				t.Fatalf("w%d: extend(%#x) = %#x, branchy %#x", bits, stored, got, want)
			}
			// Round trip: a stride already in range survives intact.
			ext := p.extend(stored)
			if p.truncate(ext) != stored {
				t.Fatalf("w%d: truncate(extend(%#x)) = %#x, not a round trip", bits, stored, p.truncate(ext))
			}
		}
	}
}
