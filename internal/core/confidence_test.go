package core

import (
	"testing"

	"repro/internal/trace"
)

func TestCounterConfidenceGatesCorrectly(t *testing.T) {
	// A stride instruction (predictable) and a noisy instruction:
	// the estimator should be confident on the former, not the latter.
	p := NewCounterConfidence(NewStride(8), 8, 15, 8)
	var tr trace.Trace
	noise := uint32(0x9e3779b9)
	for i := 0; i < 2000; i++ {
		tr = append(tr, trace.Event{PC: 0x100, Value: uint32(i * 4)})
		noise = noise*1664525 + 1013904223
		tr = append(tr, trace.Event{PC: 0x104, Value: noise})
	}
	res := RunConfident(p, trace.NewReader(tr))
	if res.All.Predictions != uint64(len(tr)) {
		t.Fatalf("predictions = %d", res.All.Predictions)
	}
	cov := res.Coverage()
	if cov < 0.4 || cov > 0.6 {
		t.Errorf("coverage = %.3f, expected ~0.5 (one of two instructions predictable)", cov)
	}
	if acc := res.Confident.Accuracy(); acc < 0.99 {
		t.Errorf("confident accuracy = %.3f, want ~1", acc)
	}
	if res.All.Accuracy() >= res.Confident.Accuracy() {
		t.Error("confidence gating should raise accuracy")
	}
}

func TestCounterConfidenceResetOnMiss(t *testing.T) {
	c := NewCounterConfidence(NewLastValue(4), 4, 15, 4)
	// Build confidence with a constant...
	for i := 0; i < 10; i++ {
		c.Update(0x40, 7)
	}
	if _, conf := c.PredictConfident(0x40); !conf {
		t.Fatal("not confident after 10 correct updates")
	}
	// ...one miss resets it.
	c.Update(0x40, 999)
	if _, conf := c.PredictConfident(0x40); conf {
		t.Error("still confident after a miss")
	}
}

func TestCounterConfidencePanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewCounterConfidence(NewLastValue(4), 4, 0, 0) },
		func() { NewCounterConfidence(NewLastValue(4), 4, 3, 4) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("no panic for bad counter parameters")
				}
			}()
			f()
		}()
	}
}

func TestHashTagConfidentOnCleanContexts(t *testing.T) {
	// One instruction with a short repeating pattern and a huge L2:
	// no aliasing, so once warm, predictions should be confident and
	// correct.
	p := NewHashTag(NewDFCM(8, 16), 8, 7)
	pattern := []uint32{5, 9, 1, 44, 13}
	var tr trace.Trace
	for i := 0; i < 400; i++ {
		tr = append(tr, trace.Event{PC: 0x40, Value: pattern[i%len(pattern)]})
	}
	res := RunConfident(p, trace.NewReader(tr))
	if res.Coverage() < 0.8 {
		t.Errorf("coverage = %.3f, want high on an alias-free workload", res.Coverage())
	}
	if res.Confident.Accuracy() < 0.98 {
		t.Errorf("confident accuracy = %.3f", res.Confident.Accuracy())
	}
}

func TestHashTagDetectsAliasing(t *testing.T) {
	// Small L2 (2^8): many instructions with distinct irregular
	// patterns collide heavily. The tag must slash coverage, and
	// confident predictions must stay more accurate than the raw
	// stream. Tag shift 3 gives an order-3 second hash, orthogonal to
	// the order-2 FS R-5 primary at n=8.
	mk := func() *HashTag { return NewHashTag(NewFCM(8, 8), 8, 3) }
	var tr trace.Trace
	patterns := [][]uint32{}
	for k := 0; k < 24; k++ {
		p := make([]uint32, 5+k%7)
		for j := range p {
			p[j] = uint32((k+1)*(j+13)*2654435761) >> 10
		}
		patterns = append(patterns, p)
	}
	for i := 0; i < 4000; i++ {
		for k, p := range patterns {
			tr = append(tr, trace.Event{PC: uint32(0x1000 + 4*k), Value: p[i%len(p)]})
		}
	}
	res := RunConfident(mk(), trace.NewReader(tr))
	if res.Coverage() > 0.9 {
		t.Errorf("coverage = %.3f on a heavily aliased table, want gating", res.Coverage())
	}
	if res.Confident.Predictions > 0 &&
		res.Confident.Accuracy() < res.All.Accuracy() {
		t.Errorf("confident accuracy %.3f below raw accuracy %.3f",
			res.Confident.Accuracy(), res.All.Accuracy())
	}
}

func TestHashTagDoesNotPerturbPredictions(t *testing.T) {
	// Wrapping must not change what is predicted, only add the signal.
	tr := mixedTrace(2000, 21)
	plain := Run(NewDFCM(8, 10), trace.NewReader(tr))
	wrapped := Run(NewHashTag(NewDFCM(8, 10), 6, 7), trace.NewReader(tr))
	if plain != wrapped {
		t.Errorf("wrapped result %+v != plain %+v", wrapped, plain)
	}
}

func TestHashTagWorksOnFCMAndDFCM(t *testing.T) {
	var _ ConfidentPredictor = NewHashTag(NewFCM(4, 8), 4, 7)
	var _ ConfidentPredictor = NewHashTag(NewDFCM(4, 8), 4, 7)
	var _ ConfidentPredictor = NewCounterConfidence(NewStride(4), 4, 7, 4)
}

func TestHashTagPanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewHashTag(NewLastValue(4), 4, 7) }, // not two-level
		func() { NewHashTag(NewFCM(4, 8), 0, 7) },    // zero tag
		func() { NewHashTag(NewFCM(4, 8), 17, 7) },   // too wide
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("no panic")
				}
			}()
			f()
		}()
	}
}

func TestConfidenceSizeAccounting(t *testing.T) {
	base := NewDFCM(8, 10)
	ht := NewHashTag(NewDFCM(8, 10), 6, 7)
	// + 2^8 second histories of 10 bits + 2^10 tags of 6 bits.
	want := base.SizeBits() + 256*10 + 1024*6
	if got := ht.SizeBits(); got != want {
		t.Errorf("HashTag SizeBits = %d, want %d", got, want)
	}
	cc := NewCounterConfidence(NewStride(8), 8, 15, 8)
	want = NewStride(8).SizeBits() + 256*4
	if got := cc.SizeBits(); got != want {
		t.Errorf("CounterConfidence SizeBits = %d, want %d", got, want)
	}
}

func TestHistoryFeederContracts(t *testing.T) {
	f := NewFCM(6, 8)
	if f.L1Entries() != 64 || f.L1Index(0x104) != 1 {
		t.Error("FCM feeder geometry wrong")
	}
	if f.HistoryInput(0x40, 123) != 123 {
		t.Error("FCM history input should be the value")
	}
	d := NewDFCM(6, 8)
	d.Update(0x40, 100)
	if d.HistoryInput(0x40, 103) != 3 {
		t.Error("DFCM history input should be the stride")
	}
	if d.HistoryInput(0x40, 97) != uint64(^uint32(0)-2) { // -3 as uint32
		t.Error("DFCM negative stride should wrap as uint32")
	}
}

func TestCombinedConfidence(t *testing.T) {
	mk := func() (*Combined, Predictor) {
		p := NewDFCM(10, 10)
		return NewCombined(p,
			NewHashTag(p, 8, 3),
			NewCounterConfidence(p, 10, 15, 4)), p
	}
	// Mixed workload: predictable stride + noise instruction.
	var tr trace.Trace
	noise := uint32(12345)
	for i := 0; i < 3000; i++ {
		tr = append(tr, trace.Event{PC: 0x100, Value: uint32(i * 8)})
		noise = noise*1664525 + 1013904223
		tr = append(tr, trace.Event{PC: 0x104, Value: noise})
	}
	comb, _ := mk()
	res := RunConfident(comb, trace.NewReader(tr))
	if res.Confident.Accuracy() < 0.99 {
		t.Errorf("combined confident accuracy = %.3f", res.Confident.Accuracy())
	}
	if res.Coverage() < 0.3 || res.Coverage() > 0.6 {
		t.Errorf("combined coverage = %.3f, expected ~0.5", res.Coverage())
	}

	// The AND must never exceed either component's coverage.
	p2 := NewDFCM(10, 10)
	tagOnly := RunConfident(NewHashTag(p2, 8, 3), trace.NewReader(tr))
	if res.Coverage() > tagOnly.Coverage()+1e-9 {
		t.Errorf("combined coverage %.3f exceeds tag coverage %.3f",
			res.Coverage(), tagOnly.Coverage())
	}

	// Predictions must be identical to the bare predictor's.
	comb2, _ := mk()
	plain := Run(NewDFCM(10, 10), trace.NewReader(tr))
	wrapped := Run(comb2, trace.NewReader(tr))
	if plain != wrapped {
		t.Errorf("combined wrapper changed predictions: %+v vs %+v", wrapped, plain)
	}
}

func TestCombinedPanicsOnMismatchedPredictors(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic for estimators over different predictors")
		}
	}()
	a, b := NewDFCM(6, 8), NewDFCM(6, 8)
	NewCombined(a, NewHashTag(a, 4, 3), NewCounterConfidence(b, 6, 15, 4))
}

func TestConfidenceResultCoverage(t *testing.T) {
	var r ConfidenceResult
	if r.Coverage() != 0 {
		t.Error("empty coverage should be 0")
	}
	r.All.Predictions = 10
	r.Confident.Predictions = 4
	if r.Coverage() != 0.4 {
		t.Errorf("coverage = %v", r.Coverage())
	}
}
