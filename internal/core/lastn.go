package core

import (
	"encoding/binary"
	"fmt"
)

// lastNSlot is one stored candidate value with its selection counter.
type lastNSlot struct {
	value uint32
	conf  uint8 // 2-bit saturating selection counter
	age   uint8 // insertion order; higher = more recent
}

// LastN is the last-n value predictor of Burtscher and Zorn
// ("Exploring Last n Value Prediction", PACT 1999), cited by the
// paper as related work [2]. Each entry holds the n most useful
// recent values with small selection counters; the prediction is the
// value with the highest counter (most recent on ties). It covers
// alternating and small-period patterns the last-value predictor
// misses, without a second table level.
type LastN struct {
	bits uint
	n    int
	// table's rows all alias one contiguous backing slice, kept so
	// Reset can clear every slot with a single word-level memclr
	// instead of a per-row loop.
	table   [][]lastNSlot
	backing []lastNSlot
	clock   uint8
}

const lastNConfMax = 3

// NewLastN returns a last-n predictor with 2^bits entries of n values
// each. It panics if n is not in 1..8.
func NewLastN(bits uint, n int) *LastN {
	checkBits("last-n", bits, 30)
	if n < 1 || n > 8 {
		panic("core: last-n width out of range [1,8]")
	}
	t := make([][]lastNSlot, 1<<bits)
	backing := make([]lastNSlot, (1<<bits)*n)
	for i := range t {
		t[i] = backing[i*n : (i+1)*n : (i+1)*n]
	}
	return &LastN{bits: bits, n: n, table: t, backing: backing}
}

// best returns the index of the slot Predict would use.
func (p *LastN) best(slots []lastNSlot) int {
	bi := 0
	for i := 1; i < len(slots); i++ {
		s, b := &slots[i], &slots[bi]
		if s.conf > b.conf || (s.conf == b.conf && s.age > b.age) {
			bi = i
		}
	}
	return bi
}

// Predict returns the stored value with the highest selection counter.
func (p *LastN) Predict(pc uint32) uint32 {
	slots := p.table[pcIndex(pc, p.bits)]
	return slots[p.best(slots)].value
}

// Update reinforces a matching stored value, or replaces the weakest
// slot with the new value.
func (p *LastN) Update(pc, value uint32) {
	slots := p.table[pcIndex(pc, p.bits)]
	p.clock++
	for i := range slots {
		if slots[i].value == value {
			if slots[i].conf < lastNConfMax {
				slots[i].conf++
			}
			slots[i].age = p.clock
			// Decay the competitors so a dominant value outranks an
			// occasional interloper even right after the glitch.
			for j := range slots {
				if j != i && slots[j].conf > 0 {
					slots[j].conf--
				}
			}
			return
		}
	}
	// Miss: evict the lowest-confidence slot (oldest on ties).
	vi := 0
	for i := 1; i < len(slots); i++ {
		s, v := &slots[i], &slots[vi]
		if s.conf < v.conf || (s.conf == v.conf && s.age < v.age) {
			vi = i
		}
	}
	slots[vi] = lastNSlot{value: value, conf: 1, age: p.clock}
}

// Reset implements Resetter: one contiguous clear of the shared
// backing array (every table row aliases it) instead of a per-row
// loop.
func (p *LastN) Reset() {
	clear(p.backing)
	p.clock = 0
}

// lastNSlotBytes is one serialized lastNSlot: value, conf, age.
const lastNSlotBytes = 4 + 1 + 1

// AppendState implements Snapshotter: the insertion clock followed by
// every slot of every entry.
func (p *LastN) AppendState(b []byte) []byte {
	b = append(b, p.clock)
	for _, slots := range p.table {
		for i := range slots {
			s := &slots[i]
			b = binary.BigEndian.AppendUint32(b, s.value)
			b = append(b, s.conf, s.age)
		}
	}
	return b
}

// RestoreState implements Snapshotter.
func (p *LastN) RestoreState(data []byte) error {
	if len(data) < 1 {
		return stateSizeErr("last-n", 1, len(data))
	}
	p.clock = data[0]
	want := 1 + lastNSlotBytes*p.n*len(p.table)
	if len(data) != want {
		return stateSizeErr("last-n", want, len(data))
	}
	rows := data[1:]
	off := 0
	for _, slots := range p.table {
		for i := range slots {
			row := rows[off:]
			conf := row[4]
			if conf > lastNConfMax {
				return fmt.Errorf("%w: last-n confidence %d exceeds %d", ErrState, conf, lastNConfMax)
			}
			slots[i] = lastNSlot{
				value: binary.BigEndian.Uint32(row),
				conf:  conf,
				age:   row[5],
			}
			off += lastNSlotBytes
		}
	}
	return nil
}

// StateTables implements StateTabler.
func (p *LastN) StateTables() []TableInfo {
	live := 0
	for _, slots := range p.table {
		for i := range slots {
			if slots[i] != (lastNSlot{}) {
				live++
			}
		}
	}
	return []TableInfo{{Name: "slots", Entries: p.n * len(p.table), Live: live}}
}

// Name implements Predictor.
func (p *LastN) Name() string { return fmt.Sprintf("last%d-2^%d", p.n, p.bits) }

// SizeBits implements Predictor: n values of 32 bits plus a 2-bit
// counter each per entry (ages are bookkeeping, not stored bits in
// the hardware proposal's sense — B&Z track recency implicitly).
func (p *LastN) SizeBits() int64 {
	return int64(len(p.table)) * int64(p.n) * (32 + 2)
}
