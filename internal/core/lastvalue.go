package core

import (
	"encoding/binary"
	"fmt"
)

// LastValue is the last value predictor (Lipasti): the next value
// produced by an instruction is predicted to equal the previous one.
// It excels on constant patterns and is the cheapest table-based
// predictor.
type LastValue struct {
	bits  uint
	table []uint32
}

// NewLastValue returns a last value predictor with 2^bits entries.
//
// Size accounting: 2^bits entries × 32 bits (one stored value each).
func NewLastValue(bits uint) *LastValue {
	checkBits("last-value", bits, 30)
	return &LastValue{bits: bits, table: make([]uint32, 1<<bits)}
}

// Predict returns the value last produced by the instruction at pc
// (or by whichever instruction aliases to its entry).
func (p *LastValue) Predict(pc uint32) uint32 {
	return p.table[pcIndex(pc, p.bits)]
}

// Update stores the produced value.
func (p *LastValue) Update(pc, value uint32) {
	p.table[pcIndex(pc, p.bits)] = value
}

// Reset implements Resetter.
func (p *LastValue) Reset() { clear(p.table) }

// AppendState implements Snapshotter: the value table, 4 bytes per
// entry.
func (p *LastValue) AppendState(b []byte) []byte {
	for _, v := range p.table {
		b = binary.BigEndian.AppendUint32(b, v)
	}
	return b
}

// RestoreState implements Snapshotter.
func (p *LastValue) RestoreState(data []byte) error {
	if len(data) != 4*len(p.table) {
		return stateSizeErr("last-value", 4*len(p.table), len(data))
	}
	for i := range p.table {
		p.table[i] = binary.BigEndian.Uint32(data[4*i:])
	}
	return nil
}

// StateTables implements StateTabler.
func (p *LastValue) StateTables() []TableInfo {
	live := 0
	for _, v := range p.table {
		if v != 0 {
			live++
		}
	}
	return []TableInfo{{Name: "values", Entries: len(p.table), Live: live}}
}

// Name implements Predictor.
func (p *LastValue) Name() string { return fmt.Sprintf("lvp-2^%d", p.bits) }

// SizeBits implements Predictor.
func (p *LastValue) SizeBits() int64 { return int64(len(p.table)) * 32 }
