package core

import (
	"math/rand"
	"testing"
)

// predictorZoo builds one instance of every predictor in the package.
func predictorZoo() []Predictor {
	dfcmForCombined := NewDFCM(8, 10)
	return []Predictor{
		NewLastValue(8),
		NewLastN(8, 4),
		NewStride(8),
		NewTwoDelta(8),
		NewFCM(8, 10),
		NewDFCM(8, 10),
		NewDFCMWidth(8, 10, 8),
		NewMetaHybrid(NewStride(8), NewFCM(8, 10), 8),
		NewPerfectHybrid(NewStride(8), NewDFCM(8, 10)),
		NewDelayed(NewDFCM(8, 10), 16),
		NewCounterConfidence(NewStride(8), 8, 15, 8),
		NewHashTag(NewDFCM(8, 10), 6, 3),
		NewCombined(dfcmForCombined,
			NewHashTag(dfcmForCombined, 6, 3),
			NewCounterConfidence(dfcmForCombined, 8, 15, 8)),
		NewClassified(8, 16, 8, NewLastValue(8), NewStride(8)),
	}
}

// TestPredictIsPure verifies the core interface contract that hybrid
// and confidence wrappers rely on: Predict must not change predictor
// state, no matter how often or in what order it is called.
//
// The Delayed wrapper is the documented exception — its Predict
// applies matured updates — so it is checked only for idempotence of
// repeated Predict calls at the same point.
func TestPredictIsPure(t *testing.T) {
	tr := mixedTrace(1500, 99)
	for _, mkIdx := range []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13} {
		zooA := predictorZoo()
		zooB := predictorZoo()
		a, b := zooA[mkIdx], zooB[mkIdx]
		rng := rand.New(rand.NewSource(42))
		var resA, resB Result
		for _, e := range tr {
			// a: the clean reference (scorers handled uniformly).
			resA.Predictions++
			if sa, ok := a.(Scorer); ok {
				if sa.Score(e.PC, e.Value) {
					resA.Correct++
				}
			} else {
				if a.Predict(e.PC) == e.Value {
					resA.Correct++
				}
				a.Update(e.PC, e.Value)
			}
			// b: same, but with gratuitous extra Predict calls at
			// random PCs sprinkled in.
			for k := rng.Intn(3); k > 0; k-- {
				b.Predict(uint32(0x1000 + 4*rng.Intn(64)))
			}
			resB.Predictions++
			if sb, ok := b.(Scorer); ok {
				if sb.Score(e.PC, e.Value) {
					resB.Correct++
				}
			} else {
				if b.Predict(e.PC) == e.Value {
					resB.Correct++
				}
				b.Update(e.PC, e.Value)
			}
		}
		if _, isDelayed := a.(*Delayed); isDelayed {
			continue // extra Predicts legitimately apply pending updates earlier
		}
		if resA != resB {
			t.Errorf("%s: extra Predict calls changed results: %+v vs %+v",
				a.Name(), resB, resA)
		}
	}
}

// TestRepeatedPredictStable checks plain double-call idempotence for
// every predictor including Delayed.
func TestRepeatedPredictStable(t *testing.T) {
	for _, p := range predictorZoo() {
		p.Update(0x40, 123)
		p.Update(0x40, 456)
		first := p.Predict(0x40)
		for i := 0; i < 5; i++ {
			if got := p.Predict(0x40); got != first {
				t.Errorf("%s: Predict unstable: %d then %d", p.Name(), first, got)
			}
		}
	}
}

// TestZooNamesAndSizes sanity-checks the whole zoo's metadata.
func TestZooNamesAndSizes(t *testing.T) {
	seen := map[string]bool{}
	for _, p := range predictorZoo() {
		if p.Name() == "" {
			t.Error("empty name")
		}
		if seen[p.Name()] {
			t.Errorf("duplicate name %q", p.Name())
		}
		seen[p.Name()] = true
		if p.SizeBits() <= 0 {
			t.Errorf("%s: non-positive size", p.Name())
		}
	}
}
