package core

import (
	"testing"

	"repro/internal/trace"
)

// Per-operation predictor microbenchmarks. The root bench_test.go
// benchmarks whole paper experiments; these isolate one Predict+Update
// round trip — the hot path of the internal/serve engine — so serving
// throughput regressions can be traced to a specific predictor.
//
// Run with: go test -bench=PredictUpdate ./internal/core

// benchTrace is a deterministic mixed loop body (constants, strides,
// repeating contexts, xorshift noise) over 16 PCs, the same shape the
// root benchmarks use via internal/workload.
func benchTrace(n int) trace.Trace {
	t := make(trace.Trace, 0, n)
	pattern := []uint32{9, 2, 25, 7, 1, 130, 4, 66}
	rnd := uint32(88172645)
	for i := 0; len(t) < n; i++ {
		pc := uint32(0x1000)
		for c := 0; c < 4; c++ {
			t = append(t, trace.Event{PC: pc, Value: uint32(7 + c*13)})
			pc += 4
		}
		for s := 0; s < 6; s++ {
			t = append(t, trace.Event{PC: pc, Value: uint32(s*100000) + uint32(i)*uint32(2*s+1)})
			pc += 4
		}
		for y := 0; y < 4; y++ {
			t = append(t, trace.Event{PC: pc, Value: pattern[(i+y)%len(pattern)]})
			pc += 4
		}
		for r := 0; r < 2; r++ {
			rnd ^= rnd << 13
			rnd ^= rnd >> 17
			rnd ^= rnd << 5
			t = append(t, trace.Event{PC: pc, Value: rnd & 0xffff})
			pc += 4
		}
	}
	return t[:n]
}

func benchPredictUpdate(b *testing.B, p Predictor) {
	b.Helper()
	events := benchTrace(4096)
	b.ReportAllocs()
	b.ResetTimer()
	hits := 0
	for i := 0; i < b.N; i++ {
		e := events[i%len(events)]
		if p.Predict(e.PC) == e.Value {
			hits++
		}
		p.Update(e.PC, e.Value)
	}
	_ = hits
}

func BenchmarkLastValue_PredictUpdate(b *testing.B) { benchPredictUpdate(b, NewLastValue(14)) }
func BenchmarkStride_PredictUpdate(b *testing.B)    { benchPredictUpdate(b, NewStride(14)) }
func BenchmarkTwoDelta_PredictUpdate(b *testing.B)  { benchPredictUpdate(b, NewTwoDelta(14)) }
func BenchmarkFCM_PredictUpdate(b *testing.B)       { benchPredictUpdate(b, NewFCM(14, 12)) }
func BenchmarkDFCM_PredictUpdate(b *testing.B)      { benchPredictUpdate(b, NewDFCM(14, 12)) }
func BenchmarkHybrid_PredictUpdate(b *testing.B) {
	benchPredictUpdate(b, NewMetaHybrid(NewStride(14), NewDFCM(14, 12), 14))
}

func BenchmarkPerfectHybrid_Score(b *testing.B) {
	p := NewPerfectHybrid(NewStride(14), NewFCM(14, 12))
	events := benchTrace(4096)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := events[i%len(events)]
		p.Score(e.PC, e.Value)
	}
}

func BenchmarkReset(b *testing.B) {
	p := NewDFCM(14, 12)
	Run(p, trace.NewReader(benchTrace(4096)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Reset()
	}
}
