package core

import (
	"errors"
	"testing"

	"repro/internal/trace"
)

// TestSnapshotResumeMatchesUninterrupted is the state-level half of the
// checkpoint equivalence property (the file-format half lives in
// internal/snapshot): train a predictor for k events, export its state,
// import it into a fresh instance from the same factory, and drive both
// onward — every subsequent prediction must be identical, exactly as if
// the run had never been interrupted. The predictor inventory is the
// same one the reset-equals-fresh suite uses, so every Resetter is also
// exercised as a Snapshotter.
func TestSnapshotResumeMatchesUninterrupted(t *testing.T) {
	events := trainEvents(3000)
	const cut = 1700 // mid-stream, after every table has been dirtied
	for name, mk := range resettables() {
		t.Run(name, func(t *testing.T) {
			p := mk()
			s, ok := p.(Snapshotter)
			if !ok {
				t.Fatalf("%s does not implement Snapshotter", p.Name())
			}
			Run(p, trace.NewReader(events[:cut]))

			state := s.AppendState(nil)
			restored := mk()
			if err := restored.(Snapshotter).RestoreState(state); err != nil {
				t.Fatalf("RestoreState: %v", err)
			}

			for i, e := range events[cut:] {
				got, want := restored.Predict(e.PC), p.Predict(e.PC)
				if got != want {
					t.Fatalf("event %d: restored Predict(%#x) = %d, uninterrupted = %d",
						cut+i, e.PC, got, want)
				}
				p.Update(e.PC, e.Value)
				restored.Update(e.PC, e.Value)
			}
		})
	}
}

// TestSnapshotStateRoundTripStable: exporting restored state must
// reproduce the original bytes — AppendState∘RestoreState is the
// identity on valid states, so repeated checkpoint/restore cycles
// cannot drift.
func TestSnapshotStateRoundTripStable(t *testing.T) {
	events := trainEvents(2000)
	for name, mk := range resettables() {
		t.Run(name, func(t *testing.T) {
			p := mk().(Snapshotter)
			Run(p, trace.NewReader(events))
			state := p.AppendState(nil)

			restored := mk().(Snapshotter)
			if err := restored.RestoreState(state); err != nil {
				t.Fatalf("RestoreState: %v", err)
			}
			again := restored.AppendState(nil)
			if len(again) != len(state) {
				t.Fatalf("re-exported state is %d bytes, want %d", len(again), len(state))
			}
			for i := range state {
				if state[i] != again[i] {
					t.Fatalf("re-exported state diverges at byte %d", i)
				}
			}
		})
	}
}

// TestRestoreStateRejectsMalformed: truncated, padded and corrupted
// state blobs must error (wrapping ErrState), never panic — the bytes
// may arrive from disk or the network.
func TestRestoreStateRejectsMalformed(t *testing.T) {
	events := trainEvents(1500)
	for name, mk := range resettables() {
		t.Run(name, func(t *testing.T) {
			p := mk().(Snapshotter)
			Run(p, trace.NewReader(events))
			state := p.AppendState(nil)

			for _, tc := range []struct {
				label string
				data  []byte
			}{
				{"empty", nil},
				{"truncated", state[:len(state)/2]},
				{"padded", append(append([]byte{}, state...), 0xAA)},
			} {
				if err := mk().(Snapshotter).RestoreState(tc.data); err == nil {
					t.Errorf("%s state accepted", tc.label)
				} else if !errors.Is(err, ErrState) {
					t.Errorf("%s state error %v does not wrap ErrState", tc.label, err)
				}
			}
		})
	}
}

// TestRestoreStateRejectsHostileIndices: a state blob carrying a
// level-2 index past the table end must be rejected at restore time,
// not dereferenced at the next Predict.
func TestRestoreStateRejectsHostileIndices(t *testing.T) {
	fcm := NewFCM(4, 6)
	state := fcm.AppendState(nil)
	state[0] = 0xFF // first l1 history: huge big-endian value
	if err := NewFCM(4, 6).RestoreState(state); err == nil {
		t.Error("FCM accepted an out-of-range level-2 index")
	}

	dfcm := NewDFCM(4, 6)
	dstate := dfcm.AppendState(nil)
	dstate[4] = 0xFF // first l1 hist (after the 4-byte last value)
	if err := NewDFCM(4, 6).RestoreState(dstate); err == nil {
		t.Error("DFCM accepted an out-of-range level-2 index")
	}

	narrow := NewDFCMWidth(4, 8, 4)
	wstate := narrow.AppendState(nil)
	wstate[len(wstate)-1] = 0xFF // last l2 stride: wider than 4 bits
	if err := NewDFCMWidth(4, 8, 4).RestoreState(wstate); err == nil {
		t.Error("DFCM accepted a stride wider than its configured width")
	}
}

// TestStateTablesLiveCounts: live counts start at zero, grow under
// training, and survive a state round trip.
func TestStateTablesLiveCounts(t *testing.T) {
	events := trainEvents(1000)
	for name, mk := range resettables() {
		t.Run(name, func(t *testing.T) {
			p := mk()
			st, ok := p.(StateTabler)
			if !ok {
				t.Fatalf("%s does not implement StateTabler", p.Name())
			}
			for _, ti := range st.StateTables() {
				if ti.Live != 0 {
					t.Fatalf("fresh table %s reports %d live entries", ti.Name, ti.Live)
				}
			}
			Run(p, trace.NewReader(events))
			totalLive := 0
			for _, ti := range st.StateTables() {
				if ti.Live > ti.Entries {
					t.Fatalf("table %s: %d live of %d entries", ti.Name, ti.Live, ti.Entries)
				}
				totalLive += ti.Live
			}
			if totalLive == 0 {
				t.Fatal("training left no live entries")
			}

			restored := mk()
			if err := restored.(Snapshotter).RestoreState(p.(Snapshotter).AppendState(nil)); err != nil {
				t.Fatal(err)
			}
			got, want := restored.(StateTabler).StateTables(), st.StateTables()
			if len(got) != len(want) {
				t.Fatalf("restored reports %d tables, want %d", len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("table %d: restored %+v, want %+v", i, got[i], want[i])
				}
			}
		})
	}
}

// TestCombinedSnapshotSharedPredictorOnce: Combined's state embeds the
// shared predictor exactly once (via the tag block); restoring must
// rebuild all three views consistently.
func TestCombinedSnapshotSharedPredictorOnce(t *testing.T) {
	mk := func() (*Combined, *DFCM) {
		p := NewDFCM(6, 8)
		return NewCombined(p, NewHashTag(p, 6, 3), NewCounterConfidence(p, 6, 7, 4)), p
	}
	c, _ := mk()
	events := trainEvents(1200)
	RunConfident(c, trace.NewReader(events))

	restored, rp := mk()
	if err := restored.RestoreState(c.AppendState(nil)); err != nil {
		t.Fatal(err)
	}
	for _, e := range events[:200] {
		gv, gc := restored.PredictConfident(e.PC)
		wv, wc := c.PredictConfident(e.PC)
		if gv != wv || gc != wc {
			t.Fatalf("PredictConfident(%#x) = (%d,%v), want (%d,%v)", e.PC, gv, gc, wv, wc)
		}
		if rp.Predict(e.PC) != wv {
			t.Fatalf("shared predictor view diverged at %#x", e.PC)
		}
		c.Update(e.PC, e.Value)
		restored.Update(e.PC, e.Value)
	}
}
