package core

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/hash"
)

// TAGE is a tagged geometric-history value predictor (VTAGE): the
// TAGE idea of branch prediction (Seznec & Michaud) transplanted onto
// the DFCM paper's differential framing. A DFCM-style base component
// keeps, per static instruction, the last value and a fallback stride;
// on top of it sit N tagged tables whose indices and partial tags mix
// PC entropy with folded registers over a shared global stride
// history, at geometrically increasing history lengths. Prediction is
// lastValue + stride, where the stride comes from the matching tagged
// entry with the longest history (the provider) — or, when the
// provider has never been confirmed, from the next-longest match (the
// altpred) — and from the base when nothing matches.
//
// Tagged entries carry a 2-bit stride confidence and a 2-bit
// usefulness counter. Usefulness trains only on decisive predictions
// (provider and altpred disagreed); a misprediction allocates fresh
// entries in up to tageMaxAlloc longer-history tables, stealing only
// u==0 victims, and decays the u counters of the candidate set when
// every victim is useful — the allocation throttle that keeps a
// thrashing workload from wiping the predictor. All u counters are
// additionally aged every tageAgePeriod updates (alternately clearing
// the high and low bit), so long-dead entries eventually free up.
//
// Everything is deterministic: allocation starts right after the
// provider and skips one table per grant instead of using the RNG of
// hardware TAGE implementations, so replays and the engine's
// equivalence oracle stay bit-exact.
//
// Like DFCM, the tagged tables and the base store strides truncated to
// strideBits and sign-extend them back on use, so narrow-stride
// configurations shrink the dominant storage term.
type TAGE struct {
	l1bits     uint
	l2bits     uint // log2 entries per tagged table
	tagBits    uint
	strideBits uint
	nTables    int
	histLens   []uint // per-table history length in events, non-decreasing

	l1mask     uint32
	idxMask    uint32
	tagMask    uint32
	strideMask uint32
	extShift   uint

	// Folded-history geometry, three registers per table (index, tag
	// low, tag high), immutable after construction. foldLen is the
	// table's history window in bits, foldWidth the compressed register
	// width, foldOut the precomputed foldLen % foldWidth of the
	// outgoing-bit cancellation.
	foldWidth []uint
	foldLen   []uint
	foldOut   []uint

	// Base component (the order-0 differential predictor).
	last    []uint32 // last value per static instruction
	bstride []uint32 // fallback stride, truncated to strideBits

	// Tagged tables, structure-of-arrays: table t entry i lives at
	// t<<l2bits + i in each slice.
	tags    []uint32 // partial tags, tagBits wide
	strides []uint32 // predicted strides, truncated to strideBits
	conf    []uint8  // 2-bit stride confidence
	ubits   []uint8  // 2-bit usefulness

	// Global stride history: tageBitsPerEvent bits of each update's
	// folded stride, in a ring of one bit per byte. tick counts
	// updates; the write position and the folded registers are derived
	// from (ring, tick) and rebuilt on restore rather than serialized.
	ring     []uint8
	ringMask uint32
	tick     uint64

	fold []uint32 // derived: 3 registers per table (idx, tag0, tag1)
	pos  uint32   // derived: next ring write position
}

// VTAGE geometry limits and policy constants.
const (
	// TAGEMaxTables bounds the tagged-table count a spec may request.
	TAGEMaxTables = 12
	// TAGEMaxHist bounds the longest history length in events.
	TAGEMaxHist = 128

	// tageBitsPerEvent is how many bits of each update's folded stride
	// enter the global history; a table with history length L sees a
	// window of L*tageBitsPerEvent bits.
	tageBitsPerEvent = 4
	// tageConfMax / tageUMax are the saturation points of the 2-bit
	// per-entry counters.
	tageConfMax = 3
	tageUMax    = 3
	// tageMaxAlloc caps how many tables a single misprediction may
	// allocate into.
	tageMaxAlloc = 2
	// tageAgePeriod is the u-counter aging interval in updates:
	// every period, one of the two u bits (alternating) is cleared
	// across all tables.
	tageAgePeriod = 1 << 18
)

// TAGEHistorySeries returns the n geometrically spaced history lengths
// between hmin and hmax (in events), endpoints exact, the series
// non-decreasing. n == 1 collapses to the single longest history;
// hmin == hmax yields the degenerate equal-length series.
func TAGEHistorySeries(n int, hmin, hmax uint) []uint {
	out := make([]uint, n)
	if n == 1 {
		out[0] = hmax
		return out
	}
	ratio := math.Pow(float64(hmax)/float64(hmin), 1/float64(n-1))
	l := float64(hmin)
	for i := range out {
		v := uint(math.Round(l))
		switch {
		case i == 0:
			v = hmin
		case i == n-1:
			v = hmax
		case v < out[i-1]:
			v = out[i-1]
		case v > hmax:
			v = hmax
		}
		out[i] = v
		l *= ratio
	}
	return out
}

// NewTAGE returns a VTAGE with a 2^l1bits-entry base, nTables tagged
// tables of 2^l2bits entries each, tagBits-wide partial tags,
// strideBits-wide stored strides, and history lengths geometrically
// spaced from hmin to hmax events. It panics on out-of-range geometry
// (programming errors); Spec.New validates the same ranges with errors
// for flag- and network-borne specs.
func NewTAGE(l1bits, l2bits, strideBits uint, nTables int, tagBits, hmin, hmax uint) *TAGE {
	checkBits("TAGE base", l1bits, 30)
	checkBits("TAGE tagged", l2bits, 30)
	if strideBits == 0 || strideBits > 32 {
		panic(fmt.Sprintf("core: TAGE stride width %d out of range [1,32]", strideBits))
	}
	if nTables < 1 || nTables > TAGEMaxTables {
		panic(fmt.Sprintf("core: TAGE table count %d out of range [1,%d]", nTables, TAGEMaxTables))
	}
	if tagBits < 4 || tagBits > 16 {
		panic(fmt.Sprintf("core: TAGE tag width %d out of range [4,16]", tagBits))
	}
	if hmin < 1 || hmax < hmin || hmax > TAGEMaxHist {
		panic(fmt.Sprintf("core: TAGE history series %d..%d out of range [1,%d]", hmin, hmax, TAGEMaxHist))
	}
	hists := TAGEHistorySeries(nTables, hmin, hmax)

	// The ring must out-live the longest fold window: one bit per byte,
	// power-of-two sized so the write position wraps with a mask.
	maxBits := hmax * tageBitsPerEvent
	ringLen := uint32(1)
	for ringLen <= uint32(maxBits) {
		ringLen <<= 1
	}

	p := &TAGE{
		l1bits:     l1bits,
		l2bits:     l2bits,
		tagBits:    tagBits,
		strideBits: strideBits,
		nTables:    nTables,
		histLens:   hists,
		l1mask:     uint32(1<<l1bits) - 1,
		idxMask:    uint32(1<<l2bits) - 1,
		tagMask:    uint32(1<<tagBits) - 1,
		strideMask: uint32((uint64(1) << strideBits) - 1),
		extShift:   32 - strideBits,
		foldWidth:  make([]uint, 3*nTables),
		foldLen:    make([]uint, 3*nTables),
		foldOut:    make([]uint, 3*nTables),
		last:       make([]uint32, 1<<l1bits),
		bstride:    make([]uint32, 1<<l1bits),
		tags:       make([]uint32, nTables<<l2bits),
		strides:    make([]uint32, nTables<<l2bits),
		conf:       make([]uint8, nTables<<l2bits),
		ubits:      make([]uint8, nTables<<l2bits),
		ring:       make([]uint8, ringLen),
		ringMask:   ringLen - 1,
		fold:       make([]uint32, 3*nTables),
	}
	for t := 0; t < nTables; t++ {
		bits := hists[t] * tageBitsPerEvent
		// Index register folds to l2bits; the two tag registers fold to
		// tagBits and tagBits-1, the classic staggered pair that keeps
		// tag aliasing from tracking index aliasing.
		for r, w := range [3]uint{l2bits, tagBits, tagBits - 1} {
			if w == 0 {
				w = 1 // l2bits can legally be tiny; a 0-width register cannot fold
			}
			i := 3*t + r
			p.foldWidth[i] = w
			p.foldLen[i] = bits
			p.foldOut[i] = bits % w
		}
	}
	return p
}

// truncate keeps the low strideBits bits of a stride as stored in the
// tagged and base tables.
func (p *TAGE) truncate(stride uint32) uint32 { return stride & p.strideMask }

// extend sign-extends a stored stride back to 32 bits (identity at
// full width, like DFCM's pair).
func (p *TAGE) extend(stored uint32) uint32 {
	return uint32(int32(stored<<p.extShift) >> p.extShift)
}

// tableIndex mixes PC entropy with the table's folded index register.
// The per-table extra shift decorrelates the tables' index streams so
// one hot PC does not collide at the same slot in every table.
func (p *TAGE) tableIndex(t int, pcw uint32) uint32 {
	return (pcw ^ (pcw >> (uint(t) + 1)) ^ p.fold[3*t]) & p.idxMask
}

// tableTag builds the partial tag from XOR'd PC entropy and the two
// staggered folded tag registers.
func (p *TAGE) tableTag(t int, pcw uint32) uint32 {
	return (pcw ^ (pcw >> p.tagBits) ^ p.fold[3*t+1] ^ (p.fold[3*t+2] << 1)) & p.tagMask
}

// pushHistory folds one update's history bits into the ring and all
// 3*nTables folded registers. Each bit advances every register by the
// classic TAGE recurrence: shift in the new bit, cancel the bit
// leaving the window at its precomputed fold position, wrap the
// carry. Registers therefore always equal the from-scratch fold of
// their window (pinned by TestTAGEFoldedHistoryMatchesScratch).
func (p *TAGE) pushHistory(bits uint32) {
	n3 := 3 * p.nTables
	for b := uint(0); b < tageBitsPerEvent; b++ {
		in := (bits >> b) & 1
		pos := p.pos
		for r := 0; r < n3; r++ {
			out := uint32(p.ring[(pos-uint32(p.foldLen[r]))&p.ringMask])
			w := p.foldWidth[r]
			c := p.fold[r]
			c = (c << 1) | in
			c ^= out << p.foldOut[r]
			c ^= c >> w
			c &= uint32(1)<<w - 1
			p.fold[r] = c
		}
		p.ring[pos] = uint8(in)
		p.pos = (pos + 1) & p.ringMask
	}
}

// rebuildFolds recomputes the derived write position and folded
// registers from the ring and update count — the from-scratch fold the
// incremental pushHistory recurrence maintains. Restore and Reset use
// it so the derived registers never need to be serialized or trusted.
func (p *TAGE) rebuildFolds() {
	bits := p.tick * tageBitsPerEvent
	p.pos = uint32(bits) & p.ringMask
	for r := range p.fold {
		w := p.foldWidth[r]
		var c uint32
		for j := uint64(0); j < uint64(p.foldLen[r]) && j < bits; j++ {
			c ^= uint32(p.ring[uint32(bits-1-j)&p.ringMask]) << (uint(j) % w)
		}
		p.fold[r] = c
	}
}

// Predict returns the base last value plus the stride of the
// longest-history tag match; an unconfirmed provider (conf 0) defers
// to the alternate prediction, and no match at all falls back to the
// base stride.
func (p *TAGE) Predict(pc uint32) uint32 {
	pcw := pc >> 2
	bi := pcw & p.l1mask
	stride := p.extend(p.bstride[bi])
	altStride := stride
	provConf := uint8(0)
	found := 0
	for t := p.nTables - 1; t >= 0; t-- {
		e := uint32(t)<<p.l2bits + p.tableIndex(t, pcw)
		if p.tags[e] == p.tableTag(t, pcw) {
			if found == 0 {
				stride = p.extend(p.strides[e])
				provConf = p.conf[e]
				found = 1
			} else {
				altStride = p.extend(p.strides[e])
				break
			}
		}
	}
	if found != 0 && provConf == 0 {
		stride = altStride
	}
	return p.last[bi] + stride
}

// Update trains the provider's stride confidence and usefulness,
// allocates into longer-history tables on a misprediction (throttled
// u==0 victim selection), refreshes the base component, folds the new
// stride into the global history, and ages the u counters
// periodically.
func (p *TAGE) Update(pc, value uint32) {
	pcw := pc >> 2
	bi := pcw & p.l1mask
	actual := value - p.last[bi]

	// Recompute what Predict saw: indices, tags, provider, altpred —
	// all against the pre-update folded history.
	var idxs, tgs [TAGEMaxTables]uint32
	for t := 0; t < p.nTables; t++ {
		idxs[t] = p.tableIndex(t, pcw)
		tgs[t] = p.tableTag(t, pcw)
	}
	provider, alt := -1, -1
	for t := p.nTables - 1; t >= 0; t-- {
		if p.tags[uint32(t)<<p.l2bits+idxs[t]] == tgs[t] {
			if provider < 0 {
				provider = t
			} else {
				alt = t
				break
			}
		}
	}
	base := p.extend(p.bstride[bi])
	altStride := base
	if alt >= 0 {
		altStride = p.extend(p.strides[uint32(alt)<<p.l2bits+idxs[alt]])
	}
	finalStride, provStride := base, base
	if provider >= 0 {
		e := uint32(provider)<<p.l2bits + idxs[provider]
		provStride = p.extend(p.strides[e])
		if p.conf[e] == 0 {
			finalStride = altStride
		} else {
			finalStride = provStride
		}
	}

	// Provider training: confidence tracks whether the stored stride
	// keeps recurring; the stride is replaced only at confidence 0, so
	// a single outlier cannot wipe a confirmed pattern. Usefulness
	// trains only when the provider actually decided something.
	if provider >= 0 {
		e := uint32(provider)<<p.l2bits + idxs[provider]
		switch {
		case provStride == actual:
			if p.conf[e] < tageConfMax {
				p.conf[e]++
			}
		case p.conf[e] > 0:
			p.conf[e]--
		default:
			p.strides[e] = p.truncate(actual)
		}
		if provStride != altStride {
			if provStride == actual {
				if p.ubits[e] < tageUMax {
					p.ubits[e]++
				}
			} else if p.ubits[e] > 0 {
				p.ubits[e]--
			}
		}
	}

	// Multi-table allocation on misprediction: claim up to
	// tageMaxAlloc u==0 victims in longer-history tables, skipping a
	// table after each grant to spread new entries across the series.
	// When every candidate is useful, decay them all instead — the
	// throttle that trades one allocation round for pressure relief.
	if finalStride != actual && provider < p.nTables-1 {
		allocated := 0
		for t := provider + 1; t < p.nTables && allocated < tageMaxAlloc; t++ {
			e := uint32(t)<<p.l2bits + idxs[t]
			if p.ubits[e] == 0 {
				p.tags[e] = tgs[t]
				p.strides[e] = p.truncate(actual)
				p.conf[e] = 0
				allocated++
				t++
			}
		}
		if allocated == 0 {
			for t := provider + 1; t < p.nTables; t++ {
				p.ubits[uint32(t)<<p.l2bits+idxs[t]]--
			}
		}
	}

	// Base component: DFCM-style, always store the newest stride.
	p.bstride[bi] = p.truncate(actual)
	p.last[bi] = value

	p.pushHistory(uint32(hash.Fold(uint64(actual), tageBitsPerEvent)))
	p.tick++
	if p.tick%tageAgePeriod == 0 {
		m := uint8(0b01)
		if (p.tick/tageAgePeriod)&1 == 1 {
			m = 0b10
		}
		for i := range p.ubits {
			p.ubits[i] &= m
		}
	}
}

// Provider returns the index of the tagged table that would provide
// the prediction for pc (0 = shortest history), or -1 when the base
// component would. Diagnostics only (cmd/vpstate); the hot path
// inlines the same scan.
func (p *TAGE) Provider(pc uint32) int {
	pcw := pc >> 2
	for t := p.nTables - 1; t >= 0; t-- {
		e := uint32(t)<<p.l2bits + p.tableIndex(t, pcw)
		if p.tags[e] == p.tableTag(t, pcw) {
			return t
		}
	}
	return -1
}

// NumTables returns the tagged-table count.
func (p *TAGE) NumTables() int { return p.nTables }

// HistoryLengths returns the per-table history series in events.
func (p *TAGE) HistoryLengths() []uint {
	return append([]uint(nil), p.histLens...)
}

// UHistogram counts table t's entries per usefulness level (u = 0..3).
func (p *TAGE) UHistogram(t int) [tageUMax + 1]int {
	var h [tageUMax + 1]int
	lo := t << p.l2bits
	for _, u := range p.ubits[lo : lo+1<<p.l2bits] {
		h[u]++
	}
	return h
}

// ProviderHistogram scans every base-table slot (one representative PC
// per slot) and counts which table would provide its prediction;
// index nTables counts base-provided slots. A cheap occupancy-style
// view of how the history series is actually being used.
func (p *TAGE) ProviderHistogram() []int {
	h := make([]int, p.nTables+1)
	for i := uint32(0); i <= p.l1mask; i++ {
		t := p.Provider(i << 2)
		if t < 0 {
			t = p.nTables
		}
		h[t]++
	}
	return h
}

// DivergingEntries counts, per tagged table, the entries whose
// (tag, stride, conf, u) tuple differs between p and o. The second
// result is false when the two predictors' geometries differ.
func (p *TAGE) DivergingEntries(o *TAGE) ([]int, bool) {
	if p.nTables != o.nTables || p.l2bits != o.l2bits {
		return nil, false
	}
	out := make([]int, p.nTables)
	for t := 0; t < p.nTables; t++ {
		lo := t << p.l2bits
		for i := lo; i < lo+1<<p.l2bits; i++ {
			if p.tags[i] != o.tags[i] || p.strides[i] != o.strides[i] ||
				p.conf[i] != o.conf[i] || p.ubits[i] != o.ubits[i] {
				out[t]++
			}
		}
	}
	return out, true
}

// Reset implements Resetter: flat word-level clears of every mutable
// table plus the derived registers; the immutable fold geometry
// stays.
func (p *TAGE) Reset() {
	clear(p.last)
	clear(p.bstride)
	clear(p.tags)
	clear(p.strides)
	clear(p.conf)
	clear(p.ubits)
	clear(p.ring)
	p.tick = 0
	clear(p.fold)
	p.pos = 0
}

// AppendState implements Snapshotter: base rows, then the tagged SoA
// slices in declaration order, then the history ring (one byte per
// bit) and the update count. The folded registers and write position
// are derived from (ring, tick) and rebuilt on restore.
func (p *TAGE) AppendState(b []byte) []byte {
	for i := range p.last {
		b = binary.BigEndian.AppendUint32(b, p.last[i])
	}
	for _, v := range p.bstride {
		b = binary.BigEndian.AppendUint32(b, v)
	}
	for _, v := range p.tags {
		b = binary.BigEndian.AppendUint32(b, v)
	}
	for _, v := range p.strides {
		b = binary.BigEndian.AppendUint32(b, v)
	}
	b = append(b, p.conf...)
	b = append(b, p.ubits...)
	b = append(b, p.ring...)
	return binary.BigEndian.AppendUint64(b, p.tick)
}

// RestoreState implements Snapshotter. Every stored field is
// range-checked against the configured geometry — strides and tags
// must fit their widths, counters their two bits, ring bytes must be
// single bits — and the derived folded registers are recomputed from
// the restored window instead of being trusted from the wire.
func (p *TAGE) RestoreState(data []byte) error {
	want := 4*len(p.last) + 4*len(p.bstride) + 4*len(p.tags) + 4*len(p.strides) +
		len(p.conf) + len(p.ubits) + len(p.ring) + 8
	if len(data) != want {
		return stateSizeErr("tage", want, len(data))
	}
	for i := range p.last {
		p.last[i] = binary.BigEndian.Uint32(data[4*i:])
	}
	data = data[4*len(p.last):]
	for i := range p.bstride {
		v := binary.BigEndian.Uint32(data[4*i:])
		if p.truncate(v) != v {
			return fmt.Errorf("%w: tage base stride %#x wider than %d bits", ErrState, v, p.strideBits)
		}
		p.bstride[i] = v
	}
	data = data[4*len(p.bstride):]
	for i := range p.tags {
		v := binary.BigEndian.Uint32(data[4*i:])
		if v&p.tagMask != v {
			return fmt.Errorf("%w: tage tag %#x wider than %d bits", ErrState, v, p.tagBits)
		}
		p.tags[i] = v
	}
	data = data[4*len(p.tags):]
	for i := range p.strides {
		v := binary.BigEndian.Uint32(data[4*i:])
		if p.truncate(v) != v {
			return fmt.Errorf("%w: tage stride %#x wider than %d bits", ErrState, v, p.strideBits)
		}
		p.strides[i] = v
	}
	data = data[4*len(p.strides):]
	for i := range p.conf {
		if data[i] > tageConfMax {
			return fmt.Errorf("%w: tage confidence %d exceeds %d", ErrState, data[i], tageConfMax)
		}
		p.conf[i] = data[i]
	}
	data = data[len(p.conf):]
	for i := range p.ubits {
		if data[i] > tageUMax {
			return fmt.Errorf("%w: tage usefulness %d exceeds %d", ErrState, data[i], tageUMax)
		}
		p.ubits[i] = data[i]
	}
	data = data[len(p.ubits):]
	for i := range p.ring {
		if data[i] > 1 {
			return fmt.Errorf("%w: tage history byte %#x is not a bit", ErrState, data[i])
		}
		p.ring[i] = data[i]
	}
	p.tick = binary.BigEndian.Uint64(data[len(p.ring):])
	p.rebuildFolds()
	return nil
}

// StateTables implements StateTabler: the base table, one entry per
// tagged table, and the history ring.
func (p *TAGE) StateTables() []TableInfo {
	baseLive := 0
	for i := range p.last {
		if p.last[i] != 0 || p.bstride[i] != 0 {
			baseLive++
		}
	}
	out := []TableInfo{{Name: "base", Entries: len(p.last), Live: baseLive}}
	for t := 0; t < p.nTables; t++ {
		lo := t << p.l2bits
		live := 0
		for i := lo; i < lo+1<<p.l2bits; i++ {
			if p.tags[i] != 0 || p.strides[i] != 0 || p.conf[i] != 0 || p.ubits[i] != 0 {
				live++
			}
		}
		out = append(out, TableInfo{
			Name:    fmt.Sprintf("t%d(h%d)", t+1, p.histLens[t]),
			Entries: 1 << p.l2bits,
			Live:    live,
		})
	}
	histLive := 0
	for _, b := range p.ring {
		if b != 0 {
			histLive++
		}
	}
	out = append(out, TableInfo{Name: "hist", Entries: len(p.ring), Live: histLive})
	return out
}

// Name implements Predictor.
func (p *TAGE) Name() string {
	n := fmt.Sprintf("tage-2^%d+%dx2^%d/t%d/h%d..%d",
		p.l1bits, p.nTables, p.l2bits, p.tagBits,
		p.histLens[0], p.histLens[p.nTables-1])
	if p.strideBits != 32 {
		n += fmt.Sprintf("/w%d", p.strideBits)
	}
	return n
}

// SizeBits implements Predictor: the base rows (32-bit last value +
// stored stride), the tagged entries (tag + stride + 2-bit confidence
// + 2-bit usefulness), and the longest global history window.
func (p *TAGE) SizeBits() int64 {
	base := int64(len(p.last)) * int64(32+p.strideBits)
	tagged := int64(len(p.tags)) * int64(p.tagBits+p.strideBits+4)
	hist := int64(p.histLens[p.nTables-1]) * tageBitsPerEvent
	return base + tagged + hist
}
