package core

import (
	"fmt"
	"strings"
)

// PerfectHybrid models a hybrid predictor with a perfect
// meta-predictor, as used in the paper's section 4.3: an event counts
// as correctly predicted when *any* component predicted it, and every
// component is always updated with the outcome. This is an upper bound
// on any realizable selection mechanism over the same components.
//
// PerfectHybrid implements Scorer; it cannot implement a meaningful
// Predict (the oracle choice depends on the outcome), so Predict
// returns the first component's prediction and is only there to
// satisfy Predictor for uniform handling in sweeps.
type PerfectHybrid struct {
	comps []Predictor
}

// NewPerfectHybrid combines the given component predictors under a
// perfect meta-predictor. It panics if no components are given.
//
// Size accounting: the sum of the components (a perfect
// meta-predictor needs no storage of its own — it is an oracle).
func NewPerfectHybrid(comps ...Predictor) *PerfectHybrid {
	if len(comps) == 0 {
		panic("core: perfect hybrid needs at least one component")
	}
	return &PerfectHybrid{comps: comps}
}

// Score implements Scorer: correct iff any component is correct;
// all components are updated.
func (p *PerfectHybrid) Score(pc, value uint32) bool {
	correct := false
	for _, c := range p.comps {
		if c.Predict(pc) == value {
			correct = true
		}
	}
	for _, c := range p.comps {
		c.Update(pc, value)
	}
	return correct
}

// Predict returns the first component's prediction (see type comment).
func (p *PerfectHybrid) Predict(pc uint32) uint32 { return p.comps[0].Predict(pc) }

// Update updates all components.
func (p *PerfectHybrid) Update(pc, value uint32) {
	for _, c := range p.comps {
		c.Update(pc, value)
	}
}

// Reset implements Resetter by resetting every component.
func (p *PerfectHybrid) Reset() {
	for _, c := range p.comps {
		mustReset(c)
	}
}

// AppendState implements Snapshotter: one nested block per component,
// in construction order.
func (p *PerfectHybrid) AppendState(b []byte) []byte {
	for _, c := range p.comps {
		b = appendNested(b, c)
	}
	return b
}

// RestoreState implements Snapshotter.
func (p *PerfectHybrid) RestoreState(data []byte) error {
	var err error
	for _, c := range p.comps {
		if data, err = restoreNested(data, c); err != nil {
			return err
		}
	}
	if len(data) != 0 {
		return fmt.Errorf("%w: %d trailing bytes after hybrid state", ErrState, len(data))
	}
	return nil
}

// StateTables implements StateTabler.
func (p *PerfectHybrid) StateTables() []TableInfo {
	var ts []TableInfo
	for _, c := range p.comps {
		ts = append(ts, prefixTables(c.Name(), c)...)
	}
	return ts
}

// Name implements Predictor, e.g. "perfect(stride-2^16+fcm-2^16/2^12)".
func (p *PerfectHybrid) Name() string {
	names := make([]string, len(p.comps))
	for i, c := range p.comps {
		names[i] = c.Name()
	}
	return "perfect(" + strings.Join(names, "+") + ")"
}

// SizeBits implements Predictor.
func (p *PerfectHybrid) SizeBits() int64 {
	var s int64
	for _, c := range p.comps {
		s += c.SizeBits()
	}
	return s
}

// MetaHybrid is a realizable two-component hybrid: a PC-indexed table
// of saturating counters selects between component a and component b
// (section 4.3, Figure 15 — "The meta-predictor is typically a set of
// saturating counters, indexed by the program counter"). The counter
// is biased toward a when high and b when low; it moves up when only a
// was correct and down when only b was correct.
type MetaHybrid struct {
	a, b     Predictor
	bits     uint
	counters []uint8
	max      uint8
}

// NewMetaHybrid returns a hybrid over a and b with a 2^bits-entry
// table of 2-bit selection counters.
//
// Size accounting: components plus 2 bits per meta table entry.
func NewMetaHybrid(a, b Predictor, bits uint) *MetaHybrid {
	checkBits("meta", bits, 30)
	return &MetaHybrid{a: a, b: b, bits: bits, counters: make([]uint8, 1<<bits), max: 3}
}

// Predict selects a's prediction when the counter is in its upper
// half, b's otherwise.
func (p *MetaHybrid) Predict(pc uint32) uint32 {
	if p.counters[pcIndex(pc, p.bits)] > p.max/2 {
		return p.a.Predict(pc)
	}
	return p.b.Predict(pc)
}

// Update trains both components and steers the selection counter
// toward whichever component was (exclusively) correct.
func (p *MetaHybrid) Update(pc, value uint32) {
	i := pcIndex(pc, p.bits)
	aOK := p.a.Predict(pc) == value
	bOK := p.b.Predict(pc) == value
	switch {
	case aOK && !bOK:
		if p.counters[i] < p.max {
			p.counters[i]++
		}
	case bOK && !aOK:
		if p.counters[i] > 0 {
			p.counters[i]--
		}
	}
	p.a.Update(pc, value)
	p.b.Update(pc, value)
}

// Reset implements Resetter: both components and the selection
// counters return to their initial state.
func (p *MetaHybrid) Reset() {
	clear(p.counters)
	mustReset(p.a)
	mustReset(p.b)
}

// AppendState implements Snapshotter: the selection counters followed
// by both components' nested state.
func (p *MetaHybrid) AppendState(b []byte) []byte {
	b = append(b, p.counters...)
	b = appendNested(b, p.a)
	return appendNested(b, p.b)
}

// RestoreState implements Snapshotter.
func (p *MetaHybrid) RestoreState(data []byte) error {
	if len(data) < len(p.counters) {
		return stateSizeErr("meta-hybrid counters", len(p.counters), len(data))
	}
	for _, c := range data[:len(p.counters)] {
		if c > p.max {
			return fmt.Errorf("%w: meta counter %d exceeds %d", ErrState, c, p.max)
		}
	}
	rest, err := restoreNested(data[len(p.counters):], p.a)
	if err != nil {
		return err
	}
	if rest, err = restoreNested(rest, p.b); err != nil {
		return err
	}
	if len(rest) != 0 {
		return fmt.Errorf("%w: %d trailing bytes after meta-hybrid state", ErrState, len(rest))
	}
	copy(p.counters, data)
	return nil
}

// StateTables implements StateTabler.
func (p *MetaHybrid) StateTables() []TableInfo {
	live := 0
	for _, c := range p.counters {
		if c != 0 {
			live++
		}
	}
	ts := []TableInfo{{Name: "meta", Entries: len(p.counters), Live: live}}
	ts = append(ts, prefixTables(p.a.Name(), p.a)...)
	return append(ts, prefixTables(p.b.Name(), p.b)...)
}

// Name implements Predictor.
func (p *MetaHybrid) Name() string {
	return fmt.Sprintf("meta2^%d(%s|%s)", p.bits, p.a.Name(), p.b.Name())
}

// SizeBits implements Predictor.
func (p *MetaHybrid) SizeBits() int64 {
	return p.a.SizeBits() + p.b.SizeBits() + int64(len(p.counters))*2
}
