package core

import (
	"testing"
	"testing/quick"

	"repro/internal/hash"
)

func TestFCMLearnsRepeatingPattern(t *testing.T) {
	// A non-stride repeating pattern is the FCM's home turf: after one
	// or two repetitions every context has been seen and the pattern
	// is predicted perfectly (no collisions with a large L2).
	p := NewFCM(10, 16)
	pattern := []uint32{9, 2, 25, 7, 1, 130, 4}
	vals := repeatSeq(pattern, 20*len(pattern))
	if acc := tailAccuracy(p, vals, 3*len(pattern)); acc != 1 {
		t.Errorf("repeating pattern accuracy = %v, want 1", acc)
	}
}

func TestFCMLearnsStridePatternOnceRepeated(t *testing.T) {
	// FCM can predict stride patterns too, but only after the whole
	// pattern has repeated (longer learning period, section 2.3).
	p := NewFCM(10, 16)
	pattern := strideSeq(0, 1, 16)
	vals := repeatSeq(pattern, 10*len(pattern))
	if acc := tailAccuracy(p, vals, 2*len(pattern)); acc < 0.9 {
		t.Errorf("repeated stride pattern accuracy = %v, want >= 0.9", acc)
	}
}

func TestFCMCannotPredictUnseenStride(t *testing.T) {
	// A never-repeating stride sequence defeats the FCM: each context
	// is new, so the L2 entry it consults was never trained.
	p := NewFCM(10, 20)
	if acc := tailAccuracy(p, strideSeq(0, 1, 2000), 10); acc > 0.01 {
		t.Errorf("unbounded stride accuracy = %v, want ~0", acc)
	}
}

func TestFCMScattersStrideOverManyL2Entries(t *testing.T) {
	// Figure 4's observation: a repeated stride pattern of length n
	// occupies ~n distinct level-2 entries under FCM.
	p := NewFCM(10, 16)
	pattern := strideSeq(0, 1, 32)
	vals := repeatSeq(pattern, 6*len(pattern))
	entries := make(map[uint64]bool)
	for i, v := range vals {
		if i >= 2*len(pattern) {
			entries[p.L2Index(0x40)] = true
		}
		p.Update(0x40, v)
	}
	if len(entries) < len(pattern) {
		t.Errorf("stride pattern touches %d L2 entries under FCM, want >= %d",
			len(entries), len(pattern))
	}
}

func TestDFCMPredictsStrideWithoutRepetition(t *testing.T) {
	// The headline property: DFCM predicts stride patterns even if
	// they have never repeated (section 3).
	// Warmup: the bogus first stride (v0 - 0) must age out of the
	// order-3 history and the fixed-point L2 entry must be trained
	// once, so the first 5 events are skipped.
	for _, s := range []uint32{1, 5, 0xffffffff /* -1 */, 1 << 20} {
		p := NewDFCM(10, 12)
		if acc := tailAccuracy(p, strideSeq(12345, s, 500), 5); acc != 1 {
			t.Errorf("stride %d: accuracy = %v, want 1", int32(s), acc)
		}
	}
}

func TestDFCMStrideMapsToSingleL2Entry(t *testing.T) {
	// Figure 8's observation: once warmed up, a stride pattern
	// occupies exactly one level-2 entry under DFCM.
	p := NewDFCM(10, 12)
	vals := strideSeq(0, 4, 200)
	entries := make(map[uint64]bool)
	for i, v := range vals {
		if i >= 8 {
			entries[p.L2Index(0x40)] = true
		}
		p.Update(0x40, v)
	}
	if len(entries) != 1 {
		t.Errorf("steady-state stride pattern touches %d L2 entries under DFCM, want 1",
			len(entries))
	}
}

func TestDFCMSameStrideDifferentBasesShareEntries(t *testing.T) {
	// "all stride patterns with the same stride map to the same
	// entries" — two instructions with stride 4 but disjoint ranges
	// use the same L2 entry.
	p := NewDFCM(10, 12)
	for i := 0; i < 50; i++ {
		p.Update(0x100, uint32(i*4))
		p.Update(0x200, uint32(0x800000+i*4))
	}
	if a, b := p.L2Index(0x100), p.L2Index(0x200); a != b {
		t.Errorf("same-stride patterns use different L2 entries: %#x vs %#x", a, b)
	}
}

func TestDFCMLearnsRepeatingPattern(t *testing.T) {
	// Non-stride repeating patterns remain as predictable as under FCM
	// (the difference history is an equivalent representation).
	p := NewDFCM(10, 16)
	pattern := []uint32{0, 4, 2, 1, 77, 3}
	vals := repeatSeq(pattern, 20*len(pattern))
	if acc := tailAccuracy(p, vals, 3*len(pattern)); acc != 1 {
		t.Errorf("repeating pattern accuracy = %v, want 1", acc)
	}
}

func TestDFCMQuickAnyStridePredictable(t *testing.T) {
	// Property: for any start and stride, after a short warmup the
	// DFCM predicts the sequence perfectly.
	prop := func(start, stride uint32) bool {
		p := NewDFCM(8, 10)
		return tailAccuracy(p, strideSeq(start, stride, 60), 5) == 1
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestDFCMQuickMatchesFCMOnRepeatingPatterns(t *testing.T) {
	// Property: on any short repeating pattern of distinct 5-bit
	// values (no L2 pressure, and provably no FS R-5 window
	// collisions at n=16, since 5-bit values keep every hash field
	// disjoint), both two-level predictors converge to perfect
	// prediction. Wider values can legitimately collide in the hash —
	// the FS R-5 keeps only one bit of the age-3 value.
	prop := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		if len(raw) > 6 {
			raw = raw[:6]
		}
		seen := map[uint32]bool{}
		var pattern []uint32
		for _, b := range raw {
			v := uint32(b & 31)
			if !seen[v] {
				seen[v] = true
				pattern = append(pattern, v)
			}
		}
		vals := repeatSeq(pattern, 30*len(pattern))
		skip := 6 * len(pattern)
		if f := tailAccuracy(NewFCM(8, 16), vals, skip); f != 1 {
			return false
		}
		// The DFCM hashes *differences*, which are not confined to 5
		// bits, so its histories can collide where the FCM's did not —
		// the paper notes exactly this ("non-stride patterns might
		// interfere with each other in the DFCM even when they did
		// not interfere in the FCM, or vice versa"). Assert perfect
		// prediction only when the difference-history hash is
		// unambiguous over the pattern.
		if dfcmHistoryAmbiguous(pattern) {
			return true
		}
		return tailAccuracy(NewDFCM(8, 16), vals, skip) == 1
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// dfcmHistoryAmbiguous reports whether the cyclic difference sequence
// of pattern has two FS R-5 hashed histories that coincide but are
// followed by different strides — the situation in which even an
// unbounded-table DFCM cannot be perfect.
func dfcmHistoryAmbiguous(pattern []uint32) bool {
	h := hash.NewFSR5(16)
	n := len(pattern)
	strides := make([]uint32, n)
	for i := range pattern {
		strides[i] = pattern[(i+1)%n] - pattern[i]
	}
	// Walk the history as the DFCM does: at any point the level-2
	// entry for the current history must consistently hold the stride
	// observed next.
	next := make(map[uint64]uint32)
	hist := uint64(0)
	for lap := 0; lap < 3; lap++ {
		for _, s := range strides {
			if prev, ok := next[hist]; ok && prev != s {
				return true
			}
			next[hist] = s
			hist = h.Update(hist, uint64(s))
		}
	}
	return false
}

func TestDFCMWidthSignExtension(t *testing.T) {
	p := NewDFCMWidth(8, 10, 8)
	cases := []struct {
		stride uint32
		want   uint32 // after truncate+extend
	}{
		{5, 5},
		{0xffffffff, 0xffffffff}, // -1 survives
		{127, 127},
		{0xffffff80, 0xffffff80}, // -128 survives
		{128, 0xffffff80},        // +128 clips to -128 in 8 bits
		{300, 44},                // 300 mod 256, sign-extended
	}
	for _, c := range cases {
		if got := p.extend(p.truncate(c.stride)); got != c.want {
			t.Errorf("truncate/extend(%#x) = %#x, want %#x", c.stride, got, c.want)
		}
	}
}

func TestDFCMWidthSmallStridesUnaffected(t *testing.T) {
	// With 8-bit stored strides, sequences whose strides fit in
	// [-128, 127] predict exactly as with full width.
	for _, s := range []uint32{1, 100, 0xffffff90 /* -112 */} {
		p8 := NewDFCMWidth(10, 12, 8)
		p32 := NewDFCM(10, 12)
		vals := strideSeq(5000, s, 300)
		if a8, a32 := tailAccuracy(p8, vals, 5), tailAccuracy(p32, vals, 5); a8 != a32 {
			t.Errorf("stride %d: w8 accuracy %v != w32 accuracy %v", int32(s), a8, a32)
		}
	}
}

func TestDFCMWidthLargeStridesDegrade(t *testing.T) {
	// A stride that does not fit in 8 bits must be unpredictable with
	// 8-bit storage but perfect with 32-bit storage.
	vals := strideSeq(0, 4096, 300)
	if acc := tailAccuracy(NewDFCMWidth(10, 12, 8), vals, 5); acc > 0.05 {
		t.Errorf("w8 accuracy on stride 4096 = %v, want ~0", acc)
	}
	if acc := tailAccuracy(NewDFCM(10, 12), vals, 5); acc != 1 {
		t.Errorf("w32 accuracy on stride 4096 = %v, want 1", acc)
	}
}

func TestDFCMWidth32PassThrough(t *testing.T) {
	p := NewDFCM(4, 8)
	prop := func(s uint32) bool { return p.extend(p.truncate(s)) == s }
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestFCMvsDFCMUnderL2Pressure(t *testing.T) {
	// The paper's central claim, in miniature: many concurrent stride
	// patterns plus one context pattern, with a small L2 table. The
	// strides crowd the FCM's L2 and destroy the context pattern;
	// under DFCM they collapse to a handful of entries.
	run := func(p Predictor) float64 {
		var res Result
		const loops = 400
		for i := 0; i < loops; i++ {
			// 32 stride instructions with distinct strides/bases.
			for k := 0; k < 32; k++ {
				pc := uint32(0x1000 + k*4)
				v := uint32(k*100000 + i*(k+1))
				if p.Predict(pc) == v {
					res.Correct++
				}
				res.Predictions++
				p.Update(pc, v)
			}
		}
		return res.Accuracy()
	}
	fcm := run(NewFCM(10, 8))
	dfcm := run(NewDFCM(10, 8))
	if dfcm <= fcm {
		t.Errorf("DFCM (%.3f) should beat FCM (%.3f) under L2 pressure", dfcm, fcm)
	}
	if dfcm < 0.9 {
		t.Errorf("DFCM accuracy = %.3f, want >= 0.9 on pure strides", dfcm)
	}
}

func TestFCMOrderMatchesHash(t *testing.T) {
	if NewFCM(4, 12).Order() != 3 {
		t.Error("FCM order for n=12 should be 3")
	}
	if NewDFCM(4, 20).Order() != 4 {
		t.Error("DFCM order for n=20 should be 4")
	}
}

func TestL2IndexerInterfaces(t *testing.T) {
	var _ L2Indexer = NewFCM(4, 8)
	var _ L2Indexer = NewDFCM(4, 8)
	if NewFCM(4, 8).L2Entries() != 256 {
		t.Error("L2Entries wrong for FCM")
	}
	if NewDFCM(4, 10).L2Entries() != 1024 {
		t.Error("L2Entries wrong for DFCM")
	}
}

func TestHashMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic for hash/l2 width mismatch")
		}
	}()
	NewFCMHash(4, 12, hashWithBits(10))
}

// hashWithBits builds a throwaway hash of the given width.
func hashWithBits(n uint) interface {
	Update(uint64, uint64) uint64
	IndexBits() uint
	Order() int
	Name() string
} {
	return fsrStub{n: n}
}

type fsrStub struct{ n uint }

func (s fsrStub) Update(h, v uint64) uint64 { return 0 }
func (s fsrStub) IndexBits() uint           { return s.n }
func (s fsrStub) Order() int                { return 1 }
func (s fsrStub) Name() string              { return "stub" }

func TestDFCMStrideBitsAccessor(t *testing.T) {
	if NewDFCMWidth(4, 8, 16).StrideBits() != 16 {
		t.Error("StrideBits accessor wrong")
	}
	if NewDFCM(4, 8).StrideBits() != 32 {
		t.Error("default stride width should be 32")
	}
}
