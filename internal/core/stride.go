package core

import (
	"encoding/binary"
	"fmt"
)

// strideEntry is one row of the stride predictor table.
type strideEntry struct {
	last   uint32
	stride uint32
	conf   uint8 // 3-bit saturating confidence counter, 0..7
}

// Stride is the stride predictor variant used throughout the paper:
// a single stride per entry guarded by a 3-bit saturating confidence
// counter. The counter is incremented by 1 on a correct prediction and
// decremented by 2 on a wrong one; the stored stride is replaced only
// while the counter is below its maximum (7). This gives two-delta-like
// robustness (a loop-control reset costs one misprediction, not two)
// without storing a second stride.
type Stride struct {
	bits  uint
	table []strideEntry
}

// Confidence counter parameters (paper section 4, "The confidence
// counter in the stride predictor is a 3-bit counter, which is
// increased by 1 on a correct prediction and decreased by 2 on a wrong
// prediction.").
const (
	strideConfMax       = 7
	strideConfIncrement = 1
	strideConfDecrement = 2
)

// NewStride returns a stride predictor with 2^bits entries.
//
// Size accounting: 2^bits × (32-bit last value + 32-bit stride +
// 3-bit confidence counter) = 2^bits × 67 bits.
func NewStride(bits uint) *Stride {
	checkBits("stride", bits, 30)
	return &Stride{bits: bits, table: make([]strideEntry, 1<<bits)}
}

// Predict returns last value + stride for the entry at pc.
func (p *Stride) Predict(pc uint32) uint32 {
	e := &p.table[pcIndex(pc, p.bits)]
	return e.last + e.stride
}

// Update trains the entry at pc with the produced value.
//
// This per-op path deliberately keeps the branchy counter update: a
// single-event caller tends to feed highly regular streams, where the
// hit/miss branches predict well and beat the branchless arithmetic
// (measured ~6.0 vs ~8.2 ns/op on the per-op benchmark trace). The
// batch loop (RunBatch in batch.go) runs the branchless form — over
// mixed interleaved streams the branches mispredict constantly — and
// the two are pinned bit-identical by the satConf/hit01 property
// tests and TestRunBatchConcreteMatchesGeneric.
func (p *Stride) Update(pc, value uint32) {
	e := &p.table[pcIndex(pc, p.bits)]
	// The replacement gate reads the counter *before* this outcome is
	// folded in: a fully confident entry keeps its stride across a
	// single disruption (e.g. a loop-control reset costs exactly one
	// misprediction, matching the two-delta method the paper calls
	// "comparable").
	replace := e.conf < strideConfMax
	if e.last+e.stride == value {
		if e.conf < strideConfMax {
			e.conf += strideConfIncrement
		}
	} else {
		if e.conf >= strideConfDecrement {
			e.conf -= strideConfDecrement
		} else {
			e.conf = 0
		}
	}
	if replace {
		e.stride = value - e.last
	}
	e.last = value
}

// Reset implements Resetter.
func (p *Stride) Reset() { clear(p.table) }

// strideEntryBytes is one serialized strideEntry: last, stride, conf.
const strideEntryBytes = 4 + 4 + 1

// AppendState implements Snapshotter.
func (p *Stride) AppendState(b []byte) []byte {
	for i := range p.table {
		e := &p.table[i]
		b = binary.BigEndian.AppendUint32(b, e.last)
		b = binary.BigEndian.AppendUint32(b, e.stride)
		b = append(b, e.conf)
	}
	return b
}

// RestoreState implements Snapshotter.
func (p *Stride) RestoreState(data []byte) error {
	if len(data) != strideEntryBytes*len(p.table) {
		return stateSizeErr("stride", strideEntryBytes*len(p.table), len(data))
	}
	for i := range p.table {
		row := data[strideEntryBytes*i:]
		conf := row[8]
		if conf > strideConfMax {
			return fmt.Errorf("%w: stride confidence %d exceeds %d", ErrState, conf, strideConfMax)
		}
		p.table[i] = strideEntry{
			last:   binary.BigEndian.Uint32(row),
			stride: binary.BigEndian.Uint32(row[4:]),
			conf:   conf,
		}
	}
	return nil
}

// StateTables implements StateTabler.
func (p *Stride) StateTables() []TableInfo {
	live := 0
	for i := range p.table {
		if p.table[i] != (strideEntry{}) {
			live++
		}
	}
	return []TableInfo{{Name: "entries", Entries: len(p.table), Live: live}}
}

// Name implements Predictor.
func (p *Stride) Name() string { return fmt.Sprintf("stride-2^%d", p.bits) }

// SizeBits implements Predictor.
func (p *Stride) SizeBits() int64 { return int64(len(p.table)) * (32 + 32 + 3) }

// twoDeltaEntry is one row of the two-delta predictor table.
type twoDeltaEntry struct {
	last uint32
	s1   uint32 // predicting stride
	s2   uint32 // most recent stride
}

// TwoDelta is the two-delta stride predictor of Eickemeyer and
// Vassiliadis, described in the paper's section 2.2: the predicting
// stride s1 is replaced only when the same new stride has been observed
// twice in a row (tracked through s2). Included as an additional
// baseline; the paper's own experiments use the confidence-gated
// Stride predictor instead.
type TwoDelta struct {
	bits  uint
	table []twoDeltaEntry
}

// NewTwoDelta returns a two-delta stride predictor with 2^bits entries.
//
// Size accounting: 2^bits × (32-bit last value + two 32-bit strides)
// = 2^bits × 96 bits.
func NewTwoDelta(bits uint) *TwoDelta {
	checkBits("two-delta", bits, 30)
	return &TwoDelta{bits: bits, table: make([]twoDeltaEntry, 1<<bits)}
}

// Predict returns last value + s1 for the entry at pc.
func (p *TwoDelta) Predict(pc uint32) uint32 {
	e := &p.table[pcIndex(pc, p.bits)]
	return e.last + e.s1
}

// Update trains the entry at pc with the produced value.
func (p *TwoDelta) Update(pc, value uint32) {
	e := &p.table[pcIndex(pc, p.bits)]
	stride := value - e.last
	if stride == e.s2 {
		e.s1 = stride
	}
	e.s2 = stride
	e.last = value
}

// Reset implements Resetter.
func (p *TwoDelta) Reset() { clear(p.table) }

// AppendState implements Snapshotter: last, s1, s2 per entry.
func (p *TwoDelta) AppendState(b []byte) []byte {
	for i := range p.table {
		e := &p.table[i]
		b = binary.BigEndian.AppendUint32(b, e.last)
		b = binary.BigEndian.AppendUint32(b, e.s1)
		b = binary.BigEndian.AppendUint32(b, e.s2)
	}
	return b
}

// RestoreState implements Snapshotter.
func (p *TwoDelta) RestoreState(data []byte) error {
	if len(data) != 12*len(p.table) {
		return stateSizeErr("two-delta", 12*len(p.table), len(data))
	}
	for i := range p.table {
		row := data[12*i:]
		p.table[i] = twoDeltaEntry{
			last: binary.BigEndian.Uint32(row),
			s1:   binary.BigEndian.Uint32(row[4:]),
			s2:   binary.BigEndian.Uint32(row[8:]),
		}
	}
	return nil
}

// StateTables implements StateTabler.
func (p *TwoDelta) StateTables() []TableInfo {
	live := 0
	for i := range p.table {
		if p.table[i] != (twoDeltaEntry{}) {
			live++
		}
	}
	return []TableInfo{{Name: "entries", Entries: len(p.table), Live: live}}
}

// Name implements Predictor.
func (p *TwoDelta) Name() string { return fmt.Sprintf("2delta-2^%d", p.bits) }

// SizeBits implements Predictor.
func (p *TwoDelta) SizeBits() int64 { return int64(len(p.table)) * (32 + 32 + 32) }
