package core

import (
	"math/rand"
	"testing"

	"repro/internal/trace"
)

// mixedTrace interleaves a constant instruction, a stride instruction,
// a context-pattern instruction and a random instruction.
func mixedTrace(n int, seed int64) trace.Trace {
	rng := rand.New(rand.NewSource(seed))
	pattern := []uint32{3, 99, 15, 2, 60}
	var tr trace.Trace
	for i := 0; i < n; i++ {
		tr = append(tr,
			trace.Event{PC: 0x100, Value: 7},
			trace.Event{PC: 0x104, Value: uint32(i * 16)},
			trace.Event{PC: 0x108, Value: pattern[i%len(pattern)]},
			trace.Event{PC: 0x10c, Value: rng.Uint32()},
		)
	}
	return tr
}

func TestPerfectHybridAtLeastAsGoodAsComponents(t *testing.T) {
	tr := mixedTrace(2000, 1)
	stride := Run(NewStride(8), trace.NewReader(tr)).Accuracy()
	fcm := Run(NewFCM(8, 12), trace.NewReader(tr)).Accuracy()
	hybrid := Run(NewPerfectHybrid(NewStride(8), NewFCM(8, 12)), trace.NewReader(tr)).Accuracy()
	if hybrid < stride || hybrid < fcm {
		t.Errorf("perfect hybrid %.3f below components (stride %.3f, fcm %.3f)",
			hybrid, stride, fcm)
	}
}

func TestPerfectHybridScoreSemantics(t *testing.T) {
	// Correct iff any component correct.
	a, b := NewLastValue(4), NewStride(4)
	h := NewPerfectHybrid(a, b)
	h.Score(0x40, 10) // trains both
	h.Score(0x40, 20) // stride learns +10; lvp learns 20
	// Next value 30: stride predicts 30 (correct), lvp predicts 20.
	if !h.Score(0x40, 30) {
		t.Error("hybrid should be correct when stride component is")
	}
	// Next value 20: lvp predicts 30... actually lvp predicts last=30.
	// Use a value neither predicts: stride predicts 40, lvp predicts 30.
	if h.Score(0x40, 999) {
		t.Error("hybrid should be wrong when no component is correct")
	}
}

func TestPerfectHybridUpdatesAllComponents(t *testing.T) {
	a, b := NewLastValue(4), NewLastValue(4)
	h := NewPerfectHybrid(a, b)
	h.Score(0x40, 123)
	if a.Predict(0x40) != 123 || b.Predict(0x40) != 123 {
		t.Error("Score must update every component")
	}
	h.Update(0x40, 456)
	if a.Predict(0x40) != 456 || b.Predict(0x40) != 456 {
		t.Error("Update must update every component")
	}
}

func TestDFCMBeatsPerfectStrideFCMHybridUnderPressure(t *testing.T) {
	// Section 4.3's qualitative result, in miniature: with a small L2
	// the DFCM outperforms even a perfect STRIDE+FCM hybrid, because
	// the hybrid's FCM component still wastes its L2 on strides.
	tr := make(trace.Trace, 0, 1<<17)
	pattern := []uint32{11, 3, 250, 77, 4, 92, 13, 8}
	for i := 0; len(tr) < cap(tr); i++ {
		// All PCs in one contiguous region so they occupy distinct
		// level-1 entries (0x1000 and 0x2000 would alias in a
		// 1024-entry PC-indexed table).
		for k := 0; k < 24; k++ {
			tr = append(tr, trace.Event{PC: uint32(0x1000 + k*4), Value: uint32(k*1000 + i*(2*k+1))})
		}
		for k := 0; k < 8; k++ {
			tr = append(tr, trace.Event{PC: uint32(0x1000 + (64+k)*4), Value: pattern[(i+k)%len(pattern)]})
		}
	}
	dfcm := Run(NewDFCM(10, 8), trace.NewReader(tr)).Accuracy()
	hybrid := Run(NewPerfectHybrid(NewStride(10), NewFCM(10, 8)), trace.NewReader(tr)).Accuracy()
	if dfcm <= hybrid-0.02 {
		t.Errorf("DFCM %.3f should be competitive with perfect STRIDE+FCM %.3f under L2 pressure",
			dfcm, hybrid)
	}
}

func TestMetaHybridTracksBetterComponent(t *testing.T) {
	// On a pure stride workload the meta predictor must converge to
	// the stride component.
	h := NewMetaHybrid(NewStride(8), NewLastValue(8), 8)
	res := Run(h, seqSource(0x40, strideSeq(0, 3, 500)))
	if res.Accuracy() < 0.95 {
		t.Errorf("meta hybrid accuracy = %.3f, want >= 0.95 on stride workload", res.Accuracy())
	}
}

func TestMetaHybridBetweenComponentsOnMixedTrace(t *testing.T) {
	tr := mixedTrace(3000, 7)
	a := Run(NewStride(8), trace.NewReader(tr)).Accuracy()
	b := Run(NewLastValue(8), trace.NewReader(tr)).Accuracy()
	m := Run(NewMetaHybrid(NewStride(8), NewLastValue(8), 8), trace.NewReader(tr)).Accuracy()
	lo := min(a, b)
	if m < lo-0.05 {
		t.Errorf("meta hybrid %.3f far below both components (%.3f, %.3f)", m, a, b)
	}
	perfect := Run(NewPerfectHybrid(NewStride(8), NewLastValue(8)), trace.NewReader(tr)).Accuracy()
	if m > perfect {
		t.Errorf("meta hybrid %.3f above perfect hybrid %.3f", m, perfect)
	}
}
