package core

import (
	"strings"
	"testing"
)

func TestSpecNewNames(t *testing.T) {
	cases := []struct {
		spec Spec
		name string
	}{
		{Spec{Kind: "lvp", L1: 10}, "lvp-2^10"},
		{Spec{Kind: "stride", L1: 12}, "stride-2^12"},
		{Spec{Kind: "2delta", L1: 12}, "2delta-2^12"},
		{Spec{Kind: "fcm", L1: 10, L2: 8}, "fcm-2^10/2^8"},
		{Spec{Kind: "dfcm", L1: 10, L2: 8}, "dfcm-2^10/2^8"},
		{Spec{Kind: "dfcm", L1: 10, L2: 8, Width: 8}, "dfcm-2^10/2^8/w8"},
		{Spec{Kind: "hybrid", L1: 10, L2: 8}, "perfect(stride-2^10+fcm-2^10/2^8)"},
		{Spec{Kind: "dfcm", L1: 10, L2: 8, Delay: 64}, "dfcm-2^10/2^8@delay64"},
	}
	for _, c := range cases {
		p, err := c.spec.New()
		if err != nil {
			t.Errorf("%+v: %v", c.spec, err)
			continue
		}
		if p.Name() != c.name {
			t.Errorf("%+v built %q, want %q", c.spec, p.Name(), c.name)
		}
	}
}

func TestSpecNewErrors(t *testing.T) {
	bad := []struct {
		spec Spec
		want string
	}{
		{Spec{Kind: "oracle", L1: 10}, "unknown predictor"},
		{Spec{Kind: "dfcm", L1: 40, L2: 8}, "level-1"},
		{Spec{Kind: "dfcm", L1: 10, L2: 40}, "level-2"},
		{Spec{Kind: "dfcm", L1: 10, L2: 8, Width: 40}, "stride width"},
		{Spec{Kind: "dfcm", L1: 10, L2: 8, Delay: -1}, "delay"},
	}
	for _, c := range bad {
		if _, err := c.spec.New(); err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%+v: error %v, want substring %q", c.spec, err, c.want)
		}
	}
}

// TestSpecBuiltAreResettable: every predictor a Spec can build must be
// recyclable in place — internal/serve depends on it.
func TestSpecBuiltAreResettable(t *testing.T) {
	for _, kind := range []string{"lvp", "stride", "2delta", "fcm", "dfcm", "hybrid"} {
		p, err := Spec{Kind: kind, L1: 8, L2: 8, Delay: 4}.New()
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if _, ok := p.(Resetter); !ok {
			t.Errorf("%s-built predictor %s is not resettable", kind, p.Name())
		}
	}
}
