package core

import (
	"strings"
	"testing"
)

func TestSpecNewNames(t *testing.T) {
	cases := []struct {
		spec Spec
		name string
	}{
		{Spec{Kind: "lvp", L1: 10}, "lvp-2^10"},
		{Spec{Kind: "stride", L1: 12}, "stride-2^12"},
		{Spec{Kind: "2delta", L1: 12}, "2delta-2^12"},
		{Spec{Kind: "fcm", L1: 10, L2: 8}, "fcm-2^10/2^8"},
		{Spec{Kind: "dfcm", L1: 10, L2: 8}, "dfcm-2^10/2^8"},
		{Spec{Kind: "dfcm", L1: 10, L2: 8, Width: 8}, "dfcm-2^10/2^8/w8"},
		{Spec{Kind: "hybrid", L1: 10, L2: 8}, "perfect(stride-2^10+fcm-2^10/2^8)"},
		{Spec{Kind: "dfcm", L1: 10, L2: 8, Delay: 64}, "dfcm-2^10/2^8@delay64"},
		{Spec{Kind: "tage", L1: 10, L2: 8}, "tage-2^10+4x2^8/t8/h4..64"},
		{Spec{Kind: "tage", L1: 10, L2: 8, Width: 8, Tables: 6, Tag: 10, HistMin: 2, HistMax: 128},
			"tage-2^10+6x2^8/t10/h2..128/w8"},
	}
	for _, c := range cases {
		p, err := c.spec.New()
		if err != nil {
			t.Errorf("%+v: %v", c.spec, err)
			continue
		}
		if p.Name() != c.name {
			t.Errorf("%+v built %q, want %q", c.spec, p.Name(), c.name)
		}
	}
}

func TestSpecNewErrors(t *testing.T) {
	bad := []struct {
		spec Spec
		want string
	}{
		{Spec{Kind: "oracle", L1: 10}, "unknown predictor"},
		{Spec{Kind: "dfcm", L1: 40, L2: 8}, "level-1"},
		{Spec{Kind: "dfcm", L1: 10, L2: 40}, "level-2"},
		{Spec{Kind: "dfcm", L1: 10, L2: 8, Width: 40}, "stride width"},
		{Spec{Kind: "dfcm", L1: 10, L2: 8, Delay: -1}, "delay"},
	}
	for _, c := range bad {
		if _, err := c.spec.New(); err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%+v: error %v, want substring %q", c.spec, err, c.want)
		}
	}
}

// TestSpecBuiltAreResettable: every predictor a Spec can build must be
// recyclable in place — internal/serve depends on it.
func TestSpecBuiltAreResettable(t *testing.T) {
	for _, kind := range []string{"lvp", "stride", "2delta", "fcm", "dfcm", "hybrid", "tage"} {
		p, err := Spec{Kind: kind, L1: 8, L2: 8, Delay: 4}.New()
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if _, ok := p.(Resetter); !ok {
			t.Errorf("%s-built predictor %s is not resettable", kind, p.Name())
		}
	}
}

// TestSpecNewBoundaries pins the exact edges of each validated
// parameter: the largest accepted value and the smallest rejected one.
func TestSpecNewBoundaries(t *testing.T) {
	// Accepted edges stay at small table sizes: the in-range maxima
	// (L1/L2 = 30) are legal but allocate gigabyte tables, so the
	// range ends are exercised on the rejection side only.
	accept := []Spec{
		{Kind: "lvp", L1: 0},                                               // zero-entry table degenerates to 1 entry
		{Kind: "fcm", L1: 0, L2: 1},                                        // both levels minimal
		{Kind: "dfcm", L1: 10, L2: 8, Width: 1},                            // narrowest stride
		{Kind: "dfcm", L1: 10, L2: 8, Width: 32},                           // widest stride
		{Kind: "2delta", L1: 10, Delay: 1 << 20},                           // huge but legal delay
		{Kind: "hybrid", L1: 0, L2: 1},                                     // minimal hybrid
		{Kind: "tage", L1: 8, L2: 1},                                       // minimal tagged tables, default geometry
		{Kind: "tage", L1: 8, L2: 6, Tables: 1, HistMin: 64, HistMax: 64},  // N=1 degenerate series
		{Kind: "tage", L1: 8, L2: 6, Tables: 6, HistMin: 16, HistMax: 16},  // equal-length series
		{Kind: "tage", L1: 8, L2: 6, Tables: 12, HistMin: 1, HistMax: 128}, // max tables + max history
		{Kind: "tage", L1: 8, L2: 6, Tag: 4},                               // narrowest tag
		{Kind: "tage", L1: 8, L2: 6, Tag: 16, Width: 1},                    // widest tag, narrowest stride
	}
	for _, s := range accept {
		if _, err := s.New(); err != nil {
			t.Errorf("%+v rejected: %v", s, err)
		}
	}
	reject := []struct {
		spec Spec
		want string
	}{
		{Spec{Kind: "lvp", L1: 31}, "level-1"},
		{Spec{Kind: "fcm", L1: 10, L2: 31}, "level-2"},
		{Spec{Kind: "fcm", L1: 10, L2: 0}, "level-2"},  // zero-size level-2 table
		{Spec{Kind: "dfcm", L1: 10, L2: 0}, "level-2"}, // zero-size level-2 table
		{Spec{Kind: "hybrid", L1: 10, L2: 0}, "level-2"},
		{Spec{Kind: "dfcm", L1: 10, L2: 8, Width: 33}, "stride width"},
		{Spec{Kind: "stride", L1: 10, Delay: -1}, "delay"},
		{Spec{Kind: "tage", L1: 10, L2: 0}, "tagged-table"},
		{Spec{Kind: "tage", L1: 10, L2: 6, Tables: 13}, "table count"},
		{Spec{Kind: "tage", L1: 10, L2: 6, Tag: 3}, "tag width"},
		{Spec{Kind: "tage", L1: 10, L2: 6, Tag: 17}, "tag width"},
		{Spec{Kind: "tage", L1: 10, L2: 6, HistMax: 129}, "history series"},
		{Spec{Kind: "tage", L1: 10, L2: 6, HistMin: 65}, "history series"}, // min above default max
		{Spec{Kind: "tage", L1: 10, L2: 6, Width: 33}, "stride width"},
		{Spec{}, "unknown predictor"},                            // zero value
		{Spec{Kind: "DFCM", L1: 10, L2: 8}, "unknown predictor"}, // kinds are case-sensitive
		{Spec{Kind: "lvp", L1: ^uint(0)}, "level-1"},             // wraparound-sized table
	}
	for _, c := range reject {
		p, err := c.spec.New()
		if err == nil {
			t.Errorf("%+v accepted as %s", c.spec, p.Name())
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%+v: error %q, want substring %q", c.spec, err, c.want)
		}
	}
}

// TestSpecNewNeverPanics: Spec.New validates instead of panicking —
// specs arrive from flags and network peers, so a malformed one must
// come back as an error even though the underlying constructors panic
// on the same inputs.
func TestSpecNewNeverPanics(t *testing.T) {
	// Valid size values stay small (10/8) so accepted specs allocate
	// kilobytes; the interesting cases are the out-of-range ones,
	// which must error before any allocation happens.
	kinds := []string{"", "lvp", "stride", "2delta", "fcm", "dfcm", "hybrid", "tage", "nonsense"}
	l1s := []uint{0, 10, 31, 64, ^uint(0)}
	l2s := []uint{0, 8, 31, ^uint(0)}
	widths := []uint{0, 1, 32, 33, ^uint(0)}
	delays := []int{-1 << 40, -1, 0, 1, 1 << 20}
	for _, kind := range kinds {
		for _, l1 := range l1s {
			for _, l2 := range l2s {
				for _, w := range widths {
					for _, d := range delays {
						s := Spec{Kind: kind, L1: l1, L2: l2, Width: w, Delay: d}
						func() {
							defer func() {
								if r := recover(); r != nil {
									t.Fatalf("%+v panicked: %v", s, r)
								}
							}()
							p, err := s.New()
							if (p == nil) == (err == nil) {
								t.Fatalf("%+v: predictor %v, err %v — exactly one must be set", s, p, err)
							}
						}()
					}
				}
			}
		}
	}
}

// TestSpecNewNeverPanicsTAGEGeometry sweeps the tage-only fields over
// their edges and past them, including every degenerate history series
// (single table, equal lengths, maximal lengths, inverted ranges):
// Spec.New must return exactly one of (predictor, error) and never
// panic, whatever the geometry.
func TestSpecNewNeverPanicsTAGEGeometry(t *testing.T) {
	tables := []uint{0, 1, 2, 12, 13, 255, ^uint(0)}
	tagsW := []uint{0, 3, 4, 16, 17, ^uint(0)}
	hmins := []uint{0, 1, 16, 64, 128, 129, ^uint(0)}
	hmaxs := []uint{0, 1, 16, 64, 128, 129, ^uint(0)}
	for _, n := range tables {
		for _, tg := range tagsW {
			for _, lo := range hmins {
				for _, hi := range hmaxs {
					s := Spec{Kind: "tage", L1: 6, L2: 4, Tables: n, Tag: tg, HistMin: lo, HistMax: hi}
					func() {
						defer func() {
							if r := recover(); r != nil {
								t.Fatalf("%+v panicked: %v", s, r)
							}
						}()
						p, err := s.New()
						if (p == nil) == (err == nil) {
							t.Fatalf("%+v: predictor %v, err %v — exactly one must be set", s, p, err)
						}
					}()
				}
			}
		}
	}
}

// TestSpecCanonicalTAGE pins the tage defaults and that every other
// kind zeroes the tage-only fields, so canonical-spec comparison
// (checkpoint warm-start, vpstate diff) ignores stray geometry on
// non-tage specs.
func TestSpecCanonicalTAGE(t *testing.T) {
	got := Spec{Kind: "tage", L1: 10, L2: 8}.Canonical()
	want := Spec{Kind: "tage", L1: 10, L2: 8, Width: 32, Tables: 4, Tag: 8, HistMin: 4, HistMax: 64}
	if got != want {
		t.Errorf("tage canonical = %+v, want %+v", got, want)
	}
	off := Spec{Kind: "dfcm", L1: 10, L2: 8, Tables: 6, Tag: 12, HistMin: 2, HistMax: 99}.Canonical()
	if off.Tables != 0 || off.Tag != 0 || off.HistMin != 0 || off.HistMax != 0 {
		t.Errorf("dfcm canonical kept tage fields: %+v", off)
	}
}

// TestSpecWidthIgnoredOffDFCM: Width only applies to dfcm; other
// kinds must accept any width value silently rather than building a
// different predictor.
func TestSpecWidthIgnoredOffDFCM(t *testing.T) {
	for _, kind := range []string{"lvp", "stride", "2delta", "fcm", "hybrid"} {
		base, err := Spec{Kind: kind, L1: 8, L2: 6}.New()
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		wide, err := Spec{Kind: kind, L1: 8, L2: 6, Width: 16}.New()
		if err != nil {
			t.Fatalf("%s with width: %v", kind, err)
		}
		if base.Name() != wide.Name() || base.SizeBits() != wide.SizeBits() {
			t.Errorf("%s: width changed predictor: %s/%d vs %s/%d",
				kind, base.Name(), base.SizeBits(), wide.Name(), wide.SizeBits())
		}
	}
}
