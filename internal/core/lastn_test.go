package core

import (
	"testing"

	"repro/internal/trace"
)

func TestLastNPredictsConstant(t *testing.T) {
	p := NewLastN(8, 4)
	if acc := tailAccuracy(p, repeatSeq([]uint32{9}, 50), 2); acc != 1 {
		t.Errorf("constant accuracy = %v", acc)
	}
}

func TestLastNPredictsAlternating(t *testing.T) {
	// The motivating case from Burtscher & Zorn: values alternating
	// between a small set defeat LVP but fit in n slots. With the
	// most-recent tie-break a 2-cycle is predicted at 50% and a
	// near-constant-with-glitches stream near 100%; the clear win
	// shows on "mostly A, sometimes B".
	vals := make([]uint32, 200)
	for i := range vals {
		if i%5 == 4 {
			vals[i] = 111
		} else {
			vals[i] = 42
		}
	}
	lvp := tailAccuracy(NewLastValue(8), vals, 10)
	ln := tailAccuracy(NewLastN(8, 4), vals, 10)
	if ln <= lvp {
		t.Errorf("last-n (%.3f) should beat LVP (%.3f) on glitchy constants", ln, lvp)
	}
	if ln < 0.75 {
		t.Errorf("last-n accuracy = %.3f, want >= 0.75", ln)
	}
}

func TestLastNKeepsHighConfidenceValues(t *testing.T) {
	p := NewLastN(4, 2)
	// Train 7 as dominant.
	for i := 0; i < 6; i++ {
		p.Update(0x40, 7)
	}
	// Two transient values churn the weaker slot, 7 must survive.
	p.Update(0x40, 100)
	p.Update(0x40, 200)
	if got := p.Predict(0x40); got != 7 {
		t.Errorf("dominant value evicted: predict %d, want 7", got)
	}
}

func TestLastNWidthOne(t *testing.T) {
	// n=1 behaves like a confidence-weighted last-value predictor on
	// constants.
	p := NewLastN(6, 1)
	if acc := tailAccuracy(p, repeatSeq([]uint32{3}, 40), 2); acc != 1 {
		t.Errorf("n=1 constant accuracy = %v", acc)
	}
}

func TestLastNSizeAndName(t *testing.T) {
	p := NewLastN(10, 4)
	if p.SizeBits() != 1024*4*34 {
		t.Errorf("SizeBits = %d", p.SizeBits())
	}
	if p.Name() != "last4-2^10" {
		t.Errorf("Name = %q", p.Name())
	}
}

func TestLastNPanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewLastN(4, 0) },
		func() { NewLastN(4, 9) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("no panic")
				}
			}()
			f()
		}()
	}
}

func TestClassifiedAssignsStrideToStride(t *testing.T) {
	p := NewClassified(8, 16, 8,
		NewLastValue(8), NewStride(8), NewFCM(8, 12))
	res := Run(p, seqSource(0x40, strideSeq(0, 4, 400)))
	if res.Accuracy() < 0.9 {
		t.Errorf("classified accuracy on stride = %.3f", res.Accuracy())
	}
	s := &p.state[pcIndex(0x40, 8)]
	if s.assigned != 1 {
		t.Errorf("assigned to component %d, want stride (1)", s.assigned)
	}
}

func TestClassifiedMarksNoiseUnpredictable(t *testing.T) {
	p := NewClassified(8, 16, 8,
		NewLastValue(8), NewStride(8), NewFCM(8, 12))
	noise := uint32(0x9e3779b9)
	var tr trace.Trace
	for i := 0; i < 400; i++ {
		noise = noise*1664525 + 1013904223
		tr = append(tr, trace.Event{PC: 0x40, Value: noise})
	}
	Run(p, trace.NewReader(tr))
	if p.Unpredictable() != 1 {
		t.Errorf("unpredictable fraction = %.2f, want 1 for pure noise", p.Unpredictable())
	}
}

func TestClassifiedStopsTrainingOtherComponents(t *testing.T) {
	lvp, stride := NewLastValue(8), NewStride(8)
	p := NewClassified(8, 8, 4, lvp, stride)
	// Constant stream: assigns to LVP (component 0 wins ties).
	for i := 0; i < 8; i++ {
		p.Update(0x40, 5)
	}
	s := &p.state[pcIndex(0x40, 8)]
	if s.assigned < 0 {
		t.Fatalf("not assigned after window: %d", s.assigned)
	}
	// Further updates must not reach the unassigned component.
	before := stride.table[pcIndex(0x40, 8)]
	for i := 0; i < 10; i++ {
		p.Update(0x40, 5)
	}
	if stride.table[pcIndex(0x40, 8)] != before && s.assigned != 1 {
		t.Error("unassigned component kept training")
	}
}

func TestClassifiedVsDFCM(t *testing.T) {
	// The paper's related-work argument in miniature: on a workload
	// whose pattern mix shifts between instructions, a dynamically
	// shared DFCM beats a statically partitioned classifier of equal
	// spirit.
	tr := mixedTrace(4000, 13)
	cl := NewClassified(10, 16, 8,
		NewLastValue(8), NewStride(8), NewFCM(8, 10))
	clAcc := Run(cl, trace.NewReader(tr)).Accuracy()
	dfcmAcc := Run(NewDFCM(10, 12), trace.NewReader(tr)).Accuracy()
	if dfcmAcc < clAcc-0.02 {
		t.Errorf("DFCM %.3f should be at least competitive with classification %.3f",
			dfcmAcc, clAcc)
	}
}

func TestClassifiedPanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewClassified(4, 8, 4) },                  // no components
		func() { NewClassified(4, 0, 0, NewLastValue(4)) }, // zero window
		func() { NewClassified(4, 4, 5, NewLastValue(4)) }, // threshold > window
		func() {
			NewClassified(4, 8, 4, NewLastValue(4), NewLastValue(4), NewLastValue(4), NewLastValue(4), NewLastValue(4))
		}, // too many
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("no panic")
				}
			}()
			f()
		}()
	}
}

func TestClassifiedSizeIncludesComponents(t *testing.T) {
	p := NewClassified(8, 16, 8, NewLastValue(8), NewStride(8))
	want := NewLastValue(8).SizeBits() + NewStride(8).SizeBits() + 256*2
	if p.SizeBits() != want {
		t.Errorf("SizeBits = %d, want %d", p.SizeBits(), want)
	}
}
