package core

import (
	"encoding/binary"
	"fmt"

	"repro/internal/hash"
	"repro/internal/trace"
)

// Confidence estimation
//
// A value predictor is only useful inside a processor together with a
// confidence estimator deciding when to act on a prediction. The
// paper's section 4.2 ends with a concrete design suggestion: "the
// design of a confidence estimator for a (D)FCM predictor should
// include tagging the level-2 table with some information to track
// hash-aliasing ... Some bits of a second hashing function, orthogonal
// to the main one, seems to be a good choice for the tag." This file
// implements that suggestion (HashTag) alongside the classical
// per-instruction saturating-counter estimator (CounterConfidence),
// so the two can be compared (experiment ext-confidence).

// ConfidentPredictor is a predictor that can also say whether it
// would act on its prediction.
type ConfidentPredictor interface {
	Predictor
	// PredictConfident returns the prediction and the confidence
	// signal for the instruction at pc.
	PredictConfident(pc uint32) (value uint32, confident bool)
}

// ConfidenceResult accumulates outcomes split by the confidence
// signal.
type ConfidenceResult struct {
	All       Result // every prediction
	Confident Result // predictions flagged confident
}

// Coverage is the fraction of predictions flagged confident.
func (r ConfidenceResult) Coverage() float64 {
	if r.All.Predictions == 0 {
		return 0
	}
	return float64(r.Confident.Predictions) / float64(r.All.Predictions)
}

// RunConfident drives p over src, scoring both the raw accuracy and
// the accuracy of confident predictions.
func RunConfident(p ConfidentPredictor, src trace.Source) ConfidenceResult {
	var r ConfidenceResult
	for {
		e, more := src.Next()
		if !more {
			return r
		}
		pc, value := e.PC, e.Value
		pred, conf := p.PredictConfident(pc)
		correct := pred == value
		r.All.Predictions++
		if correct {
			r.All.Correct++
		}
		if conf {
			r.Confident.Predictions++
			if correct {
				r.Confident.Correct++
			}
		}
		p.Update(pc, value)
	}
}

// CounterConfidence gates any predictor with a per-instruction table
// of saturating counters: +1 when the underlying prediction was
// correct, reset to 0 when wrong (the common "reset" confidence
// scheme); confident while the counter is at or above the threshold.
type CounterConfidence struct {
	p         Predictor
	bits      uint
	counters  []uint8
	max       uint8
	threshold uint8
}

// NewCounterConfidence wraps p with 2^bits counters of the given
// ceiling and confidence threshold. It panics if threshold exceeds
// max or max is 0.
func NewCounterConfidence(p Predictor, bits uint, max, threshold uint8) *CounterConfidence {
	checkBits("confidence", bits, 30)
	if max == 0 || threshold > max {
		panic("core: bad confidence counter parameters")
	}
	return &CounterConfidence{
		p: p, bits: bits, counters: make([]uint8, 1<<bits),
		max: max, threshold: threshold,
	}
}

// PredictConfident implements ConfidentPredictor.
func (c *CounterConfidence) PredictConfident(pc uint32) (uint32, bool) {
	return c.p.Predict(pc), c.counters[pcIndex(pc, c.bits)] >= c.threshold
}

// Predict implements Predictor.
func (c *CounterConfidence) Predict(pc uint32) uint32 { return c.p.Predict(pc) }

// Update trains the counter with the outcome, then the predictor.
// Saturation is branch-free (satConf): a miss decrements by the full
// ceiling, which floors at 0 — exactly the "reset" scheme.
func (c *CounterConfidence) Update(pc, value uint32) {
	i := pcIndex(pc, c.bits)
	hit := hit01(c.p.Predict(pc), value)
	c.counters[i] = uint8(satConf(int32(c.counters[i]), hit, 1, int32(c.max), int32(c.max)))
	c.p.Update(pc, value)
}

// Reset implements Resetter.
func (c *CounterConfidence) Reset() {
	clear(c.counters)
	mustReset(c.p)
}

// AppendState implements Snapshotter: the confidence counters followed
// by the wrapped predictor's nested state.
func (c *CounterConfidence) AppendState(b []byte) []byte {
	b = append(b, c.counters...)
	return appendNested(b, c.p)
}

// RestoreState implements Snapshotter.
func (c *CounterConfidence) RestoreState(data []byte) error {
	if len(data) < len(c.counters) {
		return stateSizeErr("confidence counters", len(c.counters), len(data))
	}
	for _, v := range data[:len(c.counters)] {
		if v > c.max {
			return fmt.Errorf("%w: confidence counter %d exceeds %d", ErrState, v, c.max)
		}
	}
	rest, err := restoreNested(data[len(c.counters):], c.p)
	if err != nil {
		return err
	}
	if len(rest) != 0 {
		return fmt.Errorf("%w: %d trailing bytes after confidence state", ErrState, len(rest))
	}
	copy(c.counters, data)
	return nil
}

// StateTables implements StateTabler.
func (c *CounterConfidence) StateTables() []TableInfo {
	live := 0
	for _, v := range c.counters {
		if v != 0 {
			live++
		}
	}
	return append(
		[]TableInfo{{Name: "counters", Entries: len(c.counters), Live: live}},
		prefixTables(c.p.Name(), c.p)...,
	)
}

// Name implements Predictor.
func (c *CounterConfidence) Name() string {
	return fmt.Sprintf("%s+ctr2^%d(t%d)", c.p.Name(), c.bits, c.threshold)
}

// SizeBits implements Predictor (counter width is bits needed for max).
func (c *CounterConfidence) SizeBits() int64 {
	w := int64(0)
	for m := c.max; m > 0; m >>= 1 {
		w++
	}
	return c.p.SizeBits() + int64(len(c.counters))*w
}

// HistoryFeeder is implemented by the two-level predictors and
// reports the datum that Update(pc, value) would append to the
// instruction's history: the value itself for the FCM, the stride
// (value − last) for the DFCM. Confidence tags must be built from the
// same stream the primary hash consumes.
type HistoryFeeder interface {
	L2Indexer
	// HistoryInput must be called before Update for the same event.
	HistoryInput(pc, value uint32) uint64
	// L1Entries returns the number of level-1 entries.
	L1Entries() int
	// L1Index returns the level-1 index for pc.
	L1Index(pc uint32) uint32
}

// HashTag implements the paper's suggested (D)FCM confidence
// estimator: every level-2 entry carries tagBits bits of a second
// hash of the complete history, computed with an FS R-k function
// orthogonal to the primary one (different shift). A prediction is
// confident when the stored tag matches the current history's tag —
// i.e. when it is unlikely that the entry was last written under a
// different (hash-aliased) history.
type HashTag struct {
	p       Predictor
	feeder  HistoryFeeder
	h2      hash.Func
	tagBits uint
	tagMask uint64
	hist    []uint64 // second-hash history per level-1 entry
	tags    []uint16 // stored tag per level-2 entry
	valid   []bool
}

// NewHashTag wraps a two-level predictor (FCM or DFCM) with hash-tag
// confidence. tagBits (1..16) bits of an FS R-shift second hash are
// stored per level-2 entry. Pick a shift different from the primary
// hash's (5) and below the level-2 index width, so the two functions
// are genuinely orthogonal — with shift >= index width the second
// hash degenerates to an order-1 function of the last input. It
// panics if p does not expose its history stream.
func NewHashTag(p Predictor, tagBits uint, shift uint) *HashTag {
	feeder, ok := p.(HistoryFeeder)
	if !ok {
		panic("core: hash-tag confidence requires a two-level predictor")
	}
	if tagBits == 0 || tagBits > 16 {
		panic("core: tag width out of range [1,16]")
	}
	n := uint(0)
	for e := feeder.L2Entries(); e > 1; e >>= 1 {
		n++
	}
	return &HashTag{
		p:       p,
		feeder:  feeder,
		h2:      hash.NewFSR(n, shift),
		tagBits: tagBits,
		tagMask: hash.Mask(tagBits),
		hist:    make([]uint64, feeder.L1Entries()),
		tags:    make([]uint16, feeder.L2Entries()),
		valid:   make([]bool, feeder.L2Entries()),
	}
}

func (h *HashTag) curTag(pc uint32) uint16 {
	return uint16(h.hist[h.feeder.L1Index(pc)] & h.tagMask)
}

// PredictConfident implements ConfidentPredictor.
func (h *HashTag) PredictConfident(pc uint32) (uint32, bool) {
	idx := h.feeder.L2Index(pc)
	return h.p.Predict(pc), h.valid[idx] && h.tags[idx] == h.curTag(pc)
}

// Predict implements Predictor.
func (h *HashTag) Predict(pc uint32) uint32 { return h.p.Predict(pc) }

// Update stores the current tag at the consulted entry, trains the
// predictor and advances the second-hash history.
func (h *HashTag) Update(pc, value uint32) {
	idx := h.feeder.L2Index(pc)
	h.tags[idx] = h.curTag(pc)
	h.valid[idx] = true
	input := h.feeder.HistoryInput(pc, value)
	h.p.Update(pc, value)
	i := h.feeder.L1Index(pc)
	h.hist[i] = h.h2.Update(h.hist[i], input)
}

// Reset implements Resetter: the second-hash histories, stored tags
// and the wrapped predictor all return to their initial state.
func (h *HashTag) Reset() {
	clear(h.hist)
	clear(h.tags)
	clear(h.valid)
	mustReset(h.p)
}

// AppendState implements Snapshotter: the second-hash histories, the
// stored tags, the validity bits, then the wrapped predictor's nested
// state.
func (h *HashTag) AppendState(b []byte) []byte {
	for _, v := range h.hist {
		b = binary.BigEndian.AppendUint64(b, v)
	}
	for _, t := range h.tags {
		b = binary.BigEndian.AppendUint16(b, t)
	}
	for _, v := range h.valid {
		if v {
			b = append(b, 1)
		} else {
			b = append(b, 0)
		}
	}
	return appendNested(b, h.p)
}

// RestoreState implements Snapshotter.
func (h *HashTag) RestoreState(data []byte) error {
	fixed := 8*len(h.hist) + 2*len(h.tags) + len(h.valid)
	if len(data) < fixed {
		return stateSizeErr("hash-tag", fixed, len(data))
	}
	histMask := hash.Mask(h.h2.IndexBits())
	for i := range h.hist {
		v := binary.BigEndian.Uint64(data[8*i:])
		if v&^histMask != 0 {
			return fmt.Errorf("%w: hash-tag history %#x wider than %d bits", ErrState, v, h.h2.IndexBits())
		}
		h.hist[i] = v
	}
	tags := data[8*len(h.hist):]
	for i := range h.tags {
		t := binary.BigEndian.Uint16(tags[2*i:])
		if uint64(t)&^h.tagMask != 0 {
			return fmt.Errorf("%w: hash tag %#x wider than %d bits", ErrState, t, h.tagBits)
		}
		h.tags[i] = t
	}
	valid := tags[2*len(h.tags):]
	for i := range h.valid {
		switch valid[i] {
		case 0:
			h.valid[i] = false
		case 1:
			h.valid[i] = true
		default:
			return fmt.Errorf("%w: hash-tag validity byte %d", ErrState, valid[i])
		}
	}
	rest, err := restoreNested(data[fixed:], h.p)
	if err != nil {
		return err
	}
	if len(rest) != 0 {
		return fmt.Errorf("%w: %d trailing bytes after hash-tag state", ErrState, len(rest))
	}
	return nil
}

// StateTables implements StateTabler.
func (h *HashTag) StateTables() []TableInfo {
	histLive, tagLive := 0, 0
	for _, v := range h.hist {
		if v != 0 {
			histLive++
		}
	}
	for i := range h.valid {
		if h.valid[i] {
			tagLive++
		}
	}
	ts := []TableInfo{
		{Name: "hist2", Entries: len(h.hist), Live: histLive},
		{Name: "tags", Entries: len(h.tags), Live: tagLive},
	}
	return append(ts, prefixTables(h.p.Name(), h.p)...)
}

// Name implements Predictor.
func (h *HashTag) Name() string {
	return fmt.Sprintf("%s+tag%d(%s)", h.p.Name(), h.tagBits, h.h2.Name())
}

// SizeBits implements Predictor: the second history per level-1 entry
// plus the tag per level-2 entry.
func (h *HashTag) SizeBits() int64 {
	return h.p.SizeBits() +
		int64(len(h.hist))*int64(h.h2.IndexBits()) +
		int64(len(h.tags))*int64(h.tagBits)
}

// Combined ANDs two confidence estimators over the same underlying
// predictor: confident only when both agree. The natural pairing is a
// HashTag (which vetoes hash-aliased lookups) with a CounterConfidence
// (which vetoes instructions with a poor track record); together they
// approach the counter's precision at better coverage than the
// counter alone on aliasing-dominated workloads.
//
// Both estimators must wrap the *same* predictor instance; Combined
// updates the shared predictor exactly once per event.
type Combined struct {
	p    Predictor
	tag  *HashTag
	ctr  *CounterConfidence
	name string
}

// NewCombined builds the AND of a hash-tag and a counter estimator
// over predictor p (which must be the predictor both wrap).
func NewCombined(p Predictor, tag *HashTag, ctr *CounterConfidence) *Combined {
	if tag.p != p || ctr.p != p {
		panic("core: combined estimators must wrap the same predictor")
	}
	return &Combined{p: p, tag: tag, ctr: ctr,
		name: fmt.Sprintf("%s+tag&ctr", p.Name())}
}

// PredictConfident implements ConfidentPredictor.
func (c *Combined) PredictConfident(pc uint32) (uint32, bool) {
	v, tagOK := c.tag.PredictConfident(pc)
	_, ctrOK := c.ctr.PredictConfident(pc)
	return v, tagOK && ctrOK
}

// Predict implements Predictor.
func (c *Combined) Predict(pc uint32) uint32 { return c.p.Predict(pc) }

// Update trains both estimators' metadata and the shared predictor
// once.
func (c *Combined) Update(pc, value uint32) {
	// Counter bookkeeping (reads the shared predictor pre-update);
	// same branch-free reset-on-miss saturation as CounterConfidence.
	i := pcIndex(pc, c.ctr.bits)
	hit := hit01(c.p.Predict(pc), value)
	c.ctr.counters[i] = uint8(satConf(int32(c.ctr.counters[i]), hit, 1, int32(c.ctr.max), int32(c.ctr.max)))
	// Tag bookkeeping updates the shared predictor itself.
	c.tag.Update(pc, value)
}

// Reset implements Resetter: the tag reset also resets the shared
// predictor, so only the counter table remains to clear.
func (c *Combined) Reset() {
	c.tag.Reset()
	clear(c.ctr.counters)
}

// AppendState implements Snapshotter: the tag estimator's nested state
// (which embeds the shared predictor exactly once) followed by the
// counter table alone.
func (c *Combined) AppendState(b []byte) []byte {
	b = appendNested(b, c.tag)
	return append(b, c.ctr.counters...)
}

// RestoreState implements Snapshotter: restoring the tag block also
// restores the shared predictor, so only the counters remain.
func (c *Combined) RestoreState(data []byte) error {
	rest, err := restoreNested(data, c.tag)
	if err != nil {
		return err
	}
	if len(rest) != len(c.ctr.counters) {
		return stateSizeErr("combined counters", len(c.ctr.counters), len(rest))
	}
	for _, v := range rest {
		if v > c.ctr.max {
			return fmt.Errorf("%w: confidence counter %d exceeds %d", ErrState, v, c.ctr.max)
		}
	}
	copy(c.ctr.counters, rest)
	return nil
}

// StateTables implements StateTabler.
func (c *Combined) StateTables() []TableInfo {
	live := 0
	for _, v := range c.ctr.counters {
		if v != 0 {
			live++
		}
	}
	return append(
		prefixTables("tag", c.tag),
		TableInfo{Name: "counters", Entries: len(c.ctr.counters), Live: live},
	)
}

// Name implements Predictor.
func (c *Combined) Name() string { return c.name }

// SizeBits implements Predictor: the predictor plus both estimators'
// metadata (counted once each).
func (c *Combined) SizeBits() int64 {
	return c.tag.SizeBits() + (c.ctr.SizeBits() - c.p.SizeBits())
}
