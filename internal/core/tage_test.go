package core

import (
	"strings"
	"testing"

	"repro/internal/hash"
)

// scratchFold computes register r's folded history from first
// principles: the XOR of the last foldLen[r] pushed bits, bit j
// (counting back from the newest) rotated to position j mod width.
// This is the definition pushHistory's incremental recurrence and
// rebuildFolds must both satisfy.
func scratchFold(p *TAGE, r int, bits []uint8) uint32 {
	w := p.foldWidth[r]
	var c uint32
	for j := 0; j < int(p.foldLen[r]) && j < len(bits); j++ {
		c ^= uint32(bits[len(bits)-1-j]) << (uint(j) % w)
	}
	return c
}

// TestTAGEFoldedHistoryMatchesScratch is the folded-history property
// test: after an arbitrary interleaving of Updates and Resets, every
// incremental folded register equals the from-scratch fold of the full
// history window. The shadow history replicates Update's bit stream
// (the folded stride of each update) independently of the ring.
func TestTAGEFoldedHistoryMatchesScratch(t *testing.T) {
	p := NewTAGE(6, 5, 32, 5, 9, 3, 96)
	var shadow []uint8
	rnd := uint32(88172645)
	next := func() uint32 {
		rnd ^= rnd << 13
		rnd ^= rnd >> 17
		rnd ^= rnd << 5
		return rnd
	}
	for step := 0; step < 4000; step++ {
		if step%977 == 976 { // arbitrary interleaved resets
			p.Reset()
			shadow = shadow[:0]
			continue
		}
		pc := (next() % 64) << 2
		value := next()
		stride := value - p.last[(pc>>2)&p.l1mask]
		p.Update(pc, value)
		folded := uint32(hash.Fold(uint64(stride), tageBitsPerEvent))
		for b := uint(0); b < tageBitsPerEvent; b++ {
			shadow = append(shadow, uint8((folded>>b)&1))
		}
		if step%37 != 0 { // check a sample of steps, and always the first few
			if step > 8 {
				continue
			}
		}
		for r := range p.fold {
			if want := scratchFold(p, r, shadow); p.fold[r] != want {
				t.Fatalf("step %d register %d: incremental %#x, scratch %#x", step, r, p.fold[r], want)
			}
		}
	}
	// The same property must hold for registers rebuilt from a restored
	// ring: snapshot, restore, and compare against scratch again.
	state := p.AppendState(nil)
	q := NewTAGE(6, 5, 32, 5, 9, 3, 96)
	if err := q.RestoreState(state); err != nil {
		t.Fatal(err)
	}
	for r := range q.fold {
		if want := scratchFold(q, r, shadow); q.fold[r] != want {
			t.Fatalf("restored register %d: rebuilt %#x, scratch %#x", r, q.fold[r], want)
		}
	}
}

// TestTAGEHistorySeries pins the series generator: exact endpoints,
// non-decreasing, degenerate single-table and equal-length forms.
func TestTAGEHistorySeries(t *testing.T) {
	cases := []struct {
		n          int
		hmin, hmax uint
	}{
		{4, 4, 64}, {6, 2, 128}, {2, 1, 128}, {12, 1, 128},
		{1, 4, 64}, {3, 16, 16}, {5, 7, 8},
	}
	for _, c := range cases {
		s := TAGEHistorySeries(c.n, c.hmin, c.hmax)
		if len(s) != c.n {
			t.Fatalf("series(%d,%d,%d) has %d entries", c.n, c.hmin, c.hmax, len(s))
		}
		if c.n == 1 {
			if s[0] != c.hmax {
				t.Errorf("series(1,%d,%d) = %v, want [%d]", c.hmin, c.hmax, s, c.hmax)
			}
			continue
		}
		if s[0] != c.hmin || s[c.n-1] != c.hmax {
			t.Errorf("series(%d,%d,%d) = %v: endpoints not pinned", c.n, c.hmin, c.hmax, s)
		}
		for i := 1; i < c.n; i++ {
			if s[i] < s[i-1] {
				t.Errorf("series(%d,%d,%d) = %v: decreasing at %d", c.n, c.hmin, c.hmax, s, i)
			}
		}
	}
}

// TestTAGELearnsHistoryPattern: a value stream whose stride alternates
// defeats any single-stride predictor (the base component included)
// but is fully determined by one event of stride history; the tagged
// tables must pick it up. This is the accuracy mechanism the whole
// subsystem exists for, so it gets a direct behavioural pin.
func TestTAGELearnsHistoryPattern(t *testing.T) {
	p := NewTAGE(6, 6, 32, 4, 8, 2, 32)
	v := uint32(0)
	strides := []uint32{3, 17} // alternating: base stride is always wrong
	warmup, measure := 2000, 2000
	for i := 0; i < warmup; i++ {
		v += strides[i%2]
		p.Update(0x40, v)
	}
	hits := 0
	for i := 0; i < measure; i++ {
		v += strides[(warmup+i)%2]
		if p.Predict(0x40) == v {
			hits++
		}
		p.Update(0x40, v)
	}
	if acc := float64(hits) / float64(measure); acc < 0.95 {
		t.Errorf("alternating-stride accuracy %.3f, want >= 0.95 (tagged history not engaged)", acc)
	}
}

// TestTAGERestoreErrors covers the RestoreState validation paths: a
// well-formed frame restores, and each field family rejects
// out-of-range bytes with ErrState.
func TestTAGERestoreErrors(t *testing.T) {
	mk := func() *TAGE { return NewTAGE(4, 3, 8, 2, 6, 2, 8) }
	p := mk()
	for i, e := range trainEvents(500) {
		_ = i
		p.Update(e.PC, e.Value)
	}
	good := p.AppendState(nil)
	if err := mk().RestoreState(good); err != nil {
		t.Fatalf("valid state rejected: %v", err)
	}

	nBase := 1 << 4
	nTagged := 2 << 3
	off := struct {
		bstride, tags, strides, conf, ubits, ring int
	}{
		bstride: 4 * nBase,
		tags:    8 * nBase,
		strides: 8*nBase + 4*nTagged,
		conf:    8*nBase + 8*nTagged,
		ubits:   8*nBase + 8*nTagged + nTagged,
		ring:    8*nBase + 8*nTagged + 2*nTagged,
	}
	corrupt := func(name string, at int, b byte) {
		bad := append([]byte(nil), good...)
		bad[at] = b
		if err := mk().RestoreState(bad); err == nil {
			t.Errorf("%s corruption at %d accepted", name, at)
		}
	}
	corrupt("base stride width", off.bstride, 0xff) // stride wider than 8 bits
	corrupt("tag width", off.tags, 0xff)            // tag wider than 6 bits
	corrupt("stride width", off.strides, 0xff)
	corrupt("confidence", off.conf, 4)
	corrupt("usefulness", off.ubits, 4)
	corrupt("ring bit", off.ring, 2)
	if err := mk().RestoreState(good[:len(good)-1]); err == nil {
		t.Error("truncated state accepted")
	}
	if err := mk().RestoreState(append(append([]byte(nil), good...), 0)); err == nil {
		t.Error("oversized state accepted")
	}
}

// TestTAGEStateTables sanity-checks the occupancy view: base + one row
// per tagged table + the history ring, with live counts that grow
// under training.
func TestTAGEStateTables(t *testing.T) {
	p := NewTAGE(6, 5, 32, 3, 8, 4, 32)
	tables := p.StateTables()
	if len(tables) != 1+3+1 {
		t.Fatalf("got %d tables, want 5", len(tables))
	}
	for _, ti := range tables {
		if ti.Live != 0 {
			t.Errorf("fresh predictor table %s has %d live entries", ti.Name, ti.Live)
		}
	}
	for _, e := range trainEvents(3000) {
		p.Update(e.PC, e.Value)
	}
	tables = p.StateTables()
	if tables[0].Name != "base" || tables[0].Live == 0 {
		t.Errorf("trained base table: %+v", tables[0])
	}
	if !strings.HasPrefix(tables[1].Name, "t1(") {
		t.Errorf("tagged table name %q", tables[1].Name)
	}
	if last := tables[len(tables)-1]; last.Name != "hist" || last.Live == 0 {
		t.Errorf("history table: %+v", last)
	}
}

// TestTAGEDiagnostics exercises the vpstate-facing accessors.
func TestTAGEDiagnostics(t *testing.T) {
	p := NewTAGE(6, 5, 32, 3, 8, 4, 32)
	if p.NumTables() != 3 {
		t.Fatalf("NumTables = %d", p.NumTables())
	}
	if h := p.HistoryLengths(); len(h) != 3 || h[0] != 4 || h[2] != 32 {
		t.Fatalf("HistoryLengths = %v", h)
	}
	// On a fresh table every tag is zero, so a PC whose computed tag
	// folds to zero can spuriously match (prediction-neutral: conf 0
	// defers to the altpred) — the histogram must still cover every
	// base slot and be dominated by the base bucket.
	ph := p.ProviderHistogram()
	sumPH := 0
	for _, n := range ph {
		sumPH += n
	}
	if len(ph) != 4 || sumPH != 1<<6 || ph[3] < 1<<5 {
		t.Fatalf("fresh provider histogram %v", ph)
	}
	for _, e := range trainEvents(3000) {
		p.Update(e.PC, e.Value)
	}
	total := 0
	for t := 0; t < 3; t++ {
		h := p.UHistogram(t)
		for _, n := range h {
			total += n
		}
	}
	if total != 3*(1<<5) {
		t.Fatalf("u histograms cover %d entries, want %d", total, 3*(1<<5))
	}
	q := NewTAGE(6, 5, 32, 3, 8, 4, 32)
	div, ok := p.DivergingEntries(q)
	if !ok || len(div) != 3 {
		t.Fatalf("DivergingEntries: %v %v", div, ok)
	}
	sum := 0
	for _, d := range div {
		sum += d
	}
	if sum == 0 {
		t.Error("trained vs fresh should diverge somewhere")
	}
	if _, ok := p.DivergingEntries(NewTAGE(6, 5, 32, 4, 8, 4, 32)); ok {
		t.Error("geometry mismatch must report !ok")
	}
}
