package core

import (
	"testing"

	"repro/internal/trace"
)

// trainEvents is a deterministic mixed stream over a handful of PCs:
// constant, stride and repeating-context patterns plus a xorshift
// stream, enough to dirty every table of every predictor under test.
func trainEvents(n int) trace.Trace {
	t := make(trace.Trace, 0, n)
	pattern := []uint32{9, 2, 25, 7, 1, 130, 4, 66}
	rnd := uint32(2463534242)
	for i := 0; len(t) < n; i++ {
		t = append(t,
			trace.Event{PC: 0x1000, Value: 42},
			trace.Event{PC: 0x1004, Value: uint32(i) * 8},
			trace.Event{PC: 0x1008, Value: pattern[i%len(pattern)]},
		)
		rnd ^= rnd << 13
		rnd ^= rnd >> 17
		rnd ^= rnd << 5
		t = append(t, trace.Event{PC: 0x100c, Value: rnd & 0xffff})
	}
	return t[:n]
}

// resettables enumerates one instance of every predictor the package
// exports, paired with a factory producing an identical fresh one.
func resettables() map[string]func() Predictor {
	return map[string]func() Predictor{
		"lvp":      func() Predictor { return NewLastValue(8) },
		"stride":   func() Predictor { return NewStride(8) },
		"2delta":   func() Predictor { return NewTwoDelta(8) },
		"fcm":      func() Predictor { return NewFCM(8, 10) },
		"dfcm":     func() Predictor { return NewDFCMWidth(8, 10, 8) },
		"lastn":    func() Predictor { return NewLastN(8, 4) },
		"delayed":  func() Predictor { return NewDelayed(NewDFCM(8, 10), 16) },
		"perfect":  func() Predictor { return NewPerfectHybrid(NewStride(8), NewFCM(8, 10)) },
		"meta":     func() Predictor { return NewMetaHybrid(NewStride(8), NewDFCM(8, 10), 8) },
		"counter":  func() Predictor { return NewCounterConfidence(NewDFCM(8, 10), 8, 7, 4) },
		"hashtag":  func() Predictor { return NewHashTag(NewDFCM(8, 10), 8, 3) },
		"classify": func() Predictor { return NewClassified(8, 16, 8, NewStride(8), NewFCM(8, 10)) },
		"tage":     func() Predictor { return NewTAGE(8, 6, 32, 4, 8, 4, 64) },
		"tage-w8":  func() Predictor { return NewTAGE(8, 6, 8, 3, 10, 2, 32) },
	}
}

// TestResetMatchesFresh trains a predictor, resets it, and asserts the
// post-reset run is event-for-event identical to a fresh predictor's
// run — the contract internal/serve relies on to recycle sessions.
func TestResetMatchesFresh(t *testing.T) {
	events := trainEvents(2000)
	for name, mk := range resettables() {
		t.Run(name, func(t *testing.T) {
			p := mk()
			r, ok := p.(Resetter)
			if !ok {
				t.Fatalf("%s does not implement Resetter", p.Name())
			}
			Run(p, trace.NewReader(events)) // dirty every table
			r.Reset()

			fresh := mk()
			for _, e := range events {
				got, want := p.Predict(e.PC), fresh.Predict(e.PC)
				if got != want {
					t.Fatalf("post-reset Predict(%#x) = %d, fresh = %d", e.PC, got, want)
				}
				p.Update(e.PC, e.Value)
				fresh.Update(e.PC, e.Value)
			}
		})
	}
}

// TestTryReset covers the helper's both outcomes.
func TestTryReset(t *testing.T) {
	p := NewDFCM(6, 8)
	Run(p, trace.NewReader(trainEvents(100)))
	if !TryReset(p) {
		t.Fatal("DFCM should be resettable")
	}
	if got, want := p.Predict(0x1000), NewDFCM(6, 8).Predict(0x1000); got != want {
		t.Fatalf("post-TryReset prediction %d, fresh %d", got, want)
	}
	if TryReset(unresettable{}) {
		t.Fatal("TryReset on a non-Resetter must report false")
	}
}

type unresettable struct{}

func (unresettable) Predict(pc uint32) uint32 { return 0 }
func (unresettable) Update(pc, value uint32)  {}
func (unresettable) Name() string             { return "unresettable" }
func (unresettable) SizeBits() int64          { return 0 }

// TestDelayedResetDropsQueue asserts a reset Delayed predictor does
// not later apply updates queued before the reset.
func TestDelayedResetDropsQueue(t *testing.T) {
	d := NewDelayed(NewLastValue(6), 4)
	for i := 0; i < 3; i++ {
		d.Update(0x40, 77) // queued, not yet applied
	}
	d.Reset()
	// Drain past the delay window; stale updates must not surface.
	for i := 0; i < 10; i++ {
		if got := d.Predict(0x40); got != 0 {
			t.Fatalf("stale queued update leaked through Reset: got %d", got)
		}
		d.Update(0x40, 0)
	}
}
