package core

import (
	"testing"

	"repro/internal/trace"
)

// seqSource builds a trace where every event comes from one static
// instruction at pc.
func seqSource(pc uint32, values []uint32) trace.Source {
	t := make(trace.Trace, len(values))
	for i, v := range values {
		t[i] = trace.Event{PC: pc, Value: v}
	}
	return trace.NewReader(t)
}

// strideSeq returns n values start, start+s, start+2s, ...
func strideSeq(start, s uint32, n int) []uint32 {
	out := make([]uint32, n)
	v := start
	for i := range out {
		out[i] = v
		v += s
	}
	return out
}

// repeatSeq repeats pattern until n values are produced.
func repeatSeq(pattern []uint32, n int) []uint32 {
	out := make([]uint32, n)
	for i := range out {
		out[i] = pattern[i%len(pattern)]
	}
	return out
}

// tailAccuracy runs p over the values at a single PC and returns the
// accuracy over the events after the first skip.
func tailAccuracy(p Predictor, values []uint32, skip int) float64 {
	var res Result
	for i, v := range values {
		correct := p.Predict(0x1000) == v
		p.Update(0x1000, v)
		if i >= skip {
			res.Predictions++
			if correct {
				res.Correct++
			}
		}
	}
	return res.Accuracy()
}

func TestResultAccuracy(t *testing.T) {
	var r Result
	if r.Accuracy() != 0 {
		t.Error("empty result should have accuracy 0")
	}
	r = Result{Predictions: 4, Correct: 3}
	if r.Accuracy() != 0.75 {
		t.Errorf("accuracy = %v, want 0.75", r.Accuracy())
	}
	r.Add(Result{Predictions: 4, Correct: 1})
	if r.Predictions != 8 || r.Correct != 4 {
		t.Errorf("after Add: %+v", r)
	}
}

func TestRunCountsEvents(t *testing.T) {
	p := NewLastValue(8)
	res := Run(p, seqSource(0x40, []uint32{7, 7, 7, 7}))
	if res.Predictions != 4 {
		t.Fatalf("predictions = %d, want 4", res.Predictions)
	}
	// First prediction sees an empty table (predicts 0), rest are correct.
	if res.Correct != 3 {
		t.Errorf("correct = %d, want 3", res.Correct)
	}
}

func TestRunUsesScorer(t *testing.T) {
	// A perfect hybrid of LVP and stride must get a stride sequence
	// right even though LVP alone would not.
	h := NewPerfectHybrid(NewLastValue(6), NewStride(6))
	res := Run(h, seqSource(0x40, strideSeq(100, 4, 50)))
	if res.Predictions != 50 {
		t.Fatalf("predictions = %d", res.Predictions)
	}
	if res.Correct < 47 { // warmup only
		t.Errorf("perfect hybrid correct = %d/50, want >= 47", res.Correct)
	}
}

func TestPCIndexDropsAlignmentBits(t *testing.T) {
	// Consecutive word-aligned PCs must map to consecutive entries.
	if pcIndex(0x1000, 8) == pcIndex(0x1004, 8) {
		t.Error("adjacent instructions alias in a 256-entry table")
	}
	if pcIndex(0x1000, 8) != pcIndex(0x1000+4*256, 8) {
		t.Error("table should wrap after 2^bits instructions")
	}
}

func TestLastValueConstantPattern(t *testing.T) {
	p := NewLastValue(10)
	if acc := tailAccuracy(p, repeatSeq([]uint32{42}, 100), 1); acc != 1 {
		t.Errorf("constant pattern accuracy = %v, want 1", acc)
	}
}

func TestLastValueMissesStridePattern(t *testing.T) {
	p := NewLastValue(10)
	if acc := tailAccuracy(p, strideSeq(0, 1, 100), 1); acc != 0 {
		t.Errorf("stride pattern accuracy = %v, want 0 for LVP", acc)
	}
}

func TestLastValueAliasing(t *testing.T) {
	// Two PCs mapping to the same entry interfere.
	p := NewLastValue(2) // 4 entries
	p.Update(0x0, 1)
	p.Update(0x0+4*4, 2) // same entry
	if got := p.Predict(0x0); got != 2 {
		t.Errorf("aliased entry predicts %d, want 2", got)
	}
}

func TestStridePredictsStridePattern(t *testing.T) {
	for _, s := range []uint32{1, 4, 8, 0xfffffff0 /* negative stride */} {
		p := NewStride(10)
		if acc := tailAccuracy(p, strideSeq(1000, s, 100), 2); acc != 1 {
			t.Errorf("stride %d: accuracy = %v, want 1", int32(s), acc)
		}
	}
}

func TestStridePredictsConstantPattern(t *testing.T) {
	p := NewStride(10)
	if acc := tailAccuracy(p, repeatSeq([]uint32{5}, 50), 2); acc != 1 {
		t.Errorf("constant accuracy = %v, want 1", acc)
	}
}

func TestStrideConfidenceProtectsAcrossReset(t *testing.T) {
	// A loop counter 0..9 repeated: the reset (9 -> 0) is one
	// misprediction; a confident predictor must not unlearn the stride,
	// so the value after the reset is predicted correctly again.
	p := NewStride(10)
	vals := repeatSeq(strideSeq(0, 1, 10), 60)
	// After enough repetitions confidence saturates; measure the last
	// two full loops: exactly 1 miss per loop (the wraparound).
	var miss int
	for i, v := range vals {
		if p.Predict(0x40) != v && i >= 40 {
			miss++
		}
		p.Update(0x40, v)
	}
	if miss != 2 {
		t.Errorf("misses over 2 loops = %d, want 2 (one per wraparound)", miss)
	}
}

func TestStrideConfidenceCounterSaturation(t *testing.T) {
	p := NewStride(4)
	e := &p.table[pcIndex(0x40, 4)]
	for _, v := range strideSeq(0, 3, 20) {
		p.Update(0x40, v)
	}
	if e.conf != strideConfMax {
		t.Errorf("confidence = %d, want saturated %d", e.conf, strideConfMax)
	}
	// A wrong outcome decrements by 2.
	p.Update(0x40, 9999)
	if e.conf != strideConfMax-strideConfDecrement {
		t.Errorf("confidence after miss = %d, want %d", e.conf, strideConfMax-strideConfDecrement)
	}
	// Saturates at zero, never wraps.
	for i := 0; i < 10; i++ {
		p.Update(0x40, uint32(100000+i*17+i*i))
	}
	if e.conf > strideConfMax {
		t.Errorf("confidence wrapped: %d", e.conf)
	}
}

func TestTwoDeltaPredictsStridePattern(t *testing.T) {
	p := NewTwoDelta(10)
	if acc := tailAccuracy(p, strideSeq(7, 3, 100), 3); acc != 1 {
		t.Errorf("accuracy = %v, want 1", acc)
	}
}

func TestTwoDeltaResetCostsOneMiss(t *testing.T) {
	// The defining property (section 2.2): a reset of a loop control
	// variable introduces only one misprediction, because the stride
	// must occur twice in a row before s1 is replaced.
	p := NewTwoDelta(10)
	vals := repeatSeq(strideSeq(0, 1, 20), 100)
	var miss int
	for i, v := range vals {
		if p.Predict(0x40) != v && i >= 60 {
			miss++
		}
		p.Update(0x40, v)
	}
	if miss != 2 { // two wraparounds in the measured window
		t.Errorf("misses = %d, want 2", miss)
	}
}

func TestSizeBitsAccounting(t *testing.T) {
	cases := []struct {
		p    Predictor
		want int64
	}{
		{NewLastValue(10), 1024 * 32},
		{NewStride(10), 1024 * 67},
		{NewTwoDelta(10), 1024 * 96},
		{NewFCM(16, 12), 1<<16*12 + 1<<12*32},
		{NewDFCM(16, 12), 1<<16*(12+32) + 1<<12*32},
		{NewDFCMWidth(16, 12, 8), 1<<16*(12+32) + 1<<12*8},
		{NewPerfectHybrid(NewLastValue(4), NewStride(4)), 16*32 + 16*67},
		{NewMetaHybrid(NewLastValue(4), NewStride(4), 4), 16*32 + 16*67 + 16*2},
	}
	for _, c := range cases {
		if got := c.p.SizeBits(); got != c.want {
			t.Errorf("%s: SizeBits = %d, want %d", c.p.Name(), got, c.want)
		}
	}
}

func TestNames(t *testing.T) {
	cases := []struct {
		p    Predictor
		want string
	}{
		{NewLastValue(6), "lvp-2^6"},
		{NewStride(8), "stride-2^8"},
		{NewTwoDelta(8), "2delta-2^8"},
		{NewFCM(16, 12), "fcm-2^16/2^12"},
		{NewDFCM(16, 12), "dfcm-2^16/2^12"},
		{NewDFCMWidth(16, 12, 16), "dfcm-2^16/2^12/w16"},
		{NewDelayed(NewFCM(4, 8), 32), "fcm-2^4/2^8@delay32"},
	}
	for _, c := range cases {
		if got := c.p.Name(); got != c.want {
			t.Errorf("Name = %q, want %q", got, c.want)
		}
	}
}

func TestConstructorPanics(t *testing.T) {
	cases := []struct {
		name string
		f    func()
	}{
		{"lvp width", func() { NewLastValue(31) }},
		{"dfcm stride width 0", func() { NewDFCMWidth(4, 8, 0) }},
		{"dfcm stride width 33", func() { NewDFCMWidth(4, 8, 33) }},
		{"delayed negative", func() { NewDelayed(NewLastValue(4), -1) }},
		{"empty hybrid", func() { NewPerfectHybrid() }},
	}
	for _, c := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", c.name)
				}
			}()
			c.f()
		}()
	}
}
