package core

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Durable predictor state
//
// Every predictor in this package is pure table state: given the same
// construction parameters and the same mutable state bytes, two
// instances are behaviourally indistinguishable. The Snapshotter
// interface exports exactly that mutable state — no construction
// parameters, no derived caches — so a predictor trained in one
// process can be frozen, shipped, and resumed in another with
// byte-identical subsequent predictions. The framing, versioning and
// checksumming around these raw bytes live in internal/snapshot; this
// layer defines only the per-predictor state layout.
//
// Layout discipline: all integers are big-endian (matching the VP1
// wire protocol), tables are emitted in declaration order, and a
// wrapped predictor's state is embedded as a length-prefixed nested
// block so wrappers compose without knowing their children's sizes.

// Snapshotter is implemented by predictors whose complete learned
// state can be exported and re-imported. The contract mirrors
// Resetter's: RestoreState on a freshly constructed predictor must
// leave it byte-for-byte equivalent to the instance AppendState was
// called on, provided both were built with identical parameters.
type Snapshotter interface {
	Predictor
	// AppendState appends the predictor's complete mutable state to b
	// and returns the extended slice.
	AppendState(b []byte) []byte
	// RestoreState replaces the predictor's learned state with data,
	// which must be exactly one AppendState output from an identically
	// configured predictor. On error the predictor's state is
	// unspecified; callers restore into a discardable fresh instance
	// (internal/snapshot does).
	RestoreState(data []byte) error
}

// TableInfo describes one state table of a predictor for inspection
// (cmd/vpstate). Live counts entries that differ from their
// freshly-constructed value.
type TableInfo struct {
	Name    string
	Entries int
	Live    int
}

// StateTabler is implemented by predictors that can describe their
// state tables for inspection. Wrappers prefix their components'
// table names with the component name.
type StateTabler interface {
	StateTables() []TableInfo
}

// ErrState is wrapped by every RestoreState failure, so callers can
// distinguish malformed state from other errors.
var ErrState = errors.New("core: malformed predictor state")

// stateSizeErr reports a state blob whose size does not match the
// predictor's tables.
func stateSizeErr(what string, want, got int) error {
	return fmt.Errorf("%w: %s state is %d bytes, want %d", ErrState, what, got, want)
}

// mustSnapshotter returns p as a Snapshotter and panics if it is not
// one — a wrapper's snapshot is only meaningful when it reaches every
// table underneath it (the same contract as mustReset).
func mustSnapshotter(p Predictor) Snapshotter {
	s, ok := p.(Snapshotter)
	if !ok {
		panic("core: " + p.Name() + " does not implement Snapshotter")
	}
	return s
}

// appendNested appends a length-prefixed child state block.
func appendNested(b []byte, p Predictor) []byte {
	off := len(b)
	b = append(b, 0, 0, 0, 0)
	b = mustSnapshotter(p).AppendState(b)
	binary.BigEndian.PutUint32(b[off:], uint32(len(b)-off-4))
	return b
}

// splitNested splits one length-prefixed child block off the front of
// data, length-checking before any use of the claimed size.
func splitNested(data []byte) (child, rest []byte, err error) {
	if len(data) < 4 {
		return nil, nil, fmt.Errorf("%w: truncated nested state header", ErrState)
	}
	n := binary.BigEndian.Uint32(data)
	if uint64(len(data)-4) < uint64(n) {
		return nil, nil, fmt.Errorf("%w: nested state claims %d bytes, %d remain", ErrState, n, len(data)-4)
	}
	return data[4 : 4+n], data[4+n:], nil
}

// restoreNested splits one child block and restores it into p.
func restoreNested(data []byte, p Predictor) (rest []byte, err error) {
	child, rest, err := splitNested(data)
	if err != nil {
		return nil, err
	}
	if err := mustSnapshotter(p).RestoreState(child); err != nil {
		return nil, err
	}
	return rest, nil
}

// prefixTables returns ts with every table name prefixed, for wrappers
// aggregating component tables.
func prefixTables(prefix string, p Predictor) []TableInfo {
	st, ok := p.(StateTabler)
	if !ok {
		return nil
	}
	ts := st.StateTables()
	out := make([]TableInfo, len(ts))
	for i, t := range ts {
		t.Name = prefix + "." + t.Name
		out[i] = t
	}
	return out
}
