package core_test

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/trace"
)

// The basic predict/update loop: a DFCM learns a stride pattern it
// has never seen repeated.
func ExampleDFCM() {
	p := core.NewDFCM(10, 12) // 2^10 level-1 entries, 2^12 level-2 entries
	const pc = 0x1000
	correct := 0
	for i := 0; i < 100; i++ {
		value := uint32(1000 + 7*i) // stride 7, never repeats
		if p.Predict(pc) == value {
			correct++
		}
		p.Update(pc, value)
	}
	fmt.Printf("correct: %d/100 (warmup only)\n", correct)
	fmt.Println("size:", p.SizeBits(), "bits")
	// Output:
	// correct: 95/100 (warmup only)
	// size: 176128 bits
}

// Run drives a predictor over a trace and accumulates accuracy.
func ExampleRun() {
	tr := trace.Trace{
		{PC: 0x40, Value: 5}, {PC: 0x40, Value: 5},
		{PC: 0x40, Value: 5}, {PC: 0x40, Value: 5},
	}
	res := core.Run(core.NewLastValue(8), trace.NewReader(tr))
	fmt.Printf("%d/%d correct\n", res.Correct, res.Predictions)
	// Output:
	// 3/4 correct
}

// A perfect hybrid scores an event as correct when any component
// predicted it, and always trains all components.
func ExampleNewPerfectHybrid() {
	h := core.NewPerfectHybrid(core.NewLastValue(8), core.NewStride(8))
	var res core.Result
	for i := 0; i < 50; i++ {
		res.Predictions++
		if h.Score(0x40, uint32(i*3)) { // pure stride: the stride component carries it
			res.Correct++
		}
	}
	fmt.Printf("accuracy with warmup: %.2f\n", res.Accuracy())
	// Output:
	// accuracy with warmup: 0.98
}

// Delayed update models the pipeline distance between making a
// prediction and learning the outcome.
func ExampleNewDelayed() {
	base := core.NewLastValue(8)
	d := core.NewDelayed(base, 2)
	d.Update(0x40, 7) // enqueued, not yet visible
	fmt.Println("immediately after update:", d.Predict(0x40))
	d.Update(0x44, 1) // two more outcomes push the first one
	d.Update(0x48, 2) // out of the 2-deep delay window
	fmt.Println("after the delay window:", d.Predict(0x40))
	// Output:
	// immediately after update: 0
	// after the delay window: 7
}

// Confidence estimation: the paper's hash-tag proposal flags
// predictions whose level-2 entry was written under the same
// (unaliased) history.
func ExampleNewHashTag() {
	p := core.NewDFCM(8, 10)
	ht := core.NewHashTag(p, 8, 3)
	var tr trace.Trace
	for i := 0; i < 200; i++ {
		tr = append(tr, trace.Event{PC: 0x40, Value: uint32(i * 4)})
	}
	res := core.RunConfident(ht, trace.NewReader(tr))
	fmt.Printf("confident accuracy %.2f at coverage %.2f\n",
		res.Confident.Accuracy(), res.Coverage())
	// Output:
	// confident accuracy 0.99 at coverage 0.98
}
