package core

import (
	"encoding/binary"
	"fmt"

	"repro/internal/hash"
)

// FCM is the finite context method predictor (Sazeides & Smith): a
// two-level structure in which the level-1 table, indexed by PC, holds
// a hashed history of the values recently produced by the instruction,
// and the shared level-2 table, indexed by that history, holds the
// value most likely to follow the context.
type FCM struct {
	l1bits uint
	l2bits uint
	h      hash.Func
	fsr    *hash.FSR // non-nil when h is an FSR with >= 8 index bits: inlined Update32 fast path
	l1mask uint32    // 2^l1bits − 1, applied to pc>>2
	l1     []uint64  // hashed value history per static instruction
	l2     []uint32  // predicted next value per context
}

// NewFCM returns an FCM with 2^l1bits level-1 entries and 2^l2bits
// level-2 entries, hashing histories with the paper's FS R-5 function.
// Use NewFCMHash to supply a different hash.
//
// Size accounting: level-1 stores only the hashed history (l2bits bits
// per entry — the full history need not be stored since the hash
// updates incrementally); level-2 stores a 32-bit value per entry.
// Total: 2^l1bits × l2bits + 2^l2bits × 32 bits.
func NewFCM(l1bits, l2bits uint) *FCM {
	return NewFCMHash(l1bits, l2bits, hash.NewFSR5(l2bits))
}

// NewFCMHash is NewFCM with an explicit history hash function. The
// hash must produce l2bits-wide indices; NewFCMHash panics otherwise.
func NewFCMHash(l1bits, l2bits uint, h hash.Func) *FCM {
	checkBits("FCM level-1", l1bits, 30)
	checkBits("FCM level-2", l2bits, 30)
	if h.IndexBits() != l2bits {
		panic(fmt.Sprintf("core: hash produces %d-bit indices, level-2 needs %d",
			h.IndexBits(), l2bits))
	}
	fsr, _ := h.(*hash.FSR)
	if fsr != nil && fsr.IndexBits() < 8 {
		fsr = nil // Update32 needs four chunks to cover a 32-bit value
	}
	return &FCM{
		l1bits: l1bits,
		l2bits: l2bits,
		h:      h,
		fsr:    fsr,
		l1mask: uint32(1<<l1bits) - 1,
		l1:     make([]uint64, 1<<l1bits),
		l2:     make([]uint32, 1<<l2bits),
	}
}

// Predict looks up the instruction's history in level-1 and returns
// the level-2 value stored for that context.
func (p *FCM) Predict(pc uint32) uint32 {
	return p.l2[p.l1[(pc>>2)&p.l1mask]]
}

// Update writes the produced value into the level-2 entry the
// prediction came from and appends the value to the level-1 history.
// The FSR case is dispatched on the concrete type so the per-event
// hash update inlines instead of going through hash.Func.
func (p *FCM) Update(pc, value uint32) {
	i := (pc >> 2) & p.l1mask
	h := p.l1[i]
	p.l2[h] = value
	if p.fsr != nil {
		p.l1[i] = p.fsr.Update32(h, value)
	} else {
		p.l1[i] = p.h.Update(h, uint64(value))
	}
}

// L2IndexAndUpdate is Update fused with L2Index: it applies the
// update and returns the level-2 index it wrote to (derived from the
// pre-update history, exactly L2Index's answer before the same
// Update). Instrumentation replaying a trace once per many consumers
// (metrics.StrideHists) uses it to halve the level-1 accesses per
// event.
func (p *FCM) L2IndexAndUpdate(pc, value uint32) uint64 {
	i := (pc >> 2) & p.l1mask
	h := p.l1[i]
	p.l2[h] = value
	if p.fsr != nil {
		p.l1[i] = p.fsr.Update32(h, value)
	} else {
		p.l1[i] = p.h.Update(h, uint64(value))
	}
	return h
}

// L2Index implements L2Indexer.
func (p *FCM) L2Index(pc uint32) uint64 { return p.l1[(pc>>2)&p.l1mask] }

// L2Entries implements L2Indexer.
func (p *FCM) L2Entries() int { return len(p.l2) }

// L1Entries implements HistoryFeeder.
func (p *FCM) L1Entries() int { return len(p.l1) }

// L1Index implements HistoryFeeder.
func (p *FCM) L1Index(pc uint32) uint32 { return (pc >> 2) & p.l1mask }

// HistoryInput implements HistoryFeeder: the FCM's history consumes
// the produced values themselves.
func (p *FCM) HistoryInput(pc, value uint32) uint64 { return uint64(value) }

// Order returns the number of history values influencing a prediction.
func (p *FCM) Order() int { return p.h.Order() }

// Reset implements Resetter.
func (p *FCM) Reset() {
	clear(p.l1)
	clear(p.l2)
}

// AppendState implements Snapshotter: the level-1 histories (8 bytes
// each) followed by the level-2 values (4 bytes each).
func (p *FCM) AppendState(b []byte) []byte {
	for _, h := range p.l1 {
		b = binary.BigEndian.AppendUint64(b, h)
	}
	for _, v := range p.l2 {
		b = binary.BigEndian.AppendUint32(b, v)
	}
	return b
}

// RestoreState implements Snapshotter. Restored histories are level-2
// indices, so each must be below the level-2 entry count — hostile
// state must not plant an out-of-bounds index that Predict would
// dereference later.
func (p *FCM) RestoreState(data []byte) error {
	want := 8*len(p.l1) + 4*len(p.l2)
	if len(data) != want {
		return stateSizeErr("fcm", want, len(data))
	}
	for i := range p.l1 {
		h := binary.BigEndian.Uint64(data[8*i:])
		if h >= uint64(len(p.l2)) {
			return fmt.Errorf("%w: fcm history %#x exceeds level-2 size %d", ErrState, h, len(p.l2))
		}
		p.l1[i] = h
	}
	l2 := data[8*len(p.l1):]
	for i := range p.l2 {
		p.l2[i] = binary.BigEndian.Uint32(l2[4*i:])
	}
	return nil
}

// StateTables implements StateTabler.
func (p *FCM) StateTables() []TableInfo {
	l1Live, l2Live := 0, 0
	for _, h := range p.l1 {
		if h != 0 {
			l1Live++
		}
	}
	for _, v := range p.l2 {
		if v != 0 {
			l2Live++
		}
	}
	return []TableInfo{
		{Name: "l1", Entries: len(p.l1), Live: l1Live},
		{Name: "l2", Entries: len(p.l2), Live: l2Live},
	}
}

// Name implements Predictor.
func (p *FCM) Name() string { return fmt.Sprintf("fcm-2^%d/2^%d", p.l1bits, p.l2bits) }

// SizeBits implements Predictor.
func (p *FCM) SizeBits() int64 {
	return int64(len(p.l1))*int64(p.l2bits) + int64(len(p.l2))*32
}
