package core

import (
	"encoding/binary"
	"fmt"

	"repro/internal/hash"
)

// DFCM is the differential finite context method predictor — the
// paper's contribution. It is an FCM over value *differences*: the
// level-1 table stores, per static instruction, the last value and a
// hashed history of strides; the level-2 table, indexed by the stride
// history only (never the last value), stores the next stride. The
// prediction is lastValue + L2[hash(strideHistory)].
//
// Stride patterns thus collapse: a run with constant stride s has the
// constant difference history (s, s, ..., s) and occupies a single
// level-2 entry regardless of length or base address, while irregular
// repeating patterns remain exactly as context-predictable as under
// FCM. The freed level-2 capacity is what buys the accuracy gain.
//
// The level-1 table is stored structure-of-arrays (last values and
// stride histories in separate flat slices) rather than as a slice of
// {last, hist} structs: the struct layout pads each 12-byte row to 16
// bytes, so SoA removes a quarter of the level-1 memory traffic and
// keeps each stream densely packed for the hardware prefetcher. The
// serialized snapshot layout (interleaved last+hist rows) is
// unchanged.
type DFCM struct {
	l1bits     uint
	l2bits     uint
	strideBits uint // width of strides stored in level-2 (section 4.4)
	h          hash.Func
	fsr        *hash.FSR // non-nil when h is an FSR with >= 8 index bits: inlined Update32 fast path
	l1mask     uint32    // 2^l1bits − 1, applied to pc>>2
	strideMask uint32    // low strideBits set: truncate is one AND
	extShift   uint      // 32 − strideBits: sign-extension shift pair (0 = identity)
	last       []uint32  // level-1: last value per static instruction
	hist       []uint64  // level-1: hashed stride history per static instruction
	l2         []uint32  // next stride per context, truncated to strideBits
}

// NewDFCM returns a DFCM with 2^l1bits level-1 entries and 2^l2bits
// level-2 entries, full 32-bit stored strides, and the paper's FS R-5
// history hash. Use NewDFCMWidth to shrink the stored stride width
// (the paper's section 4.4 experiment) and NewDFCMHash for a custom
// hash.
//
// Size accounting: level-1 stores the hashed history plus the 32-bit
// last value (the paper's stated extra cost of DFCM); level-2 stores
// one stride of strideBits per entry.
// Total: 2^l1bits × (l2bits + 32) + 2^l2bits × strideBits.
func NewDFCM(l1bits, l2bits uint) *DFCM {
	return NewDFCMHash(l1bits, l2bits, 32, hash.NewFSR5(l2bits))
}

// NewDFCMWidth is NewDFCM with stored strides truncated to strideBits
// bits (1..32). Truncated strides are sign-extended back to 32 bits
// when predicting, so small positive and negative strides survive
// intact; only the level-2 storage shrinks (the history hash still
// sees the full stride).
func NewDFCMWidth(l1bits, l2bits, strideBits uint) *DFCM {
	return NewDFCMHash(l1bits, l2bits, strideBits, hash.NewFSR5(l2bits))
}

// NewDFCMHash is the fully explicit constructor. The hash must produce
// l2bits-wide indices; NewDFCMHash panics otherwise, or if strideBits
// is outside 1..32.
func NewDFCMHash(l1bits, l2bits, strideBits uint, h hash.Func) *DFCM {
	checkBits("DFCM level-1", l1bits, 30)
	checkBits("DFCM level-2", l2bits, 30)
	if strideBits == 0 || strideBits > 32 {
		panic(fmt.Sprintf("core: DFCM stride width %d out of range [1,32]", strideBits))
	}
	if h.IndexBits() != l2bits {
		panic(fmt.Sprintf("core: hash produces %d-bit indices, level-2 needs %d",
			h.IndexBits(), l2bits))
	}
	fsr, _ := h.(*hash.FSR)
	if fsr != nil && fsr.IndexBits() < 8 {
		fsr = nil // Update32 needs four chunks to cover a 32-bit value
	}
	return &DFCM{
		l1bits:     l1bits,
		l2bits:     l2bits,
		strideBits: strideBits,
		h:          h,
		fsr:        fsr,
		l1mask:     uint32(1<<l1bits) - 1,
		strideMask: uint32((uint64(1) << strideBits) - 1),
		extShift:   32 - strideBits,
		last:       make([]uint32, 1<<l1bits),
		hist:       make([]uint64, 1<<l1bits),
		l2:         make([]uint32, 1<<l2bits),
	}
}

// truncate keeps the low strideBits bits of a stride as stored in the
// level-2 table. One AND against the precomputed mask — no width
// branch on the update path.
func (p *DFCM) truncate(stride uint32) uint32 {
	return stride & p.strideMask
}

// extend sign-extends a stored stride back to 32 bits: shift the sign
// bit of the stored width up to bit 31, then arithmetic-shift back
// down. extShift is 0 at full width, making the pair an identity — no
// width branch on the predict path.
func (p *DFCM) extend(stored uint32) uint32 {
	return uint32(int32(stored<<p.extShift) >> p.extShift)
}

// Predict returns the instruction's last value plus the stride the
// level-2 table associates with its current difference history.
func (p *DFCM) Predict(pc uint32) uint32 {
	i := (pc >> 2) & p.l1mask
	return p.last[i] + p.extend(p.l2[p.hist[i]])
}

// Update computes the new stride (value − last), stores it in the
// level-2 entry the prediction came from, folds it into the history,
// and records value as the new last value. The FSR case is dispatched
// on the concrete type so the per-event hash update inlines instead
// of going through hash.Func.
func (p *DFCM) Update(pc, value uint32) {
	i := (pc >> 2) & p.l1mask
	h := p.hist[i]
	stride := value - p.last[i]
	p.l2[h] = stride & p.strideMask
	if p.fsr != nil {
		p.hist[i] = p.fsr.Update32(h, stride)
	} else {
		p.hist[i] = p.h.Update(h, uint64(stride))
	}
	p.last[i] = value
}

// L2IndexAndUpdate is Update fused with L2Index: it applies the
// update and returns the level-2 index it wrote to (the pre-update
// history, exactly L2Index's answer before the same Update).
func (p *DFCM) L2IndexAndUpdate(pc, value uint32) uint64 {
	i := (pc >> 2) & p.l1mask
	h := p.hist[i]
	stride := value - p.last[i]
	p.l2[h] = stride & p.strideMask
	if p.fsr != nil {
		p.hist[i] = p.fsr.Update32(h, stride)
	} else {
		p.hist[i] = p.h.Update(h, uint64(stride))
	}
	p.last[i] = value
	return h
}

// L2Index implements L2Indexer.
func (p *DFCM) L2Index(pc uint32) uint64 { return p.hist[(pc>>2)&p.l1mask] }

// L2Entries implements L2Indexer.
func (p *DFCM) L2Entries() int { return len(p.l2) }

// L1Entries implements HistoryFeeder.
func (p *DFCM) L1Entries() int { return len(p.last) }

// L1Index implements HistoryFeeder.
func (p *DFCM) L1Index(pc uint32) uint32 { return (pc >> 2) & p.l1mask }

// HistoryInput implements HistoryFeeder: the DFCM's history consumes
// strides, so the input for an update is value − lastValue. Must be
// called before the Update that consumes the same event.
func (p *DFCM) HistoryInput(pc, value uint32) uint64 {
	return uint64(value - p.last[(pc>>2)&p.l1mask])
}

// Order returns the number of strides influencing a prediction.
func (p *DFCM) Order() int { return p.h.Order() }

// StrideBits returns the width of strides stored in the level-2 table.
func (p *DFCM) StrideBits() uint { return p.strideBits }

// Reset implements Resetter: three flat clears, each a word-level
// memclr of a contiguous slice — no per-entry logic.
func (p *DFCM) Reset() {
	clear(p.last)
	clear(p.hist)
	clear(p.l2)
}

// AppendState implements Snapshotter: level-1 rows (last value + 8-byte
// stride history, interleaved exactly as the pre-SoA struct layout
// serialized them) followed by the level-2 strides.
func (p *DFCM) AppendState(b []byte) []byte {
	for i := range p.last {
		b = binary.BigEndian.AppendUint32(b, p.last[i])
		b = binary.BigEndian.AppendUint64(b, p.hist[i])
	}
	for _, v := range p.l2 {
		b = binary.BigEndian.AppendUint32(b, v)
	}
	return b
}

// RestoreState implements Snapshotter. Histories index the level-2
// table, so each must be below its entry count; stored strides must
// fit the configured stride width.
func (p *DFCM) RestoreState(data []byte) error {
	want := 4*len(p.last) + 8*len(p.hist) + 4*len(p.l2)
	if len(data) != want {
		return stateSizeErr("dfcm", want, len(data))
	}
	for i := range p.last {
		row := data[12*i:]
		hist := binary.BigEndian.Uint64(row[4:])
		if hist >= uint64(len(p.l2)) {
			return fmt.Errorf("%w: dfcm history %#x exceeds level-2 size %d", ErrState, hist, len(p.l2))
		}
		p.last[i] = binary.BigEndian.Uint32(row)
		p.hist[i] = hist
	}
	l2 := data[12*len(p.last):]
	for i := range p.l2 {
		v := binary.BigEndian.Uint32(l2[4*i:])
		if p.truncate(v) != v {
			return fmt.Errorf("%w: dfcm stride %#x wider than %d bits", ErrState, v, p.strideBits)
		}
		p.l2[i] = v
	}
	return nil
}

// StateTables implements StateTabler.
func (p *DFCM) StateTables() []TableInfo {
	l1Live, l2Live := 0, 0
	for i := range p.last {
		if p.last[i] != 0 || p.hist[i] != 0 {
			l1Live++
		}
	}
	for _, v := range p.l2 {
		if v != 0 {
			l2Live++
		}
	}
	return []TableInfo{
		{Name: "l1", Entries: len(p.last), Live: l1Live},
		{Name: "l2", Entries: len(p.l2), Live: l2Live},
	}
}

// Name implements Predictor.
func (p *DFCM) Name() string {
	if p.strideBits != 32 {
		return fmt.Sprintf("dfcm-2^%d/2^%d/w%d", p.l1bits, p.l2bits, p.strideBits)
	}
	return fmt.Sprintf("dfcm-2^%d/2^%d", p.l1bits, p.l2bits)
}

// SizeBits implements Predictor.
func (p *DFCM) SizeBits() int64 {
	return int64(len(p.last))*int64(p.l2bits+32) + int64(len(p.l2))*int64(p.strideBits)
}
