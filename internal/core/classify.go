package core

import "fmt"

// classifyStateBytes is one serialized classifyState: seen, hits[4],
// assigned.
const classifyStateBytes = 1 + 4 + 1

// AppendState implements Snapshotter: the per-instruction
// classification rows followed by every component's nested state.
func (p *Classified) AppendState(b []byte) []byte {
	for i := range p.state {
		s := &p.state[i]
		b = append(b, s.seen, s.hits[0], s.hits[1], s.hits[2], s.hits[3], byte(s.assigned))
	}
	for _, c := range p.comps {
		b = appendNested(b, c)
	}
	return b
}

// RestoreState implements Snapshotter. Assignments index the component
// slice, so each must name an existing component (or the training/
// unpredictable sentinels).
func (p *Classified) RestoreState(data []byte) error {
	fixed := classifyStateBytes * len(p.state)
	if len(data) < fixed {
		return stateSizeErr("classified", fixed, len(data))
	}
	for i := range p.state {
		row := data[classifyStateBytes*i:]
		assigned := int8(row[5])
		if assigned < -2 || int(assigned) >= len(p.comps) {
			return fmt.Errorf("%w: classification assignment %d with %d components", ErrState, assigned, len(p.comps))
		}
		p.state[i] = classifyState{
			seen:     row[0],
			hits:     [4]uint8{row[1], row[2], row[3], row[4]},
			assigned: assigned,
		}
	}
	rest := data[fixed:]
	var err error
	for _, c := range p.comps {
		if rest, err = restoreNested(rest, c); err != nil {
			return err
		}
	}
	if len(rest) != 0 {
		return fmt.Errorf("%w: %d trailing bytes after classified state", ErrState, len(rest))
	}
	return nil
}

// StateTables implements StateTabler.
func (p *Classified) StateTables() []TableInfo {
	live := 0
	for i := range p.state {
		if p.state[i] != (classifyState{assigned: -1}) {
			live++
		}
	}
	ts := []TableInfo{{Name: "class", Entries: len(p.state), Live: live}}
	for _, c := range p.comps {
		ts = append(ts, prefixTables(c.Name(), c)...)
	}
	return ts
}

// Classified implements dynamic instruction classification in the
// style of Rychlik et al. ("Efficient and Accurate Value Prediction
// Using Dynamic Classification", CMU TR 1998), the alternative design
// the paper's related-work section argues against: each static
// instruction is observed for a training window in which all
// component predictors run, then permanently assigned to the
// component that scored best (or marked unpredictable if none did).
// Afterwards only the assigned component is consulted and updated.
//
// The paper's critique, which the ablation experiment quantifies: the
// partitioning of storage between components is fixed at design time,
// while the DFCM shares one level-2 table among constant, stride and
// context patterns and so adapts the split dynamically.
type Classified struct {
	bits      uint
	window    uint8
	threshold uint8
	comps     []Predictor
	state     []classifyState
}

type classifyState struct {
	seen     uint8
	hits     [4]uint8
	assigned int8 // -1 training, -2 unpredictable, else component index
}

// NewClassified builds a classifying predictor over up to four
// components with a 2^bits classification table. Each instruction
// trains for window updates; it is assigned to the best component if
// that component scored at least threshold hits, otherwise marked
// unpredictable (predicting last value, never counted confident).
func NewClassified(bits uint, window, threshold uint8, comps ...Predictor) *Classified {
	checkBits("classification", bits, 30)
	if len(comps) == 0 || len(comps) > 4 {
		panic("core: classification needs 1..4 components")
	}
	if window == 0 || threshold > window {
		panic("core: bad classification window/threshold")
	}
	st := make([]classifyState, 1<<bits)
	for i := range st {
		st[i].assigned = -1
	}
	return &Classified{
		bits: bits, window: window, threshold: threshold,
		comps: comps, state: st,
	}
}

// Predict consults the assigned component; during training it uses
// the currently best-scoring one.
func (p *Classified) Predict(pc uint32) uint32 {
	s := &p.state[pcIndex(pc, p.bits)]
	switch {
	case s.assigned >= 0:
		return p.comps[s.assigned].Predict(pc)
	default:
		return p.comps[p.leader(s)].Predict(pc)
	}
}

func (p *Classified) leader(s *classifyState) int {
	best := 0
	for i := 1; i < len(p.comps); i++ {
		if s.hits[i] > s.hits[best] {
			best = i
		}
	}
	return best
}

// Update trains all components during the training window and scores
// them; after assignment only the chosen component is updated (the
// storage-isolation property of the scheme).
func (p *Classified) Update(pc, value uint32) {
	s := &p.state[pcIndex(pc, p.bits)]
	if s.assigned >= 0 {
		p.comps[s.assigned].Update(pc, value)
		return
	}
	if s.assigned == -2 {
		return // unpredictable: no component is spent on it
	}
	for i, c := range p.comps {
		if c.Predict(pc) == value {
			s.hits[i]++
		}
		c.Update(pc, value)
	}
	s.seen++
	if s.seen >= p.window {
		best := p.leader(s)
		if s.hits[best] >= p.threshold {
			s.assigned = int8(best)
		} else {
			s.assigned = -2
		}
	}
}

// Unpredictable returns the fraction of classified instructions that
// were marked unpredictable (Rychlik reports >50%, Lee 24%).
func (p *Classified) Unpredictable() float64 {
	var done, un int
	for i := range p.state {
		switch p.state[i].assigned {
		case -2:
			un++
			done++
		case -1:
		default:
			done++
		}
	}
	if done == 0 {
		return 0
	}
	return float64(un) / float64(done)
}

// Reset implements Resetter: every instruction re-enters its training
// window and all components are cleared.
func (p *Classified) Reset() {
	for i := range p.state {
		p.state[i] = classifyState{assigned: -1}
	}
	for _, c := range p.comps {
		mustReset(c)
	}
}

// Name implements Predictor.
func (p *Classified) Name() string {
	return fmt.Sprintf("classify2^%d/w%d", p.bits, p.window)
}

// SizeBits implements Predictor: components plus per-entry
// classification state (2 bits for the assignment; training counters
// are transient).
func (p *Classified) SizeBits() int64 {
	var s int64
	for _, c := range p.comps {
		s += c.SizeBits()
	}
	return s + int64(len(p.state))*2
}
