package core

import (
	"math/rand"
	"testing"

	"repro/internal/trace"
)

func TestDelayedZeroEquivalent(t *testing.T) {
	// delay 0 must be bit-identical to the unwrapped predictor.
	tr := mixedTrace(2000, 3)
	for _, mk := range []func() Predictor{
		func() Predictor { return NewLastValue(8) },
		func() Predictor { return NewStride(8) },
		func() Predictor { return NewFCM(8, 10) },
		func() Predictor { return NewDFCM(8, 10) },
	} {
		plain := Run(mk(), trace.NewReader(tr))
		delayed := Run(NewDelayed(mk(), 0), trace.NewReader(tr))
		if plain != delayed {
			t.Errorf("%s: delay-0 result %+v != plain %+v", mk().Name(), delayed, plain)
		}
	}
}

func TestDelayedStaleHistoryHurtsTightLoop(t *testing.T) {
	// A single instruction producing a stride pattern: with delay d,
	// every prediction is based on history d events old, so the stride
	// predictor still extrapolates correctly only once the stale last
	// value is accounted... for LVP the prediction is simply d+1
	// values behind and always wrong on a stride.
	vals := strideSeq(0, 1, 400)
	plain := tailAccuracy(NewStride(10), vals, 10)
	if plain != 1 {
		t.Fatalf("undelayed stride accuracy = %v", plain)
	}
	d := NewDelayed(NewStride(10), 8)
	var correct, total int
	for i, v := range vals {
		if d.Predict(0x40) == v && i >= 20 {
			correct++
		}
		if i >= 20 {
			total++
		}
		d.Update(0x40, v)
	}
	acc := float64(correct) / float64(total)
	if acc > 0.05 {
		t.Errorf("delayed stride accuracy in tight loop = %v, want ~0 (stale last value)", acc)
	}
}

func TestDelayedDoesNotAffectDistantRecurrence(t *testing.T) {
	// If an instruction recurs only every delay+k events, its updates
	// are always applied before its next prediction, so accuracy is
	// unchanged. Construct 64 interleaved constant instructions and
	// delay 16 < 64.
	var tr trace.Trace
	for i := 0; i < 200; i++ {
		for k := 0; k < 64; k++ {
			tr = append(tr, trace.Event{PC: uint32(0x1000 + 4*k), Value: uint32(k)})
		}
	}
	plain := Run(NewLastValue(10), trace.NewReader(tr))
	delayed := Run(NewDelayed(NewLastValue(10), 16), trace.NewReader(tr))
	if plain != delayed {
		t.Errorf("delay < recurrence distance changed result: %+v vs %+v", delayed, plain)
	}
}

func TestDelayedMonotoneDegradation(t *testing.T) {
	// Figure 17's shape: accuracy is non-increasing in delay (up to
	// noise; here we require weak monotonicity on a deterministic
	// workload with generous tolerance).
	rng := rand.New(rand.NewSource(11))
	var tr trace.Trace
	pattern := []uint32{5, 19, 3, 200, 42}
	for i := 0; i < 3000; i++ {
		for k := 0; k < 8; k++ {
			var v uint32
			switch k % 3 {
			case 0:
				v = uint32(i * (k + 1)) // stride
			case 1:
				v = pattern[(i+k)%len(pattern)] // context
			default:
				v = rng.Uint32() >> 20 // semi-random
			}
			tr = append(tr, trace.Event{PC: uint32(0x1000 + 4*k), Value: v})
		}
	}
	prev := 1.1
	for _, delay := range []int{0, 16, 64, 256} {
		acc := Run(NewDelayed(NewDFCM(8, 12), delay), trace.NewReader(tr)).Accuracy()
		if acc > prev+0.02 {
			t.Errorf("accuracy increased with delay %d: %.3f > %.3f", delay, acc, prev)
		}
		prev = acc
	}
}

func TestDelayedFlush(t *testing.T) {
	p := NewLastValue(8)
	d := NewDelayed(p, 100)
	d.Update(0x40, 77)
	if p.Predict(0x40) == 77 {
		t.Fatal("update applied before flush")
	}
	d.Flush()
	if p.Predict(0x40) != 77 {
		t.Error("flush did not apply pending update")
	}
	// Flush on empty queue is a no-op.
	d.Flush()
}

func TestDelayedQueueCompaction(t *testing.T) {
	// The pending queue must not grow without bound.
	d := NewDelayed(NewLastValue(8), 4)
	for i := 0; i < 10000; i++ {
		d.Predict(0x40)
		d.Update(0x40, uint32(i))
	}
	if cap(d.pending) > 64 {
		t.Errorf("pending queue capacity grew to %d", cap(d.pending))
	}
}
