package core

import (
	"encoding/binary"
	"fmt"
)

// Delayed wraps a predictor so that table updates take effect only
// after a further delay predictions have been made, modeling the
// pipeline distance between making a prediction and learning the
// instruction's outcome (paper section 4.5). With delay 0 the wrapper
// is behaviourally identical to the wrapped predictor.
//
// If the same static instruction recurs within the delay window, its
// later predictions are served from stale tables — exactly the effect
// the paper measures in Figure 17.
type Delayed struct {
	p     Predictor
	delay int
	// pending is a FIFO of updates not yet applied; head indexes the
	// oldest. The queue never exceeds delay+1 entries.
	pending []pendingUpdate
	head    int
}

type pendingUpdate struct {
	pc    uint32
	value uint32
}

// NewDelayed wraps p with an update delay of delay predictions.
// It panics if delay is negative.
func NewDelayed(p Predictor, delay int) *Delayed {
	if delay < 0 {
		panic("core: negative update delay")
	}
	return &Delayed{p: p, delay: delay}
}

// Predict first applies every pending update older than the delay
// window, then predicts with the wrapped predictor.
func (d *Delayed) Predict(pc uint32) uint32 {
	for len(d.pending)-d.head > d.delay {
		u := d.pending[d.head]
		d.head++
		d.p.Update(u.pc, u.value)
	}
	// Reclaim consumed prefix once it dominates the backing array so
	// the queue stays O(delay) regardless of trace length.
	if d.head > 16 && d.head*2 >= len(d.pending) {
		n := copy(d.pending, d.pending[d.head:])
		d.pending = d.pending[:n]
		d.head = 0
	}
	return d.p.Predict(pc)
}

// Update enqueues the outcome; it reaches the wrapped predictor's
// tables only after delay further predictions.
func (d *Delayed) Update(pc, value uint32) {
	if d.head > 0 && d.head == len(d.pending) {
		d.pending = d.pending[:0]
		d.head = 0
	}
	d.pending = append(d.pending, pendingUpdate{pc: pc, value: value})
}

// Flush applies all pending updates immediately. Useful when reusing
// the wrapped predictor after a delayed run.
func (d *Delayed) Flush() {
	for d.head < len(d.pending) {
		u := d.pending[d.head]
		d.head++
		d.p.Update(u.pc, u.value)
	}
	d.pending = d.pending[:0]
	d.head = 0
}

// Reset implements Resetter: the pending queue is discarded (not
// applied) and the wrapped predictor is reset.
func (d *Delayed) Reset() {
	d.pending = d.pending[:0]
	d.head = 0
	mustReset(d.p)
}

// AppendState implements Snapshotter: the not-yet-applied update queue
// (active entries only — the consumed prefix is an allocation detail)
// followed by the wrapped predictor's nested state.
func (d *Delayed) AppendState(b []byte) []byte {
	active := d.pending[d.head:]
	b = binary.BigEndian.AppendUint32(b, uint32(len(active)))
	for _, u := range active {
		b = binary.BigEndian.AppendUint32(b, u.pc)
		b = binary.BigEndian.AppendUint32(b, u.value)
	}
	return appendNested(b, d.p)
}

// RestoreState implements Snapshotter. The claimed queue length is
// checked against the bytes that actually arrived before the queue is
// allocated.
func (d *Delayed) RestoreState(data []byte) error {
	if len(data) < 4 {
		return stateSizeErr("delayed", 4, len(data))
	}
	n := binary.BigEndian.Uint32(data)
	if uint64(len(data)-4) < 8*uint64(n) {
		return fmt.Errorf("%w: delayed queue claims %d updates, %d bytes remain", ErrState, n, len(data)-4)
	}
	rows := data[4:]
	d.pending = make([]pendingUpdate, n)
	for i := range d.pending {
		d.pending[i] = pendingUpdate{
			pc:    binary.BigEndian.Uint32(rows[8*i:]),
			value: binary.BigEndian.Uint32(rows[8*i+4:]),
		}
	}
	d.head = 0
	rest, err := restoreNested(rows[8*n:], d.p)
	if err != nil {
		return err
	}
	if len(rest) != 0 {
		return fmt.Errorf("%w: %d trailing bytes after delayed state", ErrState, len(rest))
	}
	return nil
}

// StateTables implements StateTabler.
func (d *Delayed) StateTables() []TableInfo {
	active := len(d.pending) - d.head
	return append(
		[]TableInfo{{Name: "pending", Entries: active, Live: active}},
		prefixTables(d.p.Name(), d.p)...,
	)
}

// Name implements Predictor.
func (d *Delayed) Name() string { return fmt.Sprintf("%s@delay%d", d.p.Name(), d.delay) }

// SizeBits implements Predictor (the delay queue models pipeline
// state, not predictor storage, and is not counted).
func (d *Delayed) SizeBits() int64 { return d.p.SizeBits() }
