package core

import "repro/internal/trace"

// Concrete-type batch loops. The generic RunBatch pays two interface
// dispatches per event (Predict, Update) that the compiler cannot
// devirtualize or inline; the methods here run the same per-event
// logic on the concrete receiver, so table indexing, branchless
// saturation and the FSR hash update all inline into one straight-line
// loop body. The top-level RunBatch dispatches here once per chunk via
// the BatchRunner interface. Semantics are bit-identical to the
// generic loop — pinned by TestRunBatchConcreteMatchesGeneric — so
// chunked replays (internal/engine) and served batches
// (internal/serve) stay equivalent to the sequential reference.

// RunBatch implements BatchRunner. The int-typed mask derived from
// len(t) (here and in the loops below) lets the compiler prove
// i <= len−1 and drop the bounds checks; the len-0 guard that makes
// the proof sound is dead code (constructors allocate ≥ 1 entry).
func (p *LastValue) RunBatch(batch []trace.Event) Result {
	res := Result{Predictions: uint64(len(batch))}
	t := p.table
	if len(t) == 0 {
		return res
	}
	mask := len(t) - 1
	for _, e := range batch {
		i := int(e.PC>>2) & mask
		res.Correct += uint64(hit01(t[i], e.Value))
		t[i] = e.Value
	}
	return res
}

// RunBatch implements BatchRunner.
func (p *Stride) RunBatch(batch []trace.Event) Result {
	res := Result{Predictions: uint64(len(batch))}
	t := p.table
	if len(t) == 0 {
		return res
	}
	mask := len(t) - 1
	for i := range batch {
		e := &batch[i]
		ent := &t[int(e.PC>>2)&mask]
		hit := hit01(ent.last+ent.stride, e.Value)
		res.Correct += uint64(hit)
		c := int32(ent.conf)
		replMask := uint32((c - strideConfMax) >> 31)
		ent.conf = uint8(satConf(c, hit, strideConfIncrement, strideConfDecrement, strideConfMax))
		ent.stride ^= (ent.stride ^ (e.Value - ent.last)) & replMask
		ent.last = e.Value
	}
	return res
}

// RunBatch implements BatchRunner.
func (p *TwoDelta) RunBatch(batch []trace.Event) Result {
	res := Result{Predictions: uint64(len(batch))}
	t := p.table
	if len(t) == 0 {
		return res
	}
	mask := len(t) - 1
	for i := range batch {
		e := &batch[i]
		ent := &t[int(e.PC>>2)&mask]
		res.Correct += uint64(hit01(ent.last+ent.s1, e.Value))
		stride := e.Value - ent.last
		// s1 takes the new stride only when it repeats (s2 match).
		m := uint32(-hit01(stride, ent.s2))
		ent.s1 ^= (ent.s1 ^ stride) & m
		ent.s2 = stride
		ent.last = e.Value
	}
	return res
}

// RunBatch implements BatchRunner. The FSR fast path is hoisted out of
// the loop: one nil check per chunk, then the inlined Update32 per
// event.
func (p *FCM) RunBatch(batch []trace.Event) Result {
	res := Result{Predictions: uint64(len(batch))}
	l1, l2 := p.l1, p.l2
	if len(l1) == 0 {
		return res
	}
	mask := len(l1) - 1
	if fsr := p.fsr; fsr != nil {
		for _, e := range batch {
			i := int(e.PC>>2) & mask
			h := l1[i]
			res.Correct += uint64(hit01(l2[h], e.Value))
			l2[h] = e.Value
			l1[i] = fsr.Update32(h, e.Value)
		}
		return res
	}
	for _, e := range batch {
		i := int(e.PC>>2) & mask
		h := l1[i]
		res.Correct += uint64(hit01(l2[h], e.Value))
		l2[h] = e.Value
		l1[i] = p.h.Update(h, uint64(e.Value))
	}
	return res
}

// RunBatch implements BatchRunner. Level-1 is read as two flat SoA
// streams (last, hist); predict, truncate and sign-extension are all
// mask/shift arithmetic, so the loop body is branch-free on the FSR
// path.
func (p *DFCM) RunBatch(batch []trace.Event) Result {
	res := Result{Predictions: uint64(len(batch))}
	last, hist, l2 := p.last, p.hist, p.l2
	if len(last) == 0 || len(hist) != len(last) {
		return res
	}
	mask := len(last) - 1
	sMask, eShift := p.strideMask, p.extShift
	if fsr := p.fsr; fsr != nil {
		for _, e := range batch {
			i := int(e.PC>>2) & mask
			h := hist[i]
			lv := last[i]
			pred := lv + uint32(int32(l2[h]<<eShift)>>eShift)
			res.Correct += uint64(hit01(pred, e.Value))
			stride := e.Value - lv
			l2[h] = stride & sMask
			hist[i] = fsr.Update32(h, stride)
			last[i] = e.Value
		}
		return res
	}
	for _, e := range batch {
		i := int(e.PC>>2) & mask
		h := hist[i]
		lv := last[i]
		pred := lv + uint32(int32(l2[h]<<eShift)>>eShift)
		res.Correct += uint64(hit01(pred, e.Value))
		stride := e.Value - lv
		l2[h] = stride & sMask
		hist[i] = p.h.Update(h, uint64(stride))
		last[i] = e.Value
	}
	return res
}

// RunBatch implements BatchRunner. The table scans inside Predict and
// Update run on the concrete receiver (devirtualized and inlinable);
// both use fixed-size stack arrays for the per-table indices, so the
// loop allocates nothing.
func (p *TAGE) RunBatch(batch []trace.Event) Result {
	res := Result{Predictions: uint64(len(batch))}
	for i := range batch {
		e := &batch[i]
		res.Correct += uint64(hit01(p.Predict(e.PC), e.Value))
		p.Update(e.PC, e.Value)
	}
	return res
}

// RunBatch implements BatchRunner. The slot scans stay as loops (n is
// tiny and data-dependent); the win is the devirtualized per-event
// calls.
func (p *LastN) RunBatch(batch []trace.Event) Result {
	res := Result{Predictions: uint64(len(batch))}
	for i := range batch {
		e := &batch[i]
		if p.Predict(e.PC) == e.Value {
			res.Correct++
		}
		p.Update(e.PC, e.Value)
	}
	return res
}

// RunBatch implements BatchRunner. The queue drain inside Predict and
// the enqueue inside Update run on the concrete receiver; the wrapped
// predictor is still reached through its interface (the delay model
// is not a hot-path predictor).
func (d *Delayed) RunBatch(batch []trace.Event) Result {
	res := Result{Predictions: uint64(len(batch))}
	for i := range batch {
		e := &batch[i]
		if d.Predict(e.PC) == e.Value {
			res.Correct++
		}
		d.Update(e.PC, e.Value)
	}
	return res
}

// RunBatch implements BatchRunner with Score semantics: an event is
// correct when any component predicted it, matching the generic
// Scorer path exactly.
func (p *PerfectHybrid) RunBatch(batch []trace.Event) Result {
	res := Result{Predictions: uint64(len(batch))}
	for i := range batch {
		e := &batch[i]
		if p.Score(e.PC, e.Value) {
			res.Correct++
		}
	}
	return res
}

// RunBatch implements BatchRunner.
func (p *MetaHybrid) RunBatch(batch []trace.Event) Result {
	res := Result{Predictions: uint64(len(batch))}
	for i := range batch {
		e := &batch[i]
		if p.Predict(e.PC) == e.Value {
			res.Correct++
		}
		p.Update(e.PC, e.Value)
	}
	return res
}

// RunBatch implements BatchRunner (counts raw accuracy, like the
// generic loop; confidence splits remain RunConfident's job).
func (c *CounterConfidence) RunBatch(batch []trace.Event) Result {
	res := Result{Predictions: uint64(len(batch))}
	for i := range batch {
		e := &batch[i]
		if c.Predict(e.PC) == e.Value {
			res.Correct++
		}
		c.Update(e.PC, e.Value)
	}
	return res
}

// RunBatch implements BatchRunner (raw accuracy; see CounterConfidence).
func (h *HashTag) RunBatch(batch []trace.Event) Result {
	res := Result{Predictions: uint64(len(batch))}
	for i := range batch {
		e := &batch[i]
		if h.Predict(e.PC) == e.Value {
			res.Correct++
		}
		h.Update(e.PC, e.Value)
	}
	return res
}

// RunBatch implements BatchRunner (raw accuracy; see CounterConfidence).
func (c *Combined) RunBatch(batch []trace.Event) Result {
	res := Result{Predictions: uint64(len(batch))}
	for i := range batch {
		e := &batch[i]
		if c.Predict(e.PC) == e.Value {
			res.Correct++
		}
		c.Update(e.PC, e.Value)
	}
	return res
}
