package core

import "fmt"

// Spec describes a predictor configuration in the flag vocabulary
// shared by cmd/vpredict and cmd/vpserve (-predictor/-l1/-l2/-width/
// -delay). Keeping the mapping here guarantees that an online serving
// session and an offline replay built from the same flags run the
// exact same predictor — the property the end-to-end equivalence test
// relies on.
type Spec struct {
	Kind  string // lvp | stride | 2delta | fcm | dfcm | hybrid | tage
	L1    uint   // log2 of the level-1 (or only) table entries
	L2    uint   // log2 of the level-2 table entries (fcm/dfcm/hybrid); log2 entries per tagged table (tage)
	Width uint   // stored stride width in bits (dfcm/tage); 0 means 32
	Delay int    // update delay in predictions; 0 disables

	// TAGE-only geometry (-tables/-tag/-hmin/-hmax). Zero means the
	// kind's default; Canonical zeroes them for every other kind.
	Tables  uint // tagged-table count; 0 means 4
	Tag     uint // partial-tag width in bits; 0 means 8
	HistMin uint // shortest history length in events; 0 means 4
	HistMax uint // longest history length in events; 0 means 64
}

// Canonical returns the spec with fields the kind ignores zeroed and
// defaults made explicit, so two specs compare equal exactly when New
// builds behaviourally identical predictors. Checkpoint warm-start
// (internal/serve) and cmd/vpstate diff compare canonical specs.
func (s Spec) Canonical() Spec {
	switch s.Kind {
	case "lvp", "stride", "2delta":
		s.L2, s.Width = 0, 0
	case "fcm", "hybrid":
		s.Width = 0
	case "dfcm":
		if s.Width == 0 {
			s.Width = 32
		}
	case "tage":
		if s.Width == 0 {
			s.Width = 32
		}
		if s.Tables == 0 {
			s.Tables = 4
		}
		if s.Tag == 0 {
			s.Tag = 8
		}
		if s.HistMin == 0 {
			s.HistMin = 4
		}
		if s.HistMax == 0 {
			s.HistMax = 64
		}
	}
	if s.Kind != "tage" {
		s.Tables, s.Tag, s.HistMin, s.HistMax = 0, 0, 0, 0
	}
	return s
}

// New builds a fresh predictor from the spec. Unlike the constructors,
// which panic on out-of-range parameters (programming errors), New
// validates and returns an error, since specs typically arrive from
// flags or a network peer.
func (s Spec) New() (Predictor, error) {
	if s.L1 > 30 {
		return nil, fmt.Errorf("level-1 width %d out of range [0,30]", s.L1)
	}
	if s.L2 > 30 {
		return nil, fmt.Errorf("level-2 width %d out of range [0,30]", s.L2)
	}
	// The context kinds hash histories into the level-2 index, and a
	// zero-width hash is meaningless — the constructors panic on it,
	// so reject it here where inputs come from flags or the network.
	if s.L2 == 0 && (s.Kind == "fcm" || s.Kind == "dfcm" || s.Kind == "hybrid") {
		return nil, fmt.Errorf("%s needs a level-2 width in [1,30]", s.Kind)
	}
	// tage indexes its tagged tables with L2 bits the same way; zero
	// tagged entries is meaningless.
	if s.L2 == 0 && s.Kind == "tage" {
		return nil, fmt.Errorf("tage needs a tagged-table width in [1,30]")
	}
	width := s.Width
	if width == 0 {
		width = 32
	}
	if width > 32 {
		return nil, fmt.Errorf("stride width %d out of range [1,32]", s.Width)
	}
	if s.Delay < 0 {
		return nil, fmt.Errorf("negative update delay %d", s.Delay)
	}
	var p Predictor
	switch s.Kind {
	case "lvp":
		p = NewLastValue(s.L1)
	case "stride":
		p = NewStride(s.L1)
	case "2delta":
		p = NewTwoDelta(s.L1)
	case "fcm":
		p = NewFCM(s.L1, s.L2)
	case "dfcm":
		p = NewDFCMWidth(s.L1, s.L2, width)
	case "hybrid":
		p = NewPerfectHybrid(NewStride(s.L1), NewFCM(s.L1, s.L2))
	case "tage":
		c := s.Canonical()
		if c.Tables > TAGEMaxTables {
			return nil, fmt.Errorf("tage table count %d out of range [1,%d]", c.Tables, TAGEMaxTables)
		}
		if c.Tag < 4 || c.Tag > 16 {
			return nil, fmt.Errorf("tage tag width %d out of range [4,16]", c.Tag)
		}
		if c.HistMax > TAGEMaxHist || c.HistMin > c.HistMax {
			return nil, fmt.Errorf("tage history series %d..%d out of range [1,%d]", c.HistMin, c.HistMax, TAGEMaxHist)
		}
		p = NewTAGE(c.L1, c.L2, width, int(c.Tables), c.Tag, c.HistMin, c.HistMax)
	default:
		return nil, fmt.Errorf("unknown predictor %q", s.Kind)
	}
	if s.Delay > 0 {
		p = NewDelayed(p, s.Delay)
	}
	return p, nil
}
