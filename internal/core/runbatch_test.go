package core

import (
	"testing"

	"repro/internal/trace"
)

// batchTrace builds a deterministic mixed-pattern event stream.
func batchTrace(n int) trace.Trace {
	tr := make(trace.Trace, 0, n)
	var x uint32
	for i := 0; i < n; i++ {
		pc := uint32(0x40 + 4*(i%11))
		if i%4 == 0 {
			x += 7
		} else {
			x = x*3 + uint32(i%6)
		}
		tr = append(tr, trace.Event{PC: pc, Value: x})
	}
	return tr
}

// TestRunBatchChunksEqualRun: feeding a trace through RunBatch in
// chunks — predictor state carrying across calls — sums to exactly
// one Run over the whole trace, for plain predictors, wrapped ones
// and Scorers, at chunk sizes that do and do not divide the trace.
func TestRunBatchChunksEqualRun(t *testing.T) {
	tr := batchTrace(5000)
	mks := map[string]func() Predictor{
		"lvp":     func() Predictor { return NewLastValue(8) },
		"stride":  func() Predictor { return NewStride(8) },
		"fcm":     func() Predictor { return NewFCM(8, 10) },
		"dfcm":    func() Predictor { return NewDFCM(8, 10) },
		"delayed": func() Predictor { return NewDelayed(NewDFCM(8, 10), 32) },
		"perfect": func() Predictor { return NewPerfectHybrid(NewStride(8), NewFCM(8, 10)) },
	}
	for name, mk := range mks {
		want := Run(mk(), trace.NewReader(tr))
		for _, chunk := range []int{1, 13, 512, len(tr), len(tr) + 1} {
			p := mk()
			var got Result
			for start := 0; start < len(tr); start += chunk {
				end := start + chunk
				if end > len(tr) {
					end = len(tr)
				}
				got.Add(RunBatch(p, tr[start:end]))
			}
			if got != want {
				t.Errorf("%s chunk %d: RunBatch sum %+v, Run %+v", name, chunk, got, want)
			}
		}
	}
}

// TestRunBatchEmpty: an empty batch is a no-op.
func TestRunBatchEmpty(t *testing.T) {
	if r := RunBatch(NewLastValue(4), nil); r != (Result{}) {
		t.Errorf("empty batch produced %+v", r)
	}
}
