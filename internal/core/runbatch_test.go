package core

import (
	"testing"

	"repro/internal/trace"
)

// batchTrace builds a deterministic mixed-pattern event stream.
func batchTrace(n int) trace.Trace {
	tr := make(trace.Trace, 0, n)
	var x uint32
	for i := 0; i < n; i++ {
		pc := uint32(0x40 + 4*(i%11))
		if i%4 == 0 {
			x += 7
		} else {
			x = x*3 + uint32(i%6)
		}
		tr = append(tr, trace.Event{PC: pc, Value: x})
	}
	return tr
}

// TestRunBatchChunksEqualRun: feeding a trace through RunBatch in
// chunks — predictor state carrying across calls — sums to exactly
// one Run over the whole trace, for plain predictors, wrapped ones
// and Scorers, at chunk sizes that do and do not divide the trace.
func TestRunBatchChunksEqualRun(t *testing.T) {
	tr := batchTrace(5000)
	mks := map[string]func() Predictor{
		"lvp":     func() Predictor { return NewLastValue(8) },
		"stride":  func() Predictor { return NewStride(8) },
		"fcm":     func() Predictor { return NewFCM(8, 10) },
		"dfcm":    func() Predictor { return NewDFCM(8, 10) },
		"delayed": func() Predictor { return NewDelayed(NewDFCM(8, 10), 32) },
		"perfect": func() Predictor { return NewPerfectHybrid(NewStride(8), NewFCM(8, 10)) },
		"tage":    func() Predictor { return NewTAGE(8, 6, 32, 4, 8, 4, 64) },
	}
	for name, mk := range mks {
		want := Run(mk(), trace.NewReader(tr))
		for _, chunk := range []int{1, 13, 512, len(tr), len(tr) + 1} {
			p := mk()
			var got Result
			for start := 0; start < len(tr); start += chunk {
				end := start + chunk
				if end > len(tr) {
					end = len(tr)
				}
				got.Add(RunBatch(p, tr[start:end]))
			}
			if got != want {
				t.Errorf("%s chunk %d: RunBatch sum %+v, Run %+v", name, chunk, got, want)
			}
		}
	}
}

// TestRunBatchEmpty: an empty batch is a no-op.
func TestRunBatchEmpty(t *testing.T) {
	if r := RunBatch(NewLastValue(4), nil); r != (Result{}) {
		t.Errorf("empty batch produced %+v", r)
	}
}

// runGenericBatch is RunBatch's generic per-event loop, bypassing the
// BatchRunner dispatch — the reference the concrete-type loops must
// match bit for bit.
func runGenericBatch(p Predictor, batch []trace.Event) Result {
	var res Result
	res.Predictions = uint64(len(batch))
	if s, ok := p.(Scorer); ok {
		for _, e := range batch {
			if s.Score(e.PC, e.Value) {
				res.Correct++
			}
		}
		return res
	}
	for _, e := range batch {
		if p.Predict(e.PC) == e.Value {
			res.Correct++
		}
		p.Update(e.PC, e.Value)
	}
	return res
}

// TestRunBatchConcreteMatchesGeneric: every concrete RunBatch
// implementation produces, chunk by chunk, exactly the Result of the
// generic loop on an identical twin — and leaves the predictor in the
// same state, witnessed by the serialized snapshot where available
// and by post-run prediction parity everywhere.
func TestRunBatchConcreteMatchesGeneric(t *testing.T) {
	tr := batchTrace(6000)
	mks := map[string]func() Predictor{
		"lvp":      func() Predictor { return NewLastValue(8) },
		"stride":   func() Predictor { return NewStride(8) },
		"twodelta": func() Predictor { return NewTwoDelta(8) },
		"fcm":      func() Predictor { return NewFCM(8, 10) },
		"dfcm":     func() Predictor { return NewDFCM(8, 10) },
		"dfcm-w8":  func() Predictor { return NewDFCMWidth(8, 10, 8) },
		// Narrow level-2 disables the FSR Update32 fast path, covering
		// the interface-hash loop variant.
		"dfcm-small-l2": func() Predictor { return NewDFCMWidth(8, 6, 32) },
		"lastn":         func() Predictor { return NewLastN(8, 4) },
		"delayed":       func() Predictor { return NewDelayed(NewDFCM(8, 10), 32) },
		"perfect":       func() Predictor { return NewPerfectHybrid(NewStride(8), NewFCM(8, 10)) },
		"meta":          func() Predictor { return NewMetaHybrid(NewStride(8), NewFCM(8, 10), 8) },
		"counterconf":   func() Predictor { return NewCounterConfidence(NewDFCM(8, 10), 8, 15, 8) },
		"hashtag":       func() Predictor { return NewHashTag(NewDFCM(8, 10), 6, 7) },
		"combined": func() Predictor {
			d := NewDFCM(8, 10)
			return NewCombined(d, NewHashTag(d, 6, 7), NewCounterConfidence(d, 6, 15, 4))
		},
		"tage":         func() Predictor { return NewTAGE(8, 6, 32, 4, 8, 4, 64) },
		"tage-w8":      func() Predictor { return NewTAGE(8, 6, 8, 3, 10, 2, 32) },
		"tage-1table":  func() Predictor { return NewTAGE(8, 6, 32, 1, 8, 16, 16) },
		"tage-delayed": func() Predictor { return NewDelayed(NewTAGE(8, 6, 32, 4, 8, 4, 64), 32) },
	}
	for name, mk := range mks {
		concrete, generic := mk(), mk()
		if _, ok := concrete.(BatchRunner); !ok {
			t.Errorf("%s: does not implement BatchRunner", name)
			continue
		}
		for _, chunk := range []int{1, 17, 733, len(tr)} {
			for start := 0; start < len(tr); start += chunk {
				end := start + chunk
				if end > len(tr) {
					end = len(tr)
				}
				got := RunBatch(concrete, tr[start:end])
				want := runGenericBatch(generic, tr[start:end])
				if got != want {
					t.Fatalf("%s chunk %d at %d: concrete %+v, generic %+v", name, chunk, start, got, want)
				}
			}
		}
		cs, cok := concrete.(Snapshotter)
		gs, gok := generic.(Snapshotter)
		if cok && gok {
			if string(cs.AppendState(nil)) != string(gs.AppendState(nil)) {
				t.Errorf("%s: serialized state diverged between concrete and generic loops", name)
			}
		}
		for _, e := range tr[:64] {
			if concrete.Predict(e.PC) != generic.Predict(e.PC) {
				t.Errorf("%s: post-run predictions diverged at pc %#x", name, e.PC)
				break
			}
		}
	}
}
