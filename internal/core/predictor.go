// Package core implements the value predictors studied in the DFCM
// paper (Goeman, Vandierendonck, De Bosschere, HPCA 2001): the
// last-value predictor, the confidence-gated stride predictor, the
// two-delta stride predictor, the finite context method (FCM), the
// paper's contribution — the differential finite context method
// (DFCM) — and hybrid predictors with perfect or saturating-counter
// meta-predictors.
//
// All predictors consume the same trace interface: a stream of
// (pc, value) events where pc is the program counter of a static
// instruction and value is the 32-bit integer register value it
// produced. Accuracy is the fraction of events whose value was
// predicted exactly.
//
// Every predictor reports its hardware budget via SizeBits, using the
// accounting documented on its constructor, so that experiments can
// reproduce the paper's accuracy-versus-Kbit plots.
package core

import "repro/internal/trace"

// Predictor is a value predictor processing one trace event at a time:
// first Predict is consulted for the instruction at pc, then — once the
// instruction's true result is known — Update trains the tables.
// Implementations are deterministic and not safe for concurrent use.
type Predictor interface {
	// Predict returns the predicted result value of the instruction
	// at pc. A prediction is always produced; confidence filtering is
	// out of scope (the paper measures raw accuracy).
	Predict(pc uint32) uint32
	// Update trains the predictor with the actual value produced by
	// the instruction at pc.
	Update(pc, value uint32)
	// Name identifies the predictor configuration in reports.
	Name() string
	// SizeBits returns the storage budget of the predictor in bits.
	SizeBits() int64
}

// Scorer is implemented by predictors whose correctness cannot be
// judged by comparing a single predicted value against the outcome —
// notably perfect-meta hybrids, which count an event as correct when
// any component predicted it. Run prefers Score over Predict/Update
// when available.
type Scorer interface {
	// Score predicts, judges and updates in one step, returning
	// whether the event counts as correctly predicted.
	Score(pc, value uint32) bool
}

// BatchRunner is implemented by predictors that can process a whole
// in-memory chunk of events with a concrete-type loop. The top-level
// RunBatch prefers it over the generic per-event loop: one interface
// dispatch per chunk instead of two per event, with the table accesses
// and hash updates fully inlined inside the method. Semantics are
// exactly those of the generic loop (including Score for Scorers);
// equivalence is pinned by TestRunBatchConcreteMatchesGeneric.
type BatchRunner interface {
	// RunBatch processes the events in order and returns the result of
	// exactly that slice. State carries across calls, like Run.
	RunBatch(batch []trace.Event) Result
}

// L2Indexer is implemented by two-level predictors (FCM, DFCM) and
// exposes the level-2 table index a prediction at pc would use. The
// table-usage experiments (paper Figures 6 and 9) build their
// per-entry access histograms through this interface.
type L2Indexer interface {
	// L2Index returns the level-2 index Predict(pc) would consult.
	L2Index(pc uint32) uint64
	// L2Entries returns the number of level-2 table entries.
	L2Entries() int
}

// IndexedUpdater is the fused form of L2Indexer + Update: one call
// performs the update and returns the level-2 index it wrote to,
// saving a second level-1 lookup per event. Implemented by FCM and
// DFCM; instrumentation loops use it when available.
type IndexedUpdater interface {
	L2IndexAndUpdate(pc, value uint32) uint64
}

// Resetter is implemented by predictors that can return to their
// freshly-constructed state in place, without reallocating tables.
// After Reset, the predictor behaves exactly like a new instance from
// the same constructor. Long-lived services (internal/serve) use this
// to recycle per-session predictor state.
type Resetter interface {
	// Reset clears all learned state.
	Reset()
}

// TryReset resets p in place if it implements Resetter and reports
// whether it did; callers fall back to re-construction otherwise.
func TryReset(p Predictor) bool {
	if r, ok := p.(Resetter); ok {
		r.Reset()
		return true
	}
	return false
}

// mustReset resets a wrapped component and panics if it cannot be
// reset — a wrapper's Reset is only meaningful when it reaches every
// table underneath it.
func mustReset(p Predictor) {
	if !TryReset(p) {
		panic("core: " + p.Name() + " does not implement Reset")
	}
}

// Result accumulates prediction outcomes.
type Result struct {
	Predictions uint64
	Correct     uint64
}

// Accuracy returns Correct/Predictions, or 0 for an empty result.
func (r Result) Accuracy() float64 {
	if r.Predictions == 0 {
		return 0
	}
	return float64(r.Correct) / float64(r.Predictions)
}

// Add merges other into r.
func (r *Result) Add(other Result) {
	r.Predictions += other.Predictions
	r.Correct += other.Correct
}

// Run drives p over all events of src and returns the accumulated
// result. If p implements Scorer, its one-step Score is used;
// otherwise each event is processed as Predict, compare, Update.
func Run(p Predictor, src trace.Source) Result {
	var res Result
	if s, ok := p.(Scorer); ok {
		for {
			e, more := src.Next()
			if !more {
				return res
			}
			res.Predictions++
			if s.Score(e.PC, e.Value) {
				res.Correct++
			}
		}
	}
	for {
		e, more := src.Next()
		if !more {
			return res
		}
		res.Predictions++
		if p.Predict(e.PC) == e.Value {
			res.Correct++
		}
		p.Update(e.PC, e.Value)
	}
}

// RunBatch drives p over one in-memory slice of events and returns
// the result of exactly that slice. It is the chunked counterpart of
// Run: callers that already hold a materialized trace avoid the
// per-event Source.Next interface dispatch, and a sweep engine can
// interleave many predictors over the same chunk while it is hot in
// cache (internal/engine). Feeding consecutive chunks of a trace
// through RunBatch and summing the results is exactly equivalent to
// one Run over the whole trace: predictor state carries across calls
// and Result is a plain event count.
func RunBatch(p Predictor, batch []trace.Event) Result {
	if b, ok := p.(BatchRunner); ok {
		return b.RunBatch(batch)
	}
	var res Result
	res.Predictions = uint64(len(batch))
	if s, ok := p.(Scorer); ok {
		for _, e := range batch {
			if s.Score(e.PC, e.Value) {
				res.Correct++
			}
		}
		return res
	}
	for _, e := range batch {
		if p.Predict(e.PC) == e.Value {
			res.Correct++
		}
		p.Update(e.PC, e.Value)
	}
	return res
}

// pcIndex maps a program counter to a table index of the given width.
// MR32 instructions are 4-byte aligned (as on the paper's MIPS
// target), so the two always-zero low bits are dropped first; without
// this, three quarters of every PC-indexed table would be dead.
func pcIndex(pc uint32, bits uint) uint32 {
	return (pc >> 2) & uint32((1<<bits)-1)
}

// checkBits panics unless b is a usable table index width.
func checkBits(what string, b, max uint) {
	if b > max {
		panic("core: " + what + " table index width out of range")
	}
}
