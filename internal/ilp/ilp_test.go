package ilp

import (
	"testing"

	"repro/internal/asm"
	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/progs"
	"repro/internal/trace"
	"repro/internal/vm"
)

func mustAsm(t *testing.T, src string) *asm.Program {
	t.Helper()
	p, err := asm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

const exit = "\nli $v0, 10\nsyscall\n"

func TestSerialChainHasHeightN(t *testing.T) {
	// A pure dependence chain: each addiu depends on the previous.
	p := mustAsm(t, `
	main:
		addiu $t0, $t0, 1
		addiu $t0, $t0, 1
		addiu $t0, $t0, 1
		addiu $t0, $t0, 1
		addiu $t0, $t0, 1
	`+exit)
	res, err := Measure(p, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	// 5 chained adds + li (independent) + syscall (reads v0 -> after li).
	if res.Height < 5 {
		t.Errorf("height = %d, want >= 5", res.Height)
	}
	if res.ILP() > 2 {
		t.Errorf("serial chain ILP = %.2f, want low", res.ILP())
	}
}

func TestIndependentOpsAreParallel(t *testing.T) {
	p := mustAsm(t, `
	main:
		addiu $t0, $zero, 1
		addiu $t1, $zero, 2
		addiu $t2, $zero, 3
		addiu $t3, $zero, 4
		addiu $t4, $zero, 5
		addiu $t5, $zero, 6
	`+exit)
	res, err := Measure(p, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.ILP() < 2.5 {
		t.Errorf("independent ops ILP = %.2f, want high", res.ILP())
	}
}

func TestOracleCollapsesChains(t *testing.T) {
	// A long serial accumulation: the oracle publishes every result at
	// cycle 0, collapsing the chain to height ~1.
	p := mustAsm(t, `
	main:
		li   $t0, 0
		li   $t1, 0
	loop:
		addiu $t0, $t0, 1
		addu  $t1, $t1, $t0
		li    $t2, 2000
		bne   $t0, $t2, loop
	`+exit)
	base, err := Measure(p, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	orc, err := Measure(p, 0, Oracle)
	if err != nil {
		t.Fatal(err)
	}
	if orc.Height >= base.Height/10 {
		t.Errorf("oracle height %d vs baseline %d: chains not collapsed", orc.Height, base.Height)
	}
	if orc.Accuracy() != 1 {
		t.Errorf("oracle accuracy = %v", orc.Accuracy())
	}
	if base.Predictable != 0 || base.Correct != 0 {
		t.Error("baseline should not consult a predictor")
	}
}

func TestRealPredictorBetweenBaselineAndOracle(t *testing.T) {
	p, err := progs.Program("li")
	if err != nil {
		t.Fatal(err)
	}
	const budget = 150_000
	base, err := Measure(p, budget, nil)
	if err != nil {
		t.Fatal(err)
	}
	dfcm, err := Measure(p, budget, core.NewDFCM(14, 12))
	if err != nil {
		t.Fatal(err)
	}
	orc, err := Measure(p, budget, Oracle)
	if err != nil {
		t.Fatal(err)
	}
	if !(base.ILP() <= dfcm.ILP() && dfcm.ILP() <= orc.ILP()) {
		t.Errorf("ILP ordering violated: base %.2f, dfcm %.2f, oracle %.2f",
			base.ILP(), dfcm.ILP(), orc.ILP())
	}
	if dfcm.ILP() <= base.ILP() {
		t.Errorf("DFCM should raise ILP above the dataflow limit (%.2f vs %.2f)",
			dfcm.ILP(), base.ILP())
	}
}

func TestPredictableCountMatchesVMFilter(t *testing.T) {
	// isa.DecodeDeps' Predictable flag must agree exactly with the
	// simulator's trace-emission filter.
	for _, bench := range []string{"li", "m88ksim", "cc1"} {
		p, err := progs.Program(bench)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Measure(p, 100_000, core.NewLastValue(4))
		if err != nil {
			t.Fatal(err)
		}
		c := vm.New(p, nil)
		if err := c.Run(res.Instructions); err != nil && err != vm.ErrBudget {
			t.Fatal(err)
		}
		if res.Predictable != c.Emitted {
			t.Errorf("%s: deps filter counts %d predictable, VM emits %d",
				bench, res.Predictable, c.Emitted)
		}
	}
}

func TestPredictorAccuracyMatchesCoreRun(t *testing.T) {
	// Consulting the predictor inside the ILP walk must reproduce the
	// exact accuracy of the standalone trace run.
	p, err := progs.Program("m88ksim")
	if err != nil {
		t.Fatal(err)
	}
	res, err := Measure(p, 120_000, core.NewDFCM(12, 10))
	if err != nil {
		t.Fatal(err)
	}
	tr, err := vm.Trace(p, res.Instructions)
	if err != nil {
		t.Fatal(err)
	}
	ref := core.Run(core.NewDFCM(12, 10), trace.NewReader(tr))
	if ref.Predictions != res.Predictable || ref.Correct != res.Correct {
		t.Errorf("ILP walk scored %d/%d, trace run %d/%d",
			res.Correct, res.Predictable, ref.Correct, ref.Predictions)
	}
}

func TestDecodeDepsSpotChecks(t *testing.T) {
	cases := []struct {
		word uint32
		want isa.Deps
	}{
		{0, isa.Deps{Src1: -1, Src2: -1, Dest: -1, Dest2: -1}}, // nop
		{isa.EncodeR(isa.FnADDU, isa.RegT0, isa.RegT1, isa.RegT2, 0),
			isa.Deps{Src1: isa.RegT1, Src2: isa.RegT2, Dest: isa.RegT0, Dest2: -1, Predictable: true}},
		{isa.EncodeR(isa.FnMULT, 0, isa.RegT0, isa.RegT1, 0),
			isa.Deps{Src1: isa.RegT0, Src2: isa.RegT1, Dest: isa.RegLO, Dest2: isa.RegHI, Predictable: true}},
		{isa.EncodeI(isa.OpLW, isa.RegT0, isa.RegSP, 4),
			isa.Deps{Src1: isa.RegSP, Src2: -1, Dest: isa.RegT0, Dest2: -1, Load: true, Predictable: true}},
		{isa.EncodeI(isa.OpSW, isa.RegT0, isa.RegSP, 4),
			isa.Deps{Src1: isa.RegSP, Src2: isa.RegT0, Dest: -1, Dest2: -1, Store: true}},
		{isa.EncodeI(isa.OpBEQ, isa.RegT1, isa.RegT0, 4),
			isa.Deps{Src1: isa.RegT0, Src2: isa.RegT1, Dest: -1, Dest2: -1, Branch: true}},
		{isa.EncodeJ(isa.OpJAL, 0x100),
			isa.Deps{Src1: -1, Src2: -1, Dest: isa.RegRA, Dest2: -1, Branch: true}},
		{isa.EncodeI(isa.OpADDIU, 0 /* $zero dest */, isa.RegT0, 1),
			isa.Deps{Src1: isa.RegT0, Src2: -1, Dest: -1, Dest2: -1}},
	}
	for _, c := range cases {
		if got := isa.DecodeDeps(c.word); got != c.want {
			t.Errorf("DecodeDeps(%#x) = %+v, want %+v", c.word, got, c.want)
		}
	}
}
