// Package ilp implements the dataflow-limit study that motivates the
// paper's introduction: "The upper bound on achievable IPC is
// generally imposed by true register dependencies ... Value prediction
// is a technique capable of pushing this upper bound by predicting the
// outcome of an instruction and executing the dependent instructions
// earlier using the predicted value."
//
// The model is the classic idealized one (Lipasti & Shen, "Exceeding
// the dataflow limit via value prediction", MICRO 1996): unlimited
// fetch/issue width, perfect control prediction, unit latencies, and
// true register dependences only (memory dependences and structural
// hazards are ignored — documented in DESIGN.md). An instruction
// becomes ready one cycle after its latest input; the trace's ILP is
// instruction count divided by the dataflow height. Under value
// prediction, an instruction whose result was correctly predicted
// publishes its value at cycle zero, so dependents need not wait;
// mispredicted instructions behave as without prediction (an
// oracle-confidence model: mispredictions are never consumed).
package ilp

import (
	"repro/internal/asm"
	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/vm"
)

// Result summarizes one measurement.
type Result struct {
	// Instructions executed (all of them, not only predictable ones).
	Instructions uint64
	// Height is the dataflow critical path length in cycles.
	Height uint64
	// Predictable counts instructions under the value-prediction
	// filter; Correct counts those whose value the predictor got
	// right (0 when measuring the baseline).
	Predictable uint64
	Correct     uint64
}

// ILP returns instructions per cycle over the dataflow height.
func (r Result) ILP() float64 {
	if r.Height == 0 {
		return 0
	}
	return float64(r.Instructions) / float64(r.Height)
}

// Accuracy returns the predictor accuracy during the measurement.
func (r Result) Accuracy() float64 {
	if r.Predictable == 0 {
		return 0
	}
	return float64(r.Correct) / float64(r.Predictable)
}

// Oracle is a sentinel predictor for Measure: every predictable
// instruction counts as correctly predicted (the dataflow limit with
// perfect value prediction).
var Oracle core.Predictor = oracle{}

type oracle struct{}

func (oracle) Predict(pc uint32) uint32 { return 0 }
func (oracle) Update(pc, value uint32)  {}
func (oracle) Name() string             { return "oracle" }
func (oracle) SizeBits() int64          { return 0 }

// Measure runs the program for budget instructions (0 = to
// completion) and computes the dataflow ILP with unbounded fetch
// bandwidth. pred selects the value predictor collapsing dependences:
// nil measures the plain dataflow limit, Oracle assumes perfect
// prediction, any other predictor is consulted and trained exactly as
// in the accuracy experiments.
func Measure(p *asm.Program, budget uint64, pred core.Predictor) (Result, error) {
	return MeasureWidth(p, budget, pred, 0)
}

// MeasureWidth is Measure with a finite fetch bandwidth: instruction
// number i cannot start before cycle i/width, the only resource limit
// in the model. With width 0 fetch is unbounded — under a perfect
// oracle the whole program then collapses to a constant height, so
// limit studies conventionally keep a (generous) width; the ext-ilp
// experiment uses 64.
func MeasureWidth(p *asm.Program, budget uint64, pred core.Predictor, width uint64) (Result, error) {
	var res Result
	// ready[r] is the cycle at which register r's current value is
	// available. Entry 34 slots cover $0..$31 plus HI/LO.
	var ready [isa.NumDataflowRegs]uint64

	c := vm.New(p, nil)
	for !c.Halted() {
		if budget > 0 && c.Executed >= budget {
			break
		}
		pc := c.PC
		word := c.Mem.LoadWord(pc)
		d := isa.DecodeDeps(word)

		// Consult the predictor before executing (it sees the same
		// machine state the accuracy experiments do).
		var predicted uint32
		if pred != nil && d.Predictable {
			predicted = pred.Predict(pc)
		}

		if err := c.Step(); err != nil {
			if err == vm.ErrBudget {
				break
			}
			return res, err
		}
		res.Instructions++

		start := uint64(0)
		if width > 0 {
			start = (res.Instructions - 1) / width
		}
		if d.Src1 >= 0 && ready[d.Src1] > start {
			start = ready[d.Src1]
		}
		if d.Src2 >= 0 && ready[d.Src2] > start {
			start = ready[d.Src2]
		}
		done := start + 1
		if done > res.Height {
			res.Height = done
		}

		if d.Dest >= 0 {
			value := c.ReadDataflowReg(int(d.Dest))
			avail := done
			if pred != nil && d.Predictable {
				res.Predictable++
				correct := pred == Oracle || predicted == value
				if correct {
					res.Correct++
					avail = 0 // dependents use the predicted value
				}
				if pred != Oracle {
					pred.Update(pc, value)
				}
			}
			ready[d.Dest] = avail
			if d.Dest2 >= 0 {
				// The unpredicted second result (HI) of mult/div is
				// ready when the instruction completes.
				ready[d.Dest2] = done
			}
		}
	}
	return res, nil
}
