package metrics

import (
	"sort"

	"repro/internal/core"
	"repro/internal/trace"
)

// StrideHist measures how the level-2 table of a two-level predictor
// is occupied by stride patterns, reproducing the instrumentation of
// the paper's Figures 6 and 9: a side stride predictor acts as the
// oracle for "this value is part of a stride pattern" ("we used the
// simple indication that a value is part of a stride pattern if a
// stride predictor can correctly predict it"); every time the
// two-level predictor is consulted for such a value, the counter of
// the level-2 entry it accesses is incremented.
type StrideHist struct {
	counts []uint64
	oracle *core.Stride
}

// NewStrideHist creates the instrumentation for a predictor with the
// given number of level-2 entries, using a stride-predictor oracle
// with 2^oracleBits entries (the paper uses 64K).
func NewStrideHist(l2Entries int, oracleBits uint) *StrideHist {
	return &StrideHist{
		counts: make([]uint64, l2Entries),
		oracle: core.NewStride(oracleBits),
	}
}

// Observe processes one event: if the oracle stride predictor gets it
// right, the level-2 entry the predictor would access is charged.
// The caller remains responsible for updating the predictor itself;
// Observe updates only the oracle.
func (h *StrideHist) Observe(p core.L2Indexer, e trace.Event) {
	if h.oracle.Predict(e.PC) == e.Value {
		h.counts[p.L2Index(e.PC)]++
	}
	h.oracle.Update(e.PC, e.Value)
}

// Run drives predictor p over the whole trace with instrumentation
// and returns the sorted histogram. p must implement core.Predictor
// to be updated.
func (h *StrideHist) Run(p core.Predictor, src trace.Source) Histogram {
	idx, ok := p.(core.L2Indexer)
	if !ok {
		panic("metrics: predictor does not expose its level-2 index")
	}
	for {
		e, more := src.Next()
		if !more {
			break
		}
		h.Observe(idx, e)
		p.Predict(e.PC) // keep prediction path exercised
		p.Update(e.PC, e.Value)
	}
	return h.Histogram()
}

// Histogram returns the per-entry stride-access counts sorted in
// descending order (the paper's x axis: "l2-entry (sorted)").
func (h *StrideHist) Histogram() Histogram {
	out := append([]uint64(nil), h.counts...)
	sort.Slice(out, func(i, j int) bool { return out[i] > out[j] })
	return out
}

// Histogram is a descending-sorted count-per-entry vector.
type Histogram []uint64

// EntriesOver returns how many entries have a count above the
// threshold (e.g. "more than 100 entries are accessed more than 100
// times").
func (g Histogram) EntriesOver(threshold uint64) int {
	// counts are sorted descending; binary search the boundary.
	lo, hi := 0, len(g)
	for lo < hi {
		mid := (lo + hi) / 2
		if g[mid] > threshold {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Total returns the total number of stride-pattern accesses.
func (g Histogram) Total() uint64 {
	var s uint64
	for _, c := range g {
		s += c
	}
	return s
}

// Sample returns (index, count) pairs at logarithmically spaced ranks,
// a compact representation of the sorted curve for reports.
func (g Histogram) Sample() [][2]uint64 {
	var out [][2]uint64
	step := 1
	for i := 0; i < len(g); i += step {
		out = append(out, [2]uint64{uint64(i), g[i]})
		if i >= 10*step {
			step *= 10
		}
	}
	if len(g) > 0 {
		out = append(out, [2]uint64{uint64(len(g) - 1), g[len(g)-1]})
	}
	return out
}
