package metrics

import (
	"sort"

	"repro/internal/core"
	"repro/internal/trace"
)

// StrideHist measures how the level-2 table of a two-level predictor
// is occupied by stride patterns, reproducing the instrumentation of
// the paper's Figures 6 and 9: a side stride predictor acts as the
// oracle for "this value is part of a stride pattern" ("we used the
// simple indication that a value is part of a stride pattern if a
// stride predictor can correctly predict it"); every time the
// two-level predictor is consulted for such a value, the counter of
// the level-2 entry it accesses is incremented.
type StrideHist struct {
	counts []uint64
	oracle *core.Stride
}

// NewStrideHist creates the instrumentation for a predictor with the
// given number of level-2 entries, using a stride-predictor oracle
// with 2^oracleBits entries (the paper uses 64K).
func NewStrideHist(l2Entries int, oracleBits uint) *StrideHist {
	return &StrideHist{
		counts: make([]uint64, l2Entries),
		oracle: core.NewStride(oracleBits),
	}
}

// Observe processes one event: if the oracle stride predictor gets it
// right, the level-2 entry the predictor would access is charged.
// The caller remains responsible for updating the predictor itself;
// Observe updates only the oracle.
func (h *StrideHist) Observe(p core.L2Indexer, e trace.Event) {
	if h.oracle.Predict(e.PC) == e.Value {
		h.counts[p.L2Index(e.PC)]++
	}
	h.oracle.Update(e.PC, e.Value)
}

// Run drives predictor p over the whole trace with instrumentation
// and returns the sorted histogram. p must implement core.Predictor
// to be updated.
func (h *StrideHist) Run(p core.Predictor, src trace.Source) Histogram {
	idx, ok := p.(core.L2Indexer)
	if !ok {
		panic("metrics: predictor does not expose its level-2 index")
	}
	for {
		e, more := src.Next()
		if !more {
			break
		}
		h.Observe(idx, e)
		p.Predict(e.PC) // keep prediction path exercised
		p.Update(e.PC, e.Value)
	}
	return h.Histogram()
}

// StrideHists builds the stride-access histogram of several two-level
// predictors from a single pass over tr, sharing one stride oracle.
// It returns exactly what len(ps) separate StrideHist.Run calls over
// the same trace would: the oracle's hit sequence depends only on the
// trace, so one oracle serves every predictor, and the per-run
// discarded Predict call is dropped outright — Predict is side-effect
// free for the two-level predictors this instrumentation applies to
// (vplint's predict-purity rule enforces it), so skipping it cannot
// change any count. Predictors with update-bearing Predict (Delayed)
// are not valid here; every p must implement core.L2Indexer.
//
// Halving the oracle work and the predict work per (trace, predictor
// pair) is what makes the Figure 6/9 scans — the costliest
// per-benchmark scans in the suite — go through the trace once
// instead of once per predictor.
func StrideHists(oracleBits uint, tr trace.Trace, ps ...core.Predictor) []Histogram {
	return StrideHistsFromHits(StrideHits(oracleBits, tr), tr, ps...)
}

// StrideHits replays tr through a fresh 2^oracleBits-entry stride
// predictor and returns its per-event outcomes: out[i] reports
// whether the oracle, warmed by events [0,i), predicts event i. The
// mask is a pure function of (oracleBits, tr), so callers scanning
// the same trace repeatedly (the Figure 6/9 experiments, across runs)
// can compute it once and share it (engine.TraceCache.Derived).
func StrideHits(oracleBits uint, tr trace.Trace) []bool {
	oracle := core.NewStride(oracleBits)
	out := make([]bool, len(tr))
	for i, e := range tr {
		out[i] = oracle.Predict(e.PC) == e.Value
		oracle.Update(e.PC, e.Value)
	}
	return out
}

// StrideHistsFromHits is StrideHists with the oracle outcomes
// precomputed by StrideHits over the same trace. len(hits) must equal
// len(tr).
func StrideHistsFromHits(hits []bool, tr trace.Trace, ps ...core.Predictor) []Histogram {
	if len(hits) != len(tr) {
		panic("metrics: oracle hit mask does not match trace length")
	}
	idxs := make([]core.L2Indexer, len(ps))
	fused := make([]core.IndexedUpdater, len(ps))
	counts := make([][]uint64, len(ps))
	allFused := true
	for i, p := range ps {
		idx, ok := p.(core.L2Indexer)
		if !ok {
			panic("metrics: predictor does not expose its level-2 index")
		}
		idxs[i] = idx
		counts[i] = make([]uint64, idx.L2Entries())
		if f, ok := p.(core.IndexedUpdater); ok {
			fused[i] = f
		} else {
			allFused = false
		}
	}
	if allFused {
		// Fast path: L2IndexAndUpdate touches level-1 once per
		// (event, predictor) and returns the same index L2Index would
		// have before the same Update — counting on every event and
		// discarding on oracle misses is bit-identical to the generic
		// loop. The Figure 6/9 shapes additionally dispatch on the
		// concrete predictor types, saving an interface call per
		// (event, predictor) on the hottest scans in the suite.
		switch {
		case len(ps) == 1 && asFCM(ps[0]) != nil:
			f := asFCM(ps[0])
			c := counts[0]
			for ei, e := range tr {
				idx := f.L2IndexAndUpdate(e.PC, e.Value)
				if hits[ei] {
					c[idx]++
				}
			}
		case len(ps) == 2 && asFCM(ps[0]) != nil && asDFCM(ps[1]) != nil:
			f, d := asFCM(ps[0]), asDFCM(ps[1])
			cf, cd := counts[0], counts[1]
			for ei, e := range tr {
				fi := f.L2IndexAndUpdate(e.PC, e.Value)
				di := d.L2IndexAndUpdate(e.PC, e.Value)
				if hits[ei] {
					cf[fi]++
					cd[di]++
				}
			}
		default:
			for ei, e := range tr {
				hit := hits[ei]
				for i, f := range fused {
					idx := f.L2IndexAndUpdate(e.PC, e.Value)
					if hit {
						counts[i][idx]++
					}
				}
			}
		}
	} else {
		for ei, e := range tr {
			hit := hits[ei]
			for i, p := range ps {
				if hit {
					counts[i][idxs[i].L2Index(e.PC)]++
				}
				p.Update(e.PC, e.Value)
			}
		}
	}
	out := make([]Histogram, len(ps))
	for i, c := range counts {
		sort.Slice(c, func(a, b int) bool { return c[a] > c[b] })
		out[i] = c
	}
	return out
}

// asFCM and asDFCM recover the concrete predictor types for the
// specialized scan loops; they return nil for anything else.
func asFCM(p core.Predictor) *core.FCM   { f, _ := p.(*core.FCM); return f }
func asDFCM(p core.Predictor) *core.DFCM { d, _ := p.(*core.DFCM); return d }

// Histogram returns the per-entry stride-access counts sorted in
// descending order (the paper's x axis: "l2-entry (sorted)").
func (h *StrideHist) Histogram() Histogram {
	out := append([]uint64(nil), h.counts...)
	sort.Slice(out, func(i, j int) bool { return out[i] > out[j] })
	return out
}

// Histogram is a descending-sorted count-per-entry vector.
type Histogram []uint64

// EntriesOver returns how many entries have a count above the
// threshold (e.g. "more than 100 entries are accessed more than 100
// times").
func (g Histogram) EntriesOver(threshold uint64) int {
	// counts are sorted descending; binary search the boundary.
	lo, hi := 0, len(g)
	for lo < hi {
		mid := (lo + hi) / 2
		if g[mid] > threshold {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Total returns the total number of stride-pattern accesses.
func (g Histogram) Total() uint64 {
	var s uint64
	for _, c := range g {
		s += c
	}
	return s
}

// Sample returns (index, count) pairs at logarithmically spaced ranks,
// a compact representation of the sorted curve for reports.
func (g Histogram) Sample() [][2]uint64 {
	var out [][2]uint64
	step := 1
	for i := 0; i < len(g); i += step {
		out = append(out, [2]uint64{uint64(i), g[i]})
		if i >= 10*step {
			step *= 10
		}
	}
	if len(g) > 0 {
		out = append(out, [2]uint64{uint64(len(g) - 1), g[len(g)-1]})
	}
	return out
}
