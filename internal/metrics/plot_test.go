package metrics

import (
	"strings"
	"testing"
)

func TestPlotRendersSeries(t *testing.T) {
	p := &Plot{Title: "demo", XLabel: "size", YLabel: "accuracy"}
	p.AddSeries("fcm", []float64{1, 10, 100}, []float64{0.5, 0.6, 0.7})
	p.AddSeries("dfcm", []float64{1, 10, 100}, []float64{0.66, 0.72, 0.77})
	s := p.String()
	if !strings.Contains(s, "demo") {
		t.Error("missing title")
	}
	if !strings.Contains(s, "* fcm") || !strings.Contains(s, "o dfcm") {
		t.Errorf("missing legend entries:\n%s", s)
	}
	if !strings.Contains(s, "*") || !strings.Contains(s, "o") {
		t.Error("missing data markers")
	}
	if !strings.Contains(s, "x: size") || !strings.Contains(s, "y: accuracy") {
		t.Error("missing axis labels")
	}
}

func TestPlotLogX(t *testing.T) {
	p := &Plot{LogX: true, Width: 40, Height: 8}
	p.AddSeries("s", []float64{1, 10, 100, 1000}, []float64{1, 2, 3, 4})
	s := p.String()
	// On a log axis, equally-ratioed x values space evenly: the four
	// markers should appear on distinct, roughly equidistant columns.
	lines := strings.Split(s, "\n")
	var cols []int
	for _, line := range lines {
		if strings.Contains(line, "+--") {
			break // past the plot area (x axis); legend follows
		}
		if i := strings.IndexByte(line, '*'); i >= 0 {
			cols = append(cols, i)
		}
	}
	if len(cols) != 4 {
		t.Fatalf("found %d marker rows, want 4:\n%s", len(cols), s)
	}
	d1, d2, d3 := cols[1]-cols[0], cols[2]-cols[1], cols[3]-cols[2]
	// Markers are on descending y, so columns ascend right-to-left in
	// our scan order? They appear top (y=4, x=1000) first.
	if d1 > 0 == (d2 > 0) && abs(d1-d2) > 2 && abs(d2-d3) > 2 {
		t.Errorf("log spacing uneven: %v", cols)
	}
	if !strings.Contains(s, "(log scale)") == strings.Contains(s, "x:") {
		// only checked when labels rendered
		_ = s
	}
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

func TestPlotEmpty(t *testing.T) {
	p := &Plot{Title: "empty"}
	if !strings.Contains(p.String(), "(no data)") {
		t.Error("empty plot should say so")
	}
}

func TestPlotSingletonRanges(t *testing.T) {
	p := &Plot{Width: 20, Height: 5}
	p.AddSeries("one", []float64{5}, []float64{0.5})
	s := p.String()
	if !strings.Contains(s, "*") {
		t.Errorf("single point not plotted:\n%s", s)
	}
}

func TestPlotCollisionMarker(t *testing.T) {
	p := &Plot{Width: 10, Height: 5}
	p.AddSeries("a", []float64{1, 2}, []float64{0, 1})
	p.AddSeries("b", []float64{1, 2}, []float64{0, 1})
	if !strings.Contains(p.String(), "?") {
		t.Error("overlapping series should render a collision marker")
	}
}

func TestPlotAddPoints(t *testing.T) {
	p := &Plot{LogX: true}
	p.AddPoints("front", []Point{
		{SizeBits: 8 * 1024, Accuracy: 0.4},
		{SizeBits: 1024 * 1024, Accuracy: 0.7},
	})
	if !strings.Contains(p.String(), "front") {
		t.Error("AddPoints series missing")
	}
}

func TestPlotPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic for mismatched series")
		}
	}()
	(&Plot{}).AddSeries("bad", []float64{1}, []float64{1, 2})
}
