package metrics

import (
	"testing"

	"repro/internal/core"
	"repro/internal/trace"
)

// histTrace interleaves stride runs with context-dependent noise over
// several PCs so both the oracle and the level-2 occupancy are
// non-trivial.
func histTrace(n int) trace.Trace {
	tr := make(trace.Trace, 0, n)
	var a, b uint32
	for i := 0; i < n; i++ {
		a += 4
		tr = append(tr, trace.Event{PC: 0x100, Value: a})
		b = b*5 + uint32(i%9)
		tr = append(tr, trace.Event{PC: 0x104 + 4*uint32(i%3), Value: b})
	}
	return tr
}

// TestStrideHistsMatchPerRunHistograms: the single-pass shared-oracle
// scan must reproduce, bit for bit, the histograms of one
// StrideHist.Run per predictor over the same trace.
func TestStrideHistsMatchPerRunHistograms(t *testing.T) {
	tr := histTrace(4000)
	const oracleBits, l2 = 10, 8

	fref := NewStrideHist(1<<l2, oracleBits).Run(core.NewFCM(8, l2), trace.NewReader(tr))
	dref := NewStrideHist(1<<l2, oracleBits).Run(core.NewDFCM(8, l2), trace.NewReader(tr))

	got := StrideHists(oracleBits, tr, core.NewFCM(8, l2), core.NewDFCM(8, l2))
	if len(got) != 2 {
		t.Fatalf("got %d histograms", len(got))
	}
	for i, ref := range [][]uint64{fref, dref} {
		if len(got[i]) != len(ref) {
			t.Fatalf("hist %d: %d entries, want %d", i, len(got[i]), len(ref))
		}
		for j := range ref {
			if got[i][j] != ref[j] {
				t.Errorf("hist %d rank %d: %d, want %d", i, j, got[i][j], ref[j])
				break
			}
		}
	}
	if got[0].Total() == 0 {
		t.Error("no stride accesses recorded; trace not exercising the oracle")
	}
}

// TestStrideHistsRejectsNonIndexer mirrors StrideHist.Run's contract.
func TestStrideHistsRejectsNonIndexer(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic for predictor without L2Index")
		}
	}()
	StrideHists(4, histTrace(1), core.NewLastValue(4))
}
