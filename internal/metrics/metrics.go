// Package metrics provides the measurement and reporting
// infrastructure shared by the experiments: weighted accuracy
// aggregation across benchmarks (the paper's reporting convention),
// Pareto fronts over (size, accuracy) points (Figure 11(b)), the
// stride-access histograms of Figures 6 and 9, and plain-text table
// rendering for the CLI and EXPERIMENTS.md.
package metrics

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/core"
)

// BenchResult is one benchmark's outcome under one predictor
// configuration.
type BenchResult struct {
	Benchmark string
	Result    core.Result
}

// WeightedMean returns the arithmetic mean of per-benchmark
// accuracies weighted by the number of predicted instructions — the
// paper's summary statistic ("the arithmetic mean over all SPECint
// benchmarks, weighted by the number of predicted instructions").
// Weighting by predictions makes the mean equal to total correct over
// total predictions.
func WeightedMean(results []BenchResult) float64 {
	var total core.Result
	for _, r := range results {
		total.Add(r.Result)
	}
	return total.Accuracy()
}

// Point is one predictor configuration plotted as size versus
// accuracy.
type Point struct {
	Name     string
	SizeBits int64
	Accuracy float64
}

// SizeKbit returns the point's size in Kbit (the paper's axis unit).
func (p Point) SizeKbit() float64 { return float64(p.SizeBits) / 1024 }

// Pareto returns the subset of points that are not dominated: a point
// survives if no other point has size <= its size and accuracy >= its
// accuracy (with at least one strict). The result is sorted by size.
// This is the construction of the paper's Figure 11(b).
func Pareto(points []Point) []Point {
	sorted := append([]Point(nil), points...)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].SizeBits != sorted[j].SizeBits {
			return sorted[i].SizeBits < sorted[j].SizeBits
		}
		return sorted[i].Accuracy > sorted[j].Accuracy
	})
	var front []Point
	best := -1.0
	for _, p := range sorted {
		if p.Accuracy > best {
			front = append(front, p)
			best = p.Accuracy
		}
	}
	return front
}

// Table is a simple rectangular table with a title, rendered
// monospace for terminal output and EXPERIMENTS.md.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// AddRow appends a row of already-formatted cells.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var sb strings.Builder
	if t.Title != "" {
		sb.WriteString(t.Title)
		sb.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], c)
		}
		sb.WriteByte('\n')
	}
	writeRow(t.Headers)
	rule := make([]string, len(t.Headers))
	for i := range rule {
		rule[i] = strings.Repeat("-", widths[i])
	}
	writeRow(rule)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return sb.String()
}

// Markdown renders the table as a GitHub-flavored Markdown table
// (title as a bold caption line when present).
func (t *Table) Markdown() string {
	var sb strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&sb, "**%s**\n\n", t.Title)
	}
	sb.WriteString("| " + strings.Join(t.Headers, " | ") + " |\n")
	sb.WriteString("|" + strings.Repeat("---|", len(t.Headers)) + "\n")
	for _, row := range t.Rows {
		sb.WriteString("| " + strings.Join(row, " | ") + " |\n")
	}
	return sb.String()
}

// CSV renders the table as comma-separated values (headers first).
func (t *Table) CSV() string {
	var sb strings.Builder
	sb.WriteString(strings.Join(t.Headers, ","))
	sb.WriteByte('\n')
	for _, row := range t.Rows {
		sb.WriteString(strings.Join(row, ","))
		sb.WriteByte('\n')
	}
	return sb.String()
}

// F formats an accuracy or fraction with 3 decimals.
func F(v float64) string { return fmt.Sprintf("%.3f", v) }

// Kbit formats a bit count in Kbit with one decimal.
func Kbit(bits int64) string { return fmt.Sprintf("%.1f", float64(bits)/1024) }
