package metrics

import (
	"repro/internal/core"
	"repro/internal/trace"
)

// Predictability computes the idealized predictability ceilings of a
// value trace in the sense of Sazeides & Smith ("The Predictability
// of Data Values", MICRO 1997) — the analysis the DFCM paper builds
// on. Each model is evaluated with unbounded, collision-free tables,
// so the numbers are upper bounds on what any finite predictor of
// that family can achieve:
//
//	Constant — next value equals the previous one (LVP ceiling)
//	Stride   — next value continues the last stride (stride ceiling)
//	Context  — next value is determined by the exact last-k values
//	           (FCM ceiling at order k)
//	DContext — next stride is determined by the exact last-k strides
//	           (DFCM ceiling at order k)
type Predictability struct {
	Events   uint64
	Constant float64
	Stride   float64
	Context  float64
	DContext float64
	Order    int
}

// ctxKey is an exact (not hashed) order-k history.
type ctxKey [4]uint32

type predictState struct {
	last     uint32
	stride   uint32
	seen     bool
	vhist    ctxKey
	shist    ctxKey
	depth    int
	vnext    map[ctxKey]uint32
	snext    map[ctxKey]uint32
	vcorrect uint64
	scorrect uint64
}

// MeasurePredictability runs the four oracles at the given history
// order (1..4) over the trace.
func MeasurePredictability(src trace.Source, order int) Predictability {
	if order < 1 || order > 4 {
		panic("metrics: predictability order out of range [1,4]")
	}
	per := make(map[uint32]*predictState)
	var p Predictability
	p.Order = order
	var constant, stride, context, dcontext uint64
	push := func(k *ctxKey, v uint32) {
		copy(k[:order], k[1:order])
		k[order-1] = v
	}
	for {
		e, more := src.Next()
		if !more {
			break
		}
		p.Events++
		s := per[e.PC]
		if s == nil {
			s = &predictState{
				vnext: make(map[ctxKey]uint32),
				snext: make(map[ctxKey]uint32),
			}
			per[e.PC] = s
		}
		if s.seen {
			if e.Value == s.last {
				constant++
			}
			if e.Value == s.last+s.stride {
				stride++
			}
		}
		newStride := e.Value - s.last
		// The value history is complete after `order` events, the
		// stride history one event later (the first event produces no
		// stride).
		if s.depth >= order {
			if v, ok := s.vnext[s.vhist]; ok && v == e.Value {
				context++
			}
			s.vnext[s.vhist] = e.Value
		}
		if s.depth >= order+1 {
			if d, ok := s.snext[s.shist]; ok && d == newStride {
				dcontext++
			}
			s.snext[s.shist] = newStride
		}
		push(&s.vhist, e.Value)
		if s.seen {
			push(&s.shist, newStride)
		}
		if s.depth <= order+1 {
			s.depth++
		}
		s.stride = newStride
		s.last = e.Value
		s.seen = true
	}
	if p.Events > 0 {
		n := float64(p.Events)
		p.Constant = float64(constant) / n
		p.Stride = float64(stride) / n
		p.Context = float64(context) / n
		p.DContext = float64(dcontext) / n
	}
	return p
}

// Ceiling returns the best of the four model ceilings.
func (p Predictability) Ceiling() float64 {
	best := p.Constant
	for _, v := range []float64{p.Stride, p.Context, p.DContext} {
		if v > best {
			best = v
		}
	}
	return best
}

// Realized compares a concrete predictor's accuracy against the
// trace's context ceiling: how much of the theoretically capturable
// signal the finite tables deliver.
func Realized(p core.Predictor, t trace.Trace, ceiling float64) float64 {
	if ceiling == 0 {
		return 0
	}
	return core.Run(p, trace.NewReader(t)).Accuracy() / ceiling
}
