package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Plot renders multi-series scatter/line data as an ASCII chart, so
// the experiment harness can regenerate the paper's *figures* (not
// just their underlying tables) in a terminal. X axes may be linear
// or logarithmic (the paper plots predictor size on a log axis).
type Plot struct {
	Title  string
	XLabel string
	YLabel string
	// LogX plots x on a log10 axis (all x must be > 0).
	LogX bool
	// Width and Height are the plot area in characters; zero values
	// select 72x20.
	Width, Height int

	series []series
}

type series struct {
	name   string
	marker byte
	xs, ys []float64
}

// seriesMarkers are assigned to series in order.
const seriesMarkers = "*o+x#@%&"

// AddSeries appends a named series of (x, y) points. Points need not
// be sorted. Panics if xs and ys differ in length.
func (p *Plot) AddSeries(name string, xs, ys []float64) {
	if len(xs) != len(ys) {
		panic("metrics: series length mismatch")
	}
	marker := seriesMarkers[len(p.series)%len(seriesMarkers)]
	p.series = append(p.series, series{
		name: name, marker: marker,
		xs: append([]float64(nil), xs...),
		ys: append([]float64(nil), ys...),
	})
}

// AddPoints appends a series from Point values (size vs accuracy).
func (p *Plot) AddPoints(name string, pts []Point) {
	xs := make([]float64, len(pts))
	ys := make([]float64, len(pts))
	for i, pt := range pts {
		xs[i] = pt.SizeKbit()
		ys[i] = pt.Accuracy
	}
	p.AddSeries(name, xs, ys)
}

func (p *Plot) dims() (w, h int) {
	w, h = p.Width, p.Height
	if w <= 0 {
		w = 72
	}
	if h <= 0 {
		h = 20
	}
	return w, h
}

// String renders the chart.
func (p *Plot) String() string {
	w, h := p.dims()
	xmin, xmax := math.Inf(1), math.Inf(-1)
	ymin, ymax := math.Inf(1), math.Inf(-1)
	tx := func(x float64) float64 {
		if p.LogX {
			return math.Log10(x)
		}
		return x
	}
	empty := true
	for _, s := range p.series {
		for i := range s.xs {
			empty = false
			x, y := tx(s.xs[i]), s.ys[i]
			xmin, xmax = math.Min(xmin, x), math.Max(xmax, x)
			ymin, ymax = math.Min(ymin, y), math.Max(ymax, y)
		}
	}
	var sb strings.Builder
	if p.Title != "" {
		sb.WriteString(p.Title)
		sb.WriteByte('\n')
	}
	if empty {
		sb.WriteString("(no data)\n")
		return sb.String()
	}
	if xmax == xmin {
		xmax = xmin + 1
	}
	if ymax == ymin {
		ymax = ymin + 1
	}
	// Pad the y range slightly so extremes are visible.
	pad := (ymax - ymin) * 0.05
	ymin, ymax = ymin-pad, ymax+pad

	grid := make([][]byte, h)
	for r := range grid {
		grid[r] = bytes(' ', w)
	}
	for _, s := range p.series {
		for i := range s.xs {
			col := int(math.Round((tx(s.xs[i]) - xmin) / (xmax - xmin) * float64(w-1)))
			row := int(math.Round((ymax - s.ys[i]) / (ymax - ymin) * float64(h-1)))
			if col >= 0 && col < w && row >= 0 && row < h {
				if grid[row][col] == ' ' || grid[row][col] == s.marker {
					grid[row][col] = s.marker
				} else {
					grid[row][col] = '?' // collision of different series
				}
			}
		}
	}

	yAxisW := 7
	for r, line := range grid {
		frac := float64(r) / float64(h-1)
		yval := ymax - frac*(ymax-ymin)
		fmt.Fprintf(&sb, "%*.3f |%s\n", yAxisW, yval, strings.TrimRight(string(line), " "))
	}
	sb.WriteString(strings.Repeat(" ", yAxisW+1))
	sb.WriteByte('+')
	sb.WriteString(strings.Repeat("-", w))
	sb.WriteByte('\n')
	// X tick labels: left, middle, right.
	left, mid, right := p.untx(xmin), p.untx((xmin+xmax)/2), p.untx(xmax)
	ticks := fmt.Sprintf("%-*s%*s", w/2, formatTick(left), w-w/2, formatTick(right))
	midPos := yAxisW + 2 + w/2 - len(formatTick(mid))/2
	sb.WriteString(strings.Repeat(" ", yAxisW+2))
	sb.WriteString(ticks)
	sb.WriteByte('\n')
	_ = midPos
	if p.XLabel != "" || p.YLabel != "" {
		fmt.Fprintf(&sb, "        x: %s", p.XLabel)
		if p.LogX {
			sb.WriteString(" (log scale)")
		}
		if p.YLabel != "" {
			fmt.Fprintf(&sb, "   y: %s", p.YLabel)
		}
		sb.WriteByte('\n')
	}
	// Legend.
	names := make([]string, len(p.series))
	for i, s := range p.series {
		names[i] = fmt.Sprintf("%c %s", s.marker, s.name)
	}
	sort.Strings(names)
	fmt.Fprintf(&sb, "        legend: %s\n", strings.Join(names, "   "))
	return sb.String()
}

func (p *Plot) untx(x float64) float64 {
	if p.LogX {
		return math.Pow(10, x)
	}
	return x
}

func formatTick(v float64) string {
	switch {
	case v != 0 && math.Abs(v) < 0.01:
		return fmt.Sprintf("%.1e", v)
	case math.Abs(v) >= 10000:
		return fmt.Sprintf("%.3g", v)
	default:
		return fmt.Sprintf("%.4g", v)
	}
}

func bytes(b byte, n int) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = b
	}
	return out
}
