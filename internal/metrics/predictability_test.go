package metrics

import (
	"testing"

	"repro/internal/core"
	"repro/internal/trace"
)

func seq(pc uint32, vals []uint32) trace.Trace {
	t := make(trace.Trace, len(vals))
	for i, v := range vals {
		t[i] = trace.Event{PC: pc, Value: v}
	}
	return t
}

func TestPredictabilityConstant(t *testing.T) {
	vals := make([]uint32, 100)
	for i := range vals {
		vals[i] = 7
	}
	p := MeasurePredictability(trace.NewReader(seq(0x40, vals)), 2)
	if p.Constant < 0.98 {
		t.Errorf("Constant = %.3f, want ~1", p.Constant)
	}
	if p.Stride < 0.98 {
		t.Errorf("Stride = %.3f (constants are stride-0)", p.Stride)
	}
	if p.Context < 0.9 {
		t.Errorf("Context = %.3f", p.Context)
	}
	if p.Ceiling() < 0.98 {
		t.Errorf("Ceiling = %.3f", p.Ceiling())
	}
}

func TestPredictabilityPureStride(t *testing.T) {
	vals := make([]uint32, 200)
	for i := range vals {
		vals[i] = uint32(i * 12)
	}
	p := MeasurePredictability(trace.NewReader(seq(0x40, vals)), 2)
	if p.Constant > 0.02 {
		t.Errorf("Constant = %.3f, want ~0", p.Constant)
	}
	if p.Stride < 0.97 {
		t.Errorf("Stride = %.3f, want ~1", p.Stride)
	}
	// A never-repeating value stream has no context predictability...
	if p.Context > 0.02 {
		t.Errorf("Context = %.3f, want ~0", p.Context)
	}
	// ...but its *differences* are constant: the differential context
	// oracle captures it. This asymmetry is the paper's whole point.
	if p.DContext < 0.95 {
		t.Errorf("DContext = %.3f, want ~1", p.DContext)
	}
}

func TestPredictabilityRepeatingPattern(t *testing.T) {
	pattern := []uint32{9, 2, 25, 7, 1, 130}
	vals := make([]uint32, 60*len(pattern))
	for i := range vals {
		vals[i] = pattern[i%len(pattern)]
	}
	p := MeasurePredictability(trace.NewReader(seq(0x40, vals)), 2)
	if p.Context < 0.95 || p.DContext < 0.95 {
		t.Errorf("Context = %.3f, DContext = %.3f, both should be ~1", p.Context, p.DContext)
	}
	if p.Constant > 0.05 || p.Stride > 0.05 {
		t.Errorf("Constant/Stride = %.3f/%.3f on an irregular pattern", p.Constant, p.Stride)
	}
}

func TestPredictabilityRandomNearZero(t *testing.T) {
	vals := make([]uint32, 3000)
	x := uint32(2463534242)
	for i := range vals {
		x ^= x << 13
		x ^= x >> 17
		x ^= x << 5
		vals[i] = x
	}
	p := MeasurePredictability(trace.NewReader(seq(0x40, vals)), 2)
	if p.Ceiling() > 0.02 {
		t.Errorf("Ceiling = %.3f on random values", p.Ceiling())
	}
}

func TestPredictabilityOrderMatters(t *testing.T) {
	// A pattern ambiguous at order 1 but exact at order 2:
	// 1 2 X 1 3 Y repeated — after "1" the next value depends on the
	// value before the 1.
	pattern := []uint32{1, 2, 50, 1, 3, 60}
	vals := make([]uint32, 80*len(pattern))
	for i := range vals {
		vals[i] = pattern[i%len(pattern)]
	}
	p1 := MeasurePredictability(trace.NewReader(seq(0x40, vals)), 1)
	p2 := MeasurePredictability(trace.NewReader(seq(0x40, vals)), 2)
	if p2.Context <= p1.Context {
		t.Errorf("order-2 context (%.3f) should beat order-1 (%.3f)", p2.Context, p1.Context)
	}
	if p2.Context < 0.95 {
		t.Errorf("order-2 context = %.3f, want ~1", p2.Context)
	}
}

func TestPredictabilityEmpty(t *testing.T) {
	p := MeasurePredictability(trace.NewReader(nil), 2)
	if p.Events != 0 || p.Ceiling() != 0 {
		t.Errorf("empty: %+v", p)
	}
}

func TestPredictabilityPanicsOnBadOrder(t *testing.T) {
	for _, order := range []int{0, 5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("order %d did not panic", order)
				}
			}()
			MeasurePredictability(trace.NewReader(nil), order)
		}()
	}
}

func TestRealized(t *testing.T) {
	vals := make([]uint32, 400)
	for i := range vals {
		vals[i] = uint32(i * 4)
	}
	tr := seq(0x40, vals)
	ceiling := MeasurePredictability(trace.NewReader(tr), 2).DContext
	frac := Realized(core.NewDFCM(8, 12), tr, ceiling)
	if frac < 0.95 {
		t.Errorf("DFCM realizes %.3f of the differential ceiling on a pure stride", frac)
	}
	if Realized(core.NewDFCM(8, 12), tr, 0) != 0 {
		t.Error("zero ceiling should yield 0")
	}
}
