package metrics

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/trace"
)

func TestWeightedMean(t *testing.T) {
	results := []BenchResult{
		{Benchmark: "a", Result: core.Result{Predictions: 100, Correct: 50}},
		{Benchmark: "b", Result: core.Result{Predictions: 300, Correct: 300}},
	}
	// total 350/400 = 0.875; an unweighted mean would be 0.75.
	if got := WeightedMean(results); got != 0.875 {
		t.Errorf("WeightedMean = %v, want 0.875", got)
	}
	if got := WeightedMean(nil); got != 0 {
		t.Errorf("empty WeightedMean = %v", got)
	}
}

func TestPareto(t *testing.T) {
	pts := []Point{
		{Name: "a", SizeBits: 100, Accuracy: 0.5},
		{Name: "b", SizeBits: 200, Accuracy: 0.4}, // dominated by a
		{Name: "c", SizeBits: 200, Accuracy: 0.6},
		{Name: "d", SizeBits: 300, Accuracy: 0.6}, // dominated by c
		{Name: "e", SizeBits: 400, Accuracy: 0.9},
		{Name: "f", SizeBits: 50, Accuracy: 0.2},
	}
	front := Pareto(pts)
	var names []string
	for _, p := range front {
		names = append(names, p.Name)
	}
	want := "f a c e"
	if got := strings.Join(names, " "); got != want {
		t.Errorf("front = %q, want %q", got, want)
	}
	// Front must be sorted by size and strictly increasing in accuracy.
	for i := 1; i < len(front); i++ {
		if front[i].SizeBits < front[i-1].SizeBits || front[i].Accuracy <= front[i-1].Accuracy {
			t.Errorf("front not monotone at %d", i)
		}
	}
}

func TestParetoTieOnSize(t *testing.T) {
	pts := []Point{
		{Name: "lo", SizeBits: 100, Accuracy: 0.3},
		{Name: "hi", SizeBits: 100, Accuracy: 0.7},
	}
	front := Pareto(pts)
	if len(front) != 1 || front[0].Name != "hi" {
		t.Errorf("front = %+v, want only hi", front)
	}
}

func TestPointSizeKbit(t *testing.T) {
	p := Point{SizeBits: 2048}
	if p.SizeKbit() != 2 {
		t.Errorf("SizeKbit = %v", p.SizeKbit())
	}
}

func TestTableRendering(t *testing.T) {
	tb := &Table{Title: "demo", Headers: []string{"name", "acc"}}
	tb.AddRow("fcm", "0.620")
	tb.AddRow("dfcm-long-name", "0.730")
	s := tb.String()
	if !strings.Contains(s, "demo") || !strings.Contains(s, "dfcm-long-name") {
		t.Errorf("render missing content:\n%s", s)
	}
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Errorf("got %d lines:\n%s", len(lines), s)
	}
	// Columns align: each data line must have the same prefix width.
	if len(lines[3]) < len("dfcm-long-name") {
		t.Error("column not padded")
	}
	csv := tb.CSV()
	if !strings.HasPrefix(csv, "name,acc\n") || !strings.Contains(csv, "fcm,0.620") {
		t.Errorf("csv:\n%s", csv)
	}
}

func TestFormatters(t *testing.T) {
	if F(0.12345) != "0.123" {
		t.Errorf("F = %q", F(0.12345))
	}
	if Kbit(2048) != "2.0" {
		t.Errorf("Kbit = %q", Kbit(2048))
	}
}

func TestStrideHistChargesStrideAccesses(t *testing.T) {
	// A single pure-stride instruction: under DFCM almost all charged
	// accesses should land on very few entries; under FCM they spread.
	mk := func(p core.Predictor) Histogram {
		h := NewStrideHist(p.(core.L2Indexer).L2Entries(), 10)
		// A length-64 repeated stride pattern, like the paper's
		// worked example: FCM scatters it over ~64 entries, DFCM
		// collapses it to a couple.
		var tr trace.Trace
		for i := 0; i < 4000; i++ {
			tr = append(tr, trace.Event{PC: 0x40, Value: uint32(i%64) * 4})
		}
		return h.Run(p, trace.NewReader(tr))
	}
	fcm := mk(core.NewFCM(8, 10))
	dfcm := mk(core.NewDFCM(8, 10))
	if fcm.Total() == 0 || dfcm.Total() == 0 {
		t.Fatal("no stride accesses recorded")
	}
	fcmSpread := fcm.EntriesOver(10)
	dfcmSpread := dfcm.EntriesOver(10)
	if dfcmSpread > 4 {
		t.Errorf("DFCM stride accesses spread over %d entries, want <= 4", dfcmSpread)
	}
	if fcmSpread <= dfcmSpread {
		t.Errorf("FCM spread (%d) should exceed DFCM spread (%d)", fcmSpread, dfcmSpread)
	}
}

func TestHistogramHelpers(t *testing.T) {
	g := Histogram{100, 50, 50, 10, 0, 0}
	if g.EntriesOver(10) != 3 {
		t.Errorf("EntriesOver(10) = %d, want 3", g.EntriesOver(10))
	}
	if g.EntriesOver(0) != 4 {
		t.Errorf("EntriesOver(0) = %d, want 4", g.EntriesOver(0))
	}
	if g.Total() != 210 {
		t.Errorf("Total = %d", g.Total())
	}
	s := g.Sample()
	if len(s) == 0 || s[0][0] != 0 || s[0][1] != 100 {
		t.Errorf("Sample = %v", s)
	}
	if last := s[len(s)-1]; last[0] != uint64(len(g)-1) {
		t.Errorf("Sample should end at the last rank, got %v", last)
	}
}

func TestStrideHistPanicsWithoutIndexer(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic for non-two-level predictor")
		}
	}()
	h := NewStrideHist(16, 4)
	h.Run(core.NewLastValue(4), trace.NewReader(trace.Trace{{PC: 0, Value: 0}}))
}

func TestTableMarkdown(t *testing.T) {
	tb := &Table{Title: "cap", Headers: []string{"a", "b"}}
	tb.AddRow("1", "2")
	md := tb.Markdown()
	for _, want := range []string{"**cap**", "| a | b |", "|---|---|", "| 1 | 2 |"} {
		if !strings.Contains(md, want) {
			t.Errorf("markdown missing %q:\n%s", want, md)
		}
	}
}
