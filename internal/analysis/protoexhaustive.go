package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// ProtoExhaustive cross-checks the VP1 protocol constant sets against
// every layer that must know them. Adding an op (or status) to
// proto.go is a three-sided contract, and PRs that wired ops 0x06 and
// 0x07 by hand showed how easy it is to miss a side. For each
// exported Op* constant in internal/serve:
//
//  1. (*Server).dispatch must have a case for it — otherwise the
//     server answers StatusBadRequest to an op the client encodes.
//  2. Some (*Client) method must reference it — otherwise nothing can
//     issue it and the constant is dead wire surface.
//  3. RequestSession (the router's session classifier) must map it,
//     or a package outside internal/serve (the cluster router) must
//     reference it explicitly — otherwise the proxy cannot route it.
//
// And every Status-typed constant must appear in Status.String, so
// logs never print a bare number. Checks 1/2/3/4 each anchor on their
// function (dispatch, Client methods, RequestSession, String) and are
// skipped when the anchor is absent, so partial fixtures stay
// checkable. Findings are reported at the constant's declaration —
// the place the new op was added.
var ProtoExhaustive = &Analyzer{
	ID:  "proto-exhaustive",
	Doc: "VP1 op/status constants must be wired through dispatch, client, session routing, and String",
	Run: runProtoExhaustive,
}

func runProtoExhaustive(pass *Pass) {
	if !strings.HasSuffix(pass.Pkg.Path, "/internal/serve") {
		return
	}
	info := pass.Pkg.Info

	ops := constGroup(pass.Pkg, func(obj types.Object) bool {
		_, isConst := obj.(*types.Const)
		return isConst && strings.HasPrefix(obj.Name(), "Op")
	})
	statuses := constGroup(pass.Pkg, func(obj types.Object) bool {
		c, isConst := obj.(*types.Const)
		if !isConst {
			return false
		}
		named, ok := c.Type().(*types.Named)
		return ok && named.Obj().Name() == "Status" && named.Obj().Pkg() == pass.Pkg.Types
	})
	if len(ops) == 0 && len(statuses) == 0 {
		return
	}

	if body := methodBody(pass.Pkg, "Server", "dispatch"); body != nil {
		referenced := refsIn(info, body)
		for obj, pos := range ops {
			if !referenced[obj] {
				pass.Reportf(pos, "op %s has no case in (*Server).dispatch — the server would answer it StatusBadRequest", obj.Name())
			}
		}
	}

	if clientBodies := methodBodies(pass.Pkg, "Client"); len(clientBodies) > 0 {
		referenced := make(map[types.Object]bool)
		for _, body := range clientBodies {
			for obj := range refsIn(info, body) {
				referenced[obj] = true
			}
		}
		for obj, pos := range ops {
			if !referenced[obj] {
				pass.Reportf(pos, "op %s is not referenced by any (*Client) method — nothing encodes or decodes it", obj.Name())
			}
		}
	}

	if body := funcBody(pass.Pkg, "RequestSession"); body != nil {
		referenced := refsIn(info, body)
		external := externalRefs(pass, ops)
		for obj, pos := range ops {
			if !referenced[obj] && !external[obj] {
				pass.Reportf(pos, "op %s is not classified by RequestSession and no forwarding package references it — the router cannot route it", obj.Name())
			}
		}
	}

	if body := methodBody(pass.Pkg, "Status", "String"); body != nil {
		referenced := refsIn(info, body)
		for obj, pos := range statuses {
			if !referenced[obj] {
				pass.Reportf(pos, "status %s is missing from Status.String — it would log as a bare number", obj.Name())
			}
		}
	}
}

// constGroup collects the package-level constants matching keep,
// mapped to their declaration positions.
func constGroup(pkg *Package, keep func(types.Object) bool) map[types.Object]token.Pos {
	out := make(map[types.Object]token.Pos)
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			gd, ok := d.(*ast.GenDecl)
			if !ok || gd.Tok != token.CONST {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, name := range vs.Names {
					if obj := pkg.Info.Defs[name]; obj != nil && keep(obj) {
						out[obj] = name.Pos()
					}
				}
			}
		}
	}
	return out
}

// refsIn collects every object referenced by identifiers inside node.
func refsIn(info *types.Info, node ast.Node) map[types.Object]bool {
	out := make(map[types.Object]bool)
	ast.Inspect(node, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := info.Uses[id]; obj != nil {
				out[obj] = true
			}
		}
		return true
	})
	return out
}

// externalRefs reports which of the given constants are referenced by
// any other package in the run — e.g. the cluster router comparing an
// op it forwards specially.
func externalRefs(pass *Pass, consts map[types.Object]token.Pos) map[types.Object]bool {
	out := make(map[types.Object]bool)
	for _, other := range pass.All {
		if other == pass.Pkg {
			continue
		}
		for _, obj := range other.Info.Uses {
			if _, ok := consts[obj]; ok {
				out[obj] = true
			}
		}
	}
	return out
}

// methodBody finds the body of recvType's method, or nil.
func methodBody(pkg *Package, recvType, method string) *ast.BlockStmt {
	var body *ast.BlockStmt
	methodsNamed(pkg, map[string]bool{method: true}, func(decl *ast.FuncDecl, rt string) {
		if rt == recvType {
			body = decl.Body
		}
	})
	return body
}

// methodBodies collects every method body declared on recvType.
func methodBodies(pkg *Package, recvType string) []*ast.BlockStmt {
	var bodies []*ast.BlockStmt
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			decl, ok := d.(*ast.FuncDecl)
			if !ok || decl.Recv == nil || decl.Body == nil {
				continue
			}
			if recvTypeName(decl) == recvType {
				bodies = append(bodies, decl.Body)
			}
		}
	}
	return bodies
}

// funcBody finds the body of a package-level function, or nil.
func funcBody(pkg *Package, name string) *ast.BlockStmt {
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			decl, ok := d.(*ast.FuncDecl)
			if ok && decl.Recv == nil && decl.Name.Name == name && decl.Body != nil {
				return decl.Body
			}
		}
	}
	return nil
}
