package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// ProtoBounds guards the untrusted-bytes decode paths against
// attacker-controlled allocation: a frame, payload or snapshot section
// carries a length field, and the decoder must validate that length
// against what actually arrived (or against a maximum-size bound)
// before allocating storage sized by it. Otherwise a 12-byte request
// claiming 2^32 events allocates gigabytes before the truncation is
// noticed.
//
// The rule covers the packages that parse bytes from outside the
// process: internal/serve (the VP1 wire protocol, including the
// RestoreSession request decoder), internal/snapshot (checkpoint
// files, which may arrive from an untrusted disk or a SnapshotSession
// peer) and internal/cluster (the router proxies the same untrusted
// frames and decodes backend responses). It inspects every
// function named readFrame or decode*/Decode*: each make() whose size
// is not a compile-time constant must be preceded, in the same
// function, by an if-statement that compares the size variable
// (directly or inside a larger expression) against something — the
// length-vs-payload or length-vs-bound guard.
var ProtoBounds = &Analyzer{
	ID:  "proto-bounds",
	Doc: "decode paths must length-check before allocating attacker-sized buffers",
	Run: runProtoBounds,
}

func protoBoundsScope(path string) bool {
	return strings.HasSuffix(path, "/internal/serve") ||
		strings.HasSuffix(path, "/internal/snapshot") ||
		strings.HasSuffix(path, "/internal/cluster")
}

func runProtoBounds(pass *Pass) {
	if !protoBoundsScope(pass.Pkg.Path) {
		return
	}
	for _, f := range pass.Pkg.Files {
		for _, d := range f.Decls {
			decl, ok := d.(*ast.FuncDecl)
			if !ok || decl.Body == nil {
				continue
			}
			name := decl.Name.Name
			if name == "readFrame" || strings.HasPrefix(name, "decode") || strings.HasPrefix(name, "Decode") {
				checkDecodeFunc(pass, decl)
			}
		}
	}
}

func checkDecodeFunc(pass *Pass, decl *ast.FuncDecl) {
	info := pass.Pkg.Info

	// guarded maps each object to the position of the earliest
	// if-condition comparing it; a make() at a later position whose
	// size mentions the object is considered bounds-checked.
	guarded := make(map[types.Object]token.Pos)
	recordGuards := func(cond ast.Expr) {
		ast.Inspect(cond, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok {
				return true
			}
			switch be.Op {
			case token.LSS, token.GTR, token.LEQ, token.GEQ, token.EQL, token.NEQ:
				for _, side := range []ast.Expr{be.X, be.Y} {
					ast.Inspect(side, func(m ast.Node) bool {
						if id, ok := m.(*ast.Ident); ok {
							if obj := info.Uses[id]; obj != nil {
								if _, seen := guarded[obj]; !seen {
									guarded[obj] = cond.Pos()
								}
							}
						}
						return true
					})
				}
			}
			return true
		})
	}

	ast.Inspect(decl.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.IfStmt:
			recordGuards(x.Cond)
		case *ast.CallExpr:
			if _, name := calleeName(info, x); name != "make" || len(x.Args) < 2 {
				return true
			}
			size := x.Args[1]
			if tv, ok := info.Types[size]; ok && tv.Value != nil {
				return true // constant size
			}
			if !sizeGuarded(info, size, guarded, x.Pos()) {
				pass.Reportf(x.Pos(), "%s allocates %s without a prior length check on its size",
					decl.Name.Name, types.ExprString(x))
			}
		}
		return true
	})
}

// sizeGuarded reports whether any identifier contributing to the size
// expression was compared in an if-condition earlier in the function.
func sizeGuarded(info *types.Info, size ast.Expr, guarded map[types.Object]token.Pos, at token.Pos) bool {
	ok := false
	ast.Inspect(size, func(n ast.Node) bool {
		if id, isIdent := n.(*ast.Ident); isIdent {
			if obj := info.Uses[id]; obj != nil {
				if pos, seen := guarded[obj]; seen && pos < at {
					ok = true
				}
			}
		}
		return true
	})
	return ok
}
