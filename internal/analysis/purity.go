package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// PredictPurity enforces the core contract that Predict is a pure
// table lookup: predicting must never train or otherwise mutate
// predictor state, because replay equivalence (offline run vs. served
// PredictBatch/UpdateBatch) depends on Predict being repeatable.
// internal/core/purity_test.go probes the same property dynamically
// on sampled traces; this rule proves it for every code path.
//
// Inside any method named Predict or PredictConfident in
// internal/core the rule flags writes to storage reachable from the
// receiver: assignments through receiver fields, map entries or slice
// elements (including via local aliases like e := &p.l1[i]), append/
// copy/delete/clear on receiver-reachable state, and calls to
// mutating methods (Update, Reset, Flush, Score) on receiver-rooted
// values.
//
// Delayed is the one documented exception: its Predict drains the
// pending-update queue (DESIGN.md), so the Delayed receiver is
// allowlisted.
var PredictPurity = &Analyzer{
	ID:  "predict-purity",
	Doc: "Predict methods in internal/core must not mutate predictor state",
	Run: runPredictPurity,
}

// predictPurityExempt lists receiver types whose Predict is
// documented to mutate (the pipeline-delay model applies queued
// updates at prediction time).
var predictPurityExempt = map[string]bool{"Delayed": true}

var mutatorMethods = map[string]bool{
	"Update": true, "Reset": true, "Flush": true, "Score": true,
}

func runPredictPurity(pass *Pass) {
	if !strings.HasSuffix(pass.Pkg.Path, "/internal/core") {
		return
	}
	want := map[string]bool{"Predict": true, "PredictConfident": true}
	methodsNamed(pass.Pkg, want, func(decl *ast.FuncDecl, recvType string) {
		if predictPurityExempt[recvType] {
			return
		}
		checkPredictBody(pass, decl)
	})
}

func checkPredictBody(pass *Pass, decl *ast.FuncDecl) {
	recv := recvObject(pass.Pkg.Info, decl)
	if recv == nil {
		return // no receiver name — nothing reachable
	}
	info := pass.Pkg.Info

	// tainted holds objects that alias receiver-reachable storage:
	// the receiver itself plus locals bound to pointers, slices or
	// maps derived from it (e := &p.l1[i], t := p.table, ...).
	tainted := map[types.Object]bool{recv: true}

	rootedInRecv := func(e ast.Expr) bool {
		id := rootIdent(e)
		return id != nil && tainted[info.Uses[id]]
	}

	// aliasing reports whether an expression yields a view into
	// receiver storage that a later write could go through.
	aliasing := func(e ast.Expr) bool {
		if !rootedInRecv(e) {
			return false
		}
		tv, ok := info.Types[e]
		if !ok {
			return false
		}
		switch tv.Type.Underlying().(type) {
		case *types.Pointer, *types.Slice, *types.Map, *types.Chan:
			return true
		}
		return false
	}

	ast.Inspect(decl.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range st.Lhs {
				if isBlank(lhs) {
					continue
				}
				// Rebinding a local identifier (even the receiver
				// variable itself) mutates nothing shared; a write
				// counts only when the path traverses receiver
				// storage (field, element, or dereference).
				if _, plain := ast.Unparen(lhs).(*ast.Ident); plain {
					continue
				}
				if rootedInRecv(lhs) {
					pass.Reportf(lhs.Pos(), "%s.%s writes receiver state via %s",
						recvTypeName(decl), decl.Name.Name, types.ExprString(lhs))
				}
			}
			// Propagate taint: locals initialized from receiver-
			// reachable references alias the same storage.
			if st.Tok == token.DEFINE {
				for i, lhs := range st.Lhs {
					if i >= len(st.Rhs) {
						break
					}
					if id, ok := lhs.(*ast.Ident); ok && aliasing(st.Rhs[i]) {
						if obj := info.Defs[id]; obj != nil {
							tainted[obj] = true
						}
					}
				}
			}
		case *ast.IncDecStmt:
			if rootedInRecv(st.X) {
				pass.Reportf(st.Pos(), "%s.%s mutates receiver state via %s%s",
					recvTypeName(decl), decl.Name.Name, types.ExprString(st.X), st.Tok)
			}
		case *ast.CallExpr:
			checkPredictCall(pass, decl, st, rootedInRecv)
		}
		return true
	})
}

func checkPredictCall(pass *Pass, decl *ast.FuncDecl, call *ast.CallExpr, rootedInRecv func(ast.Expr) bool) {
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		// Built-ins that mutate their first argument in place.
		switch fn.Name {
		case "append", "copy", "delete", "clear":
			if len(call.Args) > 0 && rootedInRecv(call.Args[0]) {
				pass.Reportf(call.Pos(), "%s.%s calls %s on receiver state",
					recvTypeName(decl), decl.Name.Name, fn.Name)
			}
		}
	case *ast.SelectorExpr:
		if mutatorMethods[fn.Sel.Name] && rootedInRecv(fn.X) {
			pass.Reportf(call.Pos(), "%s.%s calls mutating method %s on receiver state",
				recvTypeName(decl), decl.Name.Name, fn.Sel.Name)
		}
	}
}

func isBlank(e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && id.Name == "_"
}
