package analysis

import (
	"go/parser"
	"go/token"
	"runtime"
	"testing"
)

// TestLoadModuleAndMergedTreeClean type-checks the whole repository
// through the loader and asserts the merged tree carries zero
// findings — the same gate `make lint` enforces, run as a test so
// `go test ./...` catches regressions without the Makefile.
func TestLoadModuleAndMergedTreeClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the full module including stdlib deps")
	}
	pkgs, err := LoadModule("../..")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 10 {
		t.Fatalf("loaded only %d packages — loader is missing module trees", len(pkgs))
	}
	byPath := make(map[string]*Package)
	for _, p := range pkgs {
		byPath[p.Path] = p
		if p.Types == nil || p.Info == nil {
			t.Fatalf("%s: not type-checked", p.Path)
		}
	}
	for _, path := range []string{
		"repro", "repro/internal/core", "repro/internal/trace",
		"repro/internal/hash", "repro/internal/serve", "repro/cmd/vplint",
	} {
		if byPath[path] == nil {
			t.Errorf("package %s not loaded", path)
		}
	}
	for _, d := range Run(pkgs, All()) {
		t.Errorf("merged tree finding: %s", d)
	}
}

// TestBuildTagExclusion: the loader models the default build, so a
// file constrained to a tag the default build does not set (race,
// another OS) is skipped, while host-OS and go-version constraints
// keep the file in. The redeclaration case is what matters in tree:
// internal/leakcheck declares RaceEnabled once under race and once
// under !race, which type-checks only if exactly one side loads.
func TestBuildTagExclusion(t *testing.T) {
	parse := func(src string) bool {
		t.Helper()
		fset := token.NewFileSet()
		f, err := parser.ParseFile(fset, "x.go", src, parser.ParseComments)
		if err != nil {
			t.Fatal(err)
		}
		return fileExcludedByBuildTags(f)
	}
	cases := []struct {
		name, src string
		excluded  bool
	}{
		{"no constraint", "package x\n", false},
		{"race tag", "//go:build race\n\npackage x\n", true},
		{"negated race", "//go:build !race\n\npackage x\n", false},
		{"host os", "//go:build " + runtime.GOOS + "\n\npackage x\n", false},
		{"foreign os", "//go:build plan9\n\npackage x\n", true},
		{"go version", "//go:build go1.21\n\npackage x\n", false},
		{"or with satisfied arm", "//go:build race || " + runtime.GOOS + "\n\npackage x\n", false},
		{"build comment in doc", "// Package x does things.\n//go:build race\npackage x\n", true},
	}
	for _, tc := range cases {
		if got := parse(tc.src); got != tc.excluded {
			t.Errorf("%s: excluded = %v, want %v", tc.name, got, tc.excluded)
		}
	}
}
