package analysis

import (
	"testing"
)

// TestLoadModuleAndMergedTreeClean type-checks the whole repository
// through the loader and asserts the merged tree carries zero
// findings — the same gate `make lint` enforces, run as a test so
// `go test ./...` catches regressions without the Makefile.
func TestLoadModuleAndMergedTreeClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the full module including stdlib deps")
	}
	pkgs, err := LoadModule("../..")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 10 {
		t.Fatalf("loaded only %d packages — loader is missing module trees", len(pkgs))
	}
	byPath := make(map[string]*Package)
	for _, p := range pkgs {
		byPath[p.Path] = p
		if p.Types == nil || p.Info == nil {
			t.Fatalf("%s: not type-checked", p.Path)
		}
	}
	for _, path := range []string{
		"repro", "repro/internal/core", "repro/internal/trace",
		"repro/internal/hash", "repro/internal/serve", "repro/cmd/vplint",
	} {
		if byPath[path] == nil {
			t.Errorf("package %s not loaded", path)
		}
	}
	for _, d := range Run(pkgs, All()) {
		t.Errorf("merged tree finding: %s", d)
	}
}
