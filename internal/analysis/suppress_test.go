package analysis

import (
	"strings"
	"testing"
)

// TestSuppressionPlacement: an ignore directive silences its own line
// and the line below, nothing else.
func TestSuppressionPlacement(t *testing.T) {
	src := `package core

import "time"

func a() int64 { return time.Now().UnixNano() } //lint:ignore determinism test inline

func b() int64 {
	//lint:ignore determinism test line-above
	return time.Now().UnixNano()
}

func c() int64 {
	//lint:ignore determinism test too far away

	return time.Now().UnixNano()
}

func d() int64 { return time.Now().UnixNano() }
`
	pkg, err := CheckSource("repro/internal/core", "sup.go", src)
	if err != nil {
		t.Fatal(err)
	}
	diags := Run([]*Package{pkg}, []*Analyzer{Determinism})
	if len(diags) != 2 {
		t.Fatalf("got %d findings, want 2 (c and d): %v", len(diags), diags)
	}
	if diags[0].Pos.Line != 15 || diags[1].Pos.Line != 18 {
		t.Errorf("findings at lines %d,%d; want 15,18", diags[0].Pos.Line, diags[1].Pos.Line)
	}
}

// TestSuppressionRuleList: comma-separated rule IDs all apply; other
// rules stay live.
func TestSuppressionRuleList(t *testing.T) {
	src := `package core

import (
	"math/rand"
	"time"
)

func a() int64 {
	//lint:ignore determinism,predict-purity test multi-rule
	return time.Now().UnixNano()
}

func b() int {
	//lint:ignore predict-purity test wrong rule
	return rand.Intn(6)
}
`
	pkg, err := CheckSource("repro/internal/core", "sup.go", src)
	if err != nil {
		t.Fatal(err)
	}
	diags := Run([]*Package{pkg}, []*Analyzer{Determinism})
	if len(diags) != 1 || !strings.Contains(diags[0].Message, "rand.Intn") {
		t.Fatalf("got %v, want only the rand.Intn finding", diags)
	}
}

// TestMalformedDirectiveReported: a directive without a reason is
// itself a finding — suppressions must be auditable.
func TestMalformedDirectiveReported(t *testing.T) {
	src := `package core

func a() {
	//lint:ignore determinism
	_ = 0
}
`
	pkg, err := CheckSource("repro/internal/core", "sup.go", src)
	if err != nil {
		t.Fatal(err)
	}
	diags := Run([]*Package{pkg}, All())
	if len(diags) != 1 || diags[0].Rule != "lint-directive" {
		t.Fatalf("got %v, want one lint-directive finding", diags)
	}
}
