// Seeded-violation fixture for the hot-path-alloc analyzer (hash
// scope). Loaded with import path "repro/internal/hash".
package hash

import "fmt"

type F struct{ n uint }

func (f *F) Update(h, v uint64) uint64 {
	s := fmt.Sprintf("%d", h) // want hot-path-alloc
	_ = s
	return (h << 1) ^ v
}

// Name is cold: fmt allowed.
func (f *F) Name() string { return fmt.Sprintf("f-%d", f.n) }

func Fold(v uint64, n uint) uint64 {
	defer noteFold() // want hot-path-alloc
	return v & Mask(n)
}

func Mask(n uint) uint64 {
	if n >= 64 {
		return ^uint64(0)
	}
	return (uint64(1) << n) - 1
}

func noteFold() {}
