// Seeded-violation fixture for the proto-bounds analyzer in its
// third scope: the cluster routing tier, which proxies the same
// untrusted VP1 frames the server parses and additionally decodes
// backend responses (a compromised or confused backend must not be
// able to make the router allocate unbounded buffers). Loaded with
// import path "repro/internal/cluster".
package cluster

import (
	"encoding/binary"
	"io"
)

// readFrame trusts the length word from the peer — the exact bug the
// rule exists for, in the router's own frame loop.
func readFrame(r io.Reader) ([]byte, error) {
	var hdr [8]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[4:])
	payload := make([]byte, n) // want proto-bounds
	_, err := io.ReadFull(r, payload)
	return payload, err
}

// decodeBackendResp sizes a value slice from a backend-controlled
// count without checking it against the payload that arrived.
func decodeBackendResp(p []byte) []uint32 {
	n := binary.BigEndian.Uint32(p)
	out := make([]uint32, n) // want proto-bounds
	for i := range out {
		out[i] = binary.BigEndian.Uint32(p[4+4*i:])
	}
	return out
}

// DecodeRestoreBlob bounds the claimed size first — compliant.
func DecodeRestoreBlob(p []byte, maxBlob int) ([]byte, error) {
	if len(p) < 8 {
		return nil, io.ErrUnexpectedEOF
	}
	n := binary.BigEndian.Uint32(p[4:])
	if int(n) > maxBlob || int(n) > len(p)-8 {
		return nil, io.ErrUnexpectedEOF
	}
	blob := make([]byte, n)
	copy(blob, p[8:8+n])
	return blob, nil
}

// forward is not a decode path; sizes derived from in-memory state
// are out of scope.
func forward(payload []byte) []byte {
	buf := make([]byte, 8+len(payload))
	copy(buf[8:], payload)
	return buf
}
