// Seeded-violation fixture for the hot-path-alloc analyzer (cluster
// scope). Loaded with import path "repro/internal/cluster": the rule
// lints the Router.forward method — the proxy's per-frame backend
// round trip — and nothing else in the package.
package cluster

import "fmt"

type Router struct {
	addrs []string
}

// forward is the per-frame proxy hot path: in scope.
func (r *Router) forward(addr string, op byte, payload []byte) ([]byte, error) {
	if len(r.addrs) == 0 {
		return nil, fmt.Errorf("forward %#x to %s: no backends", op, addr) // want hot-path-alloc
	}
	defer fmt.Println(addr) // want hot-path-alloc
	return payload, nil
}

// dispatch holds a per-session read lock for the duration of the
// forward, so its defer is legitimate: out of scope.
func (r *Router) dispatch(op byte, payload []byte) []byte {
	defer fmt.Println(op)
	resp, err := r.forward("backend", op, payload)
	if err != nil {
		return nil
	}
	return resp
}
