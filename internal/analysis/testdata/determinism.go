// Seeded-violation fixture for the determinism analyzer. Loaded with
// import path "repro/internal/core".
package core

import (
	"math/rand"
	"sort"
	"time"
)

func stamp() int64 { return time.Now().UnixNano() } // want determinism

func roll() int { return rand.Intn(6) } // want determinism

// seeded constructs an explicit source — allowed.
func seeded() int {
	r := rand.New(rand.NewSource(42))
	return r.Intn(6)
}

// keys accumulates in map order — the classic nondeterministic output.
func keys(m map[uint32]int) []uint32 {
	var out []uint32
	for k := range m {
		out = append(out, k) // want determinism
	}
	return out
}

// keysSorted does the same but suppresses with a reason because the
// caller-visible order is restored by the sort.
func keysSorted(m map[uint32]int) []uint32 {
	var out []uint32
	for k := range m {
		//lint:ignore determinism order restored by the sort below
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// count folds commutatively — order-insensitive, allowed.
func count(m map[uint32]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}

// invert writes map entries keyed by the iterated values —
// order-insensitive, allowed.
func invert(m map[uint32]uint32) map[uint32]uint32 {
	out := make(map[uint32]uint32, len(m))
	for k, v := range m {
		out[v] = k
	}
	return out
}

// fill writes slice elements positioned by map iteration order — the
// slice contents end up randomly ordered.
func fill(m map[int]uint32) []uint32 {
	out := make([]uint32, len(m))
	i := 0
	for _, v := range m {
		out[i] = v // want determinism
		i++
	}
	return out
}

// publish streams values in map order.
func publish(m map[uint32]int, ch chan<- uint32) {
	for k := range m {
		ch <- k // want determinism
	}
}
