// Seeded-violation fixture for the snapshot-symmetry analyzer. The
// rule anchors on the AppendState/RestoreState method names, so the
// import path does not matter; findings land on the method name of the
// offending side.
package core

import (
	"encoding/binary"
	"errors"
)

var errState = errors.New("bad state")

// good round-trips both fields in the same layout order: clock byte,
// then the table.
type good struct {
	clock uint8
	table []uint32
}

func (g *good) AppendState(b []byte) []byte {
	b = append(b, g.clock)
	for _, v := range g.table {
		b = binary.BigEndian.AppendUint32(b, v)
	}
	return b
}

func (g *good) RestoreState(data []byte) error {
	if len(data) < 1 {
		return errState
	}
	g.clock = data[0]
	rows := data[1:]
	if len(rows) != 4*len(g.table) {
		return errState
	}
	for i := range g.table {
		g.table[i] = binary.BigEndian.Uint32(rows[4*i:])
	}
	return nil
}

// lossy serializes miss but never restores it: a restored lossy
// silently drops the count.
type lossy struct {
	hits uint32
	miss uint32
}

func (l *lossy) AppendState(b []byte) []byte {
	b = binary.BigEndian.AppendUint32(b, l.hits)
	return binary.BigEndian.AppendUint32(b, l.miss)
}

func (l *lossy) RestoreState(data []byte) error { // want snapshot-symmetry
	if len(data) != 8 {
		return errState
	}
	l.hits = binary.BigEndian.Uint32(data)
	return nil
}

// invent restores a field no snapshot carries: the decode reads bytes
// that belong to nothing.
type invent struct {
	hits  uint32
	extra uint32
}

func (v *invent) AppendState(b []byte) []byte {
	return binary.BigEndian.AppendUint32(b, v.hits)
}

func (v *invent) RestoreState(data []byte) error { // want snapshot-symmetry
	if len(data) != 8 {
		return errState
	}
	v.hits = binary.BigEndian.Uint32(data)
	v.extra = binary.BigEndian.Uint32(data[4:])
	return nil
}

// swapped restores the two fields in the opposite of the append
// layout: each decodes the other's bytes.
type swapped struct {
	a uint32
	b uint32
}

func (s *swapped) AppendState(buf []byte) []byte {
	buf = binary.BigEndian.AppendUint32(buf, s.a)
	return binary.BigEndian.AppendUint32(buf, s.b)
}

func (s *swapped) RestoreState(data []byte) error { // want snapshot-symmetry
	if len(data) != 8 {
		return errState
	}
	s.b = binary.BigEndian.Uint32(data)
	s.a = binary.BigEndian.Uint32(data[4:])
	return nil
}

// orphan captures state nothing can ever resume.
type orphan struct{ n uint32 }

func (o *orphan) AppendState(b []byte) []byte { // want snapshot-symmetry
	return binary.BigEndian.AppendUint32(b, o.n)
}

// quiet proves the escape hatch: side is derived at restore time, not
// carried in the stream.
type quiet struct {
	n    uint32
	side uint32
}

func (q *quiet) AppendState(b []byte) []byte {
	return binary.BigEndian.AppendUint32(b, q.n)
}

//lint:ignore snapshot-symmetry fixture: side is recomputed, not serialized
func (q *quiet) RestoreState(data []byte) error {
	if len(data) != 4 {
		return errState
	}
	q.n = binary.BigEndian.Uint32(data)
	q.side = q.n * 2
	return nil
}
