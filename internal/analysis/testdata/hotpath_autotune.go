// Seeded-violation fixture for the hot-path-alloc analyzer (autotune
// scope). Loaded with import path "repro/internal/autotune": the rule
// lints the mirror-enqueue path — the Tuner's Mirror and sampled
// methods, which run inline on every shard goroutine once per
// training batch — and nothing else in the package.
package autotune

import "fmt"

type event struct {
	pc, value uint32
}

type tunerBatch struct {
	session, seq uint64
	events       []event
}

// Tuner mimics the real mailbox shape closely enough to exercise the
// rule: a bounded channel the hot path feeds without blocking.
type Tuner struct {
	seed uint64
	rate float64
	mail chan *tunerBatch
	shed uint64
}

// Mirror is the tap entry point: in scope by name.
func (t *Tuner) Mirror(session, seq uint64, events []event) {
	if !t.sampled(session, seq) {
		return
	}
	defer fmt.Println(session) // want hot-path-alloc
	b := &tunerBatch{session: session, seq: seq}
	b.events = append(b.events, events...)
	select {
	case t.mail <- b:
	default:
		go func() { t.shed++ }() // want hot-path-alloc
		x := any(seq)            // want hot-path-alloc
		_ = x
	}
}

// sampled is the per-batch admission hash: in scope by name.
func (t *Tuner) sampled(session, seq uint64) bool {
	x := t.seed ^ session*0x9e3779b97f4a7c15 ^ seq
	x ^= x >> 33
	if t.rate >= 1 {
		fmt.Printf("admit %d\n", session) // want hot-path-alloc
	}
	//lint:ignore hot-path-alloc fixture: debug build only
	_ = fmt.Sprintf("%d", seq)
	return float64(x>>11)/(1<<53) < t.rate
}

// Status is a cold admin path: out of scope, fmt is fine here.
func (t *Tuner) Status() string {
	return fmt.Sprintf("shed=%d", t.shed)
}

// Mirror on an unrelated receiver is still in scope — the rule keys
// on the method name, not the receiver type, because anything named
// Mirror in this package is tap-shaped by convention.
type auxTap struct{}

func (auxTap) Mirror(n int) {
	s := fmt.Sprint(n) // want hot-path-alloc
	_ = s
}
