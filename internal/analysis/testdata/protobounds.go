// Seeded-violation fixture for the proto-bounds analyzer. Loaded with
// import path "repro/internal/serve".
package serve

import "encoding/binary"

// decodeBad allocates whatever the wire claims — the exact bug the
// rule exists for.
func decodeBad(p []byte) []uint32 {
	n := binary.BigEndian.Uint32(p)
	return make([]uint32, n) // want proto-bounds
}

// decodeGood validates the claimed count against the bytes that
// actually arrived before allocating.
func decodeGood(p []byte) []uint32 {
	if len(p) < 4 {
		return nil
	}
	n := binary.BigEndian.Uint32(p)
	body := p[4:]
	if uint64(len(body)) != 4*uint64(n) {
		return nil
	}
	out := make([]uint32, n)
	for i := range out {
		out[i] = binary.BigEndian.Uint32(body[4*i:])
	}
	return out
}

// readFrame bounds the size against a max-frame limit — also fine.
func readFrame(p []byte, maxFrame int) []byte {
	n := binary.BigEndian.Uint32(p)
	if n > uint32(maxFrame) {
		return nil
	}
	return make([]byte, n)
}

// decodeLate checks only after allocating — still a violation.
func decodeLate(p []byte) []uint32 {
	n := binary.BigEndian.Uint32(p)
	out := make([]uint32, n) // want proto-bounds
	if uint64(len(p)) < uint64(n) {
		return nil
	}
	return out
}

// decodeFixedSize uses a constant allocation — out of scope.
func decodeFixedSize(p []byte) []byte {
	return make([]byte, 8)
}

// encodeAnything is not a decode path; derived sizes are fine here.
func encodeAnything(vals []uint32) []byte {
	return make([]byte, 4*len(vals))
}

// decodeTrusted documents why its size needs no guard.
func decodeTrusted(p []byte) []byte {
	n := binary.BigEndian.Uint32(p)
	//lint:ignore proto-bounds fixture: size comes from an already-validated header
	return make([]byte, n)
}
