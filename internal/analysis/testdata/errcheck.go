// Seeded-violation fixture for the error-discipline analyzer. Loaded
// with import path "repro/cmd/fixture".
package main

import (
	"fmt"
	"os"
	"strings"
)

func step() error { return nil }

func pair() (int, error) { return 0, nil }

func main() {
	step()   // want error-discipline
	pair()   // want error-discipline
	_ = step()
	f, err := os.Create("x")
	if err != nil {
		return
	}
	defer f.Close() // deferred cleanup: exempt
	f.Close()       // want error-discipline
	fmt.Println("done")               // fmt print family: exempt
	fmt.Fprintf(os.Stderr, "done\n")  // fmt print family: exempt
	var b strings.Builder
	b.WriteString("in-memory") // builder writes cannot fail: exempt
	_ = b.String()
	//lint:ignore error-discipline fixture: failure already handled by retry loop
	step()
}
