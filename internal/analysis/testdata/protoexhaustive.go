// Seeded-violation fixture for the proto-exhaustive analyzer. Loaded
// with import path "repro/internal/serve" — the package that owns the
// VP1 constants. Each seeded constant is missing from exactly one
// layer; findings land on the constant's declaration.
package serve

// Status is the fixture's response status type.
type Status uint8

const (
	StatusOK  Status = 0
	StatusErr Status = 1 // want proto-exhaustive
)

const (
	OpPing  = 0x01
	OpLoad  = 0x02 // want proto-exhaustive
	OpDrop  = 0x03 // want proto-exhaustive
	OpStats = 0x04 // want proto-exhaustive
	//lint:ignore proto-exhaustive fixture: retired wire op, deliberately unwired
	OpLegacy = 0x05
)

// Server dispatches ops; OpLoad has no case.
type Server struct{}

func (s *Server) dispatch(op byte) Status {
	switch op {
	case OpPing, OpDrop, OpStats:
		return StatusOK
	}
	return StatusErr
}

// Client encodes ops; nothing issues OpDrop.
type Client struct{}

func (c *Client) Ping() byte  { return OpPing }
func (c *Client) Load() byte  { return OpLoad }
func (c *Client) Stats() byte { return OpStats }

// RequestSession classifies ops for routing; OpStats is unmapped and
// no other package in the run references it.
func RequestSession(op byte) bool {
	switch op {
	case OpPing, OpLoad, OpDrop:
		return true
	}
	return false
}

// String covers StatusOK only; StatusErr would log as a bare number.
func (s Status) String() string {
	if s == StatusOK {
		return "ok"
	}
	return "?"
}
