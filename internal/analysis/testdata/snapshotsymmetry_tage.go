// Seeded-violation fixture for the snapshot-symmetry analyzer over
// TAGE-shaped state: base table, tagged SoA arrays, the global
// history ring, and derived folded-history registers that must be
// recomputed — never serialized. Each violation below is a warm-start
// divergence the real core.TAGE layout (last, bstride, tags, strides,
// conf, ubits, ring, tick) was designed to avoid.
package core

import (
	"encoding/binary"
	"errors"
)

var errTageState = errors.New("bad tage state")

// vtageSnap round-trips every serialized field in layout order; the
// folded registers are derived from the ring, recomputed by a helper
// after the stream is consumed, so neither method touches them
// directly and no escape hatch is needed.
type vtageSnap struct {
	last []uint32
	tags []uint16
	ring []uint8
	tick uint64
	fold []uint32
}

func (p *vtageSnap) AppendState(b []byte) []byte {
	for _, v := range p.last {
		b = binary.BigEndian.AppendUint32(b, v)
	}
	for _, v := range p.tags {
		b = binary.BigEndian.AppendUint16(b, v)
	}
	b = append(b, p.ring...)
	return binary.BigEndian.AppendUint64(b, p.tick)
}

func (p *vtageSnap) RestoreState(data []byte) error {
	if len(data) != 4*len(p.last)+2*len(p.tags)+len(p.ring)+8 {
		return errTageState
	}
	for i := range p.last {
		p.last[i] = binary.BigEndian.Uint32(data[4*i:])
	}
	data = data[4*len(p.last):]
	for i := range p.tags {
		p.tags[i] = binary.BigEndian.Uint16(data[2*i:])
	}
	data = data[2*len(p.tags):]
	copy(p.ring, data)
	p.tick = binary.BigEndian.Uint64(data[len(p.ring):])
	p.rebuildFolds()
	return nil
}

func (p *vtageSnap) rebuildFolds() {
	for t := range p.fold {
		p.fold[t] = 0
		for i, v := range p.ring {
			p.fold[t] ^= uint32(v) << (uint(i) % (uint(t) + 4))
		}
	}
}

// vtageRingless serializes the history ring but never restores it: a
// warm-started predictor computes every folded index from a zeroed
// history and silently diverges from the session it resumed.
type vtageRingless struct {
	last []uint32
	ring []uint8
}

func (p *vtageRingless) AppendState(b []byte) []byte {
	for _, v := range p.last {
		b = binary.BigEndian.AppendUint32(b, v)
	}
	return append(b, p.ring...)
}

func (p *vtageRingless) RestoreState(data []byte) error { // want snapshot-symmetry
	if len(data) < 4*len(p.last) {
		return errTageState
	}
	for i := range p.last {
		p.last[i] = binary.BigEndian.Uint32(data[4*i:])
	}
	return nil
}

// vtageSwapped decodes the tagged arrays in the opposite of the
// append layout: every tag entry lands in a stride slot and vice
// versa.
type vtageSwapped struct {
	tags    []uint16
	strides []uint16
}

func (p *vtageSwapped) AppendState(b []byte) []byte {
	for _, v := range p.tags {
		b = binary.BigEndian.AppendUint16(b, v)
	}
	for _, v := range p.strides {
		b = binary.BigEndian.AppendUint16(b, v)
	}
	return b
}

func (p *vtageSwapped) RestoreState(data []byte) error { // want snapshot-symmetry
	if len(data) != 2*len(p.strides)+2*len(p.tags) {
		return errTageState
	}
	for i := range p.strides {
		p.strides[i] = binary.BigEndian.Uint16(data[2*i:])
	}
	data = data[2*len(p.strides):]
	for i := range p.tags {
		p.tags[i] = binary.BigEndian.Uint16(data[2*i:])
	}
	return nil
}

// vtageFoldCarrier serializes the derived folded registers: capture
// works, but the restored folds go stale the moment the ring layout
// changes, so the stream carries bytes RestoreState never consumes.
type vtageFoldCarrier struct {
	ring []uint8
	fold []uint32
}

func (p *vtageFoldCarrier) AppendState(b []byte) []byte {
	b = append(b, p.ring...)
	for _, v := range p.fold {
		b = binary.BigEndian.AppendUint32(b, v)
	}
	return b
}

func (p *vtageFoldCarrier) RestoreState(data []byte) error { // want snapshot-symmetry
	if len(data) < len(p.ring) {
		return errTageState
	}
	copy(p.ring, data)
	return nil
}

// vtageOrphanCapture captures tagged state nothing can ever resume.
type vtageOrphanCapture struct {
	ubits []uint8
}

func (p *vtageOrphanCapture) AppendState(b []byte) []byte { // want snapshot-symmetry
	return append(b, p.ubits...)
}

// vtageInline proves the escape hatch for derived state recomputed in
// the restore body itself rather than a helper.
type vtageInline struct {
	ring []uint8
	pos  uint32
}

func (p *vtageInline) AppendState(b []byte) []byte {
	return append(b, p.ring...)
}

//lint:ignore snapshot-symmetry fixture: pos is derived from the ring, not serialized
func (p *vtageInline) RestoreState(data []byte) error {
	if len(data) != len(p.ring) {
		return errTageState
	}
	copy(p.ring, data)
	p.pos = uint32(len(p.ring) - 1)
	return nil
}
