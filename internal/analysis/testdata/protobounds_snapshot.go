// Seeded-violation fixture for the proto-bounds analyzer in its
// second scope: the snapshot decoders. Loaded with import path
// "repro/internal/snapshot".
package snapshot

import (
	"encoding/binary"
	"io"
)

// DecodeBad trusts a section header straight off the disk — the
// hostile-checkpoint bug the rule exists for.
func DecodeBad(r io.Reader) ([]byte, error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	length := binary.BigEndian.Uint32(hdr[1:])
	payload := make([]byte, length) // want proto-bounds
	_, err := io.ReadFull(r, payload)
	return payload, err
}

// DecodeGood bounds the claimed section length before allocating.
func DecodeGood(r io.Reader, maxSection int) ([]byte, error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	length := binary.BigEndian.Uint32(hdr[1:])
	if uint64(length) > uint64(maxSection) {
		return nil, io.ErrUnexpectedEOF
	}
	payload := make([]byte, length)
	_, err := io.ReadFull(r, payload)
	return payload, err
}

// decodeSection is the unexported spelling — same obligation.
func decodeSection(p []byte) []uint64 {
	n := binary.BigEndian.Uint32(p)
	return make([]uint64, n) // want proto-bounds
}

// decodeHeader allocates a fixed-size header — out of scope.
func decodeHeader() []byte {
	return make([]byte, 8)
}

// EncodeSection is not a decode path; sizes derived from in-memory
// state are fine.
func EncodeSection(state []byte) []byte {
	return make([]byte, 5+len(state))
}
