// Seeded-violation fixture for the hot-path-alloc analyzer (engine
// scope). Loaded with import path "repro/internal/engine": the rule
// lints every top-level replay* function — the sweep engine's inner
// loops — and nothing else in the package.
package engine

import "fmt"

type ev struct{ pc, v uint32 }

type pred interface {
	Predict(pc uint32) uint32
	Update(pc, v uint32)
}

func replayChunks(ps []pred, events []ev) {
	for _, e := range events {
		for _, p := range ps {
			defer fmt.Println(e.pc) // want hot-path-alloc
			if p.Predict(e.pc) == e.v {
				_ = any(e) // want hot-path-alloc
			}
			p.Update(e.pc, e.v)
		}
	}
}

func replayOne(p pred, events []ev) {
	for _, e := range events {
		s := fmt.Sprintf("%d", e.pc) // want hot-path-alloc
		_ = s
		p.Update(e.pc, e.v)
	}
}

// buildUnits is outside the replay hot path: fmt is fine here.
func buildUnits(names []string) []string {
	out := make([]string, 0, len(names))
	for i, n := range names {
		out = append(out, fmt.Sprintf("%d:%s", i, n))
	}
	return out
}

// replaySuppressed demonstrates suppression on the hot path.
func replaySuppressed(p pred, events []ev) {
	for _, e := range events {
		//lint:ignore hot-path-alloc fixture: debug build only
		s := fmt.Sprintf("%d", e.pc)
		_ = s
		p.Update(e.pc, e.v)
	}
}
