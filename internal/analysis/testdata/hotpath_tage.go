// Seeded-violation fixture for the hot-path-alloc analyzer over a
// TAGE-shaped predictor: tagged SoA tables, folded-history registers,
// and the per-event method set the real core.TAGE exposes. Loaded with
// import path "repro/internal/core" — the analyzer anchors on the
// Predict/Update/RunBatch names, so every tagged-table loop below is
// in scope while the cold helpers (Name, rebuildFolds) are not.
package core

import "fmt"

type taggedEvent struct {
	PC, Value uint32
}

type vtageHot struct {
	last    []uint32
	tags    []uint16
	strides []uint32
	fold    []uint32
	ring    []uint8
	tick    uint64
}

func (p *vtageHot) provider(pc uint32) int {
	for t := len(p.fold) - 1; t >= 0; t-- {
		if p.tags[(uint32(t)<<4)|(pc&15)] == uint16(pc^p.fold[t]) {
			return t
		}
	}
	return -1
}

func (p *vtageHot) Predict(pc uint32) uint32 {
	t := p.provider(pc)
	if t < 0 {
		return p.last[pc&15]
	}
	s := fmt.Sprintf("provider t%d", t) // want hot-path-alloc
	_ = s
	return p.last[pc&15] + p.strides[(uint32(t)<<4)|(pc&15)]
}

func (p *vtageHot) Update(pc, v uint32) {
	defer func() { p.tick++ }() // want hot-path-alloc
	if p.tick&((1<<18)-1) == 0 {
		go p.age() // want hot-path-alloc
	}
	stride := v - p.last[pc&15]
	x := any(stride) // want hot-path-alloc
	_ = x
	p.ring[p.tick&uint64(len(p.ring)-1)] = uint8(stride)
	p.last[pc&15] = v
}

// RunBatch is the concrete-type chunk loop — in scope like the
// per-event methods it fuses.
func (p *vtageHot) RunBatch(batch []taggedEvent) uint64 {
	var correct uint64
	for i := range batch {
		e := &batch[i]
		fmt.Println(e.PC) // want hot-path-alloc
		if p.Predict(e.PC) == e.Value {
			correct++
		}
		p.Update(e.PC, e.Value)
	}
	return correct
}

// age is a cold maintenance sweep: out of scope by name.
func (p *vtageHot) age() {
	for i := range p.tags {
		p.tags[i] &= 0x7FFF
	}
}

// rebuildFolds recomputes the derived registers from the ring; it runs
// once per restore, not per event, so fmt here is fine.
func (p *vtageHot) rebuildFolds() {
	for t := range p.fold {
		p.fold[t] = 0
		for i := range p.ring {
			p.fold[t] ^= uint32(p.ring[i]) << (uint(i) % (uint(t) + 4))
		}
	}
	_ = fmt.Sprintf("rebuilt %d folds", len(p.fold))
}

func (p *vtageHot) Name() string { return fmt.Sprintf("vtage-hot-%d", len(p.tags)) }

// suppressed proves the escape hatch inside a tagged-table loop.
type vtageQuiet struct {
	last []uint32
}

func (p *vtageQuiet) Predict(pc uint32) uint32 {
	//lint:ignore hot-path-alloc fixture: debug build only
	s := fmt.Sprintf("%d", pc)
	_ = s
	return p.last[pc&7]
}
