// Seeded-violation fixture for the lock-discipline analyzer. The rule
// anchors on the guardedby annotations, not the import path, so the
// same file reports identically wherever it is loaded.
package serve

import "sync"

type counter struct {
	mu  sync.RWMutex
	n   int            // vplint:guardedby mu
	m   map[string]int // vplint:guardedby mu
	bad int            // vplint:guardedby missing — not a mutex sibling: // want lock-discipline
}

// goodRead holds the read lock for the read.
func (c *counter) goodRead() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.n
}

// goodWrite holds the exclusive lock for the write.
func (c *counter) goodWrite() {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
}

// earlyReturn releases on the bail-out path; the fallthrough keeps the
// lock, so the write is fine.
func (c *counter) earlyReturn(stop bool) {
	c.mu.Lock()
	if stop {
		c.mu.Unlock()
		return
	}
	c.n++
	c.mu.Unlock()
}

// badRead touches the guarded field with no lock at all.
func (c *counter) badRead() int {
	return c.n // want lock-discipline
}

// badWrite writes it with no lock at all.
func (c *counter) badWrite() {
	c.n = 1 // want lock-discipline
}

// rlockWrite writes under only the read lock.
func (c *counter) rlockWrite() {
	c.mu.RLock()
	defer c.mu.RUnlock()
	c.n++ // want lock-discipline
}

// mapWriteUnderRLock writes through the guarded map header under the
// read lock.
func (c *counter) mapWriteUnderRLock(k string) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	c.m[k] = 1 // want lock-discipline
}

// closureLeak captures the guarded field in a function literal — a
// fresh scope where the enclosing critical section does not count.
func (c *counter) closureLeak() func() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return func() int { return c.n } // want lock-discipline
}

// newCounter builds the value locally: not yet shared, exempt.
func newCounter() *counter {
	c := &counter{m: make(map[string]int)}
	c.n = 1
	return c
}

// suppressed proves the escape hatch works.
func (c *counter) suppressed() int {
	//lint:ignore lock-discipline fixture: read is benign by construction
	return c.n
}
