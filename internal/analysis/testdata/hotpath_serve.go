// Seeded-violation fixture for the hot-path-alloc analyzer (serve
// scope). Loaded with import path "repro/internal/serve": the rule
// lints the per-frame codec — top-level append*/decode* functions
// plus readFrameInto, growPayload, writeFrame and ReadRequestFrameBuf
// — and nothing else in the package.
package serve

import (
	"errors"
	"fmt"
	"io"
)

var errShort = errors.New("short payload")

// appendValueResp is a frame encoder: in scope by the append* prefix.
func appendValueResp(b []byte, values []uint32) []byte {
	defer fmt.Println(len(values)) // want hot-path-alloc
	for _, v := range values {
		b = append(b, byte(v))
	}
	return b
}

// decodeValueReq is a frame decoder: in scope by the decode* prefix.
func decodeValueReq(p []byte) (uint32, error) {
	if len(p) < 4 {
		return 0, fmt.Errorf("decode: %d bytes: %w", len(p), errShort) // want hot-path-alloc
	}
	return uint32(p[0]), nil
}

// readFrameInto is the buffer-reusing frame reader: in scope by name.
func readFrameInto(r io.Reader, buf []byte) ([]byte, error) {
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, fmt.Errorf("read: %w", err) // want hot-path-alloc
	}
	return buf, nil
}

// writeFrame is in scope by name.
func writeFrame(w io.Writer, payload []byte) error {
	x := any(payload) // want hot-path-alloc
	_ = x
	_, err := w.Write(payload)
	return err
}

// encodeValueResp is the cold allocating wrapper: out of scope, fmt
// is fine here.
func encodeValueResp(values []uint32) []byte {
	b := appendValueResp(make([]byte, 0, len(values)), values)
	fmt.Println(len(b))
	return b
}

// decodeSuppressed demonstrates suppression on the codec path.
func decodeSuppressed(p []byte) (uint32, error) {
	//lint:ignore hot-path-alloc fixture: debug build only
	s := fmt.Sprintf("%d", len(p))
	_ = s
	return 0, nil
}
