// Seeded-violation fixture for the hot-path-alloc analyzer (core
// scope). Loaded with import path "repro/internal/core".
package core

import (
	"fmt"
	"reflect"
)

type Hot struct {
	t    []uint32
	name string
}

func (h *Hot) Predict(pc uint32) uint32 {
	s := fmt.Sprintf("pc=%d", pc) // want hot-path-alloc
	_ = s
	return h.t[pc&7]
}

func (h *Hot) Update(pc, v uint32) {
	defer func() { _ = recover() }() // want hot-path-alloc
	x := any(v)                      // want hot-path-alloc
	_ = x
	h.t[pc&7] = v
}

func (h *Hot) Score(pc, v uint32) bool {
	return reflect.DeepEqual(pc, v) // want hot-path-alloc
}

// RunBatch is the concrete-type chunk loop — in scope like the
// per-event methods it fuses.
func (h *Hot) RunBatch(batch []uint32) int {
	n := 0
	for _, v := range batch {
		fmt.Println(v) // want hot-path-alloc
		n += int(h.t[v&7])
	}
	return n
}

// Name is a cold path: fmt is fine here.
func (h *Hot) Name() string { return fmt.Sprintf("hot-%d", len(h.t)) }

// Logged demonstrates suppression on a hot path.
type Logged struct{ t []uint32 }

func (l *Logged) Predict(pc uint32) uint32 {
	//lint:ignore hot-path-alloc fixture: debug build only
	s := fmt.Sprintf("%d", pc)
	_ = s
	return l.t[0]
}
