// Seeded-violation fixture for the goroutine-lifecycle analyzer.
// Loaded with import path "repro/internal/serve" (in scope); the scope
// test reloads it elsewhere and expects silence.
package serve

import (
	"fmt"
	"sync"
)

type pool struct {
	wg   sync.WaitGroup
	quit chan struct{}
	jobs chan int
}

// run drains the mailbox until quit closes — joinable through the
// channels it observes.
func (p *pool) run() {
	for {
		select {
		case <-p.quit:
			return
		case job := <-p.jobs:
			_ = job
		}
	}
}

func (p *pool) start() {
	// Joinable: WaitGroup Done in the body.
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		work()
	}()

	// Joinable: same-package method body observes quit/jobs.
	go p.run()

	// Joinable: closes a done channel the caller can receive on.
	done := make(chan struct{})
	go func() {
		defer close(done)
		work()
	}()
	<-done

	// Fire-and-forget: nothing to join on.
	go work() // want goroutine-lifecycle

	go func() { // want goroutine-lifecycle
		work()
	}()

	// Out-of-package body: unprovable, must be wrapped.
	go fmt.Println("stats up") // want goroutine-lifecycle

	//lint:ignore goroutine-lifecycle fixture: process-lifetime by design
	go work()
}

func work() {}
