// Seeded-violation fixture for the predict-purity analyzer. Loaded by
// the tests with import path "repro/internal/core"; `// want <rule>`
// marks lines that must be flagged.
package core

// Bad mutates its tables while predicting — every write pattern the
// rule must catch.
type Bad struct {
	l1    []uint32
	seen  map[uint32]bool
	count int
}

func (p *Bad) Predict(pc uint32) uint32 {
	p.count++                // want predict-purity
	p.l1[pc&7] = pc          // want predict-purity
	p.seen[pc] = true        // want predict-purity
	e := &p.l1[pc&7]         // alias into receiver storage
	*e = 1                   // want predict-purity
	p.l1 = append(p.l1, pc)  // want predict-purity
	delete(p.seen, pc)       // want predict-purity
	return p.l1[0]
}

// comp stands in for a wrapped component predictor.
type comp struct{ last uint32 }

func (c *comp) Predict(pc uint32) uint32 { return c.last }
func (c *comp) Update(pc, v uint32)      { c.last = v }

// Wrap trains its component from Predict — the indirect mutation the
// rule must catch.
type Wrap struct{ c *comp }

func (w *Wrap) Predict(pc uint32) uint32 {
	w.c.Update(pc, 0) // want predict-purity
	return w.c.Predict(pc)
}

// Good is a pure two-level lookup: locals, aliased reads and
// component Predict calls are all fine, and Update may write freely.
type Good struct {
	l1 []uint32
	c  *comp
}

func (g *Good) Predict(pc uint32) uint32 {
	i := pc & 7
	e := &g.l1[i]
	return *e + g.c.Predict(pc)
}

func (g *Good) Update(pc, v uint32) { g.l1[pc&7] = v }

// Delayed mirrors core.Delayed: the one receiver type whose Predict
// is documented to drain pending updates.
type Delayed struct {
	q    []uint32
	head int
}

func (d *Delayed) Predict(pc uint32) uint32 {
	d.head++
	d.q = d.q[:0]
	return 0
}

// Cached shows the suppression escape hatch.
type Cached struct{ memo []uint32 }

func (c *Cached) Predict(pc uint32) uint32 {
	//lint:ignore predict-purity fixture: memo write is deterministic and documented
	c.memo[pc&1] = pc
	return c.memo[0]
}
