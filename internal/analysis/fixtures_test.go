package analysis

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"
)

// wantRe matches the fixture expectation marker: `// want <rule>`.
var wantRe = regexp.MustCompile(`// want ([a-z-]+)`)

type finding struct {
	line int
	rule string
}

// runFixture loads one testdata file under the given import path,
// runs a single analyzer through the full driver (so //lint:ignore
// filtering applies), and compares the surviving findings against the
// file's `// want <rule>` markers line by line.
func runFixture(t *testing.T, fixture, pkgPath string, a *Analyzer) {
	t.Helper()
	src, err := os.ReadFile(filepath.Join("testdata", fixture))
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := CheckSource(pkgPath, fixture, string(src))
	if err != nil {
		t.Fatalf("fixture %s does not type-check: %v", fixture, err)
	}

	want := make(map[finding]bool)
	for i, line := range strings.Split(string(src), "\n") {
		for _, m := range wantRe.FindAllStringSubmatch(line, -1) {
			want[finding{line: i + 1, rule: m[1]}] = true
		}
	}
	if len(want) == 0 {
		t.Fatalf("fixture %s seeds no violations — want markers missing", fixture)
	}

	got := make(map[finding]bool)
	for _, d := range Run([]*Package{pkg}, []*Analyzer{a}) {
		got[finding{line: d.Pos.Line, rule: d.Rule}] = true
	}

	for f := range want {
		if !got[f] {
			t.Errorf("%s:%d: expected %s finding not reported", fixture, f.line, f.rule)
		}
	}
	for f := range got {
		if !want[f] {
			t.Errorf("%s:%d: unexpected %s finding", fixture, f.line, f.rule)
		}
	}
}

func TestPredictPurityFixture(t *testing.T) {
	runFixture(t, "purity.go", "repro/internal/core", PredictPurity)
}

func TestDeterminismFixture(t *testing.T) {
	runFixture(t, "determinism.go", "repro/internal/core", Determinism)
}

func TestHotPathAllocCoreFixture(t *testing.T) {
	runFixture(t, "hotpath.go", "repro/internal/core", HotPathAlloc)
}

func TestHotPathAllocHashFixture(t *testing.T) {
	runFixture(t, "hotpath_hash.go", "repro/internal/hash", HotPathAlloc)
}

func TestHotPathAllocEngineFixture(t *testing.T) {
	runFixture(t, "hotpath_engine.go", "repro/internal/engine", HotPathAlloc)
}

func TestHotPathAllocServeFixture(t *testing.T) {
	runFixture(t, "hotpath_serve.go", "repro/internal/serve", HotPathAlloc)
}

func TestHotPathAllocClusterFixture(t *testing.T) {
	runFixture(t, "hotpath_cluster.go", "repro/internal/cluster", HotPathAlloc)
}

func TestHotPathAllocAutotuneFixture(t *testing.T) {
	runFixture(t, "hotpath_autotune.go", "repro/internal/autotune", HotPathAlloc)
}

func TestProtoBoundsFixture(t *testing.T) {
	runFixture(t, "protobounds.go", "repro/internal/serve", ProtoBounds)
}

func TestProtoBoundsSnapshotFixture(t *testing.T) {
	runFixture(t, "protobounds_snapshot.go", "repro/internal/snapshot", ProtoBounds)
}

func TestProtoBoundsClusterFixture(t *testing.T) {
	runFixture(t, "protobounds_cluster.go", "repro/internal/cluster", ProtoBounds)
}

func TestErrorDisciplineFixture(t *testing.T) {
	runFixture(t, "errcheck.go", "repro/cmd/fixture", ErrorDiscipline)
}

// TestErrorDisciplineClusterFixture: the same discipline binds the
// routing tier — the seeded cmd fixture must report identically under
// the internal/cluster import path.
func TestErrorDisciplineClusterFixture(t *testing.T) {
	runFixture(t, "errcheck.go", "repro/internal/cluster", ErrorDiscipline)
}

func TestLockDisciplineFixture(t *testing.T) {
	runFixture(t, "lockdiscipline.go", "repro/internal/serve", LockDiscipline)
}

// TestLockDisciplineFixtureAnywhere: the rule anchors on the guardedby
// annotations, not a package list — the same file must report
// identically under any import path.
func TestLockDisciplineFixtureAnywhere(t *testing.T) {
	runFixture(t, "lockdiscipline.go", "repro/internal/elsewhere", LockDiscipline)
}

// TestLockDisciplineFixtureAutotune: the tuner's guardedby-annotated
// close flag rides the same annotation-driven rule.
func TestLockDisciplineFixtureAutotune(t *testing.T) {
	runFixture(t, "lockdiscipline.go", "repro/internal/autotune", LockDiscipline)
}

func TestGoroutineLifecycleFixture(t *testing.T) {
	runFixture(t, "goroutine.go", "repro/internal/serve", GoroutineLifecycle)
}

// TestGoroutineLifecycleFixtureCmd: the cmd harnesses are in scope too
// — that is where loose auxiliary listeners have historically lived.
func TestGoroutineLifecycleFixtureCmd(t *testing.T) {
	runFixture(t, "goroutine.go", "repro/cmd/vpserve", GoroutineLifecycle)
}

// TestGoroutineLifecycleFixtureAutotune: the tuner loop spawns
// goroutines and lives in the serving tier — same rule, same findings.
func TestGoroutineLifecycleFixtureAutotune(t *testing.T) {
	runFixture(t, "goroutine.go", "repro/internal/autotune", GoroutineLifecycle)
}

func TestProtoExhaustiveFixture(t *testing.T) {
	runFixture(t, "protoexhaustive.go", "repro/internal/serve", ProtoExhaustive)
}

func TestSnapshotSymmetryFixture(t *testing.T) {
	runFixture(t, "snapshotsymmetry.go", "repro/internal/core", SnapshotSymmetry)
}

// TestSnapshotSymmetryFixtureAnywhere: like lock-discipline, the rule
// anchors on the method-name convention, not the import path.
func TestSnapshotSymmetryFixtureAnywhere(t *testing.T) {
	runFixture(t, "snapshotsymmetry.go", "repro/internal/elsewhere", SnapshotSymmetry)
}

// TestHotPathAllocTAGEFixture: the tagged predictor's per-event shape
// — provider walk, folded-history maintenance, aging sweep — under the
// same hot-path rules as the flat tables.
func TestHotPathAllocTAGEFixture(t *testing.T) {
	runFixture(t, "hotpath_tage.go", "repro/internal/core", HotPathAlloc)
}

// TestSnapshotSymmetryTAGEFixture seeds the TAGE-specific asymmetries:
// a dropped history ring, swapped tagged arrays, serialized derived
// folds, and an orphan capture — each a warm-start divergence the real
// layout avoids.
func TestSnapshotSymmetryTAGEFixture(t *testing.T) {
	runFixture(t, "snapshotsymmetry_tage.go", "repro/internal/core", SnapshotSymmetry)
}

// TestAnalyzersScopeToTheirPackages: the same violations outside the
// scoped packages must not be reported — the rules are invariants of
// specific layers, not global style.
func TestAnalyzersScopeToTheirPackages(t *testing.T) {
	cases := []struct {
		fixture string
		a       *Analyzer
	}{
		{"purity.go", PredictPurity},
		{"determinism.go", Determinism},
		{"hotpath.go", HotPathAlloc},
		{"hotpath_engine.go", HotPathAlloc},
		{"hotpath_serve.go", HotPathAlloc},
		{"hotpath_cluster.go", HotPathAlloc},
		{"hotpath_autotune.go", HotPathAlloc},
		{"protobounds.go", ProtoBounds},
		{"protobounds_snapshot.go", ProtoBounds},
		{"protobounds_cluster.go", ProtoBounds},
		{"errcheck.go", ErrorDiscipline},
		{"goroutine.go", GoroutineLifecycle},
		{"protoexhaustive.go", ProtoExhaustive},
	}
	for _, c := range cases {
		src, err := os.ReadFile(filepath.Join("testdata", c.fixture))
		if err != nil {
			t.Fatal(err)
		}
		pkg, err := CheckSource("repro/internal/elsewhere", c.fixture, string(src))
		if err != nil {
			t.Fatalf("%s: %v", c.fixture, err)
		}
		if diags := Run([]*Package{pkg}, []*Analyzer{c.a}); len(diags) != 0 {
			t.Errorf("%s: %s reported %d finding(s) outside its scope, e.g. %s",
				c.fixture, c.a.ID, len(diags), diags[0])
		}
	}
}

// TestRunOrdersAndFormatsDiagnostics: driver output is sorted by
// position and formatted file:line:col: rule: message.
func TestRunOrdersAndFormatsDiagnostics(t *testing.T) {
	src, err := os.ReadFile(filepath.Join("testdata", "errcheck.go"))
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := CheckSource("repro/cmd/fixture", "errcheck.go", string(src))
	if err != nil {
		t.Fatal(err)
	}
	diags := Run([]*Package{pkg}, All())
	if !sort.SliceIsSorted(diags, func(i, j int) bool { return diags[i].Pos.Line < diags[j].Pos.Line }) {
		t.Error("diagnostics not sorted by line")
	}
	for _, d := range diags {
		want := fmt.Sprintf("errcheck.go:%d:%d: %s: ", d.Pos.Line, d.Pos.Column, d.Rule)
		if !strings.HasPrefix(d.String(), want) {
			t.Errorf("diagnostic %q does not start with %q", d.String(), want)
		}
	}
}

func TestByID(t *testing.T) {
	all, err := ByID("")
	if err != nil || len(all) != len(All()) {
		t.Fatalf("ByID(\"\") = %d analyzers, err %v", len(all), err)
	}
	two, err := ByID("determinism, proto-bounds")
	if err != nil || len(two) != 2 || two[0].ID != "determinism" || two[1].ID != "proto-bounds" {
		t.Fatalf("ByID pair = %v, err %v", two, err)
	}
	if _, err := ByID("nope"); err == nil {
		t.Fatal("ByID(nope) succeeded")
	}
}
