package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// LockDiscipline enforces a guarded-by annotation convention on struct
// fields: a field declared with a trailing (or preceding) comment
//
//	// vplint:guardedby mu
//
// may only be read while the declaring struct's mu (a sync.Mutex or
// sync.RWMutex sibling field) is held — Lock or RLock — and may only
// be written under the exclusive Lock. The analyzer tracks lock state
// statement by statement through each function body:
//
//   - mu.Lock()/mu.RLock() acquire; mu.Unlock()/mu.RUnlock() release.
//   - defer mu.Unlock() holds the lock to the end of the scope.
//   - An Unlock inside a block that terminates (return, break,
//     continue, panic, os.Exit) releases only for the remainder of
//     that block — the early-return idiom
//     `mu.Lock(); if bad { mu.Unlock(); return }; field++`
//     keeps the lock on the fallthrough path.
//   - After an if/else or switch whose branches disagree, the lock
//     counts as held only if every non-terminating path holds it.
//   - Function literals are separate scopes: a goroutine or closure
//     body starts with no locks held, even mid-critical-section.
//   - Accesses to fields of a struct value created inside the same
//     function (constructor idiom) are exempt — the value is not yet
//     shared.
//
// The annotation lives where the invariant lives (the struct
// declaration), so the rule needs no package allowlist: any package
// that annotates a field gets the checking.
var LockDiscipline = &Analyzer{
	ID:  "lock-discipline",
	Doc: "fields annotated `vplint:guardedby mu` are only accessed with mu held (writes need the exclusive lock)",
	Run: runLockDiscipline,
}

const guardedByMarker = "vplint:guardedby"

// guardInfo is one annotated field: the lock sibling that guards it.
type guardInfo struct {
	lockName string
}

// collectGuards parses every struct type's field comments for
// guardedby annotations, validating that the named lock is a sibling
// field of type sync.Mutex or sync.RWMutex. Returns annotated field
// object → guard.
func collectGuards(pass *Pass) map[types.Object]guardInfo {
	guards := make(map[types.Object]guardInfo)
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			// Map sibling field name → type, to validate lock refs.
			fieldType := make(map[string]types.Type)
			for _, fld := range st.Fields.List {
				for _, name := range fld.Names {
					if obj := info.Defs[name]; obj != nil {
						fieldType[name.Name] = obj.Type()
					}
				}
			}
			for _, fld := range st.Fields.List {
				lock, pos, ok := guardAnnotation(fld)
				if !ok {
					continue
				}
				lt, declared := fieldType[lock]
				if !declared || !isMutexType(lt) {
					pass.Reportf(pos, "guardedby names %q, which is not a sync.Mutex/RWMutex sibling field", lock)
					continue
				}
				for _, name := range fld.Names {
					if obj := info.Defs[name]; obj != nil {
						guards[obj] = guardInfo{lockName: lock}
					}
				}
			}
			return true
		})
	}
	return guards
}

// guardAnnotation extracts the lock name from a field's line comment
// or doc comment. Reports the position for malformed-annotation
// diagnostics.
func guardAnnotation(fld *ast.Field) (lock string, pos token.Pos, ok bool) {
	for _, cg := range []*ast.CommentGroup{fld.Comment, fld.Doc} {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			text := strings.TrimPrefix(strings.TrimPrefix(c.Text, "//"), "/*")
			idx := strings.Index(text, guardedByMarker)
			if idx < 0 {
				continue
			}
			rest := strings.Fields(text[idx+len(guardedByMarker):])
			if len(rest) == 0 {
				return "", c.Pos(), true // malformed: no lock named
			}
			return rest[0], c.Pos(), true
		}
	}
	return "", token.NoPos, false
}

func isMutexType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

func runLockDiscipline(pass *Pass) {
	guards := collectGuards(pass)
	if len(guards) == 0 {
		return
	}
	for _, f := range pass.Pkg.Files {
		for _, d := range f.Decls {
			decl, ok := d.(*ast.FuncDecl)
			if !ok || decl.Body == nil {
				continue
			}
			lc := &lockChecker{pass: pass, guards: guards, locals: funcLocalRoots(pass.Pkg.Info, decl)}
			lc.walkBody(decl.Body, make(heldSet))
		}
	}
}

// funcLocalRoots collects objects declared in the function body
// itself (not parameters or the receiver): accesses rooted at these
// are constructor-style and exempt.
func funcLocalRoots(info *types.Info, decl *ast.FuncDecl) map[types.Object]bool {
	locals := make(map[types.Object]bool)
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := info.Defs[id]; obj != nil {
				if _, isVar := obj.(*types.Var); isVar {
					locals[obj] = true
				}
			}
		}
		return true
	})
	return locals
}

// lockKey names one lock instance: the variable whose field it is,
// plus the lock field's name. (&Server).mu on receiver s is
// {s, "mu"}.
type lockKey struct {
	root types.Object
	name string
}

const (
	heldRead  = 1 << iota // RLock
	heldWrite             // Lock
)

type heldSet map[lockKey]int

func (h heldSet) clone() heldSet {
	c := make(heldSet, len(h))
	for k, v := range h {
		c[k] = v
	}
	return c
}

// intersect keeps only locks held in both states, at the weaker mode.
func intersect(a, b heldSet) heldSet {
	out := make(heldSet)
	for k, va := range a {
		if vb, ok := b[k]; ok {
			m := va & vb
			if m == 0 {
				// One side holds read, the other write: both at
				// least exclude "unlocked", keep the read bit.
				m = heldRead
			}
			out[k] = m
		}
	}
	return out
}

type lockChecker struct {
	pass   *Pass
	guards map[types.Object]guardInfo
	locals map[types.Object]bool
	// deferred funclits found while walking; analyzed afterwards as
	// separate scopes.
	funcLits []*ast.FuncLit
}

// walkBody walks a statement list, threading the held-lock state, and
// then analyzes any function literals it encountered as fresh scopes.
func (lc *lockChecker) walkBody(body *ast.BlockStmt, held heldSet) {
	lc.walkStmt(body, held)
	for len(lc.funcLits) > 0 {
		lits := lc.funcLits
		lc.funcLits = nil
		for _, lit := range lits {
			lc.walkStmt(lit.Body, make(heldSet))
		}
	}
}

// walkStmt interprets one statement, mutating held in place, and
// reports whether the statement terminates the enclosing block.
func (lc *lockChecker) walkStmt(stmt ast.Stmt, held heldSet) (terminates bool) {
	switch s := stmt.(type) {
	case nil:
		return false
	case *ast.BlockStmt:
		term := false
		for _, st := range s.List {
			if lc.walkStmt(st, held) {
				term = true
			}
		}
		return term
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if key, op, ok := lc.lockOp(call); ok {
				lc.applyLockOp(held, key, op)
				return false
			}
			if isTerminatingCall(lc.pass.Pkg.Info, call) {
				lc.checkExpr(s.X, held, nil)
				return true
			}
		}
		lc.checkExpr(s.X, held, nil)
		return false
	case *ast.AssignStmt:
		for _, rhs := range s.Rhs {
			lc.checkExpr(rhs, held, nil)
		}
		for _, lhs := range s.Lhs {
			lc.checkWrite(lhs, held)
		}
		return false
	case *ast.IncDecStmt:
		lc.checkWrite(s.X, held)
		return false
	case *ast.DeclStmt:
		lc.checkExpr(s.Decl, held, nil)
		return false
	case *ast.SendStmt:
		lc.checkExpr(s.Chan, held, nil)
		lc.checkExpr(s.Value, held, nil)
		return false
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			lc.checkExpr(r, held, nil)
		}
		return true
	case *ast.BranchStmt:
		return s.Tok == token.BREAK || s.Tok == token.CONTINUE || s.Tok == token.GOTO
	case *ast.DeferStmt:
		if key, op, ok := lc.lockOp(s.Call); ok {
			// defer mu.Unlock() pins the lock to scope end: treat as
			// a no-op on the tracked state (it stays held). A
			// deferred Lock would be nonsense; ignore it too.
			_ = key
			_ = op
			return false
		}
		lc.checkExpr(s.Call, held, nil)
		return false
	case *ast.GoStmt:
		lc.checkExpr(s.Call, held, nil)
		return false
	case *ast.IfStmt:
		lc.walkStmt(s.Init, held)
		lc.checkExpr(s.Cond, held, nil)
		thenHeld := held.clone()
		thenTerm := lc.walkStmt(s.Body, thenHeld)
		if s.Else == nil {
			if !thenTerm {
				merge(held, intersect(held, thenHeld))
			}
			return false
		}
		elseHeld := held.clone()
		elseTerm := lc.walkStmt(s.Else, elseHeld)
		switch {
		case thenTerm && elseTerm:
			return true
		case thenTerm:
			merge(held, elseHeld)
		case elseTerm:
			merge(held, thenHeld)
		default:
			merge(held, intersect(thenHeld, elseHeld))
		}
		return false
	case *ast.ForStmt:
		lc.walkStmt(s.Init, held)
		lc.checkExpr(s.Cond, held, nil)
		bodyHeld := held.clone()
		lc.walkStmt(s.Body, bodyHeld)
		lc.walkStmt(s.Post, bodyHeld)
		merge(held, intersect(held, bodyHeld))
		return false
	case *ast.RangeStmt:
		lc.checkExpr(s.X, held, nil)
		bodyHeld := held.clone()
		lc.walkStmt(s.Body, bodyHeld)
		merge(held, intersect(held, bodyHeld))
		return false
	case *ast.SwitchStmt:
		lc.walkStmt(s.Init, held)
		lc.checkExpr(s.Tag, held, nil)
		lc.walkClauses(s.Body, held)
		return false
	case *ast.TypeSwitchStmt:
		lc.walkStmt(s.Init, held)
		lc.walkStmt(s.Assign, held)
		lc.walkClauses(s.Body, held)
		return false
	case *ast.SelectStmt:
		lc.walkClauses(s.Body, held)
		return false
	case *ast.LabeledStmt:
		return lc.walkStmt(s.Stmt, held)
	default:
		if stmt != nil {
			lc.checkExpr(stmt, held, nil)
		}
		return false
	}
}

// walkClauses interprets switch/select clause bodies as alternative
// branches: the state after the statement is the intersection of the
// entry state and every non-terminating clause's exit state.
func (lc *lockChecker) walkClauses(body *ast.BlockStmt, held heldSet) {
	result := held.clone()
	for _, cl := range body.List {
		var stmts []ast.Stmt
		clauseHeld := held.clone()
		switch c := cl.(type) {
		case *ast.CaseClause:
			for _, e := range c.List {
				lc.checkExpr(e, held, nil)
			}
			stmts = c.Body
		case *ast.CommClause:
			if c.Comm != nil {
				lc.walkStmt(c.Comm, clauseHeld)
			}
			stmts = c.Body
		}
		term := false
		for _, st := range stmts {
			if lc.walkStmt(st, clauseHeld) {
				term = true
			}
		}
		if !term {
			result = intersect(result, clauseHeld)
		}
	}
	replace(held, result)
}

func merge(dst, src heldSet) { replace(dst, src) }

func replace(dst, src heldSet) {
	for k := range dst {
		delete(dst, k)
	}
	for k, v := range src {
		dst[k] = v
	}
}

// lockOp recognizes x.mu.Lock()/RLock()/Unlock()/RUnlock() calls on a
// mutex-typed field and returns the lock's identity and operation.
func (lc *lockChecker) lockOp(call *ast.CallExpr) (lockKey, string, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return lockKey{}, "", false
	}
	op := sel.Sel.Name
	switch op {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return lockKey{}, "", false
	}
	lockSel, ok := ast.Unparen(sel.X).(*ast.SelectorExpr)
	if !ok {
		return lockKey{}, "", false
	}
	s, ok := lc.pass.Pkg.Info.Selections[lockSel]
	if !ok || s.Kind() != types.FieldVal || !isMutexType(s.Obj().Type()) {
		return lockKey{}, "", false
	}
	root := rootIdent(lockSel.X)
	if root == nil {
		return lockKey{}, "", false
	}
	obj := lc.pass.Pkg.Info.Uses[root]
	if obj == nil {
		obj = lc.pass.Pkg.Info.Defs[root]
	}
	if obj == nil {
		return lockKey{}, "", false
	}
	return lockKey{root: obj, name: lockSel.Sel.Name}, op, true
}

func (lc *lockChecker) applyLockOp(held heldSet, key lockKey, op string) {
	switch op {
	case "Lock":
		held[key] = heldWrite
	case "RLock":
		held[key] = heldRead
	case "Unlock", "RUnlock":
		delete(held, key)
	}
}

// checkWrite validates the write target, then its subexpressions
// (index expressions etc.) as reads.
func (lc *lockChecker) checkWrite(lhs ast.Expr, held heldSet) {
	if sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr); ok {
		lc.checkAccess(sel, held, true)
		lc.checkExpr(sel.X, held, nil)
		return
	}
	if idx, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok {
		// m[k] = v writes through the map/slice header: the header
		// field itself is read-accessed, the element written — the
		// guarded field is the header, so require the write lock.
		if sel, ok := ast.Unparen(idx.X).(*ast.SelectorExpr); ok {
			lc.checkAccess(sel, held, true)
			lc.checkExpr(sel.X, held, nil)
			lc.checkExpr(idx.Index, held, nil)
			return
		}
	}
	lc.checkExpr(lhs, held, nil)
}

// checkExpr walks an expression (or declaration) reporting guarded
// reads; function literals are queued for separate-scope analysis.
func (lc *lockChecker) checkExpr(n ast.Node, held heldSet, skip map[ast.Node]bool) {
	if n == nil {
		return
	}
	ast.Inspect(n, func(m ast.Node) bool {
		if skip != nil && skip[m] {
			return false
		}
		switch x := m.(type) {
		case *ast.FuncLit:
			lc.funcLits = append(lc.funcLits, x)
			return false
		case *ast.SelectorExpr:
			lc.checkAccess(x, held, false)
		}
		return true
	})
}

// checkAccess reports sel if it names a guarded field accessed
// without its lock (or written under only the read lock).
func (lc *lockChecker) checkAccess(sel *ast.SelectorExpr, held heldSet, isWrite bool) {
	info := lc.pass.Pkg.Info
	s, ok := info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return
	}
	guard, ok := lc.guards[s.Obj()]
	if !ok {
		return
	}
	root := rootIdent(sel.X)
	if root == nil {
		return
	}
	obj := info.Uses[root]
	if obj == nil {
		obj = info.Defs[root]
	}
	if obj == nil || lc.locals[obj] {
		return // constructor idiom: value not shared yet
	}
	mode := held[lockKey{root: obj, name: guard.lockName}]
	field := s.Obj().Name()
	switch {
	case mode == 0:
		verb := "read"
		if isWrite {
			verb = "write to"
		}
		lc.pass.Reportf(sel.Sel.Pos(), "%s of %s.%s without holding %s.%s (guardedby annotation)",
			verb, root.Name, field, root.Name, guard.lockName)
	case isWrite && mode&heldWrite == 0:
		lc.pass.Reportf(sel.Sel.Pos(), "write to %s.%s under %s.%s.RLock — writes need the exclusive Lock",
			root.Name, field, root.Name, guard.lockName)
	}
}

// isTerminatingCall recognizes calls that never return: panic and
// os.Exit (log.Fatal* also exits, but does not appear in the checked
// packages).
func isTerminatingCall(info *types.Info, call *ast.CallExpr) bool {
	pkg, name := calleeName(info, call)
	if pkg == "" && name == "panic" {
		return true
	}
	if pkg == "os" && name == "Exit" {
		return true
	}
	if pkg == "log" && strings.HasPrefix(name, "Fatal") {
		return true
	}
	return false
}
