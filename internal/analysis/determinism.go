package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// Determinism enforces bit-identical replay: the predictor core and
// the trace layer must produce the same output for the same input on
// every run, because the serve path's end-to-end equivalence test
// (offline replay == served replay) and the artifact verification in
// cmd/dfcmsim both depend on it.
//
// In internal/core and internal/trace the rule flags:
//
//   - wall-clock reads (time.Now, time.Since, time.Until) — replay
//     output must not depend on when it runs;
//   - math/rand used without an explicit seeded source (package-level
//     rand.Intn etc.; constructing rand.New(rand.NewSource(seed)) is
//     fine, as is calling methods on the resulting *rand.Rand);
//   - ranging over a map where the loop body emits or accumulates
//     order-sensitive output (appending to an outer slice, writing
//     to an io.Writer, sending on a channel). Iterate sorted keys
//     instead, or suppress with a reason when a later total sort
//     restores determinism.
var Determinism = &Analyzer{
	ID:  "determinism",
	Doc: "internal/core and internal/trace must be bit-identical across runs",
	Run: runDeterminism,
}

func determinismScope(path string) bool {
	return strings.HasSuffix(path, "/internal/core") || strings.HasSuffix(path, "/internal/trace")
}

// seededRandAllowed lists math/rand selectors that construct or name
// explicitly seeded generators rather than using the global source.
var seededRandAllowed = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true, // math/rand/v2 sources
	"Source": true, "Rand": true, "Zipf": true, // type names
}

var wallClockFuncs = map[string]bool{"Now": true, "Since": true, "Until": true}

func runDeterminism(pass *Pass) {
	if !determinismScope(pass.Pkg.Path) {
		return
	}
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.SelectorExpr:
				switch pkgOf(info, x) {
				case "time":
					if wallClockFuncs[x.Sel.Name] {
						pass.Reportf(x.Pos(), "wall-clock read time.%s: replay output must not depend on run time", x.Sel.Name)
					}
				case "math/rand", "math/rand/v2":
					if !seededRandAllowed[x.Sel.Name] {
						pass.Reportf(x.Pos(), "rand.%s uses the shared global source; construct rand.New(rand.NewSource(seed)) instead", x.Sel.Name)
					}
				}
			case *ast.RangeStmt:
				checkMapRange(pass, x)
			}
			return true
		})
	}
}

// checkMapRange flags map iteration whose body's effect depends on
// Go's randomized map iteration order.
func checkMapRange(pass *Pass, rng *ast.RangeStmt) {
	info := pass.Pkg.Info
	tv, ok := info.Types[rng.X]
	if !ok {
		return
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return
	}

	// Objects declared inside the range statement (key/value vars and
	// body locals): effects confined to them are order-insensitive.
	inner := make(map[types.Object]bool)
	for _, e := range []ast.Expr{rng.Key, rng.Value} {
		if id, ok := e.(*ast.Ident); ok && id != nil {
			if obj := info.Defs[id]; obj != nil {
				inner[obj] = true
			}
		}
	}
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := info.Defs[id]; obj != nil {
				inner[obj] = true
			}
		}
		return true
	})

	outer := func(e ast.Expr) bool {
		id := rootIdent(e)
		if id == nil {
			return true // conservative: unknown root counts as outer
		}
		obj := info.Uses[id]
		if obj == nil {
			obj = info.Defs[id]
		}
		return obj != nil && !inner[obj]
	}

	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.SendStmt:
			pass.Reportf(x.Pos(), "channel send inside map iteration publishes values in random order")
			return false
		case *ast.CallExpr:
			pkg, name := calleeName(info, x)
			if name == "append" && pkg == "" && len(x.Args) > 0 && outer(x.Args[0]) {
				pass.Reportf(x.Pos(), "append to %s inside map iteration accumulates in random order; iterate sorted keys", types.ExprString(x.Args[0]))
				return false
			}
			if strings.HasPrefix(name, "Print") || strings.HasPrefix(name, "Fprint") ||
				name == "Write" || name == "WriteString" || name == "WriteByte" {
				pass.Reportf(x.Pos(), "%s inside map iteration emits output in random order; iterate sorted keys", name)
				return false
			}
		case *ast.AssignStmt:
			for _, lhs := range x.Lhs {
				idx, ok := ast.Unparen(lhs).(*ast.IndexExpr)
				if !ok || !outer(idx) {
					continue
				}
				if tv, ok := info.Types[idx.X]; ok {
					if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
						continue // writing map entries is order-insensitive
					}
				}
				pass.Reportf(lhs.Pos(), "indexed write to %s inside map iteration orders elements randomly", types.ExprString(idx.X))
			}
		}
		return true
	})
}
