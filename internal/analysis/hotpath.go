package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// HotPathAlloc keeps the per-event hot path allocation-free. A
// predictor serving millions of events per second cannot afford fmt's
// reflection-driven formatting, reflect itself, interface boxing, or
// defer bookkeeping inside the functions that run once per trace
// event.
//
// Scope:
//
//   - internal/core: bodies of the per-event methods Predict,
//     PredictConfident, Update, Score and L2Index, plus the top-level
//     replay drivers Run and RunBatch;
//   - internal/hash: every Update method plus the Fold and Mask
//     helpers (they run once per event inside FCM/DFCM updates);
//   - internal/engine: every top-level function named replay* — the
//     sweep engine's inner loops, which feed every predictor
//     configuration from a single trace pass and must stay
//     allocation-free to hit the engine's ~0 allocs/op budget;
//   - internal/serve: the per-frame codec — every top-level append*
//     and decode* function plus readFrameInto, growPayload,
//     writeFrame and ReadRequestFrameBuf. These run once per request
//     frame on buffers the connection reuses; the serve batch path's
//     0 allocs/op budget dies the day one of them formats an error
//     with fmt;
//   - internal/cluster: the Router.forward method — the proxy's
//     per-frame backend round trip, same budget;
//   - internal/autotune: the mirror-enqueue path — the Tuner's Mirror
//     and sampled methods, which run inline on every shard goroutine
//     once per training batch and must shed, not allocate, when the
//     tuner falls behind.
//
// Cold paths — constructors, Name, SizeBits, Stats — may use fmt
// freely; they are out of scope by construction.
var HotPathAlloc = &Analyzer{
	ID:  "hot-path-alloc",
	Doc: "per-event predictor and hash paths must not use fmt/reflect, box interfaces, or defer",
	Run: runHotPathAlloc,
}

var coreHotMethods = map[string]bool{
	"Predict": true, "PredictConfident": true, "Update": true,
	"Score": true, "L2Index": true, "L2IndexAndUpdate": true,
	"RunBatch": true,
}

// serveHotFuncs are internal/serve's fixed-name per-frame codec
// functions; the append*/decode* families are matched by prefix.
var serveHotFuncs = map[string]bool{
	"readFrameInto": true, "growPayload": true,
	"writeFrame": true, "ReadRequestFrameBuf": true,
}

func runHotPathAlloc(pass *Pass) {
	switch {
	case strings.HasSuffix(pass.Pkg.Path, "/internal/core"):
		methodsNamed(pass.Pkg, coreHotMethods, func(decl *ast.FuncDecl, recvType string) {
			checkHotBody(pass, decl.Name.Name, decl.Body)
		})
		topLevelFuncs(pass, func(name string) bool {
			return name == "Run" || name == "RunBatch"
		})
	case strings.HasSuffix(pass.Pkg.Path, "/internal/hash"):
		methodsNamed(pass.Pkg, map[string]bool{"Update": true, "Update32": true}, func(decl *ast.FuncDecl, recvType string) {
			checkHotBody(pass, decl.Name.Name, decl.Body)
		})
		topLevelFuncs(pass, func(name string) bool {
			return name == "Fold" || name == "Mask"
		})
	case strings.HasSuffix(pass.Pkg.Path, "/internal/engine"):
		topLevelFuncs(pass, func(name string) bool {
			return strings.HasPrefix(name, "replay")
		})
	case strings.HasSuffix(pass.Pkg.Path, "/internal/serve"):
		topLevelFuncs(pass, func(name string) bool {
			return serveHotFuncs[name] ||
				strings.HasPrefix(name, "append") ||
				strings.HasPrefix(name, "decode")
		})
	case strings.HasSuffix(pass.Pkg.Path, "/internal/cluster"):
		methodsNamed(pass.Pkg, map[string]bool{"forward": true}, func(decl *ast.FuncDecl, recvType string) {
			checkHotBody(pass, decl.Name.Name, decl.Body)
		})
	case strings.HasSuffix(pass.Pkg.Path, "/internal/autotune"):
		methodsNamed(pass.Pkg, map[string]bool{"Mirror": true, "sampled": true}, func(decl *ast.FuncDecl, recvType string) {
			checkHotBody(pass, decl.Name.Name, decl.Body)
		})
	}
}

// topLevelFuncs checks the bodies of non-method functions whose name
// matches.
func topLevelFuncs(pass *Pass, match func(string) bool) {
	for _, f := range pass.Pkg.Files {
		for _, d := range f.Decls {
			decl, ok := d.(*ast.FuncDecl)
			if !ok || decl.Recv != nil || decl.Body == nil {
				continue
			}
			if match(decl.Name.Name) {
				checkHotBody(pass, decl.Name.Name, decl.Body)
			}
		}
	}
}

func checkHotBody(pass *Pass, fname string, body *ast.BlockStmt) {
	info := pass.Pkg.Info
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.SelectorExpr:
			switch pkgOf(info, x) {
			case "fmt":
				pass.Reportf(x.Pos(), "fmt.%s in hot path %s allocates and reflects; format off the per-event path", x.Sel.Name, fname)
			case "reflect":
				pass.Reportf(x.Pos(), "reflect.%s in hot path %s", x.Sel.Name, fname)
			}
		case *ast.DeferStmt:
			pass.Reportf(x.Pos(), "defer in hot path %s adds per-event overhead; restructure the cleanup", fname)
		case *ast.GoStmt:
			pass.Reportf(x.Pos(), "goroutine launch in hot path %s", fname)
		case *ast.CallExpr:
			checkInterfaceConversion(pass, fname, x)
		}
		return true
	})
}

// checkInterfaceConversion flags explicit conversions of concrete
// values to interface types — each one heap-allocates the boxed value
// on the per-event path.
func checkInterfaceConversion(pass *Pass, fname string, call *ast.CallExpr) {
	info := pass.Pkg.Info
	tv, ok := info.Types[call.Fun]
	if !ok || !tv.IsType() || len(call.Args) != 1 {
		return
	}
	if !types.IsInterface(tv.Type) {
		return
	}
	if argTV, ok := info.Types[call.Args[0]]; ok && !types.IsInterface(argTV.Type) {
		pass.Reportf(call.Pos(), "conversion to interface %s boxes its operand in hot path %s",
			types.ExprString(call.Fun), fname)
	}
}
