package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// SnapshotSymmetry cross-checks every AppendState/RestoreState method
// pair (the core.Snapshotter contract): the two methods must cover the
// same receiver field set, in the same layout order, or a predictor
// field added to one side silently vanishes on the other — a restored
// session would diverge from the live one it was snapshot from, and
// nothing dynamic notices until the states happen to differ.
//
// Per receiver type declaring both methods:
//
//   - Every receiver field AppendState touches must also be touched by
//     RestoreState. (A restore that only reads len(p.f) in a size
//     check still counts as touching f — the field's length pins the
//     layout even when its elements are filled through an alias, as
//     range-variable writes are.)
//   - Every receiver field RestoreState writes — assignment targets,
//     and fields a call could mutate through (reference-typed fields,
//     p.f[:] slices, &p.f: restoreNested restores through its
//     predictor argument, copy and clear through their first) — must
//     be touched by AppendState. Pure validation reads of config
//     fields (limits, masks, table geometry) are exempt, as are
//     scalars formatted into error messages.
//   - The order of first access of the shared fields must match
//     between the two bodies: state is a flat byte stream, so the
//     field sequence IS the layout. Size-check reads almost always
//     mirror the layout; a restore that genuinely consumes fields out
//     of append order is decoding the wrong bytes into each table.
//
// A type declaring only one of the two methods is itself a finding:
// half a Snapshotter is state that can be captured but never resumed
// (or vice versa).
//
// The rule anchors on the method names, not on a package list: any
// package that adopts the AppendState/RestoreState convention gets the
// checking.
var SnapshotSymmetry = &Analyzer{
	ID:  "snapshot-symmetry",
	Doc: "AppendState and RestoreState must touch the same receiver fields in the same layout order",
	Run: runSnapshotSymmetry,
}

func runSnapshotSymmetry(pass *Pass) {
	type pair struct {
		app, rst *ast.FuncDecl
	}
	byType := make(map[string]*pair)
	methodsNamed(pass.Pkg, map[string]bool{"AppendState": true, "RestoreState": true}, func(decl *ast.FuncDecl, rt string) {
		if rt == "" {
			return
		}
		p := byType[rt]
		if p == nil {
			p = &pair{}
			byType[rt] = p
		}
		if decl.Name.Name == "AppendState" {
			p.app = decl
		} else {
			p.rst = decl
		}
	})

	names := make([]string, 0, len(byType))
	for rt := range byType {
		names = append(names, rt)
	}
	sort.Strings(names)
	for _, rt := range names {
		p := byType[rt]
		switch {
		case p.rst == nil:
			pass.Reportf(p.app.Name.Pos(), "%s has AppendState but no RestoreState — its snapshots can never be resumed", rt)
		case p.app == nil:
			pass.Reportf(p.rst.Name.Pos(), "%s has RestoreState but no AppendState — nothing produces the state it decodes", rt)
		default:
			checkSnapshotPair(pass, rt, p.app, p.rst)
		}
	}
}

func checkSnapshotPair(pass *Pass, rt string, app, rst *ast.FuncDecl) {
	info := pass.Pkg.Info
	appendSeq := fieldAccessSeq(info, app)
	restoreSeq := fieldAccessSeq(info, rst)
	restoreWrites := fieldWriteSet(info, rst)

	restoreTouched := make(map[*types.Var]bool, len(restoreSeq))
	for _, f := range restoreSeq {
		restoreTouched[f] = true
	}
	appended := make(map[*types.Var]bool, len(appendSeq))
	for _, f := range appendSeq {
		appended[f] = true
	}

	for _, f := range appendSeq {
		if !restoreTouched[f] {
			pass.Reportf(rst.Name.Pos(), "%s.AppendState serializes field %s but RestoreState never touches it — a restored %s silently loses it", rt, f.Name(), rt)
		}
	}
	for f := range restoreWrites {
		if !appended[f] {
			pass.Reportf(rst.Name.Pos(), "%s.RestoreState writes field %s but AppendState never serializes it — the restore decodes bytes no snapshot carries", rt, f.Name())
		}
	}

	// Layout order: the shared fields' first-access sequences must
	// agree.
	var appOrder, rstOrder []*types.Var
	for _, f := range appendSeq {
		if restoreTouched[f] {
			appOrder = append(appOrder, f)
		}
	}
	for _, f := range restoreSeq {
		if appended[f] {
			rstOrder = append(rstOrder, f)
		}
	}
	if len(appOrder) == len(rstOrder) {
		for i := range appOrder {
			if appOrder[i] != rstOrder[i] {
				pass.Reportf(rst.Name.Pos(), "%s.RestoreState touches fields in order (%s) but AppendState lays them out as (%s) — the restore decodes the stream out of order", rt, fieldNames(rstOrder), fieldNames(appOrder))
				break
			}
		}
	}
}

func fieldNames(fs []*types.Var) string {
	names := make([]string, len(fs))
	for i, f := range fs {
		names[i] = f.Name()
	}
	return strings.Join(names, ", ")
}

// fieldAccessSeq returns the receiver fields the method body accesses
// directly (p.f for receiver p), ordered by first occurrence in source
// order.
func fieldAccessSeq(info *types.Info, decl *ast.FuncDecl) []*types.Var {
	recv := recvObject(info, decl)
	if recv == nil || decl.Body == nil {
		return nil
	}
	var seq []*types.Var
	seen := make(map[*types.Var]bool)
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		f := recvField(info, recv, n)
		if f != nil && !seen[f] {
			seen[f] = true
			seq = append(seq, f)
		}
		return true
	})
	return seq
}

// recvField resolves n to the receiver field it selects (recv.f), or
// nil.
func recvField(info *types.Info, recv types.Object, n ast.Node) *types.Var {
	sel, ok := n.(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	id, ok := ast.Unparen(sel.X).(*ast.Ident)
	if !ok || info.Uses[id] != recv {
		return nil
	}
	s, ok := info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return nil
	}
	f, _ := s.Obj().(*types.Var)
	return f
}

// fieldWriteSet collects the receiver fields the body plausibly
// mutates: assignment/inc-dec targets rooted at the receiver, and
// fields a call could mutate through — a reference-typed field passed
// as an argument (restoreNested restores through its predictor
// argument, copy and clear through their first), a p.f[:] slice of an
// array field, or an explicit &p.f. Value-typed scalars passed to
// calls (sizes formatted into error messages) are reads, not writes.
func fieldWriteSet(info *types.Info, decl *ast.FuncDecl) map[*types.Var]bool {
	recv := recvObject(info, decl)
	out := make(map[*types.Var]bool)
	if recv == nil || decl.Body == nil {
		return out
	}
	// rootedField finds the receiver field an expression chain like
	// p.f[i].x bottoms out in, noting whether the path crossed an
	// aliasing step (slice of an array, address-of) that would let a
	// callee mutate a value-typed field.
	rootedField := func(e ast.Expr) (f *types.Var, aliased bool) {
		for {
			if f := recvField(info, recv, e); f != nil {
				return f, aliased
			}
			switch x := e.(type) {
			case *ast.ParenExpr:
				e = x.X
			case *ast.SelectorExpr:
				e = x.X
			case *ast.IndexExpr:
				e = x.X
			case *ast.SliceExpr:
				e, aliased = x.X, true
			case *ast.StarExpr:
				e = x.X
			case *ast.UnaryExpr:
				e = x.X
				if x.Op == token.AND {
					aliased = true
				}
			default:
				return nil, false
			}
		}
	}
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range x.Lhs {
				if f, _ := rootedField(lhs); f != nil {
					out[f] = true
				}
			}
		case *ast.IncDecStmt:
			if f, _ := rootedField(x.X); f != nil {
				out[f] = true
			}
		case *ast.CallExpr:
			if _, name := calleeName(info, x); name == "len" || name == "cap" {
				return true
			}
			for _, arg := range x.Args {
				f, aliased := rootedField(arg)
				if f != nil && (aliased || isRefType(f.Type())) {
					out[f] = true
				}
			}
		}
		return true
	})
	return out
}

// isRefType reports whether a value of type t passed to a call lets
// the callee mutate state reachable from the caller's copy.
func isRefType(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Slice, *types.Map, *types.Chan, *types.Interface:
		return true
	}
	return false
}
