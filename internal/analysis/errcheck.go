package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// ErrorDiscipline forbids silently discarded errors in the
// operational layers — the cmd/ binaries, the network server in
// internal/serve, and the routing tier in internal/cluster — where a
// dropped error turns into a truncated artifact file, a half-written
// response, or a leaked connection that no test will reproduce.
//
// A call whose last result is an error must not appear as a bare
// statement. Exempt:
//
//   - `defer x.Close()` and friends — deferred cleanup on an exit
//     path has no error consumer by design;
//   - fmt.Print/Printf/Println/Fprint* — terminal/report output in a
//     CLI, where the standard library itself discards the result
//     idiomatically;
//   - an explicit `_ =` assignment, which is a visible, reviewable
//     decision rather than an accident.
var ErrorDiscipline = &Analyzer{
	ID:  "error-discipline",
	Doc: "cmd/, internal/serve and internal/cluster must not silently discard error returns",
	Run: runErrorDiscipline,
}

func errorDisciplineScope(path string) bool {
	return strings.Contains(path, "/cmd/") ||
		strings.HasSuffix(path, "/internal/serve") ||
		strings.HasSuffix(path, "/internal/cluster")
}

func runErrorDiscipline(pass *Pass) {
	if !errorDisciplineScope(pass.Pkg.Path) {
		return
	}
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			stmt, ok := n.(*ast.ExprStmt)
			if !ok {
				return true
			}
			call, ok := stmt.X.(*ast.CallExpr)
			if !ok {
				return true
			}
			if !returnsError(info, call) || errcheckExempt(info, call) {
				return true
			}
			_, name := calleeName(info, call)
			if name == "" {
				name = types.ExprString(call.Fun)
			}
			pass.Reportf(call.Pos(), "result of %s discarded; handle the error or assign it to _ explicitly", name)
			return true
		})
	}
}

// returnsError reports whether the call produces an error among its
// results.
func returnsError(info *types.Info, call *ast.CallExpr) bool {
	tv, ok := info.Types[call]
	if !ok || tv.Type == nil {
		return false
	}
	switch t := tv.Type.(type) {
	case *types.Tuple:
		for i := 0; i < t.Len(); i++ {
			if isErrorType(t.At(i).Type()) {
				return true
			}
		}
		return false
	default:
		return isErrorType(t)
	}
}

// errcheckExempt lists callees whose discarded error is idiomatic.
func errcheckExempt(info *types.Info, call *ast.CallExpr) bool {
	pkg, name := calleeName(info, call)
	if pkg == "fmt" && (strings.HasPrefix(name, "Print") || strings.HasPrefix(name, "Fprint")) {
		return true
	}
	// Writes into in-memory buffers cannot fail (they panic on OOM);
	// forcing checks there is noise.
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		switch strings.TrimPrefix(receiverType(info, sel), "*") {
		case "bytes.Buffer", "strings.Builder":
			return true
		}
	}
	return false
}

// receiverType names a method call's receiver type, e.g.
// "*bytes.Buffer", or "" for non-method callees.
func receiverType(info *types.Info, sel *ast.SelectorExpr) string {
	s, ok := info.Selections[sel]
	if !ok {
		return ""
	}
	return s.Recv().String()
}
