package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// GoroutineLifecycle requires every goroutine spawned in the serving
// tier to be tied to a shutdown mechanism: its body (or the body of
// the same-package function it calls) must signal or observe
// completion through a sync.WaitGroup Done, a channel close, a
// channel send/receive, or a context Done — something a Close/drain
// path can join on. A `go` statement with none of these is
// fire-and-forget: it can outlive Close, keep sockets open past
// drain, and leak under the race detector's nose.
//
// Scope: internal/serve, internal/cluster and internal/autotune (the
// concurrent serving packages) plus cmd/vpserve and cmd/vprouter
// (their process harnesses, where auxiliary listeners have
// historically been spawned loose).
var GoroutineLifecycle = &Analyzer{
	ID:  "goroutine-lifecycle",
	Doc: "goroutines in the serving tier must be joinable: WaitGroup, done channel, or context tie",
	Run: runGoroutineLifecycle,
}

func goroutineScope(path string) bool {
	return strings.HasSuffix(path, "/internal/serve") ||
		strings.HasSuffix(path, "/internal/cluster") ||
		strings.HasSuffix(path, "/internal/autotune") ||
		strings.HasSuffix(path, "/cmd/vpserve") ||
		strings.HasSuffix(path, "/cmd/vprouter")
}

func runGoroutineLifecycle(pass *Pass) {
	if !goroutineScope(pass.Pkg.Path) {
		return
	}
	info := pass.Pkg.Info

	// Same-package function/method declarations by object, so
	// `go e.run(s)` resolves to run's body.
	decls := make(map[types.Object]*ast.FuncDecl)
	for _, f := range pass.Pkg.Files {
		for _, d := range f.Decls {
			if decl, ok := d.(*ast.FuncDecl); ok && decl.Body != nil {
				if obj := info.Defs[decl.Name]; obj != nil {
					decls[obj] = decl
				}
			}
		}
	}

	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			body, known := spawnedBody(info, decls, g.Call)
			if !known {
				pass.Reportf(g.Pos(), "goroutine body is outside the package — cannot prove it is joinable; wrap it in a function tied to a WaitGroup or done channel")
				return true
			}
			if !joinable(info, body) {
				pass.Reportf(g.Pos(), "fire-and-forget goroutine: body signals no WaitGroup/done channel/context, so Close/drain cannot join it")
			}
			return true
		})
	}
}

// spawnedBody resolves the function body a go statement runs: a
// literal's own body, or the declaration of a same-package function
// or method.
func spawnedBody(info *types.Info, decls map[types.Object]*ast.FuncDecl, call *ast.CallExpr) (*ast.BlockStmt, bool) {
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.FuncLit:
		return fn.Body, true
	case *ast.Ident:
		if decl, ok := decls[info.Uses[fn]]; ok {
			return decl.Body, true
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fn]; ok && sel.Kind() == types.MethodVal {
			if decl, ok := decls[sel.Obj()]; ok {
				return decl.Body, true
			}
		}
	}
	return nil, false
}

// joinable reports whether the body contains any completion signal a
// shutdown path can couple to: wg.Done(), close(ch), a channel
// send/receive (including select and range-over-channel), or
// ctx.Done().
func joinable(info *types.Info, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch x := n.(type) {
		case *ast.SendStmt:
			found = true
		case *ast.UnaryExpr:
			if x.Op.String() == "<-" {
				found = true
			}
		case *ast.SelectStmt:
			found = true
		case *ast.RangeStmt:
			if t, ok := info.Types[x.X]; ok {
				if _, isChan := t.Type.Underlying().(*types.Chan); isChan {
					found = true
				}
			}
		case *ast.CallExpr:
			if pkg, name := calleeName(info, x); pkg == "" && name == "close" {
				found = true
				return false
			}
			if sel, ok := ast.Unparen(x.Fun).(*ast.SelectorExpr); ok {
				switch sel.Sel.Name {
				case "Done", "Wait":
					if t, ok := info.Types[sel.X]; ok && isWaitGroup(t.Type) {
						found = true
					}
				}
			}
		}
		return !found
	})
	return found
}

func isWaitGroup(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" && obj.Name() == "WaitGroup"
}
