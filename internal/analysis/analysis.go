// Package analysis is the repo's project-specific static-analysis
// framework: a stdlib-only package loader (go/parser + go/types, no
// external module dependencies), a diagnostic model, and a small set
// of analyzers that enforce invariants the rest of the codebase only
// probes dynamically — Predict purity, replay determinism, hot-path
// allocation discipline, wire-protocol bounds checking, error
// handling in the operational layers, and the concurrency/protocol
// invariants of the serving tier: mutex discipline around annotated
// fields, goroutine lifecycle ties, VP1 op/status exhaustiveness, and
// Snapshotter append/restore symmetry.
//
// The analyzers are deliberately narrow: each encodes one invariant
// documented in DESIGN.md §"Statically enforced invariants", scoped
// to the packages where the invariant holds. They are run by
// cmd/vplint (wired into `make lint` and `make verify`).
//
// # Suppression
//
// A finding is suppressed by annotating the offending line — or the
// line directly above it — with
//
//	//lint:ignore <rule-id> <reason>
//
// The rule ID may be a comma-separated list. The reason is mandatory:
// a suppression without one is itself reported.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Diagnostic is one finding: a rule violation at a position.
type Diagnostic struct {
	Rule    string         // analyzer ID, e.g. "predict-purity"
	Pos     token.Position // file:line:col
	Message string
}

// String formats the diagnostic the way cmd/vplint prints it.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Rule, d.Message)
}

// Analyzer is one named rule. Run inspects a single type-checked
// package and reports findings through the pass.
type Analyzer struct {
	// ID is the stable rule identifier used in output and in
	// //lint:ignore annotations.
	ID string
	// Doc is a one-line description of the enforced invariant.
	Doc string
	// Run analyzes pass.Pkg.
	Run func(pass *Pass)
}

// Pass carries one (analyzer, package) pairing. All holds every
// package of the Run invocation, so cross-package analyzers
// (proto-exhaustive checks serve's constants against the cluster
// router's forwarding) can look beyond Pkg.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package
	All      []*Package
	diags    *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Rule:    p.Analyzer.ID,
		Pos:     p.Pkg.Fset.Position(pos),
		Message: fmt.Sprintf(format, args...),
	})
}

// All returns the full analyzer suite in stable order.
func All() []*Analyzer {
	return []*Analyzer{
		PredictPurity,
		Determinism,
		HotPathAlloc,
		ProtoBounds,
		ErrorDiscipline,
		LockDiscipline,
		GoroutineLifecycle,
		ProtoExhaustive,
		SnapshotSymmetry,
	}
}

// ByID resolves a comma-separated rule list against the suite.
func ByID(ids string) ([]*Analyzer, error) {
	if ids == "" {
		return All(), nil
	}
	byID := make(map[string]*Analyzer)
	for _, a := range All() {
		byID[a.ID] = a
	}
	var out []*Analyzer
	for _, id := range strings.Split(ids, ",") {
		id = strings.TrimSpace(id)
		a, ok := byID[id]
		if !ok {
			return nil, fmt.Errorf("unknown rule %q", id)
		}
		out = append(out, a)
	}
	return out, nil
}

// Run applies the analyzers to the packages, filters findings through
// the packages' //lint:ignore annotations, and returns the remainder
// sorted by position. Malformed suppressions (missing reason) are
// reported under the pseudo-rule "lint-directive".
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &Pass{Analyzer: a, Pkg: pkg, All: pkgs, diags: &diags}
			a.Run(pass)
		}
		diags = append(diags, pkg.badDirectives...)
	}
	var out []Diagnostic
	for _, d := range diags {
		if !suppressed(pkgs, d) {
			out = append(out, d)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Rule < b.Rule
	})
	return out
}

func suppressed(pkgs []*Package, d Diagnostic) bool {
	for _, pkg := range pkgs {
		if pkg.suppresses(d) {
			return true
		}
	}
	return false
}

// --- suppression directives ------------------------------------------

// suppression is one parsed //lint:ignore annotation.
type suppression struct {
	rules []string // rule IDs it silences
	line  int      // the comment's own line
}

const ignorePrefix = "//lint:ignore"

// parseSuppressions scans a file's comments for lint:ignore
// directives. Directives missing a rule or a reason are returned as
// diagnostics instead.
func parseSuppressions(fset *token.FileSet, f *ast.File) (map[int][]suppression, []Diagnostic) {
	byLine := make(map[int][]suppression)
	var bad []Diagnostic
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if !strings.HasPrefix(c.Text, ignorePrefix) {
				continue
			}
			rest := strings.TrimSpace(strings.TrimPrefix(c.Text, ignorePrefix))
			fields := strings.Fields(rest)
			line := fset.Position(c.Pos()).Line
			if len(fields) < 2 {
				bad = append(bad, Diagnostic{
					Rule:    "lint-directive",
					Pos:     fset.Position(c.Pos()),
					Message: "malformed directive: want //lint:ignore <rule>[,<rule>...] <reason>",
				})
				continue
			}
			s := suppression{rules: strings.Split(fields[0], ","), line: line}
			byLine[line] = append(byLine[line], s)
		}
	}
	return byLine, bad
}

// suppresses reports whether the package carries an ignore directive
// covering d: same rule, same file, on the diagnostic's line (inline
// comment) or the line directly above it (standalone comment).
func (p *Package) suppresses(d Diagnostic) bool {
	byLine, ok := p.ignores[d.Pos.Filename]
	if !ok {
		return false
	}
	for _, line := range [2]int{d.Pos.Line, d.Pos.Line - 1} {
		for _, s := range byLine[line] {
			for _, r := range s.rules {
				if r == d.Rule {
					return true
				}
			}
		}
	}
	return false
}
