package analysis

import (
	"go/ast"
	"go/types"
)

// rootIdent returns the base identifier of an lvalue-ish expression
// chain — p in p.l1[i].hist, (&p.state[i]).x, p.pending[:n] — or nil
// when the chain does not bottom out in an identifier.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.ParenExpr:
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.UnaryExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// pkgOf returns the imported package a selector expression selects
// from (e.g. "time" for time.Now), or "" when sel.X is not a package
// name.
func pkgOf(info *types.Info, sel *ast.SelectorExpr) string {
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return ""
	}
	pn, ok := info.Uses[id].(*types.PkgName)
	if !ok {
		return ""
	}
	return pn.Imported().Path()
}

// calleeName unwraps a call's function expression to (pkgPath, name)
// for package-level callees, ("", name) for everything else named,
// and ("", "") for anonymous callees.
func calleeName(info *types.Info, call *ast.CallExpr) (pkg, name string) {
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return "", fn.Name
	case *ast.SelectorExpr:
		return pkgOf(info, fn), fn.Sel.Name
	}
	return "", ""
}

// isErrorType reports whether t is the built-in error interface.
func isErrorType(t types.Type) bool {
	return types.Identical(t, types.Universe.Lookup("error").Type())
}

// methodsNamed yields every method declaration in the package whose
// name is in want, along with its receiver's named-type name.
func methodsNamed(pkg *Package, want map[string]bool, fn func(decl *ast.FuncDecl, recvType string)) {
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			decl, ok := d.(*ast.FuncDecl)
			if !ok || decl.Recv == nil || decl.Body == nil || !want[decl.Name.Name] {
				continue
			}
			fn(decl, recvTypeName(decl))
		}
	}
}

// recvTypeName extracts the receiver's type name from a method
// declaration ("Delayed" for func (d *Delayed) ...).
func recvTypeName(decl *ast.FuncDecl) string {
	if decl.Recv == nil || len(decl.Recv.List) == 0 {
		return ""
	}
	t := decl.Recv.List[0].Type
	for {
		switch x := t.(type) {
		case *ast.StarExpr:
			t = x.X
		case *ast.IndexExpr: // generic receiver
			t = x.X
		case *ast.Ident:
			return x.Name
		default:
			return ""
		}
	}
}

// recvObject returns the receiver parameter's object, or nil for an
// anonymous receiver.
func recvObject(info *types.Info, decl *ast.FuncDecl) types.Object {
	if decl.Recv == nil || len(decl.Recv.List) == 0 || len(decl.Recv.List[0].Names) == 0 {
		return nil
	}
	return info.Defs[decl.Recv.List[0].Names[0]]
}
