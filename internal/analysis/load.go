package analysis

import (
	"fmt"
	"go/ast"
	"go/build/constraint"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// Package is one loaded, type-checked, non-test package of the
// module under analysis.
type Package struct {
	Path  string // import path, e.g. "repro/internal/core"
	Dir   string // absolute directory
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info

	ignores       map[string]map[int][]suppression // filename -> comment line -> directives
	badDirectives []Diagnostic
}

// LoadModule parses and type-checks every non-test package of the Go
// module rooted at root (the directory containing go.mod), resolving
// standard-library imports from source so the loader needs nothing
// beyond the Go toolchain's GOROOT. Test files and testdata trees are
// skipped. The returned packages share one FileSet and are sorted by
// import path.
func LoadModule(root string) ([]*Package, error) {
	root, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	modPath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}

	dirs, err := packageDirs(root)
	if err != nil {
		return nil, err
	}

	fset := token.NewFileSet()
	byPath := make(map[string]*Package)
	for _, dir := range dirs {
		rel, err := filepath.Rel(root, dir)
		if err != nil {
			return nil, err
		}
		path := modPath
		if rel != "." {
			path = modPath + "/" + filepath.ToSlash(rel)
		}
		pkg, err := parseDir(fset, dir, path)
		if err != nil {
			return nil, err
		}
		if pkg != nil {
			byPath[path] = pkg
		}
	}

	order, err := topoSort(byPath)
	if err != nil {
		return nil, err
	}

	// Standard-library imports are type-checked from GOROOT source;
	// module-internal imports resolve to the packages checked earlier
	// in dependency order.
	std := importer.ForCompiler(fset, "source", nil)
	checked := make(map[string]*types.Package)
	imp := importerFunc(func(path string) (*types.Package, error) {
		if p, ok := checked[path]; ok {
			return p, nil
		}
		if strings.HasPrefix(path, modPath+"/") || path == modPath {
			return nil, fmt.Errorf("module package %s not loaded (import cycle?)", path)
		}
		return std.Import(path)
	})
	for _, pkg := range order {
		conf := types.Config{Importer: imp}
		info := &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
		}
		tpkg, err := conf.Check(pkg.Path, fset, pkg.Files, info)
		if err != nil {
			return nil, fmt.Errorf("type-checking %s: %w", pkg.Path, err)
		}
		pkg.Types = tpkg
		pkg.Info = info
		checked[pkg.Path] = tpkg
	}

	sort.Slice(order, func(i, j int) bool { return order[i].Path < order[j].Path })
	return order, nil
}

// CheckSource parses and type-checks a single in-memory file as a
// package with the given import path — the fixture loader used by the
// analyzer tests. Imports resolve from standard-library source only.
func CheckSource(path, filename, src string) (*Package, error) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, filename, src, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	tpkg, err := conf.Check(path, fset, []*ast.File{f}, info)
	if err != nil {
		return nil, err
	}
	pkg := &Package{
		Path:  path,
		Fset:  fset,
		Files: []*ast.File{f},
		Types: tpkg,
		Info:  info,
	}
	pkg.indexSuppressions()
	return pkg, nil
}

type importerFunc func(string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// modulePath extracts the module path from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			p := strings.TrimSpace(rest)
			if unq, err := strconv.Unquote(p); err == nil {
				p = unq
			}
			if p != "" {
				return p, nil
			}
		}
	}
	return "", fmt.Errorf("%s: no module directive", gomod)
}

// packageDirs walks root collecting directories that contain at least
// one non-test .go file, skipping testdata, vendor, VCS and hidden
// trees.
func packageDirs(root string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != root && (name == "testdata" || name == "vendor" ||
				strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(path, ".go") && !strings.HasSuffix(path, "_test.go") {
			dir := filepath.Dir(path)
			if len(dirs) == 0 || dirs[len(dirs)-1] != dir {
				dirs = append(dirs, dir)
			}
		}
		return nil
	})
	return dirs, err
}

// parseDir parses the non-test .go files of one directory. Returns
// nil if the directory holds no buildable files.
func parseDir(fset *token.FileSet, dir, path string) (*Package, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	pkg := &Package{Path: path, Dir: dir, Fset: fset}
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		if fileExcludedByBuildTags(f) {
			continue
		}
		pkg.Files = append(pkg.Files, f)
	}
	if len(pkg.Files) == 0 {
		return nil, nil
	}
	pkg.indexSuppressions()
	return pkg, nil
}

// fileExcludedByBuildTags reports whether a //go:build line above the
// package clause excludes the file from the build the analyzers
// model: the default `go build` on the host OS/arch, with no special
// tags. Without this, a tag-disjoint pair of files (e.g. a constant
// declared once under `//go:build race` and once under `!race`) looks
// like a redeclaration to the type checker. Legacy // +build lines
// are not consulted; the module uses the go:build form only.
func fileExcludedByBuildTags(f *ast.File) bool {
	for _, cg := range f.Comments {
		if cg.Pos() >= f.Package {
			break
		}
		for _, c := range cg.List {
			if !constraint.IsGoBuild(c.Text) {
				continue
			}
			expr, err := constraint.Parse(c.Text)
			if err != nil {
				continue
			}
			if !expr.Eval(defaultBuildTag) {
				return true
			}
		}
	}
	return false
}

// defaultBuildTag says which tags the modeled build satisfies: host
// OS and architecture, the gc toolchain, the unix umbrella where it
// applies, and every go1.x language-version gate. Everything else —
// race, integration tags, foreign platforms — is unset.
func defaultBuildTag(tag string) bool {
	switch tag {
	case runtime.GOOS, runtime.GOARCH, "gc":
		return true
	case "unix":
		switch runtime.GOOS {
		case "linux", "darwin", "freebsd", "netbsd", "openbsd", "dragonfly", "solaris", "aix":
			return true
		}
		return false
	}
	return strings.HasPrefix(tag, "go1.")
}

func (p *Package) indexSuppressions() {
	p.ignores = make(map[string]map[int][]suppression)
	for _, f := range p.Files {
		byLine, bad := parseSuppressions(p.Fset, f)
		p.badDirectives = append(p.badDirectives, bad...)
		if len(byLine) > 0 {
			p.ignores[p.Fset.Position(f.Pos()).Filename] = byLine
		}
	}
}

// topoSort orders packages so every module-internal dependency
// precedes its importer.
func topoSort(byPath map[string]*Package) ([]*Package, error) {
	paths := make([]string, 0, len(byPath))
	for p := range byPath {
		paths = append(paths, p)
	}
	sort.Strings(paths)

	const (
		unvisited = 0
		visiting  = 1
		done      = 2
	)
	state := make(map[string]int)
	var order []*Package
	var visit func(path string, chain []string) error
	visit = func(path string, chain []string) error {
		switch state[path] {
		case done:
			return nil
		case visiting:
			return fmt.Errorf("import cycle: %s", strings.Join(append(chain, path), " -> "))
		}
		state[path] = visiting
		pkg := byPath[path]
		var deps []string
		for _, f := range pkg.Files {
			for _, spec := range f.Imports {
				dep, err := strconv.Unquote(spec.Path.Value)
				if err != nil {
					continue
				}
				if _, ok := byPath[dep]; ok {
					deps = append(deps, dep)
				}
			}
		}
		sort.Strings(deps)
		for _, dep := range deps {
			if err := visit(dep, append(chain, path)); err != nil {
				return err
			}
		}
		state[path] = done
		order = append(order, pkg)
		return nil
	}
	for _, p := range paths {
		if err := visit(p, nil); err != nil {
			return nil, err
		}
	}
	return order, nil
}
