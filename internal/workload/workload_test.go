package workload

import (
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/trace"
)

func TestConstant(t *testing.T) {
	c := Constant(42)
	for i := 0; i < 5; i++ {
		if c.Next() != 42 {
			t.Fatal("constant changed")
		}
	}
}

func TestStride(t *testing.T) {
	s := &Stride{Start: 10, Step: 3}
	want := []uint32{10, 13, 16, 19}
	for i, w := range want {
		if got := s.Next(); got != w {
			t.Fatalf("value %d = %d, want %d", i, got, w)
		}
	}
}

func TestStrideNegativeAndWrapping(t *testing.T) {
	s := &Stride{Start: 2, Step: 0xffffffff} // step -1
	if s.Next() != 2 || s.Next() != 1 || s.Next() != 0 || s.Next() != 0xffffffff {
		t.Error("negative stride did not wrap as two's complement")
	}
}

func TestCycle(t *testing.T) {
	c := &Cycle{Values: []uint32{1, 2, 3}}
	got := []uint32{c.Next(), c.Next(), c.Next(), c.Next()}
	if got[0] != 1 || got[3] != 1 {
		t.Errorf("cycle = %v", got)
	}
}

func TestRandomDeterministicAndBounded(t *testing.T) {
	a := &Random{Seed: 7, Bits: 12}
	b := &Random{Seed: 7, Bits: 12}
	for i := 0; i < 100; i++ {
		va, vb := a.Next(), b.Next()
		if va != vb {
			t.Fatal("same seed diverged")
		}
		if va >= 1<<12 {
			t.Fatalf("value %d exceeds 12 bits", va)
		}
	}
	z := &Random{}
	if z.Next() == z.Next() && z.Next() == z.Next() {
		t.Error("zero-seed random looks constant")
	}
}

func TestResettingStride(t *testing.T) {
	s := &ResettingStride{Start: 5, Step: 2, Length: 3}
	want := []uint32{5, 7, 9, 5, 7, 9, 5}
	for i, w := range want {
		if got := s.Next(); got != w {
			t.Fatalf("value %d = %d, want %d", i, got, w)
		}
	}
}

func TestInterleaveShape(t *testing.T) {
	instrs := []Instruction{
		{PC: 0x100, Stream: Constant(1)},
		{PC: 0x104, Stream: &Stride{Step: 1}},
	}
	tr := trace.Collect(Interleave(instrs, 3), 0)
	if len(tr) != 6 {
		t.Fatalf("got %d events, want 6", len(tr))
	}
	if tr[0].PC != 0x100 || tr[1].PC != 0x104 || tr[2].PC != 0x100 {
		t.Error("round-robin order broken")
	}
}

func TestLoopBodyComposition(t *testing.T) {
	body := LoopBody(0x1000, 2, 3, 4, 1)
	if len(body) != 10 {
		t.Fatalf("body has %d instructions", len(body))
	}
	seen := map[uint32]bool{}
	for _, in := range body {
		if seen[in.PC] {
			t.Fatalf("duplicate PC %#x", in.PC)
		}
		seen[in.PC] = true
	}
}

func TestPredictorsBehaveOnWorkloads(t *testing.T) {
	// Cross-check the generators against known predictor strengths.
	run := func(p core.Predictor, instrs []Instruction, rounds int) float64 {
		return core.Run(p, Interleave(instrs, rounds)).Accuracy()
	}
	stride := []Instruction{{PC: 0x40, Stream: &Stride{Start: 3, Step: 7}}}
	if acc := run(core.NewStride(8), stride, 500); acc < 0.99 {
		t.Errorf("stride predictor on stride stream: %.3f", acc)
	}
	if acc := run(core.NewDFCM(8, 12), stride, 500); acc < 0.98 {
		t.Errorf("DFCM on stride stream: %.3f", acc)
	}
	cyc := []Instruction{{PC: 0x40, Stream: &Cycle{Values: []uint32{5, 9, 1, 44}}}}
	if acc := run(core.NewFCM(8, 14), cyc, 500); acc < 0.95 {
		t.Errorf("FCM on cyclic stream: %.3f", acc)
	}
	if acc := run(core.NewLastValue(8), cyc, 500); acc > 0.05 {
		t.Errorf("LVP on cyclic stream: %.3f (should fail)", acc)
	}
}

func TestQuickResettingStrideOneMissPerLap(t *testing.T) {
	prop := func(start uint32, step8 uint8, lenRaw uint8) bool {
		length := 3 + int(lenRaw%20)
		s := &ResettingStride{Start: start, Step: uint32(step8), Length: length}
		p := core.NewStride(6)
		// Warm up four laps, then measure two laps.
		var miss int
		for i := 0; i < 6*length; i++ {
			v := s.Next()
			if p.Predict(0x40) != v && i >= 4*length {
				miss++
			}
			p.Update(0x40, v)
		}
		if step8 == 0 {
			return miss == 0 // constant: resets are invisible
		}
		if length >= 10 {
			// Long laps let the confidence counter saturate, so the
			// stride survives each reset: one miss per measured lap.
			return miss <= 2
		}
		// Short laps may never saturate confidence: the reset can also
		// cost the following prediction, i.e. up to two misses per lap.
		return miss <= 4
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
