// Package workload generates synthetic value traces with controlled
// pattern mixes: constant, stride, repeating-context and random
// streams, interleaved as if produced by distinct static
// instructions. It backs the examples and the property tests; the
// real evaluation uses the MR32 benchmark suite (internal/progs).
package workload

import (
	"repro/internal/trace"
)

// rng is a tiny deterministic xorshift32, matching the PRNG the MR32
// benchmarks use.
type rng uint32

func (r *rng) next() uint32 {
	x := uint32(*r)
	x ^= x << 13
	x ^= x >> 17
	x ^= x << 5
	*r = rng(x)
	return x
}

// Stream produces the successive values of one synthetic static
// instruction.
type Stream interface {
	// Next returns the instruction's next produced value.
	Next() uint32
}

// Constant yields the same value forever (the last-value predictor's
// home turf).
type Constant uint32

// Next implements Stream.
func (c Constant) Next() uint32 { return uint32(c) }

// Stride counts from Start in steps of Step (loop induction
// variables, array addresses).
type Stride struct {
	Start uint32
	Step  uint32
	cur   uint32
	init  bool
}

// Next implements Stream.
func (s *Stride) Next() uint32 {
	if !s.init {
		s.cur = s.Start
		s.init = true
	}
	v := s.cur
	s.cur += s.Step
	return v
}

// Cycle repeats a fixed pattern of values (a repeating non-stride
// context pattern — the FCM's home turf).
type Cycle struct {
	Values []uint32
	i      int
}

// Next implements Stream.
func (c *Cycle) Next() uint32 {
	v := c.Values[c.i%len(c.Values)]
	c.i++
	return v
}

// Random yields pseudo-random values masked to Bits bits
// (hard-to-predict values). The zero seed is replaced.
type Random struct {
	Seed uint32
	Bits uint
	r    rng
}

// Next implements Stream.
func (r *Random) Next() uint32 {
	if r.r == 0 {
		if r.Seed == 0 {
			r.Seed = 2463534242
		}
		r.r = rng(r.Seed)
	}
	v := r.r.next()
	if r.Bits > 0 && r.Bits < 32 {
		v &= (1 << r.Bits) - 1
	}
	return v
}

// ResettingStride counts from Start in steps of Step, wrapping back to
// Start after Length values (a loop counter with resets — one
// misprediction per reset for a robust stride predictor).
type ResettingStride struct {
	Start  uint32
	Step   uint32
	Length int
	i      int
}

// Next implements Stream.
func (s *ResettingStride) Next() uint32 {
	v := s.Start + s.Step*uint32(s.i%s.Length)
	s.i++
	return v
}

// Instruction pairs a PC with the stream of values it produces.
type Instruction struct {
	PC     uint32
	Stream Stream
}

// Interleave yields rounds of all instructions in order, n rounds
// total, as a trace source — the shape of an inner loop body.
func Interleave(instrs []Instruction, rounds int) trace.Source {
	i, r := 0, 0
	return trace.Func(func() (trace.Event, bool) {
		if r >= rounds {
			return trace.Event{}, false
		}
		in := instrs[i]
		e := trace.Event{PC: in.PC, Value: in.Stream.Next()}
		i++
		if i == len(instrs) {
			i, r = 0, r+1
		}
		return e, true
	})
}

// LoopBody builds a canonical mixed loop body at base PC: nConst
// constant instructions, nStride stride instructions (distinct
// strides), nCycle context instructions (shifted copies of one
// pattern) and nRand random instructions, in that PC order.
func LoopBody(base uint32, nConst, nStride, nCycle, nRand int) []Instruction {
	var out []Instruction
	pc := base
	add := func(s Stream) {
		out = append(out, Instruction{PC: pc, Stream: s})
		pc += 4
	}
	for i := 0; i < nConst; i++ {
		add(Constant(uint32(7 + i*13)))
	}
	for i := 0; i < nStride; i++ {
		add(&Stride{Start: uint32(i) * 100000, Step: uint32(2*i + 1)})
	}
	pattern := []uint32{9, 2, 25, 7, 1, 130, 4, 66}
	for i := 0; i < nCycle; i++ {
		rot := append(append([]uint32{}, pattern[i%len(pattern):]...), pattern[:i%len(pattern)]...)
		add(&Cycle{Values: rot})
	}
	for i := 0; i < nRand; i++ {
		add(&Random{Seed: uint32(88172645 + i), Bits: 16})
	}
	return out
}
