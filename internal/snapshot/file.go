package snapshot

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
)

// WriteFile atomically replaces path with the encoded snapshot: the
// bytes land in a temp file in the same directory, are fsync'd, and
// are renamed over the target, so a crash mid-checkpoint leaves either
// the old snapshot or the new one — never a torn file. The directory
// is fsync'd afterwards so the rename itself is durable.
func WriteFile(path string, s *Snapshot) error {
	var buf bytes.Buffer
	if err := s.Encode(&buf); err != nil {
		return err
	}
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	if _, err := f.Write(buf.Bytes()); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	if d, err := os.Open(dir); err == nil {
		// Directory fsync is best-effort: some filesystems refuse it,
		// and the rename above is already atomic.
		d.Sync()
		d.Close()
	}
	return nil
}

// ReadFile decodes one snapshot from path, rejecting files with bytes
// past the checksum — a concatenated or overwritten-in-place file is
// corrupt, not "a snapshot plus extras".
func ReadFile(path string) (*Snapshot, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	s, err := Decode(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	var one [1]byte
	if n, _ := f.Read(one[:]); n != 0 {
		return nil, fmt.Errorf("%s: %w: trailing bytes after checksum", path, ErrCorrupt)
	}
	return s, nil
}
