package snapshot

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/trace"
)

// trainEvents mirrors the generator in internal/core's reset suite: a
// constant, a stride, a repeating context pattern and a noisy stream,
// so every table type gets dirtied.
func trainEvents(n int) trace.Trace {
	t := make(trace.Trace, 0, n)
	pattern := []uint32{9, 2, 25, 7, 1, 130, 4, 66}
	rnd := uint32(2463534242)
	for i := 0; len(t) < n; i++ {
		t = append(t,
			trace.Event{PC: 0x1000, Value: 42},
			trace.Event{PC: 0x1004, Value: uint32(i) * 8},
			trace.Event{PC: 0x1008, Value: pattern[i%len(pattern)]},
		)
		rnd ^= rnd << 13
		rnd ^= rnd >> 17
		rnd ^= rnd << 5
		t = append(t, trace.Event{PC: 0x100c, Value: rnd & 0xffff})
	}
	return t[:n]
}

// specs enumerates every predictor kind the Spec vocabulary can build,
// including delayed and narrow-stride variants.
func specs() []core.Spec {
	return []core.Spec{
		{Kind: "lvp", L1: 8},
		{Kind: "stride", L1: 8},
		{Kind: "2delta", L1: 8},
		{Kind: "fcm", L1: 8, L2: 10},
		{Kind: "dfcm", L1: 8, L2: 10},
		{Kind: "dfcm", L1: 6, L2: 8, Width: 8},
		{Kind: "hybrid", L1: 7, L2: 9},
		{Kind: "lvp", L1: 6, Delay: 4},
		{Kind: "dfcm", L1: 6, L2: 8, Delay: 6},
		{Kind: "tage", L1: 6, L2: 5, Tables: 4, Tag: 8, HistMin: 4, HistMax: 64},
		{Kind: "tage", L1: 5, L2: 4, Width: 8, Tables: 3, Tag: 6, HistMin: 2, HistMax: 32, Delay: 3},
	}
}

// TestSnapshotFileRoundTripEverySpec is the file-format half of the
// checkpoint equivalence property (the state-level half lives in
// internal/core): for every Spec configuration, run to event k,
// Capture → Encode → Decode → Restore, and drive both predictors
// onward — every subsequent prediction must match the uninterrupted
// run exactly.
func TestSnapshotFileRoundTripEverySpec(t *testing.T) {
	events := trainEvents(3000)
	const cut = 1700
	for _, spec := range specs() {
		t.Run(fmt.Sprintf("%s-l1=%d-l2=%d-w%d-d%d", spec.Kind, spec.L1, spec.L2, spec.Width, spec.Delay), func(t *testing.T) {
			p, err := spec.New()
			if err != nil {
				t.Fatal(err)
			}
			core.Run(p, trace.NewReader(events[:cut]))

			meta := Meta{Session: 7, Predictions: uint64(cut), Hits: 1234, Updates: uint64(cut)}
			snap, err := Capture(spec, p, meta)
			if err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			if err := snap.Encode(&buf); err != nil {
				t.Fatal(err)
			}
			got, err := Decode(&buf)
			if err != nil {
				t.Fatal(err)
			}
			if got.Version != Version {
				t.Fatalf("decoded version %d, want %d", got.Version, Version)
			}
			if got.Spec != spec {
				t.Fatalf("decoded spec %+v, want %+v", got.Spec, spec)
			}
			if got.Meta != meta {
				t.Fatalf("decoded meta %+v, want %+v", got.Meta, meta)
			}
			restored, err := got.Restore()
			if err != nil {
				t.Fatal(err)
			}
			for i, e := range events[cut:] {
				rv, wv := restored.Predict(e.PC), p.Predict(e.PC)
				if rv != wv {
					t.Fatalf("event %d: restored Predict(%#x) = %d, uninterrupted = %d", cut+i, e.PC, rv, wv)
				}
				p.Update(e.PC, e.Value)
				restored.Update(e.PC, e.Value)
			}
		})
	}
}

// TestCaptureRejectsNonSnapshotter: Capture must fail cleanly on a
// predictor without state export rather than write an empty snapshot.
func TestCaptureRejectsNonSnapshotter(t *testing.T) {
	if _, err := Capture(core.Spec{Kind: "lvp", L1: 4}, opaquePredictor{}, Meta{}); err == nil {
		t.Fatal("Capture accepted a predictor without AppendState")
	}
}

type opaquePredictor struct{}

func (opaquePredictor) Predict(uint32) uint32 { return 0 }
func (opaquePredictor) Update(uint32, uint32) {}
func (opaquePredictor) Name() string          { return "opaque" }
func (opaquePredictor) SizeBits() int64       { return 0 }

// encodeValid returns the encoded bytes of a small valid snapshot.
func encodeValid(t *testing.T) []byte {
	t.Helper()
	spec := core.Spec{Kind: "dfcm", L1: 4, L2: 6}
	p, err := spec.New()
	if err != nil {
		t.Fatal(err)
	}
	core.Run(p, trace.NewReader(trainEvents(400)))
	snap, err := Capture(spec, p, Meta{Session: 1, Predictions: 400, Hits: 100, Updates: 400})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := snap.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestDecodeRejectsCorruption drives the decoder through each failure
// mode a damaged or hostile file can exhibit.
func TestDecodeRejectsCorruption(t *testing.T) {
	valid := encodeValid(t)

	mutate := func(f func(b []byte) []byte) []byte {
		b := append([]byte(nil), valid...)
		return f(b)
	}

	cases := []struct {
		label string
		data  []byte
		want  error
	}{
		{"bad magic", mutate(func(b []byte) []byte { b[0] = 'X'; return b }), ErrBadMagic},
		{"future version", mutate(func(b []byte) []byte { b[5] = Version + 1; return b }), ErrVersion},
		{"version zero", mutate(func(b []byte) []byte { b[4], b[5] = 0, 0; return b }), ErrVersion},
		{"reserved set", mutate(func(b []byte) []byte { b[7] = 1; return b }), ErrCorrupt},
		{"flipped state byte", mutate(func(b []byte) []byte { b[len(b)-20] ^= 0xFF; return b }), ErrChecksum},
		{"flipped checksum", mutate(func(b []byte) []byte { b[len(b)-1] ^= 0xFF; return b }), ErrChecksum},
		{"truncated mid-section", valid[:len(valid)/2], nil},
		{"empty", nil, nil},
		{"oversized claim", mutate(func(b []byte) []byte {
			binary.BigEndian.PutUint32(b[headerSize+1:], MaxState+1)
			return b
		}), ErrSectionSize},
	}
	for _, tc := range cases {
		t.Run(tc.label, func(t *testing.T) {
			_, err := Decode(bytes.NewReader(tc.data))
			if err == nil {
				t.Fatal("corrupt snapshot accepted")
			}
			if tc.want != nil && !errors.Is(err, tc.want) {
				t.Fatalf("error %v, want %v", err, tc.want)
			}
		})
	}
}

// section builds a raw {kind, length, payload} section.
func section(kind byte, payload []byte) []byte {
	b := []byte{kind, 0, 0, 0, 0}
	binary.BigEndian.PutUint32(b[1:], uint32(len(payload)))
	return append(b, payload...)
}

// rawFile assembles header + sections + checksummed end section.
func rawFile(sections ...[]byte) []byte {
	var b []byte
	b = binary.BigEndian.AppendUint32(b, magic)
	b = binary.BigEndian.AppendUint16(b, Version)
	b = binary.BigEndian.AppendUint16(b, 0)
	for _, s := range sections {
		b = append(b, s...)
	}
	b = append(b, secEnd)
	b = binary.BigEndian.AppendUint32(b, 4)
	return binary.BigEndian.AppendUint32(b, crc32.ChecksumIEEE(b))
}

// TestDecodeSectionDiscipline: duplicate sections and missing required
// sections are rejected; unknown sections are skipped but checksummed.
func TestDecodeSectionDiscipline(t *testing.T) {
	specSec := func() []byte {
		payload, err := encodeSpec(core.Spec{Kind: "lvp", L1: 4})
		if err != nil {
			t.Fatal(err)
		}
		return section(secSpec, payload)
	}
	stateSec := func() []byte {
		p, _ := core.Spec{Kind: "lvp", L1: 4}.New()
		return section(secState, p.(core.Snapshotter).AppendState(nil))
	}

	t.Run("unknown section skipped", func(t *testing.T) {
		data := rawFile(specSec(), section(0x7E, []byte("future extension")), stateSec())
		s, err := Decode(bytes.NewReader(data))
		if err != nil {
			t.Fatalf("decoder choked on an unknown section: %v", err)
		}
		if _, err := s.Restore(); err != nil {
			t.Fatal(err)
		}
	})
	t.Run("duplicate section", func(t *testing.T) {
		if _, err := Decode(bytes.NewReader(rawFile(specSec(), specSec(), stateSec()))); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("duplicate spec section: err = %v", err)
		}
	})
	t.Run("missing spec", func(t *testing.T) {
		if _, err := Decode(bytes.NewReader(rawFile(stateSec()))); !errors.Is(err, ErrMissingSection) {
			t.Fatalf("missing spec: err = %v", err)
		}
	})
	t.Run("missing state", func(t *testing.T) {
		if _, err := Decode(bytes.NewReader(rawFile(specSec()))); !errors.Is(err, ErrMissingSection) {
			t.Fatalf("missing state: err = %v", err)
		}
	})
	t.Run("decode-max bound", func(t *testing.T) {
		data := rawFile(specSec(), stateSec())
		if _, err := DecodeMax(bytes.NewReader(data), 4); !errors.Is(err, ErrSectionSize) {
			t.Fatalf("DecodeMax ignored its bound: err = %v", err)
		}
	})
}

// TestWriteReadFile: the atomic write path round-trips, overwrites in
// place, and ReadFile rejects trailing garbage.
func TestWriteReadFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "session-0001.vps")
	spec := core.Spec{Kind: "fcm", L1: 5, L2: 7}
	p, err := spec.New()
	if err != nil {
		t.Fatal(err)
	}
	core.Run(p, trace.NewReader(trainEvents(500)))
	snap, err := Capture(spec, p, Meta{Session: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ { // second pass overwrites
		if err := WriteFile(path, snap); err != nil {
			t.Fatal(err)
		}
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Spec != spec {
		t.Fatalf("spec %+v, want %+v", got.Spec, spec)
	}
	if !bytes.Equal(got.State, snap.State) {
		t.Fatal("state bytes differ after file round trip")
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 {
		t.Fatalf("directory holds %d entries, want just the snapshot", len(ents))
	}

	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, append(raw, 0), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFile(path); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("trailing byte: err = %v", err)
	}
}

// TestEncodeRejectsOversizedState: Encode refuses to write a file its
// own decoder would reject.
func TestEncodeRejectsOversizedState(t *testing.T) {
	s := &Snapshot{Spec: core.Spec{Kind: "lvp", L1: 4}, State: make([]byte, MaxState+1)}
	if err := s.Encode(&bytes.Buffer{}); !errors.Is(err, ErrSectionSize) {
		t.Fatalf("oversized state: err = %v", err)
	}
}

// TestRestoreRejectsHostileSpec: a decoded spec still goes through
// Spec.New validation, so a snapshot cannot smuggle in an
// unconstructible predictor.
func TestRestoreRejectsHostileSpec(t *testing.T) {
	s := &Snapshot{Spec: core.Spec{Kind: "fcm", L1: 200, L2: 10}, State: nil}
	if _, err := s.Restore(); err == nil {
		t.Fatal("Restore built a predictor from an out-of-range spec")
	}
	s = &Snapshot{Spec: core.Spec{Kind: "nonesuch"}, State: nil}
	if _, err := s.Restore(); err == nil {
		t.Fatal("Restore built a predictor from an unknown kind")
	}
}
