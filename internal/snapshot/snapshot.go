// Package snapshot defines the durable container for predictor state:
// a versioned, length-prefixed, CRC32-checksummed binary format
// ("VPSS") wrapping the raw state bytes that core.Snapshotter exports.
// internal/serve checkpoints sessions through it, cmd/vpserve
// warm-starts from it, and cmd/vpstate inspects it.
//
// # File format (version 1)
//
// All integers are big-endian, matching the VP1 wire protocol.
//
//	header (8 bytes):
//	  magic    u32  0x56505353 ("VPSS")
//	  version  u16  1
//	  reserved u16  0
//	sections, each:
//	  kind     u8
//	  length   u32  payload bytes, bounded by MaxState
//	  payload  length bytes
//	end section:
//	  kind     u8   0xFF
//	  length   u32  4
//	  crc      u32  CRC32-IEEE of every preceding byte (header through
//	                the end section's length field)
//
// Version-1 sections:
//
//	spec  (0x01) kindLen u8, kind bytes, l1 u8, l2 u8, width u8, delay u32
//	meta  (0x02) session u64, predictions u64, hits u64, updates u64
//	state (0x03) raw core.Snapshotter state bytes
//	specx (0x04) tables u8, tag u8, hmin u16, hmax u16 — the tagged-
//	             predictor geometry fields added with the tage kind.
//	             Written only when some field is nonzero, exactly the
//	             "minor extension = new optional section" rule below:
//	             pre-tage readers skip it, pre-tage files omit it.
//
// spec and state are required; meta and specx are optional. Sections
// appear at most once each.
//
// # Versioning rules
//
// Decoders accept any version in [1, Version] — old snapshots keep
// loading forever. Unknown section kinds are skipped (their bytes
// still feed the checksum), so a minor format extension is a new
// section kind: old files stay readable because the section is
// optional, and files written by newer code degrade gracefully under
// older readers. The version number is bumped only when an existing
// section's layout changes incompatibly; a version-(n+1) decoder then
// dispatches on the version it read. Decode must bound every claimed
// length before allocating — the same proto-bounds discipline vplint
// enforces on the VP1 decoders applies here (and to this package, see
// internal/analysis).
package snapshot

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"repro/internal/core"
)

// Format constants.
const (
	magic   = 0x56505353 // "VPSS"
	Version = 1

	// MaxState bounds any single section, and therefore the state blob
	// a decoder will allocate. 256 MiB holds every constructible
	// predictor up to l1≈24; raising it is a format-compatible change.
	MaxState = 1 << 28

	headerSize  = 8
	sectionSize = 5 // kind u8 + length u32
)

// Section kinds.
const (
	secSpec  = 0x01
	secMeta  = 0x02
	secState = 0x03
	secSpecX = 0x04
	secEnd   = 0xFF
)

// Format errors.
var (
	ErrBadMagic       = errors.New("snapshot: bad magic")
	ErrVersion        = errors.New("snapshot: unsupported format version")
	ErrChecksum       = errors.New("snapshot: checksum mismatch")
	ErrSectionSize    = errors.New("snapshot: section exceeds maximum size")
	ErrCorrupt        = errors.New("snapshot: corrupt section structure")
	ErrMissingSection = errors.New("snapshot: required section missing")
)

// Meta carries session-level counters alongside the state, so a
// warm-started server resumes its Stats where the checkpoint left off.
type Meta struct {
	Session     uint64
	Predictions uint64
	Hits        uint64
	Updates     uint64
}

// Snapshot is one decoded predictor checkpoint.
type Snapshot struct {
	Version uint16
	Spec    core.Spec
	Meta    Meta
	State   []byte
}

// Capture freezes p's complete state under the spec that built it.
// It fails if p cannot export its state.
func Capture(spec core.Spec, p core.Predictor, meta Meta) (*Snapshot, error) {
	s, ok := p.(core.Snapshotter)
	if !ok {
		return nil, fmt.Errorf("snapshot: %s does not implement core.Snapshotter", p.Name())
	}
	return &Snapshot{
		Version: Version,
		Spec:    spec,
		Meta:    meta,
		State:   s.AppendState(nil),
	}, nil
}

// Restore builds a fresh predictor from the snapshot's spec and loads
// the captured state into it, leaving it byte-equivalent to the
// predictor Capture saw.
func (s *Snapshot) Restore() (core.Predictor, error) {
	p, err := s.Spec.New()
	if err != nil {
		return nil, fmt.Errorf("snapshot: spec: %w", err)
	}
	sn, ok := p.(core.Snapshotter)
	if !ok {
		return nil, fmt.Errorf("snapshot: %s does not implement core.Snapshotter", p.Name())
	}
	if err := sn.RestoreState(s.State); err != nil {
		return nil, err
	}
	return p, nil
}

// crcWriter checksums everything written through it.
type crcWriter struct {
	w   io.Writer
	crc uint32
}

func (c *crcWriter) Write(p []byte) (int, error) {
	c.crc = crc32.Update(c.crc, crc32.IEEETable, p)
	return c.w.Write(p)
}

// crcReader checksums everything read through it.
type crcReader struct {
	r   io.Reader
	crc uint32
}

func (c *crcReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.crc = crc32.Update(c.crc, crc32.IEEETable, p[:n])
	return n, err
}

// Encode writes the snapshot to w in format version Version. It
// refuses states larger than MaxState — such a file could never be
// decoded again.
func (s *Snapshot) Encode(w io.Writer) error {
	if len(s.State) > MaxState {
		return fmt.Errorf("%w: state is %d bytes", ErrSectionSize, len(s.State))
	}
	spec, err := encodeSpec(s.Spec)
	if err != nil {
		return err
	}
	cw := &crcWriter{w: w}
	var hdr [headerSize]byte
	binary.BigEndian.PutUint32(hdr[0:], magic)
	binary.BigEndian.PutUint16(hdr[4:], Version)
	if _, err := cw.Write(hdr[:]); err != nil {
		return err
	}
	if err := writeSection(cw, secSpec, spec); err != nil {
		return err
	}
	if specx, err := encodeSpecExt(s.Spec); err != nil {
		return err
	} else if specx != nil {
		if err := writeSection(cw, secSpecX, specx); err != nil {
			return err
		}
	}
	if err := writeSection(cw, secMeta, encodeMeta(s.Meta)); err != nil {
		return err
	}
	if err := writeSection(cw, secState, s.State); err != nil {
		return err
	}
	var end [sectionSize]byte
	end[0] = secEnd
	binary.BigEndian.PutUint32(end[1:], 4)
	if _, err := cw.Write(end[:]); err != nil {
		return err
	}
	var sum [4]byte
	binary.BigEndian.PutUint32(sum[:], cw.crc)
	_, err = w.Write(sum[:]) // the checksum does not checksum itself
	return err
}

// writeSection emits one {kind, length, payload} section.
func writeSection(w io.Writer, kind byte, payload []byte) error {
	var hdr [sectionSize]byte
	hdr[0] = kind
	binary.BigEndian.PutUint32(hdr[1:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// Decode reads one snapshot from r with the default MaxState section
// bound.
func Decode(r io.Reader) (*Snapshot, error) {
	return DecodeMax(r, MaxState)
}

// DecodeMax is Decode with an explicit per-section size bound. Every
// claimed length is validated against the bound before any allocation,
// so a hostile header cannot force an oversized buffer.
func DecodeMax(r io.Reader, maxSection int) (*Snapshot, error) {
	if maxSection <= 0 || maxSection > MaxState {
		maxSection = MaxState
	}
	cr := &crcReader{r: r}
	var hdr [headerSize]byte
	if _, err := io.ReadFull(cr, hdr[:]); err != nil {
		return nil, fmt.Errorf("snapshot: reading header: %w", err)
	}
	if binary.BigEndian.Uint32(hdr[0:]) != magic {
		return nil, ErrBadMagic
	}
	version := binary.BigEndian.Uint16(hdr[4:])
	if version == 0 || version > Version {
		return nil, fmt.Errorf("%w: version %d (this build reads 1..%d)", ErrVersion, version, Version)
	}
	if binary.BigEndian.Uint16(hdr[6:]) != 0 {
		return nil, fmt.Errorf("%w: nonzero reserved header field", ErrCorrupt)
	}

	s := &Snapshot{Version: version}
	var ext specExt
	seen := make(map[byte]bool)
	for {
		var sh [sectionSize]byte
		if _, err := io.ReadFull(cr, sh[:]); err != nil {
			return nil, fmt.Errorf("snapshot: reading section header: %w", err)
		}
		kind := sh[0]
		length := binary.BigEndian.Uint32(sh[1:])
		if kind == secEnd {
			if length != 4 {
				return nil, fmt.Errorf("%w: end section length %d", ErrCorrupt, length)
			}
			want := cr.crc
			var sum [4]byte
			if _, err := io.ReadFull(r, sum[:]); err != nil {
				return nil, fmt.Errorf("snapshot: reading checksum: %w", err)
			}
			if binary.BigEndian.Uint32(sum[:]) != want {
				return nil, ErrChecksum
			}
			break
		}
		if uint64(length) > uint64(maxSection) {
			return nil, fmt.Errorf("%w: section %#x claims %d bytes (bound %d)", ErrSectionSize, kind, length, maxSection)
		}
		if seen[kind] {
			return nil, fmt.Errorf("%w: duplicate section %#x", ErrCorrupt, kind)
		}
		seen[kind] = true
		switch kind {
		case secSpec, secMeta, secState, secSpecX:
			payload := make([]byte, length)
			if _, err := io.ReadFull(cr, payload); err != nil {
				return nil, fmt.Errorf("snapshot: reading %d-byte section %#x: %w", length, kind, err)
			}
			var err error
			switch kind {
			case secSpec:
				s.Spec, err = decodeSpec(payload)
			case secMeta:
				s.Meta, err = decodeMeta(payload)
			case secState:
				s.State = payload
			case secSpecX:
				ext, err = decodeSpecExt(payload)
			}
			if err != nil {
				return nil, err
			}
		default:
			// Unknown kind: a newer writer's optional section. Skip its
			// bytes (still checksummed) without materializing them.
			if _, err := io.CopyN(io.Discard, cr, int64(length)); err != nil {
				return nil, fmt.Errorf("snapshot: skipping %d-byte section %#x: %w", length, kind, err)
			}
		}
	}
	if !seen[secSpec] {
		return nil, fmt.Errorf("%w: spec", ErrMissingSection)
	}
	if !seen[secState] {
		return nil, fmt.Errorf("%w: state", ErrMissingSection)
	}
	// The extension section merges after the loop, so its effect does
	// not depend on section order.
	s.Spec.Tables, s.Spec.Tag = ext.tables, ext.tag
	s.Spec.HistMin, s.Spec.HistMax = ext.hmin, ext.hmax
	return s, nil
}

// specExt is the decoded 0x04 section: the Spec fields that postdate
// the version-1 spec layout.
type specExt struct {
	tables, tag, hmin, hmax uint
}

// encodeSpecExt serializes the extended geometry fields, or returns
// nil when all are zero (the section is omitted and the file stays
// readable by pre-tage builds).
func encodeSpecExt(spec core.Spec) ([]byte, error) {
	if spec.Tables == 0 && spec.Tag == 0 && spec.HistMin == 0 && spec.HistMax == 0 {
		return nil, nil
	}
	if spec.Tables > math.MaxUint8 || spec.Tag > math.MaxUint8 ||
		spec.HistMin > math.MaxUint16 || spec.HistMax > math.MaxUint16 {
		return nil, fmt.Errorf("%w: spec extension field out of field width", ErrCorrupt)
	}
	b := make([]byte, 0, 6)
	b = append(b, byte(spec.Tables), byte(spec.Tag))
	b = binary.BigEndian.AppendUint16(b, uint16(spec.HistMin))
	return binary.BigEndian.AppendUint16(b, uint16(spec.HistMax)), nil
}

// decodeSpecExt parses a spec-extension section.
func decodeSpecExt(p []byte) (specExt, error) {
	if len(p) != 6 {
		return specExt{}, fmt.Errorf("%w: spec extension section is %d bytes, want 6", ErrCorrupt, len(p))
	}
	return specExt{
		tables: uint(p[0]),
		tag:    uint(p[1]),
		hmin:   uint(binary.BigEndian.Uint16(p[2:])),
		hmax:   uint(binary.BigEndian.Uint16(p[4:])),
	}, nil
}

// encodeSpec serializes a core.Spec. The numeric fields are validated
// against the format's field widths; Spec.New enforces the tighter
// semantic ranges at restore time.
func encodeSpec(spec core.Spec) ([]byte, error) {
	if len(spec.Kind) > math.MaxUint8 {
		return nil, fmt.Errorf("%w: predictor kind %d bytes long", ErrCorrupt, len(spec.Kind))
	}
	if spec.L1 > math.MaxUint8 || spec.L2 > math.MaxUint8 || spec.Width > math.MaxUint8 {
		return nil, fmt.Errorf("%w: spec field out of field width", ErrCorrupt)
	}
	if spec.Delay < 0 || int64(spec.Delay) > math.MaxUint32 {
		return nil, fmt.Errorf("%w: spec delay %d", ErrCorrupt, spec.Delay)
	}
	b := make([]byte, 0, 1+len(spec.Kind)+3+4)
	b = append(b, byte(len(spec.Kind)))
	b = append(b, spec.Kind...)
	b = append(b, byte(spec.L1), byte(spec.L2), byte(spec.Width))
	return binary.BigEndian.AppendUint32(b, uint32(spec.Delay)), nil
}

// decodeSpec parses a spec section, length-checking the claimed kind
// string against the bytes that arrived.
func decodeSpec(p []byte) (core.Spec, error) {
	if len(p) < 1 {
		return core.Spec{}, fmt.Errorf("%w: empty spec section", ErrCorrupt)
	}
	kindLen := int(p[0])
	if len(p) != 1+kindLen+3+4 {
		return core.Spec{}, fmt.Errorf("%w: spec section is %d bytes for a %d-byte kind", ErrCorrupt, len(p), kindLen)
	}
	kind := string(p[1 : 1+kindLen])
	rest := p[1+kindLen:]
	return core.Spec{
		Kind:  kind,
		L1:    uint(rest[0]),
		L2:    uint(rest[1]),
		Width: uint(rest[2]),
		Delay: int(binary.BigEndian.Uint32(rest[3:])),
	}, nil
}

// encodeMeta serializes the session counters.
func encodeMeta(m Meta) []byte {
	b := make([]byte, 0, 32)
	b = binary.BigEndian.AppendUint64(b, m.Session)
	b = binary.BigEndian.AppendUint64(b, m.Predictions)
	b = binary.BigEndian.AppendUint64(b, m.Hits)
	return binary.BigEndian.AppendUint64(b, m.Updates)
}

// decodeMeta parses a meta section.
func decodeMeta(p []byte) (Meta, error) {
	if len(p) != 32 {
		return Meta{}, fmt.Errorf("%w: meta section is %d bytes, want 32", ErrCorrupt, len(p))
	}
	return Meta{
		Session:     binary.BigEndian.Uint64(p),
		Predictions: binary.BigEndian.Uint64(p[8:]),
		Hits:        binary.BigEndian.Uint64(p[16:]),
		Updates:     binary.BigEndian.Uint64(p[24:]),
	}, nil
}
