package snapshot

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"testing"

	"repro/internal/core"
	"repro/internal/trace"
)

// FuzzDecodeSnapshot feeds the snapshot decoder arbitrary bytes:
// malformed headers, truncated tables, bad checksums and hostile
// section lengths must surface as errors — never a panic, and never an
// allocation past the decoder's bound. Anything that does decode must
// re-encode, and if its spec and state are coherent the snapshot must
// restore into a live predictor.
func FuzzDecodeSnapshot(f *testing.F) {
	// Seed with a valid snapshot of each predictor family so the fuzzer
	// starts from deep, structurally correct inputs.
	for _, spec := range []core.Spec{
		{Kind: "lvp", L1: 3},
		{Kind: "dfcm", L1: 3, L2: 4},
		{Kind: "hybrid", L1: 3, L2: 4, Delay: 2},
		{Kind: "tage", L1: 3, L2: 3, Tables: 2, Tag: 5, HistMin: 2, HistMax: 8},
	} {
		p, err := spec.New()
		if err != nil {
			f.Fatal(err)
		}
		core.Run(p, trace.NewReader(trainEvents(64)))
		snap, err := Capture(spec, p, Meta{Session: 1, Predictions: 64})
		if err != nil {
			f.Fatal(err)
		}
		var buf bytes.Buffer
		if err := snap.Encode(&buf); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
		if spec.Kind == "tage" {
			// Deep tage-shaped corruptions: a frame truncated inside the
			// spec-extension section, and a checksum-valid frame whose
			// extension claims a table count Spec.New must reject
			// (13 > core.TAGEMaxTables) — that one decodes cleanly and
			// fails only at Restore, exercising the validation seam.
			full := buf.Bytes()
			// Layout: header, spec section (payload 1+len("tage")+3+4 =
			// 12 bytes), then the specx section; its payload starts after
			// that second section header.
			specxPayload := headerSize + sectionSize + 12 + sectionSize
			f.Add(full[:specxPayload+3]) // cut mid-extension
			bad := append([]byte(nil), full...)
			bad[specxPayload] = 13 // tables byte
			binary.BigEndian.PutUint32(bad[len(bad)-4:], crc32.ChecksumIEEE(bad[:len(bad)-4]))
			f.Add(bad)
		}
	}
	f.Add([]byte{})
	f.Add([]byte{0x56, 0x50, 0x53, 0x53, 0x00, 0x01, 0x00, 0x00})

	// The bound keeps a hostile length claim from turning into a giant
	// allocation; real inputs here are tiny.
	const fuzzMax = 1 << 20
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := DecodeMax(bytes.NewReader(data), fuzzMax)
		if err != nil {
			return
		}
		// A decoded snapshot must survive re-encoding...
		var buf bytes.Buffer
		if err := s.Encode(&buf); err != nil {
			t.Fatalf("decoded snapshot failed to re-encode: %v", err)
		}
		// ...and restoring must either build a working predictor or
		// reject the state — it must not panic on fuzzer-shaped state.
		if p, err := s.Restore(); err == nil {
			p.Update(0x1000, 42)
			_ = p.Predict(0x1000)
		}
	})
}
