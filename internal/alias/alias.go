// Package alias implements the paper's aliasing taxonomy (section
// 4.2): every prediction made by a two-level predictor (FCM or DFCM)
// is assigned to exactly one of five categories, checked in priority
// order:
//
//	l1      — some value in the history used to index level-2 was
//	          produced by a different static instruction (level-1
//	          table aliasing),
//	hash    — the complete (unhashed) history recorded at the level-2
//	          entry's last update differs from the current one (hash
//	          aliasing),
//	l2_priv — a private per-instruction level-2 table would have
//	          yielded a different prediction than the shared one,
//	l2_pc   — the level-2 entry was last updated by a different
//	          instruction (but with the same complete history),
//	none    — no aliasing detected.
//
// The analyzer is shadow instrumentation: its predictions are
// bit-identical to the corresponding core.FCM / core.DFCM predictor
// (verified by tests), and the bookkeeping (writer PCs, full
// histories, level-2 tags, private tables) exists only to classify.
package alias

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/hash"
	"repro/internal/trace"
)

// Kind is an aliasing category.
type Kind int

// Categories in the paper's priority order.
const (
	L1 Kind = iota
	Hash
	L2Priv
	L2PC
	None
	NumKinds
)

// String returns the paper's label for the category.
func (k Kind) String() string {
	switch k {
	case L1:
		return "l1"
	case Hash:
		return "hash"
	case L2Priv:
		return "l2_priv"
	case L2PC:
		return "l2_pc"
	case None:
		return "none"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Kinds lists all categories in priority order.
func Kinds() []Kind { return []Kind{L1, Hash, L2Priv, L2PC, None} }

// histItem is one element of a shadow history: the value (or stride,
// for the differential analyzer) and the instruction that produced it.
type histItem struct {
	value uint32
	pc    uint32
}

// l1Entry is the shadow level-1 state for one table entry.
type l1Entry struct {
	last   uint32 // last value (differential mode only)
	hist   uint64 // hashed history, exactly as the real predictor keeps it
	recent []histItem
}

// l2Entry is the shadow level-2 state for one table entry.
type l2Entry struct {
	value    uint32
	tagPC    uint32
	tagHist  []uint32 // complete history recorded at last update
	tagValid bool
}

// Analyzer is an instrumented FCM (differential=false) or DFCM
// (differential=true).
type Analyzer struct {
	differential bool
	l1bits       uint
	h            hash.Func
	order        int
	l1           []l1Entry
	l2           []l2Entry
	priv         []map[uint64]uint32 // per level-1 entry private level-2

	counts [NumKinds]core.Result
}

// New returns an analyzer for a 2^l1bits x 2^l2bits predictor with
// the paper's FS R-5 hash. differential selects DFCM semantics.
func New(l1bits, l2bits uint, differential bool) *Analyzer {
	h := hash.NewFSR5(l2bits)
	return &Analyzer{
		differential: differential,
		l1bits:       l1bits,
		h:            h,
		order:        h.Order(),
		l1:           make([]l1Entry, 1<<l1bits),
		l2:           make([]l2Entry, 1<<l2bits),
		priv:         make([]map[uint64]uint32, 1<<l1bits),
	}
}

// Name identifies the analyzed predictor.
func (a *Analyzer) Name() string {
	if a.differential {
		return fmt.Sprintf("dfcm-2^%d/2^%d (alias analysis)", a.l1bits, len(a.l2))
	}
	return fmt.Sprintf("fcm-2^%d/2^%d (alias analysis)", a.l1bits, len(a.l2))
}

func (a *Analyzer) index(pc uint32) uint32 {
	return (pc >> 2) & uint32((1<<a.l1bits)-1)
}

// Step processes one event: predicts, classifies, scores and updates.
// It returns the category and whether the prediction was correct.
func (a *Analyzer) Step(pc, value uint32) (Kind, bool) {
	i := a.index(pc)
	e := &a.l1[i]
	idx := e.hist
	l2 := &a.l2[idx]

	pred := l2.value
	if a.differential {
		pred += e.last
	}
	correct := pred == value

	kind := a.classify(pc, i, e, l2, idx)
	a.counts[kind].Predictions++
	if correct {
		a.counts[kind].Correct++
	}

	a.update(pc, value, i, e, l2, idx)
	return kind, correct
}

// classify applies the paper's rules in priority order.
func (a *Analyzer) classify(pc, i uint32, e *l1Entry, l2 *l2Entry, idx uint64) Kind {
	// l1: all history values must come from the predicted instruction.
	for _, it := range e.recent {
		if it.pc != pc {
			return L1
		}
	}
	// hash: the complete history must match the one recorded at the
	// level-2 entry. An entry that was never updated cannot match.
	if !l2.tagValid || len(l2.tagHist) != len(e.recent) {
		return Hash
	}
	for k, it := range e.recent {
		if l2.tagHist[k] != it.value {
			return Hash
		}
	}
	// l2_priv: a private level-2 table must agree with the global one.
	// Untrained private entries hold zero, like a real zeroed table.
	var pv uint32
	if p := a.priv[i]; p != nil {
		pv = p[idx]
	}
	if pv != l2.value {
		return L2Priv
	}
	// l2_pc: the entry must have been updated by this instruction.
	if l2.tagPC != pc {
		return L2PC
	}
	return None
}

// update mirrors the real predictor's update and refreshes the shadow
// metadata.
func (a *Analyzer) update(pc, value uint32, i uint32, e *l1Entry, l2 *l2Entry, idx uint64) {
	w := value
	if a.differential {
		w = value - e.last
	}
	// Level-2: store the value/stride, tag with PC and the complete
	// history that selected this entry.
	l2.value = w
	l2.tagPC = pc
	l2.tagHist = l2.tagHist[:0]
	for _, it := range e.recent {
		l2.tagHist = append(l2.tagHist, it.value)
	}
	l2.tagValid = true
	// Private level-2.
	if a.priv[i] == nil {
		a.priv[i] = make(map[uint64]uint32)
	}
	a.priv[i][idx] = w
	// Level-1: append to history (hashed and complete), keep order items.
	e.hist = a.h.Update(e.hist, uint64(w))
	e.recent = append(e.recent, histItem{value: w, pc: pc})
	if len(e.recent) > a.order {
		copy(e.recent, e.recent[1:])
		e.recent = e.recent[:a.order]
	}
	if a.differential {
		e.last = value
	}
}

// Run classifies an entire trace.
func (a *Analyzer) Run(src trace.Source) {
	for {
		e, more := src.Next()
		if !more {
			return
		}
		a.Step(e.PC, e.Value)
	}
}

// Counts returns the per-category results (predictions and correct
// counts) accumulated so far.
func (a *Analyzer) Counts() [NumKinds]core.Result { return a.counts }

// Total returns the overall result across categories.
func (a *Analyzer) Total() core.Result {
	var t core.Result
	for _, c := range a.counts {
		t.Add(c)
	}
	return t
}
