package alias

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/progs"
	"repro/internal/trace"
)

func TestKindStrings(t *testing.T) {
	want := []string{"l1", "hash", "l2_priv", "l2_pc", "none"}
	for i, k := range Kinds() {
		if k.String() != want[i] {
			t.Errorf("kind %d = %q, want %q", i, k, want[i])
		}
	}
	if Kind(99).String() == "" {
		t.Error("out-of-range kind should still format")
	}
}

// mixedTrace builds a workload with strides, context patterns,
// interfering instructions and noise.
func mixedTrace(n int, seed int64) trace.Trace {
	rng := rand.New(rand.NewSource(seed))
	pattern := []uint32{5, 19, 3, 200, 42, 7}
	var tr trace.Trace
	for i := 0; i < n; i++ {
		for k := 0; k < 12; k++ {
			pc := uint32(0x1000 + 4*k)
			var v uint32
			switch k % 4 {
			case 0:
				v = uint32(i * (k + 1))
			case 1:
				v = pattern[(i+k)%len(pattern)]
			case 2:
				v = 77
			default:
				v = rng.Uint32() >> 16
			}
			tr = append(tr, trace.Event{PC: pc, Value: v})
		}
	}
	return tr
}

func TestAnalyzerMatchesCorePredictor(t *testing.T) {
	// The analyzer's predict/update must be bit-identical to the
	// production predictors on an identical trace.
	tr := mixedTrace(4000, 5)
	for _, differential := range []bool{false, true} {
		var ref core.Predictor
		if differential {
			ref = core.NewDFCM(8, 10)
		} else {
			ref = core.NewFCM(8, 10)
		}
		an := New(8, 10, differential)
		var refRes, anRes core.Result
		for _, e := range tr {
			refRes.Predictions++
			if ref.Predict(e.PC) == e.Value {
				refRes.Correct++
			}
			ref.Update(e.PC, e.Value)
			_, ok := an.Step(e.PC, e.Value)
			anRes.Predictions++
			if ok {
				anRes.Correct++
			}
		}
		if refRes != anRes {
			t.Errorf("differential=%v: analyzer %+v != core %+v", differential, anRes, refRes)
		}
		if an.Total() != anRes {
			t.Errorf("Total() = %+v, want %+v", an.Total(), anRes)
		}
	}
}

func TestCategoriesPartitionPredictions(t *testing.T) {
	an := New(6, 8, true)
	tr := mixedTrace(2000, 9)
	an.Run(trace.NewReader(tr))
	var sum uint64
	for _, c := range an.Counts() {
		sum += c.Predictions
	}
	if sum != uint64(len(tr)) {
		t.Errorf("categories cover %d of %d predictions", sum, len(tr))
	}
}

func TestSingleInstructionNeverL1OrL2PC(t *testing.T) {
	// With one static instruction there is no cross-instruction
	// aliasing: l1 and l2_pc must be empty.
	an := New(6, 8, false)
	for i := 0; i < 3000; i++ {
		an.Step(0x40, uint32(i%7)*13)
	}
	c := an.Counts()
	if c[L1].Predictions != 0 {
		t.Errorf("l1 count = %d, want 0", c[L1].Predictions)
	}
	if c[L2PC].Predictions != 0 {
		t.Errorf("l2_pc count = %d, want 0", c[L2PC].Predictions)
	}
}

func TestL1AliasingDetected(t *testing.T) {
	// Two instructions sharing one level-1 entry (tiny table).
	an := New(0, 12, false) // single L1 entry
	for i := 0; i < 500; i++ {
		an.Step(0x40, uint32(i))
		an.Step(0x44, uint32(1000+i))
	}
	if an.Counts()[L1].Predictions == 0 {
		t.Error("forced level-1 sharing produced no l1 aliasing")
	}
}

func TestL2PCAliasingDetected(t *testing.T) {
	// Two instructions with identical repeating patterns and separate
	// level-1 entries share level-2 contexts: l2_pc events expected,
	// and they should be well predictable (the paper's observation).
	// Adjacent PCs so they get distinct level-1 entries even in a
	// 64-entry table.
	an := New(6, 12, false)
	pattern := []uint32{9, 2, 25, 7, 1}
	for i := 0; i < 4000; i++ {
		v := pattern[i%len(pattern)]
		an.Step(0x100, v)
		an.Step(0x104, v)
	}
	c := an.Counts()
	if c[L2PC].Predictions == 0 {
		t.Fatal("identical patterns on two PCs produced no l2_pc aliasing")
	}
	if acc := c[L2PC].Accuracy(); acc < 0.9 {
		t.Errorf("l2_pc accuracy = %.3f; aliasing between identical patterns should be benign", acc)
	}
}

func TestHashAliasingLowAccuracy(t *testing.T) {
	// On a benchmark trace, hash-aliased predictions must be much
	// less accurate than non-aliased ones (paper Figure 12).
	tr, err := progs.TraceFor("li", 400_000)
	if err != nil {
		t.Fatal(err)
	}
	an := New(10, 8, false) // small L2 to force hash pressure
	an.Run(trace.NewReader(tr))
	c := an.Counts()
	if c[Hash].Predictions == 0 {
		t.Fatal("no hash aliasing on a small level-2 table")
	}
	hashAcc := c[Hash].Accuracy()
	noneAcc := c[None].Accuracy()
	if c[None].Predictions > 100 && hashAcc > noneAcc-0.1 {
		t.Errorf("hash accuracy %.3f not clearly below none accuracy %.3f", hashAcc, noneAcc)
	}
}

func TestDFCMShiftsAliasMixTowardL2PC(t *testing.T) {
	// The paper's Figure 13 observation: DFCM maps same-stride
	// patterns from different instructions to the same entries, so
	// l2_pc grows relative to FCM.
	var tr trace.Trace
	for i := 0; i < 3000; i++ {
		for k := 0; k < 8; k++ {
			// Eight instructions, all stride 3, different bases.
			tr = append(tr, trace.Event{PC: uint32(0x1000 + 4*k), Value: uint32(k*100000 + i*3)})
		}
	}
	fcm := New(8, 10, false)
	fcm.Run(trace.NewReader(tr))
	dfcm := New(8, 10, true)
	dfcm.Run(trace.NewReader(tr))
	f := float64(fcm.Counts()[L2PC].Predictions) / float64(len(tr))
	d := float64(dfcm.Counts()[L2PC].Predictions) / float64(len(tr))
	if d <= f {
		t.Errorf("l2_pc fraction: dfcm %.3f should exceed fcm %.3f on shared-stride workload", d, f)
	}
}

func TestName(t *testing.T) {
	if New(4, 8, false).Name() == New(4, 8, true).Name() {
		t.Error("names should distinguish FCM and DFCM analyzers")
	}
}
