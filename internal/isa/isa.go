// Package isa defines MR32, the 32-bit RISC instruction set executed
// by this repository's functional simulator (internal/vm) and produced
// by its assembler (internal/asm).
//
// MR32 stands in for the MIPS (PISA) target that the paper's
// SimpleScalar 2.0 toolchain simulates: a classic load/store ISA with
// 32 general registers, HI/LO multiply/divide registers, MIPS-I-style
// fixed 32-bit encodings and the usual three formats (R, I, J). Two
// deliberate simplifications, documented here and in DESIGN.md, do not
// affect value-prediction behaviour: there are no branch delay slots,
// and there is no floating point (the paper predicts only integer
// register values and evaluates only SPECint).
package isa

import "fmt"

// Register numbers and their conventional (MIPS o32) names.
const (
	RegZero = 0 // hardwired zero
	RegAT   = 1 // assembler temporary
	RegV0   = 2 // results / syscall numbers
	RegV1   = 3
	RegA0   = 4 // arguments
	RegA1   = 5
	RegA2   = 6
	RegA3   = 7
	RegT0   = 8 // caller-saved temporaries
	RegT1   = 9
	RegT2   = 10
	RegT3   = 11
	RegT4   = 12
	RegT5   = 13
	RegT6   = 14
	RegT7   = 15
	RegS0   = 16 // callee-saved
	RegS1   = 17
	RegS2   = 18
	RegS3   = 19
	RegS4   = 20
	RegS5   = 21
	RegS6   = 22
	RegS7   = 23
	RegT8   = 24
	RegT9   = 25
	RegK0   = 26
	RegK1   = 27
	RegGP   = 28 // global pointer
	RegSP   = 29 // stack pointer
	RegFP   = 30 // frame pointer
	RegRA   = 31 // return address
)

// NumRegs is the number of general-purpose registers.
const NumRegs = 32

// RegNames maps register numbers to their conventional names
// (without the leading '$').
var RegNames = [NumRegs]string{
	"zero", "at", "v0", "v1", "a0", "a1", "a2", "a3",
	"t0", "t1", "t2", "t3", "t4", "t5", "t6", "t7",
	"s0", "s1", "s2", "s3", "s4", "s5", "s6", "s7",
	"t8", "t9", "k0", "k1", "gp", "sp", "fp", "ra",
}

// RegByName resolves a register name (without '$'), either symbolic
// ("t0") or numeric ("8"), to its number.
func RegByName(name string) (int, bool) {
	for i, n := range RegNames {
		if n == name {
			return i, true
		}
	}
	var r int
	if _, err := fmt.Sscanf(name, "%d", &r); err == nil && r >= 0 && r < NumRegs {
		return r, true
	}
	return 0, false
}

// Opcode field values (bits 31:26).
const (
	OpSpecial = 0x00 // R-type; operation selected by the funct field
	OpRegImm  = 0x01 // bltz/bgez; selected by the rt field
	OpJ       = 0x02
	OpJAL     = 0x03
	OpBEQ     = 0x04
	OpBNE     = 0x05
	OpBLEZ    = 0x06
	OpBGTZ    = 0x07
	OpADDI    = 0x08
	OpADDIU   = 0x09
	OpSLTI    = 0x0a
	OpSLTIU   = 0x0b
	OpANDI    = 0x0c
	OpORI     = 0x0d
	OpXORI    = 0x0e
	OpLUI     = 0x0f
	OpLB      = 0x20
	OpLH      = 0x21
	OpLW      = 0x23
	OpLBU     = 0x24
	OpLHU     = 0x25
	OpSB      = 0x28
	OpSH      = 0x29
	OpSW      = 0x2b
)

// Funct field values for OpSpecial (bits 5:0).
const (
	FnSLL     = 0x00
	FnSRL     = 0x02
	FnSRA     = 0x03
	FnSLLV    = 0x04
	FnSRLV    = 0x06
	FnSRAV    = 0x07
	FnJR      = 0x08
	FnJALR    = 0x09
	FnSYSCALL = 0x0c
	FnMFHI    = 0x10
	FnMTHI    = 0x11
	FnMFLO    = 0x12
	FnMTLO    = 0x13
	FnMULT    = 0x18
	FnMULTU   = 0x19
	FnDIV     = 0x1a
	FnDIVU    = 0x1b
	FnADD     = 0x20
	FnADDU    = 0x21
	FnSUB     = 0x22
	FnSUBU    = 0x23
	FnAND     = 0x24
	FnOR      = 0x25
	FnXOR     = 0x26
	FnNOR     = 0x27
	FnSLT     = 0x2a
	FnSLTU    = 0x2b
)

// rt field values for OpRegImm.
const (
	RtBLTZ = 0x00
	RtBGEZ = 0x01
)

// Inst is a decoded MR32 instruction. Fields mirror the encoding; not
// all fields are meaningful for every format.
type Inst struct {
	Op     uint32 // bits 31:26
	Rs     int    // bits 25:21
	Rt     int    // bits 20:16
	Rd     int    // bits 15:11
	Shamt  uint32 // bits 10:6
	Funct  uint32 // bits 5:0
	Imm    uint32 // bits 15:0 (use SImm for sign-extension)
	Target uint32 // bits 25:0 (J format)
}

// SImm returns the I-format immediate sign-extended to 32 bits.
func (in Inst) SImm() uint32 { return uint32(int32(int16(in.Imm))) }

// Decode splits a raw instruction word into its fields.
func Decode(word uint32) Inst {
	return Inst{
		Op:     word >> 26,
		Rs:     int(word >> 21 & 0x1f),
		Rt:     int(word >> 16 & 0x1f),
		Rd:     int(word >> 11 & 0x1f),
		Shamt:  word >> 6 & 0x1f,
		Funct:  word & 0x3f,
		Imm:    word & 0xffff,
		Target: word & 0x3ffffff,
	}
}

// EncodeR builds an R-format word.
func EncodeR(funct uint32, rd, rs, rt int, shamt uint32) uint32 {
	return uint32(rs&0x1f)<<21 | uint32(rt&0x1f)<<16 | uint32(rd&0x1f)<<11 |
		(shamt&0x1f)<<6 | funct&0x3f
}

// EncodeI builds an I-format word.
func EncodeI(op uint32, rt, rs int, imm uint32) uint32 {
	return op<<26 | uint32(rs&0x1f)<<21 | uint32(rt&0x1f)<<16 | imm&0xffff
}

// EncodeJ builds a J-format word.
func EncodeJ(op uint32, target uint32) uint32 {
	return op<<26 | target&0x3ffffff
}

// Standard memory layout (addresses chosen to match the MIPS
// conventions SimpleScalar also uses).
const (
	TextBase  = 0x00400000 // program text
	DataBase  = 0x10000000 // static data; heap grows upward after it
	StackBase = 0x7ffff000 // initial stack pointer; stack grows down
)

// Syscall numbers (passed in $v0), a subset of the SPIM/SimpleScalar
// convention.
const (
	SysPrintInt = 1  // print $a0 as a signed decimal
	SysPrintStr = 4  // print the NUL-terminated string at $a0
	SysSbrk     = 9  // grow the heap by $a0 bytes; old break in $v0
	SysExit     = 10 // terminate the program
	SysPutChar  = 11 // print the low byte of $a0
)
