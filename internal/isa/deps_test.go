package isa

import (
	"testing"
	"testing/quick"
)

func TestDecodeDepsAllOps(t *testing.T) {
	cases := []struct {
		name string
		word uint32
		want Deps
	}{
		{"nop", 0, Deps{Src1: -1, Src2: -1, Dest: -1, Dest2: -1}},
		{"sll", EncodeR(FnSLL, RegT0, 0, RegT1, 3),
			Deps{Src1: RegT1, Src2: -1, Dest: RegT0, Dest2: -1, Predictable: true}},
		{"sllv", EncodeR(FnSLLV, RegT0, RegT2, RegT1, 0),
			Deps{Src1: RegT1, Src2: RegT2, Dest: RegT0, Dest2: -1, Predictable: true}},
		{"addu", EncodeR(FnADDU, RegT0, RegT1, RegT2, 0),
			Deps{Src1: RegT1, Src2: RegT2, Dest: RegT0, Dest2: -1, Predictable: true}},
		{"slt", EncodeR(FnSLT, RegT0, RegT1, RegT2, 0),
			Deps{Src1: RegT1, Src2: RegT2, Dest: RegT0, Dest2: -1, Predictable: true}},
		{"jr", EncodeR(FnJR, 0, RegRA, 0, 0),
			Deps{Src1: RegRA, Src2: -1, Dest: -1, Dest2: -1, Branch: true}},
		{"jalr", EncodeR(FnJALR, RegRA, RegT0, 0, 0),
			Deps{Src1: RegT0, Src2: -1, Dest: RegRA, Dest2: -1, Branch: true}},
		{"syscall", EncodeR(FnSYSCALL, 0, 0, 0, 0),
			Deps{Src1: RegV0, Src2: RegA0, Dest: RegV0, Dest2: -1, Syscall: true}},
		{"mfhi", EncodeR(FnMFHI, RegT0, 0, 0, 0),
			Deps{Src1: RegHI, Src2: -1, Dest: RegT0, Dest2: -1, Predictable: true}},
		{"mtlo", EncodeR(FnMTLO, 0, RegT0, 0, 0),
			Deps{Src1: RegT0, Src2: -1, Dest: RegLO, Dest2: -1, Predictable: true}},
		{"mult", EncodeR(FnMULT, 0, RegT0, RegT1, 0),
			Deps{Src1: RegT0, Src2: RegT1, Dest: RegLO, Dest2: RegHI, Predictable: true}},
		{"divu", EncodeR(FnDIVU, 0, RegT0, RegT1, 0),
			Deps{Src1: RegT0, Src2: RegT1, Dest: RegLO, Dest2: RegHI, Predictable: true}},
		{"bltz", EncodeI(OpRegImm, RtBLTZ, RegA0, 4),
			Deps{Src1: RegA0, Src2: -1, Dest: -1, Dest2: -1, Branch: true}},
		{"j", EncodeJ(OpJ, 4), Deps{Src1: -1, Src2: -1, Dest: -1, Dest2: -1, Branch: true}},
		{"jal", EncodeJ(OpJAL, 4),
			Deps{Src1: -1, Src2: -1, Dest: RegRA, Dest2: -1, Branch: true}},
		{"beq", EncodeI(OpBEQ, RegT1, RegT0, 4),
			Deps{Src1: RegT0, Src2: RegT1, Dest: -1, Dest2: -1, Branch: true}},
		{"bgtz", EncodeI(OpBGTZ, 0, RegT0, 4),
			Deps{Src1: RegT0, Src2: -1, Dest: -1, Dest2: -1, Branch: true}},
		{"lui", EncodeI(OpLUI, RegT0, 0, 9),
			Deps{Src1: -1, Src2: -1, Dest: RegT0, Dest2: -1, Predictable: true}},
		{"lw", EncodeI(OpLW, RegT0, RegSP, 4),
			Deps{Src1: RegSP, Src2: -1, Dest: RegT0, Dest2: -1, Load: true, Predictable: true}},
		{"sb", EncodeI(OpSB, RegT0, RegSP, 4),
			Deps{Src1: RegSP, Src2: RegT0, Dest: -1, Dest2: -1, Store: true}},
		{"addiu", EncodeI(OpADDIU, RegT0, RegT1, 4),
			Deps{Src1: RegT1, Src2: -1, Dest: RegT0, Dest2: -1, Predictable: true}},
		{"addiu to $zero", EncodeI(OpADDIU, RegZero, RegT1, 4),
			Deps{Src1: RegT1, Src2: -1, Dest: -1, Dest2: -1}},
		{"andi", EncodeI(OpANDI, RegT0, RegT1, 4),
			Deps{Src1: RegT1, Src2: -1, Dest: RegT0, Dest2: -1, Predictable: true}},
	}
	for _, c := range cases {
		if got := DecodeDeps(c.word); got != c.want {
			t.Errorf("%s: DecodeDeps = %+v, want %+v", c.name, got, c.want)
		}
	}
}

func TestDecodeDepsInvariants(t *testing.T) {
	prop := func(word uint32) bool {
		d := DecodeDeps(word)
		// Registers are always in range or -1.
		for _, r := range []int8{d.Src1, d.Src2, d.Dest, d.Dest2} {
			if r < -1 || int(r) >= NumDataflowRegs {
				return false
			}
		}
		// Predictable implies a register result and no control flow.
		if d.Predictable && (d.Dest < 0 || d.Branch || d.Syscall) {
			return false
		}
		// $zero is never a destination.
		if d.Dest == 0 || d.Dest2 == 0 {
			return false
		}
		// Dest2 only appears together with Dest (mult/div).
		if d.Dest2 >= 0 && d.Dest < 0 {
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}
