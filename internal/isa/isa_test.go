package isa

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestDecodeFieldsQuick(t *testing.T) {
	// Decode must slice the word into non-overlapping fields whose
	// recombination reproduces the word.
	prop := func(w uint32) bool {
		in := Decode(w)
		rebuilt := in.Op<<26 | uint32(in.Rs)<<21 | uint32(in.Rt)<<16 |
			uint32(in.Rd)<<11 | in.Shamt<<6 | in.Funct
		return rebuilt == w &&
			in.Imm == w&0xffff &&
			in.Target == w&0x3ffffff
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestEncodeRDecodeRoundTripQuick(t *testing.T) {
	prop := func(funct uint32, rd, rs, rt uint8, shamt uint32) bool {
		f, d, s, tt, sh := funct&0x3f, int(rd&0x1f), int(rs&0x1f), int(rt&0x1f), shamt&0x1f
		in := Decode(EncodeR(f, d, s, tt, sh))
		return in.Op == OpSpecial && in.Funct == f && in.Rd == d &&
			in.Rs == s && in.Rt == tt && in.Shamt == sh
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestEncodeIDecodeRoundTripQuick(t *testing.T) {
	prop := func(rt, rs uint8, imm uint16) bool {
		in := Decode(EncodeI(OpADDIU, int(rt&0x1f), int(rs&0x1f), uint32(imm)))
		return in.Op == OpADDIU && in.Rt == int(rt&0x1f) &&
			in.Rs == int(rs&0x1f) && in.Imm == uint32(imm)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestSImmSignExtension(t *testing.T) {
	cases := map[uint32]uint32{
		0x0000: 0,
		0x7fff: 0x7fff,
		0x8000: 0xffff8000,
		0xffff: 0xffffffff,
	}
	for imm, want := range cases {
		in := Inst{Imm: imm}
		if got := in.SImm(); got != want {
			t.Errorf("SImm(%#x) = %#x, want %#x", imm, got, want)
		}
	}
}

func TestRegNamesBijective(t *testing.T) {
	seen := map[string]bool{}
	for i, n := range RegNames {
		if n == "" || seen[n] {
			t.Fatalf("register name %d (%q) empty or duplicated", i, n)
		}
		seen[n] = true
		got, ok := RegByName(n)
		if !ok || got != i {
			t.Errorf("RegByName(%q) = %d,%v", n, got, ok)
		}
	}
}

func TestDisassembleKnownForms(t *testing.T) {
	cases := []struct {
		word uint32
		pc   uint32
		want string
	}{
		{0, 0x400000, "nop"},
		{EncodeR(FnADDU, RegT0, RegT1, RegT2, 0), 0, "addu $t0, $t1, $t2"},
		{EncodeR(FnSLL, RegT0, 0, RegT1, 4), 0, "sll $t0, $t1, 4"},
		{EncodeR(FnJR, 0, RegRA, 0, 0), 0, "jr $ra"},
		{EncodeR(FnSYSCALL, 0, 0, 0, 0), 0, "syscall"},
		{EncodeR(FnMFLO, RegV0, 0, 0, 0), 0, "mflo $v0"},
		{EncodeR(FnMULT, 0, RegT0, RegT1, 0), 0, "mult $t0, $t1"},
		{EncodeI(OpADDIU, RegT0, RegZero, 0xfffb), 0, "addiu $t0, $zero, -5"},
		{EncodeI(OpORI, RegT0, RegT0, 0xbeef), 0, "ori $t0, $t0, 0xbeef"},
		{EncodeI(OpLUI, RegAT, 0, 0x1000), 0, "lui $at, 0x1000"},
		{EncodeI(OpLW, RegT3, RegSP, 8), 0, "lw $t3, 8($sp)"},
		{EncodeI(OpSW, RegT3, RegGP, 0xfffc), 0, "sw $t3, -4($gp)"},
		{EncodeI(OpBEQ, RegT1, RegT0, 0xffff), 0x400010, "beq $t0, $t1, 0x400010"},
		{EncodeI(OpRegImm, RtBGEZ, RegA0, 2), 0x100, "bgez $a0, 0x10c"},
		{EncodeJ(OpJAL, 0x100005), 0x400000, "jal 0x400014"},
		{0xffffffff, 0, ".word 0xffffffff"},
	}
	for _, c := range cases {
		if got := Disassemble(c.pc, c.word); got != c.want {
			t.Errorf("Disassemble(%#x, %#x) = %q, want %q", c.pc, c.word, got, c.want)
		}
	}
}

func TestDisassembleNeverEmpty(t *testing.T) {
	prop := func(w, pc uint32) bool {
		s := Disassemble(pc&^3, w)
		return s != "" && !strings.Contains(s, "%!")
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestMemoryLayoutSane(t *testing.T) {
	if TextBase >= DataBase || DataBase >= StackBase {
		t.Error("segments out of order")
	}
	if TextBase%4 != 0 || DataBase%4 != 0 || StackBase%4 != 0 {
		t.Error("segment bases misaligned")
	}
}
