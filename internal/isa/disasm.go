package isa

import "fmt"

// Disassemble renders one instruction word at the given address as
// assembler syntax. Branch and jump targets are printed as absolute
// hexadecimal addresses. Unknown encodings render as ".word 0x...".
func Disassemble(pc, word uint32) string {
	in := Decode(word)
	r := func(n int) string { return "$" + RegNames[n] }
	switch in.Op {
	case OpSpecial:
		switch in.Funct {
		case FnSLL:
			if word == 0 {
				return "nop"
			}
			return fmt.Sprintf("sll %s, %s, %d", r(in.Rd), r(in.Rt), in.Shamt)
		case FnSRL:
			return fmt.Sprintf("srl %s, %s, %d", r(in.Rd), r(in.Rt), in.Shamt)
		case FnSRA:
			return fmt.Sprintf("sra %s, %s, %d", r(in.Rd), r(in.Rt), in.Shamt)
		case FnSLLV:
			return fmt.Sprintf("sllv %s, %s, %s", r(in.Rd), r(in.Rt), r(in.Rs))
		case FnSRLV:
			return fmt.Sprintf("srlv %s, %s, %s", r(in.Rd), r(in.Rt), r(in.Rs))
		case FnSRAV:
			return fmt.Sprintf("srav %s, %s, %s", r(in.Rd), r(in.Rt), r(in.Rs))
		case FnJR:
			return fmt.Sprintf("jr %s", r(in.Rs))
		case FnJALR:
			return fmt.Sprintf("jalr %s", r(in.Rs))
		case FnSYSCALL:
			return "syscall"
		case FnMFHI:
			return fmt.Sprintf("mfhi %s", r(in.Rd))
		case FnMFLO:
			return fmt.Sprintf("mflo %s", r(in.Rd))
		case FnMTHI:
			return fmt.Sprintf("mthi %s", r(in.Rs))
		case FnMTLO:
			return fmt.Sprintf("mtlo %s", r(in.Rs))
		case FnMULT:
			return fmt.Sprintf("mult %s, %s", r(in.Rs), r(in.Rt))
		case FnMULTU:
			return fmt.Sprintf("multu %s, %s", r(in.Rs), r(in.Rt))
		case FnDIV:
			return fmt.Sprintf("div2 %s, %s", r(in.Rs), r(in.Rt))
		case FnDIVU:
			return fmt.Sprintf("divu %s, %s", r(in.Rs), r(in.Rt))
		}
		threeReg := map[uint32]string{
			FnADD: "add", FnADDU: "addu", FnSUB: "sub", FnSUBU: "subu",
			FnAND: "and", FnOR: "or", FnXOR: "xor", FnNOR: "nor",
			FnSLT: "slt", FnSLTU: "sltu",
		}
		if m, ok := threeReg[in.Funct]; ok {
			return fmt.Sprintf("%s %s, %s, %s", m, r(in.Rd), r(in.Rs), r(in.Rt))
		}

	case OpRegImm:
		target := pc + 4 + in.SImm()<<2
		switch in.Rt {
		case RtBLTZ:
			return fmt.Sprintf("bltz %s, 0x%x", r(in.Rs), target)
		case RtBGEZ:
			return fmt.Sprintf("bgez %s, 0x%x", r(in.Rs), target)
		}

	case OpJ:
		return fmt.Sprintf("j 0x%x", pc&0xf0000000|in.Target<<2)
	case OpJAL:
		return fmt.Sprintf("jal 0x%x", pc&0xf0000000|in.Target<<2)

	case OpBEQ, OpBNE:
		m := "beq"
		if in.Op == OpBNE {
			m = "bne"
		}
		return fmt.Sprintf("%s %s, %s, 0x%x", m, r(in.Rs), r(in.Rt), pc+4+in.SImm()<<2)
	case OpBLEZ:
		return fmt.Sprintf("blez %s, 0x%x", r(in.Rs), pc+4+in.SImm()<<2)
	case OpBGTZ:
		return fmt.Sprintf("bgtz %s, 0x%x", r(in.Rs), pc+4+in.SImm()<<2)

	case OpADDI, OpADDIU, OpSLTI, OpSLTIU:
		m := map[uint32]string{OpADDI: "addi", OpADDIU: "addiu",
			OpSLTI: "slti", OpSLTIU: "sltiu"}[in.Op]
		return fmt.Sprintf("%s %s, %s, %d", m, r(in.Rt), r(in.Rs), int32(in.SImm()))
	case OpANDI, OpORI, OpXORI:
		m := map[uint32]string{OpANDI: "andi", OpORI: "ori", OpXORI: "xori"}[in.Op]
		return fmt.Sprintf("%s %s, %s, 0x%x", m, r(in.Rt), r(in.Rs), in.Imm)
	case OpLUI:
		return fmt.Sprintf("lui %s, 0x%x", r(in.Rt), in.Imm)

	case OpLB, OpLH, OpLW, OpLBU, OpLHU, OpSB, OpSH, OpSW:
		m := map[uint32]string{OpLB: "lb", OpLH: "lh", OpLW: "lw",
			OpLBU: "lbu", OpLHU: "lhu", OpSB: "sb", OpSH: "sh", OpSW: "sw"}[in.Op]
		return fmt.Sprintf("%s %s, %d(%s)", m, r(in.Rt), int32(in.SImm()), r(in.Rs))
	}
	return fmt.Sprintf(".word 0x%08x", word)
}
