package isa

// Dataflow dependence metadata, used by the ILP limit study
// (internal/ilp). Deps is purely static: it reports which registers an
// instruction reads and writes, derived from the encoding alone.

// Pseudo-register numbers for the multiply/divide unit, so dataflow
// analyses can track HI/LO dependences uniformly with the 32 general
// registers.
const (
	RegHI = 32
	RegLO = 33
	// NumDataflowRegs is the size of a dependence-tracking register
	// file covering the general registers plus HI and LO.
	NumDataflowRegs = 34
)

// Deps describes the register dataflow of one instruction.
type Deps struct {
	// Src1, Src2 are read registers, -1 when unused.
	Src1, Src2 int8
	// Dest and Dest2 are written registers, -1 when unused. Dest2 is
	// only used by mult/div (HI and LO).
	Dest, Dest2 int8
	// Load and Store mark memory accesses.
	Load, Store bool
	// Branch marks control-flow instructions (branches and jumps).
	Branch bool
	// Syscall marks system calls (treated as serializing by
	// consumers that care).
	Syscall bool
	// Predictable reports whether the instruction falls under the
	// paper's value-prediction filter: it produces an integer
	// register value (loads included) and is not a branch or jump.
	// mult/div count once (the paper predicts one of the two result
	// registers).
	Predictable bool
}

// DecodeDeps computes the dependence metadata of an instruction word.
func DecodeDeps(word uint32) Deps {
	in := Decode(word)
	d := Deps{Src1: -1, Src2: -1, Dest: -1, Dest2: -1}
	switch in.Op {
	case OpSpecial:
		switch in.Funct {
		case FnSLL, FnSRL, FnSRA:
			if word == 0 { // canonical nop
				return d
			}
			d.Src1 = int8(in.Rt)
			d.Dest = int8(in.Rd)
		case FnSLLV, FnSRLV, FnSRAV:
			d.Src1 = int8(in.Rt)
			d.Src2 = int8(in.Rs)
			d.Dest = int8(in.Rd)
		case FnJR:
			d.Src1 = int8(in.Rs)
			d.Branch = true
		case FnJALR:
			d.Src1 = int8(in.Rs)
			d.Dest = int8(in.Rd)
			d.Branch = true
		case FnSYSCALL:
			d.Syscall = true
			d.Src1 = RegV0
			d.Src2 = RegA0
			d.Dest = RegV0
		case FnMFHI:
			d.Src1 = RegHI
			d.Dest = int8(in.Rd)
		case FnMFLO:
			d.Src1 = RegLO
			d.Dest = int8(in.Rd)
		case FnMTHI:
			d.Src1 = int8(in.Rs)
			d.Dest = RegHI
		case FnMTLO:
			d.Src1 = int8(in.Rs)
			d.Dest = RegLO
		case FnMULT, FnMULTU, FnDIV, FnDIVU:
			d.Src1 = int8(in.Rs)
			d.Src2 = int8(in.Rt)
			d.Dest = RegLO
			d.Dest2 = RegHI
		default:
			d.Src1 = int8(in.Rs)
			d.Src2 = int8(in.Rt)
			d.Dest = int8(in.Rd)
		}
	case OpRegImm:
		d.Src1 = int8(in.Rs)
		d.Branch = true
	case OpJ:
		d.Branch = true
	case OpJAL:
		d.Dest = RegRA
		d.Branch = true
	case OpBEQ, OpBNE:
		d.Src1 = int8(in.Rs)
		d.Src2 = int8(in.Rt)
		d.Branch = true
	case OpBLEZ, OpBGTZ:
		d.Src1 = int8(in.Rs)
		d.Branch = true
	case OpLUI:
		d.Dest = int8(in.Rt)
	case OpLB, OpLH, OpLW, OpLBU, OpLHU:
		d.Src1 = int8(in.Rs)
		d.Dest = int8(in.Rt)
		d.Load = true
	case OpSB, OpSH, OpSW:
		d.Src1 = int8(in.Rs)
		d.Src2 = int8(in.Rt)
		d.Store = true
	default: // I-format ALU: addi(u)/slti(u)/andi/ori/xori
		d.Src1 = int8(in.Rs)
		d.Dest = int8(in.Rt)
	}
	// Writes to $zero are discarded by the machine.
	if d.Dest == 0 {
		d.Dest = -1
	}
	// The paper's filter: integer register producers, excluding
	// branches/jumps (the $ra write of jal/jalr is a jump side
	// effect) and syscall results.
	d.Predictable = d.Dest >= 0 && !d.Branch && !d.Syscall
	return d
}
