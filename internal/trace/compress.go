package trace

import (
	"bufio"
	"compress/flate"
	"fmt"
	"io"
)

// Compressed container: "VTRZ" magic followed by a DEFLATE stream
// holding a complete VTR1 payload. The delta encoding of VTR1 makes
// the flate layer very effective (typically another 2-4x) because
// repeated loop bodies produce repeated delta sequences.

const zMagic = "VTRZ"

// WriteCompressed serializes t as a flate-compressed VTR1 stream.
func WriteCompressed(w io.Writer, t Trace) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(zMagic); err != nil {
		return err
	}
	fw, err := flate.NewWriter(bw, flate.DefaultCompression)
	if err != nil {
		return err
	}
	if err := Write(fw, t); err != nil {
		return err
	}
	if err := fw.Close(); err != nil {
		return err
	}
	return bw.Flush()
}

// ReadAuto reads a trace in either the plain VTR1 or the compressed
// VTRZ container, detecting the format from the magic.
func ReadAuto(r io.Reader) (Trace, error) {
	br := bufio.NewReader(r)
	magic, err := br.Peek(4)
	if err != nil {
		return nil, fmt.Errorf("trace: reading magic: %w", err)
	}
	switch string(magic) {
	case zMagic:
		if _, err := br.Discard(4); err != nil {
			return nil, err
		}
		fr := flate.NewReader(br)
		defer fr.Close()
		return Read(fr)
	case fileMagic:
		return Read(br)
	default:
		return nil, ErrBadMagic
	}
}
