package trace

import (
	"bytes"
	"testing"
)

func TestCompressedRoundTrip(t *testing.T) {
	for _, n := range []int{0, 1, 500, 20000} {
		tr := sampleTrace(n, int64(n)+7)
		var buf bytes.Buffer
		if err := WriteCompressed(&buf, tr); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		got, err := ReadAuto(&buf)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if len(got) != len(tr) {
			t.Fatalf("n=%d: %d events, want %d", n, len(got), len(tr))
		}
		for i := range tr {
			if got[i] != tr[i] {
				t.Fatalf("n=%d: event %d differs", n, i)
			}
		}
	}
}

func TestReadAutoHandlesPlain(t *testing.T) {
	tr := sampleTrace(300, 3)
	var buf bytes.Buffer
	if err := Write(&buf, tr); err != nil {
		t.Fatal(err)
	}
	got, err := ReadAuto(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(tr) {
		t.Errorf("plain auto-read lost events: %d vs %d", len(got), len(tr))
	}
}

func TestReadAutoRejectsGarbage(t *testing.T) {
	if _, err := ReadAuto(bytes.NewReader([]byte("JUNKJUNKJUNK"))); err != ErrBadMagic {
		t.Errorf("err = %v, want ErrBadMagic", err)
	}
	if _, err := ReadAuto(bytes.NewReader(nil)); err == nil {
		t.Error("empty input should error")
	}
}

func TestCompressionWins(t *testing.T) {
	// A loopy trace (repeated bodies) must compress well beyond the
	// delta encoding alone.
	var tr Trace
	for i := 0; i < 5000; i++ {
		for k := 0; k < 8; k++ {
			tr = append(tr, Event{PC: uint32(0x1000 + 4*k), Value: uint32(i * (k + 1))})
		}
	}
	var plain, comp bytes.Buffer
	if err := Write(&plain, tr); err != nil {
		t.Fatal(err)
	}
	if err := WriteCompressed(&comp, tr); err != nil {
		t.Fatal(err)
	}
	if comp.Len() >= plain.Len() {
		t.Errorf("compressed %d >= plain %d bytes", comp.Len(), plain.Len())
	}
	t.Logf("plain %.2f B/event, compressed %.2f B/event",
		float64(plain.Len())/float64(len(tr)), float64(comp.Len())/float64(len(tr)))
}
