package trace

import "testing"

func TestSummarizeBasics(t *testing.T) {
	var tr Trace
	// PC 0x100: constant 5 (10 events); PC 0x104: stride 3 (10 events).
	for i := 0; i < 10; i++ {
		tr = append(tr,
			Event{PC: 0x100, Value: 5},
			Event{PC: 0x104, Value: uint32(i * 3)})
	}
	st := Summarize(tr, 5)
	if st.Events != 20 || st.DistinctPCs != 2 {
		t.Fatalf("events=%d pcs=%d", st.Events, st.DistinctPCs)
	}
	// 9 of 20 events are constant-predictable (PC 0x100 after the
	// first); constants are also stride-predictable (stride 0), and
	// the stride PC is stride-predictable from its third event.
	if got := st.ConstantFrac; got != 9.0/20 {
		t.Errorf("ConstantFrac = %v, want %v", got, 9.0/20)
	}
	if got := st.StrideFrac; got != 17.0/20 {
		t.Errorf("StrideFrac = %v, want %v", got, 17.0/20)
	}
	if len(st.TopPCs) != 2 {
		t.Fatalf("TopPCs = %v", st.TopPCs)
	}
	// Tie on count (10 each) resolved by PC.
	if st.TopPCs[0].PC != 0x100 || st.TopPCs[0].Values != 1 {
		t.Errorf("top PC = %+v", st.TopPCs[0])
	}
	if st.TopPCs[1].Values != 10 {
		t.Errorf("stride PC distinct values = %d, want 10", st.TopPCs[1].Values)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	st := Summarize(nil, 3)
	if st.Events != 0 || st.ConstantFrac != 0 || st.StrideFrac != 0 || len(st.TopPCs) != 0 {
		t.Errorf("empty summary: %+v", st)
	}
}

func TestSummarizeTopNTruncates(t *testing.T) {
	var tr Trace
	for pc := uint32(0); pc < 40; pc++ {
		for i := 0; i <= int(pc); i++ {
			tr = append(tr, Event{PC: 0x1000 + pc*4, Value: pc})
		}
	}
	st := Summarize(tr, 3)
	if len(st.TopPCs) != 3 {
		t.Fatalf("TopPCs has %d entries", len(st.TopPCs))
	}
	// Hottest first.
	if st.TopPCs[0].Count < st.TopPCs[1].Count || st.TopPCs[1].Count < st.TopPCs[2].Count {
		t.Error("TopPCs not sorted by count")
	}
	// topN = 0 keeps none.
	if got := Summarize(tr, 0); len(got.TopPCs) != 0 {
		t.Error("topN=0 should keep no PCs")
	}
}
