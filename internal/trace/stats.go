package trace

import "sort"

// Stats summarizes a trace: the shape information a workload engineer
// needs before pointing a predictor at it.
type Stats struct {
	Events      int
	DistinctPCs int
	// TopPCs lists the most frequently executed static instructions.
	TopPCs []PCStat
	// ConstantFrac is the fraction of events equal to the previous
	// value at the same PC (last-value predictable).
	ConstantFrac float64
	// StrideFrac is the fraction of events equal to the previous
	// value plus the previous stride at the same PC (stride
	// predictable, infinite table).
	StrideFrac float64
}

// PCStat is the per-static-instruction slice of the statistics.
type PCStat struct {
	PC     uint32
	Count  int
	Values int // distinct values produced
}

// Summarize computes Stats over a trace, keeping the topN most
// frequent PCs (0 keeps none).
func Summarize(t Trace, topN int) Stats {
	type pcState struct {
		count  int
		last   uint32
		stride uint32
		seen   bool
		values map[uint32]struct{}
	}
	perPC := make(map[uint32]*pcState)
	var constant, stride int
	for _, e := range t {
		s := perPC[e.PC]
		if s == nil {
			s = &pcState{values: make(map[uint32]struct{})}
			perPC[e.PC] = s
		}
		if s.seen {
			if e.Value == s.last {
				constant++
			}
			if e.Value == s.last+s.stride {
				stride++
			}
			s.stride = e.Value - s.last
		}
		s.seen = true
		s.last = e.Value
		s.count++
		if len(s.values) < 1<<16 { // bound memory on adversarial traces
			s.values[e.Value] = struct{}{}
		}
	}
	st := Stats{Events: len(t), DistinctPCs: len(perPC)}
	if len(t) > 0 {
		st.ConstantFrac = float64(constant) / float64(len(t))
		st.StrideFrac = float64(stride) / float64(len(t))
	}
	if topN > 0 {
		for pc, s := range perPC {
			//lint:ignore determinism the total sort below (count desc, PC asc) restores a deterministic order
			st.TopPCs = append(st.TopPCs, PCStat{PC: pc, Count: s.count, Values: len(s.values)})
		}
		sort.Slice(st.TopPCs, func(i, j int) bool {
			if st.TopPCs[i].Count != st.TopPCs[j].Count {
				return st.TopPCs[i].Count > st.TopPCs[j].Count
			}
			return st.TopPCs[i].PC < st.TopPCs[j].PC
		})
		if len(st.TopPCs) > topN {
			st.TopPCs = st.TopPCs[:topN]
		}
	}
	return st
}
