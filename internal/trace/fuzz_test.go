package trace

import (
	"bytes"
	"testing"
)

// FuzzReadAuto checks both trace containers against corrupt input:
// never panic, never return garbage without an error.
func FuzzReadAuto(f *testing.F) {
	tr := sampleTrace(64, 3)
	var plain, comp bytes.Buffer
	if err := Write(&plain, tr); err != nil {
		f.Fatal(err)
	}
	if err := WriteCompressed(&comp, tr); err != nil {
		f.Fatal(err)
	}
	f.Add(plain.Bytes())
	f.Add(comp.Bytes())
	f.Add([]byte("VTR1"))
	f.Add([]byte("VTRZ\x00\x01"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, raw []byte) {
		got, err := ReadAuto(bytes.NewReader(raw))
		if err == nil {
			// A successful parse must re-encode and re-parse to the
			// same events.
			var out bytes.Buffer
			if err := Write(&out, got); err != nil {
				t.Fatalf("re-encode: %v", err)
			}
			again, err := Read(&out)
			if err != nil || len(again) != len(got) {
				t.Fatalf("round trip after fuzz parse: %v", err)
			}
		}
	})
}
