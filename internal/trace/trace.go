// Package trace defines the value-trace substrate shared by the
// simulator, the predictors and the experiment harness.
//
// A trace is a sequence of Events, each recording that the static
// instruction at PC produced the 32-bit integer register value Value.
// This mirrors the paper's methodology: traces are generated on the fly
// by a functional simulator (SimpleScalar sim-safe there, internal/vm
// here) filtered down to integer register-producing instructions,
// including loads and excluding branches and jumps.
//
// The package provides in-memory traces, a compact varint-encoded file
// format, replay helpers, and the delayed-update queue used for the
// paper's section 4.5 experiment.
package trace

// Event is a single predicted instruction: the program counter of the
// static instruction and the integer register value it produced.
// Values are 32-bit, as on the paper's (MIPS) target; predictors widen
// them internally.
type Event struct {
	PC    uint32
	Value uint32
}

// Trace is an in-memory sequence of events.
type Trace []Event

// Source yields trace events one at a time. Next returns the next event
// and true, or a zero Event and false once the source is exhausted.
// Sources are single-use; obtain a fresh one to replay.
type Source interface {
	Next() (Event, bool)
}

// Reader adapts a Trace to a Source.
type Reader struct {
	t Trace
	i int
}

// NewReader returns a Source replaying t from the beginning.
func NewReader(t Trace) *Reader { return &Reader{t: t} }

// Next implements Source.
func (r *Reader) Next() (Event, bool) {
	if r.i >= len(r.t) {
		return Event{}, false
	}
	e := r.t[r.i]
	r.i++
	return e, true
}

// Reset rewinds the reader to the beginning of the trace, so one
// Reader can replay its trace repeatedly (Sources in general are
// single-use; Reader is the exception).
func (r *Reader) Reset() { r.i = 0 }

// Remaining returns the number of events Next has yet to produce.
func (r *Reader) Remaining() int { return len(r.t) - r.i }

// Collect drains src into an in-memory Trace. If max > 0, at most max
// events are collected.
func Collect(src Source, max int) Trace {
	var t Trace
	for {
		e, ok := src.Next()
		if !ok {
			return t
		}
		t = append(t, e)
		if max > 0 && len(t) >= max {
			return t
		}
	}
}

// Limit wraps src so that at most n events are produced.
func Limit(src Source, n int) Source { return &limiter{src: src, left: n} }

type limiter struct {
	src  Source
	left int
}

func (l *limiter) Next() (Event, bool) {
	if l.left <= 0 {
		return Event{}, false
	}
	l.left--
	return l.src.Next()
}

// Concat returns a Source that drains each source in turn.
func Concat(srcs ...Source) Source { return &concat{srcs: srcs} }

type concat struct {
	srcs []Source
}

func (c *concat) Next() (Event, bool) {
	for len(c.srcs) > 0 {
		if e, ok := c.srcs[0].Next(); ok {
			return e, true
		}
		c.srcs = c.srcs[1:]
	}
	return Event{}, false
}

// Func adapts a closure to a Source.
type Func func() (Event, bool)

// Next implements Source.
func (f Func) Next() (Event, bool) { return f() }

// Filter yields only the events of src for which keep returns true.
func Filter(src Source, keep func(Event) bool) Source {
	return Func(func() (Event, bool) {
		for {
			e, ok := src.Next()
			if !ok {
				return Event{}, false
			}
			if keep(e) {
				return e, true
			}
		}
	})
}
