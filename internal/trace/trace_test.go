package trace

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func sampleTrace(n int, seed int64) Trace {
	rng := rand.New(rand.NewSource(seed))
	t := make(Trace, n)
	pc := uint32(0x1000)
	for i := range t {
		if rng.Intn(4) == 0 {
			pc = 0x1000 + uint32(rng.Intn(256))*4
		}
		t[i] = Event{PC: pc, Value: rng.Uint32() >> uint(rng.Intn(24))}
	}
	return t
}

func TestReaderReplaysAll(t *testing.T) {
	tr := sampleTrace(100, 1)
	got := Collect(NewReader(tr), 0)
	if !reflect.DeepEqual(got, tr) {
		t.Error("reader did not replay trace verbatim")
	}
}

func TestReaderExhaustion(t *testing.T) {
	r := NewReader(Trace{{PC: 4, Value: 5}})
	if _, ok := r.Next(); !ok {
		t.Fatal("first Next failed")
	}
	if _, ok := r.Next(); ok {
		t.Error("Next after exhaustion returned ok")
	}
	if _, ok := r.Next(); ok {
		t.Error("repeated Next after exhaustion returned ok")
	}
}

func TestReaderResetRemaining(t *testing.T) {
	tr := sampleTrace(10, 11)
	r := NewReader(tr)
	if got := r.Remaining(); got != 10 {
		t.Fatalf("fresh Remaining = %d, want 10", got)
	}
	for i := 0; i < 4; i++ {
		r.Next()
	}
	if got := r.Remaining(); got != 6 {
		t.Fatalf("Remaining after 4 = %d, want 6", got)
	}
	r.Reset()
	if got := r.Remaining(); got != 10 {
		t.Fatalf("Remaining after Reset = %d, want 10", got)
	}
	if got := Collect(r, 0); !reflect.DeepEqual(got, tr) {
		t.Error("reset reader did not replay the full trace")
	}
	if got := r.Remaining(); got != 0 {
		t.Fatalf("Remaining after drain = %d, want 0", got)
	}
	// Reset after exhaustion replays again.
	r.Reset()
	if got := Collect(r, 0); !reflect.DeepEqual(got, tr) {
		t.Error("second replay after Reset differs")
	}
	// Empty-trace reader: Remaining 0, Reset harmless.
	e := NewReader(nil)
	if e.Remaining() != 0 {
		t.Error("empty reader Remaining != 0")
	}
	e.Reset()
	if _, ok := e.Next(); ok {
		t.Error("empty reader produced an event")
	}
}

func TestCollectMax(t *testing.T) {
	tr := sampleTrace(100, 2)
	if got := Collect(NewReader(tr), 10); len(got) != 10 {
		t.Errorf("Collect(max=10) returned %d events", len(got))
	}
}

func TestLimit(t *testing.T) {
	tr := sampleTrace(50, 3)
	got := Collect(Limit(NewReader(tr), 7), 0)
	if len(got) != 7 {
		t.Errorf("Limit(7) yielded %d events", len(got))
	}
	if !reflect.DeepEqual(got, tr[:7]) {
		t.Error("Limit changed event contents")
	}
	if got := Collect(Limit(NewReader(tr), 0), 0); len(got) != 0 {
		t.Errorf("Limit(0) yielded %d events", len(got))
	}
}

func TestLimitEdgeCases(t *testing.T) {
	// n = 0 must not consume from the underlying source.
	r := NewReader(sampleTrace(5, 21))
	if got := Collect(Limit(r, 0), 0); len(got) != 0 {
		t.Errorf("Limit(0) yielded %d events", len(got))
	}
	if got := r.Remaining(); got != 5 {
		t.Errorf("Limit(0) consumed from source: %d remaining, want 5", got)
	}
	// Negative n behaves as zero.
	if got := Collect(Limit(NewReader(sampleTrace(5, 22)), -3), 0); len(got) != 0 {
		t.Errorf("Limit(-3) yielded %d events", len(got))
	}
	// n beyond the source length yields the whole source, then stops.
	l := Limit(NewReader(sampleTrace(3, 23)), 100)
	if got := Collect(l, 0); len(got) != 3 {
		t.Errorf("Limit(100) over 3 events yielded %d", len(got))
	}
	if _, ok := l.Next(); ok {
		t.Error("exhausted Limit produced an event")
	}
	// Limit over an empty source is empty.
	if got := Collect(Limit(NewReader(nil), 4), 0); len(got) != 0 {
		t.Errorf("Limit over empty source yielded %d events", len(got))
	}
}

func TestConcat(t *testing.T) {
	a, b := sampleTrace(5, 4), sampleTrace(3, 5)
	got := Collect(Concat(NewReader(a), NewReader(b)), 0)
	want := append(append(Trace{}, a...), b...)
	if !reflect.DeepEqual(got, want) {
		t.Error("Concat did not chain sources")
	}
	if got := Collect(Concat(), 0); len(got) != 0 {
		t.Error("empty Concat should be empty")
	}
}

func TestConcatEdgeCases(t *testing.T) {
	a := sampleTrace(4, 31)
	// Empty sources anywhere in the chain are skipped transparently.
	got := Collect(Concat(NewReader(nil), NewReader(a), NewReader(nil), NewReader(nil)), 0)
	if !reflect.DeepEqual(got, a) {
		t.Error("Concat with interleaved empty sources lost or reordered events")
	}
	// All-empty chain terminates.
	c := Concat(NewReader(nil), NewReader(nil))
	if _, ok := c.Next(); ok {
		t.Error("all-empty Concat produced an event")
	}
	// Next after exhaustion stays exhausted.
	if _, ok := c.Next(); ok {
		t.Error("exhausted Concat produced an event")
	}
	// Concat of Limits composes.
	both := Concat(Limit(NewReader(a), 2), Limit(NewReader(a), 1))
	if got := Collect(both, 0); len(got) != 3 {
		t.Errorf("Concat(Limit(2), Limit(1)) yielded %d events", len(got))
	}
}

func TestFuncSource(t *testing.T) {
	n := 0
	src := Func(func() (Event, bool) {
		if n >= 3 {
			return Event{}, false
		}
		n++
		return Event{PC: uint32(n), Value: uint32(n * 10)}, true
	})
	got := Collect(src, 0)
	if len(got) != 3 || got[2].Value != 30 {
		t.Errorf("Func source yielded %v", got)
	}
}

func TestFileRoundTrip(t *testing.T) {
	for _, n := range []int{0, 1, 17, 1000} {
		tr := sampleTrace(n, int64(n))
		var buf bytes.Buffer
		if err := Write(&buf, tr); err != nil {
			t.Fatalf("n=%d: Write: %v", n, err)
		}
		got, err := Read(&buf)
		if err != nil {
			t.Fatalf("n=%d: Read: %v", n, err)
		}
		if len(got) != len(tr) {
			t.Fatalf("n=%d: got %d events, want %d", n, len(got), len(tr))
		}
		for i := range tr {
			if got[i] != tr[i] {
				t.Fatalf("n=%d: event %d = %+v, want %+v", n, i, got[i], tr[i])
			}
		}
	}
}

func TestFileRoundTripQuick(t *testing.T) {
	prop := func(pcs, vals []uint32) bool {
		n := len(pcs)
		if len(vals) < n {
			n = len(vals)
		}
		tr := make(Trace, n)
		for i := 0; i < n; i++ {
			tr[i] = Event{PC: pcs[i], Value: vals[i]}
		}
		var buf bytes.Buffer
		if err := Write(&buf, tr); err != nil {
			return false
		}
		got, err := Read(&buf)
		if err != nil {
			return false
		}
		if len(got) != len(tr) {
			return false
		}
		for i := range tr {
			if got[i] != tr[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestFileBadMagic(t *testing.T) {
	if _, err := Read(bytes.NewReader([]byte("NOPE....."))); err != ErrBadMagic {
		t.Errorf("err = %v, want ErrBadMagic", err)
	}
}

func TestFileTruncated(t *testing.T) {
	tr := sampleTrace(100, 9)
	var buf bytes.Buffer
	if err := Write(&buf, tr); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	for _, cut := range []int{0, 2, 5, len(raw) / 2, len(raw) - 1} {
		if _, err := Read(bytes.NewReader(raw[:cut])); err == nil {
			t.Errorf("Read of %d/%d bytes succeeded, want error", cut, len(raw))
		}
	}
}

func TestFileCompression(t *testing.T) {
	// The delta encoding should beat 8 bytes/event on realistic traces.
	tr := sampleTrace(10000, 10)
	var buf bytes.Buffer
	if err := Write(&buf, tr); err != nil {
		t.Fatal(err)
	}
	if perEvent := float64(buf.Len()) / float64(len(tr)); perEvent > 8 {
		t.Errorf("encoding uses %.1f bytes/event, want < 8", perEvent)
	}
}

func TestFilter(t *testing.T) {
	tr := Trace{
		{PC: 0x40, Value: 1}, {PC: 0x44, Value: 2},
		{PC: 0x40, Value: 3}, {PC: 0x48, Value: 4},
	}
	got := Collect(Filter(NewReader(tr), func(e Event) bool { return e.PC == 0x40 }), 0)
	if len(got) != 2 || got[0].Value != 1 || got[1].Value != 3 {
		t.Errorf("filtered = %v", got)
	}
	// Filtering everything out terminates cleanly.
	none := Collect(Filter(NewReader(tr), func(Event) bool { return false }), 0)
	if len(none) != 0 {
		t.Errorf("expected empty, got %v", none)
	}
}
