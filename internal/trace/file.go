package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// File format
//
// Traces serialize to a compact stream designed for the repetitive
// structure of value traces: PCs repeat heavily and values are often
// close to the previous value produced at the same PC. The format is
//
//	magic   "VTR1" (4 bytes)
//	count   uvarint — number of events
//	events  count records:
//	          pcDelta  varint  — PC minus previous event's PC (signed)
//	          value    uvarint — the produced value, zig-zag encoded
//	                              against the previous value seen at
//	                              *any* PC (cheap, still effective)
//
// The deltas routinely compress a trace to ~3 bytes/event versus 8 raw.

const fileMagic = "VTR1"

// ErrBadMagic reports that a stream does not start with the trace
// file magic.
var ErrBadMagic = errors.New("trace: bad magic (not a VTR1 trace file)")

// Write serializes t to w in the VTR1 format.
func Write(w io.Writer, t Trace) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(fileMagic); err != nil {
		return err
	}
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], uint64(len(t)))
	if _, err := bw.Write(buf[:n]); err != nil {
		return err
	}
	var prevPC, prevVal uint32
	for _, e := range t {
		n = binary.PutVarint(buf[:], int64(int32(e.PC-prevPC)))
		if _, err := bw.Write(buf[:n]); err != nil {
			return err
		}
		n = binary.PutVarint(buf[:], int64(int32(e.Value-prevVal)))
		if _, err := bw.Write(buf[:n]); err != nil {
			return err
		}
		prevPC, prevVal = e.PC, e.Value
	}
	return bw.Flush()
}

// Read deserializes a VTR1 trace from r.
func Read(r io.Reader) (Trace, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(fileMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("trace: reading magic: %w", err)
	}
	if string(magic) != fileMagic {
		return nil, ErrBadMagic
	}
	count, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("trace: reading count: %w", err)
	}
	const maxReasonable = 1 << 31
	if count > maxReasonable {
		return nil, fmt.Errorf("trace: implausible event count %d", count)
	}
	t := make(Trace, 0, count)
	var prevPC, prevVal uint32
	for i := uint64(0); i < count; i++ {
		dpc, err := binary.ReadVarint(br)
		if err != nil {
			return nil, fmt.Errorf("trace: event %d pc: %w", i, err)
		}
		dv, err := binary.ReadVarint(br)
		if err != nil {
			return nil, fmt.Errorf("trace: event %d value: %w", i, err)
		}
		prevPC += uint32(int32(dpc))
		prevVal += uint32(int32(dv))
		t = append(t, Event{PC: prevPC, Value: prevVal})
	}
	return t, nil
}
