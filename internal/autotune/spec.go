package autotune

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/core"
)

// ParseSpecs parses a comma-separated candidate list in the compact
// colon form
//
//	kind:l1[:l2[:width[:delay[:tables[:tag[:hmin[:hmax]]]]]]]
//
// e.g. "dfcm:12:10,dfcm:14:12:16,stride:14,tage:10:8:32:0:4:8:4:64" —
// the flag vocabulary of cmd/vpredict and cmd/vpserve folded into one
// string, for the -autotune-candidates flag. The last four positions
// are the tage geometry (table count, tag width, shortest/longest
// history); zero anywhere means that kind's default. Each spec is
// validated by building it once; whitespace around entries is ignored
// and empty entries are rejected (a trailing comma is almost certainly
// a typo).
func ParseSpecs(s string) ([]core.Spec, error) {
	var specs []core.Spec
	for _, ent := range strings.Split(s, ",") {
		ent = strings.TrimSpace(ent)
		if ent == "" {
			return nil, fmt.Errorf("autotune: empty candidate entry in %q", s)
		}
		spec, err := parseSpec(ent)
		if err != nil {
			return nil, err
		}
		specs = append(specs, spec)
	}
	return specs, nil
}

func parseSpec(ent string) (core.Spec, error) {
	parts := strings.Split(ent, ":")
	if len(parts) < 2 || len(parts) > 9 {
		return core.Spec{}, fmt.Errorf("autotune: candidate %q: want kind:l1[:l2[:width[:delay[:tables[:tag[:hmin[:hmax]]]]]]]", ent)
	}
	spec := core.Spec{Kind: parts[0]}
	fields := []struct {
		name string
		bits int // ParseUint width: history lengths outgrow a byte
		set  func(uint64)
	}{
		{"l1", 8, func(v uint64) { spec.L1 = uint(v) }},
		{"l2", 8, func(v uint64) { spec.L2 = uint(v) }},
		{"width", 8, func(v uint64) { spec.Width = uint(v) }},
		{"delay", 8, func(v uint64) { spec.Delay = int(v) }},
		{"tables", 8, func(v uint64) { spec.Tables = uint(v) }},
		{"tag", 8, func(v uint64) { spec.Tag = uint(v) }},
		{"hmin", 16, func(v uint64) { spec.HistMin = uint(v) }},
		{"hmax", 16, func(v uint64) { spec.HistMax = uint(v) }},
	}
	for i, part := range parts[1:] {
		v, err := strconv.ParseUint(part, 10, fields[i].bits)
		if err != nil {
			return core.Spec{}, fmt.Errorf("autotune: candidate %q: %s: %v", ent, fields[i].name, err)
		}
		fields[i].set(v)
	}
	// The geometry positions only mean something to tage; a nonzero
	// value there under any other kind is a misplaced field, not a
	// harmless extra.
	if spec.Kind != "tage" && (spec.Tables != 0 || spec.Tag != 0 || spec.HistMin != 0 || spec.HistMax != 0) {
		return core.Spec{}, fmt.Errorf("autotune: candidate %q: tables/tag/hmin/hmax apply only to tage", ent)
	}
	if _, err := spec.New(); err != nil {
		return core.Spec{}, fmt.Errorf("autotune: candidate %q: %w", ent, err)
	}
	return spec, nil
}
