package autotune

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/core"
)

// ParseSpecs parses a comma-separated candidate list in the compact
// colon form
//
//	kind:l1[:l2[:width[:delay]]]
//
// e.g. "dfcm:12:10,dfcm:14:12:16,stride:14" — the flag vocabulary of
// cmd/vpredict and cmd/vpserve folded into one string, for the
// -autotune-candidates flag. Each spec is validated by building it
// once; whitespace around entries is ignored and empty entries are
// rejected (a trailing comma is almost certainly a typo).
func ParseSpecs(s string) ([]core.Spec, error) {
	var specs []core.Spec
	for _, ent := range strings.Split(s, ",") {
		ent = strings.TrimSpace(ent)
		if ent == "" {
			return nil, fmt.Errorf("autotune: empty candidate entry in %q", s)
		}
		spec, err := parseSpec(ent)
		if err != nil {
			return nil, err
		}
		specs = append(specs, spec)
	}
	return specs, nil
}

func parseSpec(ent string) (core.Spec, error) {
	parts := strings.Split(ent, ":")
	if len(parts) < 2 || len(parts) > 5 {
		return core.Spec{}, fmt.Errorf("autotune: candidate %q: want kind:l1[:l2[:width[:delay]]]", ent)
	}
	spec := core.Spec{Kind: parts[0]}
	fields := []struct {
		name string
		set  func(uint64)
	}{
		{"l1", func(v uint64) { spec.L1 = uint(v) }},
		{"l2", func(v uint64) { spec.L2 = uint(v) }},
		{"width", func(v uint64) { spec.Width = uint(v) }},
		{"delay", func(v uint64) { spec.Delay = int(v) }},
	}
	for i, part := range parts[1:] {
		v, err := strconv.ParseUint(part, 10, 8)
		if err != nil {
			return core.Spec{}, fmt.Errorf("autotune: candidate %q: %s: %v", ent, fields[i].name, err)
		}
		fields[i].set(v)
	}
	if _, err := spec.New(); err != nil {
		return core.Spec{}, fmt.Errorf("autotune: candidate %q: %w", ent, err)
	}
	return spec, nil
}
