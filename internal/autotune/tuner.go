// Package autotune is the online autotuning service: it taps a
// sampled fraction of a serve.Engine's live training traffic, shadows
// each tapped session through a set of candidate predictor
// configurations (one engine.Stream per session, fed the mirrored
// batches), scores the candidates online against a shadow of the
// incumbent, and promotes a winner by hot-swapping the live session's
// predictor — warm, because the shadow has already been trained on
// the mirrored stream.
//
// The tuner never blocks serving: the tap enqueues copies of sampled
// batches into a bounded mailbox and sheds when it is full, and the
// hot-swap itself is an internal engine op that serializes with the
// session's traffic on its shard goroutine. A session whose candidates
// never win serves bit-identically to the same session on an untuned
// engine — the tap observes, it does not touch.
//
// Determinism: sampling is a pure hash of (seed, session, seq), where
// seq is the session's lifetime update count before the batch, so a
// fixed seed over a fixed batch sequence selects a fixed mirrored
// subsequence; the promoted predictor is then bit-identical to a fresh
// predictor of the winning spec trained offline on that subsequence.
// The equivalence tests pin both properties.
package autotune

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/serve"
	"repro/internal/trace"
)

// Config parameterizes a Tuner.
type Config struct {
	// Engine is the serve engine to tap and tune. Required.
	Engine *serve.Engine
	// Boot is the engine's boot predictor spec — the presumed incumbent
	// for sessions the tuner has not swapped yet. Required.
	Boot core.Spec
	// Candidates are the predictor specs to shadow-evaluate against
	// each session's incumbent. Duplicates (canonically) are dropped;
	// a candidate equal to a session's incumbent is not shadowed for
	// that session. At least one candidate is required.
	Candidates []core.Spec
	// Objective selects the promotion score: "accuracy" (windowed hit
	// rate, the default) or "efficiency" (windowed hit rate per Kbit of
	// predictor state — the paper's accuracy-per-budget axis).
	Objective string
	// SampleRate is the fraction of training batches mirrored per
	// session, in (0,1]; 0 selects 1 (mirror everything). Sampling is
	// a deterministic hash of (Seed, session, seq).
	SampleRate float64
	// Seed keys the sampling hash.
	Seed uint64
	// MailboxDepth bounds the tuner's batch queue. A full mailbox
	// sheds the batch (counted in Status.Shed) instead of blocking the
	// shard goroutine. 0 selects 256.
	MailboxDepth int
	// Window is the shadow scoring window in judged events: scores
	// cover the last one-to-two windows of mirrored traffic. 0 selects
	// 4096.
	Window int
	// MinMirrored is the number of mirrored events a session's shadow
	// set must absorb before it is eligible for promotion — and, since
	// shadows rebuild fresh after a swap, the cooldown between swaps.
	// 0 selects 2*Window.
	MinMirrored uint64
	// Margin is the hysteresis: a candidate's score must exceed the
	// incumbent shadow's by this relative margin to be promoted. 0
	// selects 0.01; negative means no margin.
	Margin float64
	// MaxSessions caps the sessions the tuner tracks (each tracked
	// session holds one shadow predictor per candidate). Batches from
	// sessions beyond the cap are dropped (Status.Ignored). 0 selects
	// 1024.
	MaxSessions int
}

func (c Config) withDefaults() Config {
	if c.SampleRate <= 0 || c.SampleRate > 1 {
		c.SampleRate = 1
	}
	if c.MailboxDepth <= 0 {
		c.MailboxDepth = 256
	}
	if c.Window <= 0 {
		c.Window = 4096
	}
	if c.MinMirrored == 0 {
		c.MinMirrored = 2 * uint64(c.Window)
	}
	if c.Margin == 0 {
		c.Margin = 0.01
	}
	if c.Margin < 0 {
		c.Margin = 0
	}
	if c.MaxSessions <= 0 {
		c.MaxSessions = 1024
	}
	if c.Objective == "" {
		c.Objective = "accuracy"
	}
	return c
}

// batch is one mirrored training batch, copied into tuner-owned
// storage on the enqueue path and recycled through a pool.
type batch struct {
	session uint64
	seq     uint64
	events  []trace.Event
}

// ctlReq is a control request (Sync/Status) threaded through the same
// FIFO mailbox as batches, so its reply proves every batch enqueued
// before it has been fully processed — the determinism anchor the
// swap-equivalence tests rely on.
type ctlReq struct {
	status bool // build a Status reply (Sync leaves it zero)
	resp   chan Status
}

// msg is one mailbox entry: exactly one of b/ctl is set.
type msg struct {
	b   *batch
	ctl *ctlReq
}

// shadowSet is one tracked session's tuner state: a stream of shadow
// predictors — index 0 the incumbent's twin, the rest the candidates —
// plus the two-snapshot rotation that scopes scores to a sliding
// window. Owned exclusively by the tuner loop goroutine.
type shadowSet struct {
	id        uint64
	incumbent core.Spec   // canonical
	specs     []core.Spec // canonical, aligned with the stream; [0] == incumbent
	sizes     []int64     // SizeBits per shadow, for the efficiency objective
	stream    *engine.Stream
	mirrored  uint64        // events fed since (re)build
	rotAt     uint64        // mirrored threshold for the next rotation
	older     []core.Result // cumulative results two rotations back
	newer     []core.Result // cumulative results at the last rotation
	swaps     uint64
}

// Tuner is the autotuning service around one engine. Mirror runs on
// the engine's shard goroutines; all tuning state is owned by the
// single loop goroutine, which Close joins.
type Tuner struct {
	cfg        Config
	boot       core.Spec
	candidates []core.Spec // canonical, deduped
	efficiency bool

	mail chan msg
	pool sync.Pool // *batch recycling for the zero-alloc enqueue path
	quit chan struct{}
	wg   sync.WaitGroup

	// Hot-path counters, written by Mirror on shard goroutines.
	mirroredBatches atomic.Uint64
	mirroredEvents  atomic.Uint64
	shed            atomic.Uint64 // mailbox full
	skipped         atomic.Uint64 // failed the sampling hash

	// Loop-owned counters and state (no lock: single goroutine).
	states  map[uint64]*shadowSet
	swaps   uint64
	busy    uint64 // promotions deferred on StatusBusy
	errors  uint64 // promotions rejected by the engine
	ignored uint64 // batches from beyond-cap sessions

	mu     sync.Mutex
	closed bool // vplint:guardedby mu
}

// New validates cfg, starts the tuner loop and installs the tuner as
// cfg.Engine's traffic tap. Callers must Close it to detach the tap
// and join the loop.
func New(cfg Config) (*Tuner, error) {
	cfg = cfg.withDefaults()
	if cfg.Engine == nil {
		return nil, fmt.Errorf("autotune: Config.Engine is required")
	}
	if _, err := cfg.Boot.New(); err != nil {
		return nil, fmt.Errorf("autotune: boot spec: %w", err)
	}
	if cfg.Objective != "accuracy" && cfg.Objective != "efficiency" {
		return nil, fmt.Errorf("autotune: unknown objective %q", cfg.Objective)
	}
	if len(cfg.Candidates) == 0 {
		return nil, fmt.Errorf("autotune: at least one candidate spec is required")
	}
	var candidates []core.Spec
	for _, c := range cfg.Candidates {
		if _, err := c.New(); err != nil {
			return nil, fmt.Errorf("autotune: candidate %+v: %w", c, err)
		}
		cc := c.Canonical()
		dup := false
		for _, have := range candidates {
			if have == cc {
				dup = true
				break
			}
		}
		if !dup {
			candidates = append(candidates, cc)
		}
	}
	t := &Tuner{
		cfg:        cfg,
		boot:       cfg.Boot.Canonical(),
		candidates: candidates,
		efficiency: cfg.Objective == "efficiency",
		mail:       make(chan msg, cfg.MailboxDepth),
		quit:       make(chan struct{}),
		states:     make(map[uint64]*shadowSet),
	}
	t.pool.New = func() any { return new(batch) }
	t.wg.Add(1)
	go t.loop()
	cfg.Engine.SetTap(t)
	return t, nil
}

// Mirror implements serve.Tap on the engine's shard goroutines: hash
// the batch's deterministic position, copy a sampled batch into pooled
// storage and enqueue it, shedding on a full mailbox. Never blocks,
// never retains events, and allocates nothing once the pool is warm.
func (t *Tuner) Mirror(session, seq uint64, events []trace.Event) {
	if len(events) == 0 {
		return
	}
	if !t.sampled(session, seq) {
		t.skipped.Add(1)
		return
	}
	b := t.pool.Get().(*batch)
	b.session, b.seq = session, seq
	b.events = append(b.events[:0], events...)
	select {
	case t.mail <- msg{b: b}:
		t.mirroredBatches.Add(1)
		t.mirroredEvents.Add(uint64(len(events)))
	default:
		t.shed.Add(1)
		t.pool.Put(b)
	}
}

// sampled is the deterministic per-batch coin: a splitmix64-style hash
// of (seed, session, seq) against the sample rate. Stateless, so it
// needs no synchronization across shard goroutines and a fixed seed
// reproduces the exact mirrored subsequence.
func (t *Tuner) sampled(session, seq uint64) bool {
	if t.cfg.SampleRate >= 1 {
		return true
	}
	x := t.cfg.Seed ^ session*0x9e3779b97f4a7c15 ^ seq*0xff51afd7ed558ccd
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return float64(x>>11)/(1<<53) < t.cfg.SampleRate
}

// loop is the tuner goroutine: drain the mailbox, feed shadows, score
// and promote. Exits on Close; joinable through the WaitGroup.
func (t *Tuner) loop() {
	defer t.wg.Done()
	for {
		select {
		case m := <-t.mail:
			if m.ctl != nil {
				var st Status
				if m.ctl.status {
					st = t.buildStatus()
				}
				m.ctl.resp <- st
				continue
			}
			t.process(m.b)
			t.pool.Put(m.b)
		case <-t.quit:
			return
		}
	}
}

// process feeds one mirrored batch into its session's shadow set,
// rotating the scoring window and attempting a promotion.
func (t *Tuner) process(b *batch) {
	ss := t.states[b.session]
	if ss == nil {
		if len(t.states) >= t.cfg.MaxSessions {
			t.ignored++
			return
		}
		ss = t.build(b.session, t.boot)
		t.states[b.session] = ss
	}
	ss.stream.Feed(b.events)
	ss.mirrored += uint64(len(b.events))
	if ss.mirrored >= ss.rotAt {
		copy(ss.older, ss.newer)
		copy(ss.newer, ss.stream.Results())
		ss.rotAt = ss.mirrored + uint64(t.cfg.Window)
	}
	t.maybePromote(ss)
}

// build assembles a fresh shadow set for a session under the given
// incumbent: one cold shadow of the incumbent itself (the fairness
// baseline — it sees exactly the traffic the candidates see) plus one
// per candidate that differs from it.
func (t *Tuner) build(id uint64, incumbent core.Spec) *shadowSet {
	specs := []core.Spec{incumbent.Canonical()}
	for _, c := range t.candidates {
		if c != specs[0] {
			specs = append(specs, c)
		}
	}
	preds := make([]core.Predictor, len(specs))
	sizes := make([]int64, len(specs))
	for i, sp := range specs {
		p, err := sp.New()
		if err != nil {
			panic("autotune: spec validated at tuner start cannot fail: " + err.Error())
		}
		preds[i] = p
		sizes[i] = p.SizeBits()
	}
	return &shadowSet{
		id:        id,
		incumbent: specs[0],
		specs:     specs,
		sizes:     sizes,
		stream:    engine.NewStream(preds, 0),
		rotAt:     uint64(t.cfg.Window),
		older:     make([]core.Result, len(specs)),
		newer:     make([]core.Result, len(specs)),
	}
}

// score returns shadow i's windowed promotion score: hit rate over the
// last one-to-two windows, divided by the predictor's Kbits under the
// efficiency objective. ok is false while the window is empty.
func (t *Tuner) score(ss *shadowSet, i int) (float64, bool) {
	cur := ss.stream.Results()[i]
	lookups := cur.Predictions - ss.older[i].Predictions
	if lookups == 0 {
		return 0, false
	}
	acc := float64(cur.Correct-ss.older[i].Correct) / float64(lookups)
	if t.efficiency {
		return acc * 1024 / float64(ss.sizes[i]), true
	}
	return acc, true
}

// maybePromote hot-swaps the session to its best candidate shadow when
// that candidate beats the incumbent shadow by the hysteresis margin.
// On success the shadow set rebuilds fresh around the winner, which
// both restarts the fairness baseline and enforces the MinMirrored
// cooldown before the next swap.
func (t *Tuner) maybePromote(ss *shadowSet) {
	if ss.mirrored < t.cfg.MinMirrored || len(ss.specs) < 2 {
		return
	}
	incScore, ok := t.score(ss, 0)
	if !ok {
		return
	}
	best, bestScore := -1, 0.0
	for i := 1; i < len(ss.specs); i++ {
		if sc, ok := t.score(ss, i); ok && (best < 0 || sc > bestScore) {
			best, bestScore = i, sc
		}
	}
	if best < 0 || bestScore <= incScore*(1+t.cfg.Margin) {
		return
	}
	// The shadow is handed to the engine warm; the engine installs it
	// on the session's shard goroutine, serialized with traffic.
	switch t.cfg.Engine.SwapSession(ss.id, ss.specs[best], ss.stream.Predictor(best)) {
	case serve.StatusOK:
		t.swaps++
		winner := ss.specs[best]
		nss := t.build(ss.id, winner)
		nss.swaps = ss.swaps + 1
		t.states[ss.id] = nss
	case serve.StatusBusy:
		// Shed like traffic: the next mirrored batch retries.
		t.busy++
	default:
		t.errors++
	}
}

// Sync blocks until every batch mirrored before the call has been
// fully processed (the control request rides the same FIFO mailbox).
// Returns immediately if the tuner is closed. Test and drain hook;
// serving never needs it.
func (t *Tuner) Sync() { t.control(false) }

// Status reports the tuner's counters and per-session shadow scores,
// consistent as of all batches mirrored before the call.
func (t *Tuner) Status() Status { return t.control(true) }

func (t *Tuner) control(status bool) Status {
	req := &ctlReq{status: status, resp: make(chan Status, 1)}
	select {
	case t.mail <- msg{ctl: req}:
	case <-t.quit:
		return Status{Closed: true}
	}
	select {
	case st := <-req.resp:
		return st
	case <-t.quit:
		return Status{Closed: true}
	}
}

// Close detaches the tap from the engine and joins the tuner loop.
// Batches still in the mailbox are discarded — the tuner holds only
// copies, so nothing of the engine's is lost. Idempotent.
func (t *Tuner) Close() {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return
	}
	t.closed = true
	t.mu.Unlock()
	t.cfg.Engine.SetTap(nil)
	close(t.quit)
	t.wg.Wait()
}

// Status is a point-in-time view of the tuner, served as JSON on the
// vpserve admin endpoint.
type Status struct {
	// Closed reports a Status/Sync call that raced tuner shutdown; all
	// other fields are zero.
	Closed bool `json:"closed,omitempty"`

	Objective string `json:"objective"`
	Sessions  int    `json:"sessions"` // tracked shadow sets

	MirroredBatches uint64 `json:"mirrored_batches"`
	MirroredEvents  uint64 `json:"mirrored_events"`
	Shed            uint64 `json:"shed"`    // mailbox-full drops
	Skipped         uint64 `json:"skipped"` // failed the sampling hash
	Swaps           uint64 `json:"swaps"`
	Busy            uint64 `json:"busy"`    // promotions deferred by backpressure
	Errors          uint64 `json:"errors"`  // promotions the engine rejected
	Ignored         uint64 `json:"ignored"` // batches beyond MaxSessions

	PerSession []SessionStatus `json:"per_session,omitempty"`
}

// SessionStatus is one tracked session's tuning state.
type SessionStatus struct {
	Session   uint64        `json:"session"`
	Incumbent core.Spec     `json:"incumbent"`
	Mirrored  uint64        `json:"mirrored"` // events since the last (re)build
	Swaps     uint64        `json:"swaps"`
	Shadows   []ShadowScore `json:"shadows"`
}

// ShadowScore is one shadow predictor's windowed standing. Index 0 of
// a session's shadows is always the incumbent's twin.
type ShadowScore struct {
	Spec          core.Spec `json:"spec"`
	SizeBits      int64     `json:"size_bits"`
	WindowLookups uint64    `json:"window_lookups"`
	WindowHits    uint64    `json:"window_hits"`
	Accuracy      float64   `json:"accuracy"`
	PerKbit       float64   `json:"per_kbit"` // accuracy per Kbit of state
}

// buildStatus renders the loop-owned state. Runs on the loop
// goroutine.
func (t *Tuner) buildStatus() Status {
	st := Status{
		Objective:       t.cfg.Objective,
		Sessions:        len(t.states),
		MirroredBatches: t.mirroredBatches.Load(),
		MirroredEvents:  t.mirroredEvents.Load(),
		Shed:            t.shed.Load(),
		Skipped:         t.skipped.Load(),
		Swaps:           t.swaps,
		Busy:            t.busy,
		Errors:          t.errors,
		Ignored:         t.ignored,
	}
	for id, ss := range t.states {
		s := SessionStatus{
			Session:   id,
			Incumbent: ss.incumbent,
			Mirrored:  ss.mirrored,
			Swaps:     ss.swaps,
		}
		results := ss.stream.Results()
		for i := range ss.specs {
			look := results[i].Predictions - ss.older[i].Predictions
			hits := results[i].Correct - ss.older[i].Correct
			sc := ShadowScore{
				Spec:          ss.specs[i],
				SizeBits:      ss.sizes[i],
				WindowLookups: look,
				WindowHits:    hits,
			}
			if look > 0 {
				sc.Accuracy = float64(hits) / float64(look)
				sc.PerKbit = sc.Accuracy * 1024 / float64(ss.sizes[i])
			}
			s.Shadows = append(s.Shadows, sc)
		}
		st.PerSession = append(st.PerSession, s)
	}
	sort.Slice(st.PerSession, func(i, j int) bool {
		return st.PerSession[i].Session < st.PerSession[j].Session
	})
	return st
}
