package autotune

import (
	"bytes"
	"testing"

	"repro/internal/core"
	"repro/internal/leakcheck"
	"repro/internal/serve"
	"repro/internal/snapshot"
	"repro/internal/trace"
)

// strideEvents is a single-PC arithmetic sequence: a last-value
// predictor is always wrong on it (step != 0), stride and DFCM are
// near-perfect after warmup — a workload whose best spec is
// unambiguous, so promotion tests don't flake.
func strideEvents(pc uint32, n int, start, step uint32) trace.Trace {
	tr := make(trace.Trace, n)
	v := start
	for i := range tr {
		tr[i] = trace.Event{PC: pc, Value: v}
		v += step
	}
	return tr
}

func newEngine(t testing.TB, spec core.Spec) *serve.Engine {
	t.Helper()
	e, err := serve.NewEngine(serve.Config{Spec: spec, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(e.Close)
	return e
}

func stateBytes(t *testing.T, p core.Predictor) []byte {
	t.Helper()
	s, ok := p.(core.Snapshotter)
	if !ok {
		t.Fatalf("%T is not a Snapshotter", p)
	}
	return s.AppendState(nil)
}

// TestSwapEquivalence is the deterministic-swap acceptance test: with
// a fixed sample seed, a session that gets hot-swapped must match —
// bit for bit, from the swap point on — a reference predictor of the
// winning spec trained on the same mirrored subsequence.
func TestSwapEquivalence(t *testing.T) {
	leakcheck.Check(t)
	bootSpec := core.Spec{Kind: "lvp", L1: 4}
	candSpec := core.Spec{Kind: "dfcm", L1: 8, L2: 8}
	e := newEngine(t, bootSpec)
	tn, err := New(Config{
		Engine:       e,
		Boot:         bootSpec,
		Candidates:   []core.Spec{candSpec},
		Window:       128,
		MinMirrored:  256,
		MailboxDepth: 1024,
		Seed:         42,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer tn.Close()

	const (
		sid     = 11
		B       = 64
		batches = 20
	)
	events := strideEvents(0x1000, B*batches, 100, 3)

	// Drive batch by batch, syncing the tuner after each so the swap
	// point is observed at the exact batch whose processing caused it.
	swapAt := -1
	for i := 0; i < batches; i++ {
		if _, st := e.RunBatch(sid, events[i*B:(i+1)*B]); st != serve.StatusOK {
			t.Fatalf("batch %d: %v", i, st)
		}
		tn.Sync()
		if st := tn.Status(); st.Swaps > 0 {
			if st.Swaps != 1 {
				t.Fatalf("batch %d: %d swaps, want exactly 1", i, st.Swaps)
			}
			swapAt = i
			break
		}
	}
	if swapAt < 0 {
		t.Fatalf("no swap in %d batches; status %+v", batches, tn.Status())
	}

	// The promoted shadow was trained on every batch up to and
	// including swapAt (sample rate 1, nothing shed: mailbox is deep
	// and every batch was synced). The reference is a fresh predictor
	// of the winning spec over exactly that prefix.
	ref, err := candSpec.New()
	if err != nil {
		t.Fatal(err)
	}
	cut := (swapAt + 1) * B
	core.Run(ref, trace.NewReader(events[:cut]))

	// From the swap point the session and the reference must agree on
	// every batch's hit count...
	for i := swapAt + 1; i < batches; i++ {
		chunk := events[i*B : (i+1)*B]
		got, st := e.RunBatch(sid, chunk)
		if st != serve.StatusOK {
			t.Fatalf("post-swap batch %d: %v", i, st)
		}
		want := core.Run(ref, trace.NewReader(chunk)).Correct
		if uint64(got) != want {
			t.Fatalf("post-swap batch %d: %d hits, reference %d", i, got, want)
		}
	}

	// ...and end bit-identical: the session's snapshot restores to the
	// reference's exact table state, under the winning spec.
	blob, st := e.SnapshotSession(sid)
	if st != serve.StatusOK {
		t.Fatalf("SnapshotSession: %v", st)
	}
	snap, err := snapshot.Decode(bytes.NewReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	if snap.Spec.Canonical() != candSpec.Canonical() {
		t.Fatalf("snapshot spec %+v, want winning %+v", snap.Spec, candSpec.Canonical())
	}
	restored, err := snap.Restore()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(stateBytes(t, restored), stateBytes(t, ref)) {
		t.Error("swapped session state differs from reference trained on the mirrored subsequence")
	}
}

// TestNoSwapBitIdentity: a session whose candidates never win — and
// every session on a tuner-disabled engine — must serve bit-identically
// with and without the tuner attached. The tap observes; it must not
// touch.
func TestNoSwapBitIdentity(t *testing.T) {
	leakcheck.Check(t)
	bootSpec := core.Spec{Kind: "dfcm", L1: 8, L2: 8}
	events := strideEvents(0x2000, 1500, 7, 5)

	run := func(tuned bool) []byte {
		e := newEngine(t, bootSpec)
		if tuned {
			tn, err := New(Config{
				Engine: e,
				Boot:   bootSpec,
				// A hopeless candidate: lvp never beats DFCM here.
				Candidates:   []core.Spec{{Kind: "lvp", L1: 2}},
				Window:       128,
				MinMirrored:  256,
				MailboxDepth: 1024,
			})
			if err != nil {
				t.Fatal(err)
			}
			defer tn.Close()
			defer func() {
				tn.Sync()
				if st := tn.Status(); st.Swaps != 0 {
					t.Fatalf("hopeless candidate was promoted: %+v", st)
				}
			}()
		}
		for start := 0; start < len(events); start += 100 {
			if _, st := e.RunBatch(4, events[start:start+100]); st != serve.StatusOK {
				t.Fatalf("RunBatch: %v", st)
			}
		}
		blob, st := e.SnapshotSession(4)
		if st != serve.StatusOK {
			t.Fatalf("SnapshotSession: %v", st)
		}
		return blob
	}

	if !bytes.Equal(run(true), run(false)) {
		t.Error("tuner-attached session snapshot differs from untuned engine")
	}
}

// TestEfficiencyObjective: two specs with equal windowed accuracy but
// different table budgets. The efficiency objective (accuracy per
// Kbit) promotes the small one; the accuracy objective, with its
// hysteresis margin, must leave the tie alone.
func TestEfficiencyObjective(t *testing.T) {
	bootSpec := core.Spec{Kind: "stride", L1: 12}
	candSpec := core.Spec{Kind: "stride", L1: 4}
	events := strideEvents(0x3000, 2000, 1, 9)

	for _, tc := range []struct {
		objective string
		wantSwaps uint64
	}{
		{"efficiency", 1},
		{"accuracy", 0},
	} {
		e := newEngine(t, bootSpec)
		tn, err := New(Config{
			Engine:       e,
			Boot:         bootSpec,
			Candidates:   []core.Spec{candSpec},
			Objective:    tc.objective,
			Window:       128,
			MinMirrored:  256,
			MailboxDepth: 1024,
		})
		if err != nil {
			t.Fatal(err)
		}
		for start := 0; start < len(events); start += 100 {
			if _, st := e.RunBatch(6, events[start:start+100]); st != serve.StatusOK {
				t.Fatalf("RunBatch: %v", st)
			}
			tn.Sync()
		}
		if st := tn.Status(); st.Swaps != tc.wantSwaps {
			t.Errorf("objective %q: %d swaps, want %d (status %+v)",
				tc.objective, st.Swaps, tc.wantSwaps, st.PerSession)
		}
		tn.Close()
	}
}

// TestStatusShape: the per-session view carries the incumbent, its
// twin shadow at index 0, and coherent windowed scores.
func TestStatusShape(t *testing.T) {
	bootSpec := core.Spec{Kind: "dfcm", L1: 8, L2: 8}
	candSpec := core.Spec{Kind: "dfcm", L1: 10, L2: 10}
	e := newEngine(t, bootSpec)
	tn, err := New(Config{Engine: e, Boot: bootSpec, Candidates: []core.Spec{candSpec}, MailboxDepth: 1024})
	if err != nil {
		t.Fatal(err)
	}
	defer tn.Close()
	events := strideEvents(0x4000, 600, 3, 2)
	for _, sid := range []uint64{8, 1} {
		if _, st := e.RunBatch(sid, events); st != serve.StatusOK {
			t.Fatalf("RunBatch: %v", st)
		}
	}
	tn.Sync()
	st := tn.Status()
	if st.Objective != "accuracy" {
		t.Errorf("objective %q", st.Objective)
	}
	if st.Sessions != 2 || len(st.PerSession) != 2 {
		t.Fatalf("tracking %d/%d sessions, want 2", st.Sessions, len(st.PerSession))
	}
	if st.MirroredEvents != 1200 || st.MirroredBatches != 2 {
		t.Errorf("mirrored %d events in %d batches, want 1200 in 2", st.MirroredEvents, st.MirroredBatches)
	}
	if st.PerSession[0].Session != 1 || st.PerSession[1].Session != 8 {
		t.Errorf("sessions not sorted: %d, %d", st.PerSession[0].Session, st.PerSession[1].Session)
	}
	for _, ps := range st.PerSession {
		if ps.Incumbent != bootSpec.Canonical() {
			t.Errorf("session %d incumbent %+v", ps.Session, ps.Incumbent)
		}
		if ps.Mirrored != 600 {
			t.Errorf("session %d mirrored %d, want 600", ps.Session, ps.Mirrored)
		}
		if len(ps.Shadows) != 2 {
			t.Fatalf("session %d has %d shadows, want 2", ps.Session, len(ps.Shadows))
		}
		if ps.Shadows[0].Spec != bootSpec.Canonical() || ps.Shadows[1].Spec != candSpec.Canonical() {
			t.Errorf("session %d shadow specs %+v", ps.Session, ps.Shadows)
		}
		for _, sh := range ps.Shadows {
			if sh.WindowLookups == 0 || sh.WindowHits > sh.WindowLookups {
				t.Errorf("session %d shadow %+v: bad window", ps.Session, sh)
			}
			if sh.SizeBits <= 0 || sh.PerKbit != sh.Accuracy*1024/float64(sh.SizeBits) {
				t.Errorf("session %d shadow %+v: bad size/per-kbit", ps.Session, sh)
			}
		}
	}
}

// TestMirrorShedsWhenFull: a full mailbox sheds instead of blocking.
// The tuner is closed first so the consumer is provably absent and the
// count is deterministic; Mirror stays safe to call in that state
// (shard goroutines may race Close).
func TestMirrorShedsWhenFull(t *testing.T) {
	bootSpec := core.Spec{Kind: "lvp", L1: 4}
	e := newEngine(t, bootSpec)
	tn, err := New(Config{Engine: e, Boot: bootSpec, Candidates: []core.Spec{{Kind: "stride", L1: 4}}, MailboxDepth: 2})
	if err != nil {
		t.Fatal(err)
	}
	tn.Close()
	events := strideEvents(0x5000, 32, 1, 1)
	for i := 0; i < 5; i++ {
		tn.Mirror(1, uint64(i*32), events)
	}
	if got := tn.shed.Load(); got != 3 {
		t.Errorf("shed %d batches, want 3 (mailbox depth 2)", got)
	}
	if got := tn.mirroredBatches.Load(); got != 2 {
		t.Errorf("enqueued %d batches, want 2", got)
	}
	if st := tn.Status(); !st.Closed {
		t.Error("Status on closed tuner did not report Closed")
	}
	tn.Close() // idempotent
}

// TestSamplingDeterministic: the sampling hash is a pure function of
// (seed, session, seq) — same seed, same subsequence — and lands near
// the configured rate.
func TestSamplingDeterministic(t *testing.T) {
	mk := func(seed uint64) *Tuner {
		return &Tuner{cfg: Config{SampleRate: 0.5, Seed: seed}}
	}
	a, b, c := mk(1), mk(1), mk(2)
	var picked, diff int
	const n = 20000
	for seq := uint64(0); seq < n; seq++ {
		pa := a.sampled(9, seq)
		if pa != b.sampled(9, seq) {
			t.Fatalf("seq %d: same seed disagrees", seq)
		}
		if pa {
			picked++
		}
		if pa != c.sampled(9, seq) {
			diff++
		}
	}
	if picked < n*4/10 || picked > n*6/10 {
		t.Errorf("rate 0.5 picked %d/%d", picked, n)
	}
	if diff == 0 {
		t.Error("different seeds produced identical subsequences")
	}
}

// TestSampledSubsequenceEquivalence: with a fractional sample rate the
// shadows train on exactly the hash-selected subsequence — rebuilding
// that subsequence offline from the same (seed, session, seq) triple
// reproduces the shadow's state bit for bit.
func TestSampledSubsequenceEquivalence(t *testing.T) {
	bootSpec := core.Spec{Kind: "lvp", L1: 4}
	candSpec := core.Spec{Kind: "dfcm", L1: 8, L2: 8}
	e := newEngine(t, bootSpec)
	tn, err := New(Config{
		Engine:       e,
		Boot:         bootSpec,
		Candidates:   []core.Spec{candSpec},
		SampleRate:   0.5,
		Seed:         7,
		Window:       1 << 20, // no rotation, no promotion interference
		MinMirrored:  1 << 30, // never promote: isolate the sampling path
		MailboxDepth: 4096,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer tn.Close()

	const B = 50
	events := strideEvents(0x6000, 1000, 11, 4)
	var mirrored trace.Trace
	var seq uint64
	for start := 0; start < len(events); start += B {
		chunk := events[start : start+B]
		if tn.sampled(3, seq) {
			mirrored = append(mirrored, chunk...)
		}
		if _, st := e.RunBatch(3, chunk); st != serve.StatusOK {
			t.Fatalf("RunBatch: %v", st)
		}
		seq += B
	}
	tn.Sync()
	st := tn.Status()
	if st.MirroredEvents != uint64(len(mirrored)) || st.Shed != 0 {
		t.Fatalf("mirrored %d events (shed %d), offline selection says %d",
			st.MirroredEvents, st.Shed, len(mirrored))
	}
	ref, err := candSpec.New()
	if err != nil {
		t.Fatal(err)
	}
	core.Run(ref, trace.NewReader(mirrored))
	// White-box: compare the candidate shadow's state directly. The
	// Sync above flushed the mailbox and nothing has mirrored since, so
	// the loop is idle and the states map quiescent.
	shadow := tn.states[3].stream.Predictor(1)
	if !bytes.Equal(stateBytes(t, shadow), stateBytes(t, ref)) {
		t.Error("sampled shadow state differs from offline replay of the hash-selected subsequence")
	}
}

func TestParseSpecs(t *testing.T) {
	got, err := ParseSpecs("dfcm:12:10, dfcm:14:12:16 ,stride:14,lvp:8,dfcm:10:8:32:4,tage:10:8,tage:10:8:32:0:6:10:2:96")
	if err != nil {
		t.Fatal(err)
	}
	want := []core.Spec{
		{Kind: "dfcm", L1: 12, L2: 10},
		{Kind: "dfcm", L1: 14, L2: 12, Width: 16},
		{Kind: "stride", L1: 14},
		{Kind: "lvp", L1: 8},
		{Kind: "dfcm", L1: 10, L2: 8, Width: 32, Delay: 4},
		{Kind: "tage", L1: 10, L2: 8},
		{Kind: "tage", L1: 10, L2: 8, Width: 32, Tables: 6, Tag: 10, HistMin: 2, HistMax: 96},
	}
	if len(got) != len(want) {
		t.Fatalf("got %d specs, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("spec %d: %+v, want %+v", i, got[i], want[i])
		}
	}
	for _, bad := range []string{
		"", "dfcm", "dfcm:12:10,", "dfcm:twelve:10", "nope:4",
		"fcm:10", "dfcm:12:10:16:2:9", "dfcm:99:10",
		"tage:10:8:32:0:13",         // table count past TAGEMaxTables
		"tage:10:8:32:0:4:8:64:4",   // hmin above hmax
		"tage:10:8:32:0:4:8:4:129",  // history past TAGEMaxHist
		"tage:10:8:32:0:4:8:4:64:1", // too many positions
		"stride:8:0:0:0:4:8:4:64",   // tage geometry on a non-tage kind
	} {
		if _, err := ParseSpecs(bad); err == nil {
			t.Errorf("ParseSpecs(%q) accepted", bad)
		}
	}
}

func TestNewValidation(t *testing.T) {
	bootSpec := core.Spec{Kind: "lvp", L1: 4}
	e := newEngine(t, bootSpec)
	cases := []Config{
		{Boot: bootSpec, Candidates: []core.Spec{{Kind: "stride", L1: 4}}}, // no engine
		{Engine: e, Boot: core.Spec{Kind: "nope"}, Candidates: []core.Spec{{Kind: "stride", L1: 4}}},
		{Engine: e, Boot: bootSpec},                                         // no candidates
		{Engine: e, Boot: bootSpec, Candidates: []core.Spec{{Kind: "fcm"}}}, // invalid candidate
		{Engine: e, Boot: bootSpec, Candidates: []core.Spec{{Kind: "stride", L1: 4}}, Objective: "x"},
	}
	for i, cfg := range cases {
		if tn, err := New(cfg); err == nil {
			tn.Close()
			t.Errorf("case %d: New accepted %+v", i, cfg)
		}
	}
	// Duplicate candidates collapse.
	tn, err := New(Config{Engine: e, Boot: bootSpec, Candidates: []core.Spec{
		{Kind: "dfcm", L1: 8, L2: 8},
		{Kind: "dfcm", L1: 8, L2: 8, Width: 32}, // canonically the same
	}})
	if err != nil {
		t.Fatal(err)
	}
	defer tn.Close()
	if len(tn.candidates) != 1 {
		t.Errorf("%d candidates after dedup, want 1", len(tn.candidates))
	}
}

// --- benchmarks ---

// BenchmarkServeMirrorTap measures the serving hot path with the
// mirror tap armed: Engine.RunBatch plus the sample-hash, pooled copy
// and enqueue/shed in Mirror. The tuner is closed (consumer paused) so
// after warmup every batch takes the deterministic shed path — the
// bench isolates the tap overhead the serving tier pays, and `make
// bench` gates it at 0 allocs/op.
func BenchmarkServeMirrorTap(b *testing.B) {
	bootSpec := core.Spec{Kind: "dfcm", L1: 10, L2: 10}
	e := newEngine(b, bootSpec)
	tn, err := New(Config{Engine: e, Boot: bootSpec, Candidates: []core.Spec{{Kind: "dfcm", L1: 12, L2: 12}}, MailboxDepth: 8})
	if err != nil {
		b.Fatal(err)
	}
	tn.Close()
	e.SetTap(tn) // reattach: enqueue/shed with no consumer
	events := strideEvents(0x1000, 2048, 1, 3)
	for i := 0; i < 16; i++ { // warm session, pool, and fill the mailbox
		if _, st := e.RunBatch(1, events); st != serve.StatusOK {
			b.Fatalf("warmup: %v", st)
		}
	}
	b.SetBytes(int64(len(events) * 8))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, st := e.RunBatch(1, events); st != serve.StatusOK {
			b.Fatal(st)
		}
	}
}

// benchAutotune drives served RunBatch throughput with or without a
// live tuner (loop running, shadows training), for the on/off pair in
// BENCH_engine.json: the delta is the full cost of online autotuning
// at sample rate 1.
func benchAutotune(b *testing.B, tuned bool) {
	bootSpec := core.Spec{Kind: "dfcm", L1: 10, L2: 10}
	e := newEngine(b, bootSpec)
	if tuned {
		tn, err := New(Config{
			Engine:       e,
			Boot:         bootSpec,
			Candidates:   []core.Spec{{Kind: "dfcm", L1: 12, L2: 12}, {Kind: "stride", L1: 12}},
			MailboxDepth: 1024,
		})
		if err != nil {
			b.Fatal(err)
		}
		defer tn.Close()
	}
	events := strideEvents(0x1000, 2048, 1, 3)
	if _, st := e.RunBatch(1, events); st != serve.StatusOK {
		b.Fatalf("warmup: %v", st)
	}
	b.SetBytes(int64(len(events) * 8))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, st := e.RunBatch(1, events); st != serve.StatusOK {
			b.Fatal(st)
		}
	}
}

func BenchmarkServeAutotuneOn(b *testing.B)  { benchAutotune(b, true) }
func BenchmarkServeAutotuneOff(b *testing.B) { benchAutotune(b, false) }
