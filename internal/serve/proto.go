// Package serve exposes the internal/core value predictors as a
// concurrent network service: a length-prefixed binary wire protocol
// over TCP, per-session predictor state keyed by client-chosen
// session IDs, and a sharded engine (one goroutine per shard, bounded
// mailboxes) so independent sessions never contend on one lock.
//
// # Wire protocol ("VP1")
//
// Every message — request or response — is one frame:
//
//	magic   uint16  0x5650 ("VP")
//	version uint8   1
//	op      uint8   request op, or op|0x80 for its response
//	length  uint32  payload bytes (big-endian), bounded by MaxFrame
//	payload length bytes
//
// All integers are big-endian. Request payloads begin with the
// client-chosen 64-bit session ID where one applies. Response
// payloads begin with a one-byte status.
//
//	PredictBatch (0x01) req:  session u64, count u32, count × pc u32
//	             resp: status u8, count u32, count × value u32
//	UpdateBatch  (0x02) req:  session u64, count u32, count × (pc u32, value u32)
//	             resp: status u8
//	RunBatch     (0x03) req:  session u64, count u32, count × (pc u32, value u32)
//	             resp: status u8, hits u32
//	Stats        (0x04) req:  empty
//	             resp: status u8, JSON-encoded Stats
//	ResetSession (0x05) req:  session u64
//	             resp: status u8
//	SnapshotSession (0x06) req:  session u64
//	             resp: status u8, encoded internal/snapshot file
//	RestoreSession  (0x07) req:  session u64, encoded internal/snapshot file
//	             resp: status u8
//
// SnapshotSession returns the session's durable snapshot — the same
// bytes a server-side checkpoint writes to disk — captured atomically
// on the owning shard. It never creates a session (a missing session
// is StatusBadRequest) and is StatusUnsupported on engines without a
// predictor spec. Responses can far exceed DefaultMaxFrame; clients
// read them with the MaxSnapshotFrame bound.
//
// RestoreSession is the symmetric write: it installs the session from
// an encoded snapshot — typically one SnapshotSession returned from
// another server, which is how internal/cluster migrates a live
// session between backends. The snapshot's canonical spec must match
// the server's (StatusSpecMismatch otherwise) and its meta session ID,
// when nonzero, must match the addressed session. A restore is
// authoritative: an existing live session is replaced. Request frames
// carry the snapshot blob and may exceed an ordinary server's
// MaxFrame; servers accept them up to MaxSnapshotFrame.
//
// Servers answer a request frame declaring a payload beyond the
// applicable cap — but within MaxSnapshotFrame — with
// StatusBadRequest after draining the declared bytes, keeping the
// connection synchronized. Only a frame beyond MaxSnapshotFrame,
// which no VP1 peer legitimately sends, drops the connection.
//
// RunBatch performs the offline predict-compare-update loop
// (core.Run) server-side, one event at a time in order, so a replay
// through the server is event-for-event equivalent to an offline run
// — including events in the same batch training their successors.
// Split PredictBatch/UpdateBatch calls trade that strict equivalence
// for pipelining: predictions within one batch all see the table
// state at batch start.
package serve

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"repro/internal/snapshot"
	"repro/internal/trace"
)

// Protocol constants.
const (
	protoMagic   = 0x5650 // "VP"
	protoVersion = 1
	headerSize   = 8

	// respFlag marks a response frame's op byte.
	respFlag = 0x80

	// DefaultMaxFrame bounds the payload of a single frame; at 8
	// bytes per event that is ~128k events per batch.
	DefaultMaxFrame = 1 << 20

	// MaxSnapshotFrame bounds a SnapshotSession response frame: the
	// largest encodable predictor state plus the snapshot container
	// and status overhead.
	MaxSnapshotFrame = snapshot.MaxState + 4096
)

// Ops.
const (
	OpPredictBatch    = 0x01
	OpUpdateBatch     = 0x02
	OpRunBatch        = 0x03
	OpStats           = 0x04
	OpResetSession    = 0x05
	OpSnapshotSession = 0x06
	OpRestoreSession  = 0x07
)

// Status is the first byte of every response payload.
type Status uint8

// Statuses.
const (
	StatusOK          Status = 0 // request processed
	StatusBusy        Status = 1 // shard mailbox full — no prediction made
	StatusClosed      Status = 2 // engine draining or closed
	StatusBadRequest   Status = 3 // malformed or oversized request
	StatusUnsupported  Status = 4 // op not available on this engine
	StatusSpecMismatch Status = 5 // snapshot built under a different predictor spec
)

// String implements fmt.Stringer.
func (s Status) String() string {
	switch s {
	case StatusOK:
		return "ok"
	case StatusBusy:
		return "busy"
	case StatusClosed:
		return "closed"
	case StatusBadRequest:
		return "bad-request"
	case StatusUnsupported:
		return "unsupported"
	case StatusSpecMismatch:
		return "spec-mismatch"
	default:
		return fmt.Sprintf("status(%d)", uint8(s))
	}
}

// Protocol errors.
var (
	ErrBadMagic   = errors.New("serve: bad frame magic")
	ErrBadVersion = errors.New("serve: unsupported protocol version")
	ErrFrameSize  = errors.New("serve: frame exceeds maximum size")
	ErrTruncated  = errors.New("serve: truncated payload")
)

// writeFrame emits one frame. The payload may be nil.
func writeFrame(w io.Writer, op byte, payload []byte) error {
	var hdr [headerSize]byte
	binary.BigEndian.PutUint16(hdr[0:], protoMagic)
	hdr[2] = protoVersion
	hdr[3] = op
	binary.BigEndian.PutUint32(hdr[4:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// readFrame reads one frame into a fresh payload allocation; see
// readFrameInto for the buffer-reusing hot path.
func readFrame(r io.Reader, maxFrame int) (op byte, payload []byte, err error) {
	return readFrameInto(r, maxFrame, nil)
}

// growPayload returns a length-n byte slice backed by buf's array when
// its capacity allows, allocating a larger one otherwise. Callers must
// have length-checked n against the applicable frame cap already.
func growPayload(buf []byte, n int) []byte {
	if cap(buf) >= n {
		return buf[:n]
	}
	return make([]byte, n)
}

// readFrameInto reads one frame, enforcing the magic, version and
// frame size bound, reusing buf as payload storage: the returned
// payload aliases buf when it fits and replaces it otherwise, so
// callers keep the returned slice as their scratch for the next call.
// The payload is only valid until that next call. maxFrame <= 0
// selects DefaultMaxFrame.
func readFrameInto(r io.Reader, maxFrame int, buf []byte) (op byte, payload []byte, err error) {
	if maxFrame <= 0 {
		maxFrame = DefaultMaxFrame
	}
	var hdr [headerSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	if binary.BigEndian.Uint16(hdr[0:]) != protoMagic {
		return 0, nil, ErrBadMagic
	}
	if hdr[2] != protoVersion {
		return 0, nil, ErrBadVersion
	}
	n := binary.BigEndian.Uint32(hdr[4:])
	if n > uint32(maxFrame) {
		return 0, nil, ErrFrameSize
	}
	payload = growPayload(buf, int(n))
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, err
	}
	return hdr[3], payload, nil
}

// --- payload encoding -------------------------------------------------

func appendU32(b []byte, v uint32) []byte {
	return binary.BigEndian.AppendUint32(b, v)
}

func appendU64(b []byte, v uint64) []byte {
	return binary.BigEndian.AppendUint64(b, v)
}

// appendPredictReq appends a PredictBatch request payload to b.
func appendPredictReq(b []byte, session uint64, pcs []uint32) []byte {
	b = appendU64(b, session)
	b = appendU32(b, uint32(len(pcs)))
	for _, pc := range pcs {
		b = appendU32(b, pc)
	}
	return b
}

// encodePredictReq builds a PredictBatch request payload.
func encodePredictReq(session uint64, pcs []uint32) []byte {
	return appendPredictReq(make([]byte, 0, 12+4*len(pcs)), session, pcs)
}

func decodePredictReq(p []byte) (session uint64, pcs []uint32, err error) {
	return decodePredictReqInto(p, nil)
}

// decodePredictReqInto decodes a PredictBatch request reusing pcs's
// backing storage when its capacity suffices (allocating a larger
// slice otherwise); the returned slice replaces the caller's scratch.
func decodePredictReqInto(p []byte, pcs []uint32) (session uint64, out []uint32, err error) {
	if len(p) < 12 {
		return 0, nil, ErrTruncated
	}
	session = binary.BigEndian.Uint64(p)
	n := binary.BigEndian.Uint32(p[8:])
	body := p[12:]
	if uint64(len(body)) != 4*uint64(n) {
		return 0, nil, ErrTruncated
	}
	if cap(pcs) >= int(n) {
		out = pcs[:n]
	} else {
		out = make([]uint32, n)
	}
	for i := range out {
		out[i] = binary.BigEndian.Uint32(body[4*i:])
	}
	return session, out, nil
}

// appendEventReq appends an UpdateBatch or RunBatch request payload
// to b.
func appendEventReq(b []byte, session uint64, events []trace.Event) []byte {
	b = appendU64(b, session)
	b = appendU32(b, uint32(len(events)))
	for _, e := range events {
		b = appendU32(b, e.PC)
		b = appendU32(b, e.Value)
	}
	return b
}

// encodeEventReq builds an UpdateBatch or RunBatch request payload.
func encodeEventReq(session uint64, events []trace.Event) []byte {
	return appendEventReq(make([]byte, 0, 12+8*len(events)), session, events)
}

func decodeEventReq(p []byte) (session uint64, events []trace.Event, err error) {
	return decodeEventReqInto(p, nil)
}

// decodeEventReqInto decodes an UpdateBatch/RunBatch request reusing
// events's backing storage when its capacity suffices (allocating a
// larger slice otherwise); the returned slice replaces the caller's
// scratch.
func decodeEventReqInto(p []byte, events []trace.Event) (session uint64, out []trace.Event, err error) {
	if len(p) < 12 {
		return 0, nil, ErrTruncated
	}
	session = binary.BigEndian.Uint64(p)
	n := binary.BigEndian.Uint32(p[8:])
	body := p[12:]
	if uint64(len(body)) != 8*uint64(n) {
		return 0, nil, ErrTruncated
	}
	if cap(events) >= int(n) {
		out = events[:n]
	} else {
		out = make([]trace.Event, n)
	}
	for i := range out {
		out[i].PC = binary.BigEndian.Uint32(body[8*i:])
		out[i].Value = binary.BigEndian.Uint32(body[8*i+4:])
	}
	return session, out, nil
}

// encodeRestoreReq builds a RestoreSession request payload: the
// addressed session ID followed by the encoded snapshot file.
func encodeRestoreReq(session uint64, blob []byte) []byte {
	b := make([]byte, 0, 8+len(blob))
	b = appendU64(b, session)
	return append(b, blob...)
}

// decodeRestoreReq splits a RestoreSession payload. The blob aliases
// the input; the snapshot decoder validates its structure (and bounds
// every section before allocating).
func decodeRestoreReq(p []byte) (session uint64, blob []byte, err error) {
	if len(p) < 8 {
		return 0, nil, ErrTruncated
	}
	return binary.BigEndian.Uint64(p), p[8:], nil
}

// encodeSessionReq builds a ResetSession request payload.
func encodeSessionReq(session uint64) []byte {
	return appendU64(make([]byte, 0, 8), session)
}

func decodeSessionReq(p []byte) (uint64, error) {
	if len(p) != 8 {
		return 0, ErrTruncated
	}
	return binary.BigEndian.Uint64(p), nil
}

// appendPredictResp appends a PredictBatch response payload to b.
// values is ignored unless st is StatusOK.
func appendPredictResp(b []byte, st Status, values []uint32) []byte {
	b = append(b, byte(st))
	if st != StatusOK {
		return b
	}
	b = appendU32(b, uint32(len(values)))
	for _, v := range values {
		b = appendU32(b, v)
	}
	return b
}

// encodePredictResp builds a PredictBatch response payload. values is
// ignored unless st is StatusOK.
func encodePredictResp(st Status, values []uint32) []byte {
	return appendPredictResp(make([]byte, 0, 5+4*len(values)), st, values)
}

func decodePredictResp(p []byte) (Status, []uint32, error) {
	return decodePredictRespInto(p, nil)
}

// decodePredictRespInto decodes a PredictBatch response reusing
// values's backing storage when its capacity suffices (allocating a
// larger slice otherwise); the returned slice replaces the caller's
// scratch.
func decodePredictRespInto(p []byte, values []uint32) (Status, []uint32, error) {
	if len(p) < 1 {
		return 0, nil, ErrTruncated
	}
	st := Status(p[0])
	if st != StatusOK {
		return st, nil, nil
	}
	if len(p) < 5 {
		return 0, nil, ErrTruncated
	}
	n := binary.BigEndian.Uint32(p[1:])
	body := p[5:]
	if uint64(len(body)) != 4*uint64(n) {
		return 0, nil, ErrTruncated
	}
	var out []uint32
	if cap(values) >= int(n) {
		out = values[:n]
	} else {
		out = make([]uint32, n)
	}
	for i := range out {
		out[i] = binary.BigEndian.Uint32(body[4*i:])
	}
	return st, out, nil
}

// appendStatusResp appends a status-only response payload to b.
func appendStatusResp(b []byte, st Status) []byte { return append(b, byte(st)) }

// encodeStatusResp builds a status-only response payload.
func encodeStatusResp(st Status) []byte { return []byte{byte(st)} }

func decodeStatusResp(p []byte) (Status, error) {
	if len(p) != 1 {
		return 0, ErrTruncated
	}
	return Status(p[0]), nil
}

// appendRunResp appends a RunBatch response payload to b.
func appendRunResp(b []byte, st Status, hits uint32) []byte {
	b = append(b, byte(st))
	if st != StatusOK {
		return b
	}
	return appendU32(b, hits)
}

// encodeRunResp builds a RunBatch response payload.
func encodeRunResp(st Status, hits uint32) []byte {
	return appendRunResp(make([]byte, 0, 5), st, hits)
}

func decodeRunResp(p []byte) (Status, uint32, error) {
	if len(p) < 1 {
		return 0, 0, ErrTruncated
	}
	st := Status(p[0])
	if st != StatusOK {
		return st, 0, nil
	}
	if len(p) != 5 {
		return 0, 0, ErrTruncated
	}
	return st, binary.BigEndian.Uint32(p[1:]), nil
}

// appendStatsResp appends a Stats response payload to b.
func appendStatsResp(b []byte, st Status, body []byte) []byte {
	b = append(b, byte(st))
	return append(b, body...)
}

// encodeStatsResp builds a Stats response payload around a JSON body.
func encodeStatsResp(st Status, body []byte) []byte {
	return appendStatsResp(make([]byte, 0, 1+len(body)), st, body)
}

func decodeStatsResp(p []byte) (Status, []byte, error) {
	if len(p) < 1 {
		return 0, nil, ErrTruncated
	}
	return Status(p[0]), p[1:], nil
}

// appendSnapshotResp appends a SnapshotSession response payload to b.
// blob is ignored unless st is StatusOK.
func appendSnapshotResp(b []byte, st Status, blob []byte) []byte {
	b = append(b, byte(st))
	if st != StatusOK {
		return b
	}
	return append(b, blob...)
}

// encodeSnapshotResp builds a SnapshotSession response payload around
// the encoded snapshot file bytes. blob is ignored unless st is
// StatusOK.
func encodeSnapshotResp(st Status, blob []byte) []byte {
	return appendSnapshotResp(make([]byte, 0, 1+len(blob)), st, blob)
}

func decodeSnapshotResp(p []byte) (Status, []byte, error) {
	if len(p) < 1 {
		return 0, nil, ErrTruncated
	}
	st := Status(p[0])
	if st != StatusOK {
		return st, nil, nil
	}
	return st, p[1:], nil
}

// --- server-side frame API (shared with the cluster router) ----------

// ReadRequestFrame reads one request frame with the server-side cap
// discipline shared by the vpserve server and the vprouter proxy:
// maxFrame (<= 0 selects DefaultMaxFrame) bounds ordinary request
// payloads, while RestoreSession requests — which carry a snapshot
// blob — are always allowed up to MaxSnapshotFrame. A frame declaring
// a payload beyond its cap but within MaxSnapshotFrame is drained and
// reported oversized=true, so the caller can answer StatusBadRequest
// on a still-synchronized connection. Only a frame beyond
// MaxSnapshotFrame, which no VP1 peer legitimately sends, is an error.
func ReadRequestFrame(r io.Reader, maxFrame int) (op byte, payload []byte, oversized bool, err error) {
	return ReadRequestFrameBuf(r, maxFrame, nil)
}

// ReadRequestFrameBuf is ReadRequestFrame reusing buf as payload
// storage: the returned payload aliases buf when it fits and replaces
// it otherwise, so a connection loop keeps the returned slice as its
// scratch for the next frame. The payload is only valid until that
// next call.
func ReadRequestFrameBuf(r io.Reader, maxFrame int, buf []byte) (op byte, payload []byte, oversized bool, err error) {
	if maxFrame <= 0 {
		maxFrame = DefaultMaxFrame
	}
	var hdr [headerSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, false, err
	}
	if binary.BigEndian.Uint16(hdr[0:]) != protoMagic {
		return 0, nil, false, ErrBadMagic
	}
	if hdr[2] != protoVersion {
		return 0, nil, false, ErrBadVersion
	}
	op = hdr[3]
	n := binary.BigEndian.Uint32(hdr[4:])
	limit := maxFrame
	if op == OpRestoreSession && limit < MaxSnapshotFrame {
		limit = MaxSnapshotFrame
	}
	if uint64(n) > uint64(limit) {
		if uint64(n) > uint64(MaxSnapshotFrame) {
			return 0, nil, false, ErrFrameSize
		}
		if _, err := io.CopyN(io.Discard, r, int64(n)); err != nil {
			return 0, nil, false, err
		}
		return op, nil, true, nil
	}
	payload = growPayload(buf, int(n))
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, false, err
	}
	return op, payload, false, nil
}

// WriteResponseFrame emits the response frame for op — the op byte
// with the response flag set — around an already-encoded payload.
func WriteResponseFrame(w io.Writer, op byte, payload []byte) error {
	return writeFrame(w, op|respFlag, payload)
}

// StatusResponse encodes a status-only response payload. Every VP1
// response decoder accepts a one-byte payload for a non-OK status, so
// this is the universal error answer for any op — the cluster router
// uses it when a backend is unreachable or a frame was oversized.
func StatusResponse(st Status) []byte { return encodeStatusResp(st) }

// StatsResponse encodes a Stats response payload around a JSON body.
func StatsResponse(body []byte) []byte { return encodeStatsResp(StatusOK, body) }

// RequestSession extracts the session ID a request payload addresses,
// without decoding the rest — how the cluster router picks a backend
// for a frame it otherwise forwards opaquely. ok is false for ops that
// carry no session (Stats) and for payloads too short to hold one.
func RequestSession(op byte, payload []byte) (session uint64, ok bool) {
	switch op {
	case OpPredictBatch, OpUpdateBatch, OpRunBatch, OpResetSession, OpSnapshotSession, OpRestoreSession:
		if len(payload) < 8 {
			return 0, false
		}
		return binary.BigEndian.Uint64(payload), true
	}
	return 0, false
}
