package serve

import (
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/trace"
	"repro/internal/workload"
)

// testSpec is the predictor configuration the engine tests run — the
// paper's DFCM at small table sizes.
var testSpec = core.Spec{Kind: "dfcm", L1: 10, L2: 10}

func newTestPredictor() core.Predictor {
	p, err := testSpec.New()
	if err != nil {
		panic(err)
	}
	return p
}

// testEvents generates a deterministic mixed workload trace: shifting
// the seed PC keeps distinct sessions' traces distinct.
func testEvents(basePC uint32, n int) trace.Trace {
	body := workload.LoopBody(basePC, 2, 6, 4, 2)
	return trace.Collect(workload.Interleave(body, (n+13)/14), n)
}

// offlineHits is the ground truth: the hit count of an offline run
// over the same spec.
func offlineHits(t *testing.T, events trace.Trace) uint64 {
	t.Helper()
	p, err := testSpec.New()
	if err != nil {
		t.Fatal(err)
	}
	return core.Run(p, trace.NewReader(events)).Correct
}

func newTestEngine(t *testing.T, cfg Config) *Engine {
	t.Helper()
	if cfg.NewPredictor == nil {
		cfg.NewPredictor = newTestPredictor
	}
	e, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(e.Close)
	return e
}

// runThroughEngine replays events through one session in batches of
// batch, returning the total hit count.
func runThroughEngine(t *testing.T, e *Engine, session uint64, events trace.Trace, batch int) uint64 {
	t.Helper()
	var hits uint64
	for start := 0; start < len(events); start += batch {
		end := min(start+batch, len(events))
		h, st := e.RunBatch(session, events[start:end])
		if st != StatusOK {
			t.Fatalf("RunBatch: status %v", st)
		}
		hits += uint64(h)
	}
	return hits
}

func TestRunBatchMatchesOffline(t *testing.T) {
	events := testEvents(0x1000, 5000)
	want := offlineHits(t, events)
	for _, batch := range []int{1, 7, 64, 5000} {
		e := newTestEngine(t, Config{Shards: 4})
		if got := runThroughEngine(t, e, 1, events, batch); got != want {
			t.Errorf("batch=%d: %d hits, offline %d", batch, got, want)
		}
	}
}

func TestRunBatchScorerPath(t *testing.T) {
	// The perfect hybrid judges correctness through Score; the engine
	// must follow core.Run and use it.
	spec := core.Spec{Kind: "hybrid", L1: 10, L2: 10}
	events := testEvents(0x2000, 3000)
	offline, err := spec.New()
	if err != nil {
		t.Fatal(err)
	}
	want := core.Run(offline, trace.NewReader(events)).Correct

	e := newTestEngine(t, Config{
		Shards:       2,
		NewPredictor: func() core.Predictor { p, _ := spec.New(); return p },
	})
	if got := runThroughEngine(t, e, 5, events, 128); got != want {
		t.Errorf("hybrid via engine: %d hits, offline %d", got, want)
	}
}

func TestSplitPredictUpdateMatchesOffline(t *testing.T) {
	// With batch size 1 the split PredictBatch/UpdateBatch path is
	// sequentially consistent with the offline loop.
	events := testEvents(0x3000, 2000)
	want := offlineHits(t, events)
	e := newTestEngine(t, Config{Shards: 2})
	var hits uint64
	for _, ev := range events {
		values, st := e.PredictBatch(9, []uint32{ev.PC})
		if st != StatusOK || len(values) != 1 {
			t.Fatalf("PredictBatch: status %v, %d values", st, len(values))
		}
		if values[0] == ev.Value {
			hits++
		}
		if st := e.UpdateBatch(9, events[:0]); st != StatusOK {
			t.Fatalf("empty UpdateBatch: status %v", st)
		}
		if st := e.UpdateBatch(9, []trace.Event{ev}); st != StatusOK {
			t.Fatalf("UpdateBatch: status %v", st)
		}
	}
	if hits != want {
		t.Errorf("split replay: %d hits, offline %d", hits, want)
	}
}

func TestSessionIsolation(t *testing.T) {
	// Interleaved sessions must behave exactly like separate offline
	// runs: no predictor state leaks between sessions.
	a, b := testEvents(0x1000, 3000), testEvents(0x9000, 3000)
	wantA, wantB := offlineHits(t, a), offlineHits(t, b)
	e := newTestEngine(t, Config{Shards: 3})
	var hitsA, hitsB uint64
	for start := 0; start < 3000; start += 50 {
		ha, st := e.RunBatch(100, a[start:start+50])
		if st != StatusOK {
			t.Fatal(st)
		}
		hb, st := e.RunBatch(200, b[start:start+50])
		if st != StatusOK {
			t.Fatal(st)
		}
		hitsA += uint64(ha)
		hitsB += uint64(hb)
	}
	if hitsA != wantA || hitsB != wantB {
		t.Errorf("interleaved sessions: A=%d (want %d), B=%d (want %d)",
			hitsA, wantA, hitsB, wantB)
	}
}

func TestResetSessionMatchesFresh(t *testing.T) {
	events := testEvents(0x4000, 2000)
	want := offlineHits(t, events)
	e := newTestEngine(t, Config{Shards: 2})
	first := runThroughEngine(t, e, 7, events, 100)
	if st := e.ResetSession(7); st != StatusOK {
		t.Fatalf("ResetSession: %v", st)
	}
	second := runThroughEngine(t, e, 7, events, 100)
	if first != want || second != want {
		t.Errorf("replays around reset: %d then %d, offline %d", first, second, want)
	}
	if got := e.Snapshot().Resets; got != 1 {
		t.Errorf("snapshot resets = %d, want 1", got)
	}
}

func TestConcurrentSessions(t *testing.T) {
	// Many goroutines stream distinct sessions concurrently; each
	// session's result must equal its offline run. Run under -race
	// this is the engine's core isolation property.
	const goroutines = 16
	e := newTestEngine(t, Config{Shards: 4, MailboxDepth: 256})
	var wg sync.WaitGroup
	errs := make(chan string, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			events := testEvents(uint32(0x1000+0x800*g), 2000)
			p, err := testSpec.New()
			if err != nil {
				errs <- err.Error()
				return
			}
			want := core.Run(p, trace.NewReader(events)).Correct
			var hits uint64
			for start := 0; start < len(events); start += 100 {
				for {
					h, st := e.RunBatch(uint64(g), events[start:start+100])
					if st == StatusBusy {
						continue // backpressure: retry
					}
					if st != StatusOK {
						errs <- st.String()
						return
					}
					hits += uint64(h)
					break
				}
			}
			if hits != want {
				errs <- "session hit mismatch"
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
}

// gatedPredictor blocks inside Predict until released, letting the
// backpressure test fill a shard's mailbox deterministically.
type gatedPredictor struct {
	entered chan struct{}
	gate    chan struct{}
}

func (g *gatedPredictor) Predict(pc uint32) uint32 {
	g.entered <- struct{}{}
	<-g.gate
	return 0
}
func (g *gatedPredictor) Update(pc, value uint32) {}
func (g *gatedPredictor) Name() string            { return "gated" }
func (g *gatedPredictor) SizeBits() int64         { return 0 }

func TestBackpressureShedsInsteadOfBlocking(t *testing.T) {
	gp := &gatedPredictor{entered: make(chan struct{}), gate: make(chan struct{})}
	e := newTestEngine(t, Config{
		Shards:       1,
		MailboxDepth: 1,
		NewPredictor: func() core.Predictor { return gp },
	})
	one := trace.Trace{{PC: 4, Value: 0}}

	results := make(chan Status, 2)
	go func() { _, st := e.RunBatch(1, one); results <- st }()
	<-gp.entered // first request is now executing on the shard
	go func() { _, st := e.RunBatch(1, one); results <- st }()
	// Wait for the second request to occupy the single mailbox slot.
	for len(e.shards[0].mail) != 1 {
		time.Sleep(time.Millisecond)
	}

	// Third request finds the mailbox full: shed, not blocked.
	if _, st := e.RunBatch(1, one); st != StatusBusy {
		t.Fatalf("overflow request: status %v, want busy", st)
	}
	if got := e.Snapshot().Dropped; got != 1 {
		t.Errorf("snapshot dropped = %d, want 1", got)
	}

	gp.gate <- struct{}{} // release first
	<-gp.entered          // second starts
	gp.gate <- struct{}{} // release second
	for i := 0; i < 2; i++ {
		if st := <-results; st != StatusOK {
			t.Errorf("queued request %d: status %v", i, st)
		}
	}
}

func TestMaxSessionsCap(t *testing.T) {
	e := newTestEngine(t, Config{Shards: 1, MaxSessions: 2})
	one := trace.Trace{{PC: 4, Value: 0}}
	for id := uint64(1); id <= 2; id++ {
		if _, st := e.RunBatch(id, one); st != StatusOK {
			t.Fatalf("session %d: %v", id, st)
		}
	}
	if _, st := e.RunBatch(3, one); st != StatusBusy {
		t.Errorf("session over cap: status %v, want busy", st)
	}
	if got := e.Snapshot().Sessions; got != 2 {
		t.Errorf("snapshot sessions = %d, want 2", got)
	}
}

func TestClosedEngineRejects(t *testing.T) {
	e, err := NewEngine(Config{Shards: 2, NewPredictor: newTestPredictor})
	if err != nil {
		t.Fatal(err)
	}
	e.Close()
	e.Close() // idempotent
	if _, st := e.RunBatch(1, trace.Trace{{PC: 4, Value: 0}}); st != StatusClosed {
		t.Errorf("post-close request: status %v, want closed", st)
	}
}

func TestEngineRequiresFactory(t *testing.T) {
	if _, err := NewEngine(Config{}); err == nil {
		t.Error("NewEngine without a predictor factory must fail")
	}
}

func TestSnapshotCounters(t *testing.T) {
	events := testEvents(0x5000, 1400)
	e := newTestEngine(t, Config{Shards: 2})
	runThroughEngine(t, e, 1, events, 200)
	pcs := make([]uint32, 10)
	if _, st := e.PredictBatch(2, pcs); st != StatusOK {
		t.Fatal(st)
	}
	st := e.Snapshot()
	if st.Predictor != "dfcm-2^10/2^10" {
		t.Errorf("predictor name %q", st.Predictor)
	}
	if st.Predictions != 1410 {
		t.Errorf("predictions = %d, want 1410", st.Predictions)
	}
	if st.Updates != 1400 {
		t.Errorf("updates = %d, want 1400", st.Updates)
	}
	if st.Sessions != 2 {
		t.Errorf("sessions = %d, want 2", st.Sessions)
	}
	if st.Hits == 0 || st.HitRate <= 0 {
		t.Errorf("hits = %d, hit rate = %v", st.Hits, st.HitRate)
	}
	if len(st.ShardStats) != 2 {
		t.Fatalf("shard stats: %d entries", len(st.ShardStats))
	}
	occupied := 0
	for _, ss := range st.ShardStats {
		occupied += ss.Sessions
	}
	if occupied != 2 {
		t.Errorf("shard occupancy sums to %d, want 2", occupied)
	}
}
