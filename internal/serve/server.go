package serve

import (
	"bufio"
	"context"
	"errors"
	"net"
	"net/http"
	"sync"
	"time"

	"repro/internal/trace"
)

// ServerConfig parameterizes a Server. The zero value selects sane
// defaults.
type ServerConfig struct {
	// ReadTimeout bounds the wait for the next request frame on a
	// connection; an idle connection past it is closed. 0 selects 60s.
	ReadTimeout time.Duration
	// WriteTimeout bounds writing one response frame. 0 selects 10s.
	WriteTimeout time.Duration
	// MaxFrame bounds request payload size; an oversized frame closes
	// the connection. 0 selects DefaultMaxFrame.
	MaxFrame int
}

func (c ServerConfig) withDefaults() ServerConfig {
	if c.ReadTimeout <= 0 {
		c.ReadTimeout = 60 * time.Second
	}
	if c.WriteTimeout <= 0 {
		c.WriteTimeout = 10 * time.Second
	}
	if c.MaxFrame <= 0 {
		c.MaxFrame = DefaultMaxFrame
	}
	return c
}

// Server accepts VP1 protocol connections and dispatches their frames
// to an Engine.
type Server struct {
	engine *Engine
	cfg    ServerConfig

	mu       sync.Mutex
	ln       net.Listener          // vplint:guardedby mu
	conns    map[net.Conn]struct{} // vplint:guardedby mu
	draining bool                  // vplint:guardedby mu
	closed   bool                  // vplint:guardedby mu
	connWG   sync.WaitGroup
}

// NewServer wraps engine in a server. The engine's lifecycle belongs
// to the server from here on: Shutdown/Close close it.
func NewServer(engine *Engine, cfg ServerConfig) *Server {
	return &Server{
		engine: engine,
		cfg:    cfg.withDefaults(),
		conns:  make(map[net.Conn]struct{}),
	}
}

// Engine returns the wrapped engine (for stats handlers and tests).
func (s *Server) Engine() *Engine { return s.engine }

// Serve accepts connections on ln until Shutdown or Close. It always
// returns a non-nil error; after a clean shutdown the error is
// net.ErrClosed.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed || s.draining {
		s.mu.Unlock()
		_ = ln.Close()
		return net.ErrClosed
	}
	s.ln = ln
	s.mu.Unlock()

	for {
		conn, err := ln.Accept()
		if err != nil {
			return err
		}
		s.mu.Lock()
		if s.draining || s.closed {
			s.mu.Unlock()
			_ = conn.Close()
			continue
		}
		s.conns[conn] = struct{}{}
		s.connWG.Add(1)
		s.mu.Unlock()
		go s.serveConn(conn)
	}
}

// connScratch is one connection's reusable hot-path buffers: the
// request frame payload, the decoded batch, the prediction output and
// the encoded response all live here, so a steady-state
// PredictBatch/RunBatch frame allocates nothing. The buffers are
// owned by the connection goroutine; each is valid until the next
// frame on the same connection (the response is fully written and
// flushed before the next read starts, so reuse never overlaps a
// pending write).
type connScratch struct {
	frame  []byte        // request payload (ReadRequestFrameBuf)
	events []trace.Event // decoded UpdateBatch/RunBatch events
	pcs    []uint32      // decoded PredictBatch PCs
	values []uint32      // engine prediction output
	resp   []byte        // encoded response payload
}

// serveConn runs one connection's request loop.
func (s *Server) serveConn(conn net.Conn) {
	defer s.connWG.Done()
	defer func() {
		_ = conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	br := bufio.NewReader(conn)
	bw := bufio.NewWriter(conn)
	sc := &connScratch{}
	for {
		if err := conn.SetReadDeadline(time.Now().Add(s.cfg.ReadTimeout)); err != nil {
			return // connection already dead
		}
		op, payload, oversized, err := ReadRequestFrameBuf(br, s.cfg.MaxFrame, sc.frame)
		if err != nil {
			// EOF, timeout, insane frame size or malformed header: drop
			// the connection. The framing carries no frame IDs, so there
			// is no way to resynchronize a corrupted stream.
			return
		}
		if payload != nil {
			sc.frame = payload
		}
		var respPayload []byte
		if oversized {
			// The declared payload exceeded the cap but was drained in
			// full, so the stream is still synchronized: answer a clean
			// status instead of dropping the connection.
			respPayload = appendStatusResp(sc.resp[:0], StatusBadRequest)
		} else {
			respPayload = s.dispatch(op, payload, sc)
		}
		sc.resp = respPayload
		if err := conn.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout)); err != nil {
			return
		}
		if err := writeFrame(bw, op|respFlag, respPayload); err != nil {
			return
		}
		if err := bw.Flush(); err != nil {
			return
		}
	}
}

// dispatch decodes one request, runs it on the engine, and encodes
// the response payload into sc.resp's storage (the returned slice is
// rooted there; serveConn stores it back as the next frame's
// scratch). Malformed payloads produce StatusBadRequest rather than
// killing the connection: the frame boundary is intact, so the stream
// remains synchronized.
func (s *Server) dispatch(op byte, payload []byte, sc *connScratch) []byte {
	resp := sc.resp[:0]
	switch op {
	case OpPredictBatch:
		session, pcs, err := decodePredictReqInto(payload, sc.pcs)
		if err != nil {
			return appendPredictResp(resp, StatusBadRequest, nil)
		}
		sc.pcs = pcs
		values, st := s.engine.PredictBatchAppend(session, pcs, sc.values)
		if values != nil {
			sc.values = values
		}
		return appendPredictResp(resp, st, values)
	case OpUpdateBatch:
		session, events, err := decodeEventReqInto(payload, sc.events)
		if err != nil {
			return appendStatusResp(resp, StatusBadRequest)
		}
		sc.events = events
		return appendStatusResp(resp, s.engine.UpdateBatch(session, events))
	case OpRunBatch:
		session, events, err := decodeEventReqInto(payload, sc.events)
		if err != nil {
			return appendRunResp(resp, StatusBadRequest, 0)
		}
		sc.events = events
		hits, st := s.engine.RunBatch(session, events)
		return appendRunResp(resp, st, hits)
	case OpStats:
		return appendStatsResp(resp, StatusOK, s.engine.StatsJSON())
	case OpResetSession:
		session, err := decodeSessionReq(payload)
		if err != nil {
			return appendStatusResp(resp, StatusBadRequest)
		}
		return appendStatusResp(resp, s.engine.ResetSession(session))
	case OpSnapshotSession:
		session, err := decodeSessionReq(payload)
		if err != nil {
			return appendSnapshotResp(resp, StatusBadRequest, nil)
		}
		blob, st := s.engine.SnapshotSession(session)
		return appendSnapshotResp(resp, st, blob)
	case OpRestoreSession:
		session, blob, err := decodeRestoreReq(payload)
		if err != nil {
			return appendStatusResp(resp, StatusBadRequest)
		}
		return appendStatusResp(resp, s.engine.RestoreSession(session, blob))
	default:
		return appendStatusResp(resp, StatusBadRequest)
	}
}

// Shutdown drains the server gracefully: stop accepting, keep serving
// connected clients until they disconnect or ctx expires, then force
// the stragglers closed and stop the engine.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.draining = true
	ln := s.ln
	s.mu.Unlock()
	if ln != nil {
		_ = ln.Close() // Serve's Accept surfaces the close
	}

	done := make(chan struct{})
	go func() {
		s.connWG.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		err = ctx.Err()
		s.mu.Lock()
		for conn := range s.conns {
			_ = conn.Close()
		}
		s.mu.Unlock()
		<-done
	}

	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	s.engine.Close()
	return err
}

// Close shuts the server down immediately: connections are closed
// without waiting for them to go idle.
func (s *Server) Close() error {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := s.Shutdown(ctx)
	if errors.Is(err, context.Canceled) {
		err = nil
	}
	return err
}

// StatsHandler serves the engine's stats snapshot as JSON — an
// expvar-style endpoint for the optional HTTP listener.
func StatsHandler(e *Engine) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write(e.StatsJSON())
	})
}
