package serve

import (
	"bytes"
	"io"
	"testing"

	"repro/internal/trace"
)

// FuzzDecodeFrame drives the frame reader with arbitrary bytes: it
// must never panic, never allocate past the max-frame bound, and any
// frame it accepts must survive a write/read round trip bit-exactly.
func FuzzDecodeFrame(f *testing.F) {
	var good bytes.Buffer
	if err := writeFrame(&good, OpPredictBatch, encodePredictReq(7, []uint32{1, 2, 3})); err != nil {
		f.Fatal(err)
	}
	f.Add(good.Bytes(), 0)
	f.Add([]byte{}, 0)
	f.Add([]byte{0x56, 0x50, 1, OpStats, 0, 0, 0, 0}, 64)
	f.Add([]byte{0x56, 0x50, 1, OpStats, 0xff, 0xff, 0xff, 0xff}, 64)
	f.Add([]byte{0x00, 0x00, 1, OpStats, 0, 0, 0, 0}, 0)
	f.Fuzz(func(t *testing.T, raw []byte, maxFrame int) {
		if maxFrame > 1<<16 {
			maxFrame = 1 << 16 // keep fuzz memory bounded
		}
		op, payload, err := readFrame(bytes.NewReader(raw), maxFrame)
		if err != nil {
			return
		}
		bound := maxFrame
		if bound <= 0 {
			bound = DefaultMaxFrame
		}
		if len(payload) > bound {
			t.Fatalf("accepted %d-byte payload past the %d-byte bound", len(payload), bound)
		}
		var out bytes.Buffer
		if err := writeFrame(&out, op, payload); err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		op2, payload2, err := readFrame(&out, maxFrame)
		if err != nil {
			t.Fatalf("re-read: %v", err)
		}
		if op2 != op || !bytes.Equal(payload2, payload) {
			t.Fatalf("frame round trip diverged: op %#x->%#x, %d->%d payload bytes",
				op, op2, len(payload), len(payload2))
		}
	})
}

// FuzzDecodeMessage drives every VP1 payload decoder with arbitrary
// payloads: no panics, and every accepted payload must re-encode to a
// decodable equivalent (decode∘encode = identity on the accepted
// set).
func FuzzDecodeMessage(f *testing.F) {
	f.Add(encodePredictReq(1, []uint32{10, 20}))
	f.Add(encodeEventReq(1, []trace.Event{{PC: 4, Value: 9}}))
	f.Add(encodeSessionReq(42))
	f.Add(encodeRestoreReq(42, []byte{0x56, 0x50, 0x53, 0x53}))
	f.Add(encodePredictResp(StatusOK, []uint32{5}))
	f.Add(encodePredictResp(StatusBusy, nil))
	f.Add(encodeRunResp(StatusOK, 3))
	f.Add(encodeStatusResp(StatusClosed))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, p []byte) {
		if session, pcs, err := decodePredictReq(p); err == nil {
			s2, pcs2, err := decodePredictReq(encodePredictReq(session, pcs))
			if err != nil || s2 != session || len(pcs2) != len(pcs) {
				t.Fatalf("predict req round trip: %v", err)
			}
		}
		if session, events, err := decodeEventReq(p); err == nil {
			s2, ev2, err := decodeEventReq(encodeEventReq(session, events))
			if err != nil || s2 != session || len(ev2) != len(events) {
				t.Fatalf("event req round trip: %v", err)
			}
		}
		if session, err := decodeSessionReq(p); err == nil {
			if s2, err := decodeSessionReq(encodeSessionReq(session)); err != nil || s2 != session {
				t.Fatalf("session req round trip: %v", err)
			}
		}
		if session, blob, err := decodeRestoreReq(p); err == nil {
			s2, b2, err := decodeRestoreReq(encodeRestoreReq(session, blob))
			if err != nil || s2 != session || !bytes.Equal(b2, blob) {
				t.Fatalf("restore req round trip: %v", err)
			}
		}
		if st, values, err := decodePredictResp(p); err == nil {
			st2, v2, err := decodePredictResp(encodePredictResp(st, values))
			if err != nil || st2 != st || len(v2) != len(values) {
				t.Fatalf("predict resp round trip: %v", err)
			}
		}
		if st, hits, err := decodeRunResp(p); err == nil {
			st2, h2, err := decodeRunResp(encodeRunResp(st, hits))
			if err != nil || st2 != st || (st == StatusOK && h2 != hits) {
				t.Fatalf("run resp round trip: %v", err)
			}
		}
		if st, err := decodeStatusResp(p); err == nil {
			if st2, err := decodeStatusResp(encodeStatusResp(st)); err != nil || st2 != st {
				t.Fatalf("status resp round trip: %v", err)
			}
		}
	})
}

// FuzzDecodeFrameReaderErrors pairs truncated streams with the frame
// reader: a short read must surface an error, never a partial frame.
func FuzzDecodeFrameReaderErrors(f *testing.F) {
	var good bytes.Buffer
	if err := writeFrame(&good, OpRunBatch, encodeEventReq(3, []trace.Event{{PC: 8, Value: 1}})); err != nil {
		f.Fatal(err)
	}
	full := good.Bytes()
	for cut := 0; cut < len(full); cut += 3 {
		f.Add(cut)
	}
	f.Fuzz(func(t *testing.T, cut int) {
		if cut < 0 || cut >= len(full) {
			t.Skip()
		}
		_, _, err := readFrame(bytes.NewReader(full[:cut]), 0)
		if err == nil {
			t.Fatalf("truncated frame (%d of %d bytes) accepted", cut, len(full))
		}
		if cut >= headerSize && err != io.ErrUnexpectedEOF {
			// Payload truncation is wrapped; just require an error.
			_ = err
		}
	})
}
