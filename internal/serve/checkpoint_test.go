package serve

import (
	"bytes"
	"net"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/leakcheck"
	"repro/internal/snapshot"
	"repro/internal/trace"
)

// ckptEvents builds a deterministic mixed-pattern trace.
func ckptEvents(n int, seed uint32) trace.Trace {
	t := make(trace.Trace, 0, n)
	rnd := seed | 1
	for i := 0; len(t) < n; i++ {
		t = append(t,
			trace.Event{PC: 0x2000, Value: 7},
			trace.Event{PC: 0x2004, Value: uint32(i) * 12},
		)
		rnd ^= rnd << 13
		rnd ^= rnd >> 17
		rnd ^= rnd << 5
		t = append(t, trace.Event{PC: 0x2008, Value: rnd & 0xff})
	}
	return t[:n]
}

var ckptSpec = core.Spec{Kind: "dfcm", L1: 8, L2: 10}

// TestCheckpointDrainAndWarmStart is the core durability property:
// close an engine with live sessions, boot a fresh one over the same
// directory, and the restored sessions must predict exactly as if the
// restart never happened — and the engine stats must continue from the
// pre-restart totals.
func TestCheckpointDrainAndWarmStart(t *testing.T) {
	leakcheck.Check(t) // shard + checkpoint-loop goroutines must drain
	dir := t.TempDir()
	events := ckptEvents(4000, 99)
	const cut = 2500
	sessions := []uint64{1, 2, 77}

	e1, err := NewEngine(Config{Spec: ckptSpec, Shards: 3, CheckpointDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range sessions {
		if _, st := e1.RunBatch(id, events[:cut]); st != StatusOK {
			t.Fatalf("warm RunBatch: %v", st)
		}
	}
	before := e1.Snapshot()
	e1.Close() // drain checkpoint

	files, err := filepath.Glob(filepath.Join(dir, "session-*.vps"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != len(sessions) {
		t.Fatalf("drain wrote %d files, want %d", len(files), len(sessions))
	}

	e2, err := NewEngine(Config{Spec: ckptSpec, Shards: 3, CheckpointDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	restored, skipped, err := e2.LoadCheckpoints()
	if err != nil || restored != len(sessions) || skipped != 0 {
		t.Fatalf("LoadCheckpoints = (%d, %d, %v), want (%d, 0, nil)", restored, skipped, err, len(sessions))
	}

	// Stats continuity: the warm-started engine reports the lifetime
	// totals the old one drained with.
	after := e2.Snapshot()
	if after.Predictions != before.Predictions || after.Hits != before.Hits || after.Updates != before.Updates {
		t.Fatalf("stats discontinuity: restored %+v, drained with %+v", after, before)
	}
	if after.Sessions != len(sessions) || after.Restored != uint64(len(sessions)) {
		t.Fatalf("restored engine reports %d sessions (%d restored)", after.Sessions, after.Restored)
	}

	// Prediction equivalence: the rest of the trace must score exactly
	// what an uninterrupted predictor scores.
	wantHits := uint32(0)
	p, err := ckptSpec.New()
	if err != nil {
		t.Fatal(err)
	}
	core.Run(p, trace.NewReader(events[:cut]))
	for _, ev := range events[cut:] {
		if p.Predict(ev.PC) == ev.Value {
			wantHits++
		}
		p.Update(ev.PC, ev.Value)
	}
	for _, id := range sessions {
		hits, st := e2.RunBatch(id, events[cut:])
		if st != StatusOK {
			t.Fatalf("session %d: %v", id, st)
		}
		if hits != wantHits {
			t.Errorf("session %d: %d hits after restart, uninterrupted run scores %d", id, hits, wantHits)
		}
	}
}

// TestCheckpointWarmStartTAGE re-runs the drain/warm-start equivalence
// for the tagged predictor, on a workload that keeps its tagged tables
// and global history hot — the restart only survives if the serialized
// ring and rebuilt folded registers are exact, not just the tables.
func TestCheckpointWarmStartTAGE(t *testing.T) {
	leakcheck.Check(t)
	dir := t.TempDir()
	spec := core.Spec{Kind: "tage", L1: 7, L2: 6, Tables: 4, Tag: 8, HistMin: 4, HistMax: 64}
	// Alternating strides per PC: base-unpredictable, history-determined.
	events := make(trace.Trace, 4000)
	vals := [2]uint32{}
	strides := [][]uint32{{3, 17}, {9, 2, 25}}
	for i := range events {
		w := i % 2
		vals[w] += strides[w][(i/2)%len(strides[w])]
		events[i] = trace.Event{PC: 0x3000 + uint32(4*w), Value: vals[w]}
	}
	const cut = 2600

	e1, err := NewEngine(Config{Spec: spec, Shards: 2, CheckpointDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if _, st := e1.RunBatch(5, events[:cut]); st != StatusOK {
		t.Fatalf("warm RunBatch: %v", st)
	}
	e1.Close()

	e2, err := NewEngine(Config{Spec: spec, Shards: 2, CheckpointDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	if restored, skipped, err := e2.LoadCheckpoints(); err != nil || restored != 1 || skipped != 0 {
		t.Fatalf("LoadCheckpoints = (%d, %d, %v)", restored, skipped, err)
	}

	p, err := spec.New()
	if err != nil {
		t.Fatal(err)
	}
	core.Run(p, trace.NewReader(events[:cut]))
	wantHits := uint32(0)
	for _, ev := range events[cut:] {
		if p.Predict(ev.PC) == ev.Value {
			wantHits++
		}
		p.Update(ev.PC, ev.Value)
	}
	hits, st := e2.RunBatch(5, events[cut:])
	if st != StatusOK {
		t.Fatalf("post-restart RunBatch: %v", st)
	}
	if hits != wantHits {
		t.Errorf("post-restart tail: %d hits, uninterrupted run scores %d", hits, wantHits)
	}
}

// TestSnapshotSessionOp exercises the wire-visible capture path: the
// blob must decode to the engine's spec, the session's counters, and a
// predictor equivalent to the live one.
func TestSnapshotSessionOp(t *testing.T) {
	e, err := NewEngine(Config{Spec: ckptSpec, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	events := ckptEvents(1500, 7)
	hits, st := e.RunBatch(5, events)
	if st != StatusOK {
		t.Fatal(st)
	}

	blob, st := e.SnapshotSession(5)
	if st != StatusOK {
		t.Fatalf("SnapshotSession: %v", st)
	}
	snap, err := snapshot.Decode(bytes.NewReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	if snap.Spec != ckptSpec {
		t.Errorf("snapshot spec %+v, want %+v", snap.Spec, ckptSpec)
	}
	want := snapshot.Meta{Session: 5, Predictions: uint64(len(events)), Hits: uint64(hits), Updates: uint64(len(events))}
	if snap.Meta != want {
		t.Errorf("snapshot meta %+v, want %+v", snap.Meta, want)
	}
	p, err := snap.Restore()
	if err != nil {
		t.Fatal(err)
	}
	pcs := []uint32{0x2000, 0x2004, 0x2008}
	values, st := e.PredictBatch(5, pcs)
	if st != StatusOK {
		t.Fatal(st)
	}
	for i, pc := range pcs {
		if got := p.Predict(pc); got != values[i] {
			t.Errorf("restored Predict(%#x) = %d, live session predicts %d", pc, got, values[i])
		}
	}
}

// TestSnapshotSessionStatuses: missing session and spec-less engine
// answer with the right statuses, and neither creates a session.
func TestSnapshotSessionStatuses(t *testing.T) {
	e, err := NewEngine(Config{Spec: ckptSpec, Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if _, st := e.SnapshotSession(404); st != StatusBadRequest {
		t.Errorf("missing session: %v, want bad-request", st)
	}
	if n := e.Snapshot().Sessions; n != 0 {
		t.Errorf("SnapshotSession created %d sessions", n)
	}

	noSpec, err := NewEngine(Config{NewPredictor: func() core.Predictor { return core.NewLastValue(4) }, Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer noSpec.Close()
	if st := noSpec.ResetSession(1); st != StatusOK { // create the session
		t.Fatal(st)
	}
	if _, st := noSpec.SnapshotSession(1); st != StatusUnsupported {
		t.Errorf("spec-less engine: %v, want unsupported", st)
	}
}

// TestPeriodicCheckpointLoop: with an interval configured, snapshots
// appear on disk without any Close, and the sweep counter advances.
func TestPeriodicCheckpointLoop(t *testing.T) {
	dir := t.TempDir()
	e, err := NewEngine(Config{Spec: ckptSpec, Shards: 2, CheckpointDir: dir, CheckpointInterval: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if _, st := e.RunBatch(9, ckptEvents(300, 3)); st != StatusOK {
		t.Fatal(st)
	}
	path := filepath.Join(dir, checkpointName(9))
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, err := os.Stat(path); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no background checkpoint appeared within 5s")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if st := e.Snapshot(); st.Checkpoints == 0 {
		t.Errorf("stats report %d checkpoint sweeps", st.Checkpoints)
	}
	if _, err := snapshot.ReadFile(path); err != nil {
		t.Errorf("background checkpoint unreadable: %v", err)
	}
}

// TestLoadCheckpointsSkips: corrupt files, foreign files and spec
// mismatches are skipped without failing the warm start, and a session
// that is already live is not clobbered by its disk copy.
func TestLoadCheckpointsSkips(t *testing.T) {
	dir := t.TempDir()

	// One good checkpoint, session 3.
	e1, err := NewEngine(Config{Spec: ckptSpec, Shards: 1, CheckpointDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if _, st := e1.RunBatch(3, ckptEvents(500, 5)); st != StatusOK {
		t.Fatal(st)
	}
	e1.Close()

	// A spec-mismatched checkpoint, session 4.
	other := core.Spec{Kind: "lvp", L1: 6}
	p, err := other.New()
	if err != nil {
		t.Fatal(err)
	}
	snap, err := snapshot.Capture(other, p, snapshot.Meta{Session: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := snapshot.WriteFile(filepath.Join(dir, checkpointName(4)), snap); err != nil {
		t.Fatal(err)
	}
	// A corrupt file that parses as a checkpoint name, and a foreign
	// file that does not.
	if err := os.WriteFile(filepath.Join(dir, checkpointName(5)), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "README"), []byte("not a snapshot"), 0o644); err != nil {
		t.Fatal(err)
	}

	e2, err := NewEngine(Config{Spec: ckptSpec, Shards: 1, CheckpointDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	// Make session 3 live before the load; the live one must win.
	if st := e2.ResetSession(3); st != StatusOK {
		t.Fatal(st)
	}
	restored, skipped, err := e2.LoadCheckpoints()
	if err != nil {
		t.Fatal(err)
	}
	if restored != 0 || skipped != 3 { // live-3, mismatched-4, corrupt-5
		t.Errorf("LoadCheckpoints = (%d, %d), want (0, 3)", restored, skipped)
	}
	if n := e2.Snapshot().Sessions; n != 1 {
		t.Errorf("engine holds %d sessions, want 1", n)
	}
}

// TestSnapshotSessionOverWire drives the op end-to-end through Server
// and Client framing, including a response larger than the request
// frame bound.
func TestSnapshotSessionOverWire(t *testing.T) {
	e, err := NewEngine(Config{Spec: ckptSpec, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(e, ServerConfig{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		_ = srv.Serve(ln)
		close(done)
	}()
	defer func() {
		_ = srv.Close()
		<-done
	}()

	c, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, st, err := c.RunBatch(11, ckptEvents(800, 11)); err != nil || st != StatusOK {
		t.Fatalf("RunBatch: %v %v", st, err)
	}
	blob, st, err := c.SnapshotSession(11)
	if err != nil || st != StatusOK {
		t.Fatalf("SnapshotSession: %v %v", st, err)
	}
	// A dfcm 2^8/2^10 state is several KB — check it actually decodes.
	snap, err := snapshot.Decode(bytes.NewReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	if snap.Meta.Session != 11 {
		t.Errorf("snapshot names session %d", snap.Meta.Session)
	}
	if _, st, err := c.SnapshotSession(404); err != nil || st != StatusBadRequest {
		t.Errorf("missing session over wire: %v %v", st, err)
	}
}
