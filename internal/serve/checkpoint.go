package serve

import (
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/snapshot"
)

// Internal shard ops. These never appear on the wire (the server
// dispatch rejects them) and bypass the closed gate: the drain
// checkpoint runs after the engine stops accepting external traffic.
const (
	opCaptureShard   = 0xF1
	opRestoreSession = 0xF2
	opSwapSession    = 0xF3
)

// sessionCapture pairs a session ID with its frozen snapshot, handed
// from the shard goroutine to the writer.
type sessionCapture struct {
	id   uint64
	snap *snapshot.Snapshot
}

// checkpointName is the per-session file name. The fixed-width hex ID
// keeps directory listings sorted by session.
func checkpointName(id uint64) string {
	return fmt.Sprintf("session-%016x.vps", id)
}

// parseCheckpointName inverts checkpointName.
func parseCheckpointName(name string) (uint64, bool) {
	rest, ok := strings.CutPrefix(name, "session-")
	if !ok {
		return 0, false
	}
	rest, ok = strings.CutSuffix(rest, ".vps")
	if !ok || len(rest) != 16 {
		return 0, false
	}
	id, err := strconv.ParseUint(rest, 16, 64)
	if err != nil {
		return 0, false
	}
	return id, true
}

// newRestoredSession builds a session around a predictor restored from
// a snapshot, resuming the lifetime counters where the snapshot left
// off. override, when non-nil, records the session's own canonical
// spec (a hot-swapped or spec-adopted session); nil means the engine's
// Config.Spec.
func newRestoredSession(p core.Predictor, meta snapshot.Meta, override *core.Spec) *session {
	sess := &session{p: p}
	sess.predictions.Store(meta.Predictions)
	sess.hits.Store(meta.Hits)
	sess.updates.Store(meta.Updates)
	if override != nil {
		ov := override.Canonical()
		sess.spec.Store(&ov)
	}
	return sess
}

// captureSession freezes one live session. Runs on the shard
// goroutine, so the predictor state and counters are a consistent
// point-in-time view with no request in flight. A session carrying a
// spec override (hot-swapped by the autotuner) is captured under that
// spec — its snapshot describes the predictor actually serving, so a
// warm restart rebuilds the swapped configuration.
func (e *Engine) captureSession(id uint64, sess *session) (*snapshot.Snapshot, error) {
	spec := e.cfg.Spec
	if ov := sess.spec.Load(); ov != nil {
		spec = *ov
	}
	return snapshot.Capture(spec, sess.p, snapshot.Meta{
		Session:     id,
		Predictions: sess.predictions.Load(),
		Hits:        sess.hits.Load(),
		Updates:     sess.updates.Load(),
	})
}

// handleCaptureShard snapshots every session on the shard. Runs on the
// shard goroutine; file I/O happens on the caller's side so the shard
// returns to serving as soon as the in-memory copies exist.
func (e *Engine) handleCaptureShard(s *shard, req request) {
	snaps := make([]sessionCapture, 0, len(s.sessions))
	for id, sess := range s.sessions {
		snap, err := e.captureSession(id, sess)
		if err != nil {
			e.checkpointErrors.Add(1)
			continue
		}
		snaps = append(snaps, sessionCapture{id: id, snap: snap})
	}
	req.reply <- response{status: StatusOK, snaps: snaps}
}

// handleRestoreSession installs a restored session on its shard. Two
// callers use it with different collision semantics: warm start
// (LoadCheckpoints) sends replace=false — a session that is already
// live wins over the disk copy, which is older by construction — and
// the wire RestoreSession op sends replace=true, because an explicit
// restore (a migration push) is authoritative. The session cap applies
// to new sessions either way.
func (e *Engine) handleRestoreSession(s *shard, req request) {
	if old, ok := s.sessions[req.session]; ok {
		if !req.replace {
			req.reply <- response{status: StatusBadRequest}
			return
		}
		s.sessions[req.session] = req.sess
		e.sessMu.Lock()
		e.byID[req.session] = req.sess
		e.sessMu.Unlock()
		// Credit the shard counters with the (wrapping) delta between
		// the replaced session's lifetime totals and the restored ones,
		// so engine Stats stay continuous across the swap.
		s.predictions.Add(req.sess.predictions.Load() - old.predictions.Load())
		s.hits.Add(req.sess.hits.Load() - old.hits.Load())
		s.updates.Add(req.sess.updates.Load() - old.updates.Load())
		e.restored.Add(1)
		req.reply <- response{status: StatusOK}
		return
	}
	if int(e.sessions.Load()) >= e.cfg.MaxSessions {
		req.reply <- response{status: StatusBusy}
		return
	}
	s.sessions[req.session] = req.sess
	e.sessMu.Lock()
	e.byID[req.session] = req.sess
	e.sessMu.Unlock()
	e.sessions.Add(1)
	s.occupancy.Add(1)
	// Credit the shard counters with the restored lifetime totals so
	// engine Stats continue from where the checkpoint left off.
	s.predictions.Add(req.sess.predictions.Load())
	s.hits.Add(req.sess.hits.Load())
	s.updates.Add(req.sess.updates.Load())
	e.restored.Add(1)
	req.reply <- response{status: StatusOK}
}

// submitInternal sends a checkpoint op straight to a shard, bypassing
// the closed gate and the backpressure shed: internal requests are
// rare, must not be dropped, and the drain checkpoint runs after the
// engine closes to external traffic. The send may block on a busy
// mailbox; the shard goroutine is alive until quit closes, which Close
// orders strictly after the last internal send.
func (e *Engine) submitInternal(s *shard, req request) response {
	req.reply = make(chan response, 1)
	s.mail <- req
	return <-req.reply
}

// CheckpointAll captures every live session and writes one snapshot
// file per session into CheckpointDir (atomically, via temp file and
// rename). It returns the number of files written and the first write
// error; failed sessions are counted in Stats.CheckpointErrors and do
// not block the rest of the sweep. Safe to call concurrently with
// traffic — each shard pauses only for its in-memory capture.
func (e *Engine) CheckpointAll() (written int, err error) {
	if e.cfg.CheckpointDir == "" {
		return 0, fmt.Errorf("serve: checkpointing disabled (no CheckpointDir)")
	}
	for _, s := range e.shards {
		resp := e.submitInternal(s, request{op: opCaptureShard})
		for _, c := range resp.snaps {
			path := filepath.Join(e.cfg.CheckpointDir, checkpointName(c.id))
			if werr := snapshot.WriteFile(path, c.snap); werr != nil {
				e.checkpointErrors.Add(1)
				if err == nil {
					err = werr
				}
				continue
			}
			written++
		}
	}
	e.checkpoints.Add(1)
	return written, err
}

// checkpointLoop runs the periodic background checkpoints until Close
// stops it.
func (e *Engine) checkpointLoop(interval time.Duration) {
	defer e.ckptWG.Done()
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			// Errors are counted in CheckpointErrors and surface in
			// Stats; the loop keeps trying on the next tick.
			_, _ = e.CheckpointAll()
		case <-e.ckptQuit:
			return
		}
	}
}

// LoadCheckpoints warm-starts the engine from CheckpointDir: every
// readable session-<id>.vps file whose spec matches the engine's
// (canonically — ignored fields don't block a restore) becomes a live
// session with its predictor state and lifetime counters intact.
// Unreadable, mismatched or unrestorable files are skipped, not fatal:
// a warm start must never be worse than a cold one. Call before
// serving traffic; restored sessions count in Stats.Restored.
func (e *Engine) LoadCheckpoints() (restored, skipped int, err error) {
	dir := e.cfg.CheckpointDir
	if dir == "" {
		return 0, 0, fmt.Errorf("serve: checkpointing disabled (no CheckpointDir)")
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		return 0, 0, err
	}
	want := e.cfg.Spec.Canonical()
	for _, ent := range ents {
		id, ok := parseCheckpointName(ent.Name())
		if !ok || ent.IsDir() {
			continue // not ours; leave it alone
		}
		snap, rerr := snapshot.ReadFile(filepath.Join(dir, ent.Name()))
		if rerr != nil {
			skipped++
			continue
		}
		// A snapshot under a different spec is normally a deliberate
		// cold start (changed boot flags) and is skipped. With
		// AdoptSnapshotSpecs — the autotuned server, whose sessions
		// drift from the boot spec by hot-swap — the session is rebuilt
		// under the snapshot's own spec, recorded as its override.
		var override *core.Spec
		if got := snap.Spec.Canonical(); got != want {
			if !e.cfg.AdoptSnapshotSpecs {
				skipped++
				continue
			}
			override = &got
		}
		p, rerr := snap.Restore()
		if rerr != nil {
			skipped++
			continue
		}
		sess := newRestoredSession(p, snap.Meta, override)
		resp := e.submitInternal(e.shardFor(id), request{op: opRestoreSession, session: id, sess: sess})
		if resp.status != StatusOK {
			skipped++
			continue
		}
		restored++
	}
	return restored, skipped, nil
}
