package serve

import (
	"bytes"
	"errors"
	"io"
	"reflect"
	"testing"

	"repro/internal/trace"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payload := []byte{1, 2, 3, 4, 5}
	if err := writeFrame(&buf, OpRunBatch, payload); err != nil {
		t.Fatal(err)
	}
	op, got, err := readFrame(&buf, 0)
	if err != nil {
		t.Fatal(err)
	}
	if op != OpRunBatch || !bytes.Equal(got, payload) {
		t.Errorf("round trip: op=%#x payload=%v", op, got)
	}
}

func TestFrameEmptyPayload(t *testing.T) {
	var buf bytes.Buffer
	if err := writeFrame(&buf, OpStats, nil); err != nil {
		t.Fatal(err)
	}
	op, payload, err := readFrame(&buf, 0)
	if err != nil {
		t.Fatal(err)
	}
	if op != OpStats || len(payload) != 0 {
		t.Errorf("op=%#x len=%d", op, len(payload))
	}
}

func TestFrameGuards(t *testing.T) {
	// Bad magic.
	if _, _, err := readFrame(bytes.NewReader([]byte("XXxxxxxx")), 0); !errors.Is(err, ErrBadMagic) {
		t.Errorf("bad magic: %v", err)
	}
	// Bad version.
	bad := []byte{0x56, 0x50, 99, OpStats, 0, 0, 0, 0}
	if _, _, err := readFrame(bytes.NewReader(bad), 0); !errors.Is(err, ErrBadVersion) {
		t.Errorf("bad version: %v", err)
	}
	// Oversized frame rejected before allocating the payload.
	var buf bytes.Buffer
	if err := writeFrame(&buf, OpStats, make([]byte, 100)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := readFrame(&buf, 50); !errors.Is(err, ErrFrameSize) {
		t.Errorf("oversized: %v", err)
	}
	// Truncated payload.
	buf.Reset()
	if err := writeFrame(&buf, OpStats, make([]byte, 100)); err != nil {
		t.Fatal(err)
	}
	short := buf.Bytes()[:buf.Len()-10]
	if _, _, err := readFrame(bytes.NewReader(short), 0); err == nil {
		t.Error("truncated frame read succeeded")
	}
	// Truncated header.
	if _, _, err := readFrame(bytes.NewReader([]byte{0x56}), 0); err != io.ErrUnexpectedEOF {
		t.Errorf("truncated header: %v", err)
	}
}

func TestPredictReqRoundTrip(t *testing.T) {
	pcs := []uint32{0x1000, 0x1004, 0xdeadbeef}
	session, got, err := decodePredictReq(encodePredictReq(42, pcs))
	if err != nil {
		t.Fatal(err)
	}
	if session != 42 || !reflect.DeepEqual(got, pcs) {
		t.Errorf("session=%d pcs=%v", session, got)
	}
	// Empty batch is legal.
	if _, got, err := decodePredictReq(encodePredictReq(7, nil)); err != nil || len(got) != 0 {
		t.Errorf("empty batch: %v %v", got, err)
	}
	// Count/body mismatch rejected.
	bad := encodePredictReq(1, pcs)[:14]
	if _, _, err := decodePredictReq(bad); !errors.Is(err, ErrTruncated) {
		t.Errorf("mismatched count: %v", err)
	}
	if _, _, err := decodePredictReq([]byte{1, 2}); !errors.Is(err, ErrTruncated) {
		t.Errorf("short payload: %v", err)
	}
}

func TestEventReqRoundTrip(t *testing.T) {
	events := []trace.Event{{PC: 0x40, Value: 9}, {PC: 0x44, Value: 0xffffffff}}
	session, got, err := decodeEventReq(encodeEventReq(99, events))
	if err != nil {
		t.Fatal(err)
	}
	if session != 99 || !reflect.DeepEqual(got, events) {
		t.Errorf("session=%d events=%v", session, got)
	}
	bad := encodeEventReq(1, events)[:17]
	if _, _, err := decodeEventReq(bad); !errors.Is(err, ErrTruncated) {
		t.Errorf("mismatched count: %v", err)
	}
}

func TestSessionReqRoundTrip(t *testing.T) {
	id, err := decodeSessionReq(encodeSessionReq(1 << 40))
	if err != nil || id != 1<<40 {
		t.Errorf("id=%d err=%v", id, err)
	}
	if _, err := decodeSessionReq([]byte{1, 2, 3}); !errors.Is(err, ErrTruncated) {
		t.Errorf("short session req: %v", err)
	}
}

func TestPredictRespRoundTrip(t *testing.T) {
	values := []uint32{1, 2, 3}
	st, got, err := decodePredictResp(encodePredictResp(StatusOK, values))
	if err != nil || st != StatusOK || !reflect.DeepEqual(got, values) {
		t.Errorf("st=%v values=%v err=%v", st, got, err)
	}
	// Non-OK statuses carry no values.
	st, got, err = decodePredictResp(encodePredictResp(StatusBusy, values))
	if err != nil || st != StatusBusy || got != nil {
		t.Errorf("busy: st=%v values=%v err=%v", st, got, err)
	}
	if _, _, err := decodePredictResp(nil); !errors.Is(err, ErrTruncated) {
		t.Errorf("empty resp: %v", err)
	}
}

func TestRunRespRoundTrip(t *testing.T) {
	st, hits, err := decodeRunResp(encodeRunResp(StatusOK, 12345))
	if err != nil || st != StatusOK || hits != 12345 {
		t.Errorf("st=%v hits=%d err=%v", st, hits, err)
	}
	st, hits, err = decodeRunResp(encodeRunResp(StatusClosed, 777))
	if err != nil || st != StatusClosed || hits != 0 {
		t.Errorf("closed: st=%v hits=%d err=%v", st, hits, err)
	}
}

func TestStatusString(t *testing.T) {
	for st, want := range map[Status]string{
		StatusOK: "ok", StatusBusy: "busy", StatusClosed: "closed",
		StatusBadRequest: "bad-request", StatusUnsupported: "unsupported",
		Status(42): "status(42)",
	} {
		if st.String() != want {
			t.Errorf("%d.String() = %q, want %q", st, st.String(), want)
		}
	}
}
