package serve

import (
	"net"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/leakcheck"
	"repro/internal/trace"
)

// TestConnScratchAliasingUnderConcurrency: the per-connection reuse of
// frame/decode/response buffers must never leak bytes between
// connections. Eight connections stream interleaved PredictBatch,
// RunBatch and UpdateBatch frames of varying sizes against distinct
// sessions while each checks every response against its own local
// replica — a scratch buffer shared across connections (or recycled
// while a response was still being written) corrupts a response body
// and fails the value comparison, and the race detector catches the
// unsynchronized write. Run with -race; leakcheck verifies the
// connection goroutines drain.
func TestConnScratchAliasingUnderConcurrency(t *testing.T) {
	leakcheck.Check(t)
	_, addr := startServer(t, Config{Shards: 4}, ServerConfig{})

	const conns = 8
	var wg sync.WaitGroup
	errs := make(chan error, conns)
	for k := 0; k < conns; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			c, err := Dial(addr)
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			session := uint64(k + 1)
			events := testEvents(uint32(0x1000*(k+1)), 4000)
			replica := newTestPredictor()
			var pcs, want, got []uint32
			// Vary the chunk size per connection so frames of different
			// lengths interleave on the server — exactly the traffic
			// shape that exposes a scratch buffer sized for one
			// connection being served to another.
			chunk := 64 << (k % 4)
			for start := 0; start < len(events); start += chunk {
				end := min(start+chunk, len(events))
				batch := events[start:end]
				pcs = pcs[:0]
				want = want[:0]
				for _, e := range batch {
					pcs = append(pcs, e.PC)
					want = append(want, replica.Predict(e.PC))
				}
				values, st, err := c.PredictBatchAppend(session, pcs, got)
				if err != nil || st != StatusOK {
					errs <- err
					return
				}
				got = values
				for i := range want {
					if got[i] != want[i] {
						t.Errorf("conn %d batch at %d: prediction %d is %#x, replica says %#x",
							k, start, i, got[i], want[i])
						return
					}
				}
				if st, err := c.UpdateBatch(session, batch); err != nil || st != StatusOK {
					errs <- err
					return
				}
				for _, e := range batch {
					replica.Update(e.PC, e.Value)
				}
			}
		}(k)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}

// TestServeSteadyStateZeroAlloc: the acceptance budget — once a
// connection's scratch buffers and the session are warm, a
// PredictBatch or RunBatch frame allocates nothing at any layer:
// frame decode, engine round trip, batch loop, response encode.
// dispatch is driven directly (no socket) so the measurement isolates
// the serving hot path from kernel I/O.
func TestServeSteadyStateZeroAlloc(t *testing.T) {
	if leakcheck.RaceEnabled {
		t.Skip("race detector instrumentation allocates; zero-alloc budget holds in pure builds only")
	}
	e, err := NewEngine(Config{Shards: 1, NewPredictor: newTestPredictor})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	s := NewServer(e, ServerConfig{})

	events := testEvents(0x1000, 512)
	pcs := make([]uint32, len(events))
	for i, ev := range events {
		pcs[i] = ev.PC
	}
	predictReq := encodePredictReq(7, pcs)
	runReq := encodeEventReq(7, events)
	sc := &connScratch{}

	// Warm: create the session, size every scratch buffer.
	sc.resp = s.dispatch(OpPredictBatch, predictReq, sc)
	sc.resp = s.dispatch(OpRunBatch, runReq, sc)

	if n := testing.AllocsPerRun(100, func() {
		sc.resp = s.dispatch(OpPredictBatch, predictReq, sc)
	}); n != 0 {
		t.Errorf("steady-state PredictBatch frame: %.1f allocs/op, want 0", n)
	}
	if n := testing.AllocsPerRun(100, func() {
		sc.resp = s.dispatch(OpRunBatch, runReq, sc)
	}); n != 0 {
		t.Errorf("steady-state RunBatch frame: %.1f allocs/op, want 0", n)
	}
	if n := testing.AllocsPerRun(100, func() {
		sc.resp = s.dispatch(OpUpdateBatch, runReq, sc)
	}); n != 0 {
		t.Errorf("steady-state UpdateBatch frame: %.1f allocs/op, want 0", n)
	}
}

// TestEngineBatchZeroAlloc: the engine API alone (no frame codec) is
// also allocation-free at steady state, for callers embedding the
// engine directly.
func TestEngineBatchZeroAlloc(t *testing.T) {
	if leakcheck.RaceEnabled {
		t.Skip("race detector instrumentation allocates; zero-alloc budget holds in pure builds only")
	}
	e, err := NewEngine(Config{Shards: 1, NewPredictor: newTestPredictor})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	events := testEvents(0x2000, 512)
	pcs := make([]uint32, len(events))
	for i, ev := range events {
		pcs[i] = ev.PC
	}
	out, st := e.PredictBatchAppend(9, pcs, nil)
	if st != StatusOK {
		t.Fatalf("warmup predict: %v", st)
	}
	if _, st := e.RunBatch(9, events); st != StatusOK {
		t.Fatalf("warmup run: %v", st)
	}

	if n := testing.AllocsPerRun(100, func() {
		out, _ = e.PredictBatchAppend(9, pcs, out)
	}); n != 0 {
		t.Errorf("steady-state PredictBatchAppend: %.1f allocs/op, want 0", n)
	}
	if n := testing.AllocsPerRun(100, func() {
		_, _ = e.RunBatch(9, events)
	}); n != 0 {
		t.Errorf("steady-state Engine.RunBatch: %.1f allocs/op, want 0", n)
	}
}

// TestPredictBatchAppendReuses: the Into/Append decoding paths reuse
// caller storage when capacity suffices and preserve values exactly.
func TestPredictBatchAppendReuses(t *testing.T) {
	e, err := NewEngine(Config{Shards: 1, NewPredictor: newTestPredictor})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	pcs := []uint32{0x1000, 0x1004, 0x1008}
	first, st := e.PredictBatchAppend(3, pcs, nil)
	if st != StatusOK || len(first) != len(pcs) {
		t.Fatalf("first call: %v, %d values", st, len(first))
	}
	second, st := e.PredictBatchAppend(3, pcs, first)
	if st != StatusOK {
		t.Fatalf("second call: %v", st)
	}
	if &first[0] != &second[0] {
		t.Error("PredictBatchAppend did not reuse caller storage with sufficient capacity")
	}
	baseline, _ := e.PredictBatch(3, pcs)
	for i := range baseline {
		if second[i] != baseline[i] {
			t.Errorf("value %d: append path %#x, allocating path %#x", i, second[i], baseline[i])
		}
	}
}

// TestRunBatchScorerParityServed: OpRunBatch through core.RunBatch
// must preserve Scorer semantics (any-component-correct), and
// OpUpdateBatch must keep judging Scorers by Predict — the two ops
// score differently by design.
func TestRunBatchScorerParityServed(t *testing.T) {
	mk := func() core.Predictor { return core.NewPerfectHybrid(core.NewStride(8), core.NewFCM(8, 10)) }
	e, err := NewEngine(Config{Shards: 1, NewPredictor: mk})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	events := testEvents(0x3000, 2000)
	hits, st := e.RunBatch(5, events)
	if st != StatusOK {
		t.Fatalf("RunBatch: %v", st)
	}
	want := core.Run(mk(), trace.NewReader(events))
	if uint64(hits) != want.Correct {
		t.Errorf("served Scorer replay: %d hits, offline %d", hits, want.Correct)
	}
}

// --- benchmarks: serving hot path ---
//
// Dispatch-level: the full frame path (decode -> engine round trip ->
// concrete batch loop -> encode) without kernel I/O. allocs/op is the
// acceptance budget — `make bench` fails if either steady state is
// nonzero. ns/op is per frame of benchServeBatch events.

const benchServeBatch = 2048

func benchDispatch(b *testing.B, op byte, payload []byte) {
	b.Helper()
	e, err := NewEngine(Config{Shards: 1, NewPredictor: newTestPredictor})
	if err != nil {
		b.Fatal(err)
	}
	defer e.Close()
	s := NewServer(e, ServerConfig{})
	sc := &connScratch{}
	sc.resp = s.dispatch(op, payload, sc) // warm session + scratch
	b.SetBytes(int64(len(payload)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sc.resp = s.dispatch(op, payload, sc)
	}
}

func BenchmarkServeDispatchRunBatch(b *testing.B) {
	benchDispatch(b, OpRunBatch, encodeEventReq(1, testEvents(0x1000, benchServeBatch)))
}

func BenchmarkServeDispatchPredictBatch(b *testing.B) {
	events := testEvents(0x1000, benchServeBatch)
	pcs := make([]uint32, len(events))
	for i, ev := range events {
		pcs[i] = ev.PC
	}
	benchDispatch(b, OpPredictBatch, encodePredictReq(1, pcs))
}

// Wire-level: the same path over a real loopback socket and client,
// measuring served round-trip throughput end to end. allocs/op counts
// the client side too (request encode + response decode), which the
// reusable client buffers also hold at zero steady-state.
func BenchmarkServeWireRunBatch(b *testing.B) {
	e, err := NewEngine(Config{Shards: 1, NewPredictor: newTestPredictor})
	if err != nil {
		b.Fatal(err)
	}
	srv := NewServer(e, ServerConfig{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		_ = srv.Serve(ln)
		close(done)
	}()
	defer func() {
		_ = srv.Close()
		<-done
	}()
	c, err := Dial(ln.Addr().String())
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	events := testEvents(0x1000, benchServeBatch)
	if _, st, err := c.RunBatch(1, events); err != nil || st != StatusOK {
		b.Fatalf("warmup: %v %v", st, err)
	}
	b.SetBytes(int64(len(events) * 8))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, st, err := c.RunBatch(1, events); err != nil || st != StatusOK {
			b.Fatalf("RunBatch: %v %v", st, err)
		}
	}
}
