package serve

import (
	"repro/internal/core"
	"repro/internal/trace"
)

// Tap observes a mirror of the engine's training traffic — the hook
// the online autotuner (internal/autotune) hangs its shadow
// evaluation on. Mirror is invoked on the shard goroutine for every
// UpdateBatch and RunBatch, after the session's predictor has been
// trained with the events and strictly before the reply is released
// back to the caller (the caller owns the events storage and may
// reuse it the moment the reply arrives).
//
// Contract: Mirror must not block — the serving hot path runs it
// inline — and must not retain events past the call; an
// implementation that wants the data copies it into storage it owns
// and sheds when its own queue is full. seq is the session's lifetime
// update count before this batch, a deterministic per-session
// position that sampling decisions can key on.
type Tap interface {
	Mirror(session, seq uint64, events []trace.Event)
}

// SetTap installs (or, with nil, removes) the engine's traffic tap.
// Install the tap before traffic that should be observed; the swap
// itself is atomic and safe against concurrent traffic, which simply
// sees the old value until the store lands.
func (e *Engine) SetTap(t Tap) {
	if t == nil {
		e.tap.Store(nil)
		return
	}
	e.tap.Store(&t)
}

// mirror forwards one trained batch to the tap, if any. Runs on the
// shard goroutine; kept tiny so the no-tap configuration pays one
// atomic load per batch.
func (e *Engine) mirror(session, seq uint64, events []trace.Event) {
	if tp := e.tap.Load(); tp != nil {
		(*tp).Mirror(session, seq, events)
	}
}

// SwapSession atomically replaces a live session's predictor with p —
// the autotuner's promotion path, run as an internal op on the
// session's shard goroutine so it serializes with the session's
// traffic: every event is processed entirely by the old predictor or
// entirely by the new one, never split. Lifetime counters survive the
// swap (stats continuity); the windowed accuracy buckets reset, since
// they now measure a different predictor. spec must describe p: a
// checkpoint taken after the swap records it as the session's
// canonical spec, so a warm restart rebuilds the swapped
// configuration, not the engine default.
//
// A swap never creates a session (missing ones answer
// StatusBadRequest) and is shed like ordinary traffic when the shard
// mailbox is full (StatusBusy) — the tuner retries at a later
// evaluation instead of blocking.
func (e *Engine) SwapSession(sessionID uint64, spec core.Spec, p core.Predictor) Status {
	if p == nil || spec.Kind == "" {
		return StatusBadRequest
	}
	return e.submit(request{op: opSwapSession, session: sessionID, newP: p, newSpec: spec}).status
}

// handleSwapSession installs the replacement predictor on the shard
// goroutine.
func (e *Engine) handleSwapSession(s *shard, req request) {
	sess, ok := s.sessions[req.session]
	if !ok {
		req.reply <- response{status: StatusBadRequest}
		return
	}
	sess.p = req.newP
	spec := req.newSpec.Canonical()
	sess.spec.Store(&spec)
	sess.swaps.Add(1)
	sess.winLookups.Store(0)
	sess.winHits.Store(0)
	sess.prevLookups.Store(0)
	sess.prevHits.Store(0)
	e.swaps.Add(1)
	req.reply <- response{status: StatusOK}
}
