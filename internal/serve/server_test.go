package serve

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"net"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/leakcheck"
	"repro/internal/trace"
)

// startServer runs a server over a fresh engine on a loopback
// listener and returns its address. Cleanup closes everything.
func startServer(t *testing.T, cfg Config, scfg ServerConfig) (*Server, string) {
	t.Helper()
	if cfg.NewPredictor == nil {
		cfg.NewPredictor = newTestPredictor
	}
	e, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(e, scfg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		srv.Serve(ln)
		close(done)
	}()
	t.Cleanup(func() {
		srv.Close()
		<-done
	})
	return srv, ln.Addr().String()
}

func TestServerRunBatchMatchesOffline(t *testing.T) {
	_, addr := startServer(t, Config{Shards: 4}, ServerConfig{})
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	events := testEvents(0x1000, 4000)
	want := offlineHits(t, events)
	var hits uint64
	for start := 0; start < len(events); start += 256 {
		end := min(start+256, len(events))
		h, st, err := c.RunBatch(1, events[start:end])
		if err != nil || st != StatusOK {
			t.Fatalf("RunBatch: %v %v", st, err)
		}
		hits += uint64(h)
	}
	if hits != want {
		t.Errorf("served replay: %d hits, offline %d", hits, want)
	}
}

// TestServerConcurrentConnections is the acceptance-criteria test:
// ≥ 8 concurrent client connections streaming interleaved
// PredictBatch/UpdateBatch frames, each session's result matching its
// offline run.
func TestServerConcurrentConnections(t *testing.T) {
	leakcheck.Check(t)
	const conns = 10
	_, addr := startServer(t, Config{Shards: 4, MailboxDepth: 512}, ServerConfig{})

	var wg sync.WaitGroup
	errs := make(chan string, conns)
	for g := 0; g < conns; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c, err := Dial(addr)
			if err != nil {
				errs <- err.Error()
				return
			}
			defer c.Close()

			events := testEvents(uint32(0x1000+0x1000*g), 3000)
			p, _ := testSpec.New()
			want := core.Run(p, trace.NewReader(events)).Correct

			// Interleave PredictBatch and UpdateBatch frames, scoring
			// client-side. Batch size 1 keeps the split path
			// sequentially consistent with the offline loop.
			session := uint64(g)
			var hits uint64
			pcs := make([]uint32, 1)
			evs := make([]trace.Event, 1)
			for i, ev := range events {
				pcs[0] = ev.PC
				for {
					values, st, err := c.PredictBatch(session, pcs)
					if err != nil {
						errs <- err.Error()
						return
					}
					if st == StatusBusy {
						continue
					}
					if st != StatusOK {
						errs <- "predict: " + st.String()
						return
					}
					if values[0] == ev.Value {
						hits++
					}
					break
				}
				evs[0] = ev
				for {
					st, err := c.UpdateBatch(session, evs)
					if err != nil {
						errs <- err.Error()
						return
					}
					if st == StatusBusy {
						continue
					}
					if st != StatusOK {
						errs <- "update: " + st.String()
						return
					}
					break
				}
				// Every so often interleave a larger predict-only
				// frame against the same tables; harmless reads.
				if i%500 == 499 {
					if _, _, err := c.PredictBatch(session, pcs[:1]); err != nil {
						errs <- err.Error()
						return
					}
				}
			}
			if hits != want {
				errs <- "conn hit mismatch"
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for msg := range errs {
		t.Error(msg)
	}
}

func TestServerStatsOps(t *testing.T) {
	srv, addr := startServer(t, Config{Shards: 2}, ServerConfig{})
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	events := testEvents(0x1000, 500)
	if _, st, err := c.RunBatch(3, events); err != nil || st != StatusOK {
		t.Fatalf("RunBatch: %v %v", st, err)
	}
	if st, err := c.ResetSession(3); err != nil || st != StatusOK {
		t.Fatalf("ResetSession: %v %v", st, err)
	}

	// Stats over the protocol.
	stats, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Predictions != 500 || stats.Resets != 1 || stats.Sessions != 1 {
		t.Errorf("protocol stats: %+v", stats)
	}

	// Same snapshot over the HTTP handler.
	rec := httptest.NewRecorder()
	StatsHandler(srv.Engine()).ServeHTTP(rec, httptest.NewRequest("GET", "/stats", nil))
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Errorf("content type %q", ct)
	}
	var httpStats Stats
	if err := json.Unmarshal(rec.Body.Bytes(), &httpStats); err != nil {
		t.Fatalf("decoding HTTP stats: %v", err)
	}
	if httpStats.Predictions != 500 || httpStats.Predictor != stats.Predictor {
		t.Errorf("HTTP stats: %+v", httpStats)
	}
}

func TestServerMaxFrameGuard(t *testing.T) {
	_, addr := startServer(t, Config{Shards: 1}, ServerConfig{MaxFrame: 64})
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	// A frame header declaring a payload beyond MaxFrame must get the
	// connection dropped without the server reading the payload.
	var hdr [headerSize]byte
	binary.BigEndian.PutUint16(hdr[0:], protoMagic)
	hdr[2] = protoVersion
	hdr[3] = OpPredictBatch
	binary.BigEndian.PutUint32(hdr[4:], 1<<30)
	if _, err := conn.Write(hdr[:]); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 1)
	if _, err := conn.Read(buf); err == nil {
		t.Error("server answered an oversized frame instead of closing")
	}
}

func TestServerMalformedPayloadKeepsConnection(t *testing.T) {
	_, addr := startServer(t, Config{Shards: 1}, ServerConfig{})
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Hand-roll a PredictBatch whose count disagrees with its body.
	payload := encodePredictReq(1, []uint32{0x40, 0x44})[:14]
	p, err := c.roundTrip(OpPredictBatch, payload)
	if err != nil {
		t.Fatal(err)
	}
	st, _, err := decodePredictResp(p)
	if err != nil || st != StatusBadRequest {
		t.Errorf("malformed payload: st=%v err=%v", st, err)
	}
	// The same connection still serves well-formed requests.
	if _, st, err := c.RunBatch(1, trace.Trace{{PC: 4, Value: 0}}); err != nil || st != StatusOK {
		t.Errorf("follow-up request: st=%v err=%v", st, err)
	}
}

func TestServerUnknownOp(t *testing.T) {
	_, addr := startServer(t, Config{Shards: 1}, ServerConfig{})
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	p, err := c.roundTrip(0x7f, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st, err := decodeStatusResp(p); err != nil || st != StatusBadRequest {
		t.Errorf("unknown op: st=%v err=%v", st, err)
	}
}

func TestServerGracefulShutdown(t *testing.T) {
	// Static rule says every goroutine is joinable; this proves the
	// drain path actually joins them all.
	leakcheck.Check(t)
	srv, addr := startServer(t, Config{Shards: 1}, ServerConfig{})
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	events := testEvents(0x1000, 100)
	if _, st, err := c.RunBatch(1, events); err != nil || st != StatusOK {
		t.Fatalf("pre-shutdown batch: %v %v", st, err)
	}

	// Drain with a generous deadline: the connected client keeps
	// being served until it disconnects.
	done := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		done <- srv.Shutdown(ctx)
	}()

	// New connections are refused or closed immediately once
	// draining; give the shutdown a moment to close the listener.
	time.Sleep(50 * time.Millisecond)
	if c2, err := Dial(addr); err == nil {
		if _, _, err := c2.RunBatch(2, events); err == nil {
			t.Error("request on a post-shutdown connection succeeded")
		}
		c2.Close()
	}

	// The live connection still works mid-drain.
	if _, st, err := c.RunBatch(1, events); err != nil || st != StatusOK {
		t.Errorf("mid-drain batch: %v %v", st, err)
	}
	c.Close()
	if err := <-done; err != nil {
		t.Errorf("graceful shutdown returned %v", err)
	}
	// Engine is closed after drain.
	if _, st := srv.Engine().RunBatch(9, events); st != StatusClosed {
		t.Errorf("engine after shutdown: %v, want closed", st)
	}
}
