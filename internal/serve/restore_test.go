package serve

import (
	"net"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/trace"
)

// restoreSpec is a bigger configuration than testSpec so snapshot
// blobs exceed DefaultMaxFrame — the size class the oversized-frame
// tests need.
var restoreSpec = core.Spec{Kind: "dfcm", L1: 17, L2: 14}

// predictAll replays events through the engine in predict/update
// batches of the given size and returns every prediction, in order.
func predictAll(t *testing.T, e *Engine, session uint64, events trace.Trace, batch int) []uint32 {
	t.Helper()
	var out []uint32
	pcs := make([]uint32, 0, batch)
	for start := 0; start < len(events); start += batch {
		end := min(start+batch, len(events))
		chunk := events[start:end]
		pcs = pcs[:0]
		for _, ev := range chunk {
			pcs = append(pcs, ev.PC)
		}
		values, st := e.PredictBatch(session, pcs)
		if st != StatusOK {
			t.Fatalf("PredictBatch: %v", st)
		}
		out = append(out, values...)
		if st := e.UpdateBatch(session, chunk); st != StatusOK {
			t.Fatalf("UpdateBatch: %v", st)
		}
	}
	return out
}

// TestEngineRestoreSessionZeroLoss is the engine-level half of the
// migration acceptance criterion: train a session on engine A, move
// it to engine B via SnapshotSession → RestoreSession, and require
// the remaining predictions to be bit-identical to an unmigrated run
// on a single engine.
func TestEngineRestoreSessionZeroLoss(t *testing.T) {
	events := testEvents(0x4000, 6000)
	const session, batch = 77, 16
	half := len(events) / 2

	ref := newTestEngine(t, Config{Spec: testSpec, Shards: 2})
	defer ref.Close()
	wantFirst := predictAll(t, ref, session, events[:half], batch)
	wantRest := predictAll(t, ref, session, events[half:], batch)

	a := newTestEngine(t, Config{Spec: testSpec, Shards: 2})
	defer a.Close()
	b := newTestEngine(t, Config{Spec: testSpec, Shards: 2})
	defer b.Close()
	gotFirst := predictAll(t, a, session, events[:half], batch)
	blob, st := a.SnapshotSession(session)
	if st != StatusOK {
		t.Fatalf("SnapshotSession: %v", st)
	}
	if st := b.RestoreSession(session, blob); st != StatusOK {
		t.Fatalf("RestoreSession: %v", st)
	}
	gotRest := predictAll(t, b, session, events[half:], batch)

	for i := range wantFirst {
		if gotFirst[i] != wantFirst[i] {
			t.Fatalf("pre-migration prediction %d diverged: %d != %d", i, gotFirst[i], wantFirst[i])
		}
	}
	for i := range wantRest {
		if gotRest[i] != wantRest[i] {
			t.Fatalf("post-migration prediction %d diverged: %d != %d", i, gotRest[i], wantRest[i])
		}
	}

	// Lifetime counters moved with the state.
	stats := b.Snapshot()
	if stats.Predictions != uint64(len(events)) {
		t.Errorf("restored engine predictions = %d, want %d", stats.Predictions, len(events))
	}
	if stats.Restored != 1 {
		t.Errorf("restored counter = %d, want 1", stats.Restored)
	}
}

func TestEngineRestoreSessionStatuses(t *testing.T) {
	e := newTestEngine(t, Config{Spec: testSpec, Shards: 1})
	defer e.Close()
	events := testEvents(0x1000, 500)
	if _, st := e.RunBatch(5, events); st != StatusOK {
		t.Fatalf("seed RunBatch: %v", st)
	}
	blob, st := e.SnapshotSession(5)
	if st != StatusOK {
		t.Fatalf("SnapshotSession: %v", st)
	}

	// Undecodable bytes.
	if st := e.RestoreSession(6, []byte("not a snapshot")); st != StatusBadRequest {
		t.Errorf("garbage blob: %v, want bad-request", st)
	}
	if st := e.RestoreSession(6, nil); st != StatusBadRequest {
		t.Errorf("empty blob: %v, want bad-request", st)
	}

	// Meta session ID disagreeing with the addressed session.
	if st := e.RestoreSession(6, blob); st != StatusBadRequest {
		t.Errorf("session mismatch: %v, want bad-request", st)
	}

	// Spec mismatch: an engine running a different predictor refuses
	// the snapshot rather than loading it wrong.
	other := newTestEngine(t, Config{Spec: core.Spec{Kind: "fcm", L1: 10, L2: 10}, Shards: 1})
	defer other.Close()
	if st := other.RestoreSession(5, blob); st != StatusSpecMismatch {
		t.Errorf("foreign spec: %v, want spec-mismatch", st)
	}

	// No spec: the engine cannot validate what it is restoring.
	bare := newTestEngine(t, Config{NewPredictor: newTestPredictor, Shards: 1})
	defer bare.Close()
	if st := bare.RestoreSession(5, blob); st != StatusUnsupported {
		t.Errorf("spec-less engine: %v, want unsupported", st)
	}

	// Replace semantics: a live session is overwritten, and its state
	// afterwards equals the snapshot, not the overwritten session.
	if _, st := e.RunBatch(9, testEvents(0x9000, 300)); st != StatusOK {
		t.Fatalf("live session: %v", st)
	}
	blob5, _ := e.SnapshotSession(5)
	if st := e.RestoreSession(5, blob5); st != StatusOK {
		t.Errorf("restore over live session: %v, want ok", st)
	}
	stats := e.Snapshot()
	if stats.Sessions != 2 {
		t.Errorf("sessions after replace = %d, want 2", stats.Sessions)
	}
}

// TestServerRestoreSessionWire round-trips a migration over the
// protocol: snapshot from one server, restore into another, and the
// destination session continues exactly where the source left off.
func TestServerRestoreSessionWire(t *testing.T) {
	_, addrA := startServer(t, Config{Spec: testSpec, NewPredictor: newTestPredictor, Shards: 2}, ServerConfig{})
	_, addrB := startServer(t, Config{Spec: testSpec, NewPredictor: newTestPredictor, Shards: 2}, ServerConfig{})
	ca, err := Dial(addrA)
	if err != nil {
		t.Fatal(err)
	}
	defer ca.Close()
	cb, err := Dial(addrB)
	if err != nil {
		t.Fatal(err)
	}
	defer cb.Close()

	events := testEvents(0x2000, 2000)
	half := len(events) / 2
	const session = 11

	// Ground truth: the whole trace on one engine.
	p, _ := testSpec.New()
	want := core.Run(p, trace.NewReader(events)).Correct

	var hits uint64
	h, st, err := ca.RunBatch(session, events[:half])
	if err != nil || st != StatusOK {
		t.Fatalf("first half: %v %v", st, err)
	}
	hits += uint64(h)

	blob, st, err := ca.SnapshotSession(session)
	if err != nil || st != StatusOK {
		t.Fatalf("SnapshotSession: %v %v", st, err)
	}
	st, err = cb.RestoreSession(session, blob)
	if err != nil || st != StatusOK {
		t.Fatalf("RestoreSession: %v %v", st, err)
	}

	h, st, err = cb.RunBatch(session, events[half:])
	if err != nil || st != StatusOK {
		t.Fatalf("second half: %v %v", st, err)
	}
	hits += uint64(h)
	if hits != want {
		t.Errorf("migrated replay: %d hits, unmigrated %d", hits, want)
	}
}

// TestSnapshotFrameBeyondDefaultMax is the oversized-frame
// acceptance test: a SnapshotSession response (and the RestoreSession
// request that pushes the same bytes back) larger than DefaultMaxFrame
// but within MaxSnapshotFrame must round-trip over the wire.
func TestSnapshotFrameBeyondDefaultMax(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-megabyte snapshot round trip")
	}
	cfg := Config{Spec: restoreSpec, Shards: 1}
	cfg.NewPredictor = func() core.Predictor {
		p, err := restoreSpec.New()
		if err != nil {
			panic(err)
		}
		return p
	}
	_, addr := startServer(t, cfg, ServerConfig{})
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const session = 3
	if _, st, err := c.RunBatch(session, testEvents(0x1000, 100)); err != nil || st != StatusOK {
		t.Fatalf("seed: %v %v", st, err)
	}
	blob, st, err := c.SnapshotSession(session)
	if err != nil || st != StatusOK {
		t.Fatalf("SnapshotSession: %v %v", st, err)
	}
	if len(blob) <= DefaultMaxFrame {
		t.Fatalf("snapshot is %d bytes; the test needs one beyond DefaultMaxFrame (%d)", len(blob), DefaultMaxFrame)
	}
	// Pushing the blob back is a request frame beyond DefaultMaxFrame:
	// the server must accept it under the RestoreSession cap.
	if st, err := c.RestoreSession(session, blob); err != nil || st != StatusOK {
		t.Fatalf("RestoreSession with %d-byte blob: %v %v", len(blob), st, err)
	}
}

// TestOversizedFrameCleanStatus: a request frame declaring a payload
// beyond the server's MaxFrame — but within MaxSnapshotFrame — is
// answered StatusBadRequest on a connection that stays usable.
func TestOversizedFrameCleanStatus(t *testing.T) {
	_, addr := startServer(t, Config{Shards: 1}, ServerConfig{MaxFrame: 64})
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// 1 KiB of events: over the 64-byte cap, under MaxSnapshotFrame.
	big := make(trace.Trace, 128)
	for i := range big {
		big[i] = trace.Event{PC: uint32(i), Value: uint32(i)}
	}
	st, err := c.UpdateBatch(1, big)
	if err != nil {
		t.Fatalf("oversized frame dropped the connection: %v", err)
	}
	if st != StatusBadRequest {
		t.Errorf("oversized frame answered %v, want bad-request", st)
	}
	// The same connection still serves well-formed requests.
	if _, st, err := c.RunBatch(1, big[:4]); err != nil || st != StatusOK {
		t.Errorf("follow-up request: st=%v err=%v", st, err)
	}
}

func TestDialerRetriesTransientConnectErrors(t *testing.T) {
	// Reserve a loopback address, then close it so the first attempts
	// are refused.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	if err := ln.Close(); err != nil {
		t.Fatal(err)
	}

	// No retries: a dead backend fails immediately.
	if _, err := (Dialer{Timeout: time.Second}).Dial(addr); err == nil {
		t.Fatal("dial of a closed address succeeded without a listener")
	}

	// With retries: a listener that comes up while the dialer backs
	// off is found. The relisten races other tests for the port only
	// in theory (loopback, just released).
	go func() {
		time.Sleep(150 * time.Millisecond)
		ln2, err := net.Listen("tcp", addr)
		if err != nil {
			return // port stolen; the dial below will fail and report
		}
		conn, err := ln2.Accept()
		if err == nil {
			_ = conn.Close()
		}
		_ = ln2.Close()
	}()
	d := Dialer{Timeout: time.Second, Retries: 8, Backoff: 40 * time.Millisecond}
	c, err := d.Dial(addr)
	if err != nil {
		t.Fatalf("dial with retries never reached the late listener: %v", err)
	}
	_ = c.Close()
}

func TestRequestSession(t *testing.T) {
	payload := encodeSessionReq(0xdeadbeef)
	for _, op := range []byte{OpPredictBatch, OpUpdateBatch, OpRunBatch, OpResetSession, OpSnapshotSession, OpRestoreSession} {
		if s, ok := RequestSession(op, payload); !ok || s != 0xdeadbeef {
			t.Errorf("op %#x: session %d ok=%v", op, s, ok)
		}
	}
	if _, ok := RequestSession(OpStats, nil); ok {
		t.Error("Stats carries no session but RequestSession said it does")
	}
	if _, ok := RequestSession(OpRunBatch, []byte{1, 2, 3}); ok {
		t.Error("short payload accepted")
	}
}
