package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/snapshot"
	"repro/internal/trace"
)

// Config parameterizes an Engine.
type Config struct {
	// NewPredictor builds the predictor backing one session. Each call
	// must return a fresh, independent instance. Optional when Spec is
	// set (the engine then derives it); when both are set, NewPredictor
	// must build predictors matching Spec.
	NewPredictor func() core.Predictor
	// Spec is the predictor configuration in the shared flag
	// vocabulary. Required for checkpointing and the SnapshotSession
	// op: a snapshot records the spec so a restart (or cmd/vpstate)
	// can rebuild the exact predictor.
	Spec core.Spec
	// Shards is the number of independent shard goroutines. Sessions
	// are assigned to shards by hashing the session ID, so sessions on
	// different shards never contend. 0 selects GOMAXPROCS.
	Shards int
	// MailboxDepth bounds each shard's request queue. A full mailbox
	// is backpressure: the request is answered StatusBusy immediately
	// ("no prediction") instead of blocking the connection. 0 selects
	// 128.
	MailboxDepth int
	// MaxSessions caps live sessions across all shards; session
	// creation beyond the cap is answered StatusBusy. 0 selects 4096.
	MaxSessions int
	// CheckpointDir, when non-empty, enables durable session state:
	// every session is snapshot to one file in the directory
	// (session-<id>.vps) on graceful Close, and LoadCheckpoints
	// warm-starts from the same files on boot. Requires Spec. The
	// directory is created if missing.
	CheckpointDir string
	// CheckpointInterval adds periodic background checkpoints between
	// the boot and drain ones. 0 disables the ticker (checkpoint on
	// drain only). Requires CheckpointDir.
	CheckpointInterval time.Duration
	// StatsWindow sizes the per-session windowed accuracy buckets, in
	// judged lookups (UpdateBatch/RunBatch events): a session's
	// windowed hit rate covers its last one-to-two windows of judged
	// traffic. 0 selects 4096.
	StatsWindow int
	// AdoptSnapshotSpecs lets LoadCheckpoints warm-start sessions
	// whose snapshot spec differs from the engine's: the session is
	// rebuilt under the snapshot's own spec, recorded as its
	// per-session override — how an autotuned server restores
	// hot-swapped sessions across a restart. When false (the default),
	// mismatched snapshots are skipped, preserving the invariant that
	// changed boot flags mean a deliberate cold start.
	AdoptSnapshotSpecs bool
}

func (c Config) withDefaults() Config {
	if c.Shards <= 0 {
		c.Shards = runtime.GOMAXPROCS(0)
	}
	if c.MailboxDepth <= 0 {
		c.MailboxDepth = 128
	}
	if c.MaxSessions <= 0 {
		c.MaxSessions = 4096
	}
	if c.StatsWindow <= 0 {
		c.StatsWindow = 4096
	}
	return c
}

// Stats is an engine-level snapshot, served over the protocol's Stats
// op and as JSON on the optional HTTP listener.
type Stats struct {
	Predictor   string       `json:"predictor"`
	Shards      int          `json:"shards"`
	Sessions    int          `json:"sessions"`
	Predictions uint64       `json:"predictions"`
	Hits        uint64       `json:"hits"`
	HitRate     float64      `json:"hit_rate"`
	Updates     uint64       `json:"updates"`
	Resets      uint64       `json:"resets"`
	Dropped     uint64       `json:"dropped"` // requests shed by backpressure
	QueueDepth  int          `json:"queue_depth"`
	ShardStats  []ShardStats `json:"shard_stats"`

	// Checkpointing counters; all zero when CheckpointDir is unset.
	Checkpoints      uint64 `json:"checkpoints"`       // completed whole-engine sweeps
	CheckpointErrors uint64 `json:"checkpoint_errors"` // sessions that failed to persist
	Restored         uint64 `json:"restored_sessions"` // sessions warm-started from disk

	// Swaps counts predictor hot-swaps applied by SwapSession (the
	// autotuner's promotion path); zero on untuned engines.
	Swaps uint64 `json:"swaps"`

	// SessionStats lists every live session's accuracy counters,
	// sorted by session ID. Counters are read with relaxed ordering,
	// like the engine-level totals.
	SessionStats []SessionStat `json:"session_stats,omitempty"`
}

// SessionStat is the per-session slice of a Stats snapshot: lifetime
// hits/lookups since the session started (surviving checkpoint
// restores) plus a windowed view over the last one-to-two
// Config.StatsWindow's worth of judged lookups — the autotuner's
// scoring input and a per-client accuracy readout on its own. A
// "judged lookup" is one UpdateBatch or RunBatch event: the predictor
// was consulted and the prediction compared against the actual value.
type SessionStat struct {
	Session     uint64 `json:"session"`
	Predictions uint64 `json:"predictions"` // PredictBatch + RunBatch lookups
	Lookups     uint64 `json:"lookups"`     // judged lookups since start
	Hits        uint64 `json:"hits"`        // correct judged lookups since start
	HitRate     float64 `json:"hit_rate"`
	WindowLookups uint64  `json:"window_lookups"`
	WindowHits    uint64  `json:"window_hits"`
	WindowHitRate float64 `json:"window_hit_rate"`
	// Swaps counts this session's predictor hot-swaps; Spec is the
	// session's canonical predictor spec when it differs from the
	// engine's (after a swap or an adopted snapshot), nil otherwise.
	Swaps uint64     `json:"swaps,omitempty"`
	Spec  *core.Spec `json:"spec,omitempty"`
}

// ShardStats is the per-shard slice of a Stats snapshot.
type ShardStats struct {
	Sessions    int    `json:"sessions"` // occupancy
	Predictions uint64 `json:"predictions"`
	QueueDepth  int    `json:"queue_depth"`
}

// request is one unit of shard work. Exactly one of pcs/events is set
// for the batch ops; sess only for the internal restore op; reply is
// buffered so the shard never blocks on a departed caller.
type request struct {
	op      byte
	session uint64
	pcs     []uint32
	events  []trace.Event
	out     []uint32 // OpPredictBatch: caller-owned output storage to reuse
	sess    *session // opRestoreSession: pre-built session to install
	replace bool     // opRestoreSession: replace an existing live session
	newP    core.Predictor // opSwapSession: replacement predictor
	newSpec core.Spec      // opSwapSession: the spec that built newP
	reply   chan response
}

type response struct {
	status Status
	values []uint32
	hits   uint32
	blob   []byte           // OpSnapshotSession: encoded snapshot file
	snaps  []sessionCapture // opCaptureShard
}

// session is the per-client predictor state owned by one shard. The
// predictor itself is only ever touched on the shard goroutine; the
// counters are atomics because Stats reads them from outside (the
// shard stays the only writer, so the atomics are a publication
// mechanism, not a contention point). predictions/hits/updates are
// lifetime totals (they survive ResetSession); checkpoints persist
// them so a restored session resumes its stats where it left off.
//
// spec, when non-nil, is the canonical predictor spec that built p —
// set by SwapSession and by spec-adopting warm starts, read by
// checkpoints and stats. nil means the engine's Config.Spec.
//
// The win/prev pairs are the windowed-accuracy buckets: judged
// lookups land in win, which rotates into prev every
// Config.StatsWindow lookups, so the windowed hit rate always covers
// the last one-to-two windows of judged traffic.
type session struct {
	p    core.Predictor
	spec atomic.Pointer[core.Spec]

	predictions atomic.Uint64
	hits        atomic.Uint64
	updates     atomic.Uint64
	swaps       atomic.Uint64

	winLookups  atomic.Uint64
	winHits     atomic.Uint64
	prevLookups atomic.Uint64
	prevHits    atomic.Uint64
}

// judged credits n judged lookups (hits of them correct) to the
// session's lifetime and windowed counters, rotating the window
// bucket when it fills. Runs on the shard goroutine (single writer).
func (s *session) judged(n, hits, window uint64) {
	s.updates.Add(n)
	s.hits.Add(hits)
	s.winHits.Add(hits)
	if s.winLookups.Add(n) >= window {
		s.prevLookups.Store(s.winLookups.Load())
		s.prevHits.Store(s.winHits.Load())
		s.winLookups.Store(0)
		s.winHits.Store(0)
	}
}

// stat renders the session's counters as one Stats entry.
func (s *session) stat(id uint64) SessionStat {
	st := SessionStat{
		Session:       id,
		Predictions:   s.predictions.Load(),
		Lookups:       s.updates.Load(),
		Hits:          s.hits.Load(),
		WindowLookups: s.prevLookups.Load() + s.winLookups.Load(),
		WindowHits:    s.prevHits.Load() + s.winHits.Load(),
		Swaps:         s.swaps.Load(),
		Spec:          s.spec.Load(),
	}
	if st.Lookups > 0 {
		st.HitRate = float64(st.Hits) / float64(st.Lookups)
	}
	if st.WindowLookups > 0 {
		st.WindowHitRate = float64(st.WindowHits) / float64(st.WindowLookups)
	}
	return st
}

// shard owns a disjoint set of sessions and processes their requests
// sequentially on its own goroutine, so predictor state needs no
// locks. Counters are atomics because Snapshot reads them from
// outside the goroutine.
type shard struct {
	mail     chan request
	sessions map[uint64]*session

	predictions atomic.Uint64
	hits        atomic.Uint64
	updates     atomic.Uint64
	resets      atomic.Uint64
	occupancy   atomic.Int64
}

// Engine is the sharded session store at the heart of the service.
// All exported methods are safe for concurrent use.
type Engine struct {
	cfg      Config
	name     string // predictor config name, for stats
	window   uint64 // Config.StatsWindow, precomputed for the hot path
	shards   []*shard
	sessions atomic.Int64 // live sessions across shards
	dropped  atomic.Uint64
	swaps    atomic.Uint64
	tap      atomic.Pointer[Tap] // traffic mirror hook; nil when untapped

	// byID indexes every live session for stats reads; the owning
	// shard remains the only goroutine touching a session's predictor.
	sessMu sync.RWMutex
	byID   map[uint64]*session // vplint:guardedby sessMu

	checkpoints      atomic.Uint64
	checkpointErrors atomic.Uint64
	restored         atomic.Uint64
	ckptQuit         chan struct{} // nil unless the ticker loop runs
	ckptWG           sync.WaitGroup

	mu     sync.RWMutex
	closed bool // vplint:guardedby mu
	quit   chan struct{}
	wg     sync.WaitGroup
}

// NewEngine starts cfg.Shards shard goroutines and returns the
// engine. Callers must Close it to stop them.
func NewEngine(cfg Config) (*Engine, error) {
	cfg = cfg.withDefaults()
	if cfg.NewPredictor == nil {
		if cfg.Spec.Kind == "" {
			return nil, fmt.Errorf("serve: Config.NewPredictor or Config.Spec is required")
		}
		if _, err := cfg.Spec.New(); err != nil {
			return nil, fmt.Errorf("serve: spec: %w", err)
		}
		spec := cfg.Spec
		cfg.NewPredictor = func() core.Predictor {
			p, err := spec.New()
			if err != nil {
				panic("serve: spec validated at engine start cannot fail: " + err.Error())
			}
			return p
		}
	}
	if cfg.CheckpointDir != "" {
		if cfg.Spec.Kind == "" {
			return nil, fmt.Errorf("serve: checkpointing requires Config.Spec")
		}
		if err := os.MkdirAll(cfg.CheckpointDir, 0o755); err != nil {
			return nil, fmt.Errorf("serve: checkpoint dir: %w", err)
		}
	}
	e := &Engine{
		cfg:    cfg,
		name:   cfg.NewPredictor().Name(),
		window: uint64(cfg.StatsWindow),
		shards: make([]*shard, cfg.Shards),
		byID:   make(map[uint64]*session),
		quit:   make(chan struct{}),
	}
	for i := range e.shards {
		s := &shard{
			mail:     make(chan request, cfg.MailboxDepth),
			sessions: make(map[uint64]*session),
		}
		e.shards[i] = s
		e.wg.Add(1)
		go e.run(s)
	}
	if cfg.CheckpointDir != "" && cfg.CheckpointInterval > 0 {
		e.ckptQuit = make(chan struct{})
		e.ckptWG.Add(1)
		go e.checkpointLoop(cfg.CheckpointInterval)
	}
	return e, nil
}

// shardFor assigns a session to a shard with a splitmix64 finalizer,
// so adjacent session IDs (the common client choice) spread evenly.
func (e *Engine) shardFor(session uint64) *shard {
	x := session + 0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return e.shards[x%uint64(len(e.shards))]
}

// run is one shard's goroutine: process mail until quit, then drain
// whatever is still queued so no caller is left waiting.
func (e *Engine) run(s *shard) {
	defer e.wg.Done()
	for {
		select {
		case req := <-s.mail:
			e.handle(s, req)
		case <-e.quit:
			for {
				select {
				case req := <-s.mail:
					e.handle(s, req)
				default:
					return
				}
			}
		}
	}
}

// getSession returns the session, creating it if the cap allows.
// Runs on the shard goroutine.
func (e *Engine) getSession(s *shard, id uint64) *session {
	if sess, ok := s.sessions[id]; ok {
		return sess
	}
	if int(e.sessions.Load()) >= e.cfg.MaxSessions {
		return nil
	}
	sess := &session{p: e.cfg.NewPredictor()}
	s.sessions[id] = sess
	e.sessMu.Lock()
	e.byID[id] = sess
	e.sessMu.Unlock()
	e.sessions.Add(1)
	s.occupancy.Add(1)
	return sess
}

// handle executes one request on the shard goroutine.
func (e *Engine) handle(s *shard, req request) {
	switch req.op {
	// The checkpoint ops run before getSession: none of them may
	// implicitly create a session.
	case opCaptureShard:
		e.handleCaptureShard(s, req)
		return
	case opRestoreSession:
		e.handleRestoreSession(s, req)
		return
	case OpSnapshotSession:
		e.handleSnapshotSession(s, req)
		return
	case opSwapSession:
		e.handleSwapSession(s, req)
		return
	}
	sess := e.getSession(s, req.session)
	if sess == nil {
		req.reply <- response{status: StatusBusy}
		return
	}
	switch req.op {
	case OpPredictBatch:
		// The shard writes into the caller-owned req.out storage (the
		// caller blocks on the reply until the write completes, so
		// ownership hands back with the response); only a first-time or
		// growing batch allocates.
		values := req.out
		if cap(values) >= len(req.pcs) {
			values = values[:len(req.pcs)]
		} else {
			values = make([]uint32, len(req.pcs))
		}
		for i, pc := range req.pcs {
			values[i] = sess.p.Predict(pc)
		}
		sess.predictions.Add(uint64(len(req.pcs)))
		s.predictions.Add(uint64(len(req.pcs)))
		req.reply <- response{status: StatusOK, values: values}
	case OpUpdateBatch:
		// UpdateBatch hits are judged by Predict even for Scorers (the
		// any-component-correct Score rule belongs to RunBatch), so only
		// non-Scorers can take the concrete-type core.RunBatch loop —
		// for them it is exactly predict-compare-update.
		seq := sess.updates.Load()
		var hits uint64
		if _, ok := sess.p.(core.Scorer); ok {
			for _, ev := range req.events {
				if sess.p.Predict(ev.PC) == ev.Value {
					hits++
				}
				sess.p.Update(ev.PC, ev.Value)
			}
		} else {
			hits = core.RunBatch(sess.p, req.events).Correct
		}
		sess.judged(uint64(len(req.events)), hits, e.window)
		s.hits.Add(hits)
		s.updates.Add(uint64(len(req.events)))
		// The mirror must run before the reply: the reply hands the
		// events storage back to the caller, which may overwrite it.
		e.mirror(req.session, seq, req.events)
		req.reply <- response{status: StatusOK}
	case OpRunBatch:
		// core.RunBatch mirrors core.Run exactly (Scorer fast path,
		// concrete-type batch loops), so a served replay stays
		// bit-equivalent to cmd/vpredict on the same spec while paying
		// one interface dispatch per batch instead of two per event.
		seq := sess.updates.Load()
		hits := uint32(core.RunBatch(sess.p, req.events).Correct)
		sess.predictions.Add(uint64(len(req.events)))
		sess.judged(uint64(len(req.events)), uint64(hits), e.window)
		s.predictions.Add(uint64(len(req.events)))
		s.hits.Add(uint64(hits))
		s.updates.Add(uint64(len(req.events)))
		e.mirror(req.session, seq, req.events)
		req.reply <- response{status: StatusOK, hits: hits}
	case OpResetSession:
		// A swapped session resets within its own (swapped) spec: the
		// override is the session's canonical configuration now.
		if !core.TryReset(sess.p) {
			if ov := sess.spec.Load(); ov != nil {
				p, err := ov.New()
				if err == nil {
					sess.p = p
				} else {
					sess.p = e.cfg.NewPredictor()
					sess.spec.Store(nil)
				}
			} else {
				sess.p = e.cfg.NewPredictor()
			}
		}
		s.resets.Add(1)
		req.reply <- response{status: StatusOK}
	default:
		req.reply <- response{status: StatusBadRequest}
	}
}

// handleSnapshotSession serializes one live session on its shard
// goroutine. Missing sessions are StatusBadRequest (a snapshot never
// creates a session); engines without a Spec cannot describe their
// predictor in a snapshot and answer StatusUnsupported.
func (e *Engine) handleSnapshotSession(s *shard, req request) {
	if e.cfg.Spec.Kind == "" {
		req.reply <- response{status: StatusUnsupported}
		return
	}
	sess, ok := s.sessions[req.session]
	if !ok {
		req.reply <- response{status: StatusBadRequest}
		return
	}
	snap, err := e.captureSession(req.session, sess)
	if err != nil {
		req.reply <- response{status: StatusUnsupported}
		return
	}
	var buf bytes.Buffer
	if err := snap.Encode(&buf); err != nil {
		req.reply <- response{status: StatusBadRequest}
		return
	}
	req.reply <- response{status: StatusOK, blob: buf.Bytes()}
}

// replyPool recycles the one-shot reply channels submit allocates.
// Pooling is sound because every request placed in a mailbox receives
// exactly one reply — handle answers every path and run drains the
// mailbox on quit — and a request that never entered a mailbox never
// had anything sent on its channel, so a pooled channel is always
// empty when it is put back.
var replyPool = sync.Pool{New: func() any { return make(chan response, 1) }}

// submit routes a request to its shard with backpressure: a full
// mailbox degrades to StatusBusy instead of blocking. The read lock
// is held until the reply arrives, which lets Close wait for every
// in-flight request before stopping the shards.
func (e *Engine) submit(req request) response {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if e.closed {
		return response{status: StatusClosed}
	}
	s := e.shardFor(req.session)
	reply := replyPool.Get().(chan response)
	req.reply = reply
	select {
	case s.mail <- req:
		resp := <-reply
		replyPool.Put(reply)
		return resp
	default:
		replyPool.Put(reply)
		e.dropped.Add(1)
		return response{status: StatusBusy}
	}
}

// PredictBatch returns the session predictor's predictions for pcs,
// in order, against the table state at batch start.
func (e *Engine) PredictBatch(sessionID uint64, pcs []uint32) ([]uint32, Status) {
	return e.PredictBatchAppend(sessionID, pcs, nil)
}

// PredictBatchAppend is PredictBatch writing the predictions into
// out's backing storage when its capacity suffices (allocating a
// larger slice otherwise); the returned slice replaces the caller's
// scratch. The shard goroutine writes the caller-owned storage while
// the caller blocks on the reply, so ownership hands back exactly at
// return; the caller must not reuse out until then.
func (e *Engine) PredictBatchAppend(sessionID uint64, pcs []uint32, out []uint32) ([]uint32, Status) {
	r := e.submit(request{op: OpPredictBatch, session: sessionID, pcs: pcs, out: out})
	return r.values, r.status
}

// UpdateBatch trains the session predictor with the outcomes, in
// order.
func (e *Engine) UpdateBatch(sessionID uint64, events []trace.Event) Status {
	return e.submit(request{op: OpUpdateBatch, session: sessionID, events: events}).status
}

// RunBatch performs predict-compare-update per event, in order, and
// returns the number of correct predictions.
func (e *Engine) RunBatch(sessionID uint64, events []trace.Event) (hits uint32, st Status) {
	r := e.submit(request{op: OpRunBatch, session: sessionID, events: events})
	return r.hits, r.status
}

// ResetSession clears the session's learned state in place (the
// session stays allocated). Resetting an untouched session creates
// it.
func (e *Engine) ResetSession(sessionID uint64) Status {
	return e.submit(request{op: OpResetSession, session: sessionID}).status
}

// SnapshotSession returns the session's encoded snapshot file (the
// internal/snapshot format): spec, lifetime counters and complete
// predictor state, captured atomically on the owning shard.
// StatusBadRequest if the session does not exist, StatusUnsupported if
// the engine has no Spec or its predictor cannot export state.
func (e *Engine) SnapshotSession(sessionID uint64) ([]byte, Status) {
	r := e.submit(request{op: OpSnapshotSession, session: sessionID})
	return r.blob, r.status
}

// RestoreSession installs a session from its encoded snapshot blob —
// the bytes SnapshotSession returned, possibly on another engine,
// which is how the cluster tier migrates a live session between
// backends. The snapshot's canonical spec must match the engine's
// (StatusSpecMismatch otherwise) and its meta session ID, when
// nonzero, must match sessionID. A restore is authoritative: an
// existing live session is replaced, which makes a re-driven
// migration idempotent. Decode and state validation run on the
// caller's goroutine; only the install itself visits the shard.
// StatusUnsupported on engines without a Spec, StatusBadRequest on
// undecodable or semantically invalid bytes.
func (e *Engine) RestoreSession(sessionID uint64, blob []byte) Status {
	if e.cfg.Spec.Kind == "" {
		return StatusUnsupported
	}
	snap, err := snapshot.Decode(bytes.NewReader(blob))
	if err != nil {
		return StatusBadRequest
	}
	if snap.Spec.Canonical() != e.cfg.Spec.Canonical() {
		return StatusSpecMismatch
	}
	if snap.Meta.Session != 0 && snap.Meta.Session != sessionID {
		return StatusBadRequest
	}
	p, err := snap.Restore()
	if err != nil {
		return StatusBadRequest
	}
	sess := newRestoredSession(p, snap.Meta, nil)
	return e.submit(request{op: opRestoreSession, session: sessionID, sess: sess, replace: true}).status
}

// Snapshot collects the engine-level stats. Counters are read with
// relaxed ordering — a snapshot taken during traffic is approximate
// by nature.
func (e *Engine) Snapshot() Stats {
	st := Stats{
		Predictor:        e.name,
		Shards:           len(e.shards),
		Sessions:         int(e.sessions.Load()),
		Dropped:          e.dropped.Load(),
		Checkpoints:      e.checkpoints.Load(),
		CheckpointErrors: e.checkpointErrors.Load(),
		Restored:         e.restored.Load(),
		Swaps:            e.swaps.Load(),
		ShardStats:       make([]ShardStats, len(e.shards)),
	}
	e.sessMu.RLock()
	st.SessionStats = make([]SessionStat, 0, len(e.byID))
	for id, sess := range e.byID {
		st.SessionStats = append(st.SessionStats, sess.stat(id))
	}
	e.sessMu.RUnlock()
	sort.Slice(st.SessionStats, func(i, j int) bool {
		return st.SessionStats[i].Session < st.SessionStats[j].Session
	})
	for i, s := range e.shards {
		ss := ShardStats{
			Sessions:    int(s.occupancy.Load()),
			Predictions: s.predictions.Load(),
			QueueDepth:  len(s.mail),
		}
		st.ShardStats[i] = ss
		st.Predictions += ss.Predictions
		st.Hits += s.hits.Load()
		st.Updates += s.updates.Load()
		st.Resets += s.resets.Load()
		st.QueueDepth += ss.QueueDepth
	}
	if st.Predictions > 0 {
		st.HitRate = float64(st.Hits) / float64(st.Predictions)
	}
	return st
}

// StatsJSON renders a snapshot as JSON (expvar-style; also the Stats
// op's response body).
func (e *Engine) StatsJSON() []byte {
	b, err := json.Marshal(e.Snapshot())
	if err != nil {
		// Stats contains only marshalable fields; keep the protocol
		// alive even if that ever changes.
		return []byte(`{"error":"stats marshal failed"}`)
	}
	return b
}

// Close drains in-flight requests, takes the final checkpoint when
// checkpointing is configured, and stops the shard goroutines.
// Requests arriving after Close are answered StatusClosed. Close is
// idempotent.
func (e *Engine) Close() {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return
	}
	e.closed = true
	e.mu.Unlock()
	// Acquiring the write lock above waited out every in-flight submit
	// (each holds the read lock until its reply), so the shards are now
	// idle but still running — exactly the window for the drain
	// checkpoint.
	if e.cfg.CheckpointDir != "" {
		if e.ckptQuit != nil {
			close(e.ckptQuit)
			e.ckptWG.Wait()
		}
		// A failed drain checkpoint is counted in CheckpointErrors;
		// shutdown proceeds — it must not wedge the process exit.
		_, _ = e.CheckpointAll()
	}
	close(e.quit)
	e.wg.Wait()
}
