package serve

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"time"

	"repro/internal/trace"
)

// Client is a VP1 protocol client over one TCP connection. Requests
// are serialized (one in flight per connection); use one Client per
// goroutine — or per concurrent stream — the way cmd/vploadgen does.
type Client struct {
	conn    net.Conn
	br      *bufio.Reader
	bw      *bufio.Writer
	timeout time.Duration

	// Single-goroutine scratch for the typed methods, making their
	// steady state allocation-free: requests encode into reqBuf and
	// responses land in respBuf. Every typed method decodes (copying
	// what it returns) before the next round trip, so the reuse never
	// escapes — except SnapshotSession and the exported RoundTrip,
	// whose returned bytes outlive the call and therefore bypass
	// respBuf entirely.
	reqBuf  []byte
	respBuf []byte
}

// Dial connects to a vpserve at addr with a 10s I/O timeout per
// request.
func Dial(addr string) (*Client, error) {
	return DialTimeout(addr, 10*time.Second)
}

// DialTimeout connects to addr; timeout bounds the dial and each
// request round trip.
func DialTimeout(addr string, timeout time.Duration) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, err
	}
	return &Client{
		conn:    conn,
		br:      bufio.NewReader(conn),
		bw:      bufio.NewWriter(conn),
		timeout: timeout,
	}, nil
}

// Dialer configures connection establishment for callers that must
// not hang on a dead peer — the cluster router dials backends through
// one. The zero value behaves like Dial: a 10s timeout, no retries.
type Dialer struct {
	// Timeout bounds each dial attempt and, on the returned client,
	// each request round trip. 0 selects 10s.
	Timeout time.Duration
	// Retries is the number of additional dial attempts after a failed
	// first one. Connect errors are treated as transient (a backend
	// restarting, a listener not yet up); round-trip errors on an
	// established connection are never retried here — requests are not
	// known to be idempotent.
	Retries int
	// Backoff is the delay before the first retry, doubling on each
	// subsequent one. 0 selects 50ms.
	Backoff time.Duration
}

// Dial connects to addr, retrying transient connect errors with
// exponential backoff up to d.Retries times.
func (d Dialer) Dial(addr string) (*Client, error) {
	timeout := d.Timeout
	if timeout <= 0 {
		timeout = 10 * time.Second
	}
	backoff := d.Backoff
	if backoff <= 0 {
		backoff = 50 * time.Millisecond
	}
	var lastErr error
	for attempt := 0; ; attempt++ {
		c, err := DialTimeout(addr, timeout)
		if err == nil {
			return c, nil
		}
		lastErr = err
		if attempt >= d.Retries {
			break
		}
		time.Sleep(backoff)
		backoff *= 2
	}
	if d.Retries > 0 {
		return nil, fmt.Errorf("serve: dialing %s failed after %d attempts: %w", addr, d.Retries+1, lastErr)
	}
	return nil, lastErr
}

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }

// roundTrip writes one request frame and reads its response payload
// into the client's respBuf scratch. The payload is only valid until
// the next round trip; typed-method callers decode-and-copy before
// returning.
func (c *Client) roundTrip(op byte, payload []byte) ([]byte, error) {
	p, err := c.roundTripBuf(op, payload, DefaultMaxFrame, c.respBuf)
	if p != nil {
		c.respBuf = p
	}
	return p, err
}

// roundTripMax is roundTrip with an explicit response-frame bound and
// a freshly allocated response, for the ops (SnapshotSession) whose
// returned bytes outlive the call.
func (c *Client) roundTripMax(op byte, payload []byte, maxResp int) ([]byte, error) {
	return c.roundTripBuf(op, payload, maxResp, nil)
}

// roundTripBuf writes one request frame and reads its response
// payload into buf's backing storage (growing it as needed); the
// returned slice aliases it.
func (c *Client) roundTripBuf(op byte, payload []byte, maxResp int, buf []byte) ([]byte, error) {
	if err := c.conn.SetDeadline(time.Now().Add(c.timeout)); err != nil {
		return nil, err
	}
	if err := writeFrame(c.bw, op, payload); err != nil {
		return nil, err
	}
	if err := c.bw.Flush(); err != nil {
		return nil, err
	}
	respOp, respPayload, err := readFrameInto(c.br, maxResp, buf)
	if err != nil {
		return nil, err
	}
	if respOp != op|respFlag {
		return nil, fmt.Errorf("serve: response op %#x for request %#x", respOp, op)
	}
	return respPayload, nil
}

// PredictBatch asks the server for the session's predictions for pcs.
// On StatusBusy/StatusClosed the values are nil: the caller proceeds
// without a prediction.
func (c *Client) PredictBatch(session uint64, pcs []uint32) ([]uint32, Status, error) {
	return c.PredictBatchAppend(session, pcs, nil)
}

// PredictBatchAppend is PredictBatch decoding the predictions into
// out's backing storage when its capacity suffices (allocating a
// larger slice otherwise); the returned slice replaces the caller's
// scratch, making a steady-state predict loop allocation-free end to
// end.
func (c *Client) PredictBatchAppend(session uint64, pcs []uint32, out []uint32) ([]uint32, Status, error) {
	c.reqBuf = appendPredictReq(c.reqBuf[:0], session, pcs)
	p, err := c.roundTrip(OpPredictBatch, c.reqBuf)
	if err != nil {
		return nil, 0, err
	}
	st, values, err := decodePredictRespInto(p, out)
	return values, st, err
}

// UpdateBatch trains the session with the outcomes.
func (c *Client) UpdateBatch(session uint64, events []trace.Event) (Status, error) {
	c.reqBuf = appendEventReq(c.reqBuf[:0], session, events)
	p, err := c.roundTrip(OpUpdateBatch, c.reqBuf)
	if err != nil {
		return 0, err
	}
	return decodeStatusResp(p)
}

// RunBatch replays the events through the session's predictor with
// the offline predict-compare-update loop and returns the hit count.
func (c *Client) RunBatch(session uint64, events []trace.Event) (hits uint32, st Status, err error) {
	c.reqBuf = appendEventReq(c.reqBuf[:0], session, events)
	p, err := c.roundTrip(OpRunBatch, c.reqBuf)
	if err != nil {
		return 0, 0, err
	}
	st, hits, err = decodeRunResp(p)
	return hits, st, err
}

// Stats fetches the engine's stats snapshot.
func (c *Client) Stats() (Stats, error) {
	p, err := c.roundTrip(OpStats, nil)
	if err != nil {
		return Stats{}, err
	}
	st, body, err := decodeStatsResp(p)
	if err != nil {
		return Stats{}, err
	}
	if st != StatusOK {
		return Stats{}, fmt.Errorf("serve: stats request answered %v", st)
	}
	var stats Stats
	if err := json.Unmarshal(body, &stats); err != nil {
		return Stats{}, fmt.Errorf("serve: decoding stats: %w", err)
	}
	return stats, nil
}

// ResetSession clears the session's learned state on the server.
func (c *Client) ResetSession(session uint64) (Status, error) {
	c.reqBuf = appendU64(c.reqBuf[:0], session)
	p, err := c.roundTrip(OpResetSession, c.reqBuf)
	if err != nil {
		return 0, err
	}
	return decodeStatusResp(p)
}

// SnapshotSession fetches the session's durable snapshot file — spec,
// lifetime counters and complete predictor state — as encoded by
// internal/snapshot. On non-OK statuses the bytes are nil.
func (c *Client) SnapshotSession(session uint64) ([]byte, Status, error) {
	p, err := c.roundTripMax(OpSnapshotSession, encodeSessionReq(session), MaxSnapshotFrame)
	if err != nil {
		return nil, 0, err
	}
	st, blob, err := decodeSnapshotResp(p)
	return blob, st, err
}

// RestoreSession installs the session on the server from an encoded
// snapshot file — typically bytes SnapshotSession returned, possibly
// from a different server. An existing live session is replaced.
func (c *Client) RestoreSession(session uint64, blob []byte) (Status, error) {
	p, err := c.roundTrip(OpRestoreSession, encodeRestoreReq(session, blob))
	if err != nil {
		return 0, err
	}
	return decodeStatusResp(p)
}

// RoundTrip forwards an already-encoded request payload and returns
// the raw response payload — the proxy path: the cluster router
// reads a frame from its client, picks a backend by session, and
// round-trips the payload verbatim. The response bound follows the
// op (SnapshotSession responses may reach MaxSnapshotFrame).
func (c *Client) RoundTrip(op byte, payload []byte) ([]byte, error) {
	return c.RoundTripAppend(op, payload, nil)
}

// RoundTripAppend is RoundTrip reading the response payload into
// buf's backing storage (growing it as needed); the returned slice
// aliases it. The buffer is caller-owned precisely because proxy
// clients are pooled (cluster.Pool returns the client for another
// borrower while the caller still holds the response): a client-owned
// scratch here would be overwritten by the connection's next
// borrower, so the caller supplies — and keeps — the storage instead.
func (c *Client) RoundTripAppend(op byte, payload, buf []byte) ([]byte, error) {
	maxResp := DefaultMaxFrame
	if op == OpSnapshotSession {
		maxResp = MaxSnapshotFrame
	}
	return c.roundTripBuf(op, payload, maxResp, buf)
}
