package serve

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/leakcheck"
	"repro/internal/snapshot"
	"repro/internal/trace"
)

// recordingTap copies every mirrored batch. Safe here because tests
// drive one session synchronously; a real tap must be lock-free.
type recordingTap struct {
	sessions []uint64
	seqs     []uint64
	batches  []trace.Trace
}

func (r *recordingTap) Mirror(session, seq uint64, events []trace.Event) {
	r.sessions = append(r.sessions, session)
	r.seqs = append(r.seqs, seq)
	r.batches = append(r.batches, append(trace.Trace(nil), events...))
}

// TestTapMirrorsTrainingTraffic: every UpdateBatch and RunBatch is
// mirrored with the session's pre-batch lifetime update count as seq,
// and the concatenated mirror reproduces the input stream exactly.
func TestTapMirrorsTrainingTraffic(t *testing.T) {
	e := newTestEngine(t, Config{Shards: 2})
	tap := &recordingTap{}
	e.SetTap(tap)
	events := testEvents(0x4000, 900)
	var want trace.Trace
	for start := 0; start < len(events); start += 100 {
		chunk := events[start : start+100]
		want = append(want, chunk...)
		if start%200 == 0 {
			if st := e.UpdateBatch(7, chunk); st != StatusOK {
				t.Fatalf("UpdateBatch: %v", st)
			}
		} else {
			if _, st := e.RunBatch(7, chunk); st != StatusOK {
				t.Fatalf("RunBatch: %v", st)
			}
		}
	}
	var got trace.Trace
	var seq uint64
	for i, b := range tap.batches {
		if tap.sessions[i] != 7 {
			t.Fatalf("batch %d mirrored for session %d", i, tap.sessions[i])
		}
		if tap.seqs[i] != seq {
			t.Fatalf("batch %d: seq %d, want %d", i, tap.seqs[i], seq)
		}
		seq += uint64(len(b))
		got = append(got, b...)
	}
	if len(got) != len(want) {
		t.Fatalf("mirrored %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("event %d: mirrored %+v, want %+v", i, got[i], want[i])
		}
	}
	// PredictBatch is lookup-only traffic and must not be mirrored.
	n := len(tap.batches)
	if _, st := e.PredictBatch(7, []uint32{0x4000}); st != StatusOK {
		t.Fatal("PredictBatch failed")
	}
	if len(tap.batches) != n {
		t.Error("PredictBatch was mirrored")
	}
	// Removing the tap stops the mirror.
	e.SetTap(nil)
	if _, st := e.RunBatch(7, events[:10]); st != StatusOK {
		t.Fatal("RunBatch failed")
	}
	if len(tap.batches) != n {
		t.Error("mirror survived SetTap(nil)")
	}
}

// TestSessionStats: lifetime and windowed per-session counters surface
// through Snapshot, sorted by session ID, and the windowed view covers
// one-to-two windows of judged traffic.
func TestSessionStats(t *testing.T) {
	e := newTestEngine(t, Config{Shards: 3, StatsWindow: 100})
	events := testEvents(0x5000, 450)
	for _, id := range []uint64{9, 2, 31} {
		runThroughEngine(t, e, id, events, 50)
	}
	if _, st := e.PredictBatch(2, []uint32{1, 2, 3}); st != StatusOK {
		t.Fatal("PredictBatch failed")
	}
	st := e.Snapshot()
	if len(st.SessionStats) != 3 {
		t.Fatalf("got %d session stats, want 3", len(st.SessionStats))
	}
	wantHits := offlineHits(t, events)
	for i, id := range []uint64{2, 9, 31} {
		ss := st.SessionStats[i]
		if ss.Session != id {
			t.Fatalf("entry %d: session %d, want %d (sorted)", i, ss.Session, id)
		}
		if ss.Lookups != 450 || ss.Hits != wantHits {
			t.Errorf("session %d: lookups=%d hits=%d, want 450/%d", id, ss.Lookups, ss.Hits, wantHits)
		}
		if ss.HitRate != float64(ss.Hits)/450 {
			t.Errorf("session %d: hit rate %v", id, ss.HitRate)
		}
		// 450 judged lookups through a 100-window: the last rotation
		// happened at 400, so the window holds prev (100) + cur (50).
		if ss.WindowLookups != 150 {
			t.Errorf("session %d: window lookups %d, want 150", id, ss.WindowLookups)
		}
		if ss.WindowHits > ss.WindowLookups {
			t.Errorf("session %d: window hits %d > lookups %d", id, ss.WindowHits, ss.WindowLookups)
		}
		if ss.Swaps != 0 || ss.Spec != nil {
			t.Errorf("session %d: unexpected swap state %d/%v", id, ss.Swaps, ss.Spec)
		}
		wantPreds := uint64(450)
		if id == 2 {
			wantPreds += 3
		}
		if ss.Predictions != wantPreds {
			t.Errorf("session %d: predictions %d, want %d", id, ss.Predictions, wantPreds)
		}
	}
}

// TestSwapSession: the swap installs the replacement predictor
// atomically with respect to traffic, preserves lifetime counters,
// resets the window, and surfaces through stats. The post-swap session
// must serve bit-identically to the replacement predictor itself.
func TestSwapSession(t *testing.T) {
	e := newTestEngine(t, Config{Shards: 2, StatsWindow: 1 << 20})
	events := testEvents(0x6000, 2000)
	const cut = 1200
	if _, st := e.RunBatch(5, events[:cut]); st != StatusOK {
		t.Fatal("pre-swap RunBatch failed")
	}
	pre := e.Snapshot().SessionStats[0]

	// Build the replacement: a different spec, pre-trained on the same
	// prefix (the autotuner's shadow would have done this training).
	swapSpec := core.Spec{Kind: "dfcm", L1: 12, L2: 12}
	shadow, err := swapSpec.New()
	if err != nil {
		t.Fatal(err)
	}
	core.Run(shadow, trace.NewReader(events[:cut]))
	ref, err := swapSpec.New()
	if err != nil {
		t.Fatal(err)
	}
	refPrefix := core.Run(ref, trace.NewReader(events[:cut]))

	if st := e.SwapSession(5, swapSpec, shadow); st != StatusOK {
		t.Fatalf("SwapSession: %v", st)
	}
	// Post-swap traffic is served by the swapped predictor: hits over
	// the suffix must equal the reference predictor's suffix hits.
	gotSuffix := runThroughEngine(t, e, 5, events[cut:], 97)
	wantSuffix := core.Run(ref, trace.NewReader(events[cut:])).Correct
	if gotSuffix != wantSuffix {
		t.Errorf("post-swap hits %d, want %d", gotSuffix, wantSuffix)
	}

	st := e.Snapshot()
	if st.Swaps != 1 {
		t.Errorf("engine swaps %d, want 1", st.Swaps)
	}
	ss := st.SessionStats[0]
	if ss.Swaps != 1 {
		t.Errorf("session swaps %d, want 1", ss.Swaps)
	}
	if ss.Spec == nil || *ss.Spec != swapSpec.Canonical() {
		t.Errorf("session spec %+v, want %+v", ss.Spec, swapSpec.Canonical())
	}
	// Lifetime counters are continuous across the swap...
	if ss.Lookups != pre.Lookups+uint64(len(events)-cut) {
		t.Errorf("lifetime lookups %d, want %d", ss.Lookups, pre.Lookups+uint64(len(events)-cut))
	}
	if ss.Hits != pre.Hits+wantSuffix {
		t.Errorf("lifetime hits %d, want %d", ss.Hits, pre.Hits+wantSuffix)
	}
	// ...but the window restarted at the swap: it now judges only the
	// new predictor's traffic.
	if ss.WindowLookups != uint64(len(events)-cut) {
		t.Errorf("window lookups %d, want %d (reset at swap)", ss.WindowLookups, len(events)-cut)
	}
	if ss.WindowHits != wantSuffix {
		t.Errorf("window hits %d, want %d", ss.WindowHits, wantSuffix)
	}
	_ = refPrefix
}

// TestSwapSessionStatuses: a swap never creates a session and rejects
// nil or spec-less replacements.
func TestSwapSessionStatuses(t *testing.T) {
	e := newTestEngine(t, Config{Shards: 1})
	p, err := testSpec.New()
	if err != nil {
		t.Fatal(err)
	}
	if st := e.SwapSession(404, testSpec, p); st != StatusBadRequest {
		t.Errorf("swap of missing session: %v, want StatusBadRequest", st)
	}
	if e.Snapshot().Sessions != 0 {
		t.Error("swap created a session")
	}
	if _, st := e.RunBatch(1, testEvents(0x100, 10)); st != StatusOK {
		t.Fatal("RunBatch failed")
	}
	if st := e.SwapSession(1, testSpec, nil); st != StatusBadRequest {
		t.Errorf("nil predictor: %v, want StatusBadRequest", st)
	}
	if st := e.SwapSession(1, core.Spec{}, p); st != StatusBadRequest {
		t.Errorf("empty spec: %v, want StatusBadRequest", st)
	}
}

// TestResetKeepsSwappedSpec: resetting a swapped session clears its
// learned state but stays within the swapped configuration.
func TestResetKeepsSwappedSpec(t *testing.T) {
	e := newTestEngine(t, Config{Shards: 1})
	events := testEvents(0x7000, 500)
	if _, st := e.RunBatch(3, events); st != StatusOK {
		t.Fatal("RunBatch failed")
	}
	swapSpec := core.Spec{Kind: "dfcm", L1: 12, L2: 12}
	p, err := swapSpec.New()
	if err != nil {
		t.Fatal(err)
	}
	if st := e.SwapSession(3, swapSpec, p); st != StatusOK {
		t.Fatal("SwapSession failed")
	}
	if st := e.ResetSession(3); st != StatusOK {
		t.Fatal("ResetSession failed")
	}
	// A fresh predictor of the swapped spec is the ground truth.
	ref, err := swapSpec.New()
	if err != nil {
		t.Fatal(err)
	}
	want := core.Run(ref, trace.NewReader(events)).Correct
	if got := runThroughEngine(t, e, 3, events, 500); got != want {
		t.Errorf("post-reset hits %d, want %d (swapped spec)", got, want)
	}
	if ss := e.Snapshot().SessionStats[0]; ss.Spec == nil || *ss.Spec != swapSpec.Canonical() {
		t.Errorf("reset dropped the spec override: %+v", ss.Spec)
	}
}

// TestCheckpointRecordsSwappedSpec: a checkpoint taken after a swap
// describes the session under its swapped spec, an AdoptSnapshotSpecs
// warm start rebuilds it bit-identically under that spec, and a
// default (non-adopting) boot skips it.
func TestCheckpointRecordsSwappedSpec(t *testing.T) {
	leakcheck.Check(t)
	dir := t.TempDir()
	events := testEvents(0x8000, 3000)
	const cut = 2000
	bootSpec := core.Spec{Kind: "dfcm", L1: 10, L2: 10}
	swapSpec := core.Spec{Kind: "dfcm", L1: 12, L2: 12}

	e1, err := NewEngine(Config{Spec: bootSpec, Shards: 2, CheckpointDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if _, st := e1.RunBatch(11, events[:cut]); st != StatusOK {
		t.Fatal("RunBatch failed")
	}
	shadow, err := swapSpec.New()
	if err != nil {
		t.Fatal(err)
	}
	core.Run(shadow, trace.NewReader(events[:cut]))
	if st := e1.SwapSession(11, swapSpec, shadow); st != StatusOK {
		t.Fatal("SwapSession failed")
	}
	e1.Close() // drain checkpoint captures the swapped session

	// The on-disk snapshot must carry the swapped spec.
	f, err := os.Open(filepath.Join(dir, checkpointName(11)))
	if err != nil {
		t.Fatal(err)
	}
	snap, err := snapshot.Decode(f)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	if snap.Spec.Canonical() != swapSpec.Canonical() {
		t.Fatalf("checkpoint spec %+v, want swapped %+v", snap.Spec, swapSpec.Canonical())
	}

	// Default boot: mismatched spec → skipped (deliberate cold start).
	e2, err := NewEngine(Config{Spec: bootSpec, Shards: 2, CheckpointDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	restored, skipped, err := e2.LoadCheckpoints()
	if err != nil || restored != 0 || skipped != 1 {
		t.Fatalf("default boot: restored=%d skipped=%d err=%v, want 0/1/nil", restored, skipped, err)
	}
	e2.cfg.CheckpointDir = "" // don't overwrite the checkpoint on Close
	e2.Close()

	// Adopting boot: the session comes back under its swapped spec and
	// serves the suffix bit-identically to the reference predictor
	// trained on the prefix.
	e3, err := NewEngine(Config{Spec: bootSpec, Shards: 2, CheckpointDir: dir, AdoptSnapshotSpecs: true})
	if err != nil {
		t.Fatal(err)
	}
	defer e3.Close()
	restored, skipped, err = e3.LoadCheckpoints()
	if err != nil || restored != 1 || skipped != 0 {
		t.Fatalf("adopting boot: restored=%d skipped=%d err=%v, want 1/0/nil", restored, skipped, err)
	}
	ref, err := swapSpec.New()
	if err != nil {
		t.Fatal(err)
	}
	core.Run(ref, trace.NewReader(events[:cut]))
	want := core.Run(ref, trace.NewReader(events[cut:])).Correct
	if got := runThroughEngine(t, e3, 11, events[cut:], 250); got != want {
		t.Errorf("adopted session suffix hits %d, want %d", got, want)
	}
	if ss := e3.Snapshot().SessionStats[0]; ss.Spec == nil || *ss.Spec != swapSpec.Canonical() {
		t.Errorf("adopted session spec %+v, want %+v", ss.Spec, swapSpec.Canonical())
	}
}
