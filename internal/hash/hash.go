// Package hash provides the history hashing functions used by two-level
// context-based value predictors (FCM and DFCM).
//
// A context predictor keeps, per static instruction, a compressed history
// of recently produced values; that history indexes a shared level-2
// table. The quality of the compression — how uniformly distinct
// histories spread over level-2 entries — largely determines predictor
// accuracy. Sazeides and Smith ("Implementations of Context Based Value
// Predictors", TR ECE97-8) survey such functions; the DFCM paper (Goeman,
// Vandierendonck, De Bosschere, HPCA 2001) adopts their FS R-5 function,
// which this package implements along with the rest of the FS R-k family
// and a concatenation hash used for worked examples.
package hash

// Func is an incrementally updatable history hash.
//
// A Func owns a fixed index width n (bits); histories are values in
// [0, 2^n). Update folds one more value into an existing history,
// ageing previous values. Implementations must be pure: the same
// (history, value) pair always yields the same result, so that a
// predictor's level-1 table may store hashed histories directly.
type Func interface {
	// Update returns the history that results from appending value to
	// the history h. h must be < 2^IndexBits; the result is too.
	Update(h uint64, value uint64) uint64
	// IndexBits returns the width n of produced indices in bits.
	IndexBits() uint
	// Order returns the number of most recent values that still
	// influence the produced index. Older values have aged out.
	Order() int
	// Name identifies the function in experiment output.
	Name() string
}

// Fold compresses a 64-bit value into n bits by XOR-ing together the
// ceil(64/n) consecutive n-bit chunks of the value. Fold(v, n) < 2^n.
// Folding preserves every bit of the input in some output position, so
// distinct low-entropy values (small integers, small strides) stay
// distinct as long as they fit in n bits.
func Fold(v uint64, n uint) uint64 {
	if n == 0 {
		return 0
	}
	if n >= 64 {
		return v
	}
	mask := (uint64(1) << n) - 1
	var f uint64
	for v != 0 {
		f ^= v & mask
		v >>= n
	}
	return f
}

// Mask returns the n-bit all-ones mask, 2^n - 1. n must be <= 64.
func Mask(n uint) uint64 {
	if n >= 64 {
		return ^uint64(0)
	}
	return (uint64(1) << n) - 1
}
