package hash

import (
	"testing"
	"testing/quick"
)

func TestFoldRange(t *testing.T) {
	for _, n := range []uint{1, 3, 5, 8, 12, 16, 20, 31, 63} {
		for _, v := range []uint64{0, 1, 0xdeadbeef, ^uint64(0), 1 << 63} {
			if f := Fold(v, n); f > Mask(n) {
				t.Errorf("Fold(%#x, %d) = %#x exceeds %d bits", v, n, f, n)
			}
		}
	}
}

func TestFoldIdentityWhenWide(t *testing.T) {
	for _, v := range []uint64{0, 7, 0xabcdef0123456789} {
		if got := Fold(v, 64); got != v {
			t.Errorf("Fold(%#x, 64) = %#x, want identity", v, got)
		}
	}
}

func TestFoldZeroWidth(t *testing.T) {
	if got := Fold(0x1234, 0); got != 0 {
		t.Errorf("Fold with n=0 = %#x, want 0", got)
	}
}

func TestFoldSmallValuesInjective(t *testing.T) {
	// Values that fit in n bits fold to themselves, so they are distinct.
	n := uint(12)
	seen := make(map[uint64]uint64)
	for v := uint64(0); v < 1<<n; v += 37 {
		f := Fold(v, n)
		if f != v {
			t.Fatalf("Fold(%#x, %d) = %#x, want identity for in-range values", v, n, f)
		}
		if prev, ok := seen[f]; ok {
			t.Fatalf("collision: %#x and %#x both fold to %#x", prev, v, f)
		}
		seen[f] = v
	}
}

func TestFoldXORChunksProperty(t *testing.T) {
	// Folding is linear under XOR: Fold(a^b) == Fold(a)^Fold(b).
	f := func(a, b uint64) bool {
		const n = 11
		return Fold(a^b, n) == Fold(a, n)^Fold(b, n)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMask(t *testing.T) {
	cases := []struct {
		n    uint
		want uint64
	}{
		{0, 0},
		{1, 1},
		{8, 0xff},
		{20, 0xfffff},
		{64, ^uint64(0)},
		{70, ^uint64(0)},
	}
	for _, c := range cases {
		if got := Mask(c.n); got != c.want {
			t.Errorf("Mask(%d) = %#x, want %#x", c.n, got, c.want)
		}
	}
}

func TestFSROrderMatchesPaperTable(t *testing.T) {
	// The paper tabulates order = ceil(n/5) for L2 sizes 2^8..2^20:
	// n:     8  10 12 14 16 18 20
	// order: 2  2  3  3  4  4  4
	want := map[uint]int{8: 2, 10: 2, 12: 3, 14: 3, 16: 4, 18: 4, 20: 4}
	for n, ord := range want {
		f := NewFSR5(n)
		if f.Order() != ord {
			t.Errorf("FS R-5 order for n=%d: got %d, want %d", n, f.Order(), ord)
		}
	}
}

func TestFSRUpdateRange(t *testing.T) {
	f := NewFSR5(12)
	prop := func(h, v uint64) bool {
		return f.Update(h&Mask(12), v) <= Mask(12)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestFSRUpdate32MatchesUpdate(t *testing.T) {
	// Update32 is the branchless specialization for 32-bit values on
	// n >= 8; it must agree with Update bit for bit on every index
	// width it is used with.
	for n := uint(8); n <= 30; n++ {
		f := NewFSR5(n)
		prop := func(h uint64, v uint32) bool {
			h &= Mask(n)
			return f.Update32(h, v) == f.Update(h, uint64(v))
		}
		if err := quick.Check(prop, nil); err != nil {
			t.Errorf("n=%d: %v", n, err)
		}
	}
}

func TestFSRAgesOutOldValues(t *testing.T) {
	// After Order() updates, the starting history must not matter.
	f := NewFSR5(12)
	vals := []uint64{0x1111, 0x2222, 0x3333}
	if len(vals) < f.Order() {
		t.Fatalf("need at least %d values", f.Order())
	}
	h1, h2 := uint64(0), Mask(12)
	for _, v := range vals {
		h1 = f.Update(h1, v)
		h2 = f.Update(h2, v)
	}
	if h1 != h2 {
		t.Errorf("histories differ after %d updates: %#x vs %#x", len(vals), h1, h2)
	}
}

func TestFSRRetainsRecentValues(t *testing.T) {
	// Within the order window, changing one value should usually change
	// the index (it always does for values below 2^(n-k) at age 1).
	f := NewFSR5(16)
	h1 := f.Update(f.Update(0, 5), 9)
	h2 := f.Update(f.Update(0, 6), 9)
	if h1 == h2 {
		t.Error("index insensitive to age-1 value")
	}
}

func TestFSRConstantHistoryIsFixedPoint(t *testing.T) {
	// Feeding the same value repeatedly must converge to a fixed point:
	// this is what makes DFCM map whole stride patterns to one L2 entry.
	f := NewFSR5(14)
	for _, v := range []uint64{0, 1, 4, 0xffffffff, 123456789} {
		h := uint64(0)
		for i := 0; i < f.Order()+4; i++ {
			h = f.Update(h, v)
		}
		if next := f.Update(h, v); next != h {
			t.Errorf("value %#x: history %#x not a fixed point (next %#x)", v, h, next)
		}
	}
}

func TestFSRDistinctStridesDistinctFixedPoints(t *testing.T) {
	f := NewFSR5(12)
	fixed := func(v uint64) uint64 {
		h := uint64(0)
		for i := 0; i < 8; i++ {
			h = f.Update(h, v)
		}
		return h
	}
	seen := make(map[uint64]uint64)
	for v := uint64(1); v < 200; v++ {
		fp := fixed(v)
		if prev, ok := seen[fp]; ok {
			t.Fatalf("strides %d and %d share fixed point %#x", prev, v, fp)
		}
		seen[fp] = v
	}
}

func TestNewFSRPanics(t *testing.T) {
	for _, c := range []struct{ n, k uint }{{0, 5}, {65, 5}, {12, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewFSR(%d, %d) did not panic", c.n, c.k)
				}
			}()
			NewFSR(c.n, c.k)
		}()
	}
}

func TestFSRName(t *testing.T) {
	if got := NewFSR5(12).Name(); got != "FS R-5 (n=12)" {
		t.Errorf("Name() = %q", got)
	}
}

func TestConcatMatchesPaperFigure4(t *testing.T) {
	// Figure 4: pattern 0 1 2 3 4 5 6 repeated, order-3 concatenation.
	// History after seeing 0,1,2 is the context "0 1 2"; the next value
	// is 3. Verify contexts are distinct for each window.
	c := NewConcat(12, 3)
	pattern := []uint64{0, 1, 2, 3, 4, 5, 6}
	var h uint64
	contexts := make(map[uint64]bool)
	// Warm: run through pattern once to fill the history window.
	for _, v := range pattern {
		h = c.Update(h, v)
	}
	for rep := 0; rep < 3; rep++ {
		for _, v := range pattern {
			contexts[h] = true
			h = c.Update(h, v)
		}
	}
	if len(contexts) != len(pattern) {
		t.Errorf("got %d distinct contexts, want %d (stride pattern scatters over n entries)",
			len(contexts), len(pattern))
	}
}

func TestConcatFieldBits(t *testing.T) {
	c := NewConcat(12, 3)
	if c.FieldBits() != 4 {
		t.Errorf("FieldBits() = %d, want 4", c.FieldBits())
	}
	if c.Order() != 3 {
		t.Errorf("Order() = %d, want 3", c.Order())
	}
}

func TestConcatUpdateRange(t *testing.T) {
	c := NewConcat(9, 3)
	prop := func(h, v uint64) bool { return c.Update(h, v) <= Mask(9) }
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestNewConcatPanics(t *testing.T) {
	for _, c := range []struct{ n, order uint }{{0, 1}, {12, 0}, {12, 13}, {65, 3}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewConcat(%d, %d) did not panic", c.n, c.order)
				}
			}()
			NewConcat(c.n, c.order)
		}()
	}
}

func TestFuncInterfaceCompliance(t *testing.T) {
	var _ Func = NewFSR5(12)
	var _ Func = NewConcat(12, 3)
}

func BenchmarkFSR5Update(b *testing.B) {
	f := NewFSR5(16)
	var h uint64
	for i := 0; i < b.N; i++ {
		h = f.Update(h, uint64(i)*2654435761)
	}
	_ = h
}

func BenchmarkFold(b *testing.B) {
	var s uint64
	for i := 0; i < b.N; i++ {
		s ^= Fold(uint64(i)*0x9e3779b97f4a7c15, 16)
	}
	_ = s
}

func TestAccessors(t *testing.T) {
	f := NewFSR(12, 5)
	if f.IndexBits() != 12 || f.Shift() != 5 {
		t.Errorf("FSR accessors: bits %d shift %d", f.IndexBits(), f.Shift())
	}
	c := NewConcat(12, 3)
	if c.IndexBits() != 12 {
		t.Errorf("Concat.IndexBits = %d", c.IndexBits())
	}
	if c.Name() != "concat-3 (n=12)" {
		t.Errorf("Concat.Name = %q", c.Name())
	}
}
