package hash

import "testing"

// FuzzHash checks the algebraic invariants every history hash must
// hold for arbitrary inputs: results stay inside the index width,
// Update is pure (same inputs, same output — the level-1 tables store
// hashed histories directly, so impurity would corrupt them), and
// Fold preserves values that already fit the target width.
func FuzzHash(f *testing.F) {
	f.Add(uint64(0), uint64(0), uint8(12), uint8(5))
	f.Add(uint64(1)<<63, ^uint64(0), uint8(1), uint8(1))
	f.Add(uint64(0xdeadbeef), uint64(42), uint8(16), uint8(3))
	f.Add(uint64(7), uint64(7), uint8(64), uint8(7))
	f.Fuzz(func(t *testing.T, h, value uint64, nRaw, kRaw uint8) {
		n := uint(nRaw%64) + 1  // index widths 1..64
		k := uint(kRaw%16) + 1  // FS R-k shifts 1..16
		mask := Mask(n)

		if got := Fold(value, n); got > mask {
			t.Fatalf("Fold(%#x, %d) = %#x exceeds %d-bit mask", value, n, got, n)
		}
		if value <= mask {
			if got := Fold(value, n); got != value {
				t.Fatalf("Fold(%#x, %d) = %#x; values within the width must fold to themselves", value, n, got)
			}
		}

		fsr := NewFSR(n, k)
		h0 := h & mask // histories live in [0, 2^n)
		r1 := fsr.Update(h0, value)
		r2 := fsr.Update(h0, value)
		if r1 != r2 {
			t.Fatalf("FSR.Update impure: %#x then %#x", r1, r2)
		}
		if r1 > mask {
			t.Fatalf("FSR.Update(%#x, %#x) = %#x exceeds %d-bit index", h0, value, r1, n)
		}

		order := uint(kRaw%uint8(n)) + 1 // 1..n
		c := NewConcat(n, order)
		c1 := c.Update(h0, value)
		if c1 != c.Update(h0, value) {
			t.Fatalf("Concat.Update impure")
		}
		if c1 > mask {
			t.Fatalf("Concat.Update(%#x, %#x) = %#x exceeds %d-bit index", h0, value, c1, n)
		}

		// Ageing: after Order() updates with a fixed filler, the
		// original history must no longer influence the index.
		filler := value ^ 0x9e3779b97f4a7c15
		a, b := r1, fsr.Update(^h0&mask, value)
		for i := 0; i < fsr.Order(); i++ {
			a = fsr.Update(a, filler)
			b = fsr.Update(b, filler)
		}
		if a != b {
			t.Fatalf("FSR history did not age out after %d updates: %#x vs %#x", fsr.Order(), a, b)
		}
	})
}
