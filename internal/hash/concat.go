package hash

import "fmt"

// Concat is the concatenation "hash" used in the paper's worked examples
// (Figures 4 and 8): the order most recent values are each truncated to
// n/order bits and concatenated, most recent value in the low bits.
// It is exact (collision-free) whenever all history values fit in
// n/order bits, which makes the examples easy to follow, but it wastes
// index space on real programs — that contrast is the reason folding
// hashes exist. Construct with NewConcat.
type Concat struct {
	n     uint
	order uint
	field uint // bits per value
	mask  uint64
}

// NewConcat returns a concatenation hash of the given order producing
// n-bit indices. It panics if order is 0 or exceeds n.
func NewConcat(n, order uint) *Concat {
	if n == 0 || n > 64 {
		panic(fmt.Sprintf("hash: Concat index width %d out of range [1,64]", n))
	}
	if order == 0 || order > n {
		panic(fmt.Sprintf("hash: Concat order %d out of range [1,%d]", order, n))
	}
	return &Concat{n: n, order: order, field: n / order, mask: Mask(n)}
}

// Update shifts the history left by one field and inserts value's low
// field bits.
func (c *Concat) Update(h, value uint64) uint64 {
	return ((h << c.field) | (value & Mask(c.field))) & c.mask
}

// IndexBits returns n.
func (c *Concat) IndexBits() uint { return c.n }

// Order returns the number of concatenated values.
func (c *Concat) Order() int { return int(c.order) }

// FieldBits returns the number of bits kept per value.
func (c *Concat) FieldBits() uint { return c.field }

// Name returns e.g. "concat-3 (n=12)".
func (c *Concat) Name() string { return fmt.Sprintf("concat-%d (n=%d)", c.order, c.n) }
