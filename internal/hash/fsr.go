package hash

import "fmt"

// FSR is the "fold and shift, rotate by k" (FS R-k) hash family of
// Sazeides and Smith, used by the DFCM paper with k = 5.
//
// Conceptually, for a level-2 table with 2^n entries, each value in the
// history is folded into n bits (Fold), shifted left by k·age bit
// positions (age 0 = most recent), and the shifted copies are XOR-ed
// into the final n-bit index. Bits shifted beyond position n-1 are
// discarded, so a value stops influencing the index once k·age >= n:
// the effective order is ceil(n/k).
//
// The same index is computed incrementally — the representation a real
// level-1 table would store — as
//
//	h' = ((h << k) ^ Fold(v, n)) & (2^n - 1)
//
// which is what Update implements. The zero value of FSR is not usable;
// construct with NewFSR.
type FSR struct {
	n    uint
	k    uint
	mask uint64
}

// NewFSR returns the FS R-k hash producing n-bit indices.
// It panics if n is 0 or greater than 64, or if k is 0.
func NewFSR(n, k uint) *FSR {
	if n == 0 || n > 64 {
		panic(fmt.Sprintf("hash: FSR index width %d out of range [1,64]", n))
	}
	if k == 0 {
		panic("hash: FSR shift k must be positive")
	}
	return &FSR{n: n, k: k, mask: Mask(n)}
}

// NewFSR5 returns the paper's FS R-5 function for n-bit indices.
func NewFSR5(n uint) *FSR { return NewFSR(n, 5) }

// Update folds value into history h, ageing previous values by k bits.
func (f *FSR) Update(h, value uint64) uint64 {
	return ((h << f.k) ^ Fold(value, f.n)) & f.mask
}

// Update32 is Update specialized for 32-bit values on indices of at
// least 8 bits. With 4n >= 32, the four n-bit chunks cover the whole
// value (chunks i >= 4 are zero), and masking the XOR of chunks
// equals XOR-ing masked chunks, so the result is exactly Update's —
// but the data-dependent Fold loop collapses to a branchless XOR of
// shifts, and the function stays small enough to inline into the
// FCM/DFCM per-event updates that call it once per trace event.
// Callers must ensure IndexBits() >= 8; the core constructors gate
// their fast path on it.
func (f *FSR) Update32(h uint64, value uint32) uint64 {
	v := uint64(value)
	return ((h << f.k) ^ v ^ v>>f.n ^ v>>(2*f.n) ^ v>>(3*f.n)) & f.mask
}

// IndexBits returns n.
func (f *FSR) IndexBits() uint { return f.n }

// Order returns ceil(n/k), the number of values retained by the hash.
func (f *FSR) Order() int { return int((f.n + f.k - 1) / f.k) }

// Shift returns k.
func (f *FSR) Shift() uint { return f.k }

// Name returns e.g. "FS R-5 (n=12)".
func (f *FSR) Name() string { return fmt.Sprintf("FS R-%d (n=%d)", f.k, f.n) }
