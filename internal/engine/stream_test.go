package engine

import (
	"testing"

	"repro/internal/core"
	"repro/internal/trace"
)

// TestStreamFeed: feeding a trace through a Stream in slices of any
// size — including degenerate and non-dividing ones — accumulates
// exactly the per-event core.Run result for every predictor, and the
// trained predictor taken out of the stream is bit-identical (state
// bytes) to one trained by a sequential replay of the same events.
func TestStreamFeed(t *testing.T) {
	tr := synthTrace(10_000)
	for _, feed := range []int{1, 13, 997, 4096, len(tr), len(tr) + 5} {
		mks := configs()
		preds := make([]core.Predictor, len(mks))
		for i, mk := range mks {
			preds[i] = mk()
		}
		st := NewStream(preds, 256)
		for start := 0; start < len(tr); start += feed {
			end := start + feed
			if end > len(tr) {
				end = len(tr)
			}
			st.Feed(tr[start:end])
		}
		results := st.Finalize()
		for i, mk := range mks {
			ref := mk()
			want := core.Run(ref, trace.NewReader(tr))
			if results[i] != want {
				t.Errorf("feed %d predictor %d: got %+v want %+v", feed, i, results[i], want)
			}
			got, gok := st.Predictor(i).(core.Snapshotter)
			refS, rok := ref.(core.Snapshotter)
			if gok != rok {
				t.Fatalf("feed %d predictor %d: snapshotter mismatch", feed, i)
			}
			if !gok {
				continue
			}
			if string(got.AppendState(nil)) != string(refS.AppendState(nil)) {
				t.Errorf("feed %d predictor %d: streamed state differs from sequential state", feed, i)
			}
		}
	}
}

// TestStreamResultsSnapshot: Results exposes the running totals
// between Feed calls, and the totals only ever grow by the fed batch.
func TestStreamResultsSnapshot(t *testing.T) {
	tr := synthTrace(1000)
	st := NewStream([]core.Predictor{core.NewDFCM(6, 8)}, 64)
	var fed uint64
	for start := 0; start < len(tr); start += 100 {
		st.Feed(tr[start : start+100])
		fed += 100
		r := st.Results()[0]
		if r.Predictions != fed {
			t.Fatalf("after %d events: Predictions = %d", fed, r.Predictions)
		}
		if r.Correct > r.Predictions {
			t.Fatalf("correct %d exceeds predictions %d", r.Correct, r.Predictions)
		}
	}
}

// TestStreamFeedAfterFinalizePanics: Finalize hands the results out;
// the stream must refuse further input loudly.
func TestStreamFeedAfterFinalizePanics(t *testing.T) {
	st := NewStream([]core.Predictor{core.NewLastValue(4)}, 0)
	st.Feed(synthTrace(10))
	st.Finalize()
	defer func() {
		if recover() == nil {
			t.Error("Feed after Finalize did not panic")
		}
	}()
	st.Feed(synthTrace(10))
}

// TestSweepFeedSizeEquivalent: Options.FeedSize routes the offline
// replay through incremental Feed slices; results must be identical
// to the one-shot default for every job and benchmark.
func TestSweepFeedSizeEquivalent(t *testing.T) {
	tr := synthTrace(8_000)
	run := func(opts Options) [][]core.Result {
		s := NewSweep(opts, NewTraceCache(synthGen(tr)), []string{"a", "b"}, 0)
		var jobs []*Job
		for _, mk := range configs() {
			jobs = append(jobs, s.Add(mk))
		}
		if err := s.Run(); err != nil {
			t.Fatal(err)
		}
		out := make([][]core.Result, len(jobs))
		for i, j := range jobs {
			for _, br := range j.PerBench() {
				out[i] = append(out[i], br.Result)
			}
		}
		return out
	}
	want := run(Options{})
	for _, fs := range []int{1, 509, 4096, 1 << 20} {
		got := run(Options{FeedSize: fs})
		for ji := range want {
			for bi := range want[ji] {
				if got[ji][bi] != want[ji][bi] {
					t.Errorf("FeedSize %d job %d bench %d: got %+v want %+v",
						fs, ji, bi, got[ji][bi], want[ji][bi])
				}
			}
		}
	}
}
