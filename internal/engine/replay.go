package engine

import (
	"repro/internal/core"
	"repro/internal/trace"
)

// replayChunks drives every predictor over tr exactly once, in shared
// event chunks: each chunk is fed to all predictors before the next
// chunk is touched, so the chunk's events stay hot in cache across
// the whole sweep while each predictor's own batch runs without
// per-event Source dispatch (core.RunBatch). Summing per-chunk
// results is exactly one core.Run per predictor, because predictor
// state carries across chunks and results are plain counters.
//
// This is the engine's per-event-chunk hot path: vplint's
// hot-path-alloc rule lints every replay* function in this package,
// so the loop body must stay free of fmt, reflect, defer, goroutine
// launches and interface boxing.
func replayChunks(preds []core.Predictor, results []core.Result, tr trace.Trace, chunk int) {
	for start := 0; start < len(tr); start += chunk {
		end := start + chunk
		if end > len(tr) {
			end = len(tr)
		}
		batch := tr[start:end]
		for i, p := range preds {
			r := core.RunBatch(p, batch)
			results[i].Predictions += r.Predictions
			results[i].Correct += r.Correct
		}
	}
}
