package engine

import (
	"sync"

	"repro/internal/trace"
)

// Generator produces the trace of one benchmark under a given
// instruction budget (typically progs.TraceFor). It must be safe for
// concurrent use with distinct arguments.
type Generator func(name string, budget uint64) (trace.Trace, error)

// traceKey identifies one cached trace.
type traceKey struct {
	name   string
	budget uint64
}

// traceEntry is one cache slot. The sync.Once gives per-key
// singleflight: every caller of Get for the same key shares one
// generator run, while callers for different keys proceed in
// parallel. (The predecessor of this cache held a single mutex across
// the whole generator run, so "concurrent" first fills for different
// benchmarks were actually serialized.)
type traceEntry struct {
	once sync.Once
	tr   trace.Trace
	err  error
}

// derivedKey identifies one cached derived artifact: a deterministic
// function of a cached trace, named by tag.
type derivedKey struct {
	traceKey
	tag string
}

// derivedEntry mirrors traceEntry for derived artifacts.
type derivedEntry struct {
	once sync.Once
	v    any
	err  error
}

// TraceCache memoizes benchmark traces by (name, budget). Traces are
// immutable once generated; callers must not modify the returned
// slice.
type TraceCache struct {
	gen     Generator
	mu      sync.Mutex // guards the maps (only; never held during gen/compute)
	entries map[traceKey]*traceEntry
	derived map[derivedKey]*derivedEntry
}

// NewTraceCache returns an empty cache backed by gen.
func NewTraceCache(gen Generator) *TraceCache {
	return &TraceCache{
		gen:     gen,
		entries: make(map[traceKey]*traceEntry),
		derived: make(map[derivedKey]*derivedEntry),
	}
}

// Get returns the cached trace for (name, budget), generating it on
// the first request. Concurrent first requests for the same key
// coalesce into one generator run; requests for different keys
// generate concurrently.
func (c *TraceCache) Get(name string, budget uint64) (trace.Trace, error) {
	k := traceKey{name: name, budget: budget}
	c.mu.Lock()
	e, ok := c.entries[k]
	if !ok {
		e = &traceEntry{}
		c.entries[k] = e
	}
	c.mu.Unlock()
	e.once.Do(func() { e.tr, e.err = c.gen(name, budget) })
	return e.tr, e.err
}

// Derived returns a memoized artifact computed deterministically from
// the (name, budget) trace — e.g. the stride-oracle hit mask the
// Figure 6/9 scans share. tag names the artifact; compute must be a
// pure function of the trace so every caller gets the same value.
// Same singleflight discipline as Get: one compute per key, no lock
// held during trace generation or compute.
func (c *TraceCache) Derived(name string, budget uint64, tag string,
	compute func(tr trace.Trace) (any, error)) (any, error) {
	k := derivedKey{traceKey: traceKey{name: name, budget: budget}, tag: tag}
	c.mu.Lock()
	e, ok := c.derived[k]
	if !ok {
		e = &derivedEntry{}
		c.derived[k] = e
	}
	c.mu.Unlock()
	e.once.Do(func() {
		tr, err := c.Get(name, budget)
		if err != nil {
			e.err = err
			return
		}
		e.v, e.err = compute(tr)
	})
	return e.v, e.err
}

// Reset drops every cached trace and derived artifact. In-flight Gets
// keep their old entries; subsequent Gets regenerate.
func (c *TraceCache) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries = make(map[traceKey]*traceEntry)
	c.derived = make(map[derivedKey]*derivedEntry)
}
