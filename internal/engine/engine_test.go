package engine

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/trace"
)

// synthTrace builds a deterministic event stream mixing stride,
// constant and context-dependent values over a handful of PCs.
func synthTrace(n int) trace.Trace {
	tr := make(trace.Trace, 0, n)
	var x uint32
	for i := 0; i < n; i++ {
		pc := uint32(0x1000 + 4*(i%7))
		switch i % 3 {
		case 0:
			x += 3
		case 1:
			x = uint32(i % 5)
		default:
			x = x*2 + 1
		}
		tr = append(tr, trace.Event{PC: pc, Value: x})
	}
	return tr
}

func synthGen(tr trace.Trace) Generator {
	return func(name string, budget uint64) (trace.Trace, error) {
		return tr, nil
	}
}

// configs covers the predictor shapes the experiments sweep,
// including a Scorer (perfect hybrid).
func configs() []func() core.Predictor {
	return []func() core.Predictor{
		func() core.Predictor { return core.NewLastValue(8) },
		func() core.Predictor { return core.NewStride(8) },
		func() core.Predictor { return core.NewFCM(8, 10) },
		func() core.Predictor { return core.NewDFCM(8, 10) },
		func() core.Predictor { return core.NewDelayed(core.NewDFCM(8, 10), 16) },
		func() core.Predictor {
			return core.NewPerfectHybrid(core.NewStride(8), core.NewFCM(8, 10))
		},
	}
}

// TestSweepMatchesPerEventRun: the chunked multi-predictor single-pass
// replay must produce exactly the per-event core.Run results, for
// every config and benchmark, at several chunk sizes (including ones
// that do not divide the trace length).
func TestSweepMatchesPerEventRun(t *testing.T) {
	tr := synthTrace(10_000)
	benches := []string{"a", "b"}
	for _, chunk := range []int{1, 7, 1024, 4096, 1 << 20} {
		cache := NewTraceCache(synthGen(tr))
		s := NewSweep(Options{ChunkSize: chunk}, cache, benches, 0)
		var jobs []*Job
		for _, mk := range configs() {
			jobs = append(jobs, s.Add(mk))
		}
		if err := s.Run(); err != nil {
			t.Fatal(err)
		}
		for ji, mk := range configs() {
			want := core.Run(mk(), trace.NewReader(tr))
			for bi, bench := range benches {
				got := jobs[ji].PerBench()[bi]
				if got.Benchmark != bench {
					t.Fatalf("job %d bench %d labeled %q", ji, bi, got.Benchmark)
				}
				if got.Result != want {
					t.Errorf("chunk %d job %d %s: got %+v want %+v",
						chunk, ji, bench, got.Result, want)
				}
			}
		}
	}
}

// TestReferenceModeMatchesEngine: the sequential per-event reference
// path and the default chunked concurrent path agree exactly.
func TestReferenceModeMatchesEngine(t *testing.T) {
	tr := synthTrace(8_000)
	run := func(opts Options) []metrics.BenchResult {
		s := NewSweep(opts, NewTraceCache(synthGen(tr)), []string{"x"}, 0)
		var jobs []*Job
		for _, mk := range configs() {
			jobs = append(jobs, s.Add(mk))
		}
		if err := s.Run(); err != nil {
			t.Fatal(err)
		}
		var out []metrics.BenchResult
		for _, j := range jobs {
			out = append(out, j.PerBench()...)
		}
		return out
	}
	ref := run(Options{Reference: true})
	got := run(Options{})
	for i := range ref {
		if ref[i] != got[i] {
			t.Errorf("job %d: reference %+v, engine %+v", i, ref[i], got[i])
		}
	}
}

// TestTraceCacheCoalescesDuplicates: concurrent Gets for the same key
// share one generator run.
func TestTraceCacheCoalescesDuplicates(t *testing.T) {
	var calls atomic.Int32
	cache := NewTraceCache(func(name string, budget uint64) (trace.Trace, error) {
		calls.Add(1)
		return synthTrace(10), nil
	})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := cache.Get("same", 42); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	if n := calls.Load(); n != 1 {
		t.Errorf("generator ran %d times for one key", n)
	}
	cache.Reset()
	if _, err := cache.Get("same", 42); err != nil {
		t.Fatal(err)
	}
	if n := calls.Load(); n != 2 {
		t.Errorf("Reset did not drop the entry (calls=%d)", n)
	}
}

// TestTraceCacheDistinctKeysOverlap is the regression test for the
// first-fill serialization bug: the old experiments cache held its
// mutex across the whole generator run, so two "concurrent" misses
// for different benchmarks generated one after the other. Here both
// generator invocations must be in flight at the same time; each
// blocks until the other has started, so a serialized cache would
// deadlock (bounded by the watchdog below) instead of passing.
func TestTraceCacheDistinctKeysOverlap(t *testing.T) {
	started := make(chan string, 2)
	release := make(chan struct{})
	cache := NewTraceCache(func(name string, budget uint64) (trace.Trace, error) {
		started <- name
		<-release
		return synthTrace(1), nil
	})
	done := make(chan error, 2)
	for _, name := range []string{"li", "go"} {
		name := name
		go func() {
			_, err := cache.Get(name, 7)
			done <- err
		}()
	}
	for i := 0; i < 2; i++ {
		select {
		case <-started:
		case <-time.After(10 * time.Second):
			t.Fatal("second generator never started: first fill is serialized")
		}
	}
	close(release)
	for i := 0; i < 2; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

// TestWorkerPoolBounded: no more than Options.Workers units execute
// at once, and every unit runs.
func TestWorkerPoolBounded(t *testing.T) {
	const workers, n = 2, 16
	var cur, max, ran atomic.Int32
	units := make([]func() error, n)
	for i := range units {
		units[i] = func() error {
			c := cur.Add(1)
			for {
				m := max.Load()
				if c <= m || max.CompareAndSwap(m, c) {
					break
				}
			}
			time.Sleep(time.Millisecond)
			cur.Add(-1)
			ran.Add(1)
			return nil
		}
	}
	if err := runPool(units, workers); err != nil {
		t.Fatal(err)
	}
	if ran.Load() != n {
		t.Errorf("%d of %d units ran", ran.Load(), n)
	}
	if m := max.Load(); m > workers {
		t.Errorf("%d units ran concurrently, pool bound is %d", m, workers)
	}
}

// TestRunReportsFirstErrorInOrder: errors surface deterministically by
// submission order, not completion order.
func TestRunReportsFirstErrorInOrder(t *testing.T) {
	errA := errors.New("a")
	errB := errors.New("b")
	units := []func() error{
		func() error { time.Sleep(20 * time.Millisecond); return errA },
		func() error { return errB },
	}
	if err := runPool(units, 4); err != errA {
		t.Errorf("got %v, want first-submitted error %v", err, errA)
	}
}

// TestScansAndTasks: scans receive the right (index, bench, trace)
// and tasks run; a scan error propagates out of Run.
func TestScansAndTasks(t *testing.T) {
	tr := synthTrace(100)
	benches := []string{"a", "b", "c"}
	s := NewSweep(Options{}, NewTraceCache(synthGen(tr)), benches, 5)
	seen := make([]string, len(benches))
	s.AddScan(func(i int, bench string, got trace.Trace) error {
		if len(got) != len(tr) {
			return fmt.Errorf("scan %d: trace len %d", i, len(got))
		}
		seen[i] = bench
		return nil
	})
	taskRan := false
	s.AddTask(func() error { taskRan = true; return nil })
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	for i, bench := range benches {
		if seen[i] != bench {
			t.Errorf("scan slot %d = %q, want %q", i, seen[i], bench)
		}
	}
	if !taskRan {
		t.Error("task did not run")
	}

	s2 := NewSweep(Options{}, NewTraceCache(synthGen(tr)), benches, 5)
	boom := errors.New("boom")
	s2.AddScan(func(i int, bench string, got trace.Trace) error { return boom })
	if err := s2.Run(); err != boom {
		t.Errorf("scan error not propagated: %v", err)
	}
}

// TestGeneratorErrorPropagates: a trace generation failure fails the
// sweep.
func TestGeneratorErrorPropagates(t *testing.T) {
	boom := errors.New("no such benchmark")
	cache := NewTraceCache(func(string, uint64) (trace.Trace, error) { return nil, boom })
	s := NewSweep(Options{}, cache, []string{"a"}, 1)
	s.Add(func() core.Predictor { return core.NewLastValue(4) })
	if err := s.Run(); err != boom {
		t.Errorf("got %v, want %v", err, boom)
	}
}

// BenchmarkEngineReplay measures the steady-state chunked replay loop
// itself: predictors are constructed once outside the timed region,
// so ReportAllocs shows the per-pass allocation count of the hot
// path, which must stay at zero.
func BenchmarkEngineReplay(b *testing.B) {
	tr := synthTrace(1 << 16)
	preds := []core.Predictor{
		core.NewFCM(10, 12),
		core.NewDFCM(10, 12),
		core.NewStride(10),
		core.NewLastValue(10),
	}
	results := make([]core.Result, len(preds))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		replayChunks(preds, results, tr, defaultChunk)
	}
	b.ReportMetric(float64(len(tr)*len(preds)), "events/op")
}
