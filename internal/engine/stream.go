package engine

import (
	"repro/internal/core"
	"repro/internal/trace"
)

// Stream drives a fixed set of predictors over one incrementally
// arriving event stream. It is the engine's streaming core: the
// offline Sweep replays each benchmark's cached trace through a
// Stream in one Feed call, and the online autotuner
// (internal/autotune) feeds a Stream with mirrored live traffic, one
// sampled batch at a time, to shadow-evaluate candidate predictor
// configurations.
//
// Feeding a trace through Feed in any number of consecutive slices is
// exactly equivalent to one core.Run per predictor over the whole
// trace: predictor state carries across calls and results are plain
// counters, so slice boundaries cannot change any output. The offline
// equivalence tests (TestSweepMatchesPerEventRun, TestStreamFeed and
// internal/experiments.TestEngineEquivalence) pin that invariant.
//
// A Stream is not safe for concurrent use: exactly one goroutine may
// Feed it.
type Stream struct {
	preds   []core.Predictor
	results []core.Result
	chunk   int
	done    bool
}

// NewStream returns a stream over the given predictors. The stream
// replays input in chunks of at most chunkSize events so a chunk
// stays hot in cache while every predictor consumes it; chunkSize <= 0
// selects the engine default. The predictors are owned by the stream
// until a caller takes them back with Predictor.
func NewStream(preds []core.Predictor, chunkSize int) *Stream {
	if chunkSize <= 0 {
		chunkSize = defaultChunk
	}
	return &Stream{
		preds:   preds,
		results: make([]core.Result, len(preds)),
		chunk:   chunkSize,
	}
}

// Feed replays one slice of events through every predictor, in order,
// accumulating into the stream's running results. The events are only
// read during the call; the caller keeps ownership of the slice.
// Feed after Finalize panics — the results were handed out.
func (s *Stream) Feed(events []trace.Event) {
	if s.done {
		panic("engine: Stream.Feed after Finalize")
	}
	replayChunks(s.preds, s.results, events, s.chunk)
}

// Results returns the running per-predictor results accumulated so
// far, aliasing the stream's storage: valid snapshot between Feed
// calls, overwritten by the next Feed. Callers needing a stable copy
// must take one.
func (s *Stream) Results() []core.Result { return s.results }

// Predictor returns the i'th predictor with its state as trained by
// everything fed so far. The reference stays live inside the stream —
// callers taking a predictor out for good (the autotuner's hot-swap
// promotion) must stop feeding the stream afterwards.
func (s *Stream) Predictor(i int) core.Predictor { return s.preds[i] }

// Finalize ends the stream and returns the accumulated per-predictor
// results. Further Feed calls panic.
func (s *Stream) Finalize() []core.Result {
	s.done = true
	return s.results
}
